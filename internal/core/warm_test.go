package core

import (
	"testing"

	"multiscalar/internal/asm"
	"multiscalar/internal/interp"
	"multiscalar/internal/isa"
	"multiscalar/internal/mem"
	"multiscalar/internal/workloads"
)

func buildWarmTest(t *testing.T, name string, mode asm.Mode) *isa.Program {
	t.Helper()
	w := workloads.Get(name)
	if w == nil {
		t.Fatalf("unknown workload %q", name)
	}
	p, err := w.Build(mode, w.TestScale)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// entryWarmState builds the warm state a capture at the program entry
// would produce: initial architectural state, cold tables.
func entryWarmState(p *isa.Program, cfg Config, multi bool) *WarmState {
	ws := NewWarmState(cfg, multi)
	ws.PC = p.Entry
	ws.Regs[isa.RegSP] = interp.IntVal(isa.StackTop)
	ws.Regs[isa.RegGP] = interp.IntVal(isa.DataBase)
	ws.Env = interp.NewSysEnv()
	ws.Mem = mem.NewMemoryFromImage(interp.ProgramImage(p))
	return ws
}

// TestInjectWarmAtEntryMultiscalar: injecting a warm snapshot captured
// at the entry point with cold tables must reproduce a fresh run
// exactly — injection adds state, never perturbs timing.
func TestInjectWarmAtEntryMultiscalar(t *testing.T) {
	p := buildWarmTest(t, "example", asm.ModeMultiscalar)
	cfg := DefaultConfig(4, 1, false)

	fresh, err := NewMultiscalar(p, interp.NewSysEnv(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := fresh.Run()
	if err != nil {
		t.Fatal(err)
	}

	ws := entryWarmState(p, cfg, true)
	m, err := NewMultiscalar(p, interp.NewSysEnv(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.InjectWarm(ws.Encode()); err != nil {
		t.Fatal(err)
	}
	got, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got.Cycles != want.Cycles || got.Committed != want.Committed || got.Out != want.Out {
		t.Errorf("injected run (%d cycles, %d instrs, %q) != fresh run (%d, %d, %q)",
			got.Cycles, got.Committed, got.Out, want.Cycles, want.Committed, want.Out)
	}
}

// TestInjectWarmAtEntryScalar: the scalar machine's injection contract.
func TestInjectWarmAtEntryScalar(t *testing.T) {
	p := buildWarmTest(t, "example", asm.ModeScalar)
	cfg := ScalarConfig(1, false)

	want, err := NewScalar(p, interp.NewSysEnv(), cfg).Run()
	if err != nil {
		t.Fatal(err)
	}

	ws := entryWarmState(p, cfg, false)
	s := NewScalar(p, interp.NewSysEnv(), cfg)
	if err := s.InjectWarm(ws.Encode()); err != nil {
		t.Fatal(err)
	}
	got, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got.Cycles != want.Cycles || got.Committed != want.Committed || got.Out != want.Out {
		t.Errorf("injected run (%d cycles, %d instrs) != fresh run (%d, %d)",
			got.Cycles, got.Committed, want.Cycles, want.Committed)
	}
}

// TestInjectWarmRejections: injection is defined only on a fresh
// machine, for the matching machine kind, at a task boundary.
func TestInjectWarmRejections(t *testing.T) {
	p := buildWarmTest(t, "example", asm.ModeMultiscalar)
	cfg := DefaultConfig(4, 1, false)
	ws := entryWarmState(p, cfg, true)
	data := ws.Encode()

	m, err := NewMultiscalar(p, interp.NewSysEnv(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if err := m.InjectWarm(data); err == nil {
		t.Error("InjectWarm accepted a machine that has already run")
	}

	// Scalar-kind snapshot into a multiscalar machine.
	sws := entryWarmState(p, cfg, false)
	m2, err := NewMultiscalar(p, interp.NewSysEnv(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m2.InjectWarm(sws.Encode()); err == nil {
		t.Error("InjectWarm accepted a scalar warm state on the multiscalar machine")
	}

	// A PC that is not a task boundary.
	ws.PC = p.Entry + isa.InstrSize
	if p.TaskAt(ws.PC) != nil {
		t.Skip("entry+4 happens to be a task boundary in this build")
	}
	m3, err := NewMultiscalar(p, interp.NewSysEnv(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m3.InjectWarm(ws.Encode()); err == nil {
		t.Error("InjectWarm accepted a non-boundary PC")
	}
}

// TestCommitLimitPauseResume: pausing a run at commit limits and
// resuming must reproduce the uninterrupted run bit for bit — the
// invariant the sampled windows' measured regions rest on.
func TestCommitLimitPauseResume(t *testing.T) {
	t.Run("multiscalar", func(t *testing.T) {
		p := buildWarmTest(t, "example", asm.ModeMultiscalar)
		cfg := DefaultConfig(4, 1, false)
		fresh, err := NewMultiscalar(p, interp.NewSysEnv(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		want, err := fresh.Run()
		if err != nil {
			t.Fatal(err)
		}

		m, err := NewMultiscalar(p, interp.NewSysEnv(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		var pauses int
		for _, limit := range []uint64{1, want.Committed / 4, want.Committed / 2} {
			m.SetCommitLimit(limit)
			r, err := m.Run()
			if err != nil {
				t.Fatal(err)
			}
			if r.Committed < limit {
				t.Fatalf("pause at limit %d returned %d committed", limit, r.Committed)
			}
			pauses++
		}
		m.SetCommitLimit(0)
		got, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		if got.Cycles != want.Cycles || got.Committed != want.Committed || got.Out != want.Out {
			t.Errorf("after %d pauses: (%d cycles, %d instrs, %q) != uninterrupted (%d, %d, %q)",
				pauses, got.Cycles, got.Committed, got.Out, want.Cycles, want.Committed, want.Out)
		}
	})
	t.Run("scalar", func(t *testing.T) {
		p := buildWarmTest(t, "example", asm.ModeScalar)
		cfg := ScalarConfig(1, false)
		want, err := NewScalar(p, interp.NewSysEnv(), cfg).Run()
		if err != nil {
			t.Fatal(err)
		}
		s := NewScalar(p, interp.NewSysEnv(), cfg)
		for _, limit := range []uint64{1, want.Committed / 3} {
			s.SetCommitLimit(limit)
			if _, err := s.Run(); err != nil {
				t.Fatal(err)
			}
		}
		s.SetCommitLimit(0)
		got, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		if got.Cycles != want.Cycles || got.Committed != want.Committed || got.Out != want.Out {
			t.Errorf("paused run (%d cycles, %d instrs) != uninterrupted (%d, %d)",
				got.Cycles, got.Committed, want.Cycles, want.Committed)
		}
	})
}
