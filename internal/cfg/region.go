package cfg

import (
	"multiscalar/internal/isa"
)

// A task's region is reconstructed exactly the way a processing unit
// executes it: start at the entry, follow control flow, end at any
// satisfied stop bit. A call without a stop bit pulls the callee body
// into the task (the paper's suppressed functions); a call with a stop
// bit ends the task at the callee's entry. The walk is shared by the
// annotation linter (internal/mslint), the annotation optimizer
// (internal/annotate), and any other client that needs the runtime's
// view of a task's extent; structural oddities found along the way are
// recorded as Problems for the caller to interpret (the linter turns
// them into diagnostics, the optimizer treats them as reasons to leave
// a task alone).

// ExitKind distinguishes how a stop-tagged instruction leaves the task.
type ExitKind int

const (
	ExitJump   ExitKind = iota // branch/jump/fallthrough to a static address
	ExitCall                   // jal: the callee entry starts the next task
	ExitReturn                 // jr: successor resolved by the return stack
)

// Exit is one statically discovered task exit.
type Exit struct {
	Addr   uint32 // address of the stop-tagged instruction
	Target uint32 // successor task entry (isa.TargetReturn for ExitReturn)
	Cont   uint32 // for ExitCall: the return continuation (Addr+4)
	Kind   ExitKind
}

// ProblemKind classifies a structural oddity found while walking a task
// region.
type ProblemKind int

const (
	// ProbBadEntry: the task entry is not the start of a basic block; the
	// region is empty.
	ProbBadEntry ProblemKind = iota
	// ProbFallsOffText: control falls past the end of the text segment
	// without a stop bit.
	ProbFallsOffText
	// ProbEntersTask: control crosses into another task's entry (Target)
	// without a stop bit.
	ProbEntersTask
	// ProbStopInCallee: a stop bit inside a called function body would end
	// the task mid-call on behalf of every caller.
	ProbStopInCallee
	// ProbCalleeIsTask: a call without a stop bit targets an address
	// (Target) that is also a task entry; the body executes both inside
	// this task and as its own task.
	ProbCalleeIsTask
	// ProbIndirect: an indirect call inside the region defeats static exit
	// and effect analysis.
	ProbIndirect
	// ProbReturnNoStop: a return is reachable from the task entry without
	// a stop bit.
	ProbReturnNoStop
)

// Problem is one structural finding of the region walk.
type Problem struct {
	Kind   ProblemKind
	Addr   uint32 // offending instruction (or the task entry)
	Target uint32 // referenced address, when the kind has one
	Op     isa.Op // offending opcode, when the kind has one
}

// TaskRegion is one task's reconstructed extent plus its intra-task
// edges, exits, and structural problems.
type TaskRegion struct {
	TD     *isa.TaskDescriptor
	Blocks []*Block              // discovery order (fixpoints iterate this)
	Depth0 map[*Block]bool       // reached from the entry without a call edge
	Callee map[*Block]bool       // reached (possibly only) through call edges
	Edges  map[*Block][]*Block   // intra-task control flow
	Exits  []Exit
	// UnknownExit: a stop-tagged jalr makes the exit set unknowable.
	UnknownExit bool
	// Halts: addresses of statically recognized exit syscalls.
	Halts    []uint32
	Problems []Problem

	g *Graph
}

// Graph returns the graph the region was walked over.
func (r *TaskRegion) Graph() *Graph { return r.g }

func (r *TaskRegion) problem(k ProblemKind, addr, target uint32, op isa.Op) {
	r.Problems = append(r.Problems, Problem{Kind: k, Addr: addr, Target: target, Op: op})
}

// haltAt returns the address of the first exit syscall in the block, or
// 0. An exit syscall is a `syscall` whose nearest preceding $v0 write in
// the same block is a constant 10 (the li expansion) — the only way a
// workload terminates. Unknown $v0 values are conservatively not halts.
func (g *Graph) haltAt(b *Block) uint32 {
	v0 := int32(-1) // last known constant in $v0; -1 = unknown
	for a := b.Start; a < b.End; a += isa.InstrSize {
		in := g.Prog.InstrAt(a)
		switch {
		case in.Op == isa.OpSyscall:
			if v0 == 10 {
				return a
			}
		case in.Dest() == isa.RegV0:
			if (in.Op == isa.OpOri || in.Op == isa.OpAddi) && in.Rs == isa.RegZero {
				v0 = in.Imm
			} else {
				v0 = -1
			}
		}
	}
	return 0
}

// TaskRegion reconstructs the region of one task following the rules the
// processing units follow at runtime.
func (g *Graph) TaskRegion(td *isa.TaskDescriptor) *TaskRegion {
	r := &TaskRegion{
		TD:     td,
		Depth0: map[*Block]bool{},
		Callee: map[*Block]bool{},
		Edges:  map[*Block][]*Block{},
		g:      g,
	}
	start := g.ByAddr[td.Entry]
	if start == nil {
		r.problem(ProbBadEntry, td.Entry, td.Entry, 0)
		return r
	}

	type state struct {
		b       *Block
		viaCall bool
	}
	seen := map[state]bool{}
	var stack []state
	push := func(b *Block, viaCall bool) {
		if b == nil {
			return
		}
		s := state{b, viaCall}
		if seen[s] {
			return
		}
		seen[s] = true
		stack = append(stack, s)
	}
	addEdge := func(from, to *Block) {
		for _, e := range r.Edges[from] {
			if e == to {
				return
			}
		}
		r.Edges[from] = append(r.Edges[from], to)
	}
	// internal traverses a non-exit edge, checking that it does not bleed
	// into another task's entry.
	internal := func(from *Block, to uint32, viaCall bool, instrAddr uint32) {
		t := g.ByAddr[to]
		if t == nil {
			r.problem(ProbFallsOffText, instrAddr, to, 0)
			return
		}
		if g.Prog.Tasks[to] != nil && (viaCall || to != td.Entry) {
			r.problem(ProbEntersTask, instrAddr, to, 0)
			return
		}
		addEdge(from, t)
		push(t, viaCall)
	}

	var calleeReturns []*Block // jr blocks inside pulled-in callees
	var callConts []*Block     // fall-through blocks of suppressed calls

	push(start, false)
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		b := s.b
		firstVisit := !r.Depth0[b] && !r.Callee[b]
		if s.viaCall {
			r.Callee[b] = true
		} else {
			r.Depth0[b] = true
		}
		if firstVisit {
			r.Blocks = append(r.Blocks, b)
		}

		if h := g.haltAt(b); h != 0 {
			r.Halts = append(r.Halts, h)
			continue // program exit: no successors
		}

		lastAddr := b.End - isa.InstrSize
		last := g.Prog.InstrAt(lastAddr)

		// A stop bit inside a called function body ends the task mid-call
		// for every caller; record it and do not treat it as this task's
		// exit (the depth-0 visit, if any, owns the exit).
		if s.viaCall && last.Stop != isa.StopNone {
			r.problem(ProbStopInCallee, lastAddr, 0, last.Op)
		}
		calleeStop := s.viaCall && last.Stop != isa.StopNone

		addExit := func(target uint32, kind ExitKind) {
			if s.viaCall {
				return
			}
			e := Exit{Addr: lastAddr, Target: target, Kind: kind}
			if kind == ExitCall {
				e.Cont = b.End
			}
			r.Exits = append(r.Exits, e)
		}

		switch {
		case last.Op.IsBranch():
			takenExit := last.Stop == isa.StopAlways || last.Stop == isa.StopTaken
			fallExit := last.Stop == isa.StopAlways || last.Stop == isa.StopNotTaken
			if takenExit && !calleeStop {
				addExit(last.Target, ExitJump)
			} else if !takenExit {
				internal(b, last.Target, s.viaCall, lastAddr)
			}
			if fallExit && !calleeStop {
				addExit(b.End, ExitJump)
			} else if !fallExit {
				internal(b, b.End, s.viaCall, lastAddr)
			}
		case last.Op == isa.OpJ:
			switch last.Stop {
			case isa.StopNone, isa.StopNotTaken: // an unconditional jump is always taken
				internal(b, last.Target, s.viaCall, lastAddr)
			default:
				if !calleeStop {
					addExit(last.Target, ExitJump)
				}
			}
		case last.Op == isa.OpJal:
			if last.Stop != isa.StopNone {
				// The call ends the task: the callee entry is the successor
				// task; the continuation belongs to a later task.
				if !calleeStop {
					addExit(last.Target, ExitCall)
				}
			} else {
				// Suppressed call: pull the callee body in, resume at the
				// fall-through.
				if g.Prog.Tasks[last.Target] != nil {
					r.problem(ProbCalleeIsTask, lastAddr, last.Target, last.Op)
				}
				if callee := g.ByAddr[last.Target]; callee != nil {
					addEdge(b, callee)
					push(callee, true)
				}
				if ft := g.ByAddr[b.End]; ft != nil {
					callConts = append(callConts, ft)
				}
				internal(b, b.End, s.viaCall, lastAddr)
			}
		case last.Op == isa.OpJalr:
			r.problem(ProbIndirect, lastAddr, 0, last.Op)
			if last.Stop != isa.StopNone {
				r.UnknownExit = true
			} else {
				internal(b, b.End, s.viaCall, lastAddr)
			}
		case last.Op == isa.OpJr:
			switch {
			case s.viaCall:
				// Return within a pulled-in callee: execution resumes at the
				// call continuation; the approximate return edges are added
				// after the walk.
				calleeReturns = append(calleeReturns, b)
			case last.Stop == isa.StopAlways:
				addExit(isa.TargetReturn, ExitReturn)
			default:
				r.problem(ProbReturnNoStop, lastAddr, 0, last.Op)
			}
		default:
			if last.Stop != isa.StopNone {
				if !calleeStop {
					addExit(b.End, ExitJump)
				}
			} else {
				internal(b, b.End, s.viaCall, lastAddr)
			}
		}
	}

	// Approximate return edges: any callee return may resume at any
	// suppressed-call continuation of this task. Over-approximate (and
	// thus sound for the may/must analyses that consume the edge set).
	for _, ret := range calleeReturns {
		for _, cont := range callConts {
			addEdge(ret, cont)
		}
	}
	return r
}

// TaskDefs returns the registers one instruction may define within a
// task region. Callee bodies of suppressed calls are walked directly, so
// a jal contributes only $ra; jalr contributes only its link register
// (its full effect is unanalyzable and already recorded as ProbIndirect).
func TaskDefs(in *isa.Instr) isa.RegMask {
	var m isa.RegMask
	switch in.Op {
	case isa.OpJal, isa.OpJalr:
		return m.Set(in.Rd)
	default:
		return m.Set(in.Dest())
	}
}

// BlockDefs unions TaskDefs over the block.
func (r *TaskRegion) BlockDefs(b *Block) isa.RegMask {
	var m isa.RegMask
	for a := b.Start; a < b.End; a += isa.InstrSize {
		m = m.Union(TaskDefs(r.g.Prog.InstrAt(a)))
	}
	return m
}

// Defs unions TaskDefs over the whole region.
func (r *TaskRegion) Defs() isa.RegMask {
	var m isa.RegMask
	for _, b := range r.Blocks {
		m = m.Union(r.BlockDefs(b))
	}
	return m
}

// Preds inverts the region's edge map.
func (r *TaskRegion) Preds() map[*Block][]*Block {
	out := map[*Block][]*Block{}
	for from, tos := range r.Edges {
		for _, to := range tos {
			out[to] = append(out[to], from)
		}
	}
	return out
}
