package bench

import (
	"fmt"
	"strings"

	"multiscalar/internal/asm"
	"multiscalar/internal/interp"
	"multiscalar/internal/isa"
	"multiscalar/internal/workloads"
)

// runInterp executes a binary on the interpreter and returns the machine
// for its counters.
func runInterp(p *isa.Program) (*interp.Machine, error) {
	env := interp.NewSysEnv()
	m := interp.NewMachine(p, env)
	if err := m.Run(1 << 40); err != nil {
		return nil, err
	}
	return m, nil
}

// SpeedupCurve is one benchmark's speedup-over-scalar series across unit
// counts — the figure-style view of Tables 3/4.
type SpeedupCurve struct {
	Name     string
	Units    []int
	Speedups []float64
}

// SpeedupCurves computes speedup-vs-units for every benchmark at one
// issue configuration.
func SpeedupCurves(width int, outOfOrder bool, scale Scale, units []int) ([]SpeedupCurve, error) {
	var curves []SpeedupCurve
	for _, w := range workloads.All() {
		base, err := runOne(w, scale, 1, width, outOfOrder)
		if err != nil {
			return nil, err
		}
		c := SpeedupCurve{Name: w.Name, Units: units}
		for _, n := range units {
			res, err := runOne(w, scale, n, width, outOfOrder)
			if err != nil {
				return nil, fmt.Errorf("%s units=%d: %w", w.Name, n, err)
			}
			c.Speedups = append(c.Speedups, float64(base.Cycles)/float64(res.Cycles))
		}
		curves = append(curves, c)
	}
	return curves, nil
}

// FormatCurves renders the series as an ASCII chart: one row per
// benchmark per unit count, bars scaled to the chart width.
func FormatCurves(title string, curves []SpeedupCurve) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	maxSp := 1.0
	for _, c := range curves {
		for _, s := range c.Speedups {
			if s > maxSp {
				maxSp = s
			}
		}
	}
	const width = 50
	for _, c := range curves {
		fmt.Fprintf(&b, "%s\n", c.Name)
		for i, n := range c.Units {
			bar := int(c.Speedups[i] / maxSp * width)
			if bar < 1 {
				bar = 1
			}
			fmt.Fprintf(&b, "  %2d units |%-*s| %.2fx\n", n, width, strings.Repeat("#", bar), c.Speedups[i])
		}
	}
	return b.String()
}

// InstructionMix summarizes a workload's dynamic opcode-class mix — a
// sanity view of what each kernel actually executes.
type InstructionMix struct {
	Name                    string
	Total                   uint64
	Loads, Stores, Branches uint64
}

// Mixes computes the dynamic instruction mix of each multiscalar binary.
func Mixes(scale Scale) ([]InstructionMix, error) {
	var out []InstructionMix
	for _, w := range workloads.All() {
		p, err := w.Build(asm.ModeMultiscalar, scale.of(w))
		if err != nil {
			return nil, err
		}
		m, err := runInterp(p)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", w.Name, err)
		}
		out = append(out, InstructionMix{
			Name:     w.Name,
			Total:    m.ICount,
			Loads:    m.LoadCount,
			Stores:   m.StoreCount,
			Branches: m.BranchCount,
		})
	}
	return out, nil
}

// FormatMixes renders the dynamic instruction mix table.
func FormatMixes(rows []InstructionMix) string {
	var b strings.Builder
	b.WriteString("Dynamic instruction mix (multiscalar binaries)\n")
	fmt.Fprintf(&b, "%-10s %10s %8s %8s %9s\n", "program", "total", "loads", "stores", "branches")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %10d %7.1f%% %7.1f%% %8.1f%%\n", r.Name, r.Total,
			100*float64(r.Loads)/float64(r.Total),
			100*float64(r.Stores)/float64(r.Total),
			100*float64(r.Branches)/float64(r.Total))
	}
	return b.String()
}
