package mem

import (
	"math/bits"

	"multiscalar/internal/trace"
)

// Cache is a direct-mapped, timing-only cache: data always lives in the
// backing Memory (or, for speculative state, in the ARB); the cache tracks
// tags to decide hit/miss latency, and models non-blocking misses with a
// small set of outstanding-fetch registers (MSHRs) that merge requests to
// a block already in flight.
//
// Access returns the completion cycle synchronously — there is no event
// queue and nothing "arrives later". The whole memory system shares this
// timestamp-latching design (see Bus), and the timing loops in
// internal/core rely on it: because every future memory effect is a
// timestamp already held in unit state, the wakeup scheduler can prove a
// stall window unchanging and skip it (docs/perf.md).
type Cache struct {
	Name       string
	SizeBytes  int
	BlockBytes int
	HitLatency int

	// Sink, when non-nil, receives a SinkKind event (stamped with the
	// requesting cycle, Unit=SinkID, Arg=address) for every miss. The
	// machine that owns the cache wires these from its trace sink.
	Sink     trace.Sink
	SinkKind trace.Kind
	SinkID   int8

	bus  *Bus
	sets int
	tags []uint32
	vld  []bool

	// stride divides block numbers before set indexing: a bank that only
	// sees every Nth block must spread those blocks over all its sets.
	stride uint32

	// Shift/mask forms of the index arithmetic, valid when block size,
	// set count and stride are all powers of two (the common geometry):
	// index is on the per-access path and hardware division is slow.
	pow2                             bool
	blockShift, strideShift, setBits int
	setMask                          uint32

	mshrs []mshr // outstanding block fetches
	nmshr int

	// Stats
	Hits, Misses, Merges uint64
}

type mshr struct {
	block   uint32
	readyAt uint64
}

// NewCache builds a direct-mapped cache backed by bus for miss traffic.
func NewCache(name string, sizeBytes, blockBytes, hitLatency, numMSHRs int, bus *Bus) *Cache {
	sets := sizeBytes / blockBytes
	c := &Cache{
		Name:       name,
		SizeBytes:  sizeBytes,
		BlockBytes: blockBytes,
		HitLatency: hitLatency,
		bus:        bus,
		sets:       sets,
		tags:       make([]uint32, sets),
		vld:        make([]bool, sets),
		nmshr:      numMSHRs,
		stride:     1,
	}
	c.precompute()
	return c
}

func log2OfPow2(n int) (int, bool) {
	if n <= 0 || n&(n-1) != 0 {
		return 0, false
	}
	return bits.TrailingZeros(uint(n)), true
}

func (c *Cache) precompute() {
	b, okB := log2OfPow2(c.BlockBytes)
	s, okS := log2OfPow2(c.sets)
	t, okT := log2OfPow2(int(c.stride))
	c.pow2 = okB && okS && okT
	if c.pow2 {
		c.blockShift, c.strideShift, c.setBits = b, t, s
		c.setMask = uint32(c.sets - 1)
	}
}

// SetStride declares that this cache only sees every strideth block
// (bank interleaving), so set indexing divides the stride out first.
func (c *Cache) SetStride(stride int) {
	if stride > 0 {
		c.stride = uint32(stride)
	}
	c.precompute()
}

func (c *Cache) index(addr uint32) (set int, tag uint32) {
	if c.pow2 {
		block := addr >> c.blockShift >> c.strideShift
		return int(block & c.setMask), block >> c.setBits
	}
	block := addr / uint32(c.BlockBytes) / c.stride
	return int(block) % c.sets, block / uint32(c.sets)
}

// Lookup reports whether addr currently hits, without touching state.
func (c *Cache) Lookup(addr uint32) bool {
	set, tag := c.index(addr)
	return c.vld[set] && c.tags[set] == tag
}

// Access performs a load or store at cycle now and returns the cycle the
// access completes. Stores allocate on miss (write-allocate, write-back;
// eviction write-back cost is absorbed by a write buffer and not modeled,
// matching the paper's level of detail).
func (c *Cache) Access(now uint64, addr uint32, write bool) (done uint64) {
	set, tag := c.index(addr)
	block := addr / uint32(c.BlockBytes)
	if c.vld[set] && c.tags[set] == tag {
		// Tag present — but if the block is still being filled, the data
		// arrives with the fill, not at the hit latency.
		for i := range c.mshrs {
			if c.mshrs[i].block == block && c.mshrs[i].readyAt > now {
				c.Merges++
				return c.mshrs[i].readyAt + uint64(c.HitLatency)
			}
		}
		c.Hits++
		return now + uint64(c.HitLatency)
	}
	// Merge with an in-flight fetch of the same block.
	live := c.mshrs[:0]
	var merged *mshr
	for i := range c.mshrs {
		if c.mshrs[i].readyAt > now {
			live = append(live, c.mshrs[i])
			if c.mshrs[i].block == block {
				merged = &live[len(live)-1]
			}
		}
	}
	c.mshrs = live
	if merged != nil {
		c.Merges++
		return merged.readyAt + uint64(c.HitLatency)
	}

	c.Misses++
	if c.Sink != nil {
		c.Sink.Emit(trace.Event{Cycle: now, Kind: c.SinkKind, Unit: c.SinkID, Task: -1, Arg: addr})
	}
	start := now
	if len(c.mshrs) >= c.nmshr {
		// All MSHRs busy: wait for the earliest to free.
		earliest := c.mshrs[0].readyAt
		for _, m := range c.mshrs[1:] {
			if m.readyAt < earliest {
				earliest = m.readyAt
			}
		}
		start = earliest
		live = c.mshrs[:0]
		for _, m := range c.mshrs {
			if m.readyAt > start {
				live = append(live, m)
			}
		}
		c.mshrs = live
	}
	fill := c.bus.Access(start+uint64(c.HitLatency), c.BlockBytes/4)
	c.mshrs = append(c.mshrs, mshr{block: block, readyAt: fill})
	c.vld[set], c.tags[set] = true, tag
	return fill + uint64(c.HitLatency)
}

// Touch installs addr's tag without modeling timing: no bus traffic,
// no MSHR, no statistics. The sampled-simulation engine uses it to
// keep cache contents warm during functional fast-forward, so a
// detailed window restored from warm state starts with the tag array a
// full detailed run would have at that point.
func (c *Cache) Touch(addr uint32) {
	set, tag := c.index(addr)
	c.vld[set], c.tags[set] = true, tag
}

// AdoptTags copies another cache's tag array into this one (same-
// geometry caches only). The multiscalar machine's per-unit icaches
// all see the same fetch stream during functional warming, so one
// warmed tag array is captured and adopted by every unit on warm-state
// injection.
func (c *Cache) AdoptTags(src *Cache) bool {
	if src.sets != c.sets || src.BlockBytes != c.BlockBytes || src.stride != c.stride {
		return false
	}
	copy(c.tags, src.tags)
	copy(c.vld, src.vld)
	return true
}

// Reset invalidates the cache and clears statistics.
func (c *Cache) Reset() {
	for i := range c.vld {
		c.vld[i] = false
	}
	c.mshrs = nil
	c.Hits, c.Misses, c.Merges = 0, 0, 0
}

// MissRate returns the fraction of accesses that missed.
func (c *Cache) MissRate() float64 {
	total := c.Hits + c.Misses + c.Merges
	if total == 0 {
		return 0
	}
	return float64(c.Misses) / float64(total)
}
