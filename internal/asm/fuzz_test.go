package asm

import "testing"

// FuzzAssemble: the assembler must reject arbitrary input with an error,
// never a panic. Run with `go test -fuzz FuzzAssemble ./internal/asm`.
func FuzzAssemble(f *testing.F) {
	f.Add("main:\n\tli $t0, 1\n\tsyscall\n")
	f.Add("main:\n\tadd $t0, $t1, $t2 !f !s\n.task main targets=main create=$t0\n")
	f.Add(".data\nx:\t.word 1, x+4\n.text\nmain:\n\tlw $t0, x($gp)\n")
	f.Add("main:\n\tblt $t0, $t1, main\n\trelease $t0, $f3\n")
	f.Add(".msonly move $t9, $s0\n.sconly nop\nmain:\n\tj main !st\n")
	f.Add("main:\n\tli $t0, '\\n'\n\t.asciiz \"a\\\"b\"\n")
	f.Fuzz(func(t *testing.T, src string) {
		for _, mode := range []Mode{ModeScalar, ModeMultiscalar} {
			p, err := Assemble(src, mode)
			if err == nil && p != nil {
				// Anything that assembles must also produce a listing and
				// survive a re-validate.
				_ = Listing(p)
				if verr := p.Validate(); verr != nil {
					t.Fatalf("assembled program fails validation: %v", verr)
				}
			}
		}
	})
}
