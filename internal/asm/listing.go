package asm

import (
	"fmt"
	"sort"
	"strings"

	"multiscalar/internal/isa"
)

// Listing renders an assembled program as annotated assembly text:
// labels, task descriptor comments, per-instruction addresses and
// annotation suffixes — the inverse view the msas tool prints. Target
// addresses are symbolized where a label exists.
func Listing(p *isa.Program) string {
	labels := map[uint32][]string{}
	for name, addr := range p.Symbols {
		labels[addr] = append(labels[addr], name)
	}
	for a := range labels {
		sort.Strings(labels[a])
	}
	symbolize := func(addr uint32) string {
		if addr == isa.TargetReturn {
			return "ret"
		}
		if ls := labels[addr]; len(ls) > 0 {
			return ls[0]
		}
		return fmt.Sprintf("0x%x", addr)
	}

	var b strings.Builder
	fmt.Fprintf(&b, "; %d instructions, %d data bytes, %d tasks, entry %s\n",
		len(p.Text), len(p.Data), len(p.Tasks), symbolize(p.Entry))
	for i := range p.Text {
		addr := isa.TextBase + uint32(i)*isa.InstrSize
		for _, l := range labels[addr] {
			fmt.Fprintf(&b, "%s:\n", l)
		}
		if td := p.TaskAt(addr); td != nil {
			var tgts []string
			for _, t := range td.Targets {
				tgts = append(tgts, symbolize(t))
			}
			fmt.Fprintf(&b, "\t; task %s create=%v targets=[%s]",
				td.Name, td.Create, strings.Join(tgts, ","))
			if td.PushRA != 0 {
				fmt.Fprintf(&b, " pushra=%s call=%s", symbolize(td.PushRA), symbolize(td.CallTarget))
			}
			b.WriteByte('\n')
		}
		in := &p.Text[i]
		text := in.String()
		// Symbolize branch/jump targets in the rendered form.
		if in.Op.IsControl() && in.Op != isa.OpJr && in.Op != isa.OpJalr {
			text = strings.Replace(text, fmt.Sprintf("0x%x", in.Target), symbolize(in.Target), 1)
		}
		fmt.Fprintf(&b, "  0x%04x  %s\n", addr, text)
	}
	return b.String()
}
