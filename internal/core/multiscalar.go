package core

import (
	"fmt"

	"multiscalar/internal/arb"
	"multiscalar/internal/interp"
	"multiscalar/internal/isa"
	"multiscalar/internal/mem"
	"multiscalar/internal/predict"
	"multiscalar/internal/pu"
	"multiscalar/internal/trace"
)

// taskState is the sequencer's bookkeeping for one assigned task.
type taskState struct {
	desc       *isa.TaskDescriptor
	entry      uint32
	assignedAt uint64
	seq        int32 // assignment sequence number (trace task id)

	// Registers this task has forwarded on the ring, kept for register
	// file rebuilds after squashes. A mask plus a flat array (rather than
	// a map) so squash-and-restart resets are a single store and task
	// assignment allocates nothing per register.
	sentMask isa.RegMask
	sentVals [isa.NumRegs]sentValue

	// Prediction bookkeeping for this task's successor, filled when the
	// successor is chosen.
	predMade   bool
	predCounts bool // whether it counts toward accuracy statistics
	predIdx    int
	predEntry  uint32
	histBefore uint16
	histSnap   [64]uint16
	rasSnap    predict.RAS
	// validated is set once this task's successor prediction has been
	// checked against its actual exit (which happens as soon as the task
	// completes — §3.1.2: the exit point is known then, not at retire).
	validated bool
}

// pendingAssign is an assignment waiting on the task-descriptor cache.
type pendingAssign struct {
	valid bool
	ready uint64
	entry uint32
	desc  *isa.TaskDescriptor
}

// Multiscalar is the processor of Figure 1: NumUnits processing units in a
// circular queue, a sequencer walking the CFG task by task, a register
// forwarding ring, an ARB, per-unit instruction caches and interleaved
// data banks behind a crossbar, all sharing one memory bus.
type Multiscalar struct {
	cfg  Config
	prog *isa.Program
	env  *interp.SysEnv

	backing *mem.Memory
	bus     *mem.Bus
	icaches []*mem.Cache
	dbanks  *mem.BankedDCache
	arb     *arb.ARB

	units []*pu.Unit
	exts  []*msExt
	rfs   []*regFile
	tasks []*taskState
	// taskPool backs tasks: assignment is frequent (every task is one)
	// and a taskState is never referenced after its tasks slot is
	// cleared, so doAssign reuses the unit's pooled state instead of
	// heap-allocating per task.
	taskPool []taskState

	head   int
	active int

	predictor predict.TaskPredictor
	ras       predict.RAS
	descCache *mem.Cache

	forced      uint32 // next task entry when known exactly
	forcedValid bool
	terminal    bool
	pending     pendingAssign

	// Ring send bandwidth tracking, per unit.
	sendAt   []uint64
	sendN    []int
	sendBusy []uint64

	// Violation found during the current cycle's sweep (unit index, -1
	// none) and the store address that exposed it, for the squash
	// event's conflict detail.
	viol     int
	violAddr uint32

	// archRegs is the committed register state as of the most recently
	// retired task; it seeds the register file of newly assigned tasks.
	archRegs [isa.NumRegs]interp.Value

	// Shared-FU arbitration (Config.SharedFPUnits).
	sharedFUAt   uint64
	sharedFUUsed [2]int // [float, complex-int] started this cycle

	finished bool
	now      uint64

	// Wakeup scheduler (docs/perf.md). progress records whether the
	// sequencer changed any state this cycle (assignment, prediction,
	// forward, validation, squash, retire); together with the units' own
	// Progressed flags it decides whether the cycle was a pure stall the
	// loop may skip past. ticked counts the cycles actually executed.
	progress bool
	ticked   uint64

	// glyphs is traceCycle's per-unit activity line, hoisted here so the
	// per-cycle text trace allocates nothing per cycle.
	glyphs []byte

	// Event tracing (Config.Sink). nextSeq numbers task assignments so
	// every trace event about a task carries a stable identity.
	sink    trace.Sink
	nextSeq int32

	// Checkpoint hook (ScheduleCheckpoint).
	chkAt uint64
	chkFn func() error

	// Commit limit (SetCommitLimit): pause the run once this many
	// instructions have committed.
	limit uint64

	// Statistics.
	committed      uint64
	tasksRetired   uint64
	tasksSquashed  uint64
	ctlSquashes    uint64
	ringSends      uint64
	memSquashes    uint64
	arbSquashes    uint64
	predictions    uint64
	predCorrect    uint64
	activity       [pu.NumActivities]uint64
	squashedCycles uint64
}

// NewMultiscalar builds the machine for a multiscalar binary.
func NewMultiscalar(prog *isa.Program, env *interp.SysEnv, cfg Config) (*Multiscalar, error) {
	if len(prog.Tasks) == 0 {
		return nil, fmt.Errorf("core: program has no task descriptors (assemble in multiscalar mode or run taskpart)")
	}
	if prog.TaskAt(prog.Entry) == nil {
		return nil, fmt.Errorf("core: no task descriptor at program entry 0x%x", prog.Entry)
	}
	m := &Multiscalar{
		cfg:     cfg,
		prog:    prog,
		env:     env,
		backing: mem.NewMemoryFromImage(interp.ProgramImage(prog)),
		bus:     mem.NewBus(),
		viol:    -1,
		sink:    cfg.Sink,
	}
	m.dbanks = mem.NewBankedDCache(cfg.NumBanks(), cfg.DBankBytes, cfg.DBlockBytes, cfg.DCacheHit, cfg.NumMSHRs, m.bus)
	m.arb = arb.New(cfg.NumUnits, cfg.NumBanks(), cfg.ARBEntries, cfg.ARBPolicy)
	m.descCache = mem.NewCache("desccache", cfg.DescCacheEntries*16, 16, 0, 1, m.bus)
	if m.sink != nil {
		m.bus.Sink = m.sink
		m.arb.Sink = m.sink
		m.descCache.Sink, m.descCache.SinkKind, m.descCache.SinkID = m.sink, trace.KDescMiss, -1
		for i, b := range m.dbanks.Banks {
			b.Sink, b.SinkKind, b.SinkID = m.sink, trace.KDCacheMiss, int8(i)
		}
		m.predictor.Sink, m.predictor.Now = m.sink, &m.now
	}

	ucfg := pu.Config{
		IssueWidth:    cfg.IssueWidth,
		OutOfOrder:    cfg.OutOfOrder,
		ROBSize:       cfg.ROBSize,
		FetchQSize:    cfg.FetchQSize,
		Latencies:     cfg.Latencies,
		BranchEntries: cfg.BranchEntries,
		Sink:          cfg.Sink,
	}
	for i := 0; i < cfg.NumUnits; i++ {
		ic := mem.NewCache("icache", cfg.ICacheBytes, cfg.ICacheBlock, 0, cfg.NumMSHRs, m.bus)
		if m.sink != nil {
			ic.Sink, ic.SinkKind, ic.SinkID = m.sink, trace.KICacheMiss, int8(i)
		}
		m.icaches = append(m.icaches, ic)
		ext := &msExt{m: m, id: i}
		m.exts = append(m.exts, ext)
		m.units = append(m.units, pu.New(i, ucfg, prog, ext))
		m.rfs = append(m.rfs, &regFile{})
		m.tasks = append(m.tasks, nil)
	}
	m.taskPool = make([]taskState, cfg.NumUnits)
	m.sendAt = make([]uint64, cfg.NumUnits)
	m.sendN = make([]int, cfg.NumUnits)
	m.sendBusy = make([]uint64, cfg.NumUnits)
	m.glyphs = make([]byte, cfg.NumUnits)

	// Initial architectural register state.
	var arch [isa.NumRegs]interp.Value
	arch[isa.RegSP] = interp.IntVal(isa.StackTop)
	arch[isa.RegGP] = interp.IntVal(isa.DataBase)
	m.archRegs = arch

	m.forced = prog.Entry
	m.forcedValid = true
	return m, nil
}

func (m *Multiscalar) dist(u int) int {
	return (u - m.head + m.cfg.NumUnits) % m.cfg.NumUnits
}

func (m *Multiscalar) withinActive(u int) bool { return m.dist(u) < m.active }

// Run executes the program to completion.
//
// The loop is event-driven: it ticks every unit densely, but after a
// cycle in which nothing progressed — no unit issued, retired, completed,
// dispatched, fetched or touched the memory system, and the sequencer
// assigned, predicted, forwarded, validated, squashed and retired
// nothing — every following cycle is provably identical until the next
// latched timestamp fires (a functional-unit completion, a cache fill, a
// ring delivery, the pending descriptor fetch). The scheduler jumps
// straight to that cycle and bulk-accounts the skipped stall cycles into
// the same counters the dense loop would have produced, so Result and
// event traces are bit-identical either way (Config.NoSkip keeps the
// dense loop for debugging; see docs/perf.md for the argument).
func (m *Multiscalar) Run() (*Result, error) {
	skip := !m.cfg.NoSkip && m.cfg.Trace == nil
	for !m.finished {
		if m.chkFn != nil && m.now >= m.chkAt {
			fn := m.chkFn
			m.chkFn = nil
			if err := fn(); err != nil {
				return nil, err
			}
		}
		if m.limit > 0 && m.committed >= m.limit {
			return m.result(), nil
		}
		if m.now >= m.cfg.MaxCycles {
			return nil, fmt.Errorf("core: multiscalar run exceeded %d cycles (deadlock?)", m.cfg.MaxCycles)
		}
		m.ticked++
		m.progress = false
		if m.sink != nil {
			m.arb.Now = m.now // the ARB has no clock of its own
		}
		m.assign(m.now)
		unitProgress := false
		for i := 0; i < m.cfg.NumUnits; i++ {
			idx := (m.head + i) % m.cfg.NumUnits
			if _, err := m.units[idx].Tick(m.now); err != nil {
				return nil, err
			}
			if m.units[idx].Progressed() {
				unitProgress = true
			}
		}
		// Idle accounting: units that had no task during this cycle's
		// sweep (before retire/squash frees or restarts units).
		for i := 0; i < m.cfg.NumUnits; i++ {
			if !m.units[i].Active() {
				m.activity[pu.ActIdle]++
			}
		}
		if m.env.Exited {
			m.finish()
			break
		}
		if m.viol >= 0 {
			m.memoryViolationSquash(m.now)
		}
		m.validateCompleted(m.now)
		if err := m.retire(m.now); err != nil {
			return nil, err
		}
		if m.cfg.Trace != nil {
			m.traceCycle()
		}
		if skip && !unitProgress && !m.progress {
			if t := m.nextWake(m.now); t > m.now+1 {
				m.skipTo(t)
				continue
			}
		}
		m.now++
	}
	if m.sink != nil {
		m.sink.Emit(trace.Event{Cycle: m.now, Kind: trace.KRunEnd, Unit: -1, Task: -1, Arg2: m.now})
	}
	return m.result(), nil
}

func (m *Multiscalar) finish() {
	// The head task executed the exit syscall: its work is architectural.
	if m.active > 0 {
		u := m.units[m.head]
		m.committed += u.Retired
		m.tasksRetired++
		m.foldActivity(m.head, true)
		if m.sink != nil {
			m.sink.Emit(trace.Event{Cycle: m.now, Kind: trace.KTaskRetire, Unit: int8(m.head),
				Task: m.tasks[m.head].seq, Arg: u.ExitPC(), Arg2: u.Retired})
		}
		// Remaining in-flight tasks were beyond the program's end.
		for d := 1; d < m.active; d++ {
			q := (m.head + d) % m.cfg.NumUnits
			m.foldActivity(q, false)
			m.tasksSquashed++
			if m.sink != nil {
				m.sink.Emit(trace.Event{Cycle: m.now, Kind: trace.KTaskSquash, Unit: int8(q),
					Task: m.tasks[q].seq, Arg: trace.CauseDrain, Arg2: uint64(d)})
			}
		}
	}
	m.now++ // the exit cycle counts
	m.finished = true
}

// nextWake returns the earliest future cycle at which anything in the
// machine can change state: the pending assignment's descriptor fetch
// completing, any unit's next latched timestamp (functional-unit
// completion, cache fill finishing a fetch), or — for a unit stalled on
// an external register read — the arrival of an in-flight ring delivery.
// pu.NoEvent means no latched event exists; the machine is deadlocked
// and the jump clamps to MaxCycles, where Run reports it exactly as the
// dense loop would.
func (m *Multiscalar) nextWake(now uint64) uint64 {
	t := pu.NoEvent
	if m.pending.valid && m.pending.ready > now && m.pending.ready < t {
		t = m.pending.ready
	}
	for i, u := range m.units {
		if w := u.NextEvent(now); w < t {
			t = w
		}
		if u.WaitingExt() {
			if w := m.rfs[i].nextReady(now); w < t {
				t = w
			}
		}
	}
	return t
}

// skipTo advances the clock from now to cycle t (exclusive of the cycle
// already executed at now), charging the skipped stall cycles to the
// same per-unit activity counters and the machine idle counter that the
// dense loop would have incremented one cycle at a time. Within the
// skipped window no unit changes activity class (nothing progressed and
// no timestamp fires before t), so bulk accounting is exact.
func (m *Multiscalar) skipTo(t uint64) {
	if t > m.cfg.MaxCycles {
		t = m.cfg.MaxCycles
	}
	k := t - (m.now + 1)
	for i := 0; i < m.cfg.NumUnits; i++ {
		m.units[i].AddStallCycles(k)
		if !m.units[i].Active() {
			m.activity[pu.ActIdle] += k
		}
	}
	m.now = t
}

var actGlyphs = [pu.NumActivities]byte{'.', '*', 'p', 'm', 'r'}

// traceCycle emits one compact line describing this cycle.
func (m *Multiscalar) traceCycle() {
	for i, u := range m.units {
		m.glyphs[i] = actGlyphs[u.LastActivity()]
	}
	fmt.Fprintf(m.cfg.Trace, "%8d head=%d active=%d [%s] retired=%d squashed=%d\n",
		m.now, m.head, m.active, m.glyphs, m.tasksRetired, m.tasksSquashed)
}

func (m *Multiscalar) foldActivity(unit int, retired bool) {
	u := m.units[unit]
	for a := pu.ActCompute; a < pu.NumActivities; a++ {
		if retired {
			m.activity[a] += u.ActCounts[a]
		} else {
			m.squashedCycles += u.ActCounts[a]
		}
		if m.sink != nil && u.ActCounts[a] > 0 {
			arg := uint32(a)
			if !retired {
				arg |= trace.ActivitySquashed
			}
			m.sink.Emit(trace.Event{Cycle: m.now, Kind: trace.KTaskActivity, Unit: int8(unit),
				Task: m.tasks[unit].seq, Arg: arg, Arg2: u.ActCounts[a]})
		}
	}
}

// ARBStats exposes the ARB's counter surface — aggregates plus the
// per-bank breakdown — for callers that own the machine (the litmus
// stress fuzzer's histograms). Result carries the aggregate totals.
func (m *Multiscalar) ARBStats() arb.Stats { return m.arb.Stats() }

// SetCommitLimit arranges for Run to pause — return the Result so far
// without finishing the program — once at least n instructions have
// committed (task commit is the granularity: the machine commits whole
// tasks, so the pause lands on the first task-retire cycle at or past
// n). The pause touches no machine state: calling Run again resumes
// exactly where the paused run stopped and the eventual results are
// identical to an uninterrupted run. The sampled-simulation engine
// uses two pauses per detailed window to delimit the measured region.
// 0 clears the limit.
func (m *Multiscalar) SetCommitLimit(n uint64) { m.limit = n }

func (m *Multiscalar) result() *Result {
	var imiss uint64
	for _, ic := range m.icaches {
		imiss += ic.Misses
	}
	astats := m.arb.Stats()
	return &Result{
		Cycles:           m.now,
		CyclesTicked:     m.ticked,
		Committed:        m.committed,
		Out:              m.env.Out.String(),
		ExitCode:         m.env.ExitCode,
		TasksRetired:     m.tasksRetired,
		TasksSquashed:    m.tasksSquashed,
		CtlSquashes:      m.ctlSquashes,
		MemSquashes:      m.memSquashes,
		ARBSquashes:      m.arbSquashes,
		RingSends:        m.ringSends,
		Predictions:      m.predictions,
		PredCorrect:      m.predCorrect,
		Activity:         m.activity,
		SquashedCycles:   m.squashedCycles,
		ICacheMisses:     imiss,
		DCacheMisses:     m.dbanks.Misses(),
		DBankConflicts:   m.dbanks.Conflicts,
		BusRequests:      m.bus.Requests,
		ARBViolations:    m.arb.Violations,
		ARBOverflows:     m.arb.Overflows,
		ARBStoreForwards: m.arb.StoreForwards,
		ARBAllocs:        astats.Allocs,
		ARBPeakOccupancy: astats.MaxOccupancy,
	}
}
