package predict

// BranchPredictor is the per-processing-unit branch direction predictor: a
// bimodal table of 2-bit saturating counters. Branch targets come from the
// decoded instruction (the simulator fetches decoded text), so no BTB is
// modeled; indirect jumps (jr/jalr) inside a task are predicted with a
// small per-unit return address stack plus a last-target table.
type BranchPredictor struct {
	counters []uint8
	mask     uint32

	// per-unit return address stack for calls executed inside a task
	ras      [16]uint32
	rasTop   int
	rasDepth int

	// last-target table for jalr
	targets []uint32

	// Stats
	Lookups uint64
	Hits    uint64
}

// NewBranchPredictor builds a bimodal predictor with the given number of
// 2-bit entries (must be a power of two).
func NewBranchPredictor(entries int) *BranchPredictor {
	return &BranchPredictor{
		counters: make([]uint8, entries),
		mask:     uint32(entries - 1),
		targets:  make([]uint32, 512),
	}
}

func (b *BranchPredictor) index(pc uint32) uint32 { return (pc >> 2) & b.mask }

// PredictTaken predicts the direction of the conditional branch at pc.
func (b *BranchPredictor) PredictTaken(pc uint32) bool {
	b.Lookups++
	return b.counters[b.index(pc)] >= 2
}

// UpdateTaken trains the direction predictor with the actual outcome.
func (b *BranchPredictor) UpdateTaken(pc uint32, taken, predicted bool) {
	c := &b.counters[b.index(pc)]
	if taken {
		if *c < 3 {
			*c++
		}
	} else if *c > 0 {
		*c--
	}
	if taken == predicted {
		b.Hits++
	}
}

// PushReturn records a return address at a call inside the task.
func (b *BranchPredictor) PushReturn(addr uint32) {
	b.ras[b.rasTop] = addr
	b.rasTop = (b.rasTop + 1) % len(b.ras)
	if b.rasDepth < len(b.ras) {
		b.rasDepth++
	}
}

// PredictReturn predicts the target of a jr (0 if the stack is empty).
func (b *BranchPredictor) PredictReturn() uint32 {
	if b.rasDepth == 0 {
		return 0
	}
	b.rasTop = (b.rasTop - 1 + len(b.ras)) % len(b.ras)
	b.rasDepth--
	return b.ras[b.rasTop]
}

// PredictIndirect predicts a jalr target from the last-target table.
func (b *BranchPredictor) PredictIndirect(pc uint32) uint32 {
	return b.targets[(pc>>2)&uint32(len(b.targets)-1)]
}

// UpdateIndirect trains the last-target table.
func (b *BranchPredictor) UpdateIndirect(pc uint32, target uint32) {
	b.targets[(pc>>2)&uint32(len(b.targets)-1)] = target
}

// AdoptTables copies another predictor's trained tables (direction
// counters and last-target entries) into this one, leaving the RAS and
// statistics alone. Warm-state injection uses it to seed every unit's
// predictor from the one predictor trained during functional
// fast-forward; the RAS is excluded because units clear it at every
// task start anyway.
func (b *BranchPredictor) AdoptTables(src *BranchPredictor) bool {
	if len(src.counters) != len(b.counters) || len(src.targets) != len(b.targets) {
		return false
	}
	copy(b.counters, src.counters)
	copy(b.targets, src.targets)
	return true
}

// ClearRAS empties the per-unit return stack (on task squash/assign).
func (b *BranchPredictor) ClearRAS() { b.rasTop, b.rasDepth = 0, 0 }

// Reset clears everything including statistics.
func (b *BranchPredictor) Reset() {
	for i := range b.counters {
		b.counters[i] = 0
	}
	for i := range b.targets {
		b.targets[i] = 0
	}
	b.ClearRAS()
	b.Lookups, b.Hits = 0, 0
}
