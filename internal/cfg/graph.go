// Package cfg builds and analyzes the control flow graph of an assembled
// program: basic blocks, dominators, natural loops, call summaries, and
// global register liveness. The task partitioner (internal/taskpart) uses
// these analyses to reproduce the compiler half of the paper's toolchain:
// choosing task boundaries and computing create masks trimmed by
// dead-register analysis (Section 2.2).
package cfg

import (
	"fmt"
	"sort"

	"multiscalar/internal/isa"
)

// Block is one basic block: a maximal straight-line run of instructions
// with a single entry at the top.
type Block struct {
	Index int    // position in Graph.Blocks (reverse-postorder-ish, by address)
	Start uint32 // address of first instruction
	End   uint32 // address just past the last instruction

	Succs []*Block
	Preds []*Block

	// CallTarget is the callee entry address when the block ends in a
	// direct call (jal); 0 otherwise. IndirectCall marks a jalr ending.
	CallTarget   uint32
	IndirectCall bool
	// Returns marks a block ending in jr (function return).
	Returns bool

	// Dataflow facts filled in by Analyze.
	Def     isa.RegMask // registers written in the block (incl. call effects)
	Use     isa.RegMask // registers read before any write in the block
	LiveIn  isa.RegMask
	LiveOut isa.RegMask

	// Dominator tree parent (nil for entry / unreachable).
	IDom *Block
	// Loop header this block belongs to most immediately, nil if none.
	Loop *Loop
}

// NumInstrs returns the instruction count of the block.
func (b *Block) NumInstrs() int { return int((b.End - b.Start) / isa.InstrSize) }

func (b *Block) String() string {
	return fmt.Sprintf("B%d[0x%x,0x%x)", b.Index, b.Start, b.End)
}

// Loop is a natural loop discovered from a back edge.
type Loop struct {
	Header *Block
	Blocks map[*Block]bool
	Parent *Loop // enclosing loop, if nested
	Depth  int
}

// Graph is the control flow graph of a program.
type Graph struct {
	Prog   *isa.Program
	Blocks []*Block
	ByAddr map[uint32]*Block // block start -> block
	Entry  *Block
	Loops  []*Loop

	// Funcs maps each discovered function entry (program entry + every
	// direct call target) to its transitive register effect summary.
	Funcs map[uint32]*FuncSummary
}

// FuncSummary is the transitive register effect of calling a function.
type FuncSummary struct {
	Entry uint32
	Defs  isa.RegMask // registers the call may write (incl. callees)
	Uses  isa.RegMask // registers the call may read (incl. callees)
}

// instrOf returns the instruction at addr.
func (g *Graph) instrOf(addr uint32) *isa.Instr { return g.Prog.InstrAt(addr) }

// BlockOf returns the block containing the given address.
func (g *Graph) BlockOf(addr uint32) *Block {
	i := sort.Search(len(g.Blocks), func(i int) bool { return g.Blocks[i].End > addr })
	if i < len(g.Blocks) && g.Blocks[i].Start <= addr {
		return g.Blocks[i]
	}
	return nil
}

// Build constructs the basic-block graph for a program.
func Build(p *isa.Program) *Graph {
	g := &Graph{Prog: p, ByAddr: make(map[uint32]*Block)}
	textEnd := p.TextEnd()

	// Pass 1: find leaders.
	leaders := map[uint32]bool{p.Entry: true, isa.TextBase: true}
	for i := range p.Text {
		in := &p.Text[i]
		addr := isa.TextBase + uint32(i)*isa.InstrSize
		if in.Op.IsControl() {
			if in.Op != isa.OpJr && in.Op != isa.OpJalr && in.Target >= isa.TextBase && in.Target < textEnd {
				leaders[in.Target] = true
			}
			if addr+isa.InstrSize < textEnd {
				leaders[addr+isa.InstrSize] = true
			}
		}
	}
	// Task entries are also leaders (tasks must start on block boundaries).
	for entry := range p.Tasks {
		leaders[entry] = true
	}

	starts := make([]uint32, 0, len(leaders))
	for a := range leaders {
		starts = append(starts, a)
	}
	sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })

	// Pass 2: create blocks. Every instruction following a control
	// instruction is a leader, so a control instruction can only be the
	// last instruction before the next leader — blocks are exactly the
	// inter-leader ranges.
	for i, start := range starts {
		end := textEnd
		if i+1 < len(starts) {
			end = starts[i+1]
		}
		b := &Block{Index: len(g.Blocks), Start: start, End: end}
		g.Blocks = append(g.Blocks, b)
		g.ByAddr[start] = b
	}

	// Pass 3: edges.
	for _, b := range g.Blocks {
		last := g.instrOf(b.End - isa.InstrSize)
		addEdge := func(to uint32) {
			if t := g.ByAddr[to]; t != nil {
				b.Succs = append(b.Succs, t)
				t.Preds = append(t.Preds, b)
			}
		}
		switch {
		case last.Op.IsBranch():
			addEdge(last.Target)
			addEdge(b.End)
		case last.Op == isa.OpJ:
			addEdge(last.Target)
		case last.Op == isa.OpJal:
			b.CallTarget = last.Target
			addEdge(b.End) // call returns to the fall-through
		case last.Op == isa.OpJalr:
			b.IndirectCall = true
			addEdge(b.End)
		case last.Op == isa.OpJr:
			b.Returns = true // no static successor
		default:
			addEdge(b.End) // fall through
		}
	}
	g.Entry = g.ByAddr[p.Entry]
	return g
}
