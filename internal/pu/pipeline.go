package pu

import (
	"fmt"

	"multiscalar/internal/interp"
	"multiscalar/internal/isa"
)

// fuLimit returns how many operations of a class may start per cycle:
// Section 5.1 gives each unit 1 or 2 simple integer FUs (matching the
// issue width), and 1 each of complex integer, floating point, branch and
// memory — all pipelined, so each accepts one operation per cycle.
func (u *Unit) fuLimit(c isa.FUClass) int {
	if c == isa.FUSimpleInt && u.cfg.IssueWidth >= 2 {
		return 2
	}
	return 1
}

// issue scans the window oldest-first and starts ready instructions:
// strictly in program order for in-order units, any ready instruction for
// out-of-order units. Completion is out of order in both cases.
func (u *Unit) issue(now uint64) error {
	var fuUsed [isa.NumFUClasses]int
	issued := 0
	// Track, per scan position, facts about older entries.
	olderUnresolvedCtl := false
	olderUnissuedMem := false
	olderSyscall := false

	for i := 0; i < len(u.rob) && issued < u.cfg.IssueWidth; i++ {
		e := &u.rob[i]
		if e.state != stDispatched {
			if e.instr.Op.IsControl() && e.state != stDone {
				olderUnresolvedCtl = true
			}
			if e.instr.Op == isa.OpSyscall {
				olderSyscall = true
			}
			continue
		}

		ok, err := u.tryIssue(now, i, e, &fuUsed, olderUnresolvedCtl, olderUnissuedMem, olderSyscall)
		if err != nil {
			return err
		}
		if ok {
			issued++
			u.issuedNow++
		} else if !u.cfg.OutOfOrder {
			break // in-order issue: stop at the first stalled instruction
		}
		if e.state != stDone && e.instr.Op.IsControl() {
			olderUnresolvedCtl = true
		}
		if e.instr.Op.IsMem() && !e.memDone {
			olderUnissuedMem = true
		}
		if e.instr.Op == isa.OpSyscall {
			olderSyscall = true
		}
	}
	return nil
}

// operand fetches one source register: from the youngest older in-flight
// producer, or the external register file.
func (u *Unit) operand(now uint64, idx int, r isa.Reg) (interp.Value, bool) {
	if r == isa.RegZero {
		return interp.Value{}, true
	}
	for j := idx - 1; j >= 0; j-- {
		p := &u.rob[j]
		if p.instr.Dest() == r || (p.instr.Op == isa.OpSyscall && r == isa.RegV0) {
			// A syscall may write $v0; its value is only known at retire,
			// so consumers wait (the syscall-serializing rule also blocks
			// them from issuing, this is belt and braces).
			if p.instr.Op == isa.OpSyscall {
				return interp.Value{}, false
			}
			if p.state == stDone {
				return p.val, true
			}
			return interp.Value{}, false
		}
	}
	v, ready := u.ext.ReadReg(now, r)
	if !ready {
		u.waitingExt = true
	}
	return v, ready
}

// fccOperand resolves the FP condition flag for bc1t/bc1f.
func (u *Unit) fccOperand(idx int) (bool, bool) {
	for j := idx - 1; j >= 0; j-- {
		p := &u.rob[j]
		if p.setFCC || p.instr.Op.SetsFCC() {
			if p.state == stDone {
				return p.fcc, true
			}
			return false, false
		}
	}
	return u.committedFCC, true
}

func (u *Unit) tryIssue(now uint64, idx int, e *robEntry, fuUsed *[isa.NumFUClasses]int,
	olderUnresolvedCtl, olderUnissuedMem, olderSyscall bool) (bool, error) {

	in := e.instr
	if olderSyscall {
		return false, nil // syscalls serialize the window
	}
	class := in.Op.Class()
	if fuUsed[class] >= u.fuLimit(class) {
		return false, nil
	}
	if in.Op.IsMem() && (olderUnresolvedCtl || olderUnissuedMem) {
		// Memory operations wait for older branches to resolve (wrong-path
		// loads/stores must never reach the ARB) and issue to the single
		// memory unit in program order.
		return false, nil
	}
	if in.Op == isa.OpSyscall && idx != 0 {
		return false, nil // syscall executes only when oldest
	}

	// Gather operands.
	var rsV, rtV interp.Value
	var fcc bool
	srcs, nsrc := in.SourceRegs()
	for _, src := range srcs[:nsrc] {
		v, ready := u.operand(now, idx, src)
		if !ready {
			return false, nil
		}
		if src == in.Rs {
			rsV = v
		}
		if src == in.Rt {
			rtV = v
		}
	}
	// Syscall reads fixed registers; map them explicitly at retire time
	// via the Ext, so nothing more to do here.
	if in.ReadsFCC() {
		v, ready := u.fccOperand(idx)
		if !ready {
			return false, nil
		}
		fcc = v
	}

	// Shared functional units (if the machine has them) are claimed last,
	// once the operation is otherwise ready to start.
	if u.shared != nil && (class == isa.FUFloat || class == isa.FUComplexInt) {
		if !u.shared.ClaimSharedFU(now, class) {
			return false, nil
		}
	}

	// Execute.
	switch {
	case in.Op.IsLoad():
		addr := interp.EffAddr(rsV, in.Imm)
		if addr%uint32(in.Op.MemSize()) != 0 {
			return false, fmt.Errorf("pu%d: unaligned %s of 0x%x at 0x%x", u.ID, in.Op, addr, e.addr)
		}
		v, done, ok := u.ext.Load(now, in.Op, addr)
		if !ok {
			// ARB overflow: retry next cycle. Each attempt counts (the
			// ARB's Overflows statistic, possibly an overflow squash), so
			// overflow-retry cycles must stay dense — mark them as progress
			// and the wakeup scheduler will not skip them.
			u.progressed = true
			return false, nil
		}
		e.val = v
		e.doneAt = done
		e.memDone = true
	case in.Op.IsStore():
		addr := interp.EffAddr(rsV, in.Imm)
		if addr%uint32(in.Op.MemSize()) != 0 {
			return false, fmt.Errorf("pu%d: unaligned %s of 0x%x at 0x%x", u.ID, in.Op, addr, e.addr)
		}
		done, ok := u.ext.Store(now, in.Op, addr, rtV)
		if !ok {
			u.progressed = true // overflow retry: see the load case above
			return false, nil
		}
		e.doneAt = done
		e.memDone = true
	case in.Op == isa.OpSyscall:
		// Executes at retire; occupy one cycle here.
		e.doneAt = now + 1
	case in.Op == isa.OpRelease:
		// The released value is the register's current value; it is
		// forwarded on the ring at local retire.
		e.val = rsV
		e.doneAt = now + 1
	case in.Op == isa.OpJ:
		e.actualNext = in.Target
		e.doneAt = now + uint64(u.cfg.Latencies.Of(in.Op))
	case in.Op == isa.OpJal:
		e.actualNext = in.Target
		e.val = interp.IntVal(e.addr + isa.InstrSize)
		e.doneAt = now + uint64(u.cfg.Latencies.Of(in.Op))
	case in.Op == isa.OpJr:
		e.actualNext = rsV.I
		e.doneAt = now + uint64(u.cfg.Latencies.Of(in.Op))
	case in.Op == isa.OpJalr:
		e.actualNext = rsV.I
		e.val = interp.IntVal(e.addr + isa.InstrSize)
		e.doneAt = now + uint64(u.cfg.Latencies.Of(in.Op))
		u.bp.UpdateIndirect(e.addr, rsV.I)
	default:
		res, err := interp.Exec(in.Op, rsV, rtV, in.Imm, fcc)
		if err != nil {
			return false, fmt.Errorf("pu%d at 0x%x: %w", u.ID, e.addr, err)
		}
		e.val = res.Val
		e.fcc, e.setFCC = res.FCC, res.SetFCC
		e.doneAt = now + uint64(u.cfg.Latencies.Of(in.Op))
		if in.Op.IsBranch() {
			e.taken = res.Taken
			if res.Taken {
				e.actualNext = in.Target
			} else {
				e.actualNext = e.addr + isa.InstrSize
			}
			predTaken := e.predictedNext == in.Target && in.Target != e.addr+isa.InstrSize
			if in.Target == e.addr+isa.InstrSize {
				predTaken = res.Taken // degenerate branch: any prediction is right
			}
			u.bp.UpdateTaken(e.addr, res.Taken, predTaken)
		}
	}

	// Resolve actualNext and the stop condition for non-control ops.
	if !in.Op.IsControl() {
		e.actualNext = e.addr + isa.InstrSize
	}
	switch in.Stop {
	case isa.StopAlways:
		e.stopHit = true
	case isa.StopTaken:
		e.stopHit = e.taken
	case isa.StopNotTaken:
		e.stopHit = !e.taken
	}

	e.state = stIssued
	if e.doneAt < u.nextDone {
		u.nextDone = e.doneAt
	}
	fuUsed[class]++
	return true, nil
}

// dispatch moves fetched instructions into the window.
func (u *Unit) dispatch(now uint64) {
	n := 0
	for n < u.cfg.IssueWidth && len(u.fetchQ) > 0 && len(u.rob) < u.cfg.ROBSize {
		f := u.fetchQ[0]
		u.fetchQ = u.fetchQ[1:] // head pop: the window slides, nothing moves
		u.rob = qpush(u.robBuf, u.rob, robEntry{
			addr:          f.addr,
			instr:         f.instr,
			state:         stDispatched,
			predictedNext: f.predictedNext,
		})
		n++
	}
	if n > 0 {
		u.progressed = true
	}
}

// fetch pulls up to four instructions per cycle from the instruction
// cache along the predicted path.
func (u *Unit) fetch(now uint64) {
	if u.fetchStopped || u.done {
		return
	}
	in := u.prog.InstrAt(u.pc)
	if in == nil {
		return // waiting for a resolve to redirect (e.g. unpredicted jr)
	}
	group := u.pc &^ 15
	if u.fetchGroup != group {
		u.fetchGroup = group
		u.fetchReady = u.ext.FetchDone(now, group) // icache access: state changed
		u.progressed = true
	}
	if u.fetchReady > now {
		return
	}

	for fetched := 0; fetched < 4 && len(u.fetchQ) < u.cfg.FetchQSize; fetched++ {
		in := u.prog.InstrAt(u.pc)
		if in == nil {
			return
		}
		addr := u.pc
		f := fetchedInstr{addr: addr, instr: in}
		redirect := false
		stop := false

		switch {
		case in.Op == isa.OpJ:
			f.predictedNext = in.Target
			redirect = true
		case in.Op == isa.OpJal:
			f.predictedNext = in.Target
			u.bp.PushReturn(addr + isa.InstrSize)
			redirect = true
		case in.Op == isa.OpJr:
			f.predictedNext = u.bp.PredictReturn()
			redirect = true
		case in.Op == isa.OpJalr:
			f.predictedNext = u.bp.PredictIndirect(addr)
			u.bp.PushReturn(addr + isa.InstrSize)
			redirect = true
		case in.Op.IsBranch():
			predTaken := u.bp.PredictTaken(addr)
			if predTaken {
				f.predictedNext = in.Target
				redirect = true
			} else {
				f.predictedNext = addr + isa.InstrSize
			}
			switch in.Stop {
			case isa.StopTaken:
				stop = predTaken
			case isa.StopNotTaken:
				stop = !predTaken
			}
		default:
			f.predictedNext = addr + isa.InstrSize
		}
		if in.Stop == isa.StopAlways {
			stop = true
		}

		u.fetchQ = qpush(u.fetchQBuf, u.fetchQ, f)
		u.progressed = true

		if stop {
			u.fetchStopped = true
			return
		}
		u.pc = f.predictedNext
		if redirect || u.pc&^15 != group {
			u.fetchGroup = ^uint32(0) // new group next cycle
			return
		}
	}
}
