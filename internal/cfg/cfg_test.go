package cfg_test

import (
	"testing"

	"multiscalar/internal/asm"
	"multiscalar/internal/cfg"
	"multiscalar/internal/isa"
)

func buildGraph(t *testing.T, src string) *cfg.Graph {
	t.Helper()
	p, err := asm.Assemble(src, asm.ModeScalar)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	g := cfg.Build(p)
	g.Analyze()
	return g
}

const simpleLoop = `
main:
	li $t0, 10
	li $t1, 0
loop:
	add $t1, $t1, $t0
	addi $t0, $t0, -1
	bnez $t0, loop
	move $a0, $t1
	li $v0, 10
	syscall
`

func TestBuildBlocks(t *testing.T) {
	g := buildGraph(t, simpleLoop)
	// Expect 3 blocks: [main..loop), [loop..bnez], [move..syscall]
	if len(g.Blocks) != 3 {
		t.Fatalf("blocks = %d: %v", len(g.Blocks), g.Blocks)
	}
	b0, b1, b2 := g.Blocks[0], g.Blocks[1], g.Blocks[2]
	if b0.NumInstrs() != 2 || b1.NumInstrs() != 3 || b2.NumInstrs() != 3 {
		t.Errorf("sizes = %d,%d,%d", b0.NumInstrs(), b1.NumInstrs(), b2.NumInstrs())
	}
	if len(b0.Succs) != 1 || b0.Succs[0] != b1 {
		t.Errorf("b0 succs = %v", b0.Succs)
	}
	if len(b1.Succs) != 2 {
		t.Fatalf("b1 succs = %v", b1.Succs)
	}
	hasSelf, hasNext := false, false
	for _, s := range b1.Succs {
		if s == b1 {
			hasSelf = true
		}
		if s == b2 {
			hasNext = true
		}
	}
	if !hasSelf || !hasNext {
		t.Errorf("b1 succs = %v", b1.Succs)
	}
	if len(b2.Succs) != 0 {
		t.Errorf("b2 succs = %v", b2.Succs)
	}
	if g.Entry != b0 {
		t.Errorf("entry = %v", g.Entry)
	}
}

func TestBlockOf(t *testing.T) {
	g := buildGraph(t, simpleLoop)
	b := g.BlockOf(isa.TextBase + 12) // second instr of loop block
	if b == nil || b != g.Blocks[1] {
		t.Fatalf("BlockOf = %v", b)
	}
	if g.BlockOf(0x9000_0000) != nil {
		t.Error("out-of-range BlockOf should be nil")
	}
}

func TestDominators(t *testing.T) {
	g := buildGraph(t, simpleLoop)
	b0, b1, b2 := g.Blocks[0], g.Blocks[1], g.Blocks[2]
	if !g.Dominates(b0, b1) || !g.Dominates(b0, b2) || !g.Dominates(b1, b2) {
		t.Error("dominance wrong")
	}
	if g.Dominates(b2, b1) || g.Dominates(b1, b0) {
		t.Error("reverse dominance wrong")
	}
	if !g.Dominates(b1, b1) {
		t.Error("dominance should be reflexive")
	}
}

func TestNaturalLoop(t *testing.T) {
	g := buildGraph(t, simpleLoop)
	if len(g.Loops) != 1 {
		t.Fatalf("loops = %d", len(g.Loops))
	}
	l := g.Loops[0]
	if l.Header != g.Blocks[1] {
		t.Errorf("header = %v", l.Header)
	}
	if len(l.Blocks) != 1 || !l.Blocks[g.Blocks[1]] {
		t.Errorf("loop blocks = %v", l.Blocks)
	}
	if l.Depth != 1 {
		t.Errorf("depth = %d", l.Depth)
	}
	if g.Blocks[1].Loop != l || g.Blocks[0].Loop != nil {
		t.Error("block->loop mapping wrong")
	}
}

const nestedLoops = `
main:
	li $s0, 3
outer:
	li $s1, 4
inner:
	addi $s1, $s1, -1
	bnez $s1, inner
	addi $s0, $s0, -1
	bnez $s0, outer
	li $v0, 10
	syscall
`

func TestNestedLoops(t *testing.T) {
	g := buildGraph(t, nestedLoops)
	if len(g.Loops) != 2 {
		t.Fatalf("loops = %d", len(g.Loops))
	}
	var innerL, outerL *cfg.Loop
	for _, l := range g.Loops {
		if len(l.Blocks) == 1 {
			innerL = l
		} else {
			outerL = l
		}
	}
	if innerL == nil || outerL == nil {
		t.Fatalf("could not identify loops")
	}
	if innerL.Parent != outerL {
		t.Errorf("inner parent = %v", innerL.Parent)
	}
	if innerL.Depth != 2 || outerL.Depth != 1 {
		t.Errorf("depths = %d,%d", innerL.Depth, outerL.Depth)
	}
	// Inner block's innermost loop is the inner loop.
	innerHeader := innerL.Header
	if innerHeader.Loop != innerL {
		t.Error("inner header mapped to wrong loop")
	}
}

func TestLiveness(t *testing.T) {
	g := buildGraph(t, simpleLoop)
	b1 := g.Blocks[1] // loop body: reads t0,t1; writes t0,t1
	t0, t1 := isa.RegT0, isa.RegT0+1
	if !b1.Use.Has(t0) || !b1.Use.Has(t1) {
		t.Errorf("b1 use = %v", b1.Use)
	}
	if !b1.Def.Has(t0) || !b1.Def.Has(t1) {
		t.Errorf("b1 def = %v", b1.Def)
	}
	// t1 is live out of the loop (used by move in b2); t0 is live out too
	// (loop back edge reads it).
	if !b1.LiveOut.Has(t1) || !b1.LiveOut.Has(t0) {
		t.Errorf("b1 liveout = %v", b1.LiveOut)
	}
	// t0/t1 are dead on entry to main (defined before use).
	b0 := g.Blocks[0]
	if b0.LiveIn.Has(t0) || b0.LiveIn.Has(t1) {
		t.Errorf("b0 livein = %v", b0.LiveIn)
	}
}

func TestLiveAtInstructionGranularity(t *testing.T) {
	g := buildGraph(t, simpleLoop)
	// At the bnez (third instr of block 1), t1 has been written; live set
	// before bnez must contain t0 (branch source) and t1 (live out).
	bnezAddr := g.Blocks[1].End - isa.InstrSize
	live := g.LiveAt(bnezAddr)
	if !live.Has(isa.RegT0) || !live.Has(isa.RegT0+1) {
		t.Errorf("live at bnez = %v", live)
	}
	// Before the block's first instruction, same as LiveIn.
	if got := g.LiveAt(g.Blocks[1].Start); got != g.Blocks[1].LiveIn {
		t.Errorf("LiveAt(start) = %v, want %v", got, g.Blocks[1].LiveIn)
	}
}

const callProgram = `
main:
	li  $a0, 5
	jal double
	move $s0, $v0
	li  $v0, 10
	syscall
double:
	add $v0, $a0, $a0
	jr  $ra
`

func TestCallSummaries(t *testing.T) {
	g := buildGraph(t, callProgram)
	p := g.Prog
	dblAddr, _ := p.Symbol("double")
	fs := g.Funcs[dblAddr]
	if fs == nil {
		t.Fatal("no summary for double")
	}
	if !fs.Defs.Has(isa.RegV0) {
		t.Errorf("double defs = %v", fs.Defs)
	}
	if !fs.Uses.Has(isa.RegA0) {
		t.Errorf("double uses = %v", fs.Uses)
	}
	// The call block's Def must include the callee's defs and $ra.
	var callBlock *cfg.Block
	for _, b := range g.Blocks {
		if b.CallTarget == dblAddr {
			callBlock = b
		}
	}
	if callBlock == nil {
		t.Fatal("no call block")
	}
	if !callBlock.Def.Has(isa.RegV0) || !callBlock.Def.Has(isa.RegRA) {
		t.Errorf("call block def = %v", callBlock.Def)
	}
}

func TestRecursiveCallSummaryTerminates(t *testing.T) {
	g := buildGraph(t, `
main:
	li $a0, 3
	jal fact
	li $v0, 10
	syscall
fact:
	blez $a0, base
	addi $sp, $sp, -8
	sw   $ra, 0($sp)
	sw   $a0, 4($sp)
	addi $a0, $a0, -1
	jal  fact
	lw   $a0, 4($sp)
	lw   $ra, 0($sp)
	addi $sp, $sp, 8
	mul  $v0, $v0, $a0
	jr   $ra
base:
	li $v0, 1
	jr $ra
`)
	p := g.Prog
	fAddr, _ := p.Symbol("fact")
	fs := g.Funcs[fAddr]
	if fs == nil {
		t.Fatal("no summary")
	}
	for _, r := range []isa.Reg{isa.RegV0, isa.RegA0, isa.RegSP, isa.RegRA} {
		if !fs.Defs.Has(r) {
			t.Errorf("fact defs missing %v: %v", r, fs.Defs)
		}
	}
}

func TestReturnBlockMarked(t *testing.T) {
	g := buildGraph(t, callProgram)
	found := false
	for _, b := range g.Blocks {
		if b.Returns {
			found = true
			if len(b.Succs) != 0 {
				t.Errorf("return block has succs %v", b.Succs)
			}
			if !b.LiveOut.Has(isa.RegV0) {
				t.Errorf("return liveout = %v", b.LiveOut)
			}
		}
	}
	if !found {
		t.Error("no return block")
	}
}

func TestIndirectCallConservative(t *testing.T) {
	g := buildGraph(t, `
main:
	la   $t0, fn
	jalr $t0
	li   $v0, 10
	syscall
fn:
	jr $ra
`)
	var callBlock *cfg.Block
	for _, b := range g.Blocks {
		if b.IndirectCall {
			callBlock = b
		}
	}
	if callBlock == nil {
		t.Fatal("no indirect call block")
	}
	if callBlock.Def != cfg.AllRegs {
		t.Errorf("indirect call def = %v", callBlock.Def)
	}
}

func TestTaskEntriesAreLeaders(t *testing.T) {
	src := `
main:
	li $t0, 1
	li $t1, 2
mid:
	add $t0, $t0, $t1
	li $v0, 10
	syscall
	.task mid targets=mid
`
	res, err := asm.AssembleOpts(src, asm.Options{Mode: asm.ModeMultiscalar, NoLint: true})
	if err != nil {
		t.Fatal(err)
	}
	p := res.Prog
	g := cfg.Build(p)
	midAddr, _ := p.Symbol("mid")
	if g.ByAddr[midAddr] == nil {
		t.Error("task entry did not start a block")
	}
}

func TestUnreachableCodeHandled(t *testing.T) {
	g := buildGraph(t, `
main:
	li $v0, 10
	syscall
	j main
dead:
	add $t0, $t0, $t0
	jr $ra
`)
	// The dead block exists but has no IDom and doesn't break analysis.
	deadAddr, _ := g.Prog.Symbol("dead")
	// dead is a jump target? no — it's unreachable, but still a block
	// because it follows a control instruction.
	if b := g.BlockOf(deadAddr); b == nil {
		t.Fatal("dead block missing")
	}
	if len(g.Loops) != 0 {
		// j main creates a cycle main->main? main block ends in syscall
		// (not control), so blocks chain; the j back-edge makes a loop —
		// that is fine; just ensure analysis terminated.
		t.Logf("loops = %d (analysis terminated)", len(g.Loops))
	}
}
