// Package arb implements the Address Resolution Buffer (Section 2.3 of
// the paper; Franklin & Sohi's ARB). The ARB holds the speculative memory
// operations of all active tasks: stores live here (the data cache is
// never updated speculatively) and update the cache only when their task
// retires; loads record load bits so that a later store from a
// predecessor task to the same location is detected as a memory-order
// violation and triggers a squash.
//
// Granularity: entries cover 8-byte chunks with per-byte load and store
// tracking, so mixed byte/halfword/word/double traffic to nearby
// addresses never produces false dependences. Stage ordering follows the
// circular unit queue: distance from the head determines predecessor/
// successor relationships.
package arb

import (
	"fmt"

	"multiscalar/internal/mem"
	"multiscalar/internal/trace"
)

// MaxUnits bounds the number of processing units an ARB can track.
const MaxUnits = 32

// OverflowPolicy selects what happens when a bank runs out of entries.
type OverflowPolicy int

const (
	// PolicyStall makes non-head units wait until the head retires and
	// frees entries (the paper's "less drastic alternative").
	PolicyStall OverflowPolicy = iota
	// PolicySquash frees space by squashing the youngest tasks (the
	// paper's "simple solution" that guarantees forward progress).
	PolicySquash
)

func (p OverflowPolicy) String() string {
	if p == PolicySquash {
		return "squash"
	}
	return "stall"
}

const chunkBytes = 8

type entry struct {
	chunk   uint32             // address >> 3
	touched uint32             // bit u set => entry is on unit u's touch list
	loads   [chunkBytes]uint32 // per byte: bit u set => unit u loaded it from elsewhere
	stores  [chunkBytes]uint32 // per byte: bit u set => unit u stored it
	data    [MaxUnits][8]byte  // per unit speculative store bytes
}

func (e *entry) empty() bool {
	for i := 0; i < chunkBytes; i++ {
		if e.loads[i] != 0 || e.stores[i] != 0 {
			return false
		}
	}
	return true
}

// ARB is the address resolution buffer, partitioned into banks that match
// the data-cache banks.
type ARB struct {
	NumUnits       int
	NumBanks       int
	EntriesPerBank int
	Policy         OverflowPolicy

	// Sink, when non-nil, receives allocation, overflow and violation
	// events. The ARB's operations carry no cycle themselves, so the
	// owning machine keeps Now at the current simulation cycle whenever a
	// sink is attached.
	Sink trace.Sink
	Now  uint64

	banks []arbBank
	// bankMask is NumBanks-1 when NumBanks is a power of two (the usual
	// cache-matched geometry), letting bankOf mask instead of divide on
	// the per-memory-op path; -1 selects the modulo fallback.
	bankMask int

	// touchLists[u] holds the entries unit u has bits in, so ClearUnit
	// and Commit visit only those instead of sweeping every bank — the
	// squash and retire paths are on the simulator's critical loop.
	touchLists [][]*entry

	// Stats
	Violations    uint64
	Overflows     uint64
	StoreForwards uint64 // load bytes supplied by a buffered store
	LoadsTracked  uint64
	StoresTracked uint64

	// bankStats[i] are bank i's lifetime counters, maintained inline on
	// the alloc/store paths so they are available without a trace sink
	// attached (Stats copies them out).
	bankStats []BankStats
}

// BankStats are one ARB bank's lifetime counters.
type BankStats struct {
	Allocs       uint64 // entries allocated (first touch of a chunk)
	Overflows    uint64 // allocation attempts refused for lack of a free entry
	Violations   uint64 // memory-order violations detected on this bank's chunks
	MaxOccupancy int    // peak entries simultaneously resident
}

// Stats is the ARB's counter surface: the aggregate totals plus the
// per-bank breakdown. Banks is a copy — callers may keep it.
type Stats struct {
	Banks []BankStats

	Allocs        uint64
	Overflows     uint64
	Violations    uint64
	StoreForwards uint64
	LoadsTracked  uint64
	StoresTracked uint64

	// MaxOccupancy is the peak occupancy of any single bank — the
	// capacity headroom figure the stress fuzzer reports against
	// EntriesPerBank.
	MaxOccupancy int
}

// Stats snapshots the ARB's counters: aggregates plus the per-bank
// breakdown the litmus stressor and mstrace report without needing a
// trace sink on the run.
func (a *ARB) Stats() Stats {
	s := Stats{
		Banks:         append([]BankStats(nil), a.bankStats...),
		Violations:    a.Violations,
		Overflows:     a.Overflows,
		StoreForwards: a.StoreForwards,
		LoadsTracked:  a.LoadsTracked,
		StoresTracked: a.StoresTracked,
	}
	for _, b := range a.bankStats {
		s.Allocs += b.Allocs
		if b.MaxOccupancy > s.MaxOccupancy {
			s.MaxOccupancy = b.MaxOccupancy
		}
	}
	return s
}

// New builds an ARB. numBanks and entriesPerBank mirror the data-cache
// banking (paper: 256 entries per bank).
func New(numUnits, numBanks, entriesPerBank int, policy OverflowPolicy) *ARB {
	if numUnits > MaxUnits {
		panic(fmt.Sprintf("arb: %d units exceeds MaxUnits", numUnits))
	}
	a := &ARB{
		NumUnits:       numUnits,
		NumBanks:       numBanks,
		EntriesPerBank: entriesPerBank,
		Policy:         policy,
	}
	a.banks = make([]arbBank, numBanks)
	a.bankMask = -1
	if numBanks > 0 && numBanks&(numBanks-1) == 0 {
		a.bankMask = numBanks - 1
	}
	a.touchLists = make([][]*entry, numUnits)
	a.bankStats = make([]BankStats, numBanks)
	return a
}

// arbBank indexes one bank's live entries with dense parallel arrays
// (keys[i] == ents[i].chunk): occupancy is bounded by EntriesPerBank and
// usually a few dozen chunks, so a linear key scan beats a map on the
// simulator's per-memory-op path, and released entries are pooled for
// reuse instead of churning 300-byte heap allocations. Pooling is safe
// because release only fires on an empty entry as it leaves the last
// touch list that references it.
type arbBank struct {
	keys []uint32
	ents []*entry
	pool []*entry
}

func (b *arbBank) find(chunk uint32) *entry {
	for i, k := range b.keys {
		if k == chunk {
			return b.ents[i]
		}
	}
	return nil
}

func (b *arbBank) insert(e *entry) {
	b.keys = append(b.keys, e.chunk)
	b.ents = append(b.ents, e)
}

// take returns a zeroed entry for chunk, reusing a pooled one if
// available, and inserts it.
func (b *arbBank) take(chunk uint32) *entry {
	var e *entry
	if n := len(b.pool); n > 0 {
		e = b.pool[n-1]
		b.pool = b.pool[:n-1]
		*e = entry{chunk: chunk}
	} else {
		e = &entry{chunk: chunk}
	}
	b.insert(e)
	return e
}

// remove drops e from the bank (identity-checked) and pools it.
func (b *arbBank) remove(e *entry) {
	for i, k := range b.keys {
		if k == e.chunk {
			if b.ents[i] != e {
				return
			}
			last := len(b.keys) - 1
			b.keys[i] = b.keys[last]
			b.ents[i] = b.ents[last]
			b.keys = b.keys[:last]
			b.ents[last] = nil
			b.ents = b.ents[:last]
			b.pool = append(b.pool, e)
			return
		}
	}
}

// reset empties the bank, keeping the allocated entries pooled.
func (b *arbBank) reset() {
	b.pool = append(b.pool, b.ents...)
	b.keys = b.keys[:0]
	for i := range b.ents {
		b.ents[i] = nil
	}
	b.ents = b.ents[:0]
}

// touch puts e on unit's touch list (once). Callers must only touch
// entries they are about to set bits in, so that an entry on a unit's
// list always carries that unit's bits until ClearUnit/Commit removes
// both together.
func (a *ARB) touch(e *entry, unit int) {
	bit := uint32(1) << uint(unit)
	if e.touched&bit == 0 {
		e.touched |= bit
		a.touchLists[unit] = append(a.touchLists[unit], e)
	}
}

func (a *ARB) bankOf(chunk uint32) int {
	if a.bankMask >= 0 {
		return int(chunk) & a.bankMask
	}
	return int(chunk) % a.NumBanks
}

// dist is the stage distance of unit u from the head in circular order.
func (a *ARB) dist(u, head int) int { return (u - head + a.NumUnits) % a.NumUnits }

// find returns the entry for a chunk, or nil.
func (a *ARB) find(chunk uint32) *entry {
	return a.banks[a.bankOf(chunk)].find(chunk)
}

// alloc returns the entry for a chunk, allocating it if needed. ok=false
// means the bank is full (the caller applies the overflow policy).
func (a *ARB) alloc(chunk uint32) (*entry, bool) {
	bi := a.bankOf(chunk)
	bank := &a.banks[bi]
	if e := bank.find(chunk); e != nil {
		return e, true
	}
	if len(bank.keys) >= a.EntriesPerBank {
		a.Overflows++
		a.bankStats[bi].Overflows++
		if a.Sink != nil {
			a.Sink.Emit(trace.Event{Cycle: a.Now, Kind: trace.KARBOverflow, Unit: -1, Task: -1, Arg: chunk * chunkBytes})
		}
		return nil, false
	}
	e := bank.take(chunk)
	a.bankStats[bi].Allocs++
	if occ := len(bank.keys); occ > a.bankStats[bi].MaxOccupancy {
		a.bankStats[bi].MaxOccupancy = occ
	}
	if a.Sink != nil {
		a.Sink.Emit(trace.Event{Cycle: a.Now, Kind: trace.KARBAlloc, Unit: -1, Task: -1, Arg: chunk * chunkBytes})
	}
	return e, true
}

// LoadResult is the outcome of an ARB load.
type LoadResult struct {
	Value    uint64 // raw big-endian value, low `size` bytes
	Overflow bool   // bank full and the load-bit could not be recorded
}

// Load performs a speculative load for `unit` (with the given head and
// active-unit count): each byte comes from the nearest predecessor (or
// own) buffered store, falling back to backing memory. Load bits are
// recorded for non-head units so future predecessor stores can detect a
// violation. Aligned accesses never straddle a chunk.
func (a *ARB) Load(unit, head, active int, addr uint32, size int, backing *mem.Memory) LoadResult {
	chunk := addr / chunkBytes
	off := int(addr % chunkBytes)
	du := a.dist(unit, head)

	e := a.find(chunk)
	needTrack := du > 0 // head loads need no load bits
	if e == nil && needTrack {
		var ok bool
		e, ok = a.alloc(chunk)
		if !ok {
			return LoadResult{Overflow: true}
		}
	}

	var val uint64
	for i := 0; i < size; i++ {
		b := off + i
		byteVal := backing.Byte(addr + uint32(i))
		supplier := -1
		if e != nil {
			bestDist := -1
			for u := 0; u < a.NumUnits; u++ {
				if e.stores[b]&(1<<uint(u)) == 0 {
					continue
				}
				d := a.dist(u, head)
				if d >= active || d > du {
					continue
				}
				if d > bestDist {
					bestDist, supplier = d, u
				}
			}
			if supplier >= 0 {
				byteVal = e.data[supplier][b]
				a.StoreForwards++
			}
		}
		if needTrack && supplier != unit {
			e.loads[b] |= 1 << uint(unit)
			a.touch(e, unit)
		}
		val = val<<8 | uint64(byteVal)
	}
	a.LoadsTracked++
	return LoadResult{Value: val}
}

// StoreResult is the outcome of an ARB store.
type StoreResult struct {
	// Violator is the distance-earliest successor unit whose earlier load
	// of one of these bytes is now stale; -1 if none. The core squashes
	// that unit and all its successors.
	Violator int
	// Overflow means the bank was full and the store could not be
	// buffered; for the head unit the caller may write memory directly
	// instead (head stores are non-speculative).
	Overflow bool
}

// Store buffers a speculative store and checks for memory-order
// violations among the active successor units.
func (a *ARB) Store(unit, head, active int, addr uint32, size int, value uint64) StoreResult {
	chunk := addr / chunkBytes
	off := int(addr % chunkBytes)
	du := a.dist(unit, head)

	e, ok := a.alloc(chunk)
	if !ok {
		return StoreResult{Violator: -1, Overflow: true}
	}

	a.touch(e, unit)
	violator := -1
	violDist := a.NumUnits + 1
	for i := size - 1; i >= 0; i-- {
		b := off + i
		e.data[unit][b] = byte(value)
		value >>= 8
		e.stores[b] |= 1 << uint(unit)

		// Violation scan: a later unit w that loaded byte b from a stage
		// at or before `unit` (no intervening store between unit and w)
		// read a value this store supersedes.
		for w := 0; w < a.NumUnits; w++ {
			dw := a.dist(w, head)
			if dw <= du || dw >= active {
				continue
			}
			if e.loads[b]&(1<<uint(w)) == 0 {
				continue
			}
			intervening := false
			for x := 0; x < a.NumUnits; x++ {
				dx := a.dist(x, head)
				if dx > du && dx < dw && e.stores[b]&(1<<uint(x)) != 0 {
					intervening = true
					break
				}
			}
			if !intervening && dw < violDist {
				violDist, violator = dw, w
			}
		}
	}
	if violator >= 0 {
		a.Violations++
		a.bankStats[a.bankOf(chunk)].Violations++
		if a.Sink != nil {
			a.Sink.Emit(trace.Event{Cycle: a.Now, Kind: trace.KARBViolation, Unit: int8(violator), Task: -1, Arg: addr})
		}
	}
	a.StoresTracked++
	return StoreResult{Violator: violator}
}

// ClearUnit erases all of a squashed unit's load bits, store bits, and
// buffered data, freeing entries that become empty. Only the entries on
// the unit's touch list are visited.
func (a *ARB) ClearUnit(unit int) {
	bit := uint32(1) << uint(unit)
	list := a.touchLists[unit]
	for _, e := range list {
		for b := 0; b < chunkBytes; b++ {
			e.loads[b] &^= bit
			e.stores[b] &^= bit
		}
		e.data[unit] = [8]byte{}
		e.touched &^= bit
		a.release(e)
	}
	a.touchLists[unit] = list[:0]
}

// Commit drains the retiring head unit's buffered stores into backing
// memory and clears its bits. It returns the number of chunks written
// (the data-cache update traffic at retire).
func (a *ARB) Commit(unit int, backing *mem.Memory) int {
	bit := uint32(1) << uint(unit)
	written := 0
	list := a.touchLists[unit]
	for _, e := range list {
		wrote := false
		for b := 0; b < chunkBytes; b++ {
			if e.stores[b]&bit != 0 {
				backing.SetByte(e.chunk*chunkBytes+uint32(b), e.data[unit][b])
				e.stores[b] &^= bit
				wrote = true
			}
			e.loads[b] &^= bit
		}
		if wrote {
			written++
		}
		e.data[unit] = [8]byte{}
		e.touched &^= bit
		a.release(e)
	}
	a.touchLists[unit] = list[:0]
	return written
}

// release frees an entry's bank slot once no unit holds bits in it. The
// identity check guards against a stale list reference to an entry whose
// chunk slot has since been reallocated.
func (a *ARB) release(e *entry) {
	if !e.empty() {
		return
	}
	a.banks[a.bankOf(e.chunk)].remove(e)
}

// View reads memory as `unit` would see it (ARB first, then backing) —
// used by syscalls that read buffers written earlier in the same task.
type View struct {
	ARB     *ARB
	Unit    int
	Head    int
	Active  int
	Backing *mem.Memory
}

// Byte implements interp.MemReader over the speculative view. It does not
// record load bits (syscalls execute at the head, non-speculatively).
func (v *View) Byte(addr uint32) byte {
	chunk := addr / chunkBytes
	b := int(addr % chunkBytes)
	if e := v.ARB.find(chunk); e != nil {
		du := v.ARB.dist(v.Unit, v.Head)
		best, supplier := -1, -1
		for u := 0; u < v.ARB.NumUnits; u++ {
			if e.stores[b]&(1<<uint(u)) == 0 {
				continue
			}
			d := v.ARB.dist(u, v.Head)
			if d >= v.Active || d > du {
				continue
			}
			if d > best {
				best, supplier = d, u
			}
		}
		if supplier >= 0 {
			return e.data[supplier][b]
		}
	}
	return v.Backing.Byte(addr)
}

// Occupancy returns the total entries in use (for stats / stall policy).
func (a *ARB) Occupancy() int {
	n := 0
	for i := range a.banks {
		n += len(a.banks[i].keys)
	}
	return n
}

// BankIndex returns the bank an address maps to — the pow2 mask or
// modulo mapping Load/Store use internally, exported so squash events
// and litmus repro artifacts can name the conflicting bank.
func (a *ARB) BankIndex(addr uint32) int {
	return a.bankOf(addr / chunkBytes)
}

// BankFull reports whether the bank holding addr has no free entries and
// no existing entry for that address — i.e. a new operation there would
// overflow.
func (a *ARB) BankFull(addr uint32) bool {
	chunk := addr / chunkBytes
	bank := &a.banks[a.bankOf(chunk)]
	if bank.find(chunk) != nil {
		return false
	}
	return len(bank.keys) >= a.EntriesPerBank
}

// Reset clears everything.
func (a *ARB) Reset() {
	for i := range a.banks {
		a.banks[i].reset()
	}
	for i := range a.touchLists {
		a.touchLists[i] = a.touchLists[i][:0]
	}
	a.Violations, a.Overflows, a.StoreForwards = 0, 0, 0
	a.LoadsTracked, a.StoresTracked = 0, 0
	for i := range a.bankStats {
		a.bankStats[i] = BankStats{}
	}
}
