package core

import (
	"bytes"
	"os"
	"testing"

	"multiscalar/internal/arb"
	"multiscalar/internal/trace"
)

type nopSink struct{}

func (nopSink) Emit(trace.Event) {}

func sampleConfigs() []Config {
	cfgs := []Config{
		DefaultConfig(8, 1, false),
		DefaultConfig(8, 2, true),
		DefaultConfig(4, 1, false),
		DefaultConfig(1, 1, false),
		ScalarConfig(1, false),
		ScalarConfig(2, true),
	}
	c := DefaultConfig(8, 1, false)
	c.ARBPolicy = arb.PolicySquash
	c.ARBEntries = 2
	cfgs = append(cfgs, c)
	c = DefaultConfig(8, 1, false)
	c.NoSkip = true
	cfgs = append(cfgs, c)
	c = DefaultConfig(8, 1, false)
	c.StaticPredict = true
	c.SharedFPUnits = 1
	c.RingLatency = 4
	c.Latencies.IntMul = 24
	cfgs = append(cfgs, c)
	return cfgs
}

func TestMarshalCanonicalRoundTrip(t *testing.T) {
	for i, c := range sampleConfigs() {
		enc, err := c.MarshalCanonical()
		if err != nil {
			t.Fatalf("config %d: %v", i, err)
		}
		enc2, err := c.MarshalCanonical()
		if err != nil || !bytes.Equal(enc, enc2) {
			t.Fatalf("config %d: canonical encoding not deterministic", i)
		}
		got, err := UnmarshalCanonicalConfig(enc)
		if err != nil {
			t.Fatalf("config %d: decode: %v", i, err)
		}
		if got != c {
			t.Fatalf("config %d: round trip mismatch:\n got %#v\nwant %#v", i, got, c)
		}
	}
}

// TestCanonicalExcludesObservers pins that the runtime-only attachments
// never reach the encoding: a configuration with a trace writer and an
// event sink keys identically to the bare machine description.
func TestCanonicalExcludesObservers(t *testing.T) {
	c := DefaultConfig(8, 1, false)
	bare, err := c.MarshalCanonical()
	if err != nil {
		t.Fatal(err)
	}
	c.Trace = os.Stderr
	c.Sink = nopSink{}
	observed, err := c.MarshalCanonical()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bare, observed) {
		t.Fatalf("observers changed the canonical encoding:\n%s\nvs\n%s", bare, observed)
	}
}

func TestCanonicalVersionRejected(t *testing.T) {
	if _, err := UnmarshalCanonicalConfig([]byte(`{"v":99}`)); err == nil {
		t.Fatal("unknown canonical version accepted")
	}
	if _, err := UnmarshalCanonicalConfig([]byte(`not json`)); err == nil {
		t.Fatal("malformed canonical config accepted")
	}
}
