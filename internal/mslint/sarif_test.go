package mslint_test

import (
	"encoding/json"
	"fmt"
	"testing"

	"multiscalar/internal/mslint"
)

// orderSrc produces four findings across two anchors: $s3 is dead at
// every successor (MS002) and $s1 is never written (MS017), both
// anchored at the task entry on line 3; neither is ever sent, so the
// coverage check flags both at the exit on line 4.
const orderSrc = `
main:
	li $s0, 1 !f
	j next !s
next:
	add $a0, $s0, $s1
	li $v0, 10
	li $a0, 0
	syscall
.task main targets=next create=$s0,$s1,$s3
.task next
`

// TestDiagnosticOrder pins the documented report order: ascending by
// source line, then instruction address, then code, then register. The
// four findings of orderSrc exercise every tier — two share line AND
// address (code breaks the tie), two share line, address and code
// (register breaks the tie).
func TestDiagnosticOrder(t *testing.T) {
	rep := lintSrc(t, orderSrc)
	got := ""
	for _, d := range rep.Diags {
		got += fmt.Sprintf("%d:%s:%s ", d.Line, d.Code, d.Reg)
	}
	want := "3:MS002:$s3 3:MS017:$s1 4:MS003:$s1 4:MS003:$s3 "
	if got != want {
		t.Fatalf("diagnostic order:\n got %q\nwant %q\nreport:\n%s", got, want, rep)
	}
}

// TestSARIF checks the SARIF 2.1.0 rendering: schema fields, full rule
// metadata, one result per finding in report order, with line regions.
func TestSARIF(t *testing.T) {
	rep := lintSrc(t, orderSrc)
	data, err := rep.SARIF("prog.s")
	if err != nil {
		t.Fatalf("SARIF: %v", err)
	}
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				Level     string `json:"level"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(data, &log); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 {
		t.Fatalf("version %q, %d runs", log.Version, len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "mslint" {
		t.Errorf("driver %q", run.Tool.Driver.Name)
	}
	if len(run.Tool.Driver.Rules) != 19 {
		t.Errorf("%d rules, want 19 (docs/lint.md)", len(run.Tool.Driver.Rules))
	}
	if len(run.Results) != len(rep.Diags) {
		t.Fatalf("%d results, %d diags", len(run.Results), len(rep.Diags))
	}
	for i, res := range run.Results {
		d := &rep.Diags[i]
		if res.RuleID != d.Code {
			t.Errorf("result %d: rule %s, diag %s (order must match the report)", i, res.RuleID, d.Code)
		}
		wantLevel := "warning"
		if d.Severity == mslint.SevError {
			wantLevel = "error"
		}
		if res.Level != wantLevel {
			t.Errorf("result %d: level %s, want %s", i, res.Level, wantLevel)
		}
		if len(res.Locations) != 1 ||
			res.Locations[0].PhysicalLocation.ArtifactLocation.URI != "prog.s" ||
			res.Locations[0].PhysicalLocation.Region.StartLine != d.Line {
			t.Errorf("result %d: bad location %+v", i, res.Locations)
		}
	}
}
