package snapshot_test

import (
	"testing"

	"multiscalar/internal/asm"
	"multiscalar/internal/core"
	"multiscalar/internal/interp"
	"multiscalar/internal/isa"
	"multiscalar/internal/workloads"
)

// FuzzSnapshot feeds arbitrary bytes to Restore on all three machine
// kinds. Any input may be rejected with an error; none may panic or
// over-allocate (the decoder validates every count against the bytes
// remaining before allocating).
func FuzzSnapshot(f *testing.F) {
	buildF := func(name string, mode asm.Mode) *isa.Program {
		w := workloads.Get(name)
		p, err := w.Build(mode, w.TestScale)
		if err != nil {
			f.Fatal(err)
		}
		return p
	}
	sp := buildF("wc", asm.ModeScalar)
	mp := buildF("wc", asm.ModeMultiscalar)
	cfg := core.DefaultConfig(4, 1, false)

	// Seed the corpus with genuine snapshots of each kind.
	im := interp.NewMachine(sp, interp.NewSysEnv())
	for i := 0; i < 100; i++ {
		if err := im.Step(); err != nil {
			f.Fatal(err)
		}
	}
	if snap, err := im.Save(); err == nil {
		f.Add(snap)
	}
	{
		s := core.NewScalar(sp, interp.NewSysEnv(), core.ScalarConfig(1, false))
		var snap []byte
		s.ScheduleCheckpoint(50, func() error {
			snap, _ = s.Save()
			return errInterrupted
		})
		s.Run() //nolint:errcheck
		if snap != nil {
			f.Add(snap)
		}
	}
	{
		m, err := core.NewMultiscalar(mp, interp.NewSysEnv(), cfg)
		if err != nil {
			f.Fatal(err)
		}
		var snap []byte
		m.ScheduleCheckpoint(50, func() error {
			snap, _ = m.Save()
			return errInterrupted
		})
		m.Run() //nolint:errcheck
		if snap != nil {
			f.Add(snap)
		}
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		im := interp.NewMachine(sp, interp.NewSysEnv())
		im.Restore(data) //nolint:errcheck

		s := core.NewScalar(sp, interp.NewSysEnv(), core.ScalarConfig(1, false))
		s.Restore(data) //nolint:errcheck

		m, err := core.NewMultiscalar(mp, interp.NewSysEnv(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		m.Restore(data) //nolint:errcheck
	})
}
