package sample

import (
	"math/rand"
	"testing"

	"multiscalar/internal/asm"
	"multiscalar/internal/core"
	"multiscalar/internal/interp"
	"multiscalar/internal/isa"
	"multiscalar/internal/workloads"
)

func buildMulti(t *testing.T, name string, scale int) *isa.Program {
	t.Helper()
	w := workloads.Get(name)
	if w == nil {
		t.Fatalf("unknown workload %q", name)
	}
	p, err := w.Build(asm.ModeMultiscalar, scale)
	if err != nil {
		t.Fatalf("build %s: %v", name, err)
	}
	return p
}

func fullCycles(t *testing.T, p *isa.Program, cfg core.Config) uint64 {
	t.Helper()
	m, err := core.NewMultiscalar(p, interp.NewSysEnv(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res.Cycles
}

// TestFullDetailFallback: a run too short to sample must fall back to
// one exact detailed run reported as a zero-width interval.
func TestFullDetailFallback(t *testing.T) {
	p := buildMulti(t, "xlisp", workloads.Get("xlisp").TestScale)
	cfg := core.DefaultConfig(4, 1, false)
	est, err := Run(p, cfg, Params{}, nil, 1<<40, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !est.FullDetail {
		t.Fatalf("expected full-detail fallback at test scale, got %d windows", est.Windows)
	}
	full := fullCycles(t, p, cfg)
	if est.EstCycles != full || est.CyclesLow != full || est.CyclesHi != full {
		t.Errorf("full-detail estimate %d [%d,%d], want exact %d",
			est.EstCycles, est.CyclesLow, est.CyclesHi, full)
	}
	if !est.InCI(full) {
		t.Error("exact cycles outside the (zero-width) CI")
	}
}

// TestSampledAccuracy: at a long-run scale, the sampled estimate of the
// two longest workloads must bracket the exact cycle count and pay at
// least 10× fewer detailed cycles — the acceptance bar the msbench
// -sampled -sample-gate 10 CI job enforces.
func TestSampledAccuracy(t *testing.T) {
	if testing.Short() {
		t.Skip("long-run sampled accuracy check")
	}
	cfg := core.DefaultConfig(8, 2, true)
	for _, tc := range []struct {
		name     string
		scaleMul int
	}{
		{"example", 16},
		{"wc", 16},
	} {
		p := buildMulti(t, tc.name, workloads.Get(tc.name).DefaultScale*tc.scaleMul)
		est, err := Run(p, cfg, Params{}, nil, 1<<40, nil)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		full := fullCycles(t, p, cfg)
		if !est.InCI(full) {
			t.Errorf("%s: exact %d outside 95%% CI [%d, %d] (estimate %d, err %+.2f%%)",
				tc.name, full, est.CyclesLow, est.CyclesHi, est.EstCycles, est.ErrPct(full))
		}
		if red := est.DetailReduction(full); red < 10 {
			t.Errorf("%s: detailed-cycle reduction %.1fx, want >= 10x", tc.name, red)
		}
		if est.FullDetail {
			t.Errorf("%s: fell back to full detail at long-run scale", tc.name)
		}
	}
}

// TestCICoverageProperty: across seeded sampling offsets and table
// workloads, the exact cycle count must land inside the reported 95%
// confidence interval on at least 93% of trials (the SMARTS coverage
// property, with a small slack for the finite trial count).
func TestCICoverageProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("many sampled runs")
	}
	cfg := core.DefaultConfig(8, 2, true)
	rng := rand.New(rand.NewSource(1))
	const trialsPer = 6
	trials, covered := 0, 0
	for _, name := range []string{"compress", "eqntott", "gcc", "wc"} {
		p := buildMulti(t, name, workloads.Get(name).DefaultScale*8)
		full := fullCycles(t, p, cfg)
		// Derive the default regime once so seeded offsets stay inside the
		// first period (every offset shifts all windows together).
		base, err := Run(p, cfg, Params{}, nil, 1<<40, nil)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		period := base.Params.PeriodInstrs
		for i := 0; i < trialsPer; i++ {
			off := 1 + rng.Uint64()%period
			est, err := Run(p, cfg, Params{OffsetInstrs: off}, nil, 1<<40, nil)
			if err != nil {
				t.Fatalf("%s offset %d: %v", name, off, err)
			}
			trials++
			if est.InCI(full) {
				covered++
			} else {
				t.Logf("%s offset=%d: exact %d outside [%d, %d] (est %d, err %+.2f%%)",
					name, off, full, est.CyclesLow, est.CyclesHi, est.EstCycles, est.ErrPct(full))
			}
		}
	}
	coverage := float64(covered) / float64(trials)
	t.Logf("CI coverage: %d/%d trials (%.1f%%)", covered, trials, 100*coverage)
	if coverage < 0.93 {
		t.Errorf("95%% CI covered the exact cycles on only %.1f%% of trials, want >= 93%%", 100*coverage)
	}
}

// TestSampledOracleOutput: the estimate's program-visible outcome comes
// from the functional pass and must match a real run exactly.
func TestSampledOracleOutput(t *testing.T) {
	p := buildMulti(t, "wc", workloads.Get("wc").DefaultScale)
	cfg := core.DefaultConfig(8, 2, true)
	est, err := Run(p, cfg, Params{}, nil, 1<<40, nil)
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.NewMultiscalar(p, interp.NewSysEnv(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if est.Out != res.Out || est.ExitCode != res.ExitCode {
		t.Errorf("sampled outcome (%q, %d) != detailed run (%q, %d)",
			est.Out, est.ExitCode, res.Out, res.ExitCode)
	}
	if est.TotalInstrs != res.Committed {
		t.Errorf("functional total %d != committed %d", est.TotalInstrs, res.Committed)
	}
}
