package bench

import (
	"fmt"
	"sort"
	"strings"
)

// sectionNames is the single registry of named msbench sections, in
// display order. The -sections flag help, its error message, and the
// selection logic all derive from this list, so adding a section here is
// the only edit needed to make it addressable.
var sectionNames = []string{
	"table1", "table2", "table3", "table4",
	"breakdown", "ablate", "sweep", "mix", "annotate", "sampled",
}

// SectionNames returns the valid -sections names in display order.
func SectionNames() []string {
	out := make([]string, len(sectionNames))
	copy(out, sectionNames)
	return out
}

// ParseSections parses a comma-separated -sections value into a
// selection set. Unknown names are an error that lists every valid name
// (and suggests the closest one for likely typos) instead of silently
// selecting nothing. An empty value yields an empty, non-nil set.
func ParseSections(s string) (map[string]bool, error) {
	known := make(map[string]bool, len(sectionNames))
	for _, n := range sectionNames {
		known[n] = true
	}
	sel := make(map[string]bool)
	for _, name := range strings.Split(s, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if !known[name] {
			msg := fmt.Sprintf("unknown section %q (valid: %s)", name, strings.Join(sectionNames, ","))
			if hint := closestSection(name); hint != "" {
				msg += fmt.Sprintf("; did you mean %q?", hint)
			}
			return nil, fmt.Errorf("%s", msg)
		}
		sel[name] = true
	}
	return sel, nil
}

// closestSection returns the registered name with the smallest edit
// distance from s, or "" when nothing is close enough to be a plausible
// typo.
func closestSection(s string) string {
	s = strings.ToLower(s)
	best, bestDist := "", 3 // distance >= 3 is not a typo, it's a different word
	names := SectionNames()
	sort.Strings(names) // deterministic tie-break independent of display order
	for _, n := range names {
		if d := editDistance(s, n); d < bestDist {
			best, bestDist = n, d
		}
	}
	return best
}

func editDistance(a, b string) int {
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = min(prev[j]+1, min(cur[j-1]+1, prev[j-1]+cost))
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}
