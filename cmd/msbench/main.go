// msbench regenerates the paper's evaluation section: Table 1 (functional
// unit latencies, printed from the configuration), Table 2 (dynamic
// instruction counts), Tables 3 and 4 (speedups and prediction accuracies
// for in-order and out-of-order units), the Section 3 cycle-distribution
// breakdown, and the ablation sweeps.
//
// Independent simulation jobs run concurrently on a worker pool bounded
// by GOMAXPROCS, with builds and functional-oracle runs memoized per
// (workload, mode, scale); all tables are byte-identical to the
// sequential path (-seq).
//
// Usage:
//
//	msbench -table 3              one table at full benchmark scale
//	msbench -all -quick           everything at the fast test scale
//	msbench -breakdown -units 8
//	msbench -ablate
//	msbench -all -seq             force the sequential path
//	msbench -all -json out.json   also write a timing/throughput report
//	msbench -all -noskip          force the dense per-cycle simulation loop
//	msbench -sections table3,sweep
//	                              run an arbitrary subset of sections by name
//	msbench -sampled -sample-gate 10
//	                              sampled-simulation estimates vs exact long
//	                              runs (not part of -all; docs/perf.md)
//	msbench -all -json out.json -baseline BENCH.json -tolerance 0.25
//	                              compare per-section wall clock against a
//	                              checked-in baseline; exit 1 on regression
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime/debug"
	"runtime/pprof"
	"strings"

	"multiscalar/internal/bench"
	"multiscalar/internal/isa"
)

func main() {
	// Batch tool: trade heap headroom for throughput. The timing cores
	// allocate steadily (ARB entries, cache fills, result assembly) and
	// the default GOGC=100 spends a double-digit share of a full run in
	// collection and write-barrier work on the 1-core CI runner.
	debug.SetGCPercent(400)
	var (
		table      = flag.Int("table", 0, "print one table (1-4)")
		all        = flag.Bool("all", false, "print every table")
		breakdown  = flag.Bool("breakdown", false, "print the Section 3 cycle distribution")
		ablate     = flag.Bool("ablate", false, "run the ablation sweeps")
		annotate   = flag.Bool("annotate", false, "compare hand annotations against the optimizer's (not part of -all; see docs/annotate.md)")
		sampled    = flag.Bool("sampled", false, "compare sampled-simulation estimates against exact long runs (not part of -all; see docs/perf.md)")
		sampleGate = flag.Float64("sample-gate", 0, "with -sampled: exit 1 unless every workload's exact cycles land in the 95% CI and detailed cycles shrink by at least this factor")
		sweep      = flag.Bool("sweep", false, "print speedup-vs-units curves (figure-style view)")
		mix        = flag.Bool("mix", false, "print the dynamic instruction mix of the benchmarks")
		units      = flag.Int("units", 8, "unit count for -breakdown")
		quick      = flag.Bool("quick", false, "use fast test-scale inputs")
		seq        = flag.Bool("seq", false, "force the sequential path (1 worker)")
		par        = flag.Int("par", 0, "cap concurrent simulation jobs (default GOMAXPROCS)")
		jsonOut    = flag.String("json", "", "write a machine-readable timing/throughput report to this file (- for stdout)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		noskip     = flag.Bool("noskip", false, "disable the simulator's wakeup scheduler (dense per-cycle ticking; tables are byte-identical either way)")
		sections   = flag.String("sections", "", "comma-separated sections to run ("+strings.Join(bench.SectionNames(), ",")+")")
		baseline   = flag.String("baseline", "", "compare the -json report's section times against this checked-in BENCH_*.json and exit 1 on regression")
		tolerance  = flag.Float64("tolerance", 0.25, "allowed fractional slowdown per section for -baseline (0.25 = +25%)")
	)
	flag.Parse()

	if *seq {
		bench.SetWorkers(1)
	} else if *par > 0 {
		bench.SetWorkers(*par)
	}
	bench.SetNoSkip(*noskip)
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		check(err)
		check(pprof.StartCPUProfile(f))
		defer pprof.StopCPUProfile()
	}

	// -sections picks an arbitrary subset by name, so a regression hunt on
	// one table doesn't pay for the full -all run. The name registry lives
	// in the bench package so this list, the flag help, and the error
	// message can't drift apart.
	sel, err := bench.ParseSections(*sections)
	if err != nil {
		fmt.Fprintf(os.Stderr, "msbench: %v\n", err)
		os.Exit(2)
	}
	want := func(name string) bool { return sel[name] }

	scale := bench.Scale(0)
	if *quick {
		scale = -1
	}
	report := bench.NewReport(scale)

	ran := false
	if *all || *table == 1 || want("table1") {
		report.Time("table1", printTable1)
		ran = true
	}
	if *all || *table == 2 || want("table2") {
		report.Time("table2", func() {
			rows, err := bench.Table2(scale)
			check(err)
			fmt.Println(bench.FormatTable2(rows))
		})
		ran = true
	}
	if *all || *table == 3 || want("table3") {
		report.Time("table3", func() {
			for _, width := range []int{1, 2} {
				rows, err := bench.PerfTable(width, false, scale)
				check(err)
				fmt.Println(bench.FormatPerfTable(
					fmt.Sprintf("Table 3: in-order %d-way issue units", width), rows))
			}
		})
		ran = true
	}
	if *all || *table == 4 || want("table4") {
		report.Time("table4", func() {
			for _, width := range []int{1, 2} {
				rows, err := bench.PerfTable(width, true, scale)
				check(err)
				fmt.Println(bench.FormatPerfTable(
					fmt.Sprintf("Table 4: out-of-order %d-way issue units", width), rows))
			}
		})
		ran = true
	}
	if *breakdown || *all || want("breakdown") {
		report.Time("breakdown", func() {
			rows, err := bench.Breakdown(*units, scale)
			check(err)
			fmt.Println(bench.FormatBreakdown(rows))
		})
		ran = true
	}
	if *ablate || *all || want("ablate") {
		report.Time("ablate", func() { runAblations(scale) })
		ran = true
	}
	// Deliberately not part of -all: the -all output stays byte-identical
	// with the annotation optimizer present but unused.
	if *annotate || want("annotate") {
		report.Time("annotate", func() {
			rows, err := bench.AnnotateAblation(scale)
			check(err)
			fmt.Println(bench.FormatAnnotate(rows))
		})
		ran = true
	}
	// Also not part of -all, for the same byte-identity reason: sampled
	// runs are estimates, never inputs to the paper tables.
	if *sampled || want("sampled") {
		report.Time("sampled", func() {
			rows, err := bench.RunSampled(scale)
			check(err)
			fmt.Println(bench.FormatSampled(rows))
			if *sampleGate > 0 {
				if fails := bench.GateSampled(rows, *sampleGate); len(fails) > 0 {
					fmt.Fprintln(os.Stderr, "msbench: sampled-simulation gate failed:")
					for _, f := range fails {
						fmt.Fprintln(os.Stderr, "  "+f)
					}
					os.Exit(1)
				}
				fmt.Fprintf(os.Stderr, "msbench: sampled gate passed (in-CI, ≥%.1fx detail reduction)\n", *sampleGate)
			}
		})
		ran = true
	}
	if *sweep || *all || want("sweep") {
		report.Time("sweep", func() {
			curves, err := bench.SpeedupCurves(1, false, scale, []int{2, 4, 8, 16})
			check(err)
			fmt.Println(bench.FormatCurves("Speedup vs unit count (1-way in-order units)", curves))
		})
		ran = true
	}
	if *mix || *all || want("mix") {
		report.Time("mix", func() {
			rows, err := bench.Mixes(scale)
			check(err)
			fmt.Println(bench.FormatMixes(rows))
		})
		ran = true
	}
	if !ran {
		flag.Usage()
		os.Exit(2)
	}

	if *jsonOut != "" || *baseline != "" {
		data, err := report.Finalize()
		check(err)
		if *jsonOut == "-" {
			fmt.Println(string(data))
		} else if *jsonOut != "" {
			check(os.WriteFile(*jsonOut, append(data, '\n'), 0o644))
		}
		if *baseline != "" {
			raw, err := os.ReadFile(*baseline)
			check(err)
			base, err := bench.ReadReport(raw)
			check(err)
			cur, err := bench.ReadReport(data)
			check(err)
			if regressions := bench.Compare(base, cur, *tolerance); len(regressions) > 0 {
				fmt.Fprintf(os.Stderr, "msbench: performance regressions vs %s:\n", *baseline)
				for _, r := range regressions {
					fmt.Fprintln(os.Stderr, "  "+r)
				}
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "msbench: within %.0f%% of baseline %s\n", 100**tolerance, *baseline)
		}
	}
}

func printTable1() {
	l := isa.Table1()
	fmt.Println("Table 1: functional unit latencies (cycles)")
	fmt.Printf("  %-12s %2d    %-14s %2d\n", "Add/Sub", l.IntAddSub, "SP Add/Sub", l.SPAddSub)
	fmt.Printf("  %-12s %2d    %-14s %2d\n", "Shift/Logic", l.ShiftLogic, "SP Multiply", l.SPMul)
	fmt.Printf("  %-12s %2d    %-14s %2d\n", "Multiply", l.IntMul, "SP Divide", l.SPDiv)
	fmt.Printf("  %-12s %2d    %-14s %2d\n", "Divide", l.IntDiv, "DP Add/Sub", l.DPAddSub)
	fmt.Printf("  %-12s %2d    %-14s %2d\n", "Mem Store", l.MemStore, "DP Multiply", l.DPMul)
	fmt.Printf("  %-12s %2d    %-14s %2d\n", "Mem Load", l.MemLoad, "DP Divide", l.DPDiv)
	fmt.Printf("  %-12s %2d\n\n", "Branch", l.Branch)
}

func runAblations(scale bench.Scale) {
	rows, err := bench.UnitSweep("example", scale, []int{1, 2, 4, 8, 16})
	check(err)
	fmt.Println(bench.FormatAblation("Ablation: unit count (example)", rows))

	rows, err = bench.RingLatencySweep("compress", scale, []int{0, 1, 2, 4, 8})
	check(err)
	fmt.Println(bench.FormatAblation("Ablation: ring hop latency (compress, 8 units)", rows))

	rows, err = bench.ARBSweep("tomcatv", scale, []int{2, 8, 256})
	check(err)
	fmt.Println(bench.FormatAblation("Ablation: ARB capacity and overflow policy (tomcatv, 8 units)", rows))

	rows, err = bench.ForwardingAblation("wc", scale)
	check(err)
	fmt.Println(bench.FormatAblation("Ablation: early forwarding vs completion flush (wc, 8 units)", rows))

	rows, err = bench.PredictorAblation("gcc", scale)
	check(err)
	fmt.Println(bench.FormatAblation("Ablation: PAs vs static task prediction (gcc, 8 units)", rows))

	rows, err = bench.SharedFUAblation("tomcatv", scale)
	check(err)
	fmt.Println(bench.FormatAblation("Ablation: private vs shared FP/complex units (tomcatv, 8 units)", rows))
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "msbench:", err)
		os.Exit(1)
	}
}
