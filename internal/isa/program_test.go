package isa

import "testing"

func sampleProgram() *Program {
	text := []Instr{
		{Op: OpAddi, Rd: RegT0, Rs: RegZero, Imm: 3},                            // 0x1000
		{Op: OpAddi, Rd: RegT0, Rs: RegT0, Imm: -1, Fwd: true},                  // 0x1004
		{Op: OpBne, Rs: RegT0, Rt: RegZero, Target: 0x1004, Stop: StopNotTaken}, // 0x1008
		{Op: OpSyscall}, // 0x100c
	}
	p := &Program{
		Entry: TextBase,
		Text:  text,
		Tasks: map[uint32]*TaskDescriptor{
			0x1004: {
				Name:    "loop",
				Entry:   0x1004,
				Create:  MaskOf(RegT0),
				Targets: []uint32{0x1004, 0x100c},
			},
		},
		Symbols: map[string]uint32{"loop": 0x1004},
	}
	return p
}

func TestProgramInstrAt(t *testing.T) {
	p := sampleProgram()
	if in := p.InstrAt(TextBase); in == nil || in.Op != OpAddi {
		t.Fatalf("InstrAt(TextBase) = %v", in)
	}
	if in := p.InstrAt(TextBase + 8); in == nil || in.Op != OpBne {
		t.Fatalf("InstrAt(+8) = %v", in)
	}
	if p.InstrAt(TextBase+1) != nil {
		t.Error("unaligned InstrAt should be nil")
	}
	if p.InstrAt(TextBase-4) != nil {
		t.Error("below-text InstrAt should be nil")
	}
	if p.InstrAt(p.TextEnd()) != nil {
		t.Error("past-end InstrAt should be nil")
	}
}

func TestProgramValidateOK(t *testing.T) {
	if err := sampleProgram().Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestProgramValidateErrors(t *testing.T) {
	p := sampleProgram()
	p.Entry = 0
	if err := p.Validate(); err == nil {
		t.Error("bad entry should fail")
	}

	p = sampleProgram()
	p.Tasks[0x1004].Targets = nil
	if err := p.Validate(); err != nil {
		t.Errorf("terminal task (no targets) should validate: %v", err)
	}

	p = sampleProgram()
	p.Tasks[0x1004].Targets = []uint32{0x1004, 0x1004, 0x1004, 0x1004, 0x1004}
	if err := p.Validate(); err == nil {
		t.Error("too many targets should fail")
	}

	p = sampleProgram()
	p.Tasks[0x1004].Targets = []uint32{0x9999_0000}
	if err := p.Validate(); err == nil {
		t.Error("out-of-text target should fail")
	}

	p = sampleProgram()
	p.Text[2].Target = 0x9000_0000
	if err := p.Validate(); err == nil {
		t.Error("branch outside text should fail")
	}

	p = sampleProgram()
	p.Text = nil
	if err := p.Validate(); err == nil {
		t.Error("empty text should fail")
	}
}

func TestTargetReturnAllowed(t *testing.T) {
	p := sampleProgram()
	p.Tasks[0x1004].Targets = []uint32{TargetReturn}
	if err := p.Validate(); err != nil {
		t.Fatalf("TargetReturn should validate: %v", err)
	}
}

func TestTaskDescriptorHelpers(t *testing.T) {
	td := &TaskDescriptor{Name: "x", Entry: 0x1000, Targets: []uint32{0x1000, 0x2000}}
	if !td.HasTarget(0x2000) || td.HasTarget(0x3000) {
		t.Error("HasTarget wrong")
	}
	if td.TargetIndex(0x2000) != 1 || td.TargetIndex(0x3000) != -1 {
		t.Error("TargetIndex wrong")
	}
}

func TestTaskListSorted(t *testing.T) {
	p := sampleProgram()
	p.Tasks[0x1000] = &TaskDescriptor{Name: "a", Entry: 0x1000, Targets: []uint32{0x1004}}
	list := p.TaskList()
	if len(list) != 2 || list[0].Entry != 0x1000 || list[1].Entry != 0x1004 {
		t.Fatalf("TaskList = %v", list)
	}
}
