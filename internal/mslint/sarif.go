package mslint

import (
	"encoding/json"
	"fmt"
)

// SARIF rendering of a lint report (SARIF 2.1.0), the interchange format
// code-scanning services ingest (GitHub code scanning among them). One
// run, driver "mslint", one rule per diagnostic code, one result per
// finding. Results keep the report's documented order (line, address,
// code, register), so SARIF uploads diff as stably as the text output.

// ruleInfo is the static metadata of one diagnostic code.
type ruleInfo struct {
	id, name, short string
	level           string // SARIF defaultConfiguration.level
}

// sarifRules lists every code in docs/lint.md order. The short
// descriptions compress the contract clause each code checks.
var sarifRules = []ruleInfo{
	{CodeCreateMissing, "CreateMissing", "A written register live into a successor is missing from the create mask.", "error"},
	{CodeCreateDead, "CreateDead", "A create-mask register is dead at every declared successor.", "warning"},
	{CodeFlushOnly, "FlushOnly", "A create-mask register is neither forwarded nor released on some path; successors wait for the completion flush.", "warning"},
	{CodeStaleForward, "StaleForward", "A forward bit or release precedes a possible later write; the ring would carry a stale value.", "error"},
	{CodeForeignForward, "ForeignForward", "A forward bit or release names a register outside the create mask.", "warning"},
	{CodeUndeclaredExit, "UndeclaredExit", "A stop-tagged exit leads outside the descriptor's target list.", "error"},
	{CodeUnreachableTarget, "UnreachableTarget", "A declared target is reached by no statically discoverable exit.", "warning"},
	{CodeMissingStop, "MissingStop", "Control leaves the task region without a stop bit.", "error"},
	{CodeTaskOverlap, "TaskOverlap", "Instructions are reachable from two task headers without being their own task.", "warning"},
	{CodeTooManyTargets, "TooManyTargets", "The descriptor names more targets than the hardware descriptor holds.", "error"},
	{CodeCallPushRA, "CallPushRA", "Call-exit pushra/call metadata is missing or disagrees with the code.", "warning"},
	{CodeBadTaskRef, "BadTaskRef", "A declared target or task entry does not resolve to a task descriptor.", "error"},
	{CodeStopInCallee, "StopInCallee", "A stop bit inside a called function body ends the task mid-call for every caller.", "warning"},
	{CodeIndirect, "Indirect", "An indirect call or jump defeats static exit and effect analysis.", "warning"},
	{CodeEntryNotTask, "EntryNotTask", "The program entry has no task descriptor.", "error"},
	{CodeFCCBoundary, "FCCBoundary", "An FP branch consumes a condition flag set in a previous task.", "warning"},
	{CodeOverBroadCreate, "OverBroadCreateMask", "A create-mask register is never written by the task; the ring carries a pass-through send.", "warning"},
	{CodeDeadForward, "DeadForward", "A forward bit or release of a register already sent on every path; the send never happens.", "warning"},
	{CodeLateForward, "LateForward", "A release executes after unrelated instructions although the value was already final.", "warning"},
}

// SARIF renders the report as a SARIF 2.1.0 log for one artifact (the
// linted source or container file); uri names it in result locations.
func (r *Report) SARIF(uri string) ([]byte, error) {
	type text struct {
		Text string `json:"text"`
	}
	type rule struct {
		ID        string `json:"id"`
		Name      string `json:"name"`
		ShortDesc text   `json:"shortDescription"`
		HelpURI   string `json:"helpUri,omitempty"`
		Default   struct {
			Level string `json:"level"`
		} `json:"defaultConfiguration"`
	}
	type artifactLocation struct {
		URI string `json:"uri"`
	}
	type region struct {
		StartLine int `json:"startLine"`
	}
	type physicalLocation struct {
		ArtifactLocation artifactLocation `json:"artifactLocation"`
		Region           *region          `json:"region,omitempty"`
	}
	type location struct {
		PhysicalLocation physicalLocation `json:"physicalLocation"`
	}
	type result struct {
		RuleID     string            `json:"ruleId"`
		Level      string            `json:"level"`
		Message    text              `json:"message"`
		Locations  []location        `json:"locations"`
		Properties map[string]string `json:"properties,omitempty"`
	}
	type driver struct {
		Name           string `json:"name"`
		InformationURI string `json:"informationUri"`
		Rules          []rule `json:"rules"`
	}
	type tool struct {
		Driver driver `json:"driver"`
	}
	type run struct {
		Tool    tool     `json:"tool"`
		Results []result `json:"results"`
	}
	type log struct {
		Schema  string `json:"$schema"`
		Version string `json:"version"`
		Runs    []run  `json:"runs"`
	}

	rules := make([]rule, len(sarifRules))
	for i, ri := range sarifRules {
		rules[i] = rule{ID: ri.id, Name: ri.name, ShortDesc: text{ri.short},
			HelpURI: "docs/lint.md"}
		rules[i].Default.Level = ri.level
	}
	results := make([]result, 0, len(r.Diags))
	for i := range r.Diags {
		d := &r.Diags[i]
		level := "warning"
		if d.Severity == SevError {
			level = "error"
		}
		res := result{
			RuleID:  d.Code,
			Level:   level,
			Message: text{d.String()},
			Locations: []location{{PhysicalLocation: physicalLocation{
				ArtifactLocation: artifactLocation{URI: uri},
			}}},
			Properties: map[string]string{},
		}
		if d.Line > 0 {
			res.Locations[0].PhysicalLocation.Region = &region{StartLine: d.Line}
		}
		if d.Task != "" {
			res.Properties["task"] = d.Task
		}
		if d.Reg != "" {
			res.Properties["reg"] = d.Reg
		}
		if d.Addr != 0 {
			res.Properties["addr"] = fmt.Sprintf("0x%x", d.Addr)
		}
		if len(res.Properties) == 0 {
			res.Properties = nil
		}
		results = append(results, res)
	}

	l := log{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []run{{
			Tool:    tool{Driver: driver{Name: "mslint", InformationURI: "docs/lint.md", Rules: rules}},
			Results: results,
		}},
	}
	return json.MarshalIndent(&l, "", "  ")
}
