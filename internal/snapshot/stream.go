package snapshot

// Stream is an in-memory, append-only sequence of snapshots. The
// sampled-simulation engine (internal/sample) captures one warm-state
// snapshot per detailed measurement window during functional
// fast-forward and hands the stream to parallel window workers, so the
// snapshots never touch disk. All snapshots live in one contiguous
// buffer: appends copy, reads alias, and a thousand small captures cost
// one growing allocation instead of a thousand.
//
// A Stream is written by one goroutine and, once writing is done, may
// be read concurrently by any number of goroutines.
type Stream struct {
	buf  []byte
	offs []int // offs[i] is the end of snapshot i; snapshot i starts at offs[i-1] (0 for i==0)
}

// Append copies one encoded snapshot onto the stream.
func (s *Stream) Append(snap []byte) {
	s.buf = append(s.buf, snap...)
	s.offs = append(s.offs, len(s.buf))
}

// Len returns the number of snapshots in the stream.
func (s *Stream) Len() int { return len(s.offs) }

// At returns snapshot i. The slice aliases the stream's buffer and
// must not be modified.
func (s *Stream) At(i int) []byte {
	start := 0
	if i > 0 {
		start = s.offs[i-1]
	}
	return s.buf[start:s.offs[i]]
}

// Size returns the total number of snapshot bytes held.
func (s *Stream) Size() int { return len(s.buf) }
