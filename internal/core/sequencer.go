package core

import (
	"fmt"
	"math/bits"

	"multiscalar/internal/interp"
	"multiscalar/internal/isa"
	"multiscalar/internal/trace"
)

// assign performs at most one task assignment per cycle: choose the next
// task (known exactly after a validation, or predicted from the youngest
// assigned task's descriptor), fetch its descriptor through the task
// descriptor cache, and start it on the unit after the current tail.
func (m *Multiscalar) assign(now uint64) {
	if m.terminal || m.active >= m.cfg.NumUnits {
		return
	}
	// A descriptor fetch in flight?
	if m.pending.valid {
		if now < m.pending.ready {
			return
		}
		m.doAssign(m.pending.entry, m.pending.desc, now)
		m.pending.valid = false
		return
	}

	var entry uint32
	switch {
	case m.forcedValid:
		entry = m.forced
	case m.active == 0:
		return // nothing to predict from; wait for a forced target
	default:
		tail := (m.head + m.active - 1) % m.cfg.NumUnits
		last := m.tasks[tail]
		if last.predMade {
			return // successor prediction already pending a bad target
		}
		var ok bool
		entry, ok = m.predictSuccessor(last)
		if !ok {
			return
		}
		if m.sink != nil {
			m.sink.Emit(trace.Event{Cycle: now, Kind: trace.KTaskPredict, Unit: int8(tail),
				Task: last.seq, Arg: entry})
		}
	}

	desc := m.prog.TaskAt(entry)
	if desc == nil {
		if m.forcedValid {
			// A validated actual successor must be a task: anything else
			// is a partitioning bug, surfaced loudly.
			panic(fmt.Sprintf("core: validated next task 0x%x has no descriptor", entry))
		}
		// Mispredicted into a non-task address (stale return address):
		// leave the slot empty; validation of the predecessor will force
		// the correct target and squash.
		return
	}
	ready := m.descCache.Access(now, entry, false)
	if ready > now {
		m.pending = pendingAssign{valid: true, ready: ready, entry: entry, desc: desc}
		m.progress = true // descriptor fetch started; nextWake watches pending.ready
		return
	}
	m.doAssign(entry, desc, now)
}

// predictSuccessor chooses the next task after `last`, recording the
// bookkeeping needed to validate, train, and recover.
//
// Progress marking: the no-prediction failure path (empty return stack
// without a dynamic Predict call) is idempotent — re-running it next
// cycle touches nothing — so it alone does not keep the wakeup scheduler
// ticking densely. Everything else here mutates machine state (the
// terminal latch, the predictor's histories via Predict, the RAS and the
// predMade bookkeeping on success) and must mark progress.
func (m *Multiscalar) predictSuccessor(last *taskState) (uint32, bool) {
	desc := last.desc
	if len(desc.Targets) == 0 {
		m.terminal = true
		m.progress = true
		return 0, false
	}
	last.histSnap = m.predictor.Snapshot()
	last.rasSnap = m.ras.Snapshot()
	last.histBefore = m.predictor.History(desc.Entry)

	idx := 0
	counts := len(desc.Targets) > 1
	if counts && !m.cfg.StaticPredict {
		idx = m.predictor.Predict(desc.Entry) % len(desc.Targets)
		m.progress = true // Predict shifts histories and emits trace events
	}
	tgt := desc.Targets[idx]
	var entry uint32
	if tgt == isa.TargetReturn {
		entry = m.ras.Pop()
		if entry == 0 {
			// Empty return stack: cannot guess. Wait for validation.
			m.ras.Restore(last.rasSnap)
			return 0, false
		}
	} else {
		entry = tgt
	}
	if desc.PushRA != 0 && tgt == desc.CallTarget {
		m.ras.Push(desc.PushRA)
	}

	last.predMade = true
	last.predCounts = counts
	last.predIdx = idx
	last.predEntry = entry
	m.progress = true
	return entry, true
}

func (m *Multiscalar) doAssign(entry uint32, desc *isa.TaskDescriptor, now uint64) {
	m.progress = true
	unit := (m.head + m.active) % m.cfg.NumUnits
	seq := m.nextSeq
	m.nextSeq++
	ts := &m.taskPool[unit]
	*ts = taskState{
		desc:       desc,
		entry:      entry,
		assignedAt: now,
		seq:        seq,
	}
	m.tasks[unit] = ts
	m.rebuildRegs(unit, now)
	if m.sink != nil {
		m.units[unit].SetTraceTask(seq)
		m.sink.Emit(trace.Event{Cycle: now, Kind: trace.KTaskAssign, Unit: int8(unit),
			Task: seq, Arg: entry})
	}
	m.units[unit].Start(entry, now)
	m.active++
	if m.forcedValid && m.forced == entry {
		m.forcedValid = false
	}
}

// rebuildRegs initializes a unit's register file copy at (re)assignment:
// committed state, overridden in sequence order by each active
// predecessor's create-mask registers — already-forwarded values arrive
// with their ring delay, the rest become reservations (the accum mask of
// Section 2.2).
func (m *Multiscalar) rebuildRegs(unit int, now uint64) {
	rf := m.rfs[unit]
	rf.vals = m.archRegs
	for i := range rf.readyAt {
		rf.readyAt[i] = 0
	}
	rf.pending = 0
	rf.sent = 0
	var accum isa.RegMask
	du := m.dist(unit)
	for d := 0; d < du; d++ {
		q := (m.head + d) % m.cfg.NumUnits
		qt := m.tasks[q]
		if qt == nil {
			continue
		}
		accum = accum.Union(qt.desc.Create)
		hop := uint64((du - d) * m.cfg.RingLatency)
		// Bit loop instead of RegMask.ForEach: the closure would
		// capture loop-dependent state and heap-allocate on every
		// rebuild, which is on the assignment/squash critical path.
		for bm := qt.desc.Create; bm != 0; bm &= bm - 1 {
			r := isa.Reg(bits.TrailingZeros64(uint64(bm)))
			if qt.sentMask.Has(r) {
				sv := qt.sentVals[r]
				rf.vals[r] = sv.val
				rf.readyAt[r] = sv.when + hop
				rf.pending = rf.pending.Clear(r)
			} else {
				rf.pending = rf.pending.Set(r)
			}
		}
	}
	rf.accum = accum
}

// forward sends one register value from unit p around the ring: at most
// once per register per task, paced to the unit's issue width per cycle,
// delivered hop by hop to successors until a unit whose create mask
// contains the register swallows it (that unit will produce or release
// its own version).
func (m *Multiscalar) forward(p int, now uint64, r isa.Reg, v interp.Value) {
	rf := m.rfs[p]
	if r == isa.RegZero || rf.sent.Has(r) {
		return
	}
	rf.sent = rf.sent.Set(r)
	m.ringSends++
	m.progress = true // a new value enters the ring (also reached from tryFlush)

	// Send-slot pacing.
	sc := now
	if m.sendBusy[p] > sc {
		sc = m.sendBusy[p]
	}
	if m.sendAt[p] != sc {
		m.sendAt[p] = sc
		m.sendN[p] = 0
	}
	m.sendN[p]++
	if m.sendN[p] >= m.cfg.IssueWidth {
		m.sendBusy[p] = sc + 1
	}

	m.tasks[p].sentVals[r] = sentValue{val: v, when: sc}
	m.tasks[p].sentMask = m.tasks[p].sentMask.Set(r)
	if m.sink != nil {
		m.sink.Emit(trace.Event{Cycle: sc, Kind: trace.KRingSend, Unit: int8(p),
			Task: m.tasks[p].seq, Arg: uint32(r)})
	}

	for d := 1; ; d++ {
		q := (p + d) % m.cfg.NumUnits
		if !m.withinActive(q) || q == p {
			break
		}
		if m.tasks[q] == nil {
			break
		}
		m.rfs[q].deliver(r, v, sc+uint64(d*m.cfg.RingLatency))
		if m.tasks[q].desc.Create.Has(r) {
			break // swallowed
		}
	}
}

// tryFlush forwards, at task completion, every create-mask register the
// task has not explicitly forwarded or released (Section 2.2: later tasks
// wait for any register an earlier task said it might produce, so
// remaining reservations must be cleared). Registers still awaiting a
// predecessor value retry next cycle. Returns true when all create-mask
// registers have been sent.
func (m *Multiscalar) tryFlush(unit int, now uint64) (bool, error) {
	rf := m.rfs[unit]
	ts := m.tasks[unit]
	all := true
	var err error
	for bm := ts.desc.Create; bm != 0; bm &= bm - 1 { // bit loop: see rebuildRegs
		r := isa.Reg(bits.TrailingZeros64(uint64(bm)))
		if rf.sent.Has(r) {
			if m.cfg.CheckForwards && err == nil {
				if sv := ts.sentVals[r]; sv.val != rf.vals[r] && !rf.pending.Has(r) {
					err = fmt.Errorf("core: task %s forwarded stale %v: sent %v, final %v",
						ts.desc.Name, r, sv.val, rf.vals[r])
				}
			}
			continue
		}
		if rf.pending.Has(r) {
			all = false // predecessor value still in flight; retry
			continue
		}
		m.forward(unit, now, r, rf.vals[r])
	}
	return all, err
}

// retire validates and retires the head task when it is complete
// (Section 2.3: tasks retire in assignment order; one per cycle).
func (m *Multiscalar) retire(now uint64) error {
	if m.active == 0 {
		return nil
	}
	u := m.units[m.head]
	ts := m.tasks[m.head]
	if !u.Done() {
		return nil
	}
	flushed, err := m.tryFlush(m.head, now)
	if err != nil {
		return err
	}
	if !flushed {
		return nil
	}
	m.progress = true // the head task retires this cycle

	actual := u.ExitPC()
	if len(ts.desc.Targets) > 0 && !ts.validated {
		outcomeIdx, err := m.outcomeIndex(ts, u)
		if err != nil {
			return err
		}
		if ts.predMade {
			m.validateOne(0, ts, actual, outcomeIdx, now)
		} else {
			// No successor was ever chosen (stalled prediction): apply the
			// actual outcome's stack effects and force the target.
			m.applyOutcome(ts, outcomeIdx)
			m.forced = actual
			m.forcedValid = true
			ts.validated = true
		}
	}

	// Commit: drain speculative stores, publish the architectural
	// register state, free the unit.
	m.arb.Commit(m.head, m.backing)
	m.archRegs = m.rfs[m.head].vals
	if !m.rfs[m.head].pending.Empty() {
		return fmt.Errorf("core: retiring task %s with pending registers %v",
			ts.desc.Name, m.rfs[m.head].pending)
	}
	m.committed += u.Retired
	m.tasksRetired++
	m.foldActivity(m.head, true)
	if m.sink != nil {
		m.sink.Emit(trace.Event{Cycle: now, Kind: trace.KTaskRetire, Unit: int8(m.head),
			Task: ts.seq, Arg: u.ExitPC(), Arg2: u.Retired})
		u.SetTraceTask(-1)
	}
	u.Squash()
	m.tasks[m.head] = nil
	m.head = (m.head + 1) % m.cfg.NumUnits
	m.active--
	return nil
}

// applyOutcome replays the actual control outcome's return-stack effects.
func (m *Multiscalar) applyOutcome(ts *taskState, outcomeIdx int) {
	tgt := ts.desc.Targets[outcomeIdx]
	if tgt == isa.TargetReturn {
		m.ras.Pop()
	}
	if ts.desc.PushRA != 0 && tgt == ts.desc.CallTarget {
		m.ras.Push(ts.desc.PushRA)
	}
}

// outcomeIndex maps a completed task's actual exit to its target number.
func (m *Multiscalar) outcomeIndex(ts *taskState, u unitExit) (int, error) {
	var idx int
	if u.ExitByReturn() {
		idx = ts.desc.TargetIndex(isa.TargetReturn)
	} else {
		idx = ts.desc.TargetIndex(u.ExitPC())
	}
	if idx < 0 {
		return 0, fmt.Errorf("core: task %s exited to 0x%x, not among its targets %v",
			ts.desc.Name, u.ExitPC(), ts.desc.Targets)
	}
	return idx, nil
}

// unitExit is the slice of pu.Unit the validator needs.
type unitExit interface {
	ExitPC() uint32
	ExitByReturn() bool
}

// validateCompleted checks, for every completed task whose successor has
// been chosen, that the prediction matches the actual exit — the moment
// the exit point is known (Section 3.1.2), not at retirement. Detecting a
// misprediction here squashes the non-useful successors early.
func (m *Multiscalar) validateCompleted(now uint64) {
	for d := 0; d < m.active; d++ {
		q := (m.head + d) % m.cfg.NumUnits
		u := m.units[q]
		ts := m.tasks[q]
		if ts == nil || !u.Done() || ts.validated || !ts.predMade {
			continue
		}
		outcomeIdx, err := m.outcomeIndex(ts, u)
		if err != nil {
			continue // surfaced at retire
		}
		m.validateOne(d, ts, u.ExitPC(), outcomeIdx, now)
	}
}

// validateOne resolves one task's successor prediction: train on a hit,
// control-squash everything after the task on a miss. dist is the task's
// distance from the head.
func (m *Multiscalar) validateOne(dist int, ts *taskState, actual uint32, outcomeIdx int, now uint64) {
	m.progress = true
	ts.validated = true
	if ts.predCounts {
		m.predictions++
	}
	if m.sink != nil && ts.predMade {
		hit := uint64(0)
		if ts.predEntry == actual {
			hit = 1
		}
		m.sink.Emit(trace.Event{Cycle: now, Kind: trace.KPredValidate,
			Unit: int8((m.head + dist) % m.cfg.NumUnits), Task: ts.seq, Arg: actual, Arg2: hit})
	}
	if ts.predEntry == actual {
		if ts.predCounts {
			m.predCorrect++
			m.predictor.UpdateWith(ts.histBefore, ts.desc.Entry, outcomeIdx, ts.predIdx)
		}
		return
	}
	// Control squash: every task after this one is on the wrong path.
	for d := dist + 1; d < m.active; d++ {
		q := (m.head + d) % m.cfg.NumUnits
		m.foldActivity(q, false)
		m.tasksSquashed++
		if m.sink != nil {
			m.sink.Emit(trace.Event{Cycle: now, Kind: trace.KTaskSquash, Unit: int8(q),
				Task: m.tasks[q].seq, Arg: trace.CauseControl, Arg2: uint64(d)})
			m.units[q].SetTraceTask(-1)
		}
		m.arb.ClearUnit(q)
		m.units[q].Squash()
		m.tasks[q] = nil
	}
	m.active = dist + 1
	m.pending.valid = false
	m.terminal = false

	m.predictor.Restore(ts.histSnap)
	m.ras.Restore(ts.rasSnap)
	m.applyOutcome(ts, outcomeIdx)
	if ts.predCounts {
		m.predictor.UpdateWith(ts.histBefore, ts.desc.Entry, outcomeIdx, ts.predIdx)
	}
	m.forced = actual
	m.forcedValid = true
	// Record what was actually forced so a re-validation after a memory
	// violation restart compares against the real successor.
	ts.predEntry = actual
	m.ctlSquashes++
}

// memoryViolationSquash re-executes the violating task and squashes all
// its successors (Section 2.1: squashing a task squashes all tasks in
// execution following it). The same tasks restart — their predictions
// remain valid.
func (m *Multiscalar) memoryViolationSquash(now uint64) {
	m.progress = true
	w := m.viol
	addr := m.violAddr
	m.viol = -1
	if !m.withinActive(w) || m.dist(w) == 0 {
		return // stale (already squashed) or impossible
	}
	first := m.dist(w)
	for d := first; d < m.active; d++ {
		q := (m.head + d) % m.cfg.NumUnits
		m.foldActivity(q, false)
		m.tasksSquashed++
		if m.sink != nil {
			m.sink.Emit(trace.Event{Cycle: now, Kind: trace.KTaskSquash, Unit: int8(q),
				Task: m.tasks[q].seq, Arg: trace.CauseMemory,
				Arg2: trace.SquashArg2(uint64(d), addr, m.arb.BankIndex(addr))})
		}
		m.arb.ClearUnit(q)
		m.units[q].Squash()
		m.tasks[q].sentMask = 0
	}
	for d := first; d < m.active; d++ {
		q := (m.head + d) % m.cfg.NumUnits
		m.rebuildRegs(q, now+1)
		if m.sink != nil {
			m.sink.Emit(trace.Event{Cycle: now + 1, Kind: trace.KTaskRestart, Unit: int8(q),
				Task: m.tasks[q].seq, Arg: m.tasks[q].entry})
		}
		m.units[q].Start(m.tasks[q].entry, now+1)
		// Re-execution may take a different path: the task's exit must be
		// validated afresh.
		m.tasks[q].validated = false
	}
	m.memSquashes++
}

// arbOverflowSquash frees ARB space under PolicySquash by squashing the
// youngest task. Returns true if something was squashed.
func (m *Multiscalar) arbOverflowSquash(now uint64, addr uint32) bool {
	if m.active <= 1 {
		return false // never squash the head
	}
	m.progress = true
	tail := (m.head + m.active - 1) % m.cfg.NumUnits
	m.foldActivity(tail, false)
	m.tasksSquashed++
	m.arbSquashes++
	if m.sink != nil {
		m.sink.Emit(trace.Event{Cycle: now, Kind: trace.KTaskSquash, Unit: int8(tail),
			Task: m.tasks[tail].seq, Arg: trace.CauseARB,
			Arg2: trace.SquashArg2(uint64(m.active-1), addr, m.arb.BankIndex(addr))})
	}
	m.arb.ClearUnit(tail)
	m.units[tail].Squash()
	m.tasks[tail].sentMask = 0
	m.rebuildRegs(tail, now+1)
	if m.sink != nil {
		m.sink.Emit(trace.Event{Cycle: now + 1, Kind: trace.KTaskRestart, Unit: int8(tail),
			Task: m.tasks[tail].seq, Arg: m.tasks[tail].entry})
	}
	m.units[tail].Start(m.tasks[tail].entry, now+1)
	return true
}
