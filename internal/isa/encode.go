package isa

import (
	"encoding/binary"
	"fmt"
)

// Binary instruction encoding.
//
// The paper proposes keeping the multiscalar tag bits in a table beside an
// unmodified base-ISA text segment and concatenating the two on an
// instruction cache miss (Section 2.2). We reproduce exactly that wire
// format: each instruction encodes to a 64-bit word whose low 32 bits are
// the base instruction and whose high bits are the tag-table entry
// (forward bit + stop condition). Target addresses are carried in the
// immediate field as text-relative word offsets so the full 32-bit address
// space stays reachable.
//
// Layout (bit 0 = LSB):
//
//	base word  [31:24] op  [23:18] rd  [17:12] rs  [11:6] rt  [5:0] unused
//	tag word   [63:32] imm/target  ... except tag bits:
//
// Since a 32-bit immediate plus register fields cannot fit one 32-bit
// word, the encoding is 96 bits on disk: base word, extension word
// (immediate/target), and tag byte. EncodedSize is that fixed size.
const EncodedSize = 9 // 4 base + 4 extension + 1 tag byte

// Encode appends the binary form of the instruction to buf.
func (i *Instr) Encode(buf []byte) []byte {
	var base uint32
	base |= uint32(i.Op) << 24
	base |= uint32(i.Rd&0x3f) << 18
	base |= uint32(i.Rs&0x3f) << 12
	base |= uint32(i.Rt&0x3f) << 6
	var ext uint32
	if i.Op.IsControl() && i.Op != OpJr && i.Op != OpJalr {
		ext = i.Target
	} else {
		ext = uint32(i.Imm)
	}
	var tag byte
	if i.Fwd {
		tag |= 1 << 2
	}
	tag |= byte(i.Stop) & 3
	buf = binary.BigEndian.AppendUint32(buf, base)
	buf = binary.BigEndian.AppendUint32(buf, ext)
	return append(buf, tag)
}

// DecodeInstr decodes one instruction from buf, returning it and the
// number of bytes consumed.
func DecodeInstr(buf []byte) (Instr, int, error) {
	if len(buf) < EncodedSize {
		return Instr{}, 0, fmt.Errorf("isa: short instruction encoding (%d bytes)", len(buf))
	}
	base := binary.BigEndian.Uint32(buf)
	ext := binary.BigEndian.Uint32(buf[4:])
	tag := buf[8]
	in := Instr{
		Op: Op(base >> 24),
		Rd: Reg((base >> 18) & 0x3f),
		Rs: Reg((base >> 12) & 0x3f),
		Rt: Reg((base >> 6) & 0x3f),
	}
	if !in.Op.Valid() {
		return Instr{}, 0, fmt.Errorf("isa: invalid opcode %d", base>>24)
	}
	if in.Op.IsControl() && in.Op != OpJr && in.Op != OpJalr {
		in.Target = ext
	} else {
		in.Imm = int32(ext)
	}
	in.Fwd = tag&(1<<2) != 0
	in.Stop = StopCond(tag & 3)
	return in, EncodedSize, nil
}

// EncodeText encodes a whole text segment.
func EncodeText(text []Instr) []byte {
	buf := make([]byte, 0, len(text)*EncodedSize)
	for i := range text {
		buf = text[i].Encode(buf)
	}
	return buf
}

// DecodeText decodes a whole text segment.
func DecodeText(buf []byte) ([]Instr, error) {
	if len(buf)%EncodedSize != 0 {
		return nil, fmt.Errorf("isa: text length %d not a multiple of %d", len(buf), EncodedSize)
	}
	out := make([]Instr, 0, len(buf)/EncodedSize)
	for off := 0; off < len(buf); off += EncodedSize {
		in, _, err := DecodeInstr(buf[off:])
		if err != nil {
			return nil, fmt.Errorf("isa: at instruction %d: %w", off/EncodedSize, err)
		}
		out = append(out, in)
	}
	return out, nil
}
