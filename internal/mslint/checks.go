package mslint

import (
	"sort"

	"multiscalar/internal/cfg"
	"multiscalar/internal/isa"
)

func (l *linter) run() {
	p := l.prog
	if len(p.Text) == 0 || len(p.Tasks) == 0 {
		return
	}
	l.g = cfg.Build(p)
	l.g.Analyze()

	if p.TaskAt(p.Entry) == nil {
		l.diag(SevError, CodeEntryNotTask, "", isa.RegZero, p.Entry,
			"program entry 0x%x has no task descriptor; the sequencer cannot dispatch the first task", p.Entry)
	}

	var regions []*region
	for _, td := range p.TaskList() {
		l.checkDescriptor(td)
		r := l.walkTask(td)
		regions = append(regions, r)
		l.checkExits(r)
		l.checkCreate(r)
		l.checkCoverage(r)
		l.checkForwardBits(r)
		l.checkFCC(r)
	}
	l.checkOverlap(regions)
}

// checkDescriptor verifies the static shape of one descriptor: target
// count within the hardware limit, every target resolvable to a task.
func (l *linter) checkDescriptor(td *isa.TaskDescriptor) {
	if len(td.Targets) > isa.MaxTaskTargets {
		l.diag(SevError, CodeTooManyTargets, td.Name, isa.RegZero, td.Entry,
			"%d successor targets exceed the descriptor limit of %d", len(td.Targets), isa.MaxTaskTargets)
	}
	for _, t := range td.Targets {
		if t == isa.TargetReturn {
			continue
		}
		if l.prog.Tasks[t] == nil {
			l.diag(SevError, CodeBadTaskRef, td.Name, isa.RegZero, td.Entry,
				"declared target 0x%x has no task descriptor", t)
		}
	}
}

// checkExits verifies that every statically discovered exit leads to a
// declared target, that every declared target is reached by some exit,
// and that call exits carry consistent pushra/call metadata.
func (l *linter) checkExits(r *region) {
	td := r.td
	covered := map[uint32]bool{}
	sawCall := false
	for _, e := range r.exits {
		if td.HasTarget(e.target) {
			covered[e.target] = true
		} else {
			tname := "<return>"
			if e.target != isa.TargetReturn {
				tname = l.taskNameAt(e.target)
			}
			l.diag(SevError, CodeUndeclaredExit, td.Name, isa.RegZero, e.addr,
				"task exits to %s (0x%x), which is not a declared target", tname, e.target)
		}
		if e.kind == exitCall {
			sawCall = true
			switch {
			case td.PushRA == 0:
				l.diag(SevWarning, CodeCallPushRA, td.Name, isa.RegZero, e.addr,
					"call exit without pushra=: the return address stack cannot predict the continuation 0x%x", e.cont)
			case td.PushRA != e.cont:
				l.diag(SevWarning, CodeCallPushRA, td.Name, isa.RegZero, e.addr,
					"pushra 0x%x disagrees with the call continuation 0x%x", td.PushRA, e.cont)
			case td.CallTarget != e.target:
				l.diag(SevWarning, CodeCallPushRA, td.Name, isa.RegZero, e.addr,
					"call= 0x%x disagrees with the callee 0x%x", td.CallTarget, e.target)
			}
		}
	}
	if td.PushRA != 0 && !sawCall && !r.unknownExit {
		l.diag(SevWarning, CodeCallPushRA, td.Name, isa.RegZero, td.Entry,
			"pushra= set but no call exit is reachable")
	}
	if !r.unknownExit {
		for _, t := range td.Targets {
			if covered[t] {
				continue
			}
			tname := "<return>"
			if t != isa.TargetReturn {
				tname = l.taskNameAt(t)
			}
			l.diag(SevWarning, CodeUnreachableTarget, td.Name, isa.RegZero, td.Entry,
				"declared target %s (0x%x) is reached by no exit", tname, t)
		}
	}
}

func (l *linter) taskNameAt(addr uint32) string {
	if t := l.prog.Tasks[addr]; t != nil {
		return t.Name
	}
	return "<no task>"
}

// liveOutOf returns the registers live into any declared successor: the
// union of the successor tasks' entry live-in sets, with the conservative
// ABI set standing in for return successors.
func (l *linter) liveOutOf(td *isa.TaskDescriptor) isa.RegMask {
	var m isa.RegMask
	for _, t := range td.Targets {
		if t == isa.TargetReturn {
			m = m.Union(cfg.LiveAtReturn)
			continue
		}
		if b := l.g.ByAddr[t]; b != nil {
			m = m.Union(b.LiveIn)
		}
	}
	return m
}

// checkCreate verifies create-mask soundness in both directions: every
// register the task writes that is live into a successor must be in the
// mask (error — the successor would consume a stale pass-through value),
// and no register dead at every successor should be (warning — it
// serializes successors for nothing).
func (l *linter) checkCreate(r *region) {
	td := r.td
	liveOut := l.liveOutOf(td)
	var defs isa.RegMask
	for _, b := range r.blocks {
		defs = defs.Union(l.blockDefs(b))
	}
	missing := defs.Intersect(liveOut).Minus(td.Create)
	missing.ForEach(func(reg isa.Reg) {
		l.diag(SevError, CodeCreateMissing, td.Name, reg, l.firstDefOf(r, reg),
			"task writes %s, which is live into a successor, but %s is not in the create mask", reg, reg)
	})
	dead := td.Create.Minus(liveOut)
	dead.ForEach(func(reg isa.Reg) {
		l.diag(SevWarning, CodeCreateDead, td.Name, reg, td.Entry,
			"create-mask register %s is dead at every declared successor", reg)
	})
}

// firstDefOf returns the address of the lowest-addressed write of reg in
// the region (for diagnostic anchoring), or the task entry.
func (l *linter) firstDefOf(r *region, reg isa.Reg) uint32 {
	blocks := append([]*cfg.Block(nil), r.blocks...)
	sort.Slice(blocks, func(i, j int) bool { return blocks[i].Start < blocks[j].Start })
	for _, b := range blocks {
		for a := b.Start; a < b.End; a += isa.InstrSize {
			if instrDefs(l.prog.InstrAt(a)).Has(reg) {
				return a
			}
		}
	}
	return r.td.Entry
}

// checkCoverage runs the must-cover analysis: on every path from the
// task entry to each exit, each create-mask register should be forwarded
// or released; registers relying on the completion flush are flagged.
func (l *linter) checkCoverage(r *region) {
	create := r.td.Create
	if create.Empty() || len(r.exits) == 0 {
		return
	}
	covGen := map[*cfg.Block]isa.RegMask{}
	for _, b := range r.blocks {
		var m isa.RegMask
		for a := b.Start; a < b.End; a += isa.InstrSize {
			in := l.prog.InstrAt(a)
			if in.Fwd {
				m = m.Set(in.Dest())
			}
			if in.Op == isa.OpRelease {
				m = m.Set(in.Rs)
			}
		}
		covGen[b] = m.Intersect(create)
	}
	preds := r.preds()
	entry := l.g.ByAddr[r.td.Entry]
	out := map[*cfg.Block]isa.RegMask{}
	for _, b := range r.blocks {
		out[b] = create // optimistic top for the descending fixpoint
	}
	for changed := true; changed; {
		changed = false
		for _, b := range r.blocks {
			var in isa.RegMask
			if b != entry && len(preds[b]) > 0 {
				in = create
				for _, p := range preds[b] {
					in = in.Intersect(out[p])
				}
			}
			o := in.Union(covGen[b])
			if o != out[b] {
				out[b] = o
				changed = true
			}
		}
	}
	var reported isa.RegMask
	for _, e := range r.exits {
		b := l.g.BlockOf(e.addr)
		if b == nil {
			continue
		}
		miss := create.Minus(out[b]).Minus(reported)
		miss.ForEach(func(reg isa.Reg) {
			reported = reported.Set(reg)
			l.diag(SevWarning, CodeFlushOnly, r.td.Name, reg, e.addr,
				"create-mask register %s is neither forwarded nor released on a path to this exit; successors wait for the completion flush", reg)
		})
	}
}

// checkForwardBits verifies forward-bit placement: a forward bit (or a
// release) must not precede a possible later write of the same register
// within the task (the ring would transmit a stale value), and forwards/
// releases outside the create mask satisfy no successor's reservation.
func (l *linter) checkForwardBits(r *region) {
	create := r.td.Create
	// mayWrite fixpoint: mwIn[b] = defs(b) ∪ (∪ succ mwIn) over internal
	// edges; exit edges contribute nothing (the task has ended).
	mwIn := map[*cfg.Block]isa.RegMask{}
	for changed := true; changed; {
		changed = false
		for i := len(r.blocks) - 1; i >= 0; i-- {
			b := r.blocks[i]
			var tail isa.RegMask
			for _, s := range r.edges[b] {
				tail = tail.Union(mwIn[s])
			}
			in := l.blockDefs(b).Union(tail)
			if in != mwIn[b] {
				mwIn[b] = in
				changed = true
			}
		}
	}
	for _, b := range r.blocks {
		n := b.NumInstrs()
		later := make([]isa.RegMask, n) // may be written strictly after instr i
		var tail isa.RegMask
		for _, s := range r.edges[b] {
			tail = tail.Union(mwIn[s])
		}
		for i := n - 1; i >= 0; i-- {
			later[i] = tail
			tail = tail.Union(instrDefs(l.prog.InstrAt(b.Start + uint32(i)*isa.InstrSize)))
		}
		for i := 0; i < n; i++ {
			a := b.Start + uint32(i)*isa.InstrSize
			in := l.prog.InstrAt(a)
			if in.Fwd {
				d := in.Dest()
				switch {
				case d == isa.RegZero:
					l.diag(SevWarning, CodeForeignForward, r.td.Name, isa.RegZero, a,
						"forward bit on an instruction with no destination register")
				case !create.Has(d):
					l.diag(SevWarning, CodeForeignForward, r.td.Name, d, a,
						"forward bit on %s, which is not in the create mask", d)
				case later[i].Has(d):
					l.diag(SevError, CodeStaleForward, r.td.Name, d, a,
						"forward bit on a non-last update of %s: a later write within the task would make the forwarded value stale", d)
				}
			}
			if in.Op == isa.OpRelease {
				switch {
				case !create.Has(in.Rs):
					l.diag(SevWarning, CodeForeignForward, r.td.Name, in.Rs, a,
						"release of %s, which is not in the create mask", in.Rs)
				case later[i].Has(in.Rs):
					l.diag(SevError, CodeStaleForward, r.td.Name, in.Rs, a,
						"release of %s before a possible later write within the task: the released value would be stale", in.Rs)
				}
			}
		}
	}
}

// checkFCC flags floating-point condition-flag liveness across the task
// entry: a bc1t/bc1f reachable from the entry before any FP compare
// consumes a flag set in a previous task, and the flag is task-local.
func (l *linter) checkFCC(r *region) {
	setsFCC := func(op isa.Op) bool {
		return op == isa.OpCEqD || op == isa.OpCLtD || op == isa.OpCLeD
	}
	entry := l.g.ByAddr[r.td.Entry]
	if entry == nil {
		return
	}
	seen := map[*cfg.Block]bool{entry: true}
	stack := []*cfg.Block{entry}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		blocked := false
		for a := b.Start; a < b.End; a += isa.InstrSize {
			in := l.prog.InstrAt(a)
			if in.ReadsFCC() {
				l.diag(SevWarning, CodeFCCBoundary, r.td.Name, isa.RegZero, a,
					"%s executes before any FP compare in this task; the FP condition flag does not cross task boundaries", in.Op)
				return
			}
			if setsFCC(in.Op) {
				blocked = true
				break
			}
		}
		if blocked {
			continue
		}
		for _, s := range r.edges[b] {
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
}

// checkOverlap flags instructions reachable from two task headers
// without being their own task. Shared suppressed-callee bodies are the
// legitimate exception (they execute within each calling task); blocks
// reached only through call edges are therefore excluded.
func (l *linter) checkOverlap(regions []*region) {
	owners := map[*cfg.Block][]string{}
	for _, r := range regions {
		for _, b := range r.blocks {
			if !r.depth0[b] {
				continue
			}
			if l.prog.Tasks[b.Start] != nil {
				continue // its own task (or a flagged entry crossing)
			}
			owners[b] = append(owners[b], r.td.Name)
		}
	}
	var shared []*cfg.Block
	for b, names := range owners {
		if len(names) > 1 {
			shared = append(shared, b)
		}
	}
	sort.Slice(shared, func(i, j int) bool { return shared[i].Start < shared[j].Start })
	for _, b := range shared {
		names := owners[b]
		sort.Strings(names)
		l.diag(SevWarning, CodeTaskOverlap, "", isa.RegZero, b.Start,
			"instructions at 0x%x are reachable from task headers %v without being their own task", b.Start, names)
	}
}
