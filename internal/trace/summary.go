package trace

import "sort"

// MaxActivityClasses bounds the per-class cycle counters in a
// TaskSummary. The simulator's classes (pu.Activity) fit comfortably;
// the constant lives here so this package needs no import of pu (which
// itself imports trace).
const MaxActivityClasses = 8

// Span is one activation of a task on a unit: from assignment (or
// restart) to retire, squash, or the end of the run.
type Span struct {
	Unit     int8
	Start    uint64
	End      uint64
	Squashed bool
	Cause    uint32 // squash cause (valid when Squashed)
}

// TaskSummary condenses one task's lifecycle out of the event stream.
type TaskSummary struct {
	Seq   int32
	Entry uint32
	Unit  int8 // unit of the first activation

	Assigned   uint64
	FirstIssue uint64
	HasIssue   bool
	Restarts   int

	Retired     bool
	EndCycle    uint64
	Instrs      uint64 // committed instructions (retired tasks)
	SquashCause uint32 // cause of the final squash (non-retired tasks)
	SquashDist  uint64 // distance from the head at that squash

	// Conflicting access behind the final squash (memory and ARB
	// causes; HasConflict false otherwise — see SquashConflict).
	SquashAddr  uint32
	SquashBank  int
	HasConflict bool

	// Activity decomposes the task's unit-cycles by class exactly as the
	// simulator accumulates Result.Activity: cycles of retired
	// activations land in Activity[class], cycles of squashed
	// activations in SquashedCycles. Summing either over all tasks
	// reproduces the corresponding Result field.
	Activity       [MaxActivityClasses]uint64
	SquashedCycles uint64

	Spans []Span
}

// Name resolves the task's descriptor name through meta ("" if unknown).
func (t *TaskSummary) Name(meta *Meta) string { return meta.TaskName(t.Entry) }

// Summary is the per-task view of one trace.
type Summary struct {
	Cycles uint64 // total run cycles (from KRunEnd)
	Tasks  []TaskSummary
}

// Summarize folds a decoded trace into per-task lifecycles, ordered by
// assignment sequence number.
func Summarize(tr *Trace) *Summary {
	s := &Summary{}
	byTask := map[int32]*TaskSummary{}
	get := func(e Event) *TaskSummary {
		t := byTask[e.Task]
		if t == nil {
			t = &TaskSummary{Seq: e.Task, Unit: e.Unit}
			byTask[e.Task] = t
		}
		return t
	}
	closeSpan := func(t *TaskSummary, end uint64, squashed bool, cause uint32) {
		if n := len(t.Spans); n > 0 && t.Spans[n-1].End == 0 {
			t.Spans[n-1].End = end
			t.Spans[n-1].Squashed = squashed
			t.Spans[n-1].Cause = cause
		}
	}
	for _, e := range tr.Events {
		switch e.Kind {
		case KRunEnd:
			s.Cycles = e.Arg2
			for _, t := range byTask {
				closeSpan(t, s.Cycles, false, 0)
			}
		case KTaskAssign:
			t := get(e)
			t.Entry = e.Arg
			t.Unit = e.Unit
			t.Assigned = e.Cycle
			t.Spans = append(t.Spans, Span{Unit: e.Unit, Start: e.Cycle})
		case KTaskRestart:
			t := get(e)
			t.Restarts++
			t.Spans = append(t.Spans, Span{Unit: e.Unit, Start: e.Cycle})
		case KTaskFirstIssue:
			t := get(e)
			if !t.HasIssue {
				t.FirstIssue = e.Cycle
				t.HasIssue = true
			}
		case KTaskRetire:
			t := get(e)
			t.Retired = true
			t.EndCycle = e.Cycle
			t.Instrs = e.Arg2
			closeSpan(t, e.Cycle, false, 0)
		case KTaskSquash:
			t := get(e)
			t.EndCycle = e.Cycle
			t.SquashCause = e.Arg
			t.SquashDist = SquashDist(e.Arg2)
			t.SquashAddr, t.SquashBank, t.HasConflict = SquashConflict(e.Arg2)
			closeSpan(t, e.Cycle, true, e.Arg)
		case KTaskActivity:
			t := get(e)
			class := e.Arg &^ ActivitySquashed
			if e.Arg&ActivitySquashed != 0 {
				t.SquashedCycles += e.Arg2
			} else if class < MaxActivityClasses {
				t.Activity[class] += e.Arg2
			}
		}
	}
	s.Tasks = make([]TaskSummary, 0, len(byTask))
	for _, t := range byTask {
		if t.Seq >= 0 {
			s.Tasks = append(s.Tasks, *t)
		}
	}
	sort.Slice(s.Tasks, func(i, j int) bool { return s.Tasks[i].Seq < s.Tasks[j].Seq })
	return s
}
