// Package multiscalar is a from-scratch reproduction of the system in
// "Multiscalar Processors" (G. S. Sohi, S. E. Breach, T. N. Vijaykumar,
// ISCA 1995): a cycle-level simulator for the multiscalar execution
// paradigm together with its software toolchain.
//
// The package is a facade over the internal packages:
//
//   - Assemble turns annotated assembly (task descriptors, forward/stop
//     bits, release instructions — Section 2.2 of the paper) into a
//     Program; one source builds both the scalar and multiscalar binary.
//   - Partition runs the automatic task partitioner (the compiler half of
//     the toolchain) over an un-annotated program.
//   - Interpret executes a Program functionally (the correctness oracle).
//   - RunScalar simulates the scalar baseline processor cycle by cycle.
//   - RunMultiscalar simulates a multiscalar processor: N processing
//     units on a circular queue, sequencer with two-level task prediction
//     and a return address stack, register forwarding ring, Address
//     Resolution Buffer, banked data caches, shared memory bus.
//   - Workload/Workloads expose the paper's benchmark suite (Section 5.2
//     rewritten for this ISA).
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// reproduction of Tables 2-4.
package multiscalar

import (
	"fmt"
	"io"

	"multiscalar/internal/asm"
	"multiscalar/internal/core"
	"multiscalar/internal/interp"
	"multiscalar/internal/isa"
	"multiscalar/internal/mslint"
	"multiscalar/internal/taskpart"
	"multiscalar/internal/workloads"
)

// Program is an assembled binary image: text, data, task descriptors.
type Program = isa.Program

// TaskDescriptor describes one task (entry, create mask, targets).
type TaskDescriptor = isa.TaskDescriptor

// Config selects a machine configuration (units, issue width and order,
// caches, ARB, ring, predictor). Zero values are not useful — start from
// DefaultConfig or ScalarConfig.
type Config = core.Config

// Result summarizes a timing simulation.
type Result = core.Result

// Workload is one benchmark from the paper's suite.
type Workload = workloads.Workload

// Mode selects which binary an annotated source produces.
type Mode = asm.Mode

// Build modes.
const (
	ModeScalar      = asm.ModeScalar
	ModeMultiscalar = asm.ModeMultiscalar
)

// PartitionOptions controls the automatic task partitioner.
type PartitionOptions = taskpart.Options

// LintReport is the outcome of checking a program against the
// multiscalar annotation contract (Section 2.2): create-mask soundness,
// forward/release coverage, forward-bit placement, stop/exit structure.
type LintReport = mslint.Report

// LintDiag is one finding in a LintReport.
type LintDiag = mslint.Diag

// Assemble builds a program from annotated assembly source. Multiscalar
// builds are checked against the annotation contract and rejected on
// hard violations; see AssembleOptions to opt out or to obtain the full
// lint report and the source line table.
func Assemble(src string, mode Mode) (*Program, error) {
	return asm.Assemble(src, mode)
}

// AssembleOptions controls Assemble beyond the build mode.
type AssembleOptions = asm.Options

// AssembleResult carries the assembled program plus the line table and
// lint report.
type AssembleResult = asm.Result

// AssembleFull is Assemble with explicit options and a full result.
func AssembleFull(src string, opts AssembleOptions) (*AssembleResult, error) {
	return asm.AssembleOpts(src, opts)
}

// Lint checks an assembled program against the annotation contract. The
// report separates hard errors (contract violations the runtime turns
// into wrong values or deadlocks) from warnings (legal but slow or
// suspicious constructs). A program without task descriptors lints
// clean. lines optionally maps instruction addresses to source lines
// (see AssembleResult.Lines); pass nil for loaded binaries.
func Lint(p *Program, lines map[uint32]int) *LintReport {
	return mslint.Lint(p, lines)
}

// Partition runs the automatic task partitioner over a program that has
// no hand annotations, filling in task descriptors and tag bits.
func Partition(p *Program, opt PartitionOptions) error {
	_, err := taskpart.Run(p, opt)
	return err
}

// InterpResult is the outcome of a functional execution.
type InterpResult struct {
	Out          string
	ExitCode     int32
	Instructions uint64
}

// Interpret runs a program on the functional simulator (the oracle all
// timing runs are validated against). maxInstrs bounds runaway programs.
func Interpret(p *Program, maxInstrs uint64) (*InterpResult, error) {
	env := interp.NewSysEnv()
	m := interp.NewMachine(p, env)
	if err := m.Run(maxInstrs); err != nil {
		return nil, err
	}
	return &InterpResult{
		Out:          env.Out.String(),
		ExitCode:     env.ExitCode,
		Instructions: m.ICount,
	}, nil
}

// DefaultConfig returns the paper's multiscalar configuration
// (Section 5.1) for a unit count, issue width (1 or 2) and issue order.
func DefaultConfig(units, width int, outOfOrder bool) Config {
	return core.DefaultConfig(units, width, outOfOrder)
}

// ScalarConfig returns the scalar baseline configuration: one identical
// processing unit with 1-cycle data-cache hits.
func ScalarConfig(width int, outOfOrder bool) Config {
	return core.ScalarConfig(width, outOfOrder)
}

// RunScalar simulates a scalar-mode binary on the baseline processor.
func RunScalar(p *Program, cfg Config) (*Result, error) {
	env := interp.NewSysEnv()
	s := core.NewScalar(p, env, cfg)
	return s.Run()
}

// RunMultiscalar simulates a multiscalar binary (it must carry task
// descriptors) on a multiscalar processor.
func RunMultiscalar(p *Program, cfg Config) (*Result, error) {
	env := interp.NewSysEnv()
	m, err := core.NewMultiscalar(p, env, cfg)
	if err != nil {
		return nil, err
	}
	return m.Run()
}

// Verify runs a program on the oracle and the given machine configuration
// and checks architectural equivalence: identical output and, for the
// timing run, a committed instruction count equal to the oracle's dynamic
// instruction count. It returns the timing result.
func Verify(p *Program, cfg Config) (*Result, error) {
	oracle, err := Interpret(p, 1<<40)
	if err != nil {
		return nil, err
	}
	var res *Result
	if cfg.NumUnits <= 1 {
		res, err = RunScalar(p, cfg)
	} else {
		res, err = RunMultiscalar(p, cfg)
	}
	if err != nil {
		return nil, err
	}
	if res.Out != oracle.Out {
		return nil, fmt.Errorf("multiscalar: output diverged from oracle: %q vs %q", res.Out, oracle.Out)
	}
	if res.Committed != oracle.Instructions {
		return nil, fmt.Errorf("multiscalar: committed %d instructions, oracle executed %d",
			res.Committed, oracle.Instructions)
	}
	return res, nil
}

// SaveProgram writes a program as a binary container (.msb): text in the
// wire encoding, data, task descriptors, and symbols.
func SaveProgram(w io.Writer, p *Program) error { return isa.WriteProgram(w, p) }

// LoadProgram reads a binary container written by SaveProgram.
func LoadProgram(r io.Reader) (*Program, error) { return isa.ReadProgram(r) }

// GetWorkload returns a benchmark by name (nil if unknown).
func GetWorkload(name string) *Workload { return workloads.Get(name) }

// Workloads returns the benchmark suite in the paper's table order.
func Workloads() []*Workload { return workloads.All() }

// WorkloadNames lists the benchmark names in table order.
func WorkloadNames() []string { return workloads.Names() }
