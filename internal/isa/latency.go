package isa

// Latencies gives the functional-unit latency, in cycles, for each
// operation category. The defaults reproduce Table 1 of the paper. Memory
// operations report the address-generation/occupancy latency here; the
// cache access time on top of it belongs to the memory model (Section 5.1:
// 2-cycle dcache hits for multiscalar units, 1 cycle for the scalar
// processor).
type Latencies struct {
	IntAddSub  int
	ShiftLogic int
	IntMul     int
	IntDiv     int
	MemStore   int
	MemLoad    int
	Branch     int
	SPAddSub   int
	SPMul      int
	SPDiv      int
	DPAddSub   int
	DPMul      int
	DPDiv      int
}

// Table1 returns the functional unit latencies from Table 1 of the paper.
func Table1() Latencies {
	return Latencies{
		IntAddSub:  1,
		ShiftLogic: 1,
		IntMul:     4,
		IntDiv:     12,
		MemStore:   1,
		MemLoad:    2,
		Branch:     1,
		SPAddSub:   2,
		SPMul:      4,
		SPDiv:      12,
		DPAddSub:   2,
		DPMul:      5,
		DPDiv:      18,
	}
}

// Of returns the execution latency of op under these latencies.
func (l Latencies) Of(op Op) int {
	switch op {
	case OpNop, OpRelease, OpSyscall:
		return 1
	case OpAdd, OpSub, OpAddi, OpSlt, OpSltu, OpSlti, OpSltiu, OpLui:
		return l.IntAddSub
	case OpAnd, OpOr, OpXor, OpNor, OpAndi, OpOri, OpXori,
		OpSll, OpSrl, OpSra, OpSllv, OpSrlv, OpSrav:
		return l.ShiftLogic
	case OpMul:
		return l.IntMul
	case OpDiv, OpRem:
		return l.IntDiv
	case OpSb, OpSh, OpSw, OpSwc1, OpSdc1:
		return l.MemStore
	case OpLb, OpLbu, OpLh, OpLhu, OpLw, OpLwc1, OpLdc1:
		return l.MemLoad
	case OpBeq, OpBne, OpBlez, OpBgtz, OpBltz, OpBgez, OpJ, OpJal, OpJr, OpJalr, OpBc1t, OpBc1f:
		return l.Branch
	case OpAddS, OpSubS:
		return l.SPAddSub
	case OpMulS:
		return l.SPMul
	case OpDivS:
		return l.SPDiv
	case OpAddD, OpSubD, OpNegD, OpAbsD, OpMovD, OpCEqD, OpCLtD, OpCLeD,
		OpMtc1, OpMfc1, OpCvtDW, OpCvtWD, OpCvtSD, OpCvtDS:
		return l.DPAddSub
	case OpMulD:
		return l.DPMul
	case OpDivD, OpSqrtD:
		return l.DPDiv
	default:
		return 1
	}
}
