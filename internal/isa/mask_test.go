package isa

import (
	"testing"
	"testing/quick"
)

func TestMaskBasics(t *testing.T) {
	m := MaskOf(RegA0, RegT0, F(2))
	if m.Count() != 3 {
		t.Fatalf("Count = %d, want 3", m.Count())
	}
	for _, r := range []Reg{RegA0, RegT0, F(2)} {
		if !m.Has(r) {
			t.Errorf("mask missing %v", r)
		}
	}
	if m.Has(RegA1) {
		t.Error("mask unexpectedly has $a1")
	}
	m = m.Clear(RegT0)
	if m.Has(RegT0) || m.Count() != 2 {
		t.Errorf("Clear failed: %v", m)
	}
}

func TestMaskZeroNeverSet(t *testing.T) {
	m := RegMask(0).Set(RegZero)
	if !m.Empty() {
		t.Errorf("Set($zero) produced non-empty mask %v", m)
	}
	m = MaskOf(RegZero, RegA0)
	if m.Has(RegZero) {
		t.Error("mask contains $zero")
	}
	if !m.Has(RegA0) {
		t.Error("mask lost $a0")
	}
}

func TestMaskSetOperations(t *testing.T) {
	a := MaskOf(RegA0, RegA1, RegT0)
	b := MaskOf(RegA1, RegT0+1, F(0))
	u := a.Union(b)
	if u.Count() != 5 {
		t.Errorf("union count = %d, want 5: %v", u.Count(), u)
	}
	i := a.Intersect(b)
	if i != MaskOf(RegA1) {
		t.Errorf("intersect = %v, want {$a1}", i)
	}
	d := a.Minus(b)
	if d != MaskOf(RegA0, RegT0) {
		t.Errorf("minus = %v, want {$a0,$t0}", d)
	}
}

func TestMaskRegsOrdering(t *testing.T) {
	m := MaskOf(F(31), RegA0, RegRA, Reg(1))
	regs := m.Regs()
	for i := 1; i < len(regs); i++ {
		if regs[i-1] >= regs[i] {
			t.Fatalf("Regs not ascending: %v", regs)
		}
	}
	if len(regs) != 4 {
		t.Fatalf("len(Regs) = %d, want 4", len(regs))
	}
}

func TestMaskString(t *testing.T) {
	if got := MaskOf(RegA0, RegT0).String(); got != "{$a0,$t0}" {
		t.Errorf("String = %q", got)
	}
	if got := RegMask(0).String(); got != "{}" {
		t.Errorf("empty String = %q", got)
	}
}

// Property: Regs() and Has() agree, and Count matches len(Regs).
func TestMaskRegsHasAgreeProperty(t *testing.T) {
	f := func(v uint64) bool {
		m := RegMask(v &^ 1) // bit 0 ($zero) can never be set via the API
		regs := m.Regs()
		if len(regs) != m.Count() {
			return false
		}
		seen := map[Reg]bool{}
		for _, r := range regs {
			if !m.Has(r) {
				return false
			}
			seen[r] = true
		}
		for r := Reg(0); r < NumRegs; r++ {
			if m.Has(r) != seen[r] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: union/minus/intersect obey set algebra.
func TestMaskAlgebraProperty(t *testing.T) {
	f := func(a, b uint64) bool {
		x, y := RegMask(a), RegMask(b)
		if x.Union(y) != y.Union(x) {
			return false
		}
		if x.Intersect(y).Union(x.Minus(y)) != x {
			return false
		}
		return x.Minus(y).Intersect(y).Empty()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
