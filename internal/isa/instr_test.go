package isa

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDestNoWriteOps(t *testing.T) {
	noDest := []Op{OpNop, OpJ, OpJr, OpRelease, OpSyscall, OpSb, OpSh, OpSw,
		OpSwc1, OpSdc1, OpBeq, OpBne, OpBlez, OpBgtz, OpBltz, OpBgez,
		OpBc1t, OpBc1f, OpCEqD, OpCLtD, OpCLeD}
	for _, op := range noDest {
		in := Instr{Op: op, Rd: RegT0, Rs: RegA0, Rt: RegA1}
		if d := in.Dest(); d != RegZero {
			t.Errorf("%v.Dest() = %v, want $zero", op, d)
		}
	}
}

func TestDestWriteOps(t *testing.T) {
	writes := []Op{OpAdd, OpAddi, OpMul, OpLw, OpLb, OpLui, OpJal, OpJalr,
		OpLdc1, OpAddD, OpMfc1, OpMtc1, OpSlt}
	for _, op := range writes {
		in := Instr{Op: op, Rd: RegT0, Rs: RegA0, Rt: RegA1}
		if d := in.Dest(); d != RegT0 {
			t.Errorf("%v.Dest() = %v, want $t0", op, d)
		}
	}
}

func TestSources(t *testing.T) {
	cases := []struct {
		in   Instr
		want []Reg
	}{
		{Instr{Op: OpAdd, Rd: RegT0, Rs: RegA0, Rt: RegA1}, []Reg{RegA0, RegA1}},
		{Instr{Op: OpAddi, Rd: RegT0, Rs: RegA0, Imm: 4}, []Reg{RegA0}},
		{Instr{Op: OpSw, Rs: RegSP, Rt: RegT0, Imm: 8}, []Reg{RegSP, RegT0}},
		{Instr{Op: OpLw, Rd: RegT0, Rs: RegSP, Imm: 8}, []Reg{RegSP}},
		{Instr{Op: OpJr, Rs: RegRA}, []Reg{RegRA}},
		{Instr{Op: OpJ}, nil},
		{Instr{Op: OpLui, Rd: RegT0, Imm: 1}, nil},
		{Instr{Op: OpRelease, Rs: RegT0}, []Reg{RegT0}},
		{Instr{Op: OpBeq, Rs: RegA0, Rt: RegA1}, []Reg{RegA0, RegA1}},
		{Instr{Op: OpBltz, Rs: RegA0}, []Reg{RegA0}},
	}
	for _, c := range cases {
		got := c.in.Sources()
		if len(got) != len(c.want) {
			t.Errorf("%v Sources = %v, want %v", c.in.Op, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("%v Sources = %v, want %v", c.in.Op, got, c.want)
			}
		}
	}
}

func TestSyscallSources(t *testing.T) {
	in := Instr{Op: OpSyscall}
	src := in.Sources()
	want := map[Reg]bool{RegV0: true, RegA0: true, RegA1: true, RegA2: true, RegA3: true}
	if len(src) != len(want) {
		t.Fatalf("syscall sources = %v", src)
	}
	for _, r := range src {
		if !want[r] {
			t.Errorf("unexpected syscall source %v", r)
		}
	}
}

func TestFCCTracking(t *testing.T) {
	cmp := Instr{Op: OpCLtD, Rs: F(0), Rt: F(2)}
	if !cmp.Op.SetsFCC() {
		t.Error("c.lt.d should set FCC")
	}
	br := Instr{Op: OpBc1t, Target: TextBase}
	if !br.ReadsFCC() {
		t.Error("bc1t should read FCC")
	}
	if (&Instr{Op: OpAdd}).ReadsFCC() {
		t.Error("add should not read FCC")
	}
}

func TestInstrStringForms(t *testing.T) {
	cases := []struct {
		in   Instr
		want string
	}{
		{Instr{Op: OpAdd, Rd: RegT0, Rs: RegA0, Rt: RegA1}, "add $t0, $a0, $a1"},
		{Instr{Op: OpAddi, Rd: RegT0, Rs: RegA0, Imm: -4}, "addi $t0, $a0, -4"},
		{Instr{Op: OpLw, Rd: RegT0, Rs: RegSP, Imm: 8}, "lw $t0, 8($sp)"},
		{Instr{Op: OpSw, Rs: RegSP, Rt: RegT0, Imm: 8}, "sw $t0, 8($sp)"},
		{Instr{Op: OpBeq, Rs: RegA0, Rt: RegZero, Target: 0x1040}, "beq $a0, $zero, 0x1040"},
		{Instr{Op: OpJ, Target: 0x1000}, "j 0x1000"},
		{Instr{Op: OpJr, Rs: RegRA}, "jr $ra"},
		{Instr{Op: OpRelease, Rs: RegT0}, "release $t0"},
		{Instr{Op: OpSyscall}, "syscall"},
		{Instr{Op: OpAddi, Rd: RegT0, Rs: RegT0, Imm: 1, Fwd: true}, "addi $t0, $t0, 1 !f"},
		{Instr{Op: OpBne, Rs: RegT0, Rt: RegZero, Target: 0x1000, Stop: StopNotTaken}, "bne $t0, $zero, 0x1000 !snt"},
		{Instr{Op: OpAddD, Rd: F(0), Rs: F(2), Rt: F(4)}, "add.d $f0, $f2, $f4"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String = %q, want %q", got, c.want)
		}
	}
}

func TestOpByNameRoundTrip(t *testing.T) {
	for op := Op(0); op < numOps; op++ {
		if !op.Valid() {
			continue
		}
		back, ok := OpByName(op.String())
		if !ok || back != op {
			t.Errorf("OpByName(%q) = %v,%v", op.String(), back, ok)
		}
	}
}

func TestOpClassesCovered(t *testing.T) {
	// Every valid op must have a class and a positive latency.
	lat := Table1()
	for op := Op(0); op < numOps; op++ {
		if !op.Valid() {
			t.Fatalf("op %d invalid inside range", op)
		}
		if op.Class() >= NumFUClasses {
			t.Errorf("%v has bad class", op)
		}
		if lat.Of(op) <= 0 {
			t.Errorf("%v has non-positive latency", op)
		}
	}
}

func TestMemOpProperties(t *testing.T) {
	if !OpLw.IsLoad() || OpLw.IsStore() || OpLw.MemSize() != 4 {
		t.Error("lw properties wrong")
	}
	if !OpSdc1.IsStore() || OpSdc1.IsLoad() || OpSdc1.MemSize() != 8 {
		t.Error("s.d properties wrong")
	}
	if OpAdd.IsMem() || OpAdd.MemSize() != 0 {
		t.Error("add mem properties wrong")
	}
}

func randInstr(r *rand.Rand) Instr {
	for {
		op := Op(r.Intn(int(numOps)))
		if !op.Valid() {
			continue
		}
		in := Instr{
			Op: op,
			Rd: Reg(r.Intn(NumRegs)),
			Rs: Reg(r.Intn(NumRegs)),
			Rt: Reg(r.Intn(NumRegs)),
		}
		if op.IsControl() && op != OpJr && op != OpJalr {
			in.Target = uint32(r.Intn(1<<20) * 4)
		} else {
			in.Imm = int32(r.Uint32())
		}
		in.Fwd = r.Intn(2) == 0
		in.Stop = StopCond(r.Intn(4))
		return in
	}
}

// Property: encode/decode round-trips every instruction.
func TestEncodeDecodeRoundTripProperty(t *testing.T) {
	r := rand.New(rand.NewSource(12345))
	for trial := 0; trial < 2000; trial++ {
		in := randInstr(r)
		buf := in.Encode(nil)
		if len(buf) != EncodedSize {
			t.Fatalf("encoded size = %d", len(buf))
		}
		back, n, err := DecodeInstr(buf)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if n != EncodedSize {
			t.Fatalf("decode consumed %d", n)
		}
		// Register fields are only 6 bits; mask the originals the same way.
		want := in
		want.Rd &= 0x3f
		want.Rs &= 0x3f
		want.Rt &= 0x3f
		if back != want {
			t.Fatalf("round trip mismatch:\n in=%+v\nout=%+v", want, back)
		}
	}
}

func TestEncodeTextRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	text := make([]Instr, 64)
	for i := range text {
		text[i] = randInstr(r)
	}
	buf := EncodeText(text)
	back, err := DecodeText(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(text) {
		t.Fatalf("len = %d, want %d", len(back), len(text))
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, _, err := DecodeInstr(make([]byte, 3)); err == nil {
		t.Error("short decode should fail")
	}
	bad := make([]byte, EncodedSize)
	bad[0] = 0xff // opcode 255 invalid
	if _, _, err := DecodeInstr(bad); err == nil {
		t.Error("invalid opcode should fail")
	}
	if _, err := DecodeText(make([]byte, EncodedSize+1)); err == nil {
		t.Error("misaligned text should fail")
	}
}

func TestQuickMaskOfIdempotent(t *testing.T) {
	f := func(n uint8) bool {
		r := Reg(n % NumRegs)
		m := MaskOf(r, r)
		if r == RegZero {
			return m.Empty()
		}
		return m.Count() == 1 && m.Has(r)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
