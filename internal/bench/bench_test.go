package bench

import (
	"strings"
	"testing"
)

func TestTable2(t *testing.T) {
	rows, err := Table2(-1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Multi <= r.Scalar {
			t.Errorf("%s: multiscalar count %d not greater than scalar %d", r.Name, r.Multi, r.Scalar)
		}
		if r.PctIncrease <= 0 || r.PctIncrease > 50 {
			t.Errorf("%s: increase %.1f%% implausible", r.Name, r.PctIncrease)
		}
		if r.PaperPct == 0 {
			t.Errorf("%s: paper reference missing", r.Name)
		}
	}
	out := FormatTable2(rows)
	if !strings.Contains(out, "example") || !strings.Contains(out, "paper") {
		t.Errorf("format output: %s", out)
	}
}

func TestPerfTableShapes(t *testing.T) {
	rows, err := PerfTable(1, false, -1)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]PerfRow{}
	for _, r := range rows {
		byName[r.Name] = r
		if r.ScalarIPC <= 0 || r.ScalarIPC > 1.01 {
			t.Errorf("%s: scalar 1-way IPC %.2f out of range", r.Name, r.ScalarIPC)
		}
		if r.Speedup8 <= 0 {
			t.Errorf("%s: speedup missing", r.Name)
		}
	}
	// The paper's qualitative ranking must hold even at test scale:
	// chunked kernels beat the recurrence-bound ones.
	for _, fast := range []string{"cmp", "wc", "tomcatv"} {
		for _, slow := range []string{"compress", "xlisp", "gcc"} {
			if byName[fast].Speedup8 <= byName[slow].Speedup8 {
				t.Errorf("ranking violated: %s (%.2f) should beat %s (%.2f)",
					fast, byName[fast].Speedup8, slow, byName[slow].Speedup8)
			}
		}
	}
	// gcc has the worst task prediction.
	for _, r := range rows {
		if r.Name != "gcc" && r.Pred8 < byName["gcc"].Pred8 {
			t.Errorf("%s prediction %.1f%% below gcc's %.1f%%", r.Name, r.Pred8, byName["gcc"].Pred8)
		}
	}
	if s := FormatPerfTable("Table 3", rows); !strings.Contains(s, "Table 3") {
		t.Error("format broken")
	}
}

func TestOutOfOrderBeatsInOrder(t *testing.T) {
	io, err := PerfTable(1, false, -1)
	if err != nil {
		t.Fatal(err)
	}
	ooo, err := PerfTable(1, true, -1)
	if err != nil {
		t.Fatal(err)
	}
	better := 0
	for i := range io {
		if ooo[i].Cycles8 <= io[i].Cycles8 {
			better++
		}
	}
	if better < 7 {
		t.Errorf("OOO faster on only %d/10 benchmarks at 8 units", better)
	}
}

func TestBreakdownSumsToOne(t *testing.T) {
	rows, err := Breakdown(4, -1)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		sum := r.Compute + r.WaitPred + r.WaitIntra + r.WaitRetire + r.Idle + r.Squashed
		if sum < 0.999 || sum > 1.001 {
			t.Errorf("%s: breakdown sums to %.4f", r.Name, sum)
		}
	}
	if s := FormatBreakdown(rows); !strings.Contains(s, "wait-pred") {
		t.Error("format broken")
	}
}

func TestUnitSweepMonotoneOnParallelWork(t *testing.T) {
	rows, err := UnitSweep("cmp", -1, []int{1, 2, 4, 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].Cycles >= rows[i-1].Cycles {
			t.Errorf("%s not faster than %s (%d vs %d)",
				rows[i].Label, rows[i-1].Label, rows[i].Cycles, rows[i-1].Cycles)
		}
	}
}

func TestRingLatencyHurtsRecurrence(t *testing.T) {
	rows, err := RingLatencySweep("compress", -1, []int{1, 8})
	if err != nil {
		t.Fatal(err)
	}
	if rows[1].Cycles <= rows[0].Cycles {
		t.Errorf("8-cycle ring (%d) not slower than 1-cycle (%d)", rows[1].Cycles, rows[0].Cycles)
	}
}

func TestARBSweepTinyHurts(t *testing.T) {
	rows, err := ARBSweep("tomcatv", -1, []int{2, 256})
	if err != nil {
		t.Fatal(err)
	}
	// rows: [2-stall, 256-stall, 2-squash, 256-squash]
	if rows[0].Cycles <= rows[1].Cycles {
		t.Errorf("2-entry ARB (%d) not slower than 256 (%d)", rows[0].Cycles, rows[1].Cycles)
	}
	if rows[2].Cycles <= rows[3].Cycles {
		t.Errorf("squash policy: 2-entry (%d) not slower than 256 (%d)", rows[2].Cycles, rows[3].Cycles)
	}
}

func TestForwardingAblationShowsGap(t *testing.T) {
	rows, err := ForwardingAblation("wc", -1)
	if err != nil {
		t.Fatal(err)
	}
	if rows[1].Cycles <= rows[0].Cycles {
		t.Errorf("completion flush (%d cycles) should be slower than forwarding (%d)",
			rows[1].Cycles, rows[0].Cycles)
	}
}

func TestPredictorAblationRuns(t *testing.T) {
	rows, err := PredictorAblation("gcc", -1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].Cycles == 0 || rows[1].Cycles == 0 {
		t.Errorf("rows = %+v", rows)
	}
}

func TestUnknownWorkloadErrors(t *testing.T) {
	if _, err := UnitSweep("nope", -1, []int{2}); err == nil {
		t.Error("expected error")
	}
	if _, err := ForwardingAblation("nope", -1); err == nil {
		t.Error("expected error")
	}
}

func TestSharedFUAblation(t *testing.T) {
	rows, err := SharedFUAblation("tomcatv", -1)
	if err != nil {
		t.Fatal(err)
	}
	if rows[2].Cycles < rows[0].Cycles {
		t.Errorf("1 shared FP unit (%d cycles) faster than private FUs (%d)",
			rows[2].Cycles, rows[0].Cycles)
	}
}

func TestSpeedupCurvesAndMixes(t *testing.T) {
	curves, err := SpeedupCurves(1, false, -1, []int{2, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(curves) != 10 {
		t.Fatalf("curves = %d", len(curves))
	}
	for _, c := range curves {
		if len(c.Speedups) != 2 || c.Speedups[0] <= 0 {
			t.Errorf("%s: %v", c.Name, c.Speedups)
		}
	}
	if s := FormatCurves("fig", curves); !strings.Contains(s, "units |") {
		t.Error("curve format broken")
	}

	mixes, err := Mixes(-1)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range mixes {
		if m.Total == 0 || m.Loads+m.Stores > m.Total {
			t.Errorf("%s: mix %+v", m.Name, m)
		}
	}
	if s := FormatMixes(mixes); !strings.Contains(s, "branches") {
		t.Error("mix format broken")
	}
}
