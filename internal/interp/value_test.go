package interp

import (
	"math"
	"testing"
	"testing/quick"

	"multiscalar/internal/isa"
)

func exec1(t *testing.T, op isa.Op, rs, rt Value, imm int32) ExecResult {
	t.Helper()
	r, err := Exec(op, rs, rt, imm, false)
	if err != nil {
		t.Fatalf("Exec(%v): %v", op, err)
	}
	return r
}

// Property: integer arithmetic matches Go's two's-complement semantics.
func TestExecIntArithmeticProperty(t *testing.T) {
	f := func(a, b uint32, imm int32) bool {
		rs, rt := IntVal(a), IntVal(b)
		checks := []struct {
			op   isa.Op
			want uint32
		}{
			{isa.OpAdd, a + b},
			{isa.OpSub, a - b},
			{isa.OpAddi, a + uint32(imm)},
			{isa.OpAnd, a & b},
			{isa.OpOr, a | b},
			{isa.OpXor, a ^ b},
			{isa.OpNor, ^(a | b)},
			{isa.OpMul, uint32(int32(a) * int32(b))},
			{isa.OpSllv, a << (b & 31)},
			{isa.OpSrlv, a >> (b & 31)},
			{isa.OpSrav, uint32(int32(a) >> (b & 31))},
		}
		for _, c := range checks {
			r, err := Exec(c.op, rs, rt, imm, false)
			if err != nil || r.Val.I != c.want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: comparisons agree with Go comparisons.
func TestExecComparisonProperty(t *testing.T) {
	f := func(a, b uint32) bool {
		rs, rt := IntVal(a), IntVal(b)
		slt, _ := Exec(isa.OpSlt, rs, rt, 0, false)
		if (slt.Val.I == 1) != (int32(a) < int32(b)) {
			return false
		}
		sltu, _ := Exec(isa.OpSltu, rs, rt, 0, false)
		if (sltu.Val.I == 1) != (a < b) {
			return false
		}
		beq, _ := Exec(isa.OpBeq, rs, rt, 0, false)
		if beq.Taken != (a == b) {
			return false
		}
		bne, _ := Exec(isa.OpBne, rs, rt, 0, false)
		return bne.Taken == (a != b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: signed division/remainder agree with Go and never panic,
// including the INT_MIN/-1 wrap.
func TestExecDivRemProperty(t *testing.T) {
	f := func(a, b int32) bool {
		if b == 0 {
			_, err := Exec(isa.OpDiv, IntVal(uint32(a)), IntVal(uint32(b)), 0, false)
			return err != nil
		}
		d, err := Exec(isa.OpDiv, IntVal(uint32(a)), IntVal(uint32(b)), 0, false)
		if err != nil {
			return false
		}
		r, err := Exec(isa.OpRem, IntVal(uint32(a)), IntVal(uint32(b)), 0, false)
		if err != nil {
			return false
		}
		if a == math.MinInt32 && b == -1 {
			return d.Val.I == uint32(a) && r.Val.I == 0
		}
		return int32(d.Val.I) == a/b && int32(r.Val.I) == a%b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: double-precision FP matches Go float64 arithmetic bit for
// bit (NaN payloads aside: generated inputs are finite).
func TestExecFPProperty(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		rs, rt := FPVal(a), FPVal(b)
		add, _ := Exec(isa.OpAddD, rs, rt, 0, false)
		mul, _ := Exec(isa.OpMulD, rs, rt, 0, false)
		sub, _ := Exec(isa.OpSubD, rs, rt, 0, false)
		if add.Val.F != a+b || mul.Val.F != a*b || sub.Val.F != a-b {
			return false
		}
		lt, _ := Exec(isa.OpCLtD, rs, rt, 0, false)
		return lt.FCC == (a < b) && lt.SetFCC
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: load/store value conversion round-trips through raw bytes for
// every access width.
func TestLoadStoreValueRoundTripProperty(t *testing.T) {
	f := func(v uint32) bool {
		// Word store -> word load.
		raw := StoreValue(isa.OpSw, IntVal(v))
		if LoadValue(isa.OpLw, raw).I != v {
			return false
		}
		// Byte: unsigned load recovers the low byte, signed extends.
		raw = StoreValue(isa.OpSb, IntVal(v))
		if LoadValue(isa.OpLbu, raw).I != v&0xff {
			return false
		}
		if LoadValue(isa.OpLb, raw).I != uint32(int32(int8(v))) {
			return false
		}
		// Halfword.
		raw = StoreValue(isa.OpSh, IntVal(v))
		if LoadValue(isa.OpLhu, raw).I != v&0xffff {
			return false
		}
		return LoadValue(isa.OpLh, raw).I == uint32(int32(int16(v)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: double store/load round-trips exactly; float store/load
// round-trips through float32.
func TestFPLoadStoreRoundTripProperty(t *testing.T) {
	f := func(d float64) bool {
		raw := StoreValue(isa.OpSdc1, FPVal(d))
		got := LoadValue(isa.OpLdc1, raw).F
		if math.IsNaN(d) {
			return math.IsNaN(got)
		}
		if got != d {
			return false
		}
		raw = StoreValue(isa.OpSwc1, FPVal(d))
		want := float64(float32(d))
		got = LoadValue(isa.OpLwc1, raw).F
		if math.IsNaN(want) {
			return math.IsNaN(got)
		}
		return got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestClampToInt32(t *testing.T) {
	cases := map[float64]int32{
		0:            0,
		1.9:          1,
		-1.9:         -1,
		1e18:         math.MaxInt32,
		-1e18:        math.MinInt32,
		math.Inf(1):  math.MaxInt32,
		math.Inf(-1): math.MinInt32,
	}
	for in, want := range cases {
		if got := clampToInt32(in); got != want {
			t.Errorf("clamp(%g) = %d, want %d", in, got, want)
		}
	}
	if clampToInt32(math.NaN()) != 0 {
		t.Error("NaN should clamp to 0")
	}
}

func TestExecShiftImmediates(t *testing.T) {
	r := exec1(t, isa.OpSll, IntVal(0x80000001), Value{}, 1)
	if r.Val.I != 2 {
		t.Errorf("sll = %x", r.Val.I)
	}
	r = exec1(t, isa.OpSra, IntVal(0x80000000), Value{}, 31)
	if r.Val.I != 0xffffffff {
		t.Errorf("sra = %x", r.Val.I)
	}
	r = exec1(t, isa.OpSrl, IntVal(0x80000000), Value{}, 31)
	if r.Val.I != 1 {
		t.Errorf("srl = %x", r.Val.I)
	}
}

func TestEffAddr(t *testing.T) {
	if EffAddr(IntVal(0x1000), -16) != 0xff0 {
		t.Error("negative offset wrong")
	}
	if EffAddr(IntVal(0xffffffff), 1) != 0 {
		t.Error("wraparound wrong")
	}
}
