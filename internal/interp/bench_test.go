package interp_test

import (
	"testing"

	"multiscalar/internal/asm"
	"multiscalar/internal/interp"
	"multiscalar/internal/workloads"
)

// BenchmarkInterp measures the functional simulator (the oracle every
// timing run is verified against) over representative workloads at test
// scale. The mips metric is simulated committed instructions per second.
func BenchmarkInterp(b *testing.B) {
	for _, name := range []string{"wc", "compress", "tomcatv"} {
		b.Run(name, func(b *testing.B) {
			w := workloads.Get(name)
			if w == nil {
				b.Fatalf("workload %s missing", name)
			}
			p, err := w.Build(asm.ModeScalar, w.TestScale)
			if err != nil {
				b.Fatal(err)
			}
			var icount uint64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m := interp.NewMachine(p, interp.NewSysEnv())
				if err := m.Run(1 << 40); err != nil {
					b.Fatal(err)
				}
				icount += m.ICount
			}
			b.ReportMetric(float64(icount)/b.Elapsed().Seconds()/1e6, "mips")
		})
	}
}
