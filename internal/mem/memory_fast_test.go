package mem

import (
	"bytes"
	"testing"
)

// readNSlow is the reference per-byte implementation ReadN must match.
func readNSlow(m *Memory, addr uint32, size int) uint64 {
	var v uint64
	for i := 0; i < size; i++ {
		v = v<<8 | uint64(m.Byte(addr+uint32(i)))
	}
	return v
}

func TestReadWriteNCrossPage(t *testing.T) {
	m := NewMemory()
	for _, size := range []int{1, 2, 4, 8} {
		for delta := -8; delta <= 0; delta++ {
			addr := uint32(3*pageSize) + uint32(pageSize+delta)
			v := uint64(0x1122334455667788)
			m.WriteN(addr, size, v)
			want := v
			if size < 8 {
				want = v & (1<<(8*size) - 1)
			}
			if got := m.ReadN(addr, size); got != want {
				t.Errorf("size %d at page offset %d: ReadN = %#x, want %#x", size, delta, got, want)
			}
			if got := readNSlow(m, addr, size); got != want {
				t.Errorf("size %d at page offset %d: per-byte read = %#x, want %#x", size, delta, got, want)
			}
		}
	}
}

func TestReadNUnmappedPage(t *testing.T) {
	m := NewMemory()
	if got := m.ReadN(0x5000, 8); got != 0 {
		t.Errorf("unmapped ReadN = %#x", got)
	}
	// Crossing from a mapped into an unmapped page.
	m.SetByte(pageSize-1, 0xab)
	if got := m.ReadN(pageSize-1, 2); got != 0xab00 {
		t.Errorf("boundary ReadN = %#x, want 0xab00", got)
	}
}

func TestBytesCrossPageAndHoles(t *testing.T) {
	m := NewMemory()
	// Write into pages 1 and 3, leaving page 2 a hole.
	m.WriteBytes(pageSize-4, []byte{1, 2, 3, 4, 5, 6})
	m.WriteBytes(3*pageSize, []byte{7, 8})
	got := m.Bytes(pageSize-4, 2*pageSize+8)
	want := make([]byte, 2*pageSize+8)
	for i := range want {
		want[i] = m.Byte(pageSize - 4 + uint32(i))
	}
	if !bytes.Equal(got, want) {
		t.Error("Bytes disagrees with per-byte reads across pages and holes")
	}
	if got[0] != 1 || got[5] != 6 {
		t.Errorf("mapped prefix = %v", got[:6])
	}
}

func TestReadCStringCrossPage(t *testing.T) {
	m := NewMemory()
	long := bytes.Repeat([]byte("x"), pageSize+10)
	addr := uint32(2*pageSize - 5)
	m.WriteBytes(addr, append(long, 0))
	if got := m.ReadCString(addr, 1<<20); got != string(long) {
		t.Errorf("cross-page cstring: len %d, want %d", len(got), len(long))
	}
	// max truncates before the terminator.
	if got := m.ReadCString(addr, 7); got != "xxxxxxx" {
		t.Errorf("truncated cstring = %q", got)
	}
	// Terminator exactly at a page boundary.
	m2 := NewMemory()
	m2.WriteBytes(pageSize-3, []byte("abc"))
	if got := m2.ReadCString(pageSize-3, 100); got != "abc" {
		t.Errorf("boundary cstring = %q", got)
	}
	// String running into an absent page terminates (absent = NULs).
	m3 := NewMemory()
	m3.WriteBytes(pageSize-2, []byte("hi"))
	if got := m3.ReadCString(pageSize-2, 100); got != "hi" {
		t.Errorf("hole-terminated cstring = %q", got)
	}
}

func TestLastPageCacheCoherent(t *testing.T) {
	m := NewMemory()
	m.WriteWord(0x1000, 0x01020304)
	_ = m.ReadWord(0x1000) // warm the last-page cache
	m.WriteWord(0x1000+pageSize, 0x0a0b0c0d)
	if got := m.ReadWord(0x1000); got != 0x01020304 {
		t.Errorf("first page = %#x", got)
	}
	if got := m.ReadWord(0x1000 + pageSize); got != 0x0a0b0c0d {
		t.Errorf("second page = %#x", got)
	}
}

func BenchmarkReadWord(b *testing.B) {
	m := NewMemory()
	m.WriteBytes(0, make([]byte, 4*pageSize))
	b.ResetTimer()
	var sink uint32
	for i := 0; i < b.N; i++ {
		sink += m.ReadWord(uint32(i*4) % (4 * pageSize))
	}
	_ = sink
}

func BenchmarkWriteWord(b *testing.B) {
	m := NewMemory()
	for i := 0; i < b.N; i++ {
		m.WriteWord(uint32(i*4)%(4*pageSize), uint32(i))
	}
}

func BenchmarkBytes4K(b *testing.B) {
	m := NewMemory()
	m.WriteBytes(100, make([]byte, 8192))
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Bytes(100, 4096)
	}
}
