// Package bench regenerates the paper's evaluation: Table 2 (dynamic
// instruction counts), Table 3 (in-order units) and Table 4 (out-of-order
// units), the Section 3 cycle-distribution breakdown, and the ablation
// studies over the design choices DESIGN.md calls out. It is shared by
// the msbench command and the repository's testing.B benchmarks.
package bench

import (
	"fmt"
	"strings"

	"multiscalar/internal/asm"
	"multiscalar/internal/core"
	"multiscalar/internal/pu"
	"multiscalar/internal/workloads"
)

// Scale chooses the problem size: 0 uses each workload's default (the
// full benchmark runs), negative uses its fast test scale.
type Scale int

func (s Scale) of(w *workloads.Workload) int {
	switch {
	case s > 0:
		return int(s)
	case s < 0:
		return w.TestScale
	default:
		return w.DefaultScale
	}
}

// Table2Row is one benchmark's dynamic instruction counts.
type Table2Row struct {
	Name          string
	Scalar, Multi uint64
	PctIncrease   float64
	PaperPct      float64
}

// Table2 measures scalar vs multiscalar dynamic instruction counts.
func Table2(scale Scale) ([]Table2Row, error) {
	ws := workloads.All()
	rows := make([]Table2Row, len(ws))
	err := runJobs(len(ws), func(i int) error {
		w := ws[i]
		_, so, err := buildOracle(w, asm.ModeScalar, scale)
		if err != nil {
			return fmt.Errorf("%s scalar: %w", w.Name, err)
		}
		_, mo, err := buildOracle(w, asm.ModeMultiscalar, scale)
		if err != nil {
			return fmt.Errorf("%s multiscalar: %w", w.Name, err)
		}
		if so.Out != mo.Out {
			return fmt.Errorf("%s: builds disagree on output", w.Name)
		}
		rows[i] = Table2Row{
			Name:        w.Name,
			Scalar:      so.ICount,
			Multi:       mo.ICount,
			PctIncrease: 100 * (float64(mo.ICount) - float64(so.ICount)) / float64(so.ICount),
			PaperPct:    w.Paper.PctIncrease,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// PerfRow is one benchmark's row of Table 3 or Table 4 for one issue
// width: scalar IPC, 4/8-unit speedups and prediction accuracies, next to
// the paper's numbers.
type PerfRow struct {
	Name      string
	ScalarIPC float64
	Speedup4  float64
	Pred4     float64 // percent
	Speedup8  float64
	Pred8     float64
	Paper     workloads.PaperPerf

	ScalarCycles, Cycles4, Cycles8 uint64
	Detail4, Detail8               *core.Result
}

// runOne simulates one workload at one configuration, verifying against
// the (memoized) oracle.
func runOne(w *workloads.Workload, scale Scale, units, width int, ooo bool) (*core.Result, error) {
	mode := asm.ModeMultiscalar
	if units <= 1 {
		mode = asm.ModeScalar
	}
	p, o, err := buildOracle(w, mode, scale)
	if err != nil {
		return nil, err
	}
	// Verification is against the memoized oracle inside runShared, not
	// WithVerify (which would re-interpret the program on every
	// configuration).
	var cfg core.Config
	if units <= 1 {
		cfg = core.ScalarConfig(width, ooo)
	} else {
		cfg = core.DefaultConfig(units, width, ooo)
	}
	return runShared(p, o, cfg, inputFor(w.Name),
		fmt.Sprintf("%s units=%d width=%d ooo=%v", w.Name, units, width, ooo))
}

// PerfTable computes Table 3 (outOfOrder=false) or Table 4 (true) for one
// issue width. The three configurations of every workload are independent
// simulations and fan out over the worker pool as one flat job list.
func PerfTable(width int, outOfOrder bool, scale Scale) ([]PerfRow, error) {
	ws := workloads.All()
	unitCounts := []int{1, 4, 8}
	results := make([]*core.Result, len(ws)*len(unitCounts))
	err := runJobs(len(results), func(i int) error {
		res, err := runOne(ws[i/len(unitCounts)], scale, unitCounts[i%len(unitCounts)], width, outOfOrder)
		results[i] = res
		return err
	})
	if err != nil {
		return nil, err
	}
	rows := make([]PerfRow, 0, len(ws))
	for i, w := range ws {
		srow, r4, r8 := results[3*i], results[3*i+1], results[3*i+2]
		paper := w.Paper.InOrder1
		switch {
		case !outOfOrder && width == 2:
			paper = w.Paper.InOrder2
		case outOfOrder && width == 1:
			paper = w.Paper.OOO1
		case outOfOrder && width == 2:
			paper = w.Paper.OOO2
		}
		rows = append(rows, PerfRow{
			Name:         w.Name,
			ScalarIPC:    srow.IPC(),
			Speedup4:     float64(srow.Cycles) / float64(r4.Cycles),
			Pred4:        100 * r4.PredAccuracy(),
			Speedup8:     float64(srow.Cycles) / float64(r8.Cycles),
			Pred8:        100 * r8.PredAccuracy(),
			Paper:        paper,
			ScalarCycles: srow.Cycles,
			Cycles4:      r4.Cycles,
			Cycles8:      r8.Cycles,
			Detail4:      r4,
			Detail8:      r8,
		})
	}
	return rows, nil
}

// FormatTable2 renders Table 2 next to the paper's percentages.
func FormatTable2(rows []Table2Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2: dynamic instruction counts (scalar vs multiscalar binary)\n")
	fmt.Fprintf(&b, "%-10s %12s %12s %10s %12s\n", "program", "scalar", "multiscalar", "increase", "paper incr.")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %12d %12d %9.1f%% %11.1f%%\n",
			r.Name, r.Scalar, r.Multi, r.PctIncrease, r.PaperPct)
	}
	return b.String()
}

// FormatPerfTable renders Table 3 or 4 next to the paper's numbers.
func FormatPerfTable(title string, rows []PerfRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-10s | %6s %7s %6s %7s %6s | paper: %5s %5s %5s\n",
		"program", "IPC", "spd4", "pred4", "spd8", "pred8", "IPC", "spd4", "spd8")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s | %6.2f %7.2f %5.1f%% %7.2f %5.1f%% | %12.2f %5.2f %5.2f\n",
			r.Name, r.ScalarIPC, r.Speedup4, r.Pred4, r.Speedup8, r.Pred8,
			r.Paper.ScalarIPC, r.Paper.Speedup4, r.Paper.Speedup8)
	}
	return b.String()
}

// BreakdownRow is the Section 3 cycle-distribution of one benchmark at
// one configuration: how the unit-cycles were spent.
type BreakdownRow struct {
	Name       string
	Units      int
	Compute    float64 // fractions of all unit-cycles
	WaitPred   float64
	WaitIntra  float64
	WaitRetire float64
	Idle       float64
	Squashed   float64 // non-useful computation (Section 3.1)
}

// Breakdown computes the cycle distribution at `units` 1-way in-order.
func Breakdown(units int, scale Scale) ([]BreakdownRow, error) {
	ws := workloads.All()
	rows := make([]BreakdownRow, len(ws))
	err := runJobs(len(ws), func(i int) error {
		res, err := runOne(ws[i], scale, units, 1, false)
		if err != nil {
			return err
		}
		total := float64(res.Cycles) * float64(units)
		rows[i] = BreakdownRow{
			Name:       ws[i].Name,
			Units:      units,
			Compute:    float64(res.Activity[pu.ActCompute]) / total,
			WaitPred:   float64(res.Activity[pu.ActWaitPred]) / total,
			WaitIntra:  float64(res.Activity[pu.ActWaitIntra]) / total,
			WaitRetire: float64(res.Activity[pu.ActWaitRetire]) / total,
			Idle:       float64(res.Activity[pu.ActIdle]) / total,
			Squashed:   float64(res.SquashedCycles) / total,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// FormatBreakdown renders the Section 3 accounting.
func FormatBreakdown(rows []BreakdownRow) string {
	var b strings.Builder
	if len(rows) > 0 {
		fmt.Fprintf(&b, "Cycle distribution (Section 3), %d units, 1-way in-order\n", rows[0].Units)
	}
	fmt.Fprintf(&b, "%-10s %8s %9s %10s %11s %6s %9s\n",
		"program", "compute", "wait-pred", "wait-intra", "wait-retire", "idle", "squashed")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %7.1f%% %8.1f%% %9.1f%% %10.1f%% %5.1f%% %8.1f%%\n",
			r.Name, 100*r.Compute, 100*r.WaitPred, 100*r.WaitIntra,
			100*r.WaitRetire, 100*r.Idle, 100*r.Squashed)
	}
	return b.String()
}
