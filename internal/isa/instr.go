package isa

import (
	"fmt"
	"strings"
)

// StopCond is the stop-bit encoding attached to an instruction
// (Section 2.2): when a processing unit retires an instruction whose stop
// condition is satisfied, its task is complete.
type StopCond uint8

const (
	StopNone     StopCond = iota // not a task exit
	StopAlways                   // task ends after this instruction
	StopTaken                    // task ends if this branch is taken
	StopNotTaken                 // task ends if this branch falls through
)

func (s StopCond) String() string {
	switch s {
	case StopNone:
		return ""
	case StopAlways:
		return "!s"
	case StopTaken:
		return "!st"
	case StopNotTaken:
		return "!snt"
	default:
		return "!bad-stop"
	}
}

// Instr is one decoded instruction together with its multiscalar tag bits.
// The paper keeps tag bits in a table beside the program text and
// concatenates them with the fetched instruction (Section 2.2); we carry
// them directly on the decoded form.
type Instr struct {
	Op     Op
	Rd     Reg    // destination register (integer or FP)
	Rs     Reg    // first source
	Rt     Reg    // second source (also store data register)
	Imm    int32  // immediate operand / shift amount / memory offset
	Target uint32 // byte address for branches and direct jumps

	Fwd  bool     // forward bit: route Rd's value on the ring at local retire
	Stop StopCond // stop bits
}

// Dest returns the register this instruction writes, or RegZero if none.
// Writes to $zero are discarded, so a RegZero result always means
// "no architectural register output".
func (i *Instr) Dest() Reg {
	switch i.Op {
	case OpNop, OpJ, OpJr, OpRelease, OpSyscall,
		OpSb, OpSh, OpSw, OpSwc1, OpSdc1,
		OpBeq, OpBne, OpBlez, OpBgtz, OpBltz, OpBgez, OpBc1t, OpBc1f,
		OpCEqD, OpCLtD, OpCLeD:
		return RegZero
	default:
		return i.Rd
	}
}

// Sources returns the architectural registers this instruction reads.
// $zero reads are included (they are always ready). Syscall sources
// ($v0, $a0-$a3) are reported so dependence tracking treats them as reads.
func (i *Instr) Sources() []Reg {
	srcs, n := i.SourceRegs()
	if n == 0 {
		return nil
	}
	return srcs[:n:n]
}

// SourceRegs is the allocation-free form of Sources: the issue stage
// calls it once per issue attempt, so the registers come back in a
// by-value array instead of a heap slice.
func (i *Instr) SourceRegs() (srcs [5]Reg, n int) {
	switch i.Op {
	case OpNop, OpJ, OpJal, OpLui:
		return srcs, 0
	case OpJr, OpJalr, OpRelease, OpBltz, OpBgez, OpBlez, OpBgtz:
		srcs[0] = i.Rs
		return srcs, 1
	case OpBc1t, OpBc1f:
		return srcs, 0 // read the FP condition flag, tracked separately
	case OpBeq, OpBne:
		srcs[0], srcs[1] = i.Rs, i.Rt
		return srcs, 2
	case OpSb, OpSh, OpSw, OpSwc1, OpSdc1:
		srcs[0], srcs[1] = i.Rs, i.Rt // address base + data
		return srcs, 2
	case OpSyscall:
		srcs = [5]Reg{RegV0, RegA0, RegA1, RegA2, RegA3}
		return srcs, 5
	default:
		if i.Op.HasImm() {
			srcs[0] = i.Rs
			return srcs, 1
		}
		srcs[0], srcs[1] = i.Rs, i.Rt
		return srcs, 2
	}
}

// ReadsFCC reports whether the instruction reads the FP condition flag.
func (i *Instr) ReadsFCC() bool { return i.Op == OpBc1t || i.Op == OpBc1f }

// String disassembles the instruction, including annotation suffixes.
func (i *Instr) String() string {
	var b strings.Builder
	b.WriteString(i.Op.String())
	args := i.operands()
	if args != "" {
		b.WriteByte(' ')
		b.WriteString(args)
	}
	if i.Fwd {
		b.WriteString(" !f")
	}
	if i.Stop != StopNone {
		b.WriteByte(' ')
		b.WriteString(i.Stop.String())
	}
	return b.String()
}

func (i *Instr) operands() string {
	switch i.Op {
	case OpNop, OpSyscall:
		return ""
	case OpJ, OpJal:
		return fmt.Sprintf("0x%x", i.Target)
	case OpJr:
		return i.Rs.String()
	case OpJalr:
		return fmt.Sprintf("%s, %s", i.Rd, i.Rs)
	case OpRelease:
		return i.Rs.String()
	case OpBeq, OpBne:
		return fmt.Sprintf("%s, %s, 0x%x", i.Rs, i.Rt, i.Target)
	case OpBlez, OpBgtz, OpBltz, OpBgez:
		return fmt.Sprintf("%s, 0x%x", i.Rs, i.Target)
	case OpBc1t, OpBc1f:
		return fmt.Sprintf("0x%x", i.Target)
	case OpLui:
		return fmt.Sprintf("%s, %d", i.Rd, i.Imm)
	case OpCEqD, OpCLtD, OpCLeD:
		return fmt.Sprintf("%s, %s", i.Rs, i.Rt)
	case OpMovD, OpNegD, OpAbsD, OpSqrtD, OpCvtDW, OpCvtWD, OpCvtSD, OpCvtDS, OpMtc1, OpMfc1:
		return fmt.Sprintf("%s, %s", i.Rd, i.Rs)
	default:
		switch {
		case i.Op.IsLoad():
			return fmt.Sprintf("%s, %d(%s)", i.Rd, i.Imm, i.Rs)
		case i.Op.IsStore():
			return fmt.Sprintf("%s, %d(%s)", i.Rt, i.Imm, i.Rs)
		case i.Op.HasImm():
			return fmt.Sprintf("%s, %s, %d", i.Rd, i.Rs, i.Imm)
		default:
			return fmt.Sprintf("%s, %s, %s", i.Rd, i.Rs, i.Rt)
		}
	}
}
