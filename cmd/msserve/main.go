// msserve is simulation-as-a-service: a daemon that accepts
// assemble/simulate/trace jobs and batch config sweeps over HTTP/JSON,
// fans them out over the bench worker pool, and answers duplicate
// submissions from a content-addressed result cache (in-memory LRU with
// single-flight admission and optional on-disk spill). See docs/serve.md
// for the API.
//
// Serve:
//
//	msserve -addr :8080
//	msserve -addr :8080 -spill /var/cache/msserve -cache 2048 -per-client 4
//
// Submit (a thin client for scripts and the CI smoke test):
//
//	msserve -submit batch.json -addr http://127.0.0.1:8080 -out resp.json
//	msserve -submit batch.json -addr http://127.0.0.1:8080 -expect-all-cached
//
// A request file with a top-level "jobs" or "sweep" field posts to
// /v1/batch, anything else to /v1/jobs.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime/debug"
	"strings"
	"time"

	"multiscalar/internal/bench"
	"multiscalar/internal/serve"
)

func main() {
	// Serving is batch-shaped work, same as msbench: trade heap headroom
	// for simulator throughput.
	debug.SetGCPercent(400)
	var (
		addr      = flag.String("addr", ":8080", "listen address, or (with -submit) the server base URL")
		spill     = flag.String("spill", "", "spill finished results to this directory (content-addressed; survives restarts)")
		cacheN    = flag.Int("cache", 512, "in-memory result-cache capacity (entries)")
		workers   = flag.Int("workers", 0, "concurrent job executions (default GOMAXPROCS)")
		perClient = flag.Int("per-client", 2, "max concurrently executing jobs per client")

		submit    = flag.String("submit", "", "client mode: POST this JSON request file and print the response")
		out       = flag.String("out", "", "client mode: write the response JSON to this file (default stdout)")
		wait      = flag.Duration("wait", 10*time.Second, "client mode: how long to retry while the server comes up")
		allCached = flag.Bool("expect-all-cached", false, "client mode: exit 1 unless every batch job was answered from cache")
	)
	flag.Parse()

	if *submit != "" {
		if err := runClient(*addr, *submit, *out, *wait, *allCached); err != nil {
			fmt.Fprintln(os.Stderr, "msserve:", err)
			os.Exit(1)
		}
		return
	}

	if *workers > 0 {
		bench.SetWorkers(*workers)
	}
	eng := serve.NewLocal(serve.Options{
		CacheEntries:      *cacheN,
		SpillDir:          *spill,
		Workers:           *workers,
		PerClientInFlight: *perClient,
	})
	srv := &http.Server{
		Addr:              *addr,
		Handler:           serve.NewHandler(eng),
		ReadHeaderTimeout: 10 * time.Second,
	}
	fmt.Fprintf(os.Stderr, "msserve: listening on %s (cache=%d entries, spill=%q)\n", *addr, *cacheN, *spill)
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		fmt.Fprintln(os.Stderr, "msserve:", err)
		os.Exit(1)
	}
}

func runClient(base, reqFile, outFile string, wait time.Duration, expectAllCached bool) error {
	body, err := os.ReadFile(reqFile)
	if err != nil {
		return err
	}
	var probe map[string]json.RawMessage
	if err := json.Unmarshal(body, &probe); err != nil {
		return fmt.Errorf("request %s is not a JSON object: %w", reqFile, err)
	}
	endpoint := "/v1/jobs"
	_, isBatch := probe["jobs"]
	if _, ok := probe["sweep"]; ok {
		isBatch = true
	}
	if isBatch {
		endpoint = "/v1/batch"
	}
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	url := strings.TrimRight(base, "/") + endpoint

	resp, err := postWithRetry(url, body, wait)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if outFile != "" {
		if err := os.WriteFile(outFile, data, 0o644); err != nil {
			return err
		}
	} else {
		os.Stdout.Write(data)
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: HTTP %d: %s", endpoint, resp.StatusCode, strings.TrimSpace(string(data)))
	}
	if isBatch {
		var br serve.BatchResponse
		if err := json.Unmarshal(data, &br); err != nil {
			return fmt.Errorf("decoding batch response: %w", err)
		}
		fmt.Fprintf(os.Stderr, "msserve: %d jobs, %d cached, %d executed, %d errors\n",
			br.Count, br.Cached, br.Executed, br.Errors)
		if br.Errors > 0 {
			return fmt.Errorf("%d of %d jobs failed", br.Errors, br.Count)
		}
		if expectAllCached && br.Cached != br.Count {
			return fmt.Errorf("expected a fully cached batch, got %d/%d cached (%d executed)",
				br.Cached, br.Count, br.Executed)
		}
	}
	return nil
}

// postWithRetry retries connection failures (a daemon still binding its
// socket) until the deadline; HTTP-level errors return immediately.
func postWithRetry(url string, body []byte, wait time.Duration) (*http.Response, error) {
	deadline := time.Now().Add(wait)
	for {
		resp, err := http.Post(url, "application/json", strings.NewReader(string(body)))
		if err == nil {
			return resp, nil
		}
		if time.Now().After(deadline) {
			return nil, err
		}
		time.Sleep(200 * time.Millisecond)
	}
}
