package litmus

import (
	"strings"
	"testing"
)

// TestShapeOracles pins every curated shape's legal outcome: the
// sequential (oracle) result each differential run must reproduce.
// A change here means the shape's semantics changed — update the
// forbidden catalogue and docs/litmus.md together.
func TestShapeOracles(t *testing.T) {
	want := map[string]string{
		"mp":       "1 1 ",
		"sb":       "0 1 ",
		"lb":       "0 1 ",
		"corr":     "1 1 ",
		"corw":     "2 2 ",
		"xviol":    "1 ",
		"chain":    "4 ",
		"loop":     "6 6 ",
		"relstore": "1 42 ",
		"fwdrace":  "6 ",
	}
	for _, name := range Shapes() {
		if name == "rand" {
			continue
		}
		for _, pad := range []int{4, 8, 128} {
			p, err := Generate(Params{Shape: name, Pad: pad})
			if err != nil {
				t.Fatalf("%s pad%d: %v", name, pad, err)
			}
			if p.Oracle.Out != want[name] {
				t.Errorf("%s pad%d: oracle %q, want %q", name, pad, p.Oracle.Out, want[name])
			}
			if p.Oracle.ExitCode != 0 {
				t.Errorf("%s pad%d: exit code %d", name, pad, p.Oracle.ExitCode)
			}
			// The legal outcome must never appear in its own forbidden
			// catalogue.
			if why, ok := p.Forbidden[p.Oracle.Out]; ok {
				t.Errorf("%s pad%d: oracle output is catalogued forbidden: %s", name, pad, why)
			}
		}
	}
}

func TestClassify(t *testing.T) {
	p, err := Generate(Params{Shape: "mp"})
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Classify("1 1 "); got != "legal" {
		t.Errorf("Classify(oracle) = %q", got)
	}
	if got := p.Classify("1 0 "); !strings.Contains(got, "message passing") {
		t.Errorf("Classify(forbidden) = %q", got)
	}
	if got := p.Classify("9 9 "); !strings.Contains(got, "uncatalogued") {
		t.Errorf("Classify(unknown) = %q", got)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Random(123)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Random(123)
	if err != nil {
		t.Fatal(err)
	}
	if a.Source != b.Source {
		t.Error("same seed produced different programs")
	}
	c, err := Random(124)
	if err != nil {
		t.Fatal(err)
	}
	if a.Source == c.Source {
		t.Error("different seeds produced identical programs")
	}
}

// TestCorpusQuickMatrix is the in-tree slice of the CI gate: the full
// curated corpus across the reduced matrix (units × policies ×
// {event-driven, -noskip} with capacity-1 banks) with zero oracle
// mismatches. CI's litmus-smoke job runs the full 64-config matrix.
func TestCorpusQuickMatrix(t *testing.T) {
	progs, err := Corpus()
	if err != nil {
		t.Fatal(err)
	}
	if len(progs) < 8*3 {
		t.Fatalf("corpus has %d programs, want >= 24 (8 families x 3 paddings)", len(progs))
	}
	for _, mm := range RunDiff(progs, Matrix(true), 0) {
		t.Errorf("%s", mm)
	}
}

func TestMatrixShape(t *testing.T) {
	full, quick := Matrix(false), Matrix(true)
	if len(full) != 64 {
		t.Errorf("full matrix has %d entries, want 64", len(full))
	}
	if len(quick) != 16 {
		t.Errorf("quick matrix has %d entries, want 16", len(quick))
	}
	seen := map[string]bool{}
	for _, e := range full {
		if seen[e.String()] {
			t.Errorf("duplicate matrix entry %s", e)
		}
		seen[e.String()] = true
	}
}

func TestStressSmoke(t *testing.T) {
	rep, err := Stress(StressOpts{Seed: 7, Programs: 20})
	if err != nil {
		t.Fatal(err)
	}
	for _, mm := range rep.Mismatches {
		t.Errorf("%s", mm)
	}
	// The stressor exists to hit the capacity and violation paths; a
	// run that never overflows a 1-entry bank means the bias broke.
	if rep.Overflows == 0 {
		t.Error("stress run produced no ARB overflows")
	}
	if rep.Violations == 0 {
		t.Error("stress run produced no memory-order violations")
	}
	var bankAllocs uint64
	for _, b := range rep.Banks {
		bankAllocs += b.Allocs
	}
	if bankAllocs != rep.Allocs {
		t.Errorf("per-bank allocs sum %d != aggregate %d", bankAllocs, rep.Allocs)
	}
	if !strings.Contains(rep.String(), "squash distance:") {
		t.Error("report missing squash-distance histogram")
	}
}

func TestArtifactRoundTripAndReplay(t *testing.T) {
	p, err := Generate(Params{Shape: "xviol"})
	if err != nil {
		t.Fatal(err)
	}
	e := MatrixEntry{Units: 4, Entries: 1}
	// A fabricated mismatch: claim the oracle wanted something else,
	// so the (correct) machine output diverges from the record and
	// the replay must reproduce.
	mm := &Mismatch{Program: p, Entry: e, Got: p.Oracle.Out, Committed: p.Oracle.ICount}
	art := NewArtifact(p, e, mm, 99, nil)
	art.Want = "0 "
	art.WantCount = 1

	data, err := art.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeArtifact(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != art.Name || back.Seed != 99 || back.Source != p.Source {
		t.Fatalf("artifact round trip lost fields: %+v", back)
	}
	r, err := back.Replay()
	if err != nil {
		t.Fatal(err)
	}
	if !r.Reproduced {
		t.Error("fabricated mismatch did not reproduce")
	}
	if r.Got != p.Oracle.Out {
		t.Errorf("replay output %q, want %q", r.Got, p.Oracle.Out)
	}

	// With the true oracle recorded, the same artifact stops
	// reproducing — the pass path of `mslitmus -replay`.
	back.Want = p.Oracle.Out
	back.WantCount = p.Oracle.ICount
	r, err = back.Replay()
	if err != nil {
		t.Fatal(err)
	}
	if r.Reproduced {
		t.Error("healthy run reported as reproduced mismatch")
	}
}

// FuzzLitmusGen is the generator's contract fuzz: for any seed, the
// randomized shape must assemble lint-clean (Generate keeps the lint
// gate on) and the oracle must terminate with exit 0.
func FuzzLitmusGen(f *testing.F) {
	for s := int64(0); s < 8; s++ {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		p, err := Random(seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if p.Oracle.ICount == 0 {
			t.Fatalf("seed %d: empty oracle run", seed)
		}
	})
}
