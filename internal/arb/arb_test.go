package arb

import (
	"math/rand"
	"testing"

	"multiscalar/internal/mem"
)

func newTestARB(units int, policy OverflowPolicy) (*ARB, *mem.Memory) {
	return New(units, 4, 16, policy), mem.NewMemory()
}

func TestLoadFromMemory(t *testing.T) {
	a, m := newTestARB(4, PolicyStall)
	m.WriteWord(0x100, 0xcafebabe)
	r := a.Load(0, 0, 4, 0x100, 4, m)
	if r.Overflow || uint32(r.Value) != 0xcafebabe {
		t.Fatalf("load = %+v", r)
	}
}

func TestStoreToLoadForwardingSameUnit(t *testing.T) {
	a, m := newTestARB(4, PolicyStall)
	m.WriteWord(0x100, 1111)
	if res := a.Store(1, 0, 4, 0x100, 4, 2222); res.Violator != -1 {
		t.Fatalf("unexpected violation %d", res.Violator)
	}
	r := a.Load(1, 0, 4, 0x100, 4, m)
	if uint32(r.Value) != 2222 {
		t.Errorf("load = %d, want 2222 (own store)", r.Value)
	}
	// Memory untouched (speculative).
	if m.ReadWord(0x100) != 1111 {
		t.Error("store leaked to memory")
	}
}

func TestLoadFromNearestPredecessor(t *testing.T) {
	a, m := newTestARB(4, PolicyStall)
	m.WriteWord(0x100, 1)
	a.Store(0, 0, 4, 0x100, 4, 100) // head stores
	a.Store(1, 0, 4, 0x100, 4, 200) // unit 1 stores
	r := a.Load(2, 0, 4, 0x100, 4, m)
	if uint32(r.Value) != 200 {
		t.Errorf("unit 2 load = %d, want 200 (nearest predecessor)", r.Value)
	}
	r = a.Load(1, 0, 4, 0x100, 4, m)
	if uint32(r.Value) != 200 {
		t.Errorf("unit 1 load = %d, want its own 200", r.Value)
	}
	r = a.Load(0, 0, 4, 0x100, 4, m)
	if uint32(r.Value) != 100 {
		t.Errorf("unit 0 load = %d, want 100", r.Value)
	}
}

func TestLoadIgnoresSuccessorStore(t *testing.T) {
	a, m := newTestARB(4, PolicyStall)
	m.WriteWord(0x100, 7)
	a.Store(2, 0, 4, 0x100, 4, 999) // later unit stores
	r := a.Load(1, 0, 4, 0x100, 4, m)
	if uint32(r.Value) != 7 {
		t.Errorf("load = %d, want 7 (memory; successor store invisible)", r.Value)
	}
}

func TestViolationDetected(t *testing.T) {
	a, m := newTestARB(4, PolicyStall)
	m.WriteWord(0x100, 7)
	// Unit 2 loads first (sees memory), then unit 1 stores: unit 2 read a
	// stale value -> violation naming unit 2.
	a.Load(2, 0, 4, 0x100, 4, m)
	res := a.Store(1, 0, 4, 0x100, 4, 42)
	if res.Violator != 2 {
		t.Fatalf("violator = %d, want 2", res.Violator)
	}
	if a.Violations != 1 {
		t.Errorf("violations = %d", a.Violations)
	}
}

func TestNoViolationWhenLoadAfterStore(t *testing.T) {
	a, m := newTestARB(4, PolicyStall)
	a.Store(1, 0, 4, 0x100, 4, 42)
	a.Load(2, 0, 4, 0x100, 4, m) // reads 42, correctly
	res := a.Store(0, 0, 4, 0x100, 4, 7)
	// Unit 2 read unit 1's value, which supersedes unit 0's store.
	if res.Violator != -1 {
		t.Fatalf("violator = %d, want none (intervening store)", res.Violator)
	}
}

func TestViolationEarliestSuccessorWins(t *testing.T) {
	a, m := newTestARB(8, PolicyStall)
	a.Load(3, 0, 8, 0x100, 4, m)
	a.Load(5, 0, 8, 0x100, 4, m)
	res := a.Store(1, 0, 8, 0x100, 4, 1)
	if res.Violator != 3 {
		t.Fatalf("violator = %d, want 3 (earliest)", res.Violator)
	}
}

func TestOwnStoreThenLoadNoViolation(t *testing.T) {
	a, m := newTestARB(4, PolicyStall)
	a.Store(2, 0, 4, 0x100, 4, 5)
	a.Load(2, 0, 4, 0x100, 4, m) // satisfied by own store: no load bit
	res := a.Store(1, 0, 4, 0x100, 4, 9)
	if res.Violator != -1 {
		t.Fatalf("violator = %d, want none", res.Violator)
	}
}

func TestLoadThenOwnStoreStillVulnerable(t *testing.T) {
	a, m := newTestARB(4, PolicyStall)
	m.WriteWord(0x100, 7)
	a.Load(2, 0, 4, 0x100, 4, m)   // reads memory
	a.Store(2, 0, 4, 0x100, 4, 50) // then stores itself
	res := a.Store(1, 0, 4, 0x100, 4, 9)
	// Unit 2's earlier load read 7, but sequentially it should have read
	// 9: must squash even though unit 2 also stored.
	if res.Violator != 2 {
		t.Fatalf("violator = %d, want 2", res.Violator)
	}
}

func TestByteGranularityNoFalseSharing(t *testing.T) {
	a, m := newTestARB(4, PolicyStall)
	m.SetByte(0x100, 0xaa)
	m.SetByte(0x101, 0xbb)
	a.Load(2, 0, 4, 0x101, 1, m)            // loads byte 1
	res := a.Store(1, 0, 4, 0x100, 1, 0x11) // stores byte 0
	if res.Violator != -1 {
		t.Fatalf("false violation across bytes: %d", res.Violator)
	}
	// Mixed sizes: word store covers the loaded byte -> violation.
	res = a.Store(0, 0, 4, 0x100, 4, 0xdeadbeef)
	if res.Violator != 2 {
		t.Fatalf("violator = %d, want 2 (word overlaps byte)", res.Violator)
	}
}

func TestPartialForwardMergesMemory(t *testing.T) {
	a, m := newTestARB(4, PolicyStall)
	m.WriteWord(0x100, 0x11223344)
	a.Store(1, 0, 4, 0x101, 1, 0xee) // store one middle byte
	r := a.Load(2, 0, 4, 0x100, 4, m)
	if uint32(r.Value) != 0x11ee3344 {
		t.Fatalf("merged load = %08x, want 11ee3344", uint32(r.Value))
	}
}

func TestCommitDrainsToMemory(t *testing.T) {
	a, m := newTestARB(4, PolicyStall)
	a.Store(0, 0, 4, 0x100, 4, 0x01020304)
	a.Store(0, 0, 4, 0x200, 2, 0xbeef)
	n := a.Commit(0, m)
	if n != 2 {
		t.Errorf("chunks written = %d", n)
	}
	if m.ReadWord(0x100) != 0x01020304 || uint32(m.ReadN(0x200, 2)) != 0xbeef {
		t.Error("commit did not write memory")
	}
	if a.Occupancy() != 0 {
		t.Errorf("occupancy = %d after commit", a.Occupancy())
	}
}

func TestClearUnitRemovesState(t *testing.T) {
	a, m := newTestARB(4, PolicyStall)
	m.WriteWord(0x100, 7)
	a.Store(2, 0, 4, 0x100, 4, 99)
	a.ClearUnit(2)
	r := a.Load(3, 0, 4, 0x100, 4, m)
	if uint32(r.Value) != 7 {
		t.Errorf("load after clear = %d, want 7", r.Value)
	}
	if a.Occupancy() != 1 {
		// the load by unit 3 allocated a fresh entry for its load bit
		t.Logf("occupancy = %d", a.Occupancy())
	}
}

func TestHeadWrapAround(t *testing.T) {
	// head = 6 in an 8-unit queue; units 6,7,0,1 active.
	a, m := newTestARB(8, PolicyStall)
	m.WriteWord(0x100, 7)
	a.Store(6, 6, 4, 0x100, 4, 100) // head
	a.Store(7, 6, 4, 0x100, 4, 200)
	r := a.Load(0, 6, 4, 0x100, 4, m) // distance 2: nearest predecessor is 7
	if uint32(r.Value) != 200 {
		t.Fatalf("wrapped load = %d, want 200", r.Value)
	}
	// Unit 1 (distance 3) loads; then head stores again: violation chain.
	a.Load(1, 6, 4, 0x104, 4, m)
	res := a.Store(6, 6, 4, 0x104, 4, 5)
	if res.Violator != 1 {
		t.Fatalf("violator = %d, want 1", res.Violator)
	}
}

func TestHeadLoadNoTracking(t *testing.T) {
	a, m := newTestARB(4, PolicyStall)
	a.Load(0, 0, 4, 0x300, 4, m) // head: no entry allocated
	if a.Occupancy() != 0 {
		t.Errorf("head load allocated an entry")
	}
}

func TestOverflow(t *testing.T) {
	a, m := newTestARB(4, PolicyStall)
	a.EntriesPerBank = 2
	// Fill bank 0 (chunks 0, 4, 8 map to bank 0 with 4 banks).
	a.Store(1, 0, 4, 0*8, 4, 1)
	a.Store(1, 0, 4, 4*8, 4, 1)
	res := a.Store(1, 0, 4, 8*8, 4, 1)
	if !res.Overflow {
		t.Fatal("expected overflow")
	}
	if !a.BankFull(8 * 8) {
		t.Error("BankFull should report full")
	}
	r := a.Load(2, 0, 4, 8*8, 4, m)
	if !r.Overflow {
		t.Error("tracked load should overflow too")
	}
	// Existing entries still work.
	if a.BankFull(0) {
		t.Error("existing chunk should not report full")
	}
}

// TestOverflowCountsEachAttempt pins the retry contract the timing
// loop's wakeup scheduler depends on: every failed allocation attempt
// increments Overflows (and emits a trace event when a sink is
// attached), so a unit retrying an overflowed access each cycle is a
// visible state change per cycle. The core marks those retry cycles as
// progress and never skips across them (internal/pu tryIssue,
// docs/perf.md); if overflow attempts ever became idempotent, that
// marking — and this test — should change together.
func TestOverflowCountsEachAttempt(t *testing.T) {
	a, m := newTestARB(4, PolicyStall)
	a.EntriesPerBank = 2
	a.Store(1, 0, 4, 0*8, 4, 1)
	a.Store(1, 0, 4, 4*8, 4, 1)
	if a.Overflows != 0 {
		t.Fatalf("Overflows = %d before any failure", a.Overflows)
	}
	// The same denied access, retried three times (three cycles).
	for i := 1; i <= 3; i++ {
		if res := a.Store(1, 0, 4, 8*8, 4, 1); !res.Overflow {
			t.Fatalf("attempt %d: expected overflow", i)
		}
		if a.Overflows != uint64(i) {
			t.Fatalf("Overflows = %d after %d attempts", a.Overflows, i)
		}
	}
	// A denied tracked load counts the same way.
	if r := a.Load(2, 0, 4, 8*8, 4, m); !r.Overflow {
		t.Fatal("tracked load should overflow")
	}
	if a.Overflows != 4 {
		t.Fatalf("Overflows = %d, want 4", a.Overflows)
	}
}

func TestView(t *testing.T) {
	a, m := newTestARB(4, PolicyStall)
	m.WriteBytes(0x100, []byte("abcdef"))
	a.Store(0, 0, 4, 0x102, 1, 'X')
	v := &View{ARB: a, Unit: 1, Head: 0, Active: 4, Backing: m}
	if v.Byte(0x101) != 'b' || v.Byte(0x102) != 'X' {
		t.Errorf("view = %c %c", v.Byte(0x101), v.Byte(0x102))
	}
	// A successor's store is invisible to the head's view.
	a.Store(2, 0, 4, 0x103, 1, 'Y')
	hv := &View{ARB: a, Unit: 0, Head: 0, Active: 4, Backing: m}
	if hv.Byte(0x103) != 'd' {
		t.Errorf("head view sees successor store")
	}
}

// Differential test: random interleavings of per-unit memory programs,
// with full squash-and-replay on violations, must converge to the
// sequential execution's memory image and load values.
func TestRandomizedSequentialEquivalence(t *testing.T) {
	const units = 4
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		type op struct {
			store bool
			addr  uint32
			size  int
			val   uint64
		}
		progs := make([][]op, units)
		for u := range progs {
			n := 1 + rng.Intn(6)
			for i := 0; i < n; i++ {
				sizes := []int{1, 2, 4, 8}
				size := sizes[rng.Intn(4)]
				addr := uint32(0x100 + rng.Intn(8)*size) // overlapping region
				addr -= addr % uint32(size)
				progs[u] = append(progs[u], op{
					store: rng.Intn(2) == 0,
					addr:  addr,
					size:  size,
					val:   rng.Uint64(),
				})
			}
		}

		// Sequential oracle.
		oracle := mem.NewMemory()
		var oracleLoads [][]uint64
		for u := 0; u < units; u++ {
			var loads []uint64
			for _, o := range progs[u] {
				if o.store {
					oracle.WriteN(o.addr, o.size, o.val)
				} else {
					loads = append(loads, oracle.ReadN(o.addr, o.size))
				}
			}
			oracleLoads = append(oracleLoads, loads)
		}

		// Speculative execution with replay.
		a := New(units, 2, 64, PolicyStall)
		backing := mem.NewMemory()
		gotLoads := make([][]uint64, units)

		runUnit := func(u int) int { // returns violator from this unit's stores, or -1
			gotLoads[u] = nil
			for _, o := range progs[u] {
				if o.store {
					res := a.Store(u, 0, units, o.addr, o.size, o.val)
					if res.Violator != -1 {
						return res.Violator
					}
				} else {
					r := a.Load(u, 0, units, o.addr, o.size, backing)
					gotLoads[u] = append(gotLoads[u], r.Value)
				}
			}
			return -1
		}

		// Phase 1: random interleaving, tracking the earliest violator.
		idx := make([]int, units)
		violator := -1
		for {
			var candidates []int
			for u := range progs {
				if idx[u] < len(progs[u]) {
					candidates = append(candidates, u)
				}
			}
			if len(candidates) == 0 {
				break
			}
			u := candidates[rng.Intn(len(candidates))]
			o := progs[u][idx[u]]
			idx[u]++
			if o.store {
				res := a.Store(u, 0, units, o.addr, o.size, o.val)
				if res.Violator != -1 && (violator == -1 || res.Violator < violator) {
					violator = res.Violator
				}
			} else {
				r := a.Load(u, 0, units, o.addr, o.size, backing)
				gotLoads[u] = append(gotLoads[u], r.Value)
			}
		}

		// Phase 2: squash violator..end and replay in order; repeat.
		for violator != -1 {
			for u := violator; u < units; u++ {
				a.ClearUnit(u)
			}
			v := -1
			for u := violator; u < units; u++ {
				if w := runUnit(u); w != -1 && (v == -1 || w < v) {
					v = w
				}
			}
			violator = v
		}

		// Commit in order and compare.
		for u := 0; u < units; u++ {
			a.Commit(u, backing)
		}
		if !backing.Equal(oracle) {
			t.Fatalf("trial %d: memory diverged", trial)
		}
		for u := 0; u < units; u++ {
			if len(gotLoads[u]) != len(oracleLoads[u]) {
				t.Fatalf("trial %d unit %d: load count %d vs %d", trial, u, len(gotLoads[u]), len(oracleLoads[u]))
			}
			for i := range gotLoads[u] {
				if gotLoads[u][i] != oracleLoads[u][i] {
					t.Fatalf("trial %d unit %d load %d: %x vs %x",
						trial, u, i, gotLoads[u][i], oracleLoads[u][i])
				}
			}
		}
	}
}

// TestPerBankStats pins the Stats() surface the litmus stressor
// reports: allocs, overflows, violations, and peak occupancy are
// attributed to the bank that owns the chunk, and the aggregates stay
// consistent with the flat lifetime counters.
func TestPerBankStats(t *testing.T) {
	a, m := newTestARB(4, PolicyStall)
	a.EntriesPerBank = 2
	// Two entries in bank 0 (chunks 0 and 4), then a refused third.
	a.Store(1, 0, 4, 0*8, 4, 1)
	a.Store(1, 0, 4, 4*8, 4, 2)
	if res := a.Store(1, 0, 4, 8*8, 4, 3); !res.Overflow {
		t.Fatal("expected overflow in bank 0")
	}
	// One entry in bank 1.
	a.Store(1, 0, 4, 1*8, 4, 4)
	// A violation in bank 2: unit 2 loads, then unit 1 stores the
	// same word.
	a.Load(2, 0, 4, 2*8, 4, m)
	if res := a.Store(1, 0, 4, 2*8, 4, 5); res.Violator != 2 {
		t.Fatalf("Violator = %d, want 2", res.Violator)
	}

	s := a.Stats()
	if got := a.BankIndex(2 * 8); got != 2 {
		t.Errorf("BankIndex(0x10) = %d, want 2", got)
	}
	want := []BankStats{
		{Allocs: 2, Overflows: 1, MaxOccupancy: 2},
		{Allocs: 1, MaxOccupancy: 1},
		{Allocs: 1, Violations: 1, MaxOccupancy: 1},
		{},
	}
	for i, w := range want {
		if s.Banks[i] != w {
			t.Errorf("bank %d stats = %+v, want %+v", i, s.Banks[i], w)
		}
	}
	if s.Allocs != 4 || s.MaxOccupancy != 2 {
		t.Errorf("aggregate Allocs=%d MaxOccupancy=%d, want 4, 2", s.Allocs, s.MaxOccupancy)
	}
	if s.Overflows != a.Overflows || s.Violations != a.Violations {
		t.Errorf("aggregates diverge from lifetime counters: %+v", s)
	}
	// Per-bank overflow/violation sums match the flat counters.
	var ov, vi uint64
	for _, b := range s.Banks {
		ov += b.Overflows
		vi += b.Violations
	}
	if ov != a.Overflows || vi != a.Violations {
		t.Errorf("per-bank sums ov=%d vi=%d, flat ov=%d vi=%d", ov, vi, a.Overflows, a.Violations)
	}

	a.Reset()
	for i, b := range a.Stats().Banks {
		if b != (BankStats{}) {
			t.Errorf("bank %d stats not reset: %+v", i, b)
		}
	}
}
