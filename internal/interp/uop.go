package interp

import (
	"sync"

	"multiscalar/internal/isa"
	"multiscalar/internal/mem"
)

// This file implements the decoded-µop cache: every instruction of a
// program is predecoded once into a dispatch-ready µop — handler index,
// resolved destination register, immediate and memory width — and Step
// dispatches on the dense handler index instead of re-classifying the
// architectural instruction on every execution. The decoded form of a
// program is shared across machines through a package-level cache, so
// the oracle runs the bench harness memoizes pay the decode cost once
// per program image (see docs/perf.md).

// uopKind is the µop handler index. The constants must stay dense: Step
// switches on the kind and the compiler lowers the dense switch to a
// jump table.
type uopKind uint8

const (
	uNop uopKind = iota
	uSyscall

	// Memory. uLw is split out from the generic load/store handlers:
	// word loads dominate the memory mix and skip the LoadValue switch.
	uLw
	uLoad
	uSw
	uStore

	// Control.
	uJ
	uJal
	uJr
	uJalr
	uBeq
	uBne
	uBlez
	uBgtz
	uBltz
	uBgez

	// Integer ALU, inlined so the hot path avoids the Exec switch and
	// its by-value ExecResult.
	uAdd
	uAddi
	uSub
	uMul
	uAnd
	uAndi
	uOr
	uOri
	uXor
	uXori
	uNor
	uSll
	uSrl
	uSra
	uSllv
	uSrlv
	uSrav
	uSlt
	uSltu
	uSlti
	uSltiu
	uLui

	// Double-precision FP arithmetic, compares and FCC branches,
	// inlined for the numeric workloads.
	uAddD
	uSubD
	uMulD
	uDivD
	uMovD
	uCEqD
	uCLtD
	uCLeD
	uBc1t
	uBc1f

	// Everything else (single-precision FP, conversions, div/rem with
	// their trap checks) funnels through Exec, which remains the single
	// home of those semantics.
	uExec
)

// uop is one predecoded instruction. Operand registers are resolved at
// decode time — rd is the register the instruction actually writes
// (RegZero when it writes nothing), so handlers need no Dest() call and
// no $zero guard beyond a single compare.
type uop struct {
	kind   uopKind
	rd     isa.Reg
	rs     isa.Reg
	rt     isa.Reg
	op     isa.Op
	size   uint8  // memory access width in bytes
	imm    int32  // immediate / shift amount / memory offset
	target uint32 // branch or jump target byte address
}

// aluKinds maps the integer ALU opcodes with dedicated handlers. Ops
// absent from the table (including OpDiv/OpRem, whose divide-by-zero
// trap Exec owns) fall back to uExec.
var aluKinds = map[isa.Op]uopKind{
	isa.OpAdd: uAdd, isa.OpAddi: uAddi, isa.OpSub: uSub, isa.OpMul: uMul,
	isa.OpAnd: uAnd, isa.OpAndi: uAndi, isa.OpOr: uOr, isa.OpOri: uOri,
	isa.OpXor: uXor, isa.OpXori: uXori, isa.OpNor: uNor,
	isa.OpSll: uSll, isa.OpSrl: uSrl, isa.OpSra: uSra,
	isa.OpSllv: uSllv, isa.OpSrlv: uSrlv, isa.OpSrav: uSrav,
	isa.OpSlt: uSlt, isa.OpSltu: uSltu, isa.OpSlti: uSlti, isa.OpSltiu: uSltiu,
	isa.OpLui: uLui,
}

var branchKinds = map[isa.Op]uopKind{
	isa.OpBeq: uBeq, isa.OpBne: uBne, isa.OpBlez: uBlez,
	isa.OpBgtz: uBgtz, isa.OpBltz: uBltz, isa.OpBgez: uBgez,
	isa.OpBc1t: uBc1t, isa.OpBc1f: uBc1f,
}

// fpKinds maps the double-precision ops with dedicated handlers. The
// arithmetic entries need the same $zero-dest demotion as aluKinds; the
// compares write only the condition flag and never demote.
var fpKinds = map[isa.Op]uopKind{
	isa.OpAddD: uAddD, isa.OpSubD: uSubD, isa.OpMulD: uMulD,
	isa.OpDivD: uDivD, isa.OpMovD: uMovD,
}

var fccKinds = map[isa.Op]uopKind{
	isa.OpCEqD: uCEqD, isa.OpCLtD: uCLtD, isa.OpCLeD: uCLeD,
}

// decodeInstr translates one architectural instruction into its µop.
func decodeInstr(in *isa.Instr) uop {
	u := uop{
		rd:     in.Dest(),
		rs:     in.Rs,
		rt:     in.Rt,
		op:     in.Op,
		imm:    in.Imm,
		target: in.Target,
		size:   uint8(in.Op.MemSize()),
	}
	switch {
	case in.Op == isa.OpSyscall:
		u.kind = uSyscall
	case in.Op.IsLoad():
		if in.Op == isa.OpLw {
			u.kind = uLw
		} else {
			u.kind = uLoad
		}
	case in.Op.IsStore():
		if in.Op == isa.OpSw {
			u.kind = uSw
		} else {
			u.kind = uStore
		}
	case in.Op == isa.OpJ:
		u.kind = uJ
	case in.Op == isa.OpJal:
		u.kind = uJal
	case in.Op == isa.OpJr:
		u.kind = uJr
	case in.Op == isa.OpJalr:
		u.kind = uJalr
	case in.Op == isa.OpNop || in.Op == isa.OpRelease:
		// Release is a pure annotation to the functional engine.
		u.kind = uNop
	default:
		if k, ok := branchKinds[in.Op]; ok {
			u.kind = k
		} else if k, ok := fccKinds[in.Op]; ok {
			u.kind = k
		} else if k, ok := aluKinds[in.Op]; ok {
			// An ALU op writing $zero has no architectural effect
			// beyond retiring, so it decodes to a µ-nop. (Div/rem are
			// not in the table: their trap fires even with a $zero
			// dest, so they take the Exec path.)
			if u.rd != isa.RegZero {
				u.kind = k
			} else {
				u.kind = uNop
			}
		} else if k, ok := fpKinds[in.Op]; ok {
			if u.rd != isa.RegZero {
				u.kind = k
			} else {
				u.kind = uNop
			}
		} else {
			u.kind = uExec
		}
	}
	return u
}

// uopCache shares decoded programs across machines, keyed by program
// identity. Programs in this codebase are immutable once built (rewrites
// clone the image first), so pointer identity is a sound key.
var uopCache sync.Map // *isa.Program -> []uop

// memImages caches the loaded data segment of each program as an
// immutable copy-on-write image, so constructing a machine shares the
// image instead of re-copying the segment (mem.NewMemoryFromImage).
var memImages sync.Map // *isa.Program -> *mem.Image

// ProgramImage returns the initial memory image for p — the data
// segment at isa.DataBase — building and caching it on first use. The
// timing simulators seed their backing stores from the same image.
func ProgramImage(p *isa.Program) *mem.Image {
	if v, ok := memImages.Load(p); ok {
		return v.(*mem.Image)
	}
	m := mem.NewMemory()
	m.WriteBytes(isa.DataBase, p.Data)
	v, _ := memImages.LoadOrStore(p, m.Image())
	return v.(*mem.Image)
}

// decodedUops returns the µop stream for p, decoding and caching it on
// first use.
func decodedUops(p *isa.Program) []uop {
	if v, ok := uopCache.Load(p); ok {
		return v.([]uop)
	}
	us := make([]uop, len(p.Text))
	for i := range p.Text {
		us[i] = decodeInstr(&p.Text[i])
	}
	v, _ := uopCache.LoadOrStore(p, us)
	return v.([]uop)
}
