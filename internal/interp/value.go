// Package interp implements the functional (instruction-at-a-time) ISA
// simulator. It serves two roles: it is the correctness oracle every
// timing simulation is checked against, and it is the single home of the
// instruction semantics — the timing pipelines call Exec/LoadValue/
// StoreValue from this package, so functional behaviour cannot diverge
// between simulators.
package interp

import (
	"fmt"
	"math"

	"multiscalar/internal/isa"
)

// Value is the contents of one architectural register: integer registers
// use I, floating-point registers use F. Carrying both in one struct lets
// register files, reorder buffers, and the forwarding ring treat all
// registers uniformly.
type Value struct {
	I uint32
	F float64
}

// IntVal makes an integer register value.
func IntVal(v uint32) Value { return Value{I: v} }

// FPVal makes a floating-point register value.
func FPVal(f float64) Value { return Value{F: f} }

// Signed returns the integer value as a signed 32-bit quantity.
func (v Value) Signed() int32 { return int32(v.I) }

func (v Value) String() string {
	if v.F != 0 {
		return fmt.Sprintf("%g", v.F)
	}
	return fmt.Sprintf("%d", int32(v.I))
}

// clampToInt32 converts a float64 to int32 with saturation, mapping NaN to
// zero, so conversion behaviour is well defined for every input.
func clampToInt32(f float64) int32 {
	switch {
	case math.IsNaN(f):
		return 0
	case f >= math.MaxInt32:
		return math.MaxInt32
	case f <= math.MinInt32:
		return math.MinInt32
	default:
		return int32(f)
	}
}

// ExecResult is the outcome of executing one instruction's computation.
type ExecResult struct {
	Val    Value // destination register value (if the op writes one)
	FCC    bool  // new FP condition flag (if the op sets it)
	SetFCC bool
	Taken  bool // conditional branch outcome
}

// Exec computes the pure (non-memory, non-control-target) semantics of an
// instruction given its source operand values. For conditional branches it
// reports the taken/not-taken outcome. Memory operations and jumps are
// handled by the caller (address computation via EffAddr, link values via
// the pipeline). Exec returns an error for traps (division by zero).
func Exec(op isa.Op, rs, rt Value, imm int32, fcc bool) (ExecResult, error) {
	var r ExecResult
	switch op {
	case isa.OpNop, isa.OpRelease, isa.OpSyscall, isa.OpJ, isa.OpJal, isa.OpJr, isa.OpJalr:
		// No computation here.
	case isa.OpAdd:
		r.Val.I = rs.I + rt.I
	case isa.OpAddi:
		r.Val.I = rs.I + uint32(imm)
	case isa.OpSub:
		r.Val.I = rs.I - rt.I
	case isa.OpMul:
		r.Val.I = uint32(int32(rs.I) * int32(rt.I))
	case isa.OpDiv, isa.OpRem:
		a, b := int32(rs.I), int32(rt.I)
		if b == 0 {
			return r, fmt.Errorf("interp: %s by zero", op)
		}
		if a == math.MinInt32 && b == -1 {
			if op == isa.OpDiv {
				r.Val.I = uint32(a) // wraps, as MIPS does
			} else {
				r.Val.I = 0
			}
		} else if op == isa.OpDiv {
			r.Val.I = uint32(a / b)
		} else {
			r.Val.I = uint32(a % b)
		}
	case isa.OpAnd:
		r.Val.I = rs.I & rt.I
	case isa.OpAndi:
		r.Val.I = rs.I & uint32(imm)
	case isa.OpOr:
		r.Val.I = rs.I | rt.I
	case isa.OpOri:
		r.Val.I = rs.I | uint32(imm)
	case isa.OpXor:
		r.Val.I = rs.I ^ rt.I
	case isa.OpXori:
		r.Val.I = rs.I ^ uint32(imm)
	case isa.OpNor:
		r.Val.I = ^(rs.I | rt.I)
	case isa.OpSll:
		r.Val.I = rs.I << (uint32(imm) & 31)
	case isa.OpSrl:
		r.Val.I = rs.I >> (uint32(imm) & 31)
	case isa.OpSra:
		r.Val.I = uint32(int32(rs.I) >> (uint32(imm) & 31))
	case isa.OpSllv:
		r.Val.I = rs.I << (rt.I & 31)
	case isa.OpSrlv:
		r.Val.I = rs.I >> (rt.I & 31)
	case isa.OpSrav:
		r.Val.I = uint32(int32(rs.I) >> (rt.I & 31))
	case isa.OpSlt:
		if int32(rs.I) < int32(rt.I) {
			r.Val.I = 1
		}
	case isa.OpSltu:
		if rs.I < rt.I {
			r.Val.I = 1
		}
	case isa.OpSlti:
		if int32(rs.I) < imm {
			r.Val.I = 1
		}
	case isa.OpSltiu:
		if rs.I < uint32(imm) {
			r.Val.I = 1
		}
	case isa.OpLui:
		r.Val.I = uint32(imm) << 16

	case isa.OpBeq:
		r.Taken = rs.I == rt.I
	case isa.OpBne:
		r.Taken = rs.I != rt.I
	case isa.OpBlez:
		r.Taken = int32(rs.I) <= 0
	case isa.OpBgtz:
		r.Taken = int32(rs.I) > 0
	case isa.OpBltz:
		r.Taken = int32(rs.I) < 0
	case isa.OpBgez:
		r.Taken = int32(rs.I) >= 0
	case isa.OpBc1t:
		r.Taken = fcc
	case isa.OpBc1f:
		r.Taken = !fcc

	case isa.OpAddS:
		r.Val.F = float64(float32(rs.F) + float32(rt.F))
	case isa.OpSubS:
		r.Val.F = float64(float32(rs.F) - float32(rt.F))
	case isa.OpMulS:
		r.Val.F = float64(float32(rs.F) * float32(rt.F))
	case isa.OpDivS:
		r.Val.F = float64(float32(rs.F) / float32(rt.F))
	case isa.OpAddD:
		r.Val.F = rs.F + rt.F
	case isa.OpSubD:
		r.Val.F = rs.F - rt.F
	case isa.OpMulD:
		r.Val.F = rs.F * rt.F
	case isa.OpDivD:
		r.Val.F = rs.F / rt.F
	case isa.OpNegD:
		r.Val.F = -rs.F
	case isa.OpAbsD:
		r.Val.F = math.Abs(rs.F)
	case isa.OpMovD:
		r.Val.F = rs.F
	case isa.OpSqrtD:
		r.Val.F = math.Sqrt(rs.F)

	case isa.OpCEqD:
		r.FCC, r.SetFCC = rs.F == rt.F, true
	case isa.OpCLtD:
		r.FCC, r.SetFCC = rs.F < rt.F, true
	case isa.OpCLeD:
		r.FCC, r.SetFCC = rs.F <= rt.F, true

	case isa.OpMtc1:
		r.Val.F = float64(int32(rs.I))
	case isa.OpMfc1:
		r.Val.I = uint32(clampToInt32(rs.F))
	case isa.OpCvtDW:
		r.Val.F = rs.F // values are stored converted; see package doc
	case isa.OpCvtWD:
		r.Val.F = float64(clampToInt32(rs.F))
	case isa.OpCvtSD:
		r.Val.F = float64(float32(rs.F))
	case isa.OpCvtDS:
		r.Val.F = rs.F

	case isa.OpLb, isa.OpLbu, isa.OpLh, isa.OpLhu, isa.OpLw,
		isa.OpLwc1, isa.OpLdc1, isa.OpSb, isa.OpSh, isa.OpSw,
		isa.OpSwc1, isa.OpSdc1:
		// Memory ops: address computation is EffAddr; data conversion is
		// LoadValue/StoreValue.
	default:
		return r, fmt.Errorf("interp: unimplemented op %v", op)
	}
	return r, nil
}

// EffAddr returns the effective address of a memory operation.
func EffAddr(rs Value, imm int32) uint32 { return rs.I + uint32(imm) }

// LoadValue converts raw big-endian bytes (as returned by Memory.ReadN
// with the op's MemSize) into a register value.
func LoadValue(op isa.Op, raw uint64) Value {
	switch op {
	case isa.OpLb:
		return IntVal(uint32(int32(int8(raw))))
	case isa.OpLbu:
		return IntVal(uint32(raw & 0xff))
	case isa.OpLh:
		return IntVal(uint32(int32(int16(raw))))
	case isa.OpLhu:
		return IntVal(uint32(raw & 0xffff))
	case isa.OpLw:
		return IntVal(uint32(raw))
	case isa.OpLwc1:
		return FPVal(float64(math.Float32frombits(uint32(raw))))
	case isa.OpLdc1:
		return FPVal(math.Float64frombits(raw))
	default:
		panic(fmt.Sprintf("interp: LoadValue on %v", op))
	}
}

// StoreValue converts a register value into the raw big-endian bytes a
// store writes (low MemSize bytes of the result).
func StoreValue(op isa.Op, v Value) uint64 {
	switch op {
	case isa.OpSb:
		return uint64(v.I & 0xff)
	case isa.OpSh:
		return uint64(v.I & 0xffff)
	case isa.OpSw:
		return uint64(v.I)
	case isa.OpSwc1:
		return uint64(math.Float32bits(float32(v.F)))
	case isa.OpSdc1:
		return math.Float64bits(v.F)
	default:
		panic(fmt.Sprintf("interp: StoreValue on %v", op))
	}
}
