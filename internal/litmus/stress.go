package litmus

import (
	"fmt"
	"strings"
	"sync"

	"multiscalar/internal/arb"
	"multiscalar/internal/bench"
	"multiscalar/internal/core"
	"multiscalar/internal/interp"
	"multiscalar/internal/trace"
)

// StressOpts configure a randomized ARB-capacity stress run.
type StressOpts struct {
	Seed     int64
	Programs int // generated programs (seeds Seed, Seed+1, ...)
	Units    []int
	Entries  []int // ARB entries per bank (tiny: the point of the stressor)
	Policies []arb.OverflowPolicy
}

func (o *StressOpts) defaults() {
	if o.Programs <= 0 {
		o.Programs = 100
	}
	if len(o.Units) == 0 {
		o.Units = []int{4, 8}
	}
	if len(o.Entries) == 0 {
		o.Entries = []int{1, 2}
	}
	if len(o.Policies) == 0 {
		o.Policies = []arb.OverflowPolicy{arb.PolicyStall, arb.PolicySquash}
	}
}

// maxHistBanks bounds the per-bank aggregation (2× the largest unit
// count the stressor runs).
const maxHistBanks = 16

// maxHistDist bounds the squash-distance histogram (distances are
// < NumUnits ≤ 8).
const maxHistDist = 16

// BankAgg aggregates one bank index's counters across every run.
type BankAgg struct {
	Allocs       uint64
	Overflows    uint64
	Violations   uint64
	MaxOccupancy int
}

// StressReport is the stressor's aggregate outcome.
type StressReport struct {
	Seed     int64
	Programs int
	Runs     int

	Mismatches []*Mismatch

	// Aggregate ARB counters (summed over runs; MaxOccupancy is the
	// peak over runs).
	Allocs, Overflows, Violations, StoreForwards uint64
	MaxOccupancy                                 int
	Banks                                        [maxHistBanks]BankAgg

	// Squash-event histograms from the trace stream.
	SquashDist  [maxHistDist]uint64
	CauseCounts [4]uint64 // indexed by trace.Cause*
}

// squashSink accumulates squash-distance and cause histograms; every
// other event kind is dropped on the floor.
type squashSink struct {
	dist  [maxHistDist]uint64
	cause [4]uint64
}

func (s *squashSink) Emit(e trace.Event) {
	if e.Kind != trace.KTaskSquash {
		return
	}
	if d := trace.SquashDist(e.Arg2); d < maxHistDist {
		s.dist[d]++
	}
	if e.Arg < uint32(len(s.cause)) {
		s.cause[e.Arg]++
	}
}

// Stress generates opts.Programs random litmus programs and runs each
// across the units × entries × policies grid on directly constructed
// machines (the stats surface needs the machine, not just the Result),
// checking every run against the generation-time oracle and folding
// the per-bank ARB counters and squash histograms into the report.
func Stress(opts StressOpts) (*StressReport, error) {
	opts.defaults()
	rep := &StressReport{Seed: opts.Seed, Programs: opts.Programs}
	var mu sync.Mutex
	var genErr error

	err := bench.RunJobs(opts.Programs, func(i int) error {
		p, err := Random(opts.Seed + int64(i))
		if err != nil {
			mu.Lock()
			if genErr == nil {
				genErr = err
			}
			mu.Unlock()
			return err
		}
		local := &StressReport{}
		for _, units := range opts.Units {
			for _, entries := range opts.Entries {
				for _, pol := range opts.Policies {
					e := MatrixEntry{Units: units, Policy: pol, Entries: entries}
					stressOne(p, e, opts.Seed, local)
				}
			}
		}
		mu.Lock()
		rep.merge(local)
		mu.Unlock()
		return nil
	})
	if genErr != nil {
		return nil, genErr
	}
	if err != nil {
		return nil, err
	}
	return rep, nil
}

// stressOne runs one cell on a direct machine and folds its stats into
// the local report.
func stressOne(p *Program, e MatrixEntry, seed int64, rep *StressReport) {
	cfg := e.Config()
	sink := &squashSink{}
	cfg.Sink = sink
	env := interp.NewSysEnv()
	m, err := core.NewMultiscalar(p.Prog, env, cfg)
	var res *core.Result
	if err == nil {
		res, err = m.Run()
	}
	rep.Runs++

	mm := &Mismatch{Program: p, Entry: e}
	switch {
	case err != nil:
		mm.Err = err.Error()
	case res.Out == p.Oracle.Out && res.Committed == p.Oracle.ICount:
		mm = nil
	default:
		mm.Got = res.Out
		mm.Committed = res.Committed
		mm.Diagnosis = p.Classify(res.Out)
	}
	if mm != nil {
		var snap []byte
		if m != nil {
			snap, _ = m.Save()
		}
		mm.Artifact = NewArtifact(p, e, mm, seed, snap)
		rep.Mismatches = append(rep.Mismatches, mm)
	}
	if m == nil {
		return
	}

	st := m.ARBStats()
	rep.Allocs += st.Allocs
	rep.Overflows += st.Overflows
	rep.Violations += st.Violations
	rep.StoreForwards += st.StoreForwards
	if st.MaxOccupancy > rep.MaxOccupancy {
		rep.MaxOccupancy = st.MaxOccupancy
	}
	for i, b := range st.Banks {
		if i >= maxHistBanks {
			break
		}
		rep.Banks[i].Allocs += b.Allocs
		rep.Banks[i].Overflows += b.Overflows
		rep.Banks[i].Violations += b.Violations
		if b.MaxOccupancy > rep.Banks[i].MaxOccupancy {
			rep.Banks[i].MaxOccupancy = b.MaxOccupancy
		}
	}
	for i, n := range sink.dist {
		rep.SquashDist[i] += n
	}
	for i, n := range sink.cause {
		rep.CauseCounts[i] += n
	}
}

func (r *StressReport) merge(o *StressReport) {
	r.Runs += o.Runs
	r.Mismatches = append(r.Mismatches, o.Mismatches...)
	r.Allocs += o.Allocs
	r.Overflows += o.Overflows
	r.Violations += o.Violations
	r.StoreForwards += o.StoreForwards
	if o.MaxOccupancy > r.MaxOccupancy {
		r.MaxOccupancy = o.MaxOccupancy
	}
	for i := range r.Banks {
		r.Banks[i].Allocs += o.Banks[i].Allocs
		r.Banks[i].Overflows += o.Banks[i].Overflows
		r.Banks[i].Violations += o.Banks[i].Violations
		if o.Banks[i].MaxOccupancy > r.Banks[i].MaxOccupancy {
			r.Banks[i].MaxOccupancy = o.Banks[i].MaxOccupancy
		}
	}
	for i := range r.SquashDist {
		r.SquashDist[i] += o.SquashDist[i]
	}
	for i := range r.CauseCounts {
		r.CauseCounts[i] += o.CauseCounts[i]
	}
}

// String renders the report as the stressor's text summary.
func (r *StressReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "stress: seed=%d programs=%d runs=%d mismatches=%d\n",
		r.Seed, r.Programs, r.Runs, len(r.Mismatches))
	fmt.Fprintf(&b, "arb:    %d allocs, %d overflows, %d violations, %d store-forwards, peak occupancy %d\n",
		r.Allocs, r.Overflows, r.Violations, r.StoreForwards, r.MaxOccupancy)
	b.WriteString("bank     allocs  overflows violations maxocc\n")
	for i, bk := range r.Banks {
		if bk.Allocs == 0 && bk.Overflows == 0 && bk.Violations == 0 {
			continue
		}
		fmt.Fprintf(&b, "%4d %10d %10d %10d %6d\n", i, bk.Allocs, bk.Overflows, bk.Violations, bk.MaxOccupancy)
	}
	b.WriteString("squashes by cause:")
	for c, n := range r.CauseCounts {
		fmt.Fprintf(&b, " %s=%d", trace.CauseName(uint32(c)), n)
	}
	b.WriteString("\nsquash distance:")
	for d, n := range r.SquashDist {
		if n > 0 {
			fmt.Fprintf(&b, " d%d=%d", d, n)
		}
	}
	b.WriteString("\n")
	return b.String()
}
