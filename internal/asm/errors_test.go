package asm

import (
	"strings"
	"testing"
)

// TestAssembleErrorPaths sweeps malformed inputs; each must produce an
// error mentioning its line.
func TestAssembleErrorPaths(t *testing.T) {
	cases := map[string]string{
		"bad annotation":        "main:\n\tadd $t0, $t0, $t0 !x\n",
		"stray dot":             "main:\n\t. foo\n",
		"unterminated string":   ".data\ns:\t.asciiz \"abc\n",
		"bad escape":            ".data\ns:\t.asciiz \"a\\qb\"\n",
		"bad char literal":      "main:\n\tli $t0, 'ab'\n",
		"unbalanced paren":      "main:\n\tlw $t0, 4($sp\n",
		"close paren":           "main:\n\tlw $t0, 4)$sp(\n",
		"empty operand":         "main:\n\tadd $t0, , $t1\n",
		"bad number":            "main:\n\tli $t0, 0xzz\n",
		"float in int expr":     "main:\n\tli $t0, 1.5\n",
		"unknown directive":     "main:\n\t.bogus 1\n",
		"align in text":         "main:\n\t.align 2\n",
		"space in text":         "main:\n\t.space 4\n",
		"word in text":          "main:\n\t.word 1\n",
		"byte with symbol":      ".data\nx:\t.byte x\n",
		"global missing arg":    ".global\nmain:\n\tsyscall\n",
		"task without name":     "main:\n\tsyscall\n.task\n",
		"task bad kv":           "main:\n\tsyscall\n.task main bogus\n",
		"task dup key":          "main:\n\tsyscall\n.task main targets=main targets=main\n",
		"task unknown entry":    "main:\n\tsyscall\n.task t entry=zzz targets=main\n",
		"task unknown target":   "main:\n\tsyscall\n.task main targets=zzz\n",
		"task bad create":       "main:\n\tsyscall\n.task main targets=main create=7\n",
		"task unknown pushra":   "main:\n\tsyscall\n.task main targets=main pushra=zzz\n",
		"pushra without target": "main:\n\tsyscall\n.task main pushra=main\n",
		"too many operands":     "main:\n\tadd $t0, $t1, $t2, $t3\n",
		"too few operands":      "main:\n\tadd $t0\n",
		"reg where imm":         "main:\n\tj $t0\n",
		"mem wants reg":         "main:\n\tlw $t0, 4(3)\n",
		"jalr three operands":   "main:\n\tjalr $t0, $t1, $t2\n",
		"release no regs":       "main:\n\trelease\n\tsyscall\n.task main targets=main\n",
		"imm out of range":      "main:\n\tli $t0, 99999999999\n",
		"expr ends":             "main:\n\tli $t0, 1+\n",
		"expr junk":             "main:\n\tli $t0, 1+$t0\n",
	}
	for name, src := range cases {
		name, src := name, src
		t.Run(name, func(t *testing.T) {
			mode := ModeMultiscalar
			if _, err := Assemble(src, mode); err == nil {
				t.Errorf("expected error for %s", name)
			} else if !strings.Contains(err.Error(), "line") &&
				!strings.Contains(err.Error(), "task") &&
				!strings.Contains(err.Error(), "undefined") {
				t.Logf("error (ok, but unlocated): %v", err)
			}
		})
	}
}

func TestEntrySymbolUndefined(t *testing.T) {
	if _, err := Assemble(".global nowhere\nmain:\n\tsyscall\n", ModeScalar); err == nil {
		t.Error("undefined entry should fail")
	}
}

func TestCharLiterals(t *testing.T) {
	p := mustAssemble(t, "main:\n\tli $t0, 'A'\n\tli $t1, '\\n'\n\tli $t2, '\\''\n\tsyscall\n", ModeScalar)
	if p.Text[0].Imm != 'A' || p.Text[1].Imm != '\n' || p.Text[2].Imm != '\'' {
		t.Errorf("chars = %d %d %d", p.Text[0].Imm, p.Text[1].Imm, p.Text[2].Imm)
	}
}

func TestNegativeExpressions(t *testing.T) {
	p := mustAssemble(t, "main:\n\tli $t0, -5\n\tli $t1, 10-3\n\tli $t2, -2+7\n\tsyscall\n", ModeScalar)
	if p.Text[0].Imm != -5 || p.Text[1].Imm != 7 || p.Text[2].Imm != 5 {
		t.Errorf("exprs = %d %d %d", p.Text[0].Imm, p.Text[1].Imm, p.Text[2].Imm)
	}
}

func TestHexAndNegativeData(t *testing.T) {
	p := mustAssemble(t, ".data\nx:\t.word -1, 0x7fffffff\n\t.half -2\n\t.byte -3\n.text\nmain:\n\tsyscall\n", ModeScalar)
	if p.Data[0] != 0xff || p.Data[4] != 0x7f {
		t.Errorf("data = %x", p.Data[:8])
	}
}

func TestModeString(t *testing.T) {
	if ModeScalar.String() != "scalar" || ModeMultiscalar.String() != "multiscalar" {
		t.Error("mode names wrong")
	}
}

func TestMultipleLabelsOneLine(t *testing.T) {
	p := mustAssemble(t, "a: b: c:\tmain:\n\tsyscall\n", ModeScalar)
	for _, l := range []string{"a", "b", "c", "main"} {
		if addr, ok := p.Symbol(l); !ok || addr != p.Entry {
			t.Errorf("label %s = 0x%x, ok=%v", l, addr, ok)
		}
	}
}
