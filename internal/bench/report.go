package bench

import (
	"encoding/json"
	"fmt"
	"runtime"
	"time"
)

// Section is one timed phase of a benchmark-harness invocation.
type Section struct {
	Name    string  `json:"name"`
	Seconds float64 `json:"seconds"`
}

// Report is the machine-readable timing/throughput record msbench -json
// emits. Checked-in BENCH_*.json files built from it form the
// performance trajectory of the harness itself: compare Seconds and the
// throughput fields across baselines recorded on the same host.
type Report struct {
	Timestamp  string `json:"timestamp"`
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Workers    int    `json:"workers"`
	Scale      string `json:"scale"` // "full" or "quick"

	Sections     []Section `json:"sections"`
	TotalSeconds float64   `json:"total_seconds"`

	// Simulated work completed, summed over every verified timing run.
	// SimCycles counts simulated machine cycles; SimCyclesTicked counts the
	// cycles the timing loops actually executed — the difference is what
	// the wakeup scheduler skipped (docs/perf.md), and CycleSkipRatio is
	// that difference as a fraction of SimCycles.
	SimRuns         uint64  `json:"sim_runs"`
	SimCycles       uint64  `json:"sim_cycles"`
	SimCyclesTicked uint64  `json:"sim_cycles_ticked"`
	CycleSkipRatio  float64 `json:"cycle_skip_ratio"`
	SimInstructions uint64  `json:"sim_instructions"`
	// Builds that actually ran (memo misses): assemble + functional
	// oracle executions.
	Builds uint64 `json:"builds"`
	// Simulation points answered by restoring a shared finished-run
	// snapshot instead of simulating again (docs/perf.md).
	RunsRestored uint64 `json:"runs_restored"`
	// Sampled-simulation work (docs/perf.md, "Sampled simulation"):
	// estimates produced, detailed windows measured across them, and the
	// mean per-estimate CPI variance of the window populations.
	RunsSampled       uint64  `json:"runs_sampled"`
	SampledWindows    uint64  `json:"sampled_windows"`
	SampledMeanVarCPI float64 `json:"sampled_mean_var_cpi"`

	// Throughput of the simulators themselves over the whole invocation.
	MSimCyclesPerSec float64 `json:"msim_cycles_per_sec"`
	MIPS             float64 `json:"mips"` // committed simulated instrs/sec, millions
}

// NewReport starts a report for the current process configuration.
func NewReport(scale Scale) *Report {
	name := "full"
	if scale != 0 {
		name = "quick"
	}
	return &Report{
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Workers:    Workers(),
		Scale:      name,
	}
}

// Time runs fn as a named section and records its wall-clock seconds.
func (r *Report) Time(name string, fn func()) {
	start := time.Now()
	fn()
	r.Sections = append(r.Sections, Section{Name: name, Seconds: time.Since(start).Seconds()})
}

// Finalize fills the totals and throughput fields from the process-wide
// simulation counters and returns the indented JSON encoding.
func (r *Report) Finalize() ([]byte, error) {
	r.TotalSeconds = 0
	for _, s := range r.Sections {
		r.TotalSeconds += s.Seconds
	}
	r.SimRuns, r.SimCycles, r.SimInstructions = SimTotals()
	r.SimCyclesTicked = SimTicked()
	if r.SimCycles > 0 {
		r.CycleSkipRatio = float64(r.SimCycles-r.SimCyclesTicked) / float64(r.SimCycles)
	}
	r.Builds = BuildsPerformed()
	r.RunsRestored = RunsRestored()
	r.RunsSampled, r.SampledWindows, r.SampledMeanVarCPI = SampledTotals()
	if r.TotalSeconds > 0 {
		r.MSimCyclesPerSec = float64(r.SimCycles) / r.TotalSeconds / 1e6
		r.MIPS = float64(r.SimInstructions) / r.TotalSeconds / 1e6
	}
	return json.MarshalIndent(r, "", "  ")
}

// ReadReport parses a JSON report written by Finalize (a checked-in
// BENCH_*.json baseline).
func ReadReport(data []byte) (*Report, error) {
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, err
	}
	return &r, nil
}

// Compare checks cur against a baseline report section by section and
// returns one human-readable line per regression: a section whose
// wall-clock time grew by more than tolerance (a fraction; 0.25 allows
// +25%), or a baseline section missing from cur. Sections faster than
// the baseline, new sections, and sub-100ms baseline sections (pure
// noise) never regress. An empty slice means cur is within tolerance.
func Compare(base, cur *Report, tolerance float64) []string {
	curSec := make(map[string]float64, len(cur.Sections))
	for _, s := range cur.Sections {
		curSec[s.Name] = s.Seconds
	}
	var regressions []string
	for _, b := range base.Sections {
		if b.Seconds < 0.1 {
			continue
		}
		c, ok := curSec[b.Name]
		if !ok {
			regressions = append(regressions,
				fmt.Sprintf("section %q: in baseline (%.2fs) but not in current run", b.Name, b.Seconds))
			continue
		}
		if c > b.Seconds*(1+tolerance) {
			regressions = append(regressions,
				fmt.Sprintf("section %q: %.2fs vs baseline %.2fs (+%.0f%%, tolerance %.0f%%)",
					b.Name, c, b.Seconds, 100*(c/b.Seconds-1), 100*tolerance))
		}
	}
	return regressions
}
