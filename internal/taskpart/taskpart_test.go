package taskpart

import (
	"testing"

	"multiscalar/internal/asm"
	"multiscalar/internal/isa"
)

// assembleRaw builds a multiscalar-mode binary with no hand annotations.
func assembleRaw(t *testing.T, src string) *isa.Program {
	t.Helper()
	p, err := asm.Assemble(src, asm.ModeMultiscalar)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return p
}

const simpleLoop = `
main:
	li $s0, 10
	li $s1, 0
loop:
	add $s1, $s1, $s0
	addi $s0, $s0, -1
	bnez $s0, loop
	move $a0, $s1
	li $v0, 10
	syscall
`

func TestPartitionSimpleLoop(t *testing.T) {
	p := assembleRaw(t, simpleLoop)
	part, err := Run(p, Options{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	loopAddr, _ := p.Symbol("loop")
	td := p.TaskAt(loopAddr)
	if td == nil {
		t.Fatal("no task at loop header")
	}
	// Loop task targets: itself and the loop exit.
	if len(td.Targets) != 2 {
		t.Fatalf("targets = %v", td.Targets)
	}
	if !td.HasTarget(loopAddr) {
		t.Errorf("loop task should target itself: %v", td.Targets)
	}
	exitAddr := loopAddr + 3*isa.InstrSize
	if !td.HasTarget(exitAddr) {
		t.Errorf("loop task should target exit 0x%x: %v", exitAddr, td.Targets)
	}
	// Create mask: s0 (live across iterations) and s1 (live at exit).
	if !td.Create.Has(isa.RegS0) || !td.Create.Has(isa.RegS0+1) {
		t.Errorf("create = %v", td.Create)
	}
	// The backward branch carries a stop bit: leaving either way exits
	// the task (taken -> next iteration task, not-taken -> exit task).
	bnez := p.InstrAt(exitAddr - isa.InstrSize)
	if bnez.Stop != isa.StopAlways {
		t.Errorf("bnez stop = %v", bnez.Stop)
	}
	// Forward bits on last updates of s0 and s1 in the loop body.
	add := p.InstrAt(loopAddr)
	addi := p.InstrAt(loopAddr + isa.InstrSize)
	if !add.Fwd {
		t.Errorf("add (last s1 update) should forward: %v", add)
	}
	if !addi.Fwd {
		t.Errorf("addi (last s0 update) should forward: %v", addi)
	}
	if len(part.Tasks) < 3 {
		t.Errorf("expected >=3 tasks (entry, loop, exit), got %d", len(part.Tasks))
	}
}

func TestDeadRegisterTrimming(t *testing.T) {
	// $t5 is written in the loop but never read after — it must not
	// appear in the create mask. ($t5 is scratch inside one iteration.)
	p := assembleRaw(t, `
main:
	li $s0, 10
	li $s1, 0
loop:
	add $t5, $s0, $s0
	add $s1, $s1, $t5
	addi $s0, $s0, -1
	bnez $s0, loop
	move $a0, $s1
	li $v0, 10
	syscall
`)
	if _, err := Run(p, Options{}); err != nil {
		t.Fatal(err)
	}
	loopAddr, _ := p.Symbol("loop")
	td := p.TaskAt(loopAddr)
	if td.Create.Has(isa.RegT0 + 5) {
		t.Errorf("dead $t5 in create mask %v", td.Create)
	}
	if !td.Create.Has(isa.RegS0) || !td.Create.Has(isa.RegS0+1) {
		t.Errorf("create = %v", td.Create)
	}
}

func TestFunctionBecomesTask(t *testing.T) {
	p := assembleRaw(t, `
main:
	li  $a0, 5
	jal work
	move $s0, $v0
	li  $v0, 10
	syscall
work:
	add $v0, $a0, $a0
	jr  $ra
`)
	part, err := Run(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	workAddr, _ := p.Symbol("work")
	workTask := p.TaskAt(workAddr)
	if workTask == nil {
		t.Fatal("no task for function")
	}
	if len(workTask.Targets) != 1 || workTask.Targets[0] != isa.TargetReturn {
		t.Errorf("work targets = %v", workTask.Targets)
	}
	// The caller task ends at the jal, pushing the continuation.
	entryTask := p.TaskAt(p.Entry)
	if entryTask == nil {
		t.Fatal("no entry task")
	}
	if !entryTask.HasTarget(workAddr) {
		t.Errorf("entry targets = %v", entryTask.Targets)
	}
	contAddr := p.Entry + 3*isa.InstrSize // after li;li(expanded?);jal — compute from symbol
	_ = contAddr
	if entryTask.PushRA == 0 || entryTask.CallTarget != workAddr {
		t.Errorf("PushRA=0x%x CallTarget=0x%x", entryTask.PushRA, entryTask.CallTarget)
	}
	// Continuation task exists at PushRA.
	if p.TaskAt(entryTask.PushRA) == nil {
		t.Error("no continuation task")
	}
	// The jal carries a stop bit; the jr carries a stop bit.
	foundJalStop, foundJrStop := false, false
	for i := range p.Text {
		in := &p.Text[i]
		if in.Op == isa.OpJal && in.Stop == isa.StopAlways {
			foundJalStop = true
		}
		if in.Op == isa.OpJr && in.Stop == isa.StopAlways {
			foundJrStop = true
		}
	}
	if !foundJalStop || !foundJrStop {
		t.Errorf("stops: jal=%v jr=%v", foundJalStop, foundJrStop)
	}
	if len(part.Tasks) < 3 {
		t.Errorf("tasks = %d", len(part.Tasks))
	}
}

func TestSuppressedFunction(t *testing.T) {
	src := `
main:
	li  $a0, 5
	jal work
	move $s0, $v0
	li  $v0, 10
	syscall
work:
	add $v0, $a0, $a0
	jr  $ra
`
	p := assembleRaw(t, src)
	_, err := Run(p, Options{SuppressFuncs: []string{"work"}})
	if err != nil {
		t.Fatal(err)
	}
	workAddr, _ := p.Symbol("work")
	if p.TaskAt(workAddr) != nil {
		t.Error("suppressed function should not be a task")
	}
	// The jal must not stop; the suppressed jr must not stop.
	for i := range p.Text {
		in := &p.Text[i]
		if in.Op == isa.OpJal && in.Stop != isa.StopNone {
			t.Error("jal to suppressed fn has stop bit")
		}
		if in.Op == isa.OpJr && in.Stop != isa.StopNone {
			t.Error("suppressed jr has stop bit")
		}
	}
}

func TestNestedLoopTasks(t *testing.T) {
	p := assembleRaw(t, `
main:
	li $s0, 3
outer:
	li $s1, 4
	li $s2, 0
inner:
	add  $s2, $s2, $s1
	addi $s1, $s1, -1
	bnez $s1, inner
	addi $s0, $s0, -1
	bnez $s0, outer
	li $v0, 10
	syscall
`)
	part, err := Run(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	outerAddr, _ := p.Symbol("outer")
	innerAddr, _ := p.Symbol("inner")
	if p.TaskAt(outerAddr) == nil || p.TaskAt(innerAddr) == nil {
		t.Fatal("missing loop tasks")
	}
	inner := p.TaskAt(innerAddr)
	// Inner loop task targets: itself + the inner-exit continuation.
	if !inner.HasTarget(innerAddr) {
		t.Errorf("inner targets = %v", inner.Targets)
	}
	_ = part
}

func TestRejectsAnnotatedProgram(t *testing.T) {
	p := assembleRaw(t, `
main:
	li $t0, 1
	li $v0, 10
	syscall
	.task main targets=main
`)
	if _, err := Run(p, Options{}); err == nil {
		t.Error("expected error for pre-annotated program")
	}
}

func TestTerminalTaskHasNoTargets(t *testing.T) {
	p := assembleRaw(t, simpleLoop)
	if _, err := Run(p, Options{}); err != nil {
		t.Fatal(err)
	}
	// The exit task (after the loop) ends at the syscall with no successor.
	loopAddr, _ := p.Symbol("loop")
	exitTask := p.TaskAt(loopAddr + 3*isa.InstrSize)
	if exitTask == nil {
		t.Fatal("no exit task")
	}
	if len(exitTask.Targets) != 0 {
		t.Errorf("terminal task targets = %v", exitTask.Targets)
	}
}

func TestForwardBitNotOnEarlyWrite(t *testing.T) {
	// $s1 is written twice in the loop body; only the second write may
	// carry the forward bit.
	p := assembleRaw(t, `
main:
	li $s0, 10
	li $s1, 0
loop:
	add  $s1, $s1, $s0
	add  $s1, $s1, 1
	addi $s0, $s0, -1
	bnez $s0, loop
	move $a0, $s1
	li $v0, 10
	syscall
`)
	if _, err := Run(p, Options{}); err != nil {
		t.Fatal(err)
	}
	loopAddr, _ := p.Symbol("loop")
	first := p.InstrAt(loopAddr)
	second := p.InstrAt(loopAddr + isa.InstrSize)
	if first.Fwd {
		t.Error("early $s1 write has forward bit")
	}
	if !second.Fwd {
		t.Error("final $s1 write missing forward bit")
	}
}

func TestValidatesAfterPartition(t *testing.T) {
	p := assembleRaw(t, simpleLoop)
	if _, err := Run(p, Options{}); err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("partitioned program invalid: %v", err)
	}
}

// TestSplitsOversizedTask: a switch-like region with five distinct exits
// exceeds the 4-target descriptor limit; the partitioner must split it
// rather than fail.
func TestSplitsOversizedTask(t *testing.T) {
	p := assembleRaw(t, `
main:
	li $s0, 3
loop:
	addi $s0, $s0, -1
	beqz $s0, c0
	addi $t0, $s0, -1
	beqz $t0, c1
	addi $t0, $s0, -2
	beqz $t0, c2
	addi $t0, $s0, -3
	beqz $t0, c3
	j c4
c0:
	addi $s1, $s1, 1
	j join
c1:
	addi $s1, $s1, 2
	j join
c2:
	addi $s1, $s1, 3
	j join
c3:
	addi $s1, $s1, 4
	j join
c4:
	addi $s1, $s1, 5
join:
	bnez $s0, loop
	move $a0, $s1
	li $v0, 10
	syscall
`)
	part, err := Run(p, Options{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, ti := range part.Tasks {
		if len(ti.Desc.Targets) > isa.MaxTaskTargets {
			t.Errorf("task %s still has %d targets", ti.Desc.Name, len(ti.Desc.Targets))
		}
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}
