package workloads

import "strings"

// tomcatv is the SPECfp92 mesh-generation kernel reduced to its essence
// (paper §5.3: "nearly all time is spent in a loop whose iterations are
// independent", with the higher-issue configurations "stymied by
// contention on the cache to memory bus"). Two row-task loops: one
// initializes a grid of doubles, one applies a 5-point stencil and folds
// a per-row partial sum into a running checksum. Rows are independent;
// the arrays exceed the data banks, so the memory bus is the limiter.
func init() {
	register(&Workload{
		Name:         "tomcatv",
		Description:  "FP 5-point stencil over row tasks (tomcatv kernel)",
		DefaultScale: 48, // grid dimension
		TestScale:    14,
		Source:       tomcatvSource,
		Paper: PaperRow{
			ScalarM: 582.22, MultiM: 590.66, PctIncrease: 1.4,
			InOrder1: PaperPerf{ScalarIPC: 0.80, Speedup4: 3.00, Speedup8: 4.65, Pred4: 99.2, Pred8: 99.2},
			InOrder2: PaperPerf{ScalarIPC: 0.97, Speedup4: 2.71, Speedup8: 3.96, Pred4: 99.2, Pred8: 99.2},
			OOO1:     PaperPerf{ScalarIPC: 0.96, Speedup4: 2.92, Speedup8: 4.17, Pred4: 99.2, Pred8: 99.2},
			OOO2:     PaperPerf{ScalarIPC: 1.43, Speedup4: 2.16, Speedup8: 2.93, Pred4: 99.2, Pred8: 99.2},
		},
	})
}

func tomcatvSource(scale int) string {
	n := scale // n x n grid of doubles
	rowBytes := n * 8
	var b strings.Builder
	b.WriteString("\t.data\n")
	b.WriteString("grida:\t.space " + itoa(n*rowBytes) + "\n")
	b.WriteString("gridpad:\t.space 192\n") // odd block offset: avoid same-set conflicts between the grids
	b.WriteString("gridb:\t.space " + itoa(n*rowBytes) + "\n")
	b.WriteString("quarter:\t.double 0.25\n")
	b.WriteString("scalef:\t.double 0.0078125\n") // 1/128 keeps values bounded
	b.WriteString(`
	.text
main:
	li   $s0, 0 !f           ; row index
`)
	b.WriteString("\tli   $s5, " + itoa(n) + " !f\n")
	b.WriteString("\tli   $s6, " + itoa(rowBytes) + " !f\n")
	b.WriteString(`	l.d  $f30, scalef !f
	mtc1 $f20, $zero !f      ; checksum
	j    IROW !s

	; ---- init: grida[i][j] = (i*j mod 97) * scale, one row per task ----
IROW:
	move $t9, $s0
	.msonly addi $s0, $s0, 1 !f
	.msonly slt  $at, $s0, $s5   ; early loop-exit test (paper §3.1.2)
	mul  $t0, $t9, $s6       ; row base offset
	li   $t1, 0              ; column
ICOL:
	mul  $t2, $t9, $t1
	li   $t3, 97
	rem  $t2, $t2, $t3
	mtc1 $f0, $t2
	mul.d $f0, $f0, $f30
	sll  $t4, $t1, 3
	add  $t4, $t4, $t0
	s.d  $f0, grida($t4)
	addi $t1, $t1, 1
	bne  $t1, $s5, ICOL
	.msonly bnez $at, IROW !s
	.sconly addi $s0, $s0, 1
	.sconly bne  $s0, $s5, IROW

ISETUP:
	li   $s0, 1 !f           ; stencil rows 1..n-2
	j    SROW !s

	; ---- stencil: gridb = 0.25*(N+S+E+W), partial sum per row ----
SROW:
	move $t9, $s0
	.msonly addi $s0, $s0, 1 !f
	.msonly addi $t8, $s5, -1
	.msonly slt  $at, $s0, $t8   ; early loop-exit test
	l.d  $f10, quarter
	mtc1 $f12, $zero         ; row partial sum
	mul  $t0, $t9, $s6       ; row base
	sub  $t5, $t0, $s6       ; row above
	add  $t6, $t0, $s6       ; row below
	li   $t1, 1              ; columns 1..n-2
SCOL:
	sll  $t4, $t1, 3
	add  $t2, $t4, $t5
	l.d  $f0, grida($t2)     ; north
	add  $t2, $t4, $t6
	l.d  $f2, grida($t2)     ; south
	add  $t2, $t4, $t0
	l.d  $f4, grida-8($t2)   ; west
	l.d  $f6, grida+8($t2)   ; east
	add.d $f0, $f0, $f2
	add.d $f4, $f4, $f6
	add.d $f0, $f0, $f4
	mul.d $f0, $f0, $f10
	add  $t2, $t4, $t0
	s.d  $f0, gridb($t2)
	add.d $f12, $f12, $f0
	addi $t1, $t1, 1
	addi $t7, $s5, -1
	bne  $t1, $t7, SCOL
	add.d $f20, $f20, $f12 !f
	.msonly bnez $at, SROW !s
	.sconly addi $s0, $s0, 1
	.sconly addi $t7, $s5, -1
	.sconly bne  $s0, $t7, SROW

SDONE:
	; print truncated checksum
	mfc1 $a0, $f20
` + printInt + exitSeq + `
	.task main targets=IROW create=$s0,$s5,$s6,$f20,$f30
	.task IROW targets=IROW,ISETUP create=$s0
	.task ISETUP targets=SROW create=$s0
	.task SROW targets=SROW,SDONE create=$s0,$f20
	.task SDONE
`)
	return b.String()
}
