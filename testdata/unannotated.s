; No multiscalar annotations: use mstasks to partition automatically.
;   mstasks testdata/unannotated.s
	.data
vec:	.space 400
	.text
main:
	li $t0, 0
init:
	sll $t1, $t0, 2
	sw  $t0, vec($t1)
	addi $t0, $t0, 1
	slt $at, $t0, 100
	bnez $at, init
	li $t0, 0
	li $s1, 0
sum:
	sll $t1, $t0, 2
	lw  $t2, vec($t1)
	mul $t2, $t2, $t2
	add $s1, $s1, $t2
	addi $t0, $t0, 1
	slt $at, $t0, 100
	bnez $at, sum
	move $a0, $s1
	li $v0, 1
	syscall
	li $v0, 10
	li $a0, 0
	syscall
