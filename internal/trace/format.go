package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"sort"
)

// The .mstrc container: a fixed magic, a metadata header, then a stream
// of delta-encoded event records and a one-byte terminator.
//
//	magic    "mstrc" 0x01
//	header   uvarint numUnits
//	         uvarint len(label), label bytes
//	         uvarint taskCount, then per task (ascending entry):
//	             uvarint entry, uvarint len(name), name bytes
//	events   per event:
//	             byte    kind (non-zero)
//	             zigzag  cycle delta from the previous record
//	             uvarint unit+1   (0 = none)
//	             uvarint task+1   (0 = none)
//	             uvarint arg
//	             uvarint arg2
//	trailer  byte 0
//
// All integers are unsigned varints except the cycle delta, which is
// zigzag-encoded because emission order can momentarily run ahead of the
// clock (paced ring sends). Typical records are 6-8 bytes.

var magic = [6]byte{'m', 's', 't', 'r', 'c', 0x01}

// Writer streams events into an .mstrc container. It implements Sink.
// Errors are sticky and surfaced by Close (and Err), so the simulator's
// emit path stays unconditional and allocation-free.
type Writer struct {
	bw      *bufio.Writer
	last    uint64
	err     error
	closed  bool
	scratch [3 * binary.MaxVarintLen64]byte
}

// NewWriter writes the header for meta and returns a streaming Writer.
// Callers must Close it to flush the trailer.
func NewWriter(w io.Writer, meta Meta) (*Writer, error) {
	t := &Writer{bw: bufio.NewWriterSize(w, 1<<16)}
	if _, err := t.bw.Write(magic[:]); err != nil {
		return nil, err
	}
	t.putUvarint(uint64(meta.NumUnits))
	t.putString(meta.Label)
	entries := make([]uint32, 0, len(meta.Tasks))
	for e := range meta.Tasks {
		entries = append(entries, e)
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i] < entries[j] })
	t.putUvarint(uint64(len(entries)))
	for _, e := range entries {
		t.putUvarint(uint64(e))
		t.putString(meta.Tasks[e])
	}
	if t.err != nil {
		return nil, t.err
	}
	return t, nil
}

func (t *Writer) putUvarint(v uint64) {
	if t.err != nil {
		return
	}
	n := binary.PutUvarint(t.scratch[:], v)
	_, t.err = t.bw.Write(t.scratch[:n])
}

func (t *Writer) putString(s string) {
	t.putUvarint(uint64(len(s)))
	if t.err == nil {
		_, t.err = t.bw.WriteString(s)
	}
}

// Emit encodes one event. It is safe to call after an error (the event
// is dropped and the first error kept).
func (t *Writer) Emit(e Event) {
	if t.err != nil || t.closed {
		return
	}
	b := t.scratch[:]
	b[0] = byte(e.Kind)
	n := 1
	d := int64(e.Cycle - t.last) // wraparound-correct signed delta
	t.last = e.Cycle
	n += binary.PutUvarint(b[n:], uint64(d<<1)^uint64(d>>63))
	n += binary.PutUvarint(b[n:], uint64(int64(e.Unit)+1))
	n += binary.PutUvarint(b[n:], uint64(int64(e.Task)+1))
	n += binary.PutUvarint(b[n:], uint64(e.Arg))
	n += binary.PutUvarint(b[n:], e.Arg2)
	_, t.err = t.bw.Write(b[:n])
}

// Err returns the first write error.
func (t *Writer) Err() error { return t.err }

// Close writes the trailer and flushes. The Writer is unusable after.
func (t *Writer) Close() error {
	if t.closed {
		return t.err
	}
	t.closed = true
	if t.err == nil {
		t.err = t.bw.WriteByte(0)
	}
	if ferr := t.bw.Flush(); t.err == nil {
		t.err = ferr
	}
	return t.err
}

// Trace is a fully decoded .mstrc container.
type Trace struct {
	Meta   Meta
	Events []Event
}

// ReadAll decodes an .mstrc stream produced by Writer.
func ReadAll(r io.Reader) (*Trace, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var m [6]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if m != magic {
		return nil, fmt.Errorf("trace: not an .mstrc stream (magic % x)", m)
	}
	tr := &Trace{}
	numUnits, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: header: %w", err)
	}
	tr.Meta.NumUnits = int(numUnits)
	if tr.Meta.Label, err = readString(br); err != nil {
		return nil, fmt.Errorf("trace: label: %w", err)
	}
	nTasks, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: task table: %w", err)
	}
	if nTasks > 0 {
		tr.Meta.Tasks = make(map[uint32]string, nTasks)
	}
	for i := uint64(0); i < nTasks; i++ {
		entry, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: task table: %w", err)
		}
		name, err := readString(br)
		if err != nil {
			return nil, fmt.Errorf("trace: task table: %w", err)
		}
		tr.Meta.Tasks[uint32(entry)] = name
	}

	var last uint64
	for {
		kind, err := br.ReadByte()
		if err == io.EOF || (err == nil && kind == 0) {
			return tr, nil // clean trailer (or truncated-at-boundary stream)
		}
		if err != nil {
			return nil, fmt.Errorf("trace: event %d: %w", len(tr.Events), err)
		}
		var f [5]uint64
		for i := range f {
			if f[i], err = binary.ReadUvarint(br); err != nil {
				return nil, fmt.Errorf("trace: event %d: %w", len(tr.Events), err)
			}
		}
		d := int64(f[0]>>1) ^ -int64(f[0]&1)
		last += uint64(d)
		tr.Events = append(tr.Events, Event{
			Cycle: last,
			Kind:  Kind(kind),
			Unit:  int8(int64(f[1]) - 1),
			Task:  int32(int64(f[2]) - 1),
			Arg:   uint32(f[3]),
			Arg2:  f[4],
		})
	}
}

func readString(br *bufio.Reader) (string, error) {
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return "", err
	}
	if n > 1<<20 {
		return "", fmt.Errorf("string length %d too large", n)
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(br, b); err != nil {
		return "", err
	}
	return string(b), nil
}
