package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"multiscalar/internal/asm"
	"multiscalar/internal/core"
	"multiscalar/internal/job"
)

// testEngine builds a Local whose executor is fn instead of a real
// simulation.
func testEngine(o Options, fn func(*job.Spec) (*job.Output, error)) *Local {
	l := NewLocal(o)
	l.runJob = fn
	return l
}

func simSpec(units int) *job.Spec {
	return &job.Spec{
		Op:       job.OpSimulate,
		Workload: "example",
		Scale:    -1,
		Mode:     asm.ModeMultiscalar,
		Config:   core.DefaultConfig(units, 1, false),
	}
}

// TestConcurrentDuplicatesSingleFlight pins the cache's admission
// contract under the race detector: N concurrent submissions of one spec
// run exactly one execution, and every submission gets a byte-identical
// result.
func TestConcurrentDuplicatesSingleFlight(t *testing.T) {
	var executions atomic.Int64
	eng := testEngine(Options{CacheEntries: 8}, func(s *job.Spec) (*job.Output, error) {
		executions.Add(1)
		time.Sleep(10 * time.Millisecond) // widen the admission window
		return &job.Output{Result: &core.Result{Cycles: 12345, Committed: 678, Out: "hello"}}, nil
	})

	const n = 32
	payloads := make([][]byte, n)
	cachedCount := atomic.Int64{}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := eng.Submit(context.Background(), fmt.Sprintf("client-%d", i%4), simSpec(8))
			if err != nil {
				t.Error(err)
				return
			}
			if res.Cached {
				cachedCount.Add(1)
			}
			// Compare the payload without the per-retrieval flag.
			data, err := json.Marshal(res.withCached(false))
			if err != nil {
				t.Error(err)
				return
			}
			payloads[i] = data
		}(i)
	}
	wg.Wait()
	if got := executions.Load(); got != 1 {
		t.Fatalf("%d executions for %d duplicate submissions, want exactly 1", got, n)
	}
	if got := cachedCount.Load(); got != n-1 {
		t.Fatalf("%d submissions reported cached, want %d", cachedCount.Load(), n-1)
	}
	for i := 1; i < n; i++ {
		if string(payloads[i]) != string(payloads[0]) {
			t.Fatalf("submission %d payload differs:\n%s\nvs\n%s", i, payloads[i], payloads[0])
		}
	}
	m := eng.Metrics()
	if m.Jobs != n || m.Executed != 1 || m.CacheHits != n-1 {
		t.Fatalf("metrics jobs=%d executed=%d hits=%d, want %d/1/%d", m.Jobs, m.Executed, m.CacheHits, n, n-1)
	}
}

// TestEvictionRespectsInFlight fills a capacity-1 cache past its bound
// while one entry is still executing: the in-flight entry must survive
// eviction and still answer its waiters, while finished entries are the
// ones evicted.
func TestEvictionRespectsInFlight(t *testing.T) {
	slowGate := make(chan struct{})
	started := make(chan struct{})
	var once sync.Once
	eng := testEngine(Options{CacheEntries: 1, Workers: 8, PerClientInFlight: 8},
		func(s *job.Spec) (*job.Output, error) {
			if s.Config.NumUnits == 1 { // the slow job
				once.Do(func() { close(started) })
				<-slowGate
			}
			return &job.Output{Result: &core.Result{Cycles: uint64(s.Config.NumUnits)}}, nil
		})

	errc := make(chan error, 1)
	go func() {
		res, err := eng.Submit(context.Background(), "slow", simSpec(1))
		if err == nil && res.Sim.Cycles != 1 {
			err = fmt.Errorf("slow job got cycles=%d", res.Sim.Cycles)
		}
		errc <- err
	}()
	<-started

	// Churn the LRU well past capacity while the slow flight is open.
	for units := 2; units <= 6; units++ {
		if _, err := eng.Submit(context.Background(), "churn", simSpec(units)); err != nil {
			t.Fatal(err)
		}
	}
	m := eng.Metrics()
	if m.Evictions == 0 {
		t.Fatalf("expected evictions while churning a capacity-1 cache, metrics=%+v", m)
	}

	// A duplicate of the in-flight job must coalesce, not re-execute.
	dup := make(chan error, 1)
	go func() {
		res, err := eng.Submit(context.Background(), "dup", simSpec(1))
		if err == nil && !res.Cached {
			err = fmt.Errorf("duplicate of in-flight job re-executed")
		}
		dup <- err
	}()
	time.Sleep(5 * time.Millisecond)
	close(slowGate)
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	if err := <-dup; err != nil {
		t.Fatal(err)
	}
	if got := eng.Metrics().Executed; got != 6 {
		t.Fatalf("executed=%d, want 6 (5 churn + 1 slow, duplicate coalesced)", got)
	}
}

// TestErrorsAreNotCached pins that a failed execution is retried by the
// next submission instead of being served from cache.
func TestErrorsAreNotCached(t *testing.T) {
	var calls atomic.Int64
	eng := testEngine(Options{CacheEntries: 4}, func(s *job.Spec) (*job.Output, error) {
		if calls.Add(1) == 1 {
			return nil, fmt.Errorf("transient failure")
		}
		return &job.Output{Result: &core.Result{Cycles: 7}}, nil
	})
	if _, err := eng.Submit(context.Background(), "c", simSpec(8)); err == nil {
		t.Fatal("first submission should fail")
	}
	res, err := eng.Submit(context.Background(), "c", simSpec(8))
	if err != nil {
		t.Fatal(err)
	}
	if res.Cached || res.Sim.Cycles != 7 {
		t.Fatalf("retry not executed fresh: %+v", res)
	}
}

// TestDiskSpillSurvivesEvictionAndRestart pins the content-addressed
// spill: an evicted key — and a fresh engine over the same directory —
// answers from disk, byte-identically, without re-executing.
func TestDiskSpillSurvivesEvictionAndRestart(t *testing.T) {
	dir := t.TempDir()
	var executions atomic.Int64
	exec := func(s *job.Spec) (*job.Output, error) {
		executions.Add(1)
		return &job.Output{
			Result:   &core.Result{Cycles: uint64(s.Config.NumUnits), Out: "spillme"},
			Snapshot: []byte{0xde, 0xad, byte(s.Config.NumUnits)},
		}, nil
	}
	eng := testEngine(Options{CacheEntries: 1, SpillDir: dir}, exec)

	first, err := eng.Submit(context.Background(), "c", simSpec(4))
	if err != nil {
		t.Fatal(err)
	}
	// Evict key(units=4) by filling the capacity-1 LRU.
	if _, err := eng.Submit(context.Background(), "c", simSpec(8)); err != nil {
		t.Fatal(err)
	}
	res, err := eng.Submit(context.Background(), "c", simSpec(4))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Cached {
		t.Fatal("evicted key should be answered from the spill")
	}
	a, _ := json.Marshal(first.withCached(false))
	b, _ := json.Marshal(res.withCached(false))
	if string(a) != string(b) {
		t.Fatalf("spill round trip not byte-identical:\n%s\nvs\n%s", a, b)
	}

	// A fresh engine over the same directory: a daemon restart.
	eng2 := testEngine(Options{CacheEntries: 8, SpillDir: dir}, exec)
	res2, err := eng2.Submit(context.Background(), "c", simSpec(4))
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Cached || eng2.Metrics().DiskHits != 1 {
		t.Fatalf("restarted engine should answer from disk: cached=%v metrics=%+v", res2.Cached, eng2.Metrics())
	}
	if got := executions.Load(); got != 2 {
		t.Fatalf("executions=%d, want 2 (units=4 once, units=8 once)", got)
	}
}

// TestRealJobRoundTrip runs the engine over the real executor on a tiny
// workload: a resubmission must be a cache hit with an identical result,
// and the simulate result must carry real cycles.
func TestRealJobRoundTrip(t *testing.T) {
	eng := NewLocal(Options{CacheEntries: 16})
	spec := simSpec(2)
	spec.Verify = true
	first, err := eng.Submit(context.Background(), "t", spec)
	if err != nil {
		t.Fatal(err)
	}
	if first.Cached || first.Sim == nil || first.Sim.Cycles == 0 {
		t.Fatalf("first submission: %+v", first)
	}
	again, err := eng.Submit(context.Background(), "t", spec)
	if err != nil {
		t.Fatal(err)
	}
	if !again.Cached || again.Sim.Cycles != first.Sim.Cycles {
		t.Fatalf("resubmission not served from cache: %+v vs %+v", again, first)
	}

	// An assemble job returns the program container.
	asmSpec := &job.Spec{Op: job.OpAssemble, Workload: "example", Scale: -1, Mode: asm.ModeMultiscalar}
	prog, err := eng.Submit(context.Background(), "t", asmSpec)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Program) == 0 {
		t.Fatal("assemble job returned no program bytes")
	}

	// A trace-artifact job returns .mstrc bytes.
	trSpec := simSpec(2)
	trSpec.WantTrace = true
	tr, err := eng.Submit(context.Background(), "t", trSpec)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Trace) == 0 {
		t.Fatal("trace job returned no .mstrc bytes")
	}
	if tr.Sim.Cycles != first.Sim.Cycles {
		t.Fatalf("traced run cycles %d != untraced %d", tr.Sim.Cycles, first.Sim.Cycles)
	}
}
