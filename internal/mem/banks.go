package mem

// BankedDCache is the interleaved data-cache arrangement of Figure 1: a
// crossbar connects the processing units to twice as many data banks as
// there are units. Each bank is an 8 KB direct-mapped cache in 64-byte
// blocks and can start one request per cycle; requests to a busy bank
// queue (modeled by the bank's next-free cycle), which is the crossbar /
// bank-conflict contention the paper's tomcatv discussion blames for
// limiting the higher-issue configurations.
type BankedDCache struct {
	Banks []*Cache

	blockBytes uint32
	nextFree   []uint64

	// Stats
	Conflicts uint64
	Accesses  uint64
}

// NewBankedDCache builds numBanks banks with the given per-bank geometry.
func NewBankedDCache(numBanks, bankBytes, blockBytes, hitLatency, numMSHRs int, bus *Bus) *BankedDCache {
	d := &BankedDCache{
		blockBytes: uint32(blockBytes),
		nextFree:   make([]uint64, numBanks),
	}
	for i := 0; i < numBanks; i++ {
		c := NewCache("dbank", bankBytes, blockBytes, hitLatency, numMSHRs, bus)
		c.SetStride(numBanks)
		d.Banks = append(d.Banks, c)
	}
	return d
}

// BankOf returns the bank index serving addr (interleaved by block).
func (d *BankedDCache) BankOf(addr uint32) int {
	return int(addr/d.blockBytes) % len(d.Banks)
}

// Access performs a load or store at cycle now, including crossbar/bank
// arbitration, and returns the completion cycle.
func (d *BankedDCache) Access(now uint64, addr uint32, write bool) (done uint64) {
	bank := d.BankOf(addr)
	start := now
	if d.nextFree[bank] > start {
		start = d.nextFree[bank]
		d.Conflicts++
	}
	d.nextFree[bank] = start + 1 // one new request per bank per cycle
	d.Accesses++
	return d.Banks[bank].Access(start, addr, write)
}

// Touch installs addr's tag in the owning bank without modeling timing
// (see Cache.Touch).
func (d *BankedDCache) Touch(addr uint32) {
	d.Banks[d.BankOf(addr)].Touch(addr)
}

// Reset clears bank occupancy and per-bank cache state.
func (d *BankedDCache) Reset() {
	for i := range d.nextFree {
		d.nextFree[i] = 0
	}
	for _, b := range d.Banks {
		b.Reset()
	}
	d.Conflicts, d.Accesses = 0, 0
}

// Hits and Misses aggregate across banks.
func (d *BankedDCache) Hits() uint64 {
	var n uint64
	for _, b := range d.Banks {
		n += b.Hits
	}
	return n
}

// Misses aggregates across banks.
func (d *BankedDCache) Misses() uint64 {
	var n uint64
	for _, b := range d.Banks {
		n += b.Misses
	}
	return n
}
