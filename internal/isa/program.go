package isa

import (
	"fmt"
	"sort"
)

// Memory layout constants shared by the assembler, loader and simulators.
const (
	TextBase  uint32 = 0x0000_1000 // program text
	DataBase  uint32 = 0x1000_0000 // static data
	HeapBase  uint32 = 0x2000_0000 // sbrk arena
	StackTop  uint32 = 0x7fff_fff0 // initial $sp (grows down)
	InstrSize uint32 = 4           // architectural instruction size in bytes
)

// TargetReturn is the sentinel successor-task address meaning "the task
// exits through a return; the next task's address comes from the return
// address (predicted by the return address stack)".
const TargetReturn uint32 = 0xffff_ffff

// MaxTaskTargets is the number of successor tasks a task descriptor can
// name (Section 5.1: the control flow predictor uses 4 targets per
// prediction).
const MaxTaskTargets = 4

// TaskDescriptor is the static description of one task (Section 2.2): its
// entry point, the registers it may create, and its possible successor
// tasks. Descriptors are held beside the program text and cached by the
// sequencer.
type TaskDescriptor struct {
	Name    string
	Entry   uint32   // address of the first instruction
	Create  RegMask  // registers the task may produce (conservative)
	Targets []uint32 // possible successor task entry addresses (≤ MaxTaskTargets); may include TargetReturn

	// PushRA, when non-zero, is the return address this task's call pushes:
	// the task ends with a jal and control continues at PushRA after the
	// callee returns. The sequencer pushes it on the return address stack
	// when it predicts CallTarget as this task's successor, and pops the
	// stack to resolve a successor of TargetReturn.
	PushRA uint32
	// CallTarget is the callee entry whose prediction triggers the PushRA
	// push. Zero when PushRA is zero.
	CallTarget uint32
}

// HasTarget reports whether addr is one of the descriptor's successor
// targets.
func (t *TaskDescriptor) HasTarget(addr uint32) bool {
	for _, a := range t.Targets {
		if a == addr {
			return true
		}
	}
	return false
}

// TargetIndex returns the position of addr in the target list, or -1.
func (t *TaskDescriptor) TargetIndex(addr uint32) int {
	for i, a := range t.Targets {
		if a == addr {
			return i
		}
	}
	return -1
}

func (t *TaskDescriptor) String() string {
	return fmt.Sprintf("task %s @0x%x create=%s targets=%v", t.Name, t.Entry, t.Create, t.Targets)
}

// Program is a loaded multiscalar binary: text, initialized data, the task
// descriptors, and the symbol table. The same Program image is accepted by
// the functional interpreter, the scalar timing simulator, and the
// multiscalar timing simulator.
type Program struct {
	Entry   uint32
	Text    []Instr // instruction i lives at TextBase + 4*i
	Data    []byte  // bytes at DataBase
	Tasks   map[uint32]*TaskDescriptor
	Symbols map[string]uint32
}

// InstrAt returns the instruction at byte address addr, or nil if addr is
// outside the text segment or unaligned.
func (p *Program) InstrAt(addr uint32) *Instr {
	if addr < TextBase || addr&3 != 0 {
		return nil
	}
	idx := (addr - TextBase) / InstrSize
	if int(idx) >= len(p.Text) {
		return nil
	}
	return &p.Text[idx]
}

// TextEnd returns the first byte address past the text segment.
func (p *Program) TextEnd() uint32 { return TextBase + uint32(len(p.Text))*InstrSize }

// TaskAt returns the task descriptor whose entry is addr, or nil.
func (p *Program) TaskAt(addr uint32) *TaskDescriptor {
	return p.Tasks[addr]
}

// TaskList returns the task descriptors ordered by entry address.
func (p *Program) TaskList() []*TaskDescriptor {
	out := make([]*TaskDescriptor, 0, len(p.Tasks))
	for _, t := range p.Tasks {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Entry < out[j].Entry })
	return out
}

// Symbol returns the address bound to a label.
func (p *Program) Symbol(name string) (uint32, bool) {
	a, ok := p.Symbols[name]
	return a, ok
}

// Validate performs structural sanity checks on the program: entry within
// text, task entries and targets within text, target counts within bounds.
func (p *Program) Validate() error {
	inText := func(a uint32) bool {
		return a >= TextBase && a < p.TextEnd() && a&3 == 0
	}
	if len(p.Text) == 0 {
		return fmt.Errorf("isa: empty text segment")
	}
	if !inText(p.Entry) {
		return fmt.Errorf("isa: entry 0x%x outside text", p.Entry)
	}
	for addr, t := range p.Tasks {
		if addr != t.Entry {
			return fmt.Errorf("isa: task %s keyed at 0x%x but entry 0x%x", t.Name, addr, t.Entry)
		}
		if !inText(t.Entry) {
			return fmt.Errorf("isa: task %s entry 0x%x outside text", t.Name, t.Entry)
		}
		// Zero targets is legal: a terminal task exits the program.
		if len(t.Targets) > MaxTaskTargets {
			return fmt.Errorf("isa: task %s has %d targets (max %d)", t.Name, len(t.Targets), MaxTaskTargets)
		}
		for _, tgt := range t.Targets {
			if tgt != TargetReturn && !inText(tgt) {
				return fmt.Errorf("isa: task %s target 0x%x outside text", t.Name, tgt)
			}
		}
		if t.PushRA != 0 && !inText(t.PushRA) {
			return fmt.Errorf("isa: task %s return address 0x%x outside text", t.Name, t.PushRA)
		}
	}
	for i := range p.Text {
		in := &p.Text[i]
		if !in.Op.Valid() {
			return fmt.Errorf("isa: invalid opcode at 0x%x", TextBase+uint32(i)*InstrSize)
		}
		if in.Op.IsControl() && in.Op != OpJr && in.Op != OpJalr {
			if !inText(in.Target) {
				return fmt.Errorf("isa: %s at 0x%x targets 0x%x outside text",
					in.Op, TextBase+uint32(i)*InstrSize, in.Target)
			}
		}
	}
	return nil
}
