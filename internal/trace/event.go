// Package trace is the simulator's event-monitoring layer: a typed,
// cycle-stamped event stream emitted by the timing cores (task lifecycle,
// per-unit pipeline occupancy, register-ring traffic, ARB and memory
// system activity) behind a Sink interface that costs nothing when no
// sink is attached.
//
// Producers guard every emission with a nil check, so the disabled path
// adds no allocations and no calls to the simulator's hot loops; the
// repository's benchmark baseline (BENCH_*.json) holds the producers to
// that contract. Enabled, events flow to an in-memory Collector or to a
// streaming Writer that persists the compact binary .mstrc format
// rendered by cmd/mstrace (see docs/tracing.md).
package trace

import "fmt"

// Kind identifies what an Event records. The zero value is reserved as
// the stream terminator in the binary format.
type Kind uint8

const (
	// KRunEnd closes a trace: Arg2 is the run's total cycle count.
	KRunEnd Kind = iota + 1

	// Task lifecycle (multiscalar runs). Task numbers are assignment
	// sequence numbers, starting at 0 for the task at the program entry.

	// KTaskPredict: the sequencer chose a successor for task Task (on
	// Unit); Arg is the predicted entry address.
	KTaskPredict
	// KTaskAssign: a new task Task started on Unit; Arg is its entry.
	KTaskAssign
	// KTaskRestart: task Task re-started on Unit after a memory-order or
	// ARB-overflow squash; Arg is its entry.
	KTaskRestart
	// KTaskFirstIssue: the first instruction of this activation issued.
	KTaskFirstIssue
	// KTaskComplete: the task's stop condition retired locally; Arg is
	// the exit PC. The task now waits to reach the head and retire.
	KTaskComplete
	// KTaskRetire: the task retired at the head; Arg is the exit PC,
	// Arg2 the instructions it committed.
	KTaskRetire
	// KTaskSquash: the activation was squashed; Arg is the Cause*
	// code. Arg2 packs the unit's distance from the head when squashed
	// (the restart distance: how much of the window the squash
	// discarded) and, for memory and ARB causes, the conflicting
	// address and its ARB bank — build with SquashArg2, read with
	// SquashDist and SquashConflict.
	KTaskSquash
	// KTaskActivity: end-of-activation cycle accounting, one event per
	// non-zero activity class. Arg is the class (the pu.Activity value)
	// with bit 8 set when the activation was squashed (the cycles count
	// as squashed work, not useful Activity); Arg2 is the cycle count.
	KTaskActivity

	// Sequencer prediction.

	// KPredValidate: task Task's successor prediction was checked
	// against its actual exit; Arg is the actual entry, Arg2 is 1 for a
	// hit and 0 for a miss.
	KPredValidate
	// KPredIndex: the task predictor produced a target index for the
	// task at entry Arg; Arg2 is the index.
	KPredIndex
	// KPredTrain: the predictor trained on a validated outcome for the
	// task at entry Arg; Arg2 is the actual target index.
	KPredTrain

	// Per-unit pipeline occupancy.

	// KUnitActivity: Unit's cycle classification changed to Arg (a
	// pu.Activity value); Arg2 is the instruction-window occupancy. The
	// classification holds until the unit's next KUnitActivity event.
	KUnitActivity

	// Register forwarding ring.

	// KRingSend: Unit sent register Arg on the ring (a forward-bit,
	// release, or end-of-task flush send) for task Task.
	KRingSend

	// Address Resolution Buffer.

	// KARBAlloc: a new ARB entry was allocated for the chunk at Arg.
	KARBAlloc
	// KARBOverflow: an ARB bank had no free entry for Arg.
	KARBOverflow
	// KARBViolation: a store to Arg exposed a memory-order violation;
	// Unit is the violating (to-be-squashed) load's unit.
	KARBViolation

	// Memory system.

	// KICacheMiss: Unit's instruction cache missed at Arg.
	KICacheMiss
	// KDCacheMiss: data bank Unit missed at Arg.
	KDCacheMiss
	// KDescMiss: the task-descriptor cache missed at Arg.
	KDescMiss
	// KBusRequest: the shared bus accepted a transfer; Arg2 is its
	// duration in cycles.
	KBusRequest

	numKinds
)

var kindNames = [numKinds]string{
	KRunEnd:         "run-end",
	KTaskPredict:    "task-predict",
	KTaskAssign:     "task-assign",
	KTaskRestart:    "task-restart",
	KTaskFirstIssue: "task-first-issue",
	KTaskComplete:   "task-complete",
	KTaskRetire:     "task-retire",
	KTaskSquash:     "task-squash",
	KTaskActivity:   "task-activity",
	KPredValidate:   "pred-validate",
	KPredIndex:      "pred-index",
	KPredTrain:      "pred-train",
	KUnitActivity:   "unit-activity",
	KRingSend:       "ring-send",
	KARBAlloc:       "arb-alloc",
	KARBOverflow:    "arb-overflow",
	KARBViolation:   "arb-violation",
	KICacheMiss:     "icache-miss",
	KDCacheMiss:     "dcache-miss",
	KDescMiss:       "desc-miss",
	KBusRequest:     "bus-request",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Squash causes (KTaskSquash.Arg).
const (
	CauseControl = 0 // successor misprediction (control squash)
	CauseMemory  = 1 // memory-order violation (task restarts)
	CauseARB     = 2 // ARB overflow under PolicySquash (task restarts)
	CauseDrain   = 3 // in flight past the program's exit at run end
)

var causeNames = [...]string{"control", "memory", "arb", "drain"}

// CauseName renders a KTaskSquash cause code.
func CauseName(c uint32) string {
	if int(c) < len(causeNames) {
		return causeNames[c]
	}
	return fmt.Sprintf("cause(%d)", c)
}

// ActivitySquashed is the KTaskActivity.Arg flag marking cycles that
// belong to a squashed activation.
const ActivitySquashed = 1 << 8

// KTaskSquash.Arg2 layout: bits 0-7 restart distance, bits 8-15 the
// conflicting address's ARB bank plus one (0 = no conflict detail:
// control and drain squashes encode to the bare distance, identical
// to the pre-detail format), bits 16-47 the conflicting address. The
// conflict detail names the access that triggered a memory-violation
// or ARB-overflow squash so litmus repro dumps can point at it.
const (
	squashDistBits = 8
	squashBankBits = 8
	squashDistMask = 1<<squashDistBits - 1
	squashBankMask = 1<<squashBankBits - 1
)

// SquashArg2 packs a KTaskSquash Arg2. bank < 0 means no conflict
// detail (control or drain squash).
func SquashArg2(dist uint64, addr uint32, bank int) uint64 {
	v := dist & squashDistMask
	if bank >= 0 {
		v |= uint64((bank+1)&squashBankMask) << squashDistBits
		v |= uint64(addr) << (squashDistBits + squashBankBits)
	}
	return v
}

// SquashDist extracts the restart distance from a KTaskSquash Arg2.
func SquashDist(arg2 uint64) uint64 { return arg2 & squashDistMask }

// SquashConflict extracts the conflicting address and ARB bank from a
// KTaskSquash Arg2; ok is false when the event carries no conflict
// detail (control and drain squashes).
func SquashConflict(arg2 uint64) (addr uint32, bank int, ok bool) {
	b := arg2 >> squashDistBits & squashBankMask
	if b == 0 {
		return 0, 0, false
	}
	return uint32(arg2 >> (squashDistBits + squashBankBits)), int(b - 1), true
}

// Event is one cycle-stamped occurrence. The meaning of Unit, Task, Arg
// and Arg2 depends on Kind (see the Kind constants); Unit is -1 and Task
// is -1 when not applicable.
type Event struct {
	Cycle uint64
	Kind  Kind
	Unit  int8
	Task  int32
	Arg   uint32
	Arg2  uint64
}

func (e Event) String() string {
	return fmt.Sprintf("%8d %-16s unit=%d task=%d arg=0x%x arg2=%d",
		e.Cycle, e.Kind, e.Unit, e.Task, e.Arg, e.Arg2)
}

// Sink receives events as the simulation produces them. Emit is called
// from the simulator's inner loops: implementations must not retain
// pointers into the caller and should be cheap. Events arrive in
// emission order, which is almost — but not exactly — cycle order (ring
// sends are stamped with their paced send slot, which can run ahead of
// the emitting cycle), so readers must not assume monotonic cycles.
type Sink interface {
	Emit(e Event)
}

// Collector is an in-memory Sink.
type Collector struct {
	Events []Event
}

// Emit appends the event.
func (c *Collector) Emit(e Event) { c.Events = append(c.Events, e) }

// Meta describes the run a trace was recorded from: the unit count
// (Perfetto tracks, timeline columns), an optional label, and the
// program's task descriptor names so renderers can name task spans
// without the binary.
type Meta struct {
	NumUnits int
	Label    string
	Tasks    map[uint32]string // task entry address -> descriptor name
}

// TaskName resolves a task entry address (empty string if unknown).
func (m *Meta) TaskName(entry uint32) string {
	if m.Tasks == nil {
		return ""
	}
	return m.Tasks[entry]
}
