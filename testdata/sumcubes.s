; Sum of cubes 1..N with one loop iteration per task.
; Assemble: msas testdata/sumcubes.s
; Run:      mssim -f testdata/sumcubes.s -units 8
	.text
main:
	li $s0, 100 !f
	li $s1, 0 !f
	j  loop !s
loop:
	move $t0, $s0
	addi $s0, $s0, -1 !f
	mul  $t1, $t0, $t0
	mul  $t1, $t1, $t0
	add  $s1, $s1, $t1 !f
	bnez $s0, loop !s
done:
	move $a0, $s1
	li $v0, 1
	syscall
	li $v0, 10
	li $a0, 0
	syscall
	.task main targets=loop create=$s0,$s1
	.task loop targets=loop,done create=$s0,$s1
	.task done
