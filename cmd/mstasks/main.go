// mstasks runs the automatic task partitioner over an un-annotated
// assembly file and reports the resulting control flow graph and task
// structure: blocks, loops, task entries, create masks (after dead
// register trimming), forward-bit placements and stop conditions.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"multiscalar/internal/asm"
	"multiscalar/internal/isa"
	"multiscalar/internal/taskpart"
)

func main() {
	var suppress = flag.String("suppress", "", "comma-separated functions to suppress into callers")
	var suppressAll = flag.Bool("suppress-all", false, "absorb every call into the calling task")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: mstasks [-suppress f,g] [-suppress-all] file.s")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	p, err := asm.Assemble(string(src), asm.ModeMultiscalar)
	if err != nil {
		fatal(err)
	}
	opt := taskpart.Options{SuppressAllCalls: *suppressAll}
	if *suppress != "" {
		opt.SuppressFuncs = strings.Split(*suppress, ",")
	}
	part, err := taskpart.Run(p, opt)
	if err != nil {
		fatal(err)
	}

	g := part.Graph
	fmt.Printf("%d blocks, %d loops, %d functions, %d tasks\n\n",
		len(g.Blocks), len(g.Loops), len(g.Funcs), len(part.Tasks))

	fmt.Println("blocks:")
	for _, b := range g.Blocks {
		var tags []string
		if b.Loop != nil {
			tags = append(tags, fmt.Sprintf("loop-depth %d", b.Loop.Depth))
		}
		if b.Returns {
			tags = append(tags, "returns")
		}
		if b.CallTarget != 0 {
			tags = append(tags, fmt.Sprintf("calls 0x%x", b.CallTarget))
		}
		fmt.Printf("  %-18s def=%v use=%v live-out=%v %s\n",
			b, b.Def, b.Use, b.LiveOut, strings.Join(tags, " "))
	}

	fmt.Println("\ntasks:")
	for _, t := range part.Tasks {
		fmt.Printf("  %s\n", t.Desc)
		for _, b := range t.Blocks {
			fmt.Printf("    %s\n", b)
		}
	}

	fmt.Println("\nannotated instructions:")
	for i := range p.Text {
		in := &p.Text[i]
		if !in.Fwd && in.Stop == isa.StopNone {
			continue
		}
		fmt.Printf("  0x%04x  %s\n", isa.TextBase+uint32(i)*isa.InstrSize, in)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mstasks:", err)
	os.Exit(1)
}
