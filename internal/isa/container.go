package isa

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
)

// Binary program container ("MSCB"): the on-disk form of a multiscalar
// binary — text in the wire encoding of encode.go, initialized data, task
// descriptors (the paper's "multiscalar information … located within or
// perhaps to the side of the program text", §2.2), and the symbol table.
// msas can emit it and mssim can run it, which is exactly the paper's
// software-migration story: regenerating the multiscalar information
// produces a new container around the same core instructions.

var containerMagic = [4]byte{'M', 'S', 'C', 'B'}

const containerVersion = 1

// WriteProgram serializes a program to w.
func WriteProgram(w io.Writer, p *Program) error {
	var b bytes.Buffer
	b.Write(containerMagic[:])
	writeU32(&b, containerVersion)
	writeU32(&b, p.Entry)

	text := EncodeText(p.Text)
	writeU32(&b, uint32(len(p.Text)))
	b.Write(text)

	writeU32(&b, uint32(len(p.Data)))
	b.Write(p.Data)

	tasks := p.TaskList()
	writeU32(&b, uint32(len(tasks)))
	for _, t := range tasks {
		writeU32(&b, t.Entry)
		var cr [8]byte
		binary.BigEndian.PutUint64(cr[:], uint64(t.Create))
		b.Write(cr[:])
		writeU32(&b, t.PushRA)
		writeU32(&b, t.CallTarget)
		writeStr(&b, t.Name)
		b.WriteByte(byte(len(t.Targets)))
		for _, tgt := range t.Targets {
			writeU32(&b, tgt)
		}
	}

	writeU32(&b, uint32(len(p.Symbols)))
	for name, addr := range p.Symbols {
		writeStr(&b, name)
		writeU32(&b, addr)
	}

	_, err := w.Write(b.Bytes())
	return err
}

// ReadProgram deserializes a program written by WriteProgram and
// validates it.
func ReadProgram(r io.Reader) (*Program, error) {
	buf, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	d := &decoder{buf: buf}
	var magic [4]byte
	d.bytes(magic[:])
	if magic != containerMagic {
		return nil, fmt.Errorf("isa: not a multiscalar binary (bad magic)")
	}
	if v := d.u32(); v != containerVersion {
		return nil, fmt.Errorf("isa: unsupported container version %d", v)
	}
	p := &Program{
		Tasks:   make(map[uint32]*TaskDescriptor),
		Symbols: make(map[string]uint32),
	}
	p.Entry = d.u32()

	nText := int(d.u32())
	if nText < 0 || nText > 1<<24 {
		return nil, fmt.Errorf("isa: implausible text size %d", nText)
	}
	textBytes := make([]byte, nText*EncodedSize)
	d.bytes(textBytes)
	if d.err != nil {
		return nil, d.err
	}
	p.Text, err = DecodeText(textBytes)
	if err != nil {
		return nil, err
	}

	nData := int(d.u32())
	if nData < 0 || nData > 1<<30 {
		return nil, fmt.Errorf("isa: implausible data size %d", nData)
	}
	p.Data = make([]byte, nData)
	d.bytes(p.Data)

	nTasks := int(d.u32())
	for i := 0; i < nTasks && d.err == nil; i++ {
		td := &TaskDescriptor{}
		td.Entry = d.u32()
		var cr [8]byte
		d.bytes(cr[:])
		td.Create = RegMask(binary.BigEndian.Uint64(cr[:]))
		td.PushRA = d.u32()
		td.CallTarget = d.u32()
		td.Name = d.str()
		nTgts := int(d.u8())
		for j := 0; j < nTgts; j++ {
			td.Targets = append(td.Targets, d.u32())
		}
		p.Tasks[td.Entry] = td
	}

	nSyms := int(d.u32())
	for i := 0; i < nSyms && d.err == nil; i++ {
		name := d.str()
		p.Symbols[name] = d.u32()
	}
	if d.err != nil {
		return nil, d.err
	}
	if len(d.buf) != d.off {
		return nil, fmt.Errorf("isa: %d trailing bytes in container", len(d.buf)-d.off)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

func writeU32(b *bytes.Buffer, v uint32) {
	var tmp [4]byte
	binary.BigEndian.PutUint32(tmp[:], v)
	b.Write(tmp[:])
}

func writeStr(b *bytes.Buffer, s string) {
	var tmp [2]byte
	binary.BigEndian.PutUint16(tmp[:], uint16(len(s)))
	b.Write(tmp[:])
	b.WriteString(s)
}

type decoder struct {
	buf []byte
	off int
	err error
}

func (d *decoder) bytes(out []byte) {
	if d.err != nil {
		return
	}
	if d.off+len(out) > len(d.buf) {
		d.err = fmt.Errorf("isa: truncated container")
		return
	}
	copy(out, d.buf[d.off:])
	d.off += len(out)
}

func (d *decoder) u32() uint32 {
	var tmp [4]byte
	d.bytes(tmp[:])
	return binary.BigEndian.Uint32(tmp[:])
}

func (d *decoder) u8() uint8 {
	var tmp [1]byte
	d.bytes(tmp[:])
	return tmp[0]
}

func (d *decoder) str() string {
	var tmp [2]byte
	d.bytes(tmp[:])
	n := int(binary.BigEndian.Uint16(tmp[:]))
	s := make([]byte, n)
	d.bytes(s)
	if d.err != nil {
		return ""
	}
	return string(s)
}
