// Package serve turns the simulator into servable surface: a
// transport-agnostic job engine that accepts assemble/simulate/trace
// jobs (internal/job specs), answers duplicates from a content-addressed
// result cache (in-memory LRU with single-flight admission and on-disk
// spill), bounds concurrent executions with per-client fair queueing,
// and exposes HTTP/JSON handlers plus metrics on top. cmd/msserve is the
// daemon; the root package's SubmitJob is the in-process facade. See
// docs/serve.md.
package serve

import (
	"context"
	"sync/atomic"

	"multiscalar/internal/bench"
	"multiscalar/internal/core"
	"multiscalar/internal/job"
	"multiscalar/internal/sample"
)

// Result is what a job submission returns. The same key always carries
// byte-identical payload fields; only Cached varies per retrieval (false
// exactly once, on the submission that executed the job).
type Result struct {
	Key    string `json:"key"`
	Cached bool   `json:"cached"`
	Op     string `json:"op"`

	Sim      *core.Result     `json:"sim,omitempty"`      // simulate jobs
	Sampled  *sample.Estimate `json:"sampled,omitempty"`  // sampled jobs
	Program  []byte           `json:"program,omitempty"`  // assemble jobs: .msb bytes
	Trace    []byte           `json:"trace,omitempty"`    // .mstrc artifact
	Snapshot []byte           `json:"snapshot,omitempty"` // finished-machine snapshot
}

// withCached returns a shallow copy with the per-retrieval flag set; the
// stored canonical result is never mutated.
func (r *Result) withCached(hit bool) *Result {
	cp := *r
	cp.Cached = hit
	return &cp
}

// Metrics is the engine's counter snapshot (the /v1/metrics payload).
type Metrics struct {
	Jobs      uint64 `json:"jobs"`       // submissions received
	Executed  uint64 `json:"executed"`   // jobs that actually ran a build/simulation
	CacheHits uint64 `json:"cache_hits"` // answered from memory or a single-flight wait
	DiskHits  uint64 `json:"disk_hits"`  // restored from the on-disk spill
	Errors    uint64 `json:"errors"`
	Evictions uint64 `json:"evictions"`
	Spilled   uint64 `json:"spilled"`

	QueueDepth   int `json:"queue_depth"`   // executions waiting for a slot
	InFlight     int `json:"in_flight"`     // executions running now
	CacheEntries int `json:"cache_entries"` // resident results
}

// Engine is the transport-agnostic job service: the HTTP layer, the CLI,
// and the in-process facade all speak to this interface.
type Engine interface {
	// Submit runs one job (or answers it from cache) on behalf of a
	// client and returns its result. Identical specs — equal job keys —
	// are answered from the content-addressed cache with byte-identical
	// payloads; Result.Cached reports whether this submission executed.
	Submit(ctx context.Context, client string, spec *job.Spec) (*Result, error)
	// Metrics snapshots the engine counters.
	Metrics() Metrics
}

// Options configures a Local engine. Zero values pick serving defaults.
type Options struct {
	// CacheEntries bounds the in-memory LRU (default 512 results).
	CacheEntries int
	// SpillDir, when set, persists every finished result to disk keyed
	// by job hash; evicted (or post-restart) keys are answered from it.
	SpillDir string
	// Workers bounds concurrently executing jobs (default: the bench
	// harness pool width, i.e. GOMAXPROCS).
	Workers int
	// PerClientInFlight bounds one client's concurrently executing jobs
	// (default 2), so a flood from one client cannot occupy every slot.
	PerClientInFlight int
}

// Local is the in-process Engine implementation.
type Local struct {
	cache *cache
	queue *fairQueue

	// runJob executes a cache-missed job; swapped in tests.
	runJob func(*job.Spec) (*job.Output, error)

	jobs, executed, hits, diskHits, errs atomic.Uint64
}

// NewLocal builds an engine over the real executor (job.Execute).
func NewLocal(o Options) *Local {
	if o.CacheEntries <= 0 {
		o.CacheEntries = 512
	}
	if o.Workers <= 0 {
		o.Workers = bench.Workers()
	}
	if o.PerClientInFlight <= 0 {
		o.PerClientInFlight = 2
	}
	return &Local{
		cache:  newCache(o.CacheEntries, o.SpillDir),
		queue:  newFairQueue(o.Workers, o.PerClientInFlight),
		runJob: func(s *job.Spec) (*job.Output, error) { return job.Execute(s, nil) },
	}
}

// Submit implements Engine.
func (l *Local) Submit(ctx context.Context, client string, spec *job.Spec) (*Result, error) {
	l.jobs.Add(1)
	key, err := spec.Key()
	if err != nil {
		l.errs.Add(1)
		return nil, err
	}

	e, executor := l.cache.acquire(key)
	defer l.cache.release(e)
	if !executor {
		// Hit or coalesced duplicate: wait for the flight (a no-op when
		// the entry is already done) and share its outcome.
		select {
		case <-e.ready:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		if e.err != nil {
			l.errs.Add(1)
			return nil, e.err
		}
		l.hits.Add(1)
		return e.res.withCached(true), nil
	}

	// Executor path: the spill answers before a slot is taken — restoring
	// a result from disk is a read, not a simulation.
	if res := l.cache.load(key); res != nil {
		l.diskHits.Add(1)
		l.cache.complete(e, res, nil)
		return res.withCached(true), nil
	}

	if err := l.queue.acquire(ctx, client); err != nil {
		l.cache.complete(e, nil, err)
		l.errs.Add(1)
		return nil, err
	}
	out, err := l.runJob(spec)
	l.queue.release(client)
	if err != nil {
		l.cache.complete(e, nil, err)
		l.errs.Add(1)
		return nil, err
	}
	l.executed.Add(1)
	res := &Result{
		Key:      key,
		Op:       spec.Op.String(),
		Sim:      out.Result,
		Sampled:  out.Sampled,
		Program:  out.Program,
		Trace:    out.Trace,
		Snapshot: out.Snapshot,
	}
	l.cache.complete(e, res, nil)
	l.cache.maybeSpill(key, res)
	return res.withCached(false), nil
}

// Metrics implements Engine.
func (l *Local) Metrics() Metrics {
	entries, evictions, spilled := l.cache.stats()
	return Metrics{
		Jobs:         l.jobs.Load(),
		Executed:     l.executed.Load(),
		CacheHits:    l.hits.Load(),
		DiskHits:     l.diskHits.Load(),
		Errors:       l.errs.Load(),
		Evictions:    evictions,
		Spilled:      spilled,
		QueueDepth:   l.queue.queueDepth(),
		InFlight:     l.queue.inFlight(),
		CacheEntries: entries,
	}
}
