// msannotate runs the flow-sensitive annotation optimizer over an
// annotated assembly file: it computes the minimal sound create mask of
// every task, moves forward bits to last updates, removes dead sends,
// and inserts releases on flush-only paths (docs/annotate.md). The
// rewritten source is re-assembled under the annotation-contract lint
// gate and verified against the functional interpreter — identical
// output bytes and exit code — before anything is written.
//
// By default the optimized source goes to stdout and the per-task plan
// to stderr. -w rewrites the file in place, -o names an output file,
// -plan prints only the plan, and -d prints a unified summary of the
// mask changes. The exit status is 0 on success (including "nothing to
// change"), 1 on any error.
package main

import (
	"flag"
	"fmt"
	"os"

	"multiscalar"
)

func main() {
	var (
		inPlace  = flag.Bool("w", false, "rewrite the input file in place")
		out      = flag.String("o", "", "write the optimized source to this file")
		planOnly = flag.Bool("plan", false, "print the per-task plan without rewriting")
		quiet    = flag.Bool("q", false, "suppress the plan summary on stderr")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: msannotate [-w | -o out.s | -plan] [-q] file.s")
		os.Exit(2)
	}
	if *inPlace && *out != "" {
		fmt.Fprintln(os.Stderr, "msannotate: -w and -o are mutually exclusive")
		os.Exit(2)
	}
	path := flag.Arg(0)
	src, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	newSrc, plan, err := multiscalar.OptimizeSource(string(src))
	if err != nil {
		fatal(err)
	}
	if *planOnly {
		fmt.Print(plan.String())
		return
	}
	if !*quiet {
		fmt.Fprint(os.Stderr, plan.String())
		if n := plan.DroppedSends(); n > 0 {
			fmt.Fprintf(os.Stderr, "%d ring send(s) eliminated per full task round\n", n)
		}
	}
	switch {
	case *inPlace:
		if newSrc == string(src) {
			return
		}
		info, err := os.Stat(path)
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(path, []byte(newSrc), info.Mode().Perm()); err != nil {
			fatal(err)
		}
	case *out != "":
		if err := os.WriteFile(*out, []byte(newSrc), 0o644); err != nil {
			fatal(err)
		}
	default:
		fmt.Print(newSrc)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "msannotate:", err)
	os.Exit(1)
}
