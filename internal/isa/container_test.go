package isa

import (
	"bytes"
	"reflect"
	"testing"
)

func TestContainerRoundTrip(t *testing.T) {
	p := sampleProgram()
	p.Data = []byte{1, 2, 3, 4, 5}
	p.Tasks[0x1004].PushRA = 0x100c
	p.Tasks[0x1004].CallTarget = 0x1004

	var buf bytes.Buffer
	if err := WriteProgram(&buf, p); err != nil {
		t.Fatal(err)
	}
	back, err := ReadProgram(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Entry != p.Entry {
		t.Errorf("entry = 0x%x", back.Entry)
	}
	if !reflect.DeepEqual(back.Text, p.Text) {
		t.Errorf("text differs:\n%v\n%v", back.Text, p.Text)
	}
	if !bytes.Equal(back.Data, p.Data) {
		t.Errorf("data differs")
	}
	if !reflect.DeepEqual(back.Tasks, p.Tasks) {
		t.Errorf("tasks differ:\n%v\n%v", back.Tasks[0x1004], p.Tasks[0x1004])
	}
	if !reflect.DeepEqual(back.Symbols, p.Symbols) {
		t.Errorf("symbols differ")
	}
}

func TestContainerRejectsGarbage(t *testing.T) {
	if _, err := ReadProgram(bytes.NewReader([]byte("not a container"))); err == nil {
		t.Error("garbage should fail")
	}
	// Truncations at every prefix length must error, not panic.
	var buf bytes.Buffer
	if err := WriteProgram(&buf, sampleProgram()); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for n := 0; n < len(full); n += 7 {
		if _, err := ReadProgram(bytes.NewReader(full[:n])); err == nil {
			t.Fatalf("truncation at %d bytes accepted", n)
		}
	}
	// Trailing garbage rejected.
	if _, err := ReadProgram(bytes.NewReader(append(append([]byte{}, full...), 0))); err == nil {
		t.Error("trailing bytes accepted")
	}
	// Wrong version rejected.
	bad := append([]byte{}, full...)
	bad[7] = 99
	if _, err := ReadProgram(bytes.NewReader(bad)); err == nil {
		t.Error("bad version accepted")
	}
}
