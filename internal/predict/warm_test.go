package predict

import "testing"

// AdoptTables is the branch-predictor half of warm-state injection
// (internal/sample): table contents move, statistics and the
// intra-task RAS stay fresh.

func TestAdoptTables(t *testing.T) {
	src := NewBranchPredictor(64)
	pc := uint32(0x400100)
	for i := 0; i < 4; i++ {
		src.UpdateTaken(pc, true, src.PredictTaken(pc))
	}
	src.UpdateIndirect(0x400200, 0x400300)

	dst := NewBranchPredictor(64)
	if !dst.AdoptTables(src) {
		t.Fatal("AdoptTables rejected identical geometry")
	}
	if !dst.PredictTaken(pc) {
		t.Error("adopted counters lost the trained taken-bias")
	}
	if got := dst.PredictIndirect(0x400200); got != 0x400300 {
		t.Errorf("adopted indirect target 0x%x, want 0x400300", got)
	}

	small := NewBranchPredictor(16)
	if small.AdoptTables(src) {
		t.Error("AdoptTables accepted a geometry mismatch")
	}
}
