package litmus

import (
	"fmt"

	"multiscalar/internal/arb"
	"multiscalar/internal/bench"
	"multiscalar/internal/core"
	"multiscalar/internal/job"
)

// MatrixEntry is one machine configuration of the differential matrix.
type MatrixEntry struct {
	Units   int
	Policy  arb.OverflowPolicy
	Entries int // ARB entries per bank
	Static  bool // StaticPredict ablation instead of the PAs predictor
	NoSkip  bool // dense ticking instead of the wakeup scheduler
}

func (e MatrixEntry) String() string {
	pol := "stall"
	if e.Policy == arb.PolicySquash {
		pol = "squash"
	}
	s := fmt.Sprintf("u%d/%s/e%d", e.Units, pol, e.Entries)
	if e.Static {
		s += "/static"
	}
	if e.NoSkip {
		s += "/noskip"
	}
	return s
}

// Config realizes the entry as a machine configuration.
func (e MatrixEntry) Config() core.Config {
	cfg := core.DefaultConfig(e.Units, 2, true)
	cfg.ARBPolicy = e.Policy
	if e.Entries > 0 {
		cfg.ARBEntries = e.Entries
	}
	cfg.StaticPredict = e.Static
	cfg.NoSkip = e.NoSkip
	// Litmus programs finish in thousands of cycles; a run that does
	// not is itself a failure worth a bounded wait.
	cfg.MaxCycles = 50_000_000
	return cfg
}

// Matrix builds the differential configuration matrix. quick keeps the
// CI floor — unit counts × overflow policies × {event-driven, -noskip}
// with capacity-1 banks under PolicySquash pressure — while the full
// matrix adds entries-per-bank and predictor-mode axes (64 configs).
func Matrix(quick bool) []MatrixEntry {
	var m []MatrixEntry
	for _, units := range []int{1, 2, 4, 8} {
		for _, pol := range []arb.OverflowPolicy{arb.PolicyStall, arb.PolicySquash} {
			for _, noskip := range []bool{false, true} {
				if quick {
					m = append(m, MatrixEntry{Units: units, Policy: pol, Entries: 1, NoSkip: noskip})
					continue
				}
				for _, entries := range []int{256, 1} {
					for _, static := range []bool{false, true} {
						m = append(m, MatrixEntry{
							Units: units, Policy: pol, Entries: entries,
							Static: static, NoSkip: noskip,
						})
					}
				}
			}
		}
	}
	return m
}

// Mismatch is one differential failure: a run that diverged from the
// oracle (or failed outright) under one matrix entry.
type Mismatch struct {
	Program   *Program
	Entry     MatrixEntry
	Got       string // the run's committed output ("" on a run error)
	Committed uint64
	Err       string // run error, if the machine failed to finish
	Diagnosis string // forbidden-outcome classification
	Artifact  *Artifact
}

func (m *Mismatch) String() string {
	if m.Err != "" {
		return fmt.Sprintf("%s @ %s: run error: %s", m.Program.Name, m.Entry, m.Err)
	}
	return fmt.Sprintf("%s @ %s: got %q want %q (%s)",
		m.Program.Name, m.Entry, m.Got, m.Program.Oracle.Out, m.Diagnosis)
}

// runOne executes one (program, entry) cell through the job.Spec path
// and checks the result against the program's oracle. A nil return is
// a pass.
func runOne(p *Program, e MatrixEntry, seed int64) *Mismatch {
	spec := &job.Spec{
		Op:      job.OpSimulate,
		Program: p.Prog,
		Machine: job.MachineMultiscalar,
		Config:  e.Config(),
		// Verify is off: the runner compares against the generation
		// -time oracle itself so a divergent output is captured for
		// classification instead of surfacing as an opaque error.
		WantSnapshot: true,
	}
	out, err := job.Execute(spec, nil)
	mm := &Mismatch{Program: p, Entry: e}
	switch {
	case err != nil:
		mm.Err = err.Error()
	case out.Result.Out == p.Oracle.Out && out.Result.Committed == p.Oracle.ICount:
		return nil
	default:
		mm.Got = out.Result.Out
		mm.Committed = out.Result.Committed
		mm.Diagnosis = p.Classify(out.Result.Out)
	}
	var snap []byte
	if out != nil {
		snap = out.Snapshot
	}
	mm.Artifact = NewArtifact(p, e, mm, seed, snap)
	return mm
}

// RunDiff executes every program across every matrix entry in parallel
// and returns the mismatches (empty means the machines matched the
// oracle everywhere). seed is recorded in any artifact so CI failures
// name their replay input.
func RunDiff(progs []*Program, matrix []MatrixEntry, seed int64) []*Mismatch {
	type cell struct {
		p *Program
		e MatrixEntry
	}
	cells := make([]cell, 0, len(progs)*len(matrix))
	for _, p := range progs {
		for _, e := range matrix {
			cells = append(cells, cell{p, e})
		}
	}
	results := make([]*Mismatch, len(cells))
	_ = bench.RunJobs(len(cells), func(i int) error {
		results[i] = runOne(cells[i].p, cells[i].e, seed)
		return nil
	})
	var mms []*Mismatch
	for _, r := range results {
		if r != nil {
			mms = append(mms, r)
		}
	}
	return mms
}
