// Package taskpart is the automatic task partitioner: the compiler half of
// the multiscalar toolchain (Section 2.2 of the paper). Given an assembled
// program with no task annotations, it
//
//   - chooses task boundaries (natural-loop iterations, function bodies,
//     call continuations — the granularities the paper's examples use),
//   - builds task descriptors with conservative create masks trimmed by
//     dead-register analysis,
//   - sets forward bits on last updaters (no later write possible on any
//     path within the task), and
//   - sets stop bits on task exit edges.
//
// It does not insert release instructions (that would require re-laying
// out the text); registers in the create mask that a dynamic execution
// never forwards are released by the completion flush when the task's
// stop instruction retires — the paper's baseline "wait until no further
// updates are possible" strategy. Hand-written workloads place early
// releases themselves, exactly as Figure 4 of the paper does, and the
// difference is measurable (see the release ablation benchmark).
package taskpart

import (
	"fmt"
	"sort"

	"multiscalar/internal/cfg"
	"multiscalar/internal/isa"
	"multiscalar/internal/mslint"
)

// Options control partitioning.
type Options struct {
	// SuppressFuncs lists function entry symbols whose calls should be
	// absorbed into the calling task (the paper's "suppressed functions",
	// Section 3.2.3) instead of becoming tasks of their own.
	SuppressFuncs []string
	// SuppressAllCalls absorbs every call.
	SuppressAllCalls bool
	// KeepLoopTasks==false disables loop-header task entries (only useful
	// for ablation).
	NoLoopTasks bool
	// NoLint skips the annotation-contract post-pass (internal/mslint)
	// over the produced partition. The linter is the partitioner's safety
	// net: a partition with hard lint errors indicates a partitioner bug
	// and is rejected by default.
	NoLint bool
}

// TaskInfo describes one produced task.
type TaskInfo struct {
	Desc   *isa.TaskDescriptor
	Blocks []*cfg.Block // region blocks (may be shared with other tasks)
}

// Partition is the result of partitioning.
type Partition struct {
	Graph *cfg.Graph
	Tasks []*TaskInfo
}

// Run partitions prog in place: it fills prog.Tasks and sets tag bits on
// prog.Text. prog must not already carry task annotations.
func Run(prog *isa.Program, opt Options) (*Partition, error) {
	if len(prog.Tasks) != 0 {
		return nil, fmt.Errorf("taskpart: program already has task descriptors")
	}
	g := cfg.Build(prog)
	g.Analyze()

	suppressed := map[uint32]bool{}
	for _, name := range opt.SuppressFuncs {
		addr, ok := prog.Symbol(name)
		if !ok {
			return nil, fmt.Errorf("taskpart: suppressed function %q undefined", name)
		}
		suppressed[addr] = true
	}

	p := &partitioner{prog: prog, g: g, opt: opt, suppressed: suppressed}
	if err := p.chooseEntries(); err != nil {
		return nil, err
	}
	// Task entries must be block leaders; they are, because entries are
	// either loop headers, call targets, post-call continuations, or the
	// program entry — all block starts.
	//
	// A task with more exits than a descriptor can name (isa.
	// MaxTaskTargets) is split: its internal join blocks are promoted to
	// task entries and the partition is recomputed. Each round promotes
	// at least one block, so this terminates.
	var tasks []*TaskInfo
	for round := 0; ; round++ {
		p.resetTags()
		if err := p.markStops(); err != nil {
			return nil, err
		}
		var fat *TaskInfo
		var err error
		tasks, fat, err = p.buildTasks()
		if err != nil {
			return nil, err
		}
		if fat == nil {
			break
		}
		if round > len(g.Blocks) {
			return nil, fmt.Errorf("taskpart: task splitting did not converge")
		}
		if !p.splitRegion(fat) {
			return nil, fmt.Errorf("taskpart: task %s has %d exit targets (max %d) and no join block to split at; restructure the code",
				fat.Desc.Name, len(fat.Desc.Targets), isa.MaxTaskTargets)
		}
	}
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	if !opt.NoLint {
		if err := mslint.Lint(prog, nil).Err(); err != nil {
			return nil, fmt.Errorf("taskpart: produced an invalid partition (partitioner bug): %w", err)
		}
	}
	return &Partition{Graph: g, Tasks: tasks}, nil
}

// resetTags clears tag bits and descriptors before a (re)partitioning
// round.
func (p *partitioner) resetTags() {
	for i := range p.prog.Text {
		p.prog.Text[i].Fwd = false
		p.prog.Text[i].Stop = isa.StopNone
	}
	p.prog.Tasks = make(map[uint32]*isa.TaskDescriptor)
}

// splitRegion promotes internal join blocks (several predecessors) of an
// oversized task to entries of their own; failing that, the successor of
// the region's first internal control split. Returns false if nothing
// could be promoted.
func (p *partitioner) splitRegion(fat *TaskInfo) bool {
	promoted := false
	for _, b := range fat.Blocks {
		if b.Start == fat.Desc.Entry || p.entries[b.Start] {
			continue
		}
		if len(b.Preds) >= 2 {
			p.entries[b.Start] = true
			promoted = true
		}
	}
	if promoted {
		return true
	}
	// No joins: promote the first internal successor block.
	for _, b := range fat.Blocks {
		for _, s := range b.Succs {
			if s.Start != fat.Desc.Entry && !p.entries[s.Start] {
				p.entries[s.Start] = true
				return true
			}
		}
	}
	return false
}

type partitioner struct {
	prog       *isa.Program
	g          *cfg.Graph
	opt        Options
	suppressed map[uint32]bool
	entries    map[uint32]bool // task entry addresses
}

// isTaskFunc reports whether a call target becomes its own task.
func (p *partitioner) isTaskFunc(addr uint32) bool {
	if p.opt.SuppressAllCalls {
		return false
	}
	return !p.suppressed[addr]
}

// suppressedBlocks returns the set of blocks belonging to suppressed
// functions (they never receive task entries of their own).
func (p *partitioner) suppressedBlocks() map[*cfg.Block]bool {
	out := map[*cfg.Block]bool{}
	var walk func(b *cfg.Block)
	walk = func(b *cfg.Block) {
		if b == nil || out[b] {
			return
		}
		out[b] = true
		for _, s := range b.Succs {
			walk(s)
		}
		if b.CallTarget != 0 && !p.isTaskFunc(b.CallTarget) {
			walk(p.g.ByAddr[b.CallTarget])
		}
	}
	for addr := range p.suppressed {
		walk(p.g.ByAddr[addr])
	}
	if p.opt.SuppressAllCalls {
		for _, b := range p.g.Blocks {
			if b.CallTarget != 0 {
				walk(p.g.ByAddr[b.CallTarget])
			}
		}
	}
	return out
}

func (p *partitioner) chooseEntries() error {
	p.entries = map[uint32]bool{p.prog.Entry: true}
	inSuppressed := p.suppressedBlocks()

	if !p.opt.NoLoopTasks {
		for _, l := range p.g.Loops {
			if inSuppressed[l.Header] {
				continue
			}
			p.entries[l.Header.Start] = true
			// Loop exits become entries so the post-loop code is a task.
			for b := range l.Blocks {
				for _, s := range b.Succs {
					if !l.Blocks[s] && !inSuppressed[s] {
						p.entries[s.Start] = true
					}
				}
			}
		}
	}
	for _, b := range p.g.Blocks {
		if inSuppressed[b] {
			continue
		}
		if b.CallTarget != 0 && p.isTaskFunc(b.CallTarget) {
			p.entries[b.CallTarget] = true // function body task
			p.entries[b.End] = true        // continuation task
		}
	}
	return nil
}

// markStops sets stop bits on every edge that leaves a task region: edges
// into task entries, returns, and calls to task functions.
func (p *partitioner) markStops() error {
	// Suppressed callee bodies execute inside their caller's task and must
	// not carry stop bits: in particular their jr returns control within
	// the task rather than ending it.
	shared := p.suppressedBlocks()
	for _, b := range p.g.Blocks {
		if shared[b] {
			continue
		}
		lastAddr := b.End - isa.InstrSize
		last := p.prog.InstrAt(lastAddr)
		isEntry := func(bb *cfg.Block) bool { return p.entries[bb.Start] }
		switch {
		case last.Op.IsBranch():
			tkn := p.g.ByAddr[last.Target]
			ft := p.g.ByAddr[b.End]
			tknExit := tkn != nil && isEntry(tkn)
			ftExit := ft != nil && isEntry(ft)
			switch {
			case tknExit && ftExit:
				last.Stop = isa.StopAlways
			case tknExit:
				last.Stop = isa.StopTaken
			case ftExit:
				last.Stop = isa.StopNotTaken
			}
		case last.Op == isa.OpJ:
			if t := p.g.ByAddr[last.Target]; t != nil && isEntry(t) {
				last.Stop = isa.StopAlways
			}
		case last.Op == isa.OpJal:
			if p.isTaskFunc(last.Target) {
				last.Stop = isa.StopAlways
			}
		case last.Op == isa.OpJalr:
			if !p.opt.SuppressAllCalls {
				return fmt.Errorf("taskpart: indirect call at 0x%x requires SuppressAllCalls", lastAddr)
			}
		case last.Op == isa.OpJr:
			last.Stop = isa.StopAlways
		default:
			if t := p.g.ByAddr[b.End]; t != nil && isEntry(t) {
				last.Stop = isa.StopAlways
			}
		}
	}
	return nil
}

// region computes the blocks of the task entered at entry: blocks
// reachable without crossing into another task entry, including the
// bodies of suppressed callees.
func (p *partitioner) region(entry uint32) []*cfg.Block {
	start := p.g.ByAddr[entry]
	if start == nil {
		return nil
	}
	seen := map[*cfg.Block]bool{}
	var out []*cfg.Block
	var stack []*cfg.Block
	push := func(b *cfg.Block) {
		if b != nil && !seen[b] {
			seen[b] = true
			stack = append(stack, b)
		}
	}
	push(start)
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		out = append(out, b)
		// A call to a suppressed function pulls the callee body in.
		if b.CallTarget != 0 && !p.isTaskFunc(b.CallTarget) {
			push(p.g.ByAddr[b.CallTarget])
		}
		// A call to a task function ends the task here.
		if b.CallTarget != 0 && p.isTaskFunc(b.CallTarget) {
			continue
		}
		if b.Returns {
			continue
		}
		for _, s := range b.Succs {
			if !p.entries[s.Start] {
				push(s)
			}
		}
	}
	return out
}

// buildTasks creates descriptors, computes create masks, sets forward
// bits, and validates target counts. A task with too many exit targets is
// returned as `fat` for the caller to split.
func (p *partitioner) buildTasks() ([]*TaskInfo, *TaskInfo, error) {
	entryList := make([]uint32, 0, len(p.entries))
	for e := range p.entries {
		entryList = append(entryList, e)
	}
	sort.Slice(entryList, func(i, j int) bool { return entryList[i] < entryList[j] })

	var tasks []*TaskInfo
	for _, entry := range entryList {
		blocks := p.region(entry)
		if blocks == nil {
			continue
		}
		td := &isa.TaskDescriptor{
			Name:  fmt.Sprintf("t_%x", entry),
			Entry: entry,
		}
		if name := p.symbolFor(entry); name != "" {
			td.Name = name
		}

		// Exit targets and PushRA.
		targets := map[uint32]bool{}
		liveOut := isa.RegMask(0)
		for _, b := range blocks {
			lastAddr := b.End - isa.InstrSize
			last := p.prog.InstrAt(lastAddr)
			addTarget := func(addr uint32) {
				targets[addr] = true
				if t := p.g.ByAddr[addr]; t != nil {
					liveOut = liveOut.Union(t.LiveIn)
				}
			}
			switch last.Stop {
			case isa.StopAlways:
				switch {
				case last.Op.IsBranch():
					addTarget(last.Target)
					addTarget(b.End)
				case last.Op == isa.OpJ:
					addTarget(last.Target)
				case last.Op == isa.OpJal:
					addTarget(last.Target)
					cont := b.End
					if td.PushRA != 0 && td.PushRA != cont {
						return nil, nil, fmt.Errorf("taskpart: task %s has multiple call continuations", td.Name)
					}
					td.PushRA = cont
					td.CallTarget = last.Target
					// Values the caller holds across the call are live
					// outside this task even though the callee never reads
					// them: the call block's live-out is the set live after
					// the return.
					liveOut = liveOut.Union(b.LiveOut)
				case last.Op == isa.OpJr:
					targets[isa.TargetReturn] = true
					// Live at return: the ABI set plus anything any caller
					// of this function holds live across its call sites.
					liveOut = liveOut.Union(cfg.LiveAtReturn)
					liveOut = liveOut.Union(p.retLiveOut(entry))
				default:
					addTarget(b.End)
				}
			case isa.StopTaken:
				addTarget(last.Target)
			case isa.StopNotTaken:
				addTarget(b.End)
			}
		}
		for t := range targets {
			td.Targets = append(td.Targets, t)
		}
		sort.Slice(td.Targets, func(i, j int) bool { return td.Targets[i] < td.Targets[j] })
		if len(td.Targets) > isa.MaxTaskTargets {
			return tasks, &TaskInfo{Desc: td, Blocks: blocks}, nil
		}

		// Create mask: registers the region may write, trimmed to those
		// live into some exit.
		var def isa.RegMask
		for _, b := range blocks {
			def = def.Union(b.Def)
		}
		td.Create = def.Intersect(liveOut)

		p.setForwardBits(td, blocks)

		p.prog.Tasks[entry] = td
		tasks = append(tasks, &TaskInfo{Desc: td, Blocks: blocks})
	}
	return tasks, nil, nil
}

// retLiveOut returns the registers live after any call site that can
// reach the function task entered at `entry` — the union of the live-out
// sets of every block calling a function whose body contains this task.
// Conservative: called from anywhere means live-out of every call block.
func (p *partitioner) retLiveOut(entry uint32) isa.RegMask {
	var m isa.RegMask
	for _, b := range p.g.Blocks {
		if b.CallTarget != 0 && p.isTaskFunc(b.CallTarget) {
			m = m.Union(b.LiveOut)
		}
	}
	return m
}

func (p *partitioner) symbolFor(addr uint32) string {
	best := ""
	for name, a := range p.prog.Symbols {
		if a == addr && (best == "" || name < best) {
			best = name
		}
	}
	return best
}

// setForwardBits marks, for each register in the create mask, every write
// after which no further write of that register is possible on any path
// within the task. Writes inside suppressed callee bodies are left
// unmarked (the completion flush covers them), because a callee shared by
// several tasks cannot carry per-task forward bits.
func (p *partitioner) setForwardBits(td *isa.TaskDescriptor, blocks []*cfg.Block) {
	inRegion := map[*cfg.Block]bool{}
	for _, b := range blocks {
		inRegion[b] = true
	}
	// Blocks belonging to suppressed callee bodies: reachable via call
	// edges from region call sites. Approximate: a block is "shared" if it
	// is part of any suppressed function body.
	shared := p.suppressedBlocks()

	// mwIn[b]: registers that may be written at or after the start of b
	// within the task. Fixpoint over internal edges.
	mwIn := map[*cfg.Block]isa.RegMask{}
	mwOut := func(b *cfg.Block) isa.RegMask {
		var m isa.RegMask
		if b.CallTarget != 0 && p.isTaskFunc(b.CallTarget) {
			return 0 // task ends at the call
		}
		if b.Returns {
			return 0
		}
		// A call to a suppressed function returns to the fall-through,
		// which is a normal successor edge already.
		for _, s := range b.Succs {
			if inRegion[s] && !p.entries[s.Start] {
				m = m.Union(mwIn[s])
			}
		}
		// Block ending in a suppressed call: the callee may write more
		// after this block's instructions, before the fall-through — the
		// callee writes are accounted in the jal instruction's defs below,
		// so nothing extra is needed here.
		return m
	}
	for changed := true; changed; {
		changed = false
		for i := len(blocks) - 1; i >= 0; i-- {
			b := blocks[i]
			var defs isa.RegMask
			for a := b.Start; a < b.End; a += isa.InstrSize {
				d, _ := p.instrDefs(p.prog.InstrAt(a))
				defs = defs.Union(d)
			}
			in := defs.Union(mwOut(b))
			if in != mwIn[b] {
				mwIn[b] = in
				changed = true
			}
		}
	}

	for _, b := range blocks {
		if shared[b] {
			continue
		}
		// Walk forward computing "may be written later" per instruction.
		// Collect per-instruction defs first.
		n := b.NumInstrs()
		defs := make([]isa.RegMask, n)
		for i := 0; i < n; i++ {
			a := b.Start + uint32(i)*isa.InstrSize
			d, _ := p.instrDefs(p.prog.InstrAt(a))
			defs[i] = d
		}
		later := make([]isa.RegMask, n) // may be written strictly after instr i
		tail := mwOut(b)
		for i := n - 1; i >= 0; i-- {
			later[i] = tail
			tail = tail.Union(defs[i])
		}
		for i := 0; i < n; i++ {
			a := b.Start + uint32(i)*isa.InstrSize
			in := p.prog.InstrAt(a)
			d := in.Dest()
			// Calls never carry forward bits: a suppressed callee may
			// clobber registers after the call instruction itself, and a
			// task call ends the task anyway (completion flush covers $ra).
			if d == isa.RegZero || in.Op == isa.OpJal || in.Op == isa.OpJalr {
				continue
			}
			if td.Create.Has(d) && !later[i].Has(d) {
				in.Fwd = true
			}
		}
	}
}

// instrDefs returns the registers an instruction may define, including
// suppressed-callee effects at call sites.
func (p *partitioner) instrDefs(in *isa.Instr) (isa.RegMask, isa.RegMask) {
	switch in.Op {
	case isa.OpJal:
		var d isa.RegMask
		d = d.Set(in.Rd)
		if !p.isTaskFunc(in.Target) {
			if fs := p.g.Funcs[in.Target]; fs != nil {
				d = d.Union(fs.Defs)
			}
		}
		return d, 0
	case isa.OpJalr:
		return cfg.AllRegs, 0
	default:
		var d isa.RegMask
		if dest := in.Dest(); dest != isa.RegZero {
			d = d.Set(dest)
		}
		return d, 0
	}
}
