package mslint

import (
	"multiscalar/internal/cfg"
	"multiscalar/internal/isa"
)

// Task regions are reconstructed by the shared walk in internal/cfg
// (cfg.Graph.TaskRegion): start at the entry, follow control flow, end
// at any satisfied stop bit, pull suppressed callees in. The walk
// records structural oddities as cfg.Problems; this file translates
// them into the linter's diagnostics, preserving the exact codes,
// severities, anchors, and messages the walk used to emit inline.

type linter struct {
	prog  *isa.Program
	g     *cfg.Graph
	lines map[uint32]int
	rep   *Report
	// retMin is the return-exit liveness used for the MS001 soundness
	// direction: the ABI set, refined by the flow-derived ReturnLiveOut
	// when every call site is visible (see run).
	retMin isa.RegMask
}

// walkTask reconstructs the region of one task and reports its
// structural problems.
func (l *linter) walkTask(td *isa.TaskDescriptor) *cfg.TaskRegion {
	r := l.g.TaskRegion(td)
	for _, p := range r.Problems {
		switch p.Kind {
		case cfg.ProbBadEntry:
			l.diag(SevError, CodeBadTaskRef, td.Name, isa.RegZero, p.Addr,
				"task entry 0x%x is not the start of a basic block", p.Addr)
		case cfg.ProbFallsOffText:
			l.diag(SevError, CodeMissingStop, td.Name, isa.RegZero, p.Addr,
				"control falls past the end of text without a stop bit")
		case cfg.ProbEntersTask:
			l.diag(SevError, CodeMissingStop, td.Name, isa.RegZero, p.Addr,
				"control enters task %s at 0x%x without a stop bit", l.taskNameAt(p.Target), p.Target)
		case cfg.ProbStopInCallee:
			l.diag(SevWarning, CodeStopInCallee, td.Name, isa.RegZero, p.Addr,
				"stop bit inside called function body (%s)", p.Op)
		case cfg.ProbCalleeIsTask:
			ct := l.prog.Tasks[p.Target]
			l.diag(SevWarning, CodeTaskOverlap, td.Name, isa.RegZero, p.Addr,
				"call without a stop bit to %s, which is also task %s: its body executes both inside this task and as its own task", ct.Name, ct.Name)
		case cfg.ProbIndirect:
			l.diag(SevWarning, CodeIndirect, td.Name, isa.RegZero, p.Addr,
				"indirect call defeats static exit and effect analysis")
		case cfg.ProbReturnNoStop:
			l.diag(SevError, CodeMissingStop, td.Name, isa.RegZero, p.Addr,
				"return reachable from the task entry without a stop bit")
		}
	}
	return r
}
