// Package asm implements the multiscalar assembler: it turns annotated
// assembly source into an isa.Program. It is the hand-written stand-in for
// the binary-emission half of the paper's modified GCC 2.5.8: labels,
// data directives, task descriptor directives (.task), forward/stop
// annotation suffixes (!f, !s, !st, !snt), and single-source dual builds
// via .msonly/.sconly line prefixes so one source yields both the scalar
// and the multiscalar binary (Table 2's instruction-count deltas fall out
// of exactly this mechanism).
package asm

import (
	"fmt"
	"strings"
)

type tokKind uint8

const (
	tokIdent tokKind = iota
	tokReg
	tokNum
	tokString
	tokPunct // one of , ( ) = : + -
	tokAnnot // !f !s !st !snt
	tokDirective
)

type token struct {
	kind    tokKind
	text    string
	num     int64
	fnum    float64
	isFloat bool
}

// lexLine splits one logical source line (comments already stripped) into
// tokens.
func lexLine(line string) ([]token, error) {
	var toks []token
	i := 0
	n := len(line)
	for i < n {
		c := line[i]
		switch {
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == ',' || c == '(' || c == ')' || c == '=' || c == ':' || c == '+' || c == '-':
			toks = append(toks, token{kind: tokPunct, text: string(c)})
			i++
		case c == '!':
			j := i + 1
			for j < n && isIdentChar(line[j]) {
				j++
			}
			a := line[i:j]
			switch a {
			case "!f", "!s", "!st", "!snt":
				toks = append(toks, token{kind: tokAnnot, text: a})
			default:
				return nil, fmt.Errorf("unknown annotation %q", a)
			}
			i = j
		case c == '.':
			j := i + 1
			for j < n && isIdentChar(line[j]) {
				j++
			}
			if j == i+1 {
				return nil, fmt.Errorf("stray '.'")
			}
			toks = append(toks, token{kind: tokDirective, text: line[i:j]})
			i = j
		case c == '$':
			j := i + 1
			for j < n && isIdentChar(line[j]) {
				j++
			}
			toks = append(toks, token{kind: tokReg, text: line[i:j]})
			i = j
		case c == '"':
			s, next, err := lexString(line, i)
			if err != nil {
				return nil, err
			}
			toks = append(toks, token{kind: tokString, text: s})
			i = next
		case c == '\'':
			if i+2 < n && line[i+1] == '\\' {
				v, ok := escapeChar(line[i+2])
				if !ok || i+3 >= n || line[i+3] != '\'' {
					return nil, fmt.Errorf("bad character literal")
				}
				toks = append(toks, token{kind: tokNum, num: int64(v), text: line[i : i+4]})
				i += 4
			} else if i+2 < n && line[i+2] == '\'' {
				toks = append(toks, token{kind: tokNum, num: int64(line[i+1]), text: line[i : i+3]})
				i += 3
			} else {
				return nil, fmt.Errorf("bad character literal")
			}
		case c >= '0' && c <= '9':
			j := i
			for j < n && (isIdentChar(line[j]) || line[j] == '.') {
				j++
			}
			text := line[i:j]
			tk := token{kind: tokNum, text: text}
			if strings.ContainsAny(text, ".") || (strings.ContainsAny(text, "eE") && !strings.HasPrefix(text, "0x") && !strings.HasPrefix(text, "0X")) {
				var f float64
				if _, err := fmt.Sscanf(text, "%g", &f); err != nil {
					return nil, fmt.Errorf("bad float %q", text)
				}
				tk.fnum = f
				tk.isFloat = true
			} else {
				v, err := parseNum(text)
				if err != nil {
					return nil, err
				}
				tk.num = v
			}
			toks = append(toks, tk)
			i = j
		case isIdentStart(c):
			j := i
			for j < n && (isIdentChar(line[j]) || line[j] == '.') {
				j++
			}
			toks = append(toks, token{kind: tokIdent, text: line[i:j]})
			i = j
		default:
			return nil, fmt.Errorf("unexpected character %q", c)
		}
	}
	return toks, nil
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentChar(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9')
}

func parseNum(s string) (int64, error) {
	neg := false
	if strings.HasPrefix(s, "-") {
		neg = true
		s = s[1:]
	}
	var v int64
	var err error
	switch {
	case strings.HasPrefix(s, "0x") || strings.HasPrefix(s, "0X"):
		_, err = fmt.Sscanf(s[2:], "%x", &v)
	case strings.ContainsAny(s, ".eE") && !strings.HasPrefix(s, "0x"):
		return 0, fmt.Errorf("float literal %q where integer expected", s)
	default:
		_, err = fmt.Sscanf(s, "%d", &v)
	}
	if err != nil {
		return 0, fmt.Errorf("bad number %q", s)
	}
	if neg {
		v = -v
	}
	return v, nil
}

func lexString(line string, start int) (string, int, error) {
	var b strings.Builder
	i := start + 1
	for i < len(line) {
		c := line[i]
		if c == '"' {
			return b.String(), i + 1, nil
		}
		if c == '\\' {
			if i+1 >= len(line) {
				return "", 0, fmt.Errorf("unterminated escape")
			}
			v, ok := escapeChar(line[i+1])
			if !ok {
				return "", 0, fmt.Errorf("bad escape \\%c", line[i+1])
			}
			b.WriteByte(v)
			i += 2
			continue
		}
		b.WriteByte(c)
		i++
	}
	return "", 0, fmt.Errorf("unterminated string")
}

func escapeChar(c byte) (byte, bool) {
	switch c {
	case 'n':
		return '\n', true
	case 't':
		return '\t', true
	case 'r':
		return '\r', true
	case '0':
		return 0, true
	case '\\':
		return '\\', true
	case '"':
		return '"', true
	case '\'':
		return '\'', true
	default:
		return 0, false
	}
}

// stripComment removes ;, # and // comments, respecting string literals.
func stripComment(line string) string {
	inStr := false
	for i := 0; i < len(line); i++ {
		c := line[i]
		if inStr {
			if c == '\\' {
				i++
			} else if c == '"' {
				inStr = false
			}
			continue
		}
		switch {
		case c == '"':
			inStr = true
		case c == ';' || c == '#':
			return line[:i]
		case c == '/' && i+1 < len(line) && line[i+1] == '/':
			return line[:i]
		}
	}
	return line
}
