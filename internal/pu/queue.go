package pu

// The unit's two pipeline queues (the fetch queue and the instruction
// window) pop from the head every cycle. Shifting the remaining entries
// forward on every pop costs a typed copy of the whole queue — with
// write barriers, since entries hold instruction pointers — per retired
// or dispatched instruction, and that copy showed up as >10% of timing
// simulation. Instead each queue is a contiguous window into a backing
// buffer a few times its architectural capacity: a pop just advances the
// window (q = q[1:]), and qpush slides the window back to the front of
// the buffer only when it reaches the end, amortizing the copy over the
// slack. Entries stay contiguous in logical (oldest-first) order, so the
// per-cycle window scans and the snapshot serialization index the slice
// directly, exactly as a plain slice.

// queueSlack sizes the backing buffer as a multiple of the architectural
// capacity: compaction copies at most one capacity's worth of entries per
// (queueSlack-1) capacities of pushes.
const queueSlack = 4

// qpush appends v to the window q over backing buffer buf, sliding the
// window back to the front of buf first if it has reached the end. The
// caller bounds len(q) by the architectural capacity, which is at most
// len(buf)/queueSlack, so the append below never allocates.
func qpush[T any](buf, q []T, v T) []T {
	if len(q) == cap(q) {
		n := copy(buf, q) // overlapping copy is fine: dst precedes src
		q = buf[:n]
	}
	return append(q, v)
}
