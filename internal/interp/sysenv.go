package interp

import (
	"bytes"
	"fmt"
	"io"

	"multiscalar/internal/isa"
	"multiscalar/internal/mem"
)

// Syscall codes (SPIM-style). The paper's simulator traps system calls to
// the host OS; SysEnv is our host side. Benchmark inputs are pre-loaded
// into the data segment before the run, so programs only call out for
// output, heap growth, and exit — plus SysReadChar for programs that take
// interactive input.
const (
	SysPrintInt    = 1
	SysPrintString = 4
	SysSbrk        = 9
	SysExit        = 10
	SysPrintChar   = 11
	SysReadChar    = 12
)

// MemReader lets a syscall read program memory through whatever view is
// correct for the caller: the interpreter passes committed memory; the
// multiscalar simulator passes a view that consults the ARB first, so a
// print of a buffer written earlier in the same (not yet retired) task
// sees the speculative bytes.
type MemReader interface {
	Byte(addr uint32) byte
}

// SysEnv is the host environment shared by all simulators. Running the
// same program under the interpreter, the scalar simulator, and any
// multiscalar configuration must produce byte-identical Out contents and
// equal exit codes.
type SysEnv struct {
	Out      bytes.Buffer
	ExitCode int32
	Exited   bool

	// In, when non-nil, backs SysReadChar. With a nil In the syscall
	// returns end-of-input. Timing simulators replay tasks after
	// squashes, so a determinate In (a bytes.Reader, not a terminal) is
	// required for verification runs; the facade's WithVerify slurps the
	// reader for exactly this reason.
	In io.Reader

	heapEnd uint32

	// inConsumed counts bytes successfully read from In, so a restored
	// snapshot can reposition a fresh reader over the same input.
	inConsumed uint64
}

// NewSysEnv returns an environment with an empty heap at isa.HeapBase.
func NewSysEnv() *SysEnv {
	return &SysEnv{heapEnd: isa.HeapBase}
}

// HeapEnd returns the current sbrk break.
func (e *SysEnv) HeapEnd() uint32 { return e.heapEnd }

// Call services one syscall. v0 is the syscall code; a0-a3 are arguments.
// It returns the new $v0 value and whether $v0 is written.
func (e *SysEnv) Call(m MemReader, v0, a0, a1, a2, a3 uint32) (ret uint32, writesV0 bool, err error) {
	switch v0 {
	case SysPrintInt:
		fmt.Fprintf(&e.Out, "%d", int32(a0))
		return 0, false, nil
	case SysPrintChar:
		e.Out.WriteByte(byte(a0))
		return 0, false, nil
	case SysPrintString:
		for i := 0; i < 1<<20; i++ {
			b := m.Byte(a0 + uint32(i))
			if b == 0 {
				return 0, false, nil
			}
			e.Out.WriteByte(b)
		}
		return 0, false, fmt.Errorf("interp: unterminated string at 0x%x", a0)
	case SysReadChar:
		if e.In != nil {
			var b [1]byte
			if n, _ := io.ReadFull(e.In, b[:]); n == 1 {
				e.inConsumed++
				return uint32(b[0]), true, nil
			}
		}
		return ^uint32(0), true, nil // -1: end of input
	case SysSbrk:
		old := e.heapEnd
		e.heapEnd += a0
		return old, true, nil
	case SysExit:
		e.Exited = true
		e.ExitCode = int32(a0)
		return 0, false, nil
	default:
		return 0, false, fmt.Errorf("interp: unknown syscall %d", v0)
	}
}

var _ MemReader = (*mem.Memory)(nil)
