package job

import (
	"testing"

	"multiscalar/internal/asm"
	"multiscalar/internal/core"
)

func baseSpec() *Spec {
	return &Spec{
		Op:       OpSimulate,
		Workload: "example",
		Scale:    -1,
		Mode:     asm.ModeMultiscalar,
		Config:   core.DefaultConfig(4, 1, false),
	}
}

func key(t *testing.T, s *Spec) string {
	t.Helper()
	k, err := s.Key()
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestKeyDeterministicAndSensitive(t *testing.T) {
	a, b := baseSpec(), baseSpec()
	if key(t, a) != key(t, b) {
		t.Fatal("identical specs produced different keys")
	}
	// Every semantic axis must split the key.
	mutations := map[string]func(*Spec){
		"units":     func(s *Spec) { s.Config.NumUnits = 8 },
		"workload":  func(s *Spec) { s.Workload = "cmp" },
		"scale":     func(s *Spec) { s.Scale = 0 },
		"op":        func(s *Spec) { s.Op = OpAssemble },
		"machine":   func(s *Spec) { s.Machine = MachineMultiscalar },
		"stdin":     func(s *Spec) { s.Stdin = []byte("x") },
		"maxcycles": func(s *Spec) { s.MaxCycles = 99 },
		"verify":    func(s *Spec) { s.Verify = true },
		"trace":     func(s *Spec) { s.WantTrace = true },
		"snapshot":  func(s *Spec) { s.WantSnapshot = true },
	}
	for name, mutate := range mutations {
		m := baseSpec()
		mutate(m)
		if key(t, m) == key(t, a) {
			t.Errorf("%s: mutation did not change the key", name)
		}
	}
}

// TestKeyStdinNilVsEmpty pins that "no stdin" and "empty stdin" are
// distinct requests: a program that reads input behaves differently on
// EOF-at-once vs no input attached.
func TestKeyStdinNilVsEmpty(t *testing.T) {
	a, b := baseSpec(), baseSpec()
	b.Stdin = []byte{}
	if key(t, a) == key(t, b) {
		t.Fatal("nil and empty stdin share a key")
	}
}

// TestKeyIgnoresRuntimeObservers pins the spec/runtime split from the
// config side: attaching a tracer or sink to the Config must not split
// the cache, because canonical config encoding excludes observers.
func TestKeyIgnoresRuntimeObservers(t *testing.T) {
	a, b := baseSpec(), baseSpec()
	b.Config.Trace = discardWriter{}
	if key(t, a) != key(t, b) {
		t.Fatal("a Config observer changed the job key")
	}
}

type discardWriter struct{}

func (discardWriter) Write(p []byte) (int, error) { return len(p), nil }

func TestValidate(t *testing.T) {
	bad := []*Spec{
		{Op: OpSimulate, Config: core.DefaultConfig(1, 1, false)},  // no source
		{Op: OpSimulate, Workload: "example", Source: "x", Config: core.DefaultConfig(1, 1, false)}, // two sources
		{Op: 99, Workload: "example", Config: core.DefaultConfig(1, 1, false)},                      // bad op
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("spec %d accepted: %+v", i, s)
		}
	}
	if err := baseSpec().Validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
}
