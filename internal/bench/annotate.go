package bench

import (
	"fmt"
	"strings"

	"multiscalar/internal/annotate"
	"multiscalar/internal/asm"
	"multiscalar/internal/core"
	"multiscalar/internal/pu"
	"multiscalar/internal/workloads"
)

// AnnotateRow compares one workload's hand annotations against the
// flow-sensitive optimizer's tightened ones (internal/annotate) on the
// same machine: total cycles, values placed on the forwarding ring, and
// cycles units spent blocked on predecessor values. DroppedBits counts
// the create-mask registers the optimizer removed across tasks — each is
// one ring send fewer every time its task executes.
type AnnotateRow struct {
	Workload    string
	DroppedBits int
	HandCycles  uint64
	AutoCycles  uint64
	HandSends   uint64
	AutoSends   uint64
	HandWait    uint64 // wait-pred unit-cycles
	AutoWait    uint64
}

// AnnotateAblation runs the hand-vs-optimized comparison over the whole
// suite (extras included — the ABI-conservative function tasks the
// optimizer's refined return-liveness tightens live there) on 8 one-way
// in-order units. Both binaries are held to the same memoized functional
// oracle: the optimizer only rewrites annotations, never results, and a
// removed release decays to a nop so the committed instruction count is
// unchanged too.
func AnnotateAblation(scale Scale) ([]AnnotateRow, error) {
	ws := workloads.AllWithExtras()
	rows := make([]AnnotateRow, len(ws))
	err := runJobs(len(ws), func(i int) error {
		w := ws[i]
		p, o, err := buildOracle(w, asm.ModeMultiscalar, scale)
		if err != nil {
			return fmt.Errorf("%s: %w", w.Name, err)
		}
		auto, plan := annotate.Optimize(p)
		cfg := core.DefaultConfig(8, 1, false)
		hand, err := runMSConfig(p, o, cfg, inputFor(w.Name))
		if err != nil {
			return fmt.Errorf("%s (hand): %w", w.Name, err)
		}
		opt, err := runMSConfig(auto, o, cfg, inputFor(w.Name))
		if err != nil {
			return fmt.Errorf("%s (optimized): %w", w.Name, err)
		}
		rows[i] = AnnotateRow{
			Workload:    w.Name,
			DroppedBits: plan.DroppedSends(),
			HandCycles:  hand.Cycles,
			AutoCycles:  opt.Cycles,
			HandSends:   hand.RingSends,
			AutoSends:   opt.RingSends,
			HandWait:    hand.Activity[pu.ActWaitPred],
			AutoWait:    opt.Activity[pu.ActWaitPred],
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// FormatAnnotate renders the hand-vs-optimized table.
func FormatAnnotate(rows []AnnotateRow) string {
	var b strings.Builder
	b.WriteString("Annotation optimizer: hand vs auto-tightened (8 units, 1-way in-order)\n")
	fmt.Fprintf(&b, "  %-10s %5s  %21s  %19s  %21s\n",
		"workload", "drop", "ring sends (hand/auto)", "cycles (hand/auto)", "wait-pred (hand/auto)")
	for _, r := range rows {
		mark := ""
		if r.AutoSends < r.HandSends {
			mark = fmt.Sprintf("  -%.0f%% sends", 100*float64(r.HandSends-r.AutoSends)/float64(r.HandSends))
		}
		fmt.Fprintf(&b, "  %-10s %5d  %10d /%10d  %9d /%9d  %10d /%10d%s\n",
			r.Workload, r.DroppedBits,
			r.HandSends, r.AutoSends,
			r.HandCycles, r.AutoCycles,
			r.HandWait, r.AutoWait, mark)
	}
	return b.String()
}
