package interp

import (
	"fmt"

	"multiscalar/internal/isa"
	"multiscalar/internal/mem"
)

// Machine is the functional simulator state.
type Machine struct {
	Prog *isa.Program
	Mem  *mem.Memory
	Regs [isa.NumRegs]Value
	FCC  bool
	PC   uint32
	Env  *SysEnv

	// ICount is the dynamic instruction count — the quantity Table 2
	// reports.
	ICount uint64
	// Class counts broken out for reporting.
	LoadCount, StoreCount, BranchCount uint64
}

// NewMachine loads a program image: data segment copied into memory,
// $sp at the stack top, PC at the entry point.
func NewMachine(p *isa.Program, env *SysEnv) *Machine {
	m := &Machine{
		Prog: p,
		Mem:  mem.NewMemory(),
		PC:   p.Entry,
		Env:  env,
	}
	m.Mem.WriteBytes(isa.DataBase, p.Data)
	m.Regs[isa.RegSP] = IntVal(isa.StackTop)
	m.Regs[isa.RegGP] = IntVal(isa.DataBase)
	return m
}

// Step executes one instruction. It returns an error on traps (bad PC,
// unaligned access, division by zero, unknown syscall).
func (m *Machine) Step() error {
	in := m.Prog.InstrAt(m.PC)
	if in == nil {
		return fmt.Errorf("interp: PC 0x%x outside text", m.PC)
	}
	nextPC := m.PC + isa.InstrSize

	switch {
	case in.Op == isa.OpSyscall:
		ret, writes, err := m.Env.Call(m.Mem,
			m.Regs[isa.RegV0].I, m.Regs[isa.RegA0].I,
			m.Regs[isa.RegA1].I, m.Regs[isa.RegA2].I, m.Regs[isa.RegA3].I)
		if err != nil {
			return err
		}
		if writes {
			m.Regs[isa.RegV0] = IntVal(ret)
		}
	case in.Op.IsLoad():
		addr := EffAddr(m.Regs[in.Rs], in.Imm)
		size := in.Op.MemSize()
		if addr%uint32(size) != 0 {
			return fmt.Errorf("interp: unaligned %s of 0x%x at PC 0x%x", in.Op, addr, m.PC)
		}
		raw := m.Mem.ReadN(addr, size)
		m.setReg(in.Rd, LoadValue(in.Op, raw))
		m.LoadCount++
	case in.Op.IsStore():
		addr := EffAddr(m.Regs[in.Rs], in.Imm)
		size := in.Op.MemSize()
		if addr%uint32(size) != 0 {
			return fmt.Errorf("interp: unaligned %s of 0x%x at PC 0x%x", in.Op, addr, m.PC)
		}
		m.Mem.WriteN(addr, size, StoreValue(in.Op, m.Regs[in.Rt]))
		m.StoreCount++
	case in.Op == isa.OpJ:
		nextPC = in.Target
		m.BranchCount++
	case in.Op == isa.OpJal:
		m.setReg(in.Rd, IntVal(m.PC+isa.InstrSize))
		nextPC = in.Target
		m.BranchCount++
	case in.Op == isa.OpJr:
		nextPC = m.Regs[in.Rs].I
		m.BranchCount++
	case in.Op == isa.OpJalr:
		target := m.Regs[in.Rs].I
		m.setReg(in.Rd, IntVal(m.PC+isa.InstrSize))
		nextPC = target
		m.BranchCount++
	default:
		res, err := Exec(in.Op, m.Regs[in.Rs], m.Regs[in.Rt], in.Imm, m.FCC)
		if err != nil {
			return fmt.Errorf("%w at PC 0x%x", err, m.PC)
		}
		if in.Op.IsBranch() {
			if res.Taken {
				nextPC = in.Target
			}
			m.BranchCount++
		} else if d := in.Dest(); d != isa.RegZero {
			m.setReg(d, res.Val)
		}
		if res.SetFCC {
			m.FCC = res.FCC
		}
	}

	m.ICount++
	m.PC = nextPC
	return nil
}

func (m *Machine) setReg(r isa.Reg, v Value) {
	if r != isa.RegZero {
		m.Regs[r] = v
	}
}

// Run executes until the program exits or maxInstrs instructions have
// retired (0 means no limit is a mistake — pass an explicit bound).
func (m *Machine) Run(maxInstrs uint64) error {
	for !m.Env.Exited {
		if m.ICount >= maxInstrs {
			return fmt.Errorf("interp: exceeded %d instructions without exiting", maxInstrs)
		}
		if err := m.Step(); err != nil {
			return err
		}
	}
	return nil
}
