package sample

import "math"

// Systematic-sampling estimator (SMARTS-style): each detailed window
// yields one CPI observation; the whole-run cycle count is the total
// instruction count times the mean window CPI, and the 95% confidence
// interval comes from the t distribution on the window standard error.
// Windows are treated as an (approximately) independent sample of the
// run's CPI process — the standard SMARTS assumption, validated here
// by the sampled-vs-full harness (bench -sampled, docs/perf.md).

// meanStdErr returns the sample mean, the unbiased sample variance and
// the standard error of the mean for one window population.
func meanStdErr(xs []float64) (mean, variance, stderr float64) {
	n := len(xs)
	if n == 0 {
		return 0, 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(n)
	if n < 2 {
		return mean, 0, 0
	}
	for _, x := range xs {
		d := x - mean
		variance += d * d
	}
	variance /= float64(n - 1)
	stderr = math.Sqrt(variance / float64(n))
	return mean, variance, stderr
}

// tTable holds two-sided 95% critical values of Student's t for small
// degrees of freedom (df 1..30 exactly, then representative steps).
var tTable = [...]float64{
	1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571,
	6: 2.447, 7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228,
	11: 2.201, 12: 2.179, 13: 2.160, 14: 2.145, 15: 2.131,
	16: 2.120, 17: 2.110, 18: 2.101, 19: 2.093, 20: 2.086,
	21: 2.080, 22: 2.074, 23: 2.069, 24: 2.064, 25: 2.060,
	26: 2.056, 27: 2.052, 28: 2.048, 29: 2.045, 30: 2.042,
}

// tCrit returns the two-sided 95% critical value for df degrees of
// freedom.
func tCrit(df int) float64 {
	if df < 1 {
		return 0
	}
	if df < len(tTable) {
		return tTable[df]
	}
	switch {
	case df <= 40:
		return 2.021
	case df <= 60:
		return 2.000
	case df <= 120:
		return 1.980
	}
	return 1.960
}

// confidenceInterval returns the two-sided 95% CI around the mean of a
// sample with n observations and the given standard error.
func confidenceInterval(mean, stderr float64, n int) (lo, hi float64) {
	h := tCrit(n-1) * stderr
	lo = mean - h
	if lo < 0 {
		lo = 0
	}
	return lo, mean + h
}
