package bench

import (
	"fmt"
	"strings"

	"multiscalar/internal/asm"
	"multiscalar/internal/core"
	"multiscalar/internal/workloads"
)

// SpeedupCurve is one benchmark's speedup-over-scalar series across unit
// counts — the figure-style view of Tables 3/4.
type SpeedupCurve struct {
	Name     string
	Units    []int
	Speedups []float64
}

// SpeedupCurves computes speedup-vs-units for every benchmark at one
// issue configuration. Every (workload, unit-count) point — plus each
// workload's scalar baseline — is an independent job on the worker pool.
func SpeedupCurves(width int, outOfOrder bool, scale Scale, units []int) ([]SpeedupCurve, error) {
	ws := workloads.All()
	stride := len(units) + 1 // job 0 of each workload is the scalar baseline
	results := make([]*core.Result, len(ws)*stride)
	err := runJobs(len(results), func(i int) error {
		w, j := ws[i/stride], i%stride
		n := 1
		if j > 0 {
			n = units[j-1]
		}
		res, err := runOne(w, scale, n, width, outOfOrder)
		if err != nil {
			return fmt.Errorf("%s units=%d: %w", w.Name, n, err)
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	curves := make([]SpeedupCurve, 0, len(ws))
	for i, w := range ws {
		base := results[i*stride]
		c := SpeedupCurve{Name: w.Name, Units: units}
		for j := range units {
			c.Speedups = append(c.Speedups, float64(base.Cycles)/float64(results[i*stride+1+j].Cycles))
		}
		curves = append(curves, c)
	}
	return curves, nil
}

// FormatCurves renders the series as an ASCII chart: one row per
// benchmark per unit count, bars scaled to the chart width.
func FormatCurves(title string, curves []SpeedupCurve) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	maxSp := 1.0
	for _, c := range curves {
		for _, s := range c.Speedups {
			if s > maxSp {
				maxSp = s
			}
		}
	}
	const width = 50
	for _, c := range curves {
		fmt.Fprintf(&b, "%s\n", c.Name)
		for i, n := range c.Units {
			bar := int(c.Speedups[i] / maxSp * width)
			if bar < 1 {
				bar = 1
			}
			fmt.Fprintf(&b, "  %2d units |%-*s| %.2fx\n", n, width, strings.Repeat("#", bar), c.Speedups[i])
		}
	}
	return b.String()
}

// InstructionMix summarizes a workload's dynamic opcode-class mix — a
// sanity view of what each kernel actually executes.
type InstructionMix struct {
	Name                    string
	Total                   uint64
	Loads, Stores, Branches uint64
}

// Mixes computes the dynamic instruction mix of each multiscalar binary
// straight from the memoized oracle runs.
func Mixes(scale Scale) ([]InstructionMix, error) {
	ws := workloads.All()
	out := make([]InstructionMix, len(ws))
	err := runJobs(len(ws), func(i int) error {
		w := ws[i]
		_, o, err := buildOracle(w, asm.ModeMultiscalar, scale)
		if err != nil {
			return fmt.Errorf("%s: %w", w.Name, err)
		}
		out[i] = InstructionMix{
			Name:     w.Name,
			Total:    o.ICount,
			Loads:    o.Loads,
			Stores:   o.Stores,
			Branches: o.Branches,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// FormatMixes renders the dynamic instruction mix table.
func FormatMixes(rows []InstructionMix) string {
	var b strings.Builder
	b.WriteString("Dynamic instruction mix (multiscalar binaries)\n")
	fmt.Fprintf(&b, "%-10s %10s %8s %8s %9s\n", "program", "total", "loads", "stores", "branches")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %10d %7.1f%% %7.1f%% %8.1f%%\n", r.Name, r.Total,
			100*float64(r.Loads)/float64(r.Total),
			100*float64(r.Stores)/float64(r.Total),
			100*float64(r.Branches)/float64(r.Total))
	}
	return b.String()
}
