package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"

	"multiscalar/internal/asm"
	"multiscalar/internal/bench"
	"multiscalar/internal/core"
	"multiscalar/internal/isa"
	"multiscalar/internal/job"
)

// WireJob is the JSON request form of a job.Spec (docs/serve.md). The
// machine is given either as a full canonical config (core
// MarshalCanonical form) or as a preset naming the paper's
// configurations; exactly one program identity must be set.
type WireJob struct {
	// Op: "simulate" (default), "assemble", or "trace" — sugar for
	// simulate with the trace artifact requested.
	Op string `json:"op,omitempty"`

	// Program identity (exactly one).
	Workload string `json:"workload,omitempty"` // suite workload name
	Source   string `json:"source,omitempty"`   // annotated assembly text
	Program  []byte `json:"program,omitempty"`  // .msb container (base64)

	Scale int    `json:"scale,omitempty"` // workload scale (0 = default)
	Mode  string `json:"mode,omitempty"`  // "scalar" | "multiscalar"

	Machine string          `json:"machine,omitempty"` // "auto" | "scalar" | "multiscalar"
	Config  json.RawMessage `json:"config,omitempty"`  // canonical Config JSON
	Preset  *WirePreset     `json:"preset,omitempty"`  // or a paper preset

	Stdin     []byte `json:"stdin,omitempty"` // program input (base64)
	MaxCycles uint64 `json:"max_cycles,omitempty"`
	MaxInstrs uint64 `json:"max_instrs,omitempty"`
	Verify    bool   `json:"verify,omitempty"`
	Trace     bool   `json:"trace,omitempty"`    // request the .mstrc artifact
	Snapshot  bool   `json:"snapshot,omitempty"` // request the finished-machine snapshot
}

// WirePreset names a Section 5.1 configuration: DefaultConfig(units,
// width, ooo), or ScalarConfig(width, ooo) when units <= 1.
type WirePreset struct {
	Units int  `json:"units"`
	Width int  `json:"width,omitempty"` // default 1
	OOO   bool `json:"ooo,omitempty"`
}

func (p *WirePreset) config() core.Config {
	w := p.Width
	if w <= 0 {
		w = 1
	}
	if p.Units <= 1 {
		return core.ScalarConfig(w, p.OOO)
	}
	return core.DefaultConfig(p.Units, w, p.OOO)
}

// Decode converts the wire form to the canonical job.Spec.
func (w *WireJob) Decode() (*job.Spec, error) {
	s := &job.Spec{
		Workload:     w.Workload,
		Source:       w.Source,
		Scale:        w.Scale,
		Stdin:        w.Stdin,
		MaxCycles:    w.MaxCycles,
		MaxInstrs:    w.MaxInstrs,
		Verify:       w.Verify,
		WantTrace:    w.Trace,
		WantSnapshot: w.Snapshot,
	}
	switch w.Op {
	case "", "simulate":
		s.Op = job.OpSimulate
	case "trace":
		s.Op = job.OpSimulate
		s.WantTrace = true
	case "assemble":
		s.Op = job.OpAssemble
	default:
		return nil, fmt.Errorf("unknown op %q (valid: simulate, assemble, trace)", w.Op)
	}
	switch w.Machine {
	case "", "auto":
		s.Machine = job.MachineAuto
	case "scalar":
		s.Machine = job.MachineScalar
	case "multiscalar":
		s.Machine = job.MachineMultiscalar
	default:
		return nil, fmt.Errorf("unknown machine %q (valid: auto, scalar, multiscalar)", w.Machine)
	}
	if len(w.Program) > 0 {
		p, err := isa.ReadProgram(bytes.NewReader(w.Program))
		if err != nil {
			return nil, fmt.Errorf("decoding program: %w", err)
		}
		s.Program = p
	}
	if s.Op == job.OpSimulate {
		switch {
		case len(w.Config) > 0 && w.Preset != nil:
			return nil, errors.New("config and preset are mutually exclusive")
		case len(w.Config) > 0:
			cfg, err := core.UnmarshalCanonicalConfig(w.Config)
			if err != nil {
				return nil, err
			}
			s.Config = cfg
		case w.Preset != nil:
			s.Config = w.Preset.config()
		default:
			return nil, errors.New("simulate jobs need a config or a preset")
		}
	}
	units := 0
	if w.Preset != nil {
		units = w.Preset.Units
	} else if s.Op == job.OpSimulate {
		units = s.Config.NumUnits
	}
	switch w.Mode {
	case "scalar":
		s.Mode = asm.ModeScalar
	case "multiscalar":
		s.Mode = asm.ModeMultiscalar
	case "":
		// The mssim rule: one unit (or interpretation) gets the scalar
		// binary, everything else the annotated multiscalar build.
		if s.Op == job.OpSimulate && units <= 1 && s.Machine != job.MachineMultiscalar {
			s.Mode = asm.ModeScalar
		} else {
			s.Mode = asm.ModeMultiscalar
		}
	default:
		return nil, fmt.Errorf("unknown mode %q (valid: scalar, multiscalar)", w.Mode)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// SubmitRequest is the POST /v1/jobs body.
type SubmitRequest struct {
	Client string  `json:"client,omitempty"`
	Job    WireJob `json:"job"`
}

// BatchRequest is the POST /v1/batch body: an explicit job list, a sweep
// (one base job expanded over unit/width/order axes — one request, a
// whole config sweep), or both.
type BatchRequest struct {
	Client string      `json:"client,omitempty"`
	Jobs   []WireJob   `json:"jobs,omitempty"`
	Sweep  *BatchSweep `json:"sweep,omitempty"`
}

// BatchSweep expands Base over the cross product of the axes. Empty axes
// default to the base preset's value (or units=8, width=1, in-order).
type BatchSweep struct {
	Base   WireJob `json:"base"`
	Units  []int   `json:"units,omitempty"`
	Widths []int   `json:"widths,omitempty"`
	OOO    []bool  `json:"ooo,omitempty"`
}

// Expand returns the sweep's job list.
func (s *BatchSweep) Expand() []WireJob {
	units, widths, ooo := s.Units, s.Widths, s.OOO
	base := s.Base
	bp := WirePreset{Units: 8, Width: 1}
	if base.Preset != nil {
		bp = *base.Preset
	}
	if len(units) == 0 {
		units = []int{bp.Units}
	}
	if len(widths) == 0 {
		w := bp.Width
		if w <= 0 {
			w = 1
		}
		widths = []int{w}
	}
	if len(ooo) == 0 {
		ooo = []bool{bp.OOO}
	}
	var jobs []WireJob
	for _, u := range units {
		for _, w := range widths {
			for _, o := range ooo {
				j := base
				j.Config = nil
				j.Preset = &WirePreset{Units: u, Width: w, OOO: o}
				jobs = append(jobs, j)
			}
		}
	}
	return jobs
}

// JobResponse is one job's slot in a batch response.
type JobResponse struct {
	Index  int     `json:"index"`
	Error  string  `json:"error,omitempty"`
	Result *Result `json:"result,omitempty"`
}

// BatchResponse summarizes a batch submission. Cached counts jobs
// answered without a new execution (memory, disk, or a flight another
// submission started); Executed is the rest.
type BatchResponse struct {
	Count    int            `json:"count"`
	Cached   int            `json:"cached"`
	Executed int            `json:"executed"`
	Errors   int            `json:"errors"`
	Results  []*JobResponse `json:"results"`
}

// NewHandler wraps an Engine in the HTTP/JSON API:
//
//	POST /v1/jobs     one job            (SubmitRequest -> Result)
//	POST /v1/batch    a job list/sweep   (BatchRequest -> BatchResponse)
//	GET  /v1/metrics  engine counters    (Metrics)
//	GET  /healthz     liveness
func NewHandler(e Engine) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			httpError(w, http.StatusMethodNotAllowed, "POST only")
			return
		}
		var req SubmitRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, "decoding request: %v", err)
			return
		}
		spec, err := req.Job.Decode()
		if err != nil {
			httpError(w, http.StatusBadRequest, "bad job: %v", err)
			return
		}
		res, err := e.Submit(r.Context(), clientID(req.Client, r), spec)
		if err != nil {
			httpError(w, http.StatusUnprocessableEntity, "%v", err)
			return
		}
		writeJSON(w, res)
	})
	mux.HandleFunc("/v1/batch", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			httpError(w, http.StatusMethodNotAllowed, "POST only")
			return
		}
		var req BatchRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, "decoding request: %v", err)
			return
		}
		jobs := req.Jobs
		if req.Sweep != nil {
			jobs = append(jobs, req.Sweep.Expand()...)
		}
		if len(jobs) == 0 {
			httpError(w, http.StatusBadRequest, "empty batch: give jobs, a sweep, or both")
			return
		}
		client := clientID(req.Client, r)
		resp := &BatchResponse{Count: len(jobs), Results: make([]*JobResponse, len(jobs))}
		// One batch = one fan-out over the harness worker pool; per-job
		// failures land in their slot instead of aborting the batch.
		_ = bench.RunJobs(len(jobs), func(i int) error {
			jr := &JobResponse{Index: i}
			resp.Results[i] = jr
			spec, err := jobs[i].Decode()
			if err == nil {
				jr.Result, err = e.Submit(r.Context(), client, spec)
			}
			if err != nil {
				jr.Error = err.Error()
			}
			return nil
		})
		for _, jr := range resp.Results {
			switch {
			case jr.Error != "":
				resp.Errors++
			case jr.Result.Cached:
				resp.Cached++
			default:
				resp.Executed++
			}
		}
		writeJSON(w, resp)
	})
	mux.HandleFunc("/v1/metrics", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, e.Metrics())
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// clientID names the fairness bucket: the request's explicit client
// field when present, else the remote host.
func clientID(explicit string, r *http.Request) string {
	if explicit != "" {
		return explicit
	}
	if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil && host != "" {
		return host
	}
	if r.RemoteAddr != "" {
		return r.RemoteAddr
	}
	return "anonymous"
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(v); err != nil {
		httpError(w, http.StatusInternalServerError, "encoding response: %v", err)
	}
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	data, _ := json.Marshal(map[string]string{"error": fmt.Sprintf(format, args...)})
	w.Write(append(data, '\n'))
}
