package multiscalar_test

import (
	"os"
	"path/filepath"
	"testing"

	"multiscalar"
)

// TestTestdataPrograms keeps the example .s files in testdata/ working:
// they assemble in both modes, interpret cleanly, and (when annotated)
// verify on a multiscalar machine.
func TestTestdataPrograms(t *testing.T) {
	files, err := filepath.Glob("testdata/*.s")
	if err != nil || len(files) == 0 {
		t.Fatalf("no testdata programs: %v", err)
	}
	for _, f := range files {
		f := f
		t.Run(filepath.Base(f), func(t *testing.T) {
			src, err := os.ReadFile(f)
			if err != nil {
				t.Fatal(err)
			}
			sc, err := multiscalar.Assemble(string(src))
			if err != nil {
				t.Fatalf("scalar assemble: %v", err)
			}
			oracle, err := multiscalar.Interpret(sc.Prog, multiscalar.WithMaxInstrs(1<<24))
			if err != nil {
				t.Fatalf("interpret: %v", err)
			}
			if oracle.ExitCode != 0 {
				t.Fatalf("exit code %d", oracle.ExitCode)
			}

			ms, err := multiscalar.Assemble(string(src), multiscalar.WithMode(multiscalar.ModeMultiscalar))
			if err != nil {
				t.Fatalf("multiscalar assemble: %v", err)
			}
			msProg := ms.Prog
			if len(msProg.Tasks) == 0 {
				// Un-annotated example: partition it automatically.
				if err := multiscalar.Partition(msProg, multiscalar.PartitionOptions{}); err != nil {
					t.Fatalf("partition: %v", err)
				}
			}
			res, err := multiscalar.Run(msProg, multiscalar.DefaultConfig(8, 1, false), multiscalar.WithVerify())
			if err != nil {
				t.Fatalf("verify: %v", err)
			}
			if res.Out != oracle.Out {
				t.Fatalf("out = %q, scalar-build oracle = %q", res.Out, oracle.Out)
			}
		})
	}
}
