// msbench regenerates the paper's evaluation section: Table 1 (functional
// unit latencies, printed from the configuration), Table 2 (dynamic
// instruction counts), Tables 3 and 4 (speedups and prediction accuracies
// for in-order and out-of-order units), the Section 3 cycle-distribution
// breakdown, and the ablation sweeps.
//
// Usage:
//
//	msbench -table 3              one table at full benchmark scale
//	msbench -all -quick           everything at the fast test scale
//	msbench -breakdown -units 8
//	msbench -ablate
package main

import (
	"flag"
	"fmt"
	"os"

	"multiscalar/internal/bench"
	"multiscalar/internal/isa"
)

func main() {
	var (
		table     = flag.Int("table", 0, "print one table (1-4)")
		all       = flag.Bool("all", false, "print every table")
		breakdown = flag.Bool("breakdown", false, "print the Section 3 cycle distribution")
		ablate    = flag.Bool("ablate", false, "run the ablation sweeps")
		sweep     = flag.Bool("sweep", false, "print speedup-vs-units curves (figure-style view)")
		mix       = flag.Bool("mix", false, "print the dynamic instruction mix of the benchmarks")
		units     = flag.Int("units", 8, "unit count for -breakdown")
		quick     = flag.Bool("quick", false, "use fast test-scale inputs")
	)
	flag.Parse()

	scale := bench.Scale(0)
	if *quick {
		scale = -1
	}

	ran := false
	if *all || *table == 1 {
		printTable1()
		ran = true
	}
	if *all || *table == 2 {
		rows, err := bench.Table2(scale)
		check(err)
		fmt.Println(bench.FormatTable2(rows))
		ran = true
	}
	if *all || *table == 3 {
		for _, width := range []int{1, 2} {
			rows, err := bench.PerfTable(width, false, scale)
			check(err)
			fmt.Println(bench.FormatPerfTable(
				fmt.Sprintf("Table 3: in-order %d-way issue units", width), rows))
		}
		ran = true
	}
	if *all || *table == 4 {
		for _, width := range []int{1, 2} {
			rows, err := bench.PerfTable(width, true, scale)
			check(err)
			fmt.Println(bench.FormatPerfTable(
				fmt.Sprintf("Table 4: out-of-order %d-way issue units", width), rows))
		}
		ran = true
	}
	if *breakdown || *all {
		rows, err := bench.Breakdown(*units, scale)
		check(err)
		fmt.Println(bench.FormatBreakdown(rows))
		ran = true
	}
	if *ablate || *all {
		runAblations(scale)
		ran = true
	}
	if *sweep || *all {
		curves, err := bench.SpeedupCurves(1, false, scale, []int{2, 4, 8, 16})
		check(err)
		fmt.Println(bench.FormatCurves("Speedup vs unit count (1-way in-order units)", curves))
		ran = true
	}
	if *mix || *all {
		rows, err := bench.Mixes(scale)
		check(err)
		fmt.Println(bench.FormatMixes(rows))
		ran = true
	}
	if !ran {
		flag.Usage()
		os.Exit(2)
	}
}

func printTable1() {
	l := isa.Table1()
	fmt.Println("Table 1: functional unit latencies (cycles)")
	fmt.Printf("  %-12s %2d    %-14s %2d\n", "Add/Sub", l.IntAddSub, "SP Add/Sub", l.SPAddSub)
	fmt.Printf("  %-12s %2d    %-14s %2d\n", "Shift/Logic", l.ShiftLogic, "SP Multiply", l.SPMul)
	fmt.Printf("  %-12s %2d    %-14s %2d\n", "Multiply", l.IntMul, "SP Divide", l.SPDiv)
	fmt.Printf("  %-12s %2d    %-14s %2d\n", "Divide", l.IntDiv, "DP Add/Sub", l.DPAddSub)
	fmt.Printf("  %-12s %2d    %-14s %2d\n", "Mem Store", l.MemStore, "DP Multiply", l.DPMul)
	fmt.Printf("  %-12s %2d    %-14s %2d\n", "Mem Load", l.MemLoad, "DP Divide", l.DPDiv)
	fmt.Printf("  %-12s %2d\n\n", "Branch", l.Branch)
}

func runAblations(scale bench.Scale) {
	rows, err := bench.UnitSweep("example", scale, []int{1, 2, 4, 8, 16})
	check(err)
	fmt.Println(bench.FormatAblation("Ablation: unit count (example)", rows))

	rows, err = bench.RingLatencySweep("compress", scale, []int{0, 1, 2, 4, 8})
	check(err)
	fmt.Println(bench.FormatAblation("Ablation: ring hop latency (compress, 8 units)", rows))

	rows, err = bench.ARBSweep("tomcatv", scale, []int{2, 8, 256})
	check(err)
	fmt.Println(bench.FormatAblation("Ablation: ARB capacity and overflow policy (tomcatv, 8 units)", rows))

	rows, err = bench.ForwardingAblation("wc", scale)
	check(err)
	fmt.Println(bench.FormatAblation("Ablation: early forwarding vs completion flush (wc, 8 units)", rows))

	rows, err = bench.PredictorAblation("gcc", scale)
	check(err)
	fmt.Println(bench.FormatAblation("Ablation: PAs vs static task prediction (gcc, 8 units)", rows))

	rows, err = bench.SharedFUAblation("tomcatv", scale)
	check(err)
	fmt.Println(bench.FormatAblation("Ablation: private vs shared FP/complex units (tomcatv, 8 units)", rows))
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "msbench:", err)
		os.Exit(1)
	}
}
