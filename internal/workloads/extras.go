package workloads

import "strings"

// Extra workloads beyond the paper's suite: conventional kernels that
// exercise the same machinery and give library users more substrates to
// experiment with. They are excluded from the paper-table harness
// (Workload.Extra) but run in the full test matrix.

func init() {
	register(&Workload{
		Name:         "matmul",
		Description:  "integer matrix multiply, one result row per task (extra)",
		Extra:        true,
		DefaultScale: 24, // matrix dimension
		TestScale:    10,
		Source:       matmulSource,
		Paper:        extraPaperRow,
	})
	register(&Workload{
		Name:         "sieve",
		Description:  "sieve of Eratosthenes, one prime's clearing pass per task (extra)",
		Extra:        true,
		DefaultScale: 2000, // sieve size
		TestScale:    300,
		Source:       sieveSource,
		Paper:        extraPaperRow,
	})
	register(&Workload{
		Name:         "hashmix",
		Description:  "per-key hash via a function task; ABI-conservative hand annotations (extra)",
		Extra:        true,
		DefaultScale: 300, // number of keys
		TestScale:    60,
		Source:       hashmixSource,
		Paper:        extraPaperRow,
	})
	register(&Workload{
		Name:         "bsearch",
		Description:  "binary search per query via a function task with a data-dependent loop (extra)",
		Extra:        true,
		DefaultScale: 256, // number of queries
		TestScale:    50,
		Source:       bsearchSource,
		Paper:        extraPaperRow,
	})
}

// extraPaperRow marks reference numbers as not-applicable (non-zero so
// the presence checks pass, but flagged by Extra).
var extraPaperRow = PaperRow{
	ScalarM: -1, MultiM: -1, PctIncrease: -1,
	InOrder1: PaperPerf{ScalarIPC: -1, Speedup4: -1, Speedup8: -1},
	InOrder2: PaperPerf{ScalarIPC: -1, Speedup4: -1, Speedup8: -1},
	OOO1:     PaperPerf{ScalarIPC: -1, Speedup4: -1, Speedup8: -1},
	OOO2:     PaperPerf{ScalarIPC: -1, Speedup4: -1, Speedup8: -1},
}

func matmulSource(scale int) string {
	n := scale
	var sb strings.Builder
	sb.WriteString("\t.data\n")
	sb.WriteString("ma:\t.space " + itoa(4*n*n) + "\n")
	sb.WriteString("mpad1:\t.space 192\n")
	sb.WriteString("mb:\t.space " + itoa(4*n*n) + "\n")
	sb.WriteString("mpad2:\t.space 192\n")
	sb.WriteString("mc:\t.space " + itoa(4*n*n) + "\n")
	sb.WriteString(`
	.text
main:
	; init: a[i][j] = i+j, b[i][j] = i-j (single init task per row)
	li   $s0, 0 !f
`)
	sb.WriteString("\tli   $s5, " + itoa(n) + " !f\n")
	sb.WriteString("\tli   $s6, " + itoa(4*n) + " !f\n")
	sb.WriteString(`	j    MIROW !s
MIROW:
	move $t9, $s0
	.msonly addi $s0, $s0, 1 !f
	.msonly slt  $at, $s0, $s5
	mul  $t0, $t9, $s6       ; row base
	li   $t1, 0
MICOL:
	add  $t2, $t9, $t1
	sll  $t3, $t1, 2
	add  $t3, $t3, $t0
	sw   $t2, ma($t3)
	sub  $t2, $t9, $t1
	sw   $t2, mb($t3)
	addi $t1, $t1, 1
	bne  $t1, $s5, MICOL
	.msonly bnez $at, MIROW !s
	.sconly addi $s0, $s0, 1
	.sconly bne  $s0, $s5, MIROW

MSETUP:
	li   $s0, 0 !f
	j    MROW !s

	; c[i] = a[i] * b : one result row per task
MROW:
	move $t9, $s0
	.msonly addi $s0, $s0, 1 !f
	.msonly slt  $at, $s0, $s5
	mul  $t0, $t9, $s6       ; a row base / c row base
	li   $t1, 0              ; j
MCOL:
	li   $t2, 0              ; k
	li   $t3, 0              ; acc
MDOT:
	sll  $t4, $t2, 2
	add  $t4, $t4, $t0
	lw   $t5, ma($t4)        ; a[i][k]
	mul  $t6, $t2, $s6
	sll  $t7, $t1, 2
	add  $t6, $t6, $t7
	lw   $t7, mb($t6)        ; b[k][j]
	mul  $t5, $t5, $t7
	add  $t3, $t3, $t5
	addi $t2, $t2, 1
	bne  $t2, $s5, MDOT
	sll  $t4, $t1, 2
	add  $t4, $t4, $t0
	sw   $t3, mc($t4)
	addi $t1, $t1, 1
	bne  $t1, $s5, MCOL
	.msonly bnez $at, MROW !s
	.sconly addi $s0, $s0, 1
	.sconly bne  $s0, $s5, MROW

MDONE:
	; checksum the diagonal
	li   $t0, 0
	li   $s1, 0
MCHK:
	mul  $t1, $t0, $s6
	sll  $t2, $t0, 2
	add  $t1, $t1, $t2
	lw   $t2, mc($t1)
	add  $s1, $s1, $t2
	addi $t0, $t0, 1
	bne  $t0, $s5, MCHK
	move $a0, $s1
` + printInt + exitSeq + `
	.task main targets=MIROW create=$s0,$s5,$s6
	.task MIROW targets=MIROW,MSETUP create=$s0
	.task MSETUP targets=MROW create=$s0
	.task MROW targets=MROW,MDONE create=$s0
	.task MDONE
`)
	return sb.String()
}

func sieveSource(scale int) string {
	n := scale
	var sb strings.Builder
	sb.WriteString("\t.data\n")
	sb.WriteString("flags:\t.space " + itoa(n) + "\n")
	sb.WriteString(`
	.text
main:
	li   $s0, 2 !f           ; candidate
`)
	sb.WriteString("\tli   $s5, " + itoa(n) + " !f\n")
	sb.WriteString(`	j    CAND !s

	; one candidate per task: if still prime, clear its multiples — the
	; clearing loops have wildly different lengths (load imbalance), and
	; a task may read a flag a predecessor is still clearing (squashes)
CAND:
	move $t9, $s0
	.msonly addi $s0, $s0, 1 !f
	.msonly mul  $t8, $s0, $s0
	.msonly slt  $t8, $t8, $s5
	lbu  $t0, flags($t9)
	bnez $t0, CNEXT          ; composite already
	add  $t1, $t9, $t9       ; first multiple: 2p
	li   $t2, 1
CLEAR:
	slt  $at, $t1, $s5
	beqz $at, CNEXT
	sb   $t2, flags($t1)
	add  $t1, $t1, $t9
	j    CLEAR
CNEXT:
	.sconly addi $s0, $s0, 1
	.sconly mul  $t8, $s0, $s0
	.sconly slt  $t8, $t8, $s5
	bnez $t8, CAND !s

COUNT:
	; count primes up to n
	li   $t0, 2
	li   $s1, 0
CLOOP:
	lbu  $t1, flags($t0)
	bnez $t1, CSKIP
	addi $s1, $s1, 1
CSKIP:
	addi $t0, $t0, 1
	bne  $t0, $s5, CLOOP
	move $a0, $s1
` + printInt + exitSeq + `
	.task main targets=CAND create=$s0,$s5
	.task CAND targets=CAND,COUNT create=$s0
	.task COUNT
`)
	return sb.String()
}

// hashmixSource exercises the paper's function tasks: each loop
// iteration calls a hash routine that is its own task (stop-tagged jal
// with pushra/call metadata) and accumulates the result in the
// continuation task. The hash body is hand-annotated the way a careful
// author following the ABI return contract writes it: every written
// register the ABI calls live-at-return ($v0 plus the $v1/$s7 scratch)
// goes into the create mask and is forwarded at its last write — tight
// against the documented contract, looser than the flow-derived truth
// (no caller reads $v1 or $s7), which is exactly the slack the
// annotation optimizer recovers.
func hashmixSource(scale int) string {
	n := scale
	r := newRNG(0x4a51)
	var keys []int
	for i := 0; i < n; i++ {
		keys = append(keys, r.intn(100000))
	}
	var sb strings.Builder
	sb.WriteString("\t.data\nhkeys:\n")
	sb.WriteString(wordLines(keys))
	sb.WriteString(`
	.text
main:
	li   $s0, 0 !f           ; key index
	li   $s1, 0 !f           ; checksum
`)
	sb.WriteString("\tli   $s5, " + itoa(n) + " !f\n")
	sb.WriteString(`	j    HLOOK !s

	; one key per round trip: load the argument, call the hash function
	; as its own task
HLOOK:
	sll  $t0, $s0, 2
	lw   $a0, hkeys($t0) !f
	jal  HASH !s !f
HCONT:
	add  $s1, $s1, $v0 !f
	addi $s0, $s0, 1 !f
	bne  $s0, $s5, HLOOK !s

HDONE:
	move $a0, $s1
` + printInt + exitSeq + `

	; mix one key; $v1 and $s7 are scratch the ABI view keeps live
HASH:
	sll  $t0, $a0, 3
	xor  $v1, $t0, $a0 !f
	srl  $t1, $v1, 5
	add  $s7, $v1, $t1 !f
	andi $t2, $s7, 1023
	mul  $t3, $t2, 37
	add  $v0, $t3, $a0
	xor  $v0, $v0, $s7 !f
	jr   $ra !s

	.task main targets=HLOOK create=$s0,$s1,$s5
	.task HLOOK targets=HASH pushra=HCONT call=HASH create=$a0,$ra
	.task HASH targets=ret create=$v0,$v1,$s7
	.task HCONT targets=HLOOK,HDONE create=$s0,$s1
	.task HDONE
`)
	return sb.String()
}

// bsearchSource: each query task calls a binary-search function task
// whose loop length is data-dependent (variable-latency function tasks).
// Like hashmix, the hand annotations follow the ABI return contract:
// the probe scratch ($s6) and depth counter ($v1) are created and
// released even though no caller reads them.
func bsearchSource(scale int) string {
	n := scale
	const tsize = 64
	r := newRNG(0xb5ea)
	var queries []int
	for i := 0; i < n; i++ {
		queries = append(queries, r.intn(3*tsize+10))
	}
	var table []int
	for i := 0; i < tsize; i++ {
		table = append(table, 3*i+1)
	}
	var sb strings.Builder
	sb.WriteString("\t.data\nbtable:\n")
	sb.WriteString(wordLines(table))
	sb.WriteString("bqueries:\n")
	sb.WriteString(wordLines(queries))
	sb.WriteString(`
	.text
main:
	li   $s0, 0 !f           ; query index
	li   $s1, 0 !f           ; checksum
`)
	sb.WriteString("\tli   $s5, " + itoa(n) + " !f\n")
	sb.WriteString(`	j    QLOOK !s

QLOOK:
	sll  $t0, $s0, 2
	lw   $a0, bqueries($t0) !f
	jal  BFIND !s !f
QCONT:
	add  $s1, $s1, $v0 !f
	addi $s0, $s0, 1 !f
	bne  $s0, $s5, QLOOK !s

QDONE:
	move $a0, $s1
` + printInt + exitSeq + `

	; binary search for $a0; returns the index in $v0 or -1. The probe
	; value ($s6) and depth counter ($v1) are ABI-live scratch.
BFIND:
	li   $t0, 0              ; lo
`)
	sb.WriteString("\tli   $t1, " + itoa(tsize) + "       ; hi\n")
	sb.WriteString(`	li   $v1, 0
	li   $s6, 0
BLOOP:
	slt  $at, $t0, $t1
	beqz $at, BMISS
	add  $t2, $t0, $t1
	srl  $t2, $t2, 1
	sll  $t3, $t2, 2
	lw   $s6, btable($t3)
	addi $v1, $v1, 1
	beq  $s6, $a0, BHIT
	slt  $at, $s6, $a0
	beqz $at, BHI
	addi $t0, $t2, 1
	j    BLOOP
BHI:
	move $t1, $t2
	j    BLOOP
BHIT:
	move $v0, $t2 !f
	.msonly release $v1
	.msonly release $s6
	jr   $ra !s
BMISS:
	li   $v0, -1 !f
	.msonly release $v1
	.msonly release $s6
	jr   $ra !s

	.task main targets=QLOOK create=$s0,$s1,$s5
	.task QLOOK targets=BFIND pushra=QCONT call=BFIND create=$a0,$ra
	.task BFIND targets=ret create=$v0,$v1,$s6
	.task QCONT targets=QLOOK,QDONE create=$s0,$s1
	.task QDONE
`)
	return sb.String()
}
