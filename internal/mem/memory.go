// Package mem provides the memory hierarchy: the backing store shared by
// all simulators plus the timing models from Section 5.1 of the paper —
// the split-transaction memory bus, direct-mapped caches, and the
// interleaved data banks behind a crossbar.
package mem

import "bytes"

const pageBits = 12
const pageSize = 1 << pageBits

// Memory is a sparse, paged, big-endian, byte-addressable store over the
// full 32-bit address space. The zero value is ready to use.
//
// A Memory may be seeded from an immutable Image (NewMemoryFromImage):
// image pages are shared read-only between every Memory built from the
// image and copied into private pages on first write, so constructing a
// machine over a large data segment costs O(1) instead of one copy of
// the segment. Sharing the image across concurrently running Memories
// is safe — image pages are never written.
//
// Memory is not safe for concurrent use: even reads update the internal
// last-page cache. Every simulation run owns its Memory, so this only
// matters if one instance is shared across goroutines.
type Memory struct {
	pages map[uint32]*[pageSize]byte
	ro    *Image // copy-on-write base image; nil when unseeded

	// Last-page cache: simulated accesses are heavily page-local, so one
	// comparison usually replaces the map lookup. lastRO marks a cached
	// image page, which must be promoted before it can be written.
	lastKey  uint32
	lastPage *[pageSize]byte
	lastRO   bool
}

// Image is an immutable page set used to seed Memories copy-on-write.
// Build one with Memory.Image.
type Image struct {
	pages map[uint32]*[pageSize]byte
}

// NewMemory returns an empty memory.
func NewMemory() *Memory {
	return &Memory{pages: make(map[uint32]*[pageSize]byte)}
}

// NewMemoryFromImage returns a memory whose initial contents are the
// image. The image is shared, not copied; writes go to private pages.
func NewMemoryFromImage(img *Image) *Memory {
	return &Memory{pages: make(map[uint32]*[pageSize]byte), ro: img}
}

// Image deep-copies the memory's current contents into an immutable
// image suitable for seeding further Memories.
func (m *Memory) Image() *Image {
	img := &Image{pages: make(map[uint32]*[pageSize]byte, len(m.pages))}
	if m.ro != nil {
		for key, p := range m.ro.pages {
			img.pages[key] = p // immutable, safe to alias
		}
	}
	for key, p := range m.pages {
		q := new([pageSize]byte)
		*q = *p
		img.pages[key] = q
	}
	return img
}

func (m *Memory) page(addr uint32, create bool) *[pageSize]byte {
	key := addr >> pageBits
	if p := m.lastPage; p != nil && m.lastKey == key && !(create && m.lastRO) {
		return p
	}
	if m.pages == nil {
		if !create && m.ro == nil {
			return nil
		}
		m.pages = make(map[uint32]*[pageSize]byte)
	}
	p := m.pages[key]
	if p == nil {
		var base *[pageSize]byte
		if m.ro != nil {
			base = m.ro.pages[key]
		}
		if !create {
			if base == nil {
				return nil
			}
			m.lastKey, m.lastPage, m.lastRO = key, base, true
			return base
		}
		p = new([pageSize]byte)
		if base != nil {
			*p = *base // promote: copy the image page before writing
		}
		m.pages[key] = p
	}
	m.lastKey, m.lastPage, m.lastRO = key, p, false
	return p
}

// Byte returns the byte at addr (0 if never written).
func (m *Memory) Byte(addr uint32) byte {
	p := m.page(addr, false)
	if p == nil {
		return 0
	}
	return p[addr&(pageSize-1)]
}

// SetByte stores one byte.
func (m *Memory) SetByte(addr uint32, v byte) {
	m.page(addr, true)[addr&(pageSize-1)] = v
}

// ReadN reads size bytes starting at addr as a big-endian unsigned value.
// size must be 1, 2, 4 or 8.
func (m *Memory) ReadN(addr uint32, size int) uint64 {
	var v uint64
	off := int(addr & (pageSize - 1))
	if off+size <= pageSize {
		p := m.page(addr, false)
		if p == nil {
			return 0
		}
		for _, b := range p[off : off+size] {
			v = v<<8 | uint64(b)
		}
		return v
	}
	for i := 0; i < size; i++ { // page-crossing access
		v = v<<8 | uint64(m.Byte(addr+uint32(i)))
	}
	return v
}

// WriteN stores the low size bytes of v big-endian at addr.
func (m *Memory) WriteN(addr uint32, size int, v uint64) {
	off := int(addr & (pageSize - 1))
	if off+size <= pageSize {
		p := m.page(addr, true)
		for i := size - 1; i >= 0; i-- {
			p[off+i] = byte(v)
			v >>= 8
		}
		return
	}
	for i := size - 1; i >= 0; i-- { // page-crossing access
		m.SetByte(addr+uint32(i), byte(v))
		v >>= 8
	}
}

// ReadWord reads a 32-bit big-endian word.
func (m *Memory) ReadWord(addr uint32) uint32 { return uint32(m.ReadN(addr, 4)) }

// WriteWord stores a 32-bit big-endian word.
func (m *Memory) WriteWord(addr uint32, v uint32) { m.WriteN(addr, 4, uint64(v)) }

// WriteBytes copies buf into memory starting at addr.
func (m *Memory) WriteBytes(addr uint32, buf []byte) {
	for len(buf) > 0 {
		p := m.page(addr, true)
		off := int(addr & (pageSize - 1))
		n := copy(p[off:], buf)
		buf = buf[n:]
		addr += uint32(n)
	}
}

// Bytes copies n bytes starting at addr into a new slice.
func (m *Memory) Bytes(addr uint32, n int) []byte {
	out := make([]byte, n)
	for dst := out; len(dst) > 0; {
		off := int(addr & (pageSize - 1))
		chunk := pageSize - off
		if chunk > len(dst) {
			chunk = len(dst)
		}
		if p := m.page(addr, false); p != nil {
			copy(dst[:chunk], p[off:off+chunk])
		} // missing pages read as zeros, which out already holds
		dst = dst[chunk:]
		addr += uint32(chunk)
	}
	return out
}

// ReadCString reads a NUL-terminated string starting at addr, up to max
// bytes.
func (m *Memory) ReadCString(addr uint32, max int) string {
	var out []byte
	for max > 0 {
		p := m.page(addr, false)
		if p == nil {
			return string(out) // an absent page is all NULs
		}
		off := int(addr & (pageSize - 1))
		chunk := pageSize - off
		if chunk > max {
			chunk = max
		}
		seg := p[off : off+chunk]
		if i := bytes.IndexByte(seg, 0); i >= 0 {
			return string(append(out, seg[:i]...))
		}
		out = append(out, seg...)
		addr += uint32(chunk)
		max -= chunk
	}
	return string(out)
}

// Equal reports whether two memories hold identical contents.
func (m *Memory) Equal(o *Memory) bool {
	return m.subsetOf(o) && o.subsetOf(m)
}

// peekPage returns the page holding addr's page key without creating or
// promoting anything: the private page if one exists, else the image
// page, else nil.
func (m *Memory) peekPage(key uint32) *[pageSize]byte {
	if p := m.pages[key]; p != nil {
		return p
	}
	if m.ro != nil {
		return m.ro.pages[key]
	}
	return nil
}

func (m *Memory) subsetOf(o *Memory) bool {
	check := func(key uint32, p *[pageSize]byte) bool {
		q := o.peekPage(key)
		if q == nil {
			for _, b := range p {
				if b != 0 {
					return false
				}
			}
			return true
		}
		return *p == *q
	}
	for key, p := range m.pages {
		if !check(key, p) {
			return false
		}
	}
	if m.ro != nil {
		for key, p := range m.ro.pages {
			if m.pages[key] == nil && !check(key, p) {
				return false
			}
		}
	}
	return true
}
