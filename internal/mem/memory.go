// Package mem provides the memory hierarchy: the backing store shared by
// all simulators plus the timing models from Section 5.1 of the paper —
// the split-transaction memory bus, direct-mapped caches, and the
// interleaved data banks behind a crossbar.
package mem

import "bytes"

const pageBits = 12
const pageSize = 1 << pageBits

// Memory is a sparse, paged, big-endian, byte-addressable store over the
// full 32-bit address space. The zero value is ready to use.
//
// Memory is not safe for concurrent use: even reads update the internal
// last-page cache. Every simulation run owns its Memory, so this only
// matters if one instance is shared across goroutines.
type Memory struct {
	pages map[uint32]*[pageSize]byte

	// Last-page cache: simulated accesses are heavily page-local, so one
	// comparison usually replaces the map lookup.
	lastKey  uint32
	lastPage *[pageSize]byte
}

// NewMemory returns an empty memory.
func NewMemory() *Memory {
	return &Memory{pages: make(map[uint32]*[pageSize]byte)}
}

func (m *Memory) page(addr uint32, create bool) *[pageSize]byte {
	key := addr >> pageBits
	if p := m.lastPage; p != nil && m.lastKey == key {
		return p
	}
	if m.pages == nil {
		if !create {
			return nil
		}
		m.pages = make(map[uint32]*[pageSize]byte)
	}
	p := m.pages[key]
	if p == nil {
		if !create {
			return nil
		}
		p = new([pageSize]byte)
		m.pages[key] = p
	}
	m.lastKey, m.lastPage = key, p
	return p
}

// Byte returns the byte at addr (0 if never written).
func (m *Memory) Byte(addr uint32) byte {
	p := m.page(addr, false)
	if p == nil {
		return 0
	}
	return p[addr&(pageSize-1)]
}

// SetByte stores one byte.
func (m *Memory) SetByte(addr uint32, v byte) {
	m.page(addr, true)[addr&(pageSize-1)] = v
}

// ReadN reads size bytes starting at addr as a big-endian unsigned value.
// size must be 1, 2, 4 or 8.
func (m *Memory) ReadN(addr uint32, size int) uint64 {
	var v uint64
	off := int(addr & (pageSize - 1))
	if off+size <= pageSize {
		p := m.page(addr, false)
		if p == nil {
			return 0
		}
		for _, b := range p[off : off+size] {
			v = v<<8 | uint64(b)
		}
		return v
	}
	for i := 0; i < size; i++ { // page-crossing access
		v = v<<8 | uint64(m.Byte(addr+uint32(i)))
	}
	return v
}

// WriteN stores the low size bytes of v big-endian at addr.
func (m *Memory) WriteN(addr uint32, size int, v uint64) {
	off := int(addr & (pageSize - 1))
	if off+size <= pageSize {
		p := m.page(addr, true)
		for i := size - 1; i >= 0; i-- {
			p[off+i] = byte(v)
			v >>= 8
		}
		return
	}
	for i := size - 1; i >= 0; i-- { // page-crossing access
		m.SetByte(addr+uint32(i), byte(v))
		v >>= 8
	}
}

// ReadWord reads a 32-bit big-endian word.
func (m *Memory) ReadWord(addr uint32) uint32 { return uint32(m.ReadN(addr, 4)) }

// WriteWord stores a 32-bit big-endian word.
func (m *Memory) WriteWord(addr uint32, v uint32) { m.WriteN(addr, 4, uint64(v)) }

// WriteBytes copies buf into memory starting at addr.
func (m *Memory) WriteBytes(addr uint32, buf []byte) {
	for len(buf) > 0 {
		p := m.page(addr, true)
		off := int(addr & (pageSize - 1))
		n := copy(p[off:], buf)
		buf = buf[n:]
		addr += uint32(n)
	}
}

// Bytes copies n bytes starting at addr into a new slice.
func (m *Memory) Bytes(addr uint32, n int) []byte {
	out := make([]byte, n)
	for dst := out; len(dst) > 0; {
		off := int(addr & (pageSize - 1))
		chunk := pageSize - off
		if chunk > len(dst) {
			chunk = len(dst)
		}
		if p := m.page(addr, false); p != nil {
			copy(dst[:chunk], p[off:off+chunk])
		} // missing pages read as zeros, which out already holds
		dst = dst[chunk:]
		addr += uint32(chunk)
	}
	return out
}

// ReadCString reads a NUL-terminated string starting at addr, up to max
// bytes.
func (m *Memory) ReadCString(addr uint32, max int) string {
	var out []byte
	for max > 0 {
		p := m.page(addr, false)
		if p == nil {
			return string(out) // an absent page is all NULs
		}
		off := int(addr & (pageSize - 1))
		chunk := pageSize - off
		if chunk > max {
			chunk = max
		}
		seg := p[off : off+chunk]
		if i := bytes.IndexByte(seg, 0); i >= 0 {
			return string(append(out, seg[:i]...))
		}
		out = append(out, seg...)
		addr += uint32(chunk)
		max -= chunk
	}
	return string(out)
}

// Equal reports whether two memories hold identical contents.
func (m *Memory) Equal(o *Memory) bool {
	return m.subsetOf(o) && o.subsetOf(m)
}

func (m *Memory) subsetOf(o *Memory) bool {
	for key, p := range m.pages {
		var q *[pageSize]byte
		if o.pages != nil {
			q = o.pages[key]
		}
		if q == nil {
			for _, b := range p {
				if b != 0 {
					return false
				}
			}
			continue
		}
		if *p != *q {
			return false
		}
	}
	return true
}
