package isa

import (
	"math/bits"
	"strings"
)

// RegMask is a set of architectural registers, one bit per register over
// the combined integer + floating-point name space. Create masks and accum
// masks (Section 2.2) are RegMasks.
type RegMask uint64

// MaskOf builds a mask containing the given registers.
func MaskOf(regs ...Reg) RegMask {
	var m RegMask
	for _, r := range regs {
		m = m.Set(r)
	}
	return m
}

// Set returns m with register r added. Adding $zero is a no-op: $zero is
// never created, forwarded, or reserved.
func (m RegMask) Set(r Reg) RegMask {
	if r == RegZero || !r.Valid() {
		return m
	}
	return m | 1<<uint(r)
}

// Clear returns m with register r removed.
func (m RegMask) Clear(r Reg) RegMask { return m &^ (1 << uint(r)) }

// Has reports whether register r is in the mask.
func (m RegMask) Has(r Reg) bool { return m&(1<<uint(r)) != 0 }

// Union returns the union of the two masks.
func (m RegMask) Union(o RegMask) RegMask { return m | o }

// Intersect returns the intersection of the two masks.
func (m RegMask) Intersect(o RegMask) RegMask { return m & o }

// Minus returns the registers in m that are not in o.
func (m RegMask) Minus(o RegMask) RegMask { return m &^ o }

// Count returns the number of registers in the mask.
func (m RegMask) Count() int { return bits.OnesCount64(uint64(m)) }

// Empty reports whether the mask contains no registers.
func (m RegMask) Empty() bool { return m == 0 }

// Regs returns the registers in the mask in ascending order.
func (m RegMask) Regs() []Reg {
	if m == 0 {
		return nil
	}
	out := make([]Reg, 0, m.Count())
	for v := uint64(m); v != 0; v &= v - 1 {
		out = append(out, Reg(bits.TrailingZeros64(v)))
	}
	return out
}

// ForEach calls f for each register in the mask in ascending order.
func (m RegMask) ForEach(f func(Reg)) {
	for v := uint64(m); v != 0; v &= v - 1 {
		f(Reg(bits.TrailingZeros64(v)))
	}
}

// String renders the mask as a comma-separated register list, e.g.
// "{$a0,$t0,$s1}".
func (m RegMask) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	m.ForEach(func(r Reg) {
		if !first {
			b.WriteByte(',')
		}
		first = false
		b.WriteString(r.String())
	})
	b.WriteByte('}')
	return b.String()
}
