package bench

import (
	"fmt"
	"strings"

	"multiscalar/internal/arb"
	"multiscalar/internal/asm"
	"multiscalar/internal/core"
	"multiscalar/internal/interp"
	"multiscalar/internal/isa"
	"multiscalar/internal/workloads"
)

// AblationRow is one configuration point of an ablation sweep.
type AblationRow struct {
	Label   string
	Cycles  uint64
	Speedup float64 // vs the sweep's baseline row
	Extra   string
}

// runMSConfig runs one workload's multiscalar binary under cfg, verifying
// against the oracle; prog may be pre-transformed.
func runMSConfig(p *isa.Program, cfg core.Config) (*core.Result, error) {
	want, wout, err := oracleCount(p)
	if err != nil {
		return nil, err
	}
	env := interp.NewSysEnv()
	m, err := core.NewMultiscalar(p, env, cfg)
	if err != nil {
		return nil, err
	}
	res, err := m.Run()
	if err != nil {
		return nil, err
	}
	if res.Out != wout || res.Committed != want {
		return nil, fmt.Errorf("ablation run diverged from oracle")
	}
	return res, nil
}

// UnitSweep measures cycles across unit counts (the window-size knob the
// whole paradigm turns on).
func UnitSweep(name string, scale Scale, counts []int) ([]AblationRow, error) {
	w := workloads.Get(name)
	if w == nil {
		return nil, fmt.Errorf("unknown workload %q", name)
	}
	p, err := w.Build(asm.ModeMultiscalar, scale.of(w))
	if err != nil {
		return nil, err
	}
	var rows []AblationRow
	var base uint64
	for _, n := range counts {
		res, err := runMSConfig(p, core.DefaultConfig(n, 1, false))
		if err != nil {
			return nil, fmt.Errorf("units=%d: %w", n, err)
		}
		if base == 0 {
			base = res.Cycles
		}
		rows = append(rows, AblationRow{
			Label:   fmt.Sprintf("%d units", n),
			Cycles:  res.Cycles,
			Speedup: float64(base) / float64(res.Cycles),
			Extra:   fmt.Sprintf("pred=%.1f%% squash=%d", 100*res.PredAccuracy(), res.TasksSquashed),
		})
	}
	return rows, nil
}

// RingLatencySweep varies the per-hop forwarding latency (Section 5.1
// uses 1 cycle).
func RingLatencySweep(name string, scale Scale, latencies []int) ([]AblationRow, error) {
	w := workloads.Get(name)
	if w == nil {
		return nil, fmt.Errorf("unknown workload %q", name)
	}
	p, err := w.Build(asm.ModeMultiscalar, scale.of(w))
	if err != nil {
		return nil, err
	}
	var rows []AblationRow
	var base uint64
	for _, l := range latencies {
		cfg := core.DefaultConfig(8, 1, false)
		cfg.RingLatency = l
		res, err := runMSConfig(p, cfg)
		if err != nil {
			return nil, fmt.Errorf("ring=%d: %w", l, err)
		}
		if base == 0 {
			base = res.Cycles
		}
		rows = append(rows, AblationRow{
			Label:   fmt.Sprintf("ring hop %d cycles", l),
			Cycles:  res.Cycles,
			Speedup: float64(base) / float64(res.Cycles),
		})
	}
	return rows, nil
}

// ARBSweep varies ARB capacity under both overflow policies (Section 2.3
// discusses squash-on-full vs stall-but-head).
func ARBSweep(name string, scale Scale, entries []int) ([]AblationRow, error) {
	w := workloads.Get(name)
	if w == nil {
		return nil, fmt.Errorf("unknown workload %q", name)
	}
	p, err := w.Build(asm.ModeMultiscalar, scale.of(w))
	if err != nil {
		return nil, err
	}
	var rows []AblationRow
	var base uint64
	for _, policy := range []arb.OverflowPolicy{arb.PolicyStall, arb.PolicySquash} {
		for _, n := range entries {
			cfg := core.DefaultConfig(8, 1, false)
			cfg.ARBEntries = n
			cfg.ARBPolicy = policy
			res, err := runMSConfig(p, cfg)
			if err != nil {
				return nil, fmt.Errorf("arb=%d/%v: %w", n, policy, err)
			}
			if base == 0 {
				base = res.Cycles
			}
			rows = append(rows, AblationRow{
				Label:   fmt.Sprintf("%d entries, %v", n, policy),
				Cycles:  res.Cycles,
				Speedup: float64(base) / float64(res.Cycles),
				Extra:   fmt.Sprintf("overflows=%d arb-squashes=%d", res.ARBOverflows, res.ARBSquashes),
			})
		}
	}
	return rows, nil
}

// stripForwarding clears every forward bit and neuters release
// instructions, leaving only the completion flush to communicate values —
// the non-expedient strategy Section 2.2 warns against.
func stripForwarding(p *isa.Program) {
	for i := range p.Text {
		p.Text[i].Fwd = false
		if p.Text[i].Op == isa.OpRelease {
			p.Text[i].Op = isa.OpNop
		}
	}
}

// ForwardingAblation compares early forwarding (forward bits + releases)
// against completion-flush-only on 8 units.
func ForwardingAblation(name string, scale Scale) ([]AblationRow, error) {
	w := workloads.Get(name)
	if w == nil {
		return nil, fmt.Errorf("unknown workload %q", name)
	}
	p, err := w.Build(asm.ModeMultiscalar, scale.of(w))
	if err != nil {
		return nil, err
	}
	withFwd, err := runMSConfig(p, core.DefaultConfig(8, 1, false))
	if err != nil {
		return nil, err
	}
	p2, err := w.Build(asm.ModeMultiscalar, scale.of(w))
	if err != nil {
		return nil, err
	}
	stripForwarding(p2)
	without, err := runMSConfig(p2, core.DefaultConfig(8, 1, false))
	if err != nil {
		return nil, err
	}
	return []AblationRow{
		{Label: "forward bits + releases", Cycles: withFwd.Cycles, Speedup: 1},
		{Label: "completion flush only", Cycles: without.Cycles,
			Speedup: float64(withFwd.Cycles) / float64(without.Cycles)},
	}, nil
}

// PredictorAblation compares the PAs task predictor against static
// first-target prediction on 8 units.
func PredictorAblation(name string, scale Scale) ([]AblationRow, error) {
	w := workloads.Get(name)
	if w == nil {
		return nil, fmt.Errorf("unknown workload %q", name)
	}
	p, err := w.Build(asm.ModeMultiscalar, scale.of(w))
	if err != nil {
		return nil, err
	}
	pas, err := runMSConfig(p, core.DefaultConfig(8, 1, false))
	if err != nil {
		return nil, err
	}
	cfg := core.DefaultConfig(8, 1, false)
	cfg.StaticPredict = true
	static, err := runMSConfig(p, cfg)
	if err != nil {
		return nil, err
	}
	return []AblationRow{
		{Label: "PAs two-level predictor", Cycles: pas.Cycles, Speedup: 1,
			Extra: fmt.Sprintf("pred=%.1f%%", 100*pas.PredAccuracy())},
		{Label: "static first-target", Cycles: static.Cycles,
			Speedup: float64(pas.Cycles) / float64(static.Cycles),
			Extra:   fmt.Sprintf("pred=%.1f%%", 100*static.PredAccuracy())},
	}, nil
}

// FormatAblation renders one sweep.
func FormatAblation(title string, rows []AblationRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-28s %10d cycles  %6.2fx  %s\n", r.Label, r.Cycles, r.Speedup, r.Extra)
	}
	return b.String()
}

// SharedFUAblation compares private per-unit FP/complex units (the paper's
// Figure 1 organization) against the shared-FU alternative
// microarchitecture sketched in Section 2.3, on 8 units.
func SharedFUAblation(name string, scale Scale) ([]AblationRow, error) {
	w := workloads.Get(name)
	if w == nil {
		return nil, fmt.Errorf("unknown workload %q", name)
	}
	p, err := w.Build(asm.ModeMultiscalar, scale.of(w))
	if err != nil {
		return nil, err
	}
	private, err := runMSConfig(p, core.DefaultConfig(8, 1, false))
	if err != nil {
		return nil, err
	}
	rows := []AblationRow{{Label: "private FUs (Figure 1)", Cycles: private.Cycles, Speedup: 1}}
	for _, n := range []int{2, 1} {
		cfg := core.DefaultConfig(8, 1, false)
		cfg.SharedFPUnits = n
		res, err := runMSConfig(p, cfg)
		if err != nil {
			return nil, fmt.Errorf("shared=%d: %w", n, err)
		}
		rows = append(rows, AblationRow{
			Label:   fmt.Sprintf("%d shared FP/complex units", n),
			Cycles:  res.Cycles,
			Speedup: float64(private.Cycles) / float64(res.Cycles),
		})
	}
	return rows, nil
}
