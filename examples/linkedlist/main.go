// Linkedlist runs the paper's running example (Figures 2-4): the symbol
// buffer / linked-list search program of Figure 3, annotated in the style
// of Figure 4. It prints the task structure (descriptor, create mask,
// forward and stop bits) of the actual binary, then measures the scalar
// baseline against multiscalar configurations — reproducing the paper's
// claim that this loop, which a superscalar cannot parallelize, speeds up
// on a multiscalar processor.
package main

import (
	"fmt"
	"log"

	"multiscalar"
	"multiscalar/internal/isa"
)

func main() {
	w := multiscalar.GetWorkload("example")
	prog, err := w.Build(multiscalar.ModeMultiscalar, 100)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== Task structure (compare with Figure 4 of the paper) ==")
	for _, td := range prog.TaskList() {
		fmt.Printf("task %-14s entry=0x%04x create=%v targets=%v\n",
			td.Name, td.Entry, td.Create, td.Targets)
	}
	fmt.Println("\nannotated instructions of the OUTER task:")
	outer := prog.TaskAt(mustSym(prog, "OUTER"))
	for addr := outer.Entry; ; addr += isa.InstrSize {
		in := prog.InstrAt(addr)
		if in == nil {
			break
		}
		if in.Fwd || in.Stop != isa.StopNone {
			fmt.Printf("  0x%04x  %s\n", addr, in)
		}
		if in.Stop == isa.StopAlways && addr > outer.Entry {
			break
		}
	}

	scProg, err := w.Build(multiscalar.ModeScalar, 100)
	if err != nil {
		log.Fatal(err)
	}
	sres, err := multiscalar.Run(scProg, multiscalar.ScalarConfig(1, false), multiscalar.WithVerify())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nscalar baseline: %d cycles (IPC %.2f)\n", sres.Cycles, sres.IPC())
	for _, units := range []int{4, 8} {
		res, err := multiscalar.Run(prog, multiscalar.DefaultConfig(units, 1, false), multiscalar.WithVerify())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%d units: %d cycles, speedup %.2f, prediction %.1f%%, squashes ctl=%d mem=%d\n",
			units, res.Cycles, res.Speedup(sres), 100*res.PredAccuracy(),
			res.CtlSquashes, res.MemSquashes)
	}
	fmt.Println("\nNote the memory-order squashes: two concurrent searches of the same")
	fmt.Println("symbol conflict through process()'s counter update, exactly the")
	fmt.Println("scenario Section 2.3 walks through.")
}

func mustSym(p *multiscalar.Program, name string) uint32 {
	a, ok := p.Symbol(name)
	if !ok {
		log.Fatalf("symbol %s missing", name)
	}
	return a
}
