package workloads

import (
	"testing"

	"multiscalar/internal/asm"
	"multiscalar/internal/core"
	"multiscalar/internal/interp"
	"multiscalar/internal/isa"
)

// runOracle executes a binary on the functional interpreter.
func runOracle(t *testing.T, p *isa.Program) (*interp.Machine, string) {
	t.Helper()
	env := interp.NewSysEnv()
	m := interp.NewMachine(p, env)
	if err := m.Run(500_000_000); err != nil {
		t.Fatalf("oracle: %v", err)
	}
	if env.ExitCode != 0 {
		t.Fatalf("oracle exit code %d", env.ExitCode)
	}
	return m, env.Out.String()
}

// TestWorkloadsEndToEnd is the master validation: for every workload, the
// scalar binary and the multiscalar binary produce identical program
// output under the interpreter; the scalar timing machine matches the
// scalar oracle; the multiscalar machine (4 and 8 units) matches the
// multiscalar oracle in output and committed instruction count.
func TestWorkloadsEndToEnd(t *testing.T) {
	for _, w := range AllWithExtras() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			scalarProg, err := w.Build(asm.ModeScalar, w.TestScale)
			if err != nil {
				t.Fatal(err)
			}
			msProg, err := w.Build(asm.ModeMultiscalar, w.TestScale)
			if err != nil {
				t.Fatal(err)
			}
			som, sout := runOracle(t, scalarProg)
			mom, mout := runOracle(t, msProg)
			if sout != mout {
				t.Fatalf("scalar/multiscalar binaries disagree: %q vs %q", sout, mout)
			}
			if !w.Extra && mom.ICount <= som.ICount {
				// Table 2's direction holds for the paper suite; extras
				// need not carry multiscalar-only instructions.
				t.Errorf("multiscalar ICount %d not greater than scalar %d (Table 2 direction)",
					mom.ICount, som.ICount)
			}

			// Scalar timing machine.
			env := interp.NewSysEnv()
			sc := core.NewScalar(scalarProg, env, core.ScalarConfig(1, false))
			sres, err := sc.Run()
			if err != nil {
				t.Fatalf("scalar machine: %v", err)
			}
			if sres.Out != sout || sres.Committed != som.ICount {
				t.Fatalf("scalar machine diverged: out=%q committed=%d want %d",
					sres.Out, sres.Committed, som.ICount)
			}

			// Multiscalar machines.
			for _, units := range []int{4, 8} {
				env := interp.NewSysEnv()
				cfg := core.DefaultConfig(units, 1, false)
				cfg.CheckForwards = true
				cfg.MaxCycles = 500_000_000
				m, err := core.NewMultiscalar(msProg, env, cfg)
				if err != nil {
					t.Fatalf("units=%d: %v", units, err)
				}
				res, err := m.Run()
				if err != nil {
					t.Fatalf("units=%d run: %v", units, err)
				}
				if res.Out != mout {
					t.Fatalf("units=%d out = %q, want %q", units, res.Out, mout)
				}
				if res.Committed != mom.ICount {
					t.Fatalf("units=%d committed = %d, want %d", units, res.Committed, mom.ICount)
				}
				t.Logf("units=%d cycles=%d scalarCycles=%d speedup=%.2f pred=%.1f%% squash(ctl=%d,mem=%d)",
					units, res.Cycles, sres.Cycles, float64(sres.Cycles)/float64(res.Cycles),
					100*res.PredAccuracy(), res.CtlSquashes, res.MemSquashes)
			}
		})
	}
}

func TestAllWorkloadsRegistered(t *testing.T) {
	want := []string{"compress", "eqntott", "espresso", "gcc", "sc", "xlisp",
		"tomcatv", "cmp", "wc", "example"}
	for _, n := range want {
		if Get(n) == nil {
			t.Errorf("workload %q not registered", n)
		}
	}
	if len(Names()) < len(want) {
		t.Errorf("Names() = %v", Names())
	}
}

func TestPaperNumbersPresent(t *testing.T) {
	for _, w := range All() {
		if w.Extra {
			t.Errorf("%s: extra workload in the paper suite", w.Name)
		}
		if w.Paper.ScalarM == 0 || w.Paper.InOrder1.Speedup8 == 0 {
			t.Errorf("%s: paper reference numbers missing", w.Name)
		}
		if w.TestScale <= 0 || w.DefaultScale <= 0 {
			t.Errorf("%s: scales missing", w.Name)
		}
	}
}
