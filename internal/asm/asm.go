package asm

import (
	"fmt"
	"strings"

	"multiscalar/internal/isa"
	"multiscalar/internal/mslint"
)

// Mode selects which binary a single annotated source produces.
type Mode int

const (
	// ModeScalar strips all multiscalar information: .task directives and
	// annotation bits are dropped, .msonly lines are skipped, .sconly
	// lines are kept. Release instructions are rejected outside .msonly
	// lines.
	ModeScalar Mode = iota
	// ModeMultiscalar keeps task descriptors and tag bits, skips .sconly
	// lines, and keeps .msonly lines.
	ModeMultiscalar
)

func (m Mode) String() string {
	if m == ModeScalar {
		return "scalar"
	}
	return "multiscalar"
}

// Options controls a single assembly beyond the build mode.
type Options struct {
	Mode Mode
	// NoLint skips the annotation-contract post-pass (internal/mslint)
	// that multiscalar builds otherwise run. Use it to assemble programs
	// that deliberately violate the contract (tests, fuzzing) or when the
	// caller runs the linter itself.
	NoLint bool
}

// Result is the full outcome of one assembly.
type Result struct {
	Prog *isa.Program
	// Lines maps every emitted instruction address to the source line of
	// the statement it came from (pseudo-instruction expansions share
	// their statement's line).
	Lines map[uint32]int
	// Lint is the annotation-contract report for multiscalar builds (nil
	// for scalar builds or when Options.NoLint is set). It is populated
	// even when AssembleOpts returns a lint error, so tools can render
	// the full report.
	Lint *mslint.Report
}

// Assemble translates source text into a program image for the given
// mode. Multiscalar builds are additionally checked against the
// annotation contract; a program with hard lint errors is rejected. Use
// AssembleOpts to opt out of the check or to receive the line table and
// the full lint report.
func Assemble(src string, mode Mode) (*isa.Program, error) {
	res, err := AssembleOpts(src, Options{Mode: mode})
	if err != nil {
		return nil, err
	}
	return res.Prog, nil
}

// AssembleOpts is Assemble with explicit options and a full result.
func AssembleOpts(src string, opts Options) (*Result, error) {
	a := &assembler{
		mode:    opts.Mode,
		symbols: make(map[string]uint32),
		prog: &isa.Program{
			Tasks:   make(map[uint32]*isa.TaskDescriptor),
			Symbols: nil,
		},
	}
	if err := a.pass1(src); err != nil {
		return nil, err
	}
	if err := a.pass2(); err != nil {
		return nil, err
	}
	a.prog.Symbols = a.symbols
	if err := a.prog.Validate(); err != nil {
		return nil, err
	}
	res := &Result{Prog: a.prog, Lines: a.lineTable()}
	if opts.Mode == ModeMultiscalar && !opts.NoLint {
		res.Lint = mslint.Lint(a.prog, res.Lines)
		if err := res.Lint.Err(); err != nil {
			return res, err
		}
	}
	return res, nil
}

// lineTable maps each emitted instruction address to its source line.
func (a *assembler) lineTable() map[uint32]int {
	lines := make(map[uint32]int, len(a.instrs))
	for i := range a.instrs {
		pi := &a.instrs[i]
		for k := 0; k < pi.size; k++ {
			lines[pi.addr+uint32(k)*isa.InstrSize] = pi.line
		}
	}
	return lines
}

// pendingInstr is an instruction statement awaiting symbol resolution.
type pendingInstr struct {
	line     int
	addr     uint32 // address of first emitted instruction
	size     int    // number of emitted instructions
	mnemonic string
	operands [][]token
	fwd      bool
	stop     isa.StopCond
}

// pendingPatch is a data word that references a symbol.
type pendingPatch struct {
	line   int
	offset int // into data buffer
	size   int // 4
	toks   []token
}

// pendingTask is a .task directive awaiting symbol resolution.
type pendingTask struct {
	line int
	args map[string][]token
	name string
}

type assembler struct {
	mode    Mode
	symbols map[string]uint32
	prog    *isa.Program

	inData  bool
	textPos uint32 // next instruction address
	data    []byte

	instrs  []pendingInstr
	patches []pendingPatch
	tasks   []pendingTask
	entry   string // .global name
}

func (a *assembler) errf(line int, format string, args ...interface{}) error {
	return fmt.Errorf("asm: line %d: %s", line, fmt.Sprintf(format, args...))
}

func (a *assembler) here() uint32 {
	if a.inData {
		return isa.DataBase + uint32(len(a.data))
	}
	return a.textPos
}

func (a *assembler) define(line int, name string) error {
	if _, dup := a.symbols[name]; dup {
		return a.errf(line, "duplicate label %q", name)
	}
	a.symbols[name] = a.here()
	return nil
}

func (a *assembler) pass1(src string) error {
	a.textPos = isa.TextBase
	for ln, raw := range strings.Split(src, "\n") {
		line := ln + 1
		toks, err := lexLine(stripComment(raw))
		if err != nil {
			return a.errf(line, "%v", err)
		}
		// Leading labels: IDENT ':'.
		var labels []string
		for len(toks) >= 2 && toks[0].kind == tokIdent && toks[1].kind == tokPunct && toks[1].text == ":" {
			labels = append(labels, toks[0].text)
			toks = toks[2:]
		}
		// A label on the same line as an aligning data directive must
		// name the aligned address, so align before defining it.
		if a.inData && len(toks) > 0 && toks[0].kind == tokDirective {
			switch toks[0].text {
			case ".half":
				a.alignData(2)
			case ".word", ".float":
				a.alignData(4)
			case ".double":
				a.alignData(8)
			}
		}
		for _, lbl := range labels {
			if err := a.define(line, lbl); err != nil {
				return err
			}
		}
		if len(toks) == 0 {
			continue
		}
		// Conditional-build prefixes.
		if toks[0].kind == tokDirective && (toks[0].text == ".msonly" || toks[0].text == ".sconly") {
			want := ModeMultiscalar
			if toks[0].text == ".sconly" {
				want = ModeScalar
			}
			if a.mode != want {
				continue
			}
			toks = toks[1:]
			if len(toks) == 0 {
				continue
			}
		}
		if toks[0].kind == tokDirective {
			if err := a.directive(line, toks); err != nil {
				return err
			}
			continue
		}
		if toks[0].kind != tokIdent {
			return a.errf(line, "expected instruction or directive")
		}
		if a.inData {
			return a.errf(line, "instruction %q in .data section", toks[0].text)
		}
		if err := a.instruction(line, toks); err != nil {
			return err
		}
	}
	return nil
}

// instruction records a pending instruction after sizing its expansion.
func (a *assembler) instruction(line int, toks []token) error {
	mn := toks[0].text
	rest := toks[1:]

	// Trailing annotations.
	fwd := false
	stop := isa.StopNone
	for len(rest) > 0 && rest[len(rest)-1].kind == tokAnnot {
		switch rest[len(rest)-1].text {
		case "!f":
			fwd = true
		case "!s":
			stop = isa.StopAlways
		case "!st":
			stop = isa.StopTaken
		case "!snt":
			stop = isa.StopNotTaken
		}
		rest = rest[:len(rest)-1]
	}
	if a.mode == ModeScalar {
		fwd, stop = false, isa.StopNone
		if mn == "release" {
			return a.errf(line, "release is multiscalar-only; prefix the line with .msonly")
		}
	}

	ops, err := splitOperands(rest)
	if err != nil {
		return a.errf(line, "%v", err)
	}
	size, err := expansionSize(mn, ops)
	if err != nil {
		return a.errf(line, "%v", err)
	}
	a.instrs = append(a.instrs, pendingInstr{
		line: line, addr: a.textPos, size: size,
		mnemonic: mn, operands: ops, fwd: fwd, stop: stop,
	})
	a.textPos += uint32(size) * isa.InstrSize
	return nil
}

// splitOperands splits the token list on top-level commas.
func splitOperands(toks []token) ([][]token, error) {
	if len(toks) == 0 {
		return nil, nil
	}
	var out [][]token
	start := 0
	depth := 0
	for i, t := range toks {
		if t.kind == tokPunct {
			switch t.text {
			case "(":
				depth++
			case ")":
				depth--
				if depth < 0 {
					return nil, fmt.Errorf("unbalanced ')'")
				}
			case ",":
				if depth == 0 {
					if i == start {
						return nil, fmt.Errorf("empty operand")
					}
					out = append(out, toks[start:i])
					start = i + 1
				}
			}
		}
	}
	if depth != 0 {
		return nil, fmt.Errorf("unbalanced '('")
	}
	if start >= len(toks) {
		return nil, fmt.Errorf("trailing comma")
	}
	out = append(out, toks[start:])
	return out, nil
}

func (a *assembler) pass2() error {
	a.prog.Data = a.data
	// Resolve entry.
	entryName := a.entry
	if entryName == "" {
		if _, ok := a.symbols["main"]; ok {
			entryName = "main"
		}
	}
	if entryName != "" {
		addr, ok := a.symbols[entryName]
		if !ok {
			return fmt.Errorf("asm: entry symbol %q undefined", entryName)
		}
		a.prog.Entry = addr
	} else {
		a.prog.Entry = isa.TextBase
	}

	// Emit instructions.
	text := make([]isa.Instr, 0, (a.textPos-isa.TextBase)/isa.InstrSize)
	for i := range a.instrs {
		pi := &a.instrs[i]
		emitted, err := a.emit(pi)
		if err != nil {
			return err
		}
		if len(emitted) != pi.size {
			return a.errf(pi.line, "internal: expansion size mismatch for %q (%d vs %d)",
				pi.mnemonic, len(emitted), pi.size)
		}
		text = append(text, emitted...)
	}
	a.prog.Text = text

	// Patch data words that reference symbols.
	for _, p := range a.patches {
		v, err := a.evalExpr(p.line, p.toks)
		if err != nil {
			return err
		}
		off := p.offset
		a.prog.Data[off] = byte(v >> 24)
		a.prog.Data[off+1] = byte(v >> 16)
		a.prog.Data[off+2] = byte(v >> 8)
		a.prog.Data[off+3] = byte(v)
	}

	// Resolve task descriptors.
	if a.mode == ModeMultiscalar {
		for _, pt := range a.tasks {
			if err := a.resolveTask(pt); err != nil {
				return err
			}
		}
	}
	return nil
}

// evalExpr evaluates ['-'] term (('+'|'-') term)* where term is a number
// or a defined symbol.
func (a *assembler) evalExpr(line int, toks []token) (int64, error) {
	if len(toks) == 0 {
		return 0, a.errf(line, "empty expression")
	}
	pos := 0
	neg := false
	if toks[0].kind == tokPunct && (toks[0].text == "-" || toks[0].text == "+") {
		neg = toks[0].text == "-"
		pos = 1
	}
	term := func() (int64, error) {
		if pos >= len(toks) {
			return 0, a.errf(line, "expression ends unexpectedly")
		}
		t := toks[pos]
		pos++
		switch t.kind {
		case tokNum:
			if t.isFloat {
				return 0, a.errf(line, "float %q in integer expression", t.text)
			}
			return t.num, nil
		case tokIdent:
			v, ok := a.symbols[t.text]
			if !ok {
				return 0, a.errf(line, "undefined symbol %q", t.text)
			}
			return int64(v), nil
		default:
			return 0, a.errf(line, "unexpected token %q in expression", t.text)
		}
	}
	v, err := term()
	if err != nil {
		return 0, err
	}
	if neg {
		v = -v
	}
	for pos < len(toks) {
		t := toks[pos]
		if t.kind != tokPunct || (t.text != "+" && t.text != "-") {
			return 0, a.errf(line, "unexpected token %q in expression", t.text)
		}
		pos++
		w, err := term()
		if err != nil {
			return 0, err
		}
		if t.text == "+" {
			v += w
		} else {
			v -= w
		}
	}
	return v, nil
}
