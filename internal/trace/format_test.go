package trace

import (
	"bytes"
	"io"
	"reflect"
	"testing"
)

// sampleEvents exercises every field width the encoder handles: negative
// cycle deltas (paced ring sends run ahead of the clock), absent unit and
// task ids, and 64-bit args.
var sampleEvents = []Event{
	{Cycle: 0, Kind: KTaskAssign, Unit: 0, Task: 0, Arg: 0x1000},
	{Cycle: 3, Kind: KTaskFirstIssue, Unit: 0, Task: 0},
	{Cycle: 9, Kind: KRingSend, Unit: 0, Task: 0, Arg: 17},
	{Cycle: 7, Kind: KUnitActivity, Unit: 0, Task: 0, Arg: 1, Arg2: 12}, // cycle runs backwards
	{Cycle: 40, Kind: KDCacheMiss, Unit: 3, Task: -1, Arg: 0xdeadbeef},
	{Cycle: 41, Kind: KTaskSquash, Unit: 1, Task: 2, Arg: CauseMemory, Arg2: 3},
	{Cycle: 1 << 40, Kind: KRunEnd, Unit: -1, Task: -1, Arg2: 1 << 40},
}

func sampleMeta() Meta {
	return Meta{
		NumUnits: 4,
		Label:    "unit-test",
		Tasks:    map[uint32]string{0x1000: "main", 0x1040: "loop"},
	}
}

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, sampleMeta())
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range sampleEvents {
		w.Emit(e)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	tr, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr.Meta, sampleMeta()) {
		t.Errorf("meta = %+v", tr.Meta)
	}
	if !reflect.DeepEqual(tr.Events, sampleEvents) {
		t.Errorf("events differ:\n got %v\nwant %v", tr.Events, sampleEvents)
	}
}

func TestRoundTripEmpty(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, Meta{NumUnits: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	tr, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Events) != 0 || tr.Meta.NumUnits != 1 || tr.Meta.Tasks != nil {
		t.Errorf("trace = %+v", tr)
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := ReadAll(bytes.NewReader([]byte("not a trace"))); err == nil {
		t.Error("expected an error for a bad magic")
	}
}

// TestEmitDoesNotAllocate holds the streaming writer to the tracing
// layer's core promise: emission is allocation-free, so attaching a
// Writer never pressures the simulator's GC behavior.
func TestEmitDoesNotAllocate(t *testing.T) {
	w, err := NewWriter(io.Discard, sampleMeta())
	if err != nil {
		t.Fatal(err)
	}
	e := Event{Cycle: 1, Kind: KUnitActivity, Unit: 2, Task: 3, Arg: 4, Arg2: 5}
	allocs := testing.AllocsPerRun(10000, func() {
		e.Cycle++
		w.Emit(e)
	})
	if allocs != 0 {
		t.Errorf("Emit allocates %.1f times per call, want 0", allocs)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestWriterStickyError(t *testing.T) {
	w, err := NewWriter(failAfter{}, Meta{NumUnits: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100000; i++ { // enough to overflow the buffer
		w.Emit(Event{Cycle: uint64(i), Kind: KBusRequest})
	}
	if w.Close() == nil {
		t.Error("expected the underlying write error from Close")
	}
}

type failAfter struct{}

func (failAfter) Write(p []byte) (int, error) { return 0, io.ErrClosedPipe }

func TestSummarize(t *testing.T) {
	tr := &Trace{
		Meta: sampleMeta(),
		Events: []Event{
			{Cycle: 0, Kind: KTaskAssign, Unit: 0, Task: 0, Arg: 0x1000},
			{Cycle: 2, Kind: KTaskFirstIssue, Unit: 0, Task: 0},
			{Cycle: 1, Kind: KTaskAssign, Unit: 1, Task: 1, Arg: 0x1040},
			{Cycle: 5, Kind: KTaskActivity, Unit: 1, Task: 1, Arg: 1 | ActivitySquashed, Arg2: 4},
			{Cycle: 5, Kind: KTaskSquash, Unit: 1, Task: 1, Arg: CauseMemory, Arg2: 1},
			{Cycle: 6, Kind: KTaskRestart, Unit: 1, Task: 1, Arg: 0x1040},
			{Cycle: 10, Kind: KTaskActivity, Unit: 0, Task: 0, Arg: 1, Arg2: 7},
			{Cycle: 10, Kind: KTaskRetire, Unit: 0, Task: 0, Arg: 0x1030, Arg2: 12},
			{Cycle: 20, Kind: KTaskActivity, Unit: 1, Task: 1, Arg: 1, Arg2: 9},
			{Cycle: 20, Kind: KTaskRetire, Unit: 1, Task: 1, Arg: 0x1080, Arg2: 8},
			{Cycle: 21, Kind: KRunEnd, Unit: -1, Task: -1, Arg2: 21},
		},
	}
	s := Summarize(tr)
	if s.Cycles != 21 || len(s.Tasks) != 2 {
		t.Fatalf("summary = %+v", s)
	}
	t0, t1 := s.Tasks[0], s.Tasks[1]
	if !t0.Retired || t0.Instrs != 12 || t0.Activity[1] != 7 || t0.FirstIssue != 2 || !t0.HasIssue {
		t.Errorf("task 0 = %+v", t0)
	}
	if t0.Name(&tr.Meta) != "main" {
		t.Errorf("task 0 name = %q", t0.Name(&tr.Meta))
	}
	if !t1.Retired || t1.Restarts != 1 || t1.SquashedCycles != 4 || t1.Activity[1] != 9 {
		t.Errorf("task 1 = %+v", t1)
	}
	if len(t1.Spans) != 2 || !t1.Spans[0].Squashed || t1.Spans[0].Cause != CauseMemory ||
		t1.Spans[0].End != 5 || t1.Spans[1].Start != 6 || t1.Spans[1].End != 20 || t1.Spans[1].Squashed {
		t.Errorf("task 1 spans = %+v", t1.Spans)
	}
}

func TestSquashArg2PackUnpack(t *testing.T) {
	// No conflict detail: encodes to the bare distance (the
	// pre-detail format) and reads back without a conflict.
	if v := SquashArg2(3, 0, -1); v != 3 {
		t.Fatalf("SquashArg2(3,0,-1) = %d, want 3", v)
	}
	if _, _, ok := SquashConflict(3); ok {
		t.Fatal("bare distance should carry no conflict")
	}
	// With detail: distance, address and bank all round-trip.
	v := SquashArg2(7, 0x1000_2004, 5)
	if d := SquashDist(v); d != 7 {
		t.Errorf("SquashDist = %d, want 7", d)
	}
	addr, bank, ok := SquashConflict(v)
	if !ok || addr != 0x1000_2004 || bank != 5 {
		t.Errorf("SquashConflict = (0x%x, %d, %v), want (0x10002004, 5, true)", addr, bank, ok)
	}
	// Bank 0 is distinguishable from "no detail".
	if _, bank, ok := SquashConflict(SquashArg2(1, 0x10000000, 0)); !ok || bank != 0 {
		t.Errorf("bank 0 conflict = (%d, %v), want (0, true)", bank, ok)
	}
}
