package mem

import "testing"

// Touch and AdoptTags are the warm-state primitives of sampled
// simulation (internal/sample): functional warming installs tags
// without timing, injection copies them into a fresh machine's caches.

func TestTouchInstallsTag(t *testing.T) {
	c := NewCache("test", 1024, 16, 0, 2, NewBus())
	c.Touch(0x1000)
	c.Access(0, 0x1000, false)
	if c.Misses != 0 || c.Hits != 1 {
		t.Errorf("access after Touch: %d hits, %d misses; want a pure hit", c.Hits, c.Misses)
	}
	// An untouched block still misses.
	c.Access(0, 0x8000, false)
	if c.Misses != 1 {
		t.Errorf("untouched access missed %d times, want 1", c.Misses)
	}
}

func TestAdoptTags(t *testing.T) {
	bus := NewBus()
	src := NewCache("src", 1024, 16, 0, 2, bus)
	for addr := uint32(0); addr < 1024; addr += 16 {
		src.Touch(addr)
	}
	dst := NewCache("dst", 1024, 16, 0, 2, bus)
	if !dst.AdoptTags(src) {
		t.Fatal("AdoptTags rejected identical geometry")
	}
	dst.Access(0, 0x100, false)
	if dst.Misses != 0 {
		t.Error("adopted tags did not carry the warm set")
	}
	if dst.Hits != 1 {
		t.Errorf("statistics after one access: %d hits, want 1 (adoption must not carry counters)", dst.Hits)
	}

	other := NewCache("other", 2048, 16, 0, 2, bus)
	if other.AdoptTags(src) {
		t.Error("AdoptTags accepted a geometry mismatch")
	}
}

func TestBankedTouchRoutesToBank(t *testing.T) {
	d := NewBankedDCache(4, 1024, 16, 0, 2, NewBus())
	addr := uint32(0x2340)
	d.Touch(addr)
	bank := d.BankOf(addr)
	d.Banks[bank].Access(0, addr, false)
	if d.Banks[bank].Misses != 0 {
		t.Errorf("bank %d missed on a touched address", bank)
	}
}
