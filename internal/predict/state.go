package predict

import "multiscalar/internal/snapshot"

// SaveState serializes the task predictor's tables and statistics.
func (p *TaskPredictor) SaveState(e *snapshot.Encoder) {
	e.Tag("TPRD")
	for _, h := range p.histories {
		e.U16(h)
	}
	e.Raw(p.pattern[:])
	e.U64(p.Predictions)
	e.U64(p.Correct)
}

// LoadState restores the task predictor (trace wiring untouched).
func (p *TaskPredictor) LoadState(d *snapshot.Decoder) {
	d.Tag("TPRD")
	for i := range p.histories {
		p.histories[i] = d.U16()
	}
	d.Raw(p.pattern[:])
	p.Predictions = d.U64()
	p.Correct = d.U64()
}

// SaveState serializes the return address stack.
func (r *RAS) SaveState(e *snapshot.Encoder) {
	e.Tag("RAS ")
	for _, a := range r.entries {
		e.U32(a)
	}
	e.Int(r.top)
	e.Int(r.depth)
}

// LoadState restores the return address stack, clamping the cursor
// fields into range so a corrupt snapshot cannot index out of bounds.
func (r *RAS) LoadState(d *snapshot.Decoder) {
	d.Tag("RAS ")
	for i := range r.entries {
		r.entries[i] = d.U32()
	}
	r.top = d.Int()
	r.depth = d.Int()
	if r.top < 0 || r.top >= len(r.entries) || r.depth < 0 || r.depth > len(r.entries) {
		d.Failf("RAS cursor out of range (top %d, depth %d)", r.top, r.depth)
		r.top, r.depth = 0, 0
	}
}

// SaveState serializes the branch predictor's tables and statistics.
func (b *BranchPredictor) SaveState(e *snapshot.Encoder) {
	e.Tag("BPRD")
	e.Blob(b.counters)
	for _, a := range b.ras {
		e.U32(a)
	}
	e.Int(b.rasTop)
	e.Int(b.rasDepth)
	e.Len(len(b.targets))
	for _, t := range b.targets {
		e.U32(t)
	}
	e.U64(b.Lookups)
	e.U64(b.Hits)
}

// LoadState restores the branch predictor; table sizes must match the
// constructed configuration.
func (b *BranchPredictor) LoadState(d *snapshot.Decoder) {
	d.Tag("BPRD")
	c := d.Blob(1 << 24)
	if d.Err() == nil && len(c) != len(b.counters) {
		d.Failf("branch predictor: %d counters, machine has %d", len(c), len(b.counters))
	}
	if d.Err() != nil {
		return
	}
	copy(b.counters, c)
	for i := range b.ras {
		b.ras[i] = d.U32()
	}
	b.rasTop = d.Int()
	b.rasDepth = d.Int()
	if b.rasTop < 0 || b.rasTop >= len(b.ras) || b.rasDepth < 0 || b.rasDepth > len(b.ras) {
		d.Failf("branch predictor RAS cursor out of range (top %d, depth %d)", b.rasTop, b.rasDepth)
		b.rasTop, b.rasDepth = 0, 0
	}
	if n := d.Len(1 << 24); d.Err() == nil && n != len(b.targets) {
		d.Failf("branch predictor: %d targets, machine has %d", n, len(b.targets))
	}
	if d.Err() != nil {
		return
	}
	for i := range b.targets {
		b.targets[i] = d.U32()
	}
	b.Lookups = d.U64()
	b.Hits = d.U64()
}
