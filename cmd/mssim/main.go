// mssim runs one program (a benchmark from the suite or an assembly file)
// on the functional interpreter, the scalar baseline, or a multiscalar
// configuration, and prints the run's statistics.
//
// Usage:
//
//	mssim -w example -units 8 -width 2 -ooo
//	mssim -f prog.s -units 0            (functional interpretation only)
//	mssim -f prog.s -units 1            (scalar baseline)
//	mssim -w compress -sample           (sampled estimate with a 95% CI
//	                                    instead of an exact run; docs/perf.md)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"multiscalar"
	"multiscalar/internal/pu"
)

func main() {
	var (
		workload = flag.String("w", "", "benchmark name (see -list)")
		file     = flag.String("f", "", "assembly source file")
		scale    = flag.Int("scale", 0, "problem scale (0 = workload default)")
		units    = flag.Int("units", 8, "processing units (0 = interpret only, 1 = scalar)")
		width    = flag.Int("width", 1, "issue width per unit (1 or 2)")
		ooo      = flag.Bool("ooo", false, "out-of-order issue within units")
		list     = flag.Bool("list", false, "list benchmark names")
		trace    = flag.Bool("trace", false, "print a per-cycle pipeline trace (multiscalar only)")
		mstrc    = flag.String("mstrc", "", "record an event trace to this .mstrc file (render with mstrace)")
		stdin    = flag.Bool("stdin", false, "feed standard input to the program (read-char syscall)")
		showOut  = flag.Bool("out", false, "print the program's output")
		stats    = flag.Bool("stats", false, "print simulator statistics (cycles simulated vs ticked, skip ratio)")
		noskip   = flag.Bool("noskip", false, "disable the wakeup scheduler (dense per-cycle ticking; results are identical)")
		chkFile  = flag.String("checkpoint", "", "write a machine snapshot to this file, then continue (see -checkpoint-at)")
		chkAt    = flag.Uint64("checkpoint-at", 0, "cycle to take the -checkpoint snapshot at")
		restore  = flag.String("restore", "", "resume from a snapshot file (same program, scale and machine flags as the saving run)")
		sampled  = flag.Bool("sample", false, "estimate cycles by sampled simulation instead of simulating every cycle (docs/perf.md)")
		sWindow  = flag.Uint64("sample-window", 0, "sampled: measured instructions per detailed window (0 = derived)")
		sWarmup  = flag.Uint64("sample-warmup", 0, "sampled: detailed warm-up instructions per window (0 = derived)")
		sPeriod  = flag.Uint64("sample-period", 0, "sampled: instructions between window starts (0 = derived)")
	)
	flag.Parse()

	if *list {
		for _, n := range multiscalar.WorkloadNames() {
			w := multiscalar.GetWorkload(n)
			fmt.Printf("%-10s %s\n", n, w.Description)
		}
		return
	}

	prog, err := buildProgram(*workload, *file, *scale, *units)
	if err != nil {
		fatal(err)
	}

	var runOpts []multiscalar.RunOption
	if *stdin {
		runOpts = append(runOpts, multiscalar.WithStdin(os.Stdin))
	}

	if *units <= 0 {
		res, err := multiscalar.Interpret(prog, runOpts...)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("instructions: %d\nexit code: %d\n", res.Instructions, res.ExitCode)
		if *showOut {
			fmt.Printf("output: %s\n", res.Out)
		}
		return
	}

	var cfg multiscalar.Config
	if *units == 1 {
		cfg = multiscalar.ScalarConfig(*width, *ooo)
	} else {
		cfg = multiscalar.DefaultConfig(*units, *width, *ooo)
		if *trace {
			cfg.Trace = os.Stdout
		}
	}
	cfg.NoSkip = *noskip
	opts := append(runOpts, multiscalar.WithVerify())
	if *chkFile != "" {
		opts = append(opts, multiscalar.WithCheckpoint(*chkAt, func(snap []byte) error {
			return os.WriteFile(*chkFile, snap, 0o644)
		}))
	}
	if *restore != "" {
		snap, err := os.ReadFile(*restore)
		if err != nil {
			fatal(err)
		}
		meta, err := multiscalar.PeekSnapshot(snap)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("snapshot:     %s (format v%d), taken at cycle %d\n",
			multiscalar.SnapshotKindName(meta.Kind), meta.Version, meta.Cycle)
		opts = append(opts, multiscalar.RestoreFrom(snap))
	}
	if *sampled {
		est, err := multiscalar.RunSampled(prog, cfg, multiscalar.SampleParams{
			WindowInstrs: *sWindow, WarmupInstrs: *sWarmup, PeriodInstrs: *sPeriod,
		}, runOpts...)
		if err != nil {
			fatal(err)
		}
		printSampled(est)
		if *showOut {
			fmt.Printf("output: %s\n", est.Out)
		}
		return
	}
	if *mstrc != "" {
		f, err := os.Create(*mstrc)
		if err != nil {
			fatal(err)
		}
		tw, err := multiscalar.NewTraceWriter(f, prog, cfg, label(*workload, *file))
		if err != nil {
			fatal(err)
		}
		defer func() {
			if err := tw.Close(); err != nil {
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}()
		opts = append(opts, multiscalar.WithTrace(tw))
	}
	res, err := multiscalar.Run(prog, cfg, opts...)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("cycles:       %d\n", res.Cycles)
	fmt.Printf("instructions: %d\n", res.Committed)
	fmt.Printf("IPC:          %.3f\n", res.IPC())
	if *units > 1 {
		fmt.Printf("tasks:        %d retired, %d squashed (control %d, memory %d, arb %d)\n",
			res.TasksRetired, res.TasksSquashed, res.CtlSquashes, res.MemSquashes, res.ARBSquashes)
		fmt.Printf("prediction:   %.1f%% of %d\n", 100*res.PredAccuracy(), res.Predictions)
		total := float64(res.Cycles) * float64(*units)
		fmt.Printf("unit-cycles:  compute %.1f%%, wait-pred %.1f%%, wait-intra %.1f%%, wait-retire %.1f%%, idle %.1f%%, squashed %.1f%%\n",
			100*float64(res.Activity[pu.ActCompute])/total,
			100*float64(res.Activity[pu.ActWaitPred])/total,
			100*float64(res.Activity[pu.ActWaitIntra])/total,
			100*float64(res.Activity[pu.ActWaitRetire])/total,
			100*float64(res.Activity[pu.ActIdle])/total,
			100*float64(res.SquashedCycles)/total)
	}
	fmt.Printf("memory:       %d icache misses, %d dcache misses, %d bank conflicts, %d bus requests\n",
		res.ICacheMisses, res.DCacheMisses, res.DBankConflicts, res.BusRequests)
	if res.ARBViolations+res.ARBStoreForwards+res.ARBAllocs > 0 {
		fmt.Printf("arb:          %d violations, %d store-forwards, %d overflows, %d allocs, %d peak-bank-occupancy\n",
			res.ARBViolations, res.ARBStoreForwards, res.ARBOverflows,
			res.ARBAllocs, res.ARBPeakOccupancy)
	}
	if *stats {
		skipped := res.Cycles - res.CyclesTicked
		pct := 0.0
		if res.Cycles > 0 {
			pct = 100 * float64(skipped) / float64(res.Cycles)
		}
		fmt.Printf("simulator:    %d cycles_simulated, %d cycles_ticked (%.1f%% skipped)\n",
			res.Cycles, res.CyclesTicked, pct)
	}
	if *showOut {
		fmt.Printf("output: %s\n", res.Out)
	}
}

func printSampled(est *multiscalar.SampleEstimate) {
	fmt.Printf("sampled:      %d instrs, %d windows (window %d, warm-up %d, period %d instrs)\n",
		est.TotalInstrs, est.Windows,
		est.Params.WindowInstrs, est.Params.WarmupInstrs, est.Params.PeriodInstrs)
	if est.FullDetail {
		fmt.Printf("              run too short to sample: exact full-detail result\n")
	}
	fmt.Printf("cycles:       %d estimated, 95%% CI [%d, %d]\n",
		est.EstCycles, est.CyclesLow, est.CyclesHi)
	fmt.Printf("cpi:          %.4f mean, %.4f stderr\n", est.MeanCPI, est.StdErrCPI)
	fmt.Printf("detail cost:  %d cycles over %d instrs (%.1f%% of the run's instructions)\n",
		est.DetailedCycles, est.DetailedInstrs,
		100*float64(est.DetailedInstrs)/float64(est.TotalInstrs))
}

func buildProgram(workload, file string, scale, units int) (*multiscalar.Program, error) {
	mode := multiscalar.ModeMultiscalar
	if units == 1 || units == 0 {
		mode = multiscalar.ModeScalar
	}
	if workload != "" {
		w := multiscalar.GetWorkload(workload)
		if w == nil {
			return nil, fmt.Errorf("unknown workload %q (try -list)", workload)
		}
		return w.Build(mode, scale)
	}
	if file == "" {
		return nil, fmt.Errorf("one of -w or -f is required")
	}
	if strings.HasSuffix(file, ".msb") {
		f, err := os.Open(file)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return multiscalar.LoadProgram(f)
	}
	src, err := os.ReadFile(file)
	if err != nil {
		return nil, err
	}
	res, err := multiscalar.Assemble(string(src), multiscalar.WithMode(mode))
	if err != nil {
		return nil, err
	}
	return res.Prog, nil
}

func label(workload, file string) string {
	if workload != "" {
		return workload
	}
	return file
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mssim:", err)
	os.Exit(1)
}
