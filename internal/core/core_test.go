package core

import (
	"testing"

	"multiscalar/internal/asm"
	"multiscalar/internal/interp"
	"multiscalar/internal/isa"
)

const exitSeq = "\n\tli $v0, 10\n\tli $a0, 0\n\tsyscall\n"

// oracle runs the functional interpreter over a binary.
func oracle(t *testing.T, p *isa.Program) (*interp.Machine, *interp.SysEnv) {
	t.Helper()
	env := interp.NewSysEnv()
	m := interp.NewMachine(p, env)
	if err := m.Run(50_000_000); err != nil {
		t.Fatalf("oracle: %v", err)
	}
	return m, env
}

// runScalar assembles in scalar mode and runs the scalar machine.
func runScalar(t *testing.T, src string, width int, ooo bool) (*Result, *interp.Machine) {
	t.Helper()
	p, err := asm.Assemble(src, asm.ModeScalar)
	if err != nil {
		t.Fatalf("assemble scalar: %v", err)
	}
	om, oenv := oracle(t, p)
	env := interp.NewSysEnv()
	s := NewScalar(p, env, ScalarConfig(width, ooo))
	res, err := s.Run()
	if err != nil {
		t.Fatalf("scalar run: %v", err)
	}
	if res.Out != oenv.Out.String() {
		t.Fatalf("scalar out = %q, oracle %q", res.Out, oenv.Out.String())
	}
	if res.Committed != om.ICount {
		t.Fatalf("scalar committed = %d, oracle %d", res.Committed, om.ICount)
	}
	return res, om
}

// runMS assembles in multiscalar mode and runs the multiscalar machine,
// checking output and committed-instruction equivalence against the
// interpreter on the same binary.
func runMS(t *testing.T, src string, units, width int, ooo bool) *Result {
	t.Helper()
	p, err := asm.Assemble(src, asm.ModeMultiscalar)
	if err != nil {
		t.Fatalf("assemble ms: %v", err)
	}
	om, oenv := oracle(t, p)
	env := interp.NewSysEnv()
	cfg := DefaultConfig(units, width, ooo)
	cfg.CheckForwards = true
	cfg.MaxCycles = 50_000_000
	m, err := NewMultiscalar(p, env, cfg)
	if err != nil {
		t.Fatalf("new multiscalar: %v", err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatalf("ms run (%d units): %v", units, err)
	}
	if res.Out != oenv.Out.String() {
		t.Fatalf("ms out = %q, oracle %q", res.Out, oenv.Out.String())
	}
	if res.Committed != om.ICount {
		t.Fatalf("ms committed = %d, oracle %d", res.Committed, om.ICount)
	}
	return res
}

// sumLoop is the canonical loop-iteration-per-task program: each
// iteration is one task; $s0 (induction) and $s1 (accumulator) flow
// between tasks.
const sumLoop = `
main:
	li $s0, 100
	li $s1, 0
	j  loop !s
loop:
	add  $s1, $s1, $s0 !f
	addi $s0, $s0, -1 !f
	bnez $s0, loop !s
end:
	move $a0, $s1
	li $v0, 1
	syscall
` + exitSeq + `
	.task main targets=loop create=$s0,$s1
	.task loop targets=loop,end create=$s0,$s1
	.task end entry=end
`

func TestScalarBaseline(t *testing.T) {
	for _, width := range []int{1, 2} {
		for _, ooo := range []bool{false, true} {
			res, _ := runScalar(t, sumLoop, width, ooo)
			if res.IPC() <= 0.1 || res.IPC() > float64(width) {
				t.Errorf("width=%d ooo=%v IPC=%.3f out of range", width, ooo, res.IPC())
			}
		}
	}
}

func TestMultiscalarSumLoop(t *testing.T) {
	for _, units := range []int{2, 4, 8} {
		for _, ooo := range []bool{false, true} {
			res := runMS(t, sumLoop, units, 1, ooo)
			if res.TasksRetired < 100 {
				t.Errorf("units=%d tasks retired = %d", units, res.TasksRetired)
			}
		}
	}
}

// parLoop has independent iterations (accumulating into memory slots):
// real speedup should appear.
const parLoop = `
	.data
src:	.space 1600
dst:	.space 1600
	.text
main:
	; initialize src[i] = i using a quick loop (part of main task)
	li $t0, 0
	la $t1, src
init:
	sw $t0, 0($t1)
	addi $t1, $t1, 4
	addi $t0, $t0, 1
	slt $at, $t0, 400
	bnez $at, init
	li   $s0, 0
	j    work !s
work:
	; update and forward the induction variable early, keep a local copy
	; (Section 3.2.2 of the paper: the sequential habit of bumping it at
	; the loop bottom serializes the tasks)
	move $t9, $s0
	addi $s0, $s0, 1 !f
	sll  $t0, $t9, 2
	lw   $t1, src($t0)
	mul  $t2, $t1, $t1
	mul  $t2, $t2, $t1
	add  $t3, $t2, $t1
	sw   $t3, dst($t0)
	slt  $at, $s0, 400
	bnez $at, work !s
done:
	li   $t0, 0
	li   $s1, 0
	la   $t1, dst
chk:
	lw   $t2, 0($t1)
	add  $s1, $s1, $t2
	addi $t1, $t1, 4
	addi $t0, $t0, 1
	slt  $at, $t0, 400
	bnez $at, chk
	move $a0, $s1
	li $v0, 1
	syscall
` + exitSeq + `
	.task main targets=work create=$s0,$t0,$t1,$at
	.task work targets=work,done create=$s0,$t0,$t1,$t2,$t3,$t9,$at
	.task done entry=done
`

func TestMultiscalarSpeedup(t *testing.T) {
	p, err := asm.Assemble(parLoop, asm.ModeMultiscalar)
	if err != nil {
		t.Fatal(err)
	}
	om, _ := oracle(t, p)
	_ = om
	res1 := runMS(t, parLoop, 2, 1, false)
	res8 := runMS(t, parLoop, 8, 1, false)
	if res8.Cycles >= res1.Cycles {
		t.Errorf("8 units (%d cycles) not faster than 2 units (%d)", res8.Cycles, res1.Cycles)
	}
}

func TestScalarVsMultiscalarSpeedup(t *testing.T) {
	sres, _ := runScalar(t, parLoop, 1, false)
	mres := runMS(t, parLoop, 8, 1, false)
	sp := float64(sres.Cycles) / float64(mres.Cycles)
	t.Logf("scalar=%d ms8=%d speedup=%.2f pred=%.1f%%", sres.Cycles, mres.Cycles, sp, 100*mres.PredAccuracy())
	if sp < 1.5 {
		t.Errorf("8-unit speedup = %.2f on an embarrassingly parallel loop", sp)
	}
}

// memDep forces a memory-order dependence between iterations: each task
// increments a memory counter. Later tasks that load before the earlier
// store must squash and re-execute.
const memDep = `
	.data
counter:	.word 0
	.text
main:
	li $s0, 50
	j  loop !s
loop:
	lw   $t0, counter
	addi $t0, $t0, 1
	sw   $t0, counter
	addi $s0, $s0, -1 !f
	bnez $s0, loop !s
end:
	lw  $a0, counter
	li $v0, 1
	syscall
` + exitSeq + `
	.task main targets=loop create=$s0
	.task loop targets=loop,end create=$s0,$t0
	.task end entry=end
`

func TestMemoryOrderViolationSquash(t *testing.T) {
	res := runMS(t, memDep, 4, 1, false)
	if res.MemSquashes == 0 {
		t.Error("expected memory-order squashes on a memory recurrence")
	}
	t.Logf("mem squashes = %d, tasks retired = %d", res.MemSquashes, res.TasksRetired)
}

func TestControlSquashOnLoopExit(t *testing.T) {
	// The loop-back prediction must eventually be wrong at the exit.
	res := runMS(t, sumLoop, 4, 1, false)
	if res.CtlSquashes == 0 {
		t.Error("expected at least one control squash (loop exit)")
	}
	if res.PredAccuracy() < 0.9 {
		t.Errorf("prediction accuracy = %.2f on a 100-iteration loop", res.PredAccuracy())
	}
}

// callProg exercises function-as-task with the return address stack.
const callProg = `
main:
	li  $s0, 10
	li  $s1, 0
	j   loop !s
loop:
	move $a0, $s0
	jal  twice !s
cont:
	add  $s1, $s1, $v0 !f
	addi $s0, $s0, -1 !f
	bnez $s0, loop !s
end:
	move $a0, $s1
	li $v0, 1
	syscall
` + exitSeq + `
twice:
	add $v0, $a0, $a0 !f
	jr  $ra !s
	.task main targets=loop create=$s0,$s1
	.task loop targets=twice pushra=cont create=$a0,$ra
	.task twice targets=ret create=$v0
	.task cont targets=loop,end create=$s0,$s1
	.task end entry=end
`

func TestFunctionCallTasks(t *testing.T) {
	for _, units := range []int{2, 4, 8} {
		res := runMS(t, callProg, units, 1, false)
		if res.TasksRetired < 30 {
			t.Errorf("units=%d tasks = %d", units, res.TasksRetired)
		}
	}
}

func TestSuppressedCallInsideTask(t *testing.T) {
	// The helper runs inside each loop task (no annotations on it).
	src := `
main:
	li  $s0, 10
	li  $s1, 0
	j   loop !s
loop:
	move $a0, $s0
	jal  helper
	add  $s1, $s1, $v0 !f
	addi $s0, $s0, -1 !f
	bnez $s0, loop !s
end:
	move $a0, $s1
	li $v0, 1
	syscall
` + exitSeq + `
helper:
	mul $v0, $a0, $a0
	jr  $ra
	.task main targets=loop create=$s0,$s1
	.task loop targets=loop,end create=$s0,$s1,$a0,$v0,$ra
	.task end entry=end
`
	res := runMS(t, src, 4, 2, true)
	if res.TasksRetired < 10 {
		t.Errorf("tasks = %d", res.TasksRetired)
	}
}

func TestPerUnitActivityAccounting(t *testing.T) {
	res := runMS(t, sumLoop, 4, 1, false)
	var total uint64
	for _, c := range res.Activity {
		total += c
	}
	total += res.SquashedCycles
	// Every unit-cycle is classified somewhere: 4 units x cycles.
	want := 4 * res.Cycles
	if total != want {
		t.Errorf("activity total = %d, want %d (4 x %d cycles)", total, want, res.Cycles)
	}
}

func TestFloatAcrossTasks(t *testing.T) {
	src := `
	.data
vals:	.double 1.5, 2.5, 3.5, 4.5, 5.5, 6.5, 7.5, 8.5
	.text
main:
	li   $s0, 8
	la   $s1, vals
	mtc1 $f20, $zero
	j    loop !s
loop:
	l.d   $f0, 0($s1)
	add.d $f20, $f20, $f0
	mov.d $f20, $f20 !f
	addi  $s1, $s1, 8 !f
	addi  $s0, $s0, -1 !f
	bnez  $s0, loop !s
end:
	mfc1 $a0, $f20
	li $v0, 1
	syscall
` + exitSeq + `
	.task main targets=loop create=$s0,$s1,$f20
	.task loop targets=loop,end create=$s0,$s1,$f0,$f20
	.task end entry=end
`
	res := runMS(t, src, 4, 1, false)
	if res.Out != "40" {
		t.Errorf("out = %q, want 40", res.Out)
	}
}

func TestTaskWithoutForwardBitsUsesCompletionFlush(t *testing.T) {
	// No !f anywhere: values flow only through the completion flush.
	src := `
main:
	li $s0, 20
	li $s1, 0
	j  loop !s
loop:
	add  $s1, $s1, $s0
	addi $s0, $s0, -1
	bnez $s0, loop !s
end:
	move $a0, $s1
	li $v0, 1
	syscall
` + exitSeq + `
	.task main targets=loop create=$s0,$s1
	.task loop targets=loop,end create=$s0,$s1
	.task end entry=end
`
	res := runMS(t, src, 4, 1, false)
	if res.Out != "210" {
		t.Errorf("out = %q", res.Out)
	}
}

func TestForwardBitsBeatCompletionFlush(t *testing.T) {
	// Same computation with and without early forwarding of the
	// induction variable: early forwarding must not be slower.
	withFwd := runMS(t, sumLoop, 4, 1, false)
	noFwd := runMS(t, `
main:
	li $s0, 100
	li $s1, 0
	j  loop !s
loop:
	add  $s1, $s1, $s0
	addi $s0, $s0, -1
	bnez $s0, loop !s
end:
	move $a0, $s1
	li $v0, 1
	syscall
`+exitSeq+`
	.task main targets=loop create=$s0,$s1
	.task loop targets=loop,end create=$s0,$s1
	.task end entry=end
`, 4, 1, false)
	if withFwd.Cycles > noFwd.Cycles {
		t.Errorf("forward bits (%d cycles) slower than completion flush (%d)", withFwd.Cycles, noFwd.Cycles)
	}
}

func TestStorePrintInteraction(t *testing.T) {
	// A task stores into a buffer and the same task prints it: the
	// syscall must see the speculative (ARB-buffered) bytes.
	src := `
	.data
buf:	.asciiz "xy\n"
	.text
main:
	li $t0, 'a'
	sb $t0, buf
	la $a0, buf
	li $v0, 4
	syscall
` + exitSeq + `
	.task main create=$t0,$a0,$v0
`
	res := runMS(t, src, 4, 1, false)
	if res.Out != "ay\n" {
		t.Errorf("out = %q", res.Out)
	}
}

func TestARBSquashPolicy(t *testing.T) {
	p, err := asm.Assemble(parLoop, asm.ModeMultiscalar)
	if err != nil {
		t.Fatal(err)
	}
	om, oenv := oracle(t, p)
	env := interp.NewSysEnv()
	cfg := DefaultConfig(4, 1, false)
	cfg.ARBEntries = 4 // tiny: force overflows
	cfg.ARBPolicy = 1  // PolicySquash
	cfg.MaxCycles = 50_000_000
	m, err := NewMultiscalar(p, env, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Out != oenv.Out.String() || res.Committed != om.ICount {
		t.Fatalf("overflow-squash run diverged: out=%q committed=%d want %d",
			res.Out, res.Committed, om.ICount)
	}
	t.Logf("arb squashes = %d overflows = %d", res.ARBSquashes, res.ARBOverflows)
}

func TestARBStallPolicyTiny(t *testing.T) {
	p, err := asm.Assemble(parLoop, asm.ModeMultiscalar)
	if err != nil {
		t.Fatal(err)
	}
	om, oenv := oracle(t, p)
	env := interp.NewSysEnv()
	cfg := DefaultConfig(4, 1, false)
	cfg.ARBEntries = 4
	cfg.MaxCycles = 50_000_000
	m, err := NewMultiscalar(p, env, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Out != oenv.Out.String() || res.Committed != om.ICount {
		t.Fatalf("stall run diverged")
	}
}

func TestUnitSweepInvariance(t *testing.T) {
	// Committed instruction count must be identical across unit counts.
	var base uint64
	for i, units := range []int{2, 4, 8} {
		res := runMS(t, parLoop, units, 1, false)
		if i == 0 {
			base = res.Committed
		} else if res.Committed != base {
			t.Errorf("units=%d committed=%d, want %d", units, res.Committed, base)
		}
	}
}
