package core

import (
	"multiscalar/internal/interp"
	"multiscalar/internal/isa"
	"multiscalar/internal/snapshot"
)

// Checkpoint/restore for the timing machines (docs/simulator.md,
// "Snapshot format"). Save serializes every piece of mutable machine
// state; Restore loads it into a machine freshly constructed from the
// same Program and Config, re-deriving the pointers a snapshot cannot
// carry (task descriptors by entry address, window instructions by PC,
// ARB touch-list entries by chunk). A restored run continues exactly
// where the saved one stopped: results, statistics and trace events
// come out bit-identical to the uninterrupted run.

// ScheduleCheckpoint arranges for fn to run once, at the top of the
// first executed loop iteration whose cycle is at or after the given
// cycle — the one point in the loop where machine state is exactly
// what Save captures. Under the wakeup scheduler that iteration may
// land after the requested cycle (skipped stall cycles are never
// broken up, so a restored run replays the exact iteration sequence of
// an uninterrupted one and all Result fields, CyclesTicked included,
// come out identical). A non-nil error from fn aborts the run.
func (s *Scalar) ScheduleCheckpoint(cycle uint64, fn func() error) {
	s.chkAt, s.chkFn = cycle, fn
}

// ScheduleCheckpoint is the multiscalar form; see Scalar.ScheduleCheckpoint.
func (m *Multiscalar) ScheduleCheckpoint(cycle uint64, fn func() error) {
	m.chkAt, m.chkFn = cycle, fn
}

func saveValue(e *snapshot.Encoder, v interp.Value) {
	e.U32(v.I)
	e.F64(v.F)
}

func loadValue(d *snapshot.Decoder) interp.Value {
	return interp.Value{I: d.U32(), F: d.F64()}
}

func saveRegs(e *snapshot.Encoder, regs *[isa.NumRegs]interp.Value) {
	for _, v := range regs {
		saveValue(e, v)
	}
}

func loadRegs(d *snapshot.Decoder, regs *[isa.NumRegs]interp.Value) {
	for i := range regs {
		regs[i] = loadValue(d)
	}
}

// Save serializes the scalar machine.
func (s *Scalar) Save() ([]byte, error) {
	e := snapshot.NewEncoder(snapshot.KindScalar, s.now)
	e.Tag("SCLR")
	e.Bool(s.started)
	e.U64(s.now)
	e.U64(s.ticked)
	s.env.SaveState(e)
	s.backing.SaveState(e)
	s.bus.SaveState(e)
	s.icache.SaveState(e)
	s.dcache.SaveState(e)
	s.unit.SaveState(e)
	saveRegs(e, &s.ext.regs)
	return e.Bytes(), nil
}

// Restore loads a scalar snapshot into a machine built from the same
// Program and Config; Run then resumes the saved run. On error the
// machine must not be run.
func (s *Scalar) Restore(data []byte) error {
	d, err := snapshot.NewDecoder(data, snapshot.KindScalar)
	if err != nil {
		return err
	}
	d.Tag("SCLR")
	s.started = d.Bool()
	s.now = d.U64()
	s.ticked = d.U64()
	s.env.LoadState(d)
	s.backing.LoadState(d)
	s.bus.LoadState(d)
	s.icache.LoadState(d)
	s.dcache.LoadState(d)
	s.unit.LoadState(d)
	loadRegs(d, &s.ext.regs)
	return d.Finish()
}

func saveRegFile(e *snapshot.Encoder, rf *regFile) {
	saveRegs(e, &rf.vals)
	for _, t := range rf.readyAt {
		e.U64(t)
	}
	e.U64(uint64(rf.pending))
	e.U64(uint64(rf.sent))
	e.U64(uint64(rf.accum))
}

func loadRegFile(d *snapshot.Decoder, rf *regFile) {
	loadRegs(d, &rf.vals)
	for i := range rf.readyAt {
		rf.readyAt[i] = d.U64()
	}
	rf.pending = isa.RegMask(d.U64())
	rf.sent = isa.RegMask(d.U64())
	rf.accum = isa.RegMask(d.U64())
}

func (m *Multiscalar) saveTask(e *snapshot.Encoder, ts *taskState) {
	e.Bool(ts != nil)
	if ts == nil {
		return
	}
	e.U32(ts.entry)
	e.U64(ts.assignedAt)
	e.I32(ts.seq)
	e.U64(uint64(ts.sentMask))
	for _, sv := range ts.sentVals {
		saveValue(e, sv.val)
		e.U64(sv.when)
	}
	e.Bool(ts.predMade)
	e.Bool(ts.predCounts)
	e.Int(ts.predIdx)
	e.U32(ts.predEntry)
	e.U16(ts.histBefore)
	for _, h := range ts.histSnap {
		e.U16(h)
	}
	ts.rasSnap.SaveState(e)
	e.Bool(ts.validated)
}

func (m *Multiscalar) loadTask(d *snapshot.Decoder) *taskState {
	if !d.Bool() {
		return nil
	}
	ts := &taskState{}
	ts.entry = d.U32()
	if d.Err() != nil {
		return nil
	}
	if ts.desc = m.prog.TaskAt(ts.entry); ts.desc == nil {
		d.Failf("core: task entry 0x%x has no descriptor", ts.entry)
		return nil
	}
	ts.assignedAt = d.U64()
	ts.seq = d.I32()
	ts.sentMask = isa.RegMask(d.U64())
	for i := range ts.sentVals {
		ts.sentVals[i].val = loadValue(d)
		ts.sentVals[i].when = d.U64()
	}
	ts.predMade = d.Bool()
	ts.predCounts = d.Bool()
	ts.predIdx = d.Int()
	ts.predEntry = d.U32()
	ts.histBefore = d.U16()
	for i := range ts.histSnap {
		ts.histSnap[i] = d.U16()
	}
	ts.rasSnap.LoadState(d)
	ts.validated = d.Bool()
	return ts
}

// Save serializes the multiscalar machine.
func (m *Multiscalar) Save() ([]byte, error) {
	e := snapshot.NewEncoder(snapshot.KindMultiscalar, m.now)
	e.Tag("MSC ")
	e.Int(m.cfg.NumUnits)
	e.U64(m.now)
	e.U64(m.ticked)
	e.Bool(m.finished)
	e.Bool(m.progress)
	e.Int(m.head)
	e.Int(m.active)
	e.I32(m.nextSeq)
	e.U32(m.forced)
	e.Bool(m.forcedValid)
	e.Bool(m.terminal)
	e.Bool(m.pending.valid)
	e.U64(m.pending.ready)
	e.U32(m.pending.entry)
	for i := 0; i < m.cfg.NumUnits; i++ {
		e.U64(m.sendAt[i])
		e.Int(m.sendN[i])
		e.U64(m.sendBusy[i])
	}
	e.Int(m.viol)
	e.U32(m.violAddr)
	saveRegs(e, &m.archRegs)
	e.U64(m.sharedFUAt)
	e.Int(m.sharedFUUsed[0])
	e.Int(m.sharedFUUsed[1])

	m.predictor.SaveState(e)
	m.ras.SaveState(e)
	m.descCache.SaveState(e)
	m.env.SaveState(e)
	m.backing.SaveState(e)
	m.bus.SaveState(e)
	for _, ic := range m.icaches {
		ic.SaveState(e)
	}
	m.dbanks.SaveState(e)
	m.arb.SaveState(e)
	for _, u := range m.units {
		u.SaveState(e)
	}
	for _, rf := range m.rfs {
		saveRegFile(e, rf)
	}
	for _, ts := range m.tasks {
		m.saveTask(e, ts)
	}

	e.U64(m.committed)
	e.U64(m.tasksRetired)
	e.U64(m.tasksSquashed)
	e.U64(m.ctlSquashes)
	e.U64(m.ringSends)
	e.U64(m.memSquashes)
	e.U64(m.arbSquashes)
	e.U64(m.predictions)
	e.U64(m.predCorrect)
	for _, a := range m.activity {
		e.U64(a)
	}
	e.U64(m.squashedCycles)
	return e.Bytes(), nil
}

// Restore loads a multiscalar snapshot into a machine built from the
// same Program and Config; Run then resumes the saved run. On error
// the machine must not be run.
func (m *Multiscalar) Restore(data []byte) error {
	d, err := snapshot.NewDecoder(data, snapshot.KindMultiscalar)
	if err != nil {
		return err
	}
	d.Tag("MSC ")
	if n := d.Int(); d.Err() == nil && n != m.cfg.NumUnits {
		d.Failf("core: snapshot has %d units, machine has %d", n, m.cfg.NumUnits)
	}
	if err := d.Err(); err != nil {
		return err
	}
	m.now = d.U64()
	m.ticked = d.U64()
	m.finished = d.Bool()
	m.progress = d.Bool()
	m.head = d.Int()
	m.active = d.Int()
	m.nextSeq = d.I32()
	if m.head < 0 || m.head >= m.cfg.NumUnits || m.active < 0 || m.active > m.cfg.NumUnits {
		d.Failf("core: head %d / active %d out of range", m.head, m.active)
		return d.Err()
	}
	m.forced = d.U32()
	m.forcedValid = d.Bool()
	m.terminal = d.Bool()
	m.pending.valid = d.Bool()
	m.pending.ready = d.U64()
	m.pending.entry = d.U32()
	m.pending.desc = nil
	if d.Err() == nil && m.pending.valid {
		if m.pending.desc = m.prog.TaskAt(m.pending.entry); m.pending.desc == nil {
			d.Failf("core: pending entry 0x%x has no descriptor", m.pending.entry)
			return d.Err()
		}
	}
	for i := 0; i < m.cfg.NumUnits; i++ {
		m.sendAt[i] = d.U64()
		m.sendN[i] = d.Int()
		m.sendBusy[i] = d.U64()
	}
	m.viol = d.Int()
	m.violAddr = d.U32()
	loadRegs(d, &m.archRegs)
	m.sharedFUAt = d.U64()
	m.sharedFUUsed[0] = d.Int()
	m.sharedFUUsed[1] = d.Int()

	m.predictor.LoadState(d)
	m.ras.LoadState(d)
	m.descCache.LoadState(d)
	m.env.LoadState(d)
	m.backing.LoadState(d)
	m.bus.LoadState(d)
	for _, ic := range m.icaches {
		ic.LoadState(d)
	}
	m.dbanks.LoadState(d)
	m.arb.LoadState(d)
	for _, u := range m.units {
		u.LoadState(d)
	}
	for _, rf := range m.rfs {
		loadRegFile(d, rf)
	}
	for i := range m.tasks {
		m.tasks[i] = m.loadTask(d)
		if d.Err() != nil {
			return d.Err()
		}
	}

	m.committed = d.U64()
	m.tasksRetired = d.U64()
	m.tasksSquashed = d.U64()
	m.ctlSquashes = d.U64()
	m.ringSends = d.U64()
	m.memSquashes = d.U64()
	m.arbSquashes = d.U64()
	m.predictions = d.U64()
	m.predCorrect = d.U64()
	for i := range m.activity {
		m.activity[i] = d.U64()
	}
	m.squashedCycles = d.U64()
	return d.Finish()
}
