// Package cfg builds and analyzes the control flow graph of an assembled
// program: basic blocks, dominators, natural loops, call summaries, and
// global register liveness. The task partitioner (internal/taskpart) uses
// these analyses to reproduce the compiler half of the paper's toolchain:
// choosing task boundaries and computing create masks trimmed by
// dead-register analysis (Section 2.2).
package cfg

import (
	"fmt"
	"sort"

	"multiscalar/internal/isa"
)

// Block is one basic block: a maximal straight-line run of instructions
// with a single entry at the top.
type Block struct {
	Index int    // position in Graph.Blocks (reverse-postorder-ish, by address)
	Start uint32 // address of first instruction
	End   uint32 // address just past the last instruction

	Succs []*Block
	Preds []*Block

	// CallTarget is the callee entry address when the block ends in a
	// direct call (jal); 0 otherwise. IndirectCall marks a jalr ending.
	CallTarget   uint32
	IndirectCall bool
	// Returns marks a block ending in jr (function return).
	Returns bool
	// Halts marks a block ending in a recognized exit syscall (see
	// ExitSyscalls): the program terminates, so the block has no
	// successors and nothing is live out of it.
	Halts bool

	// Dataflow facts filled in by Analyze.
	Def     isa.RegMask // registers written in the block (incl. call effects)
	Use     isa.RegMask // registers read before any write in the block
	LiveIn  isa.RegMask
	LiveOut isa.RegMask

	// Dominator tree parent (nil for entry / unreachable).
	IDom *Block
	// Loop header this block belongs to most immediately, nil if none.
	Loop *Loop
}

// NumInstrs returns the instruction count of the block.
func (b *Block) NumInstrs() int { return int((b.End - b.Start) / isa.InstrSize) }

func (b *Block) String() string {
	return fmt.Sprintf("B%d[0x%x,0x%x)", b.Index, b.Start, b.End)
}

// Loop is a natural loop discovered from a back edge.
type Loop struct {
	Header *Block
	Blocks map[*Block]bool
	Parent *Loop // enclosing loop, if nested
	Depth  int
}

// Graph is the control flow graph of a program.
type Graph struct {
	Prog   *isa.Program
	Blocks []*Block
	ByAddr map[uint32]*Block // block start -> block
	Entry  *Block
	Loops  []*Loop

	// Funcs maps each discovered function entry (program entry + every
	// direct call target) to its transitive register effect summary.
	Funcs map[uint32]*FuncSummary
}

// FuncSummary is the transitive register effect of calling a function.
type FuncSummary struct {
	Entry uint32
	Defs  isa.RegMask // registers the call may write (incl. callees)
	// Uses holds the upward-exposed reads: registers the call may read
	// before writing (incl. callees). Registers the function only reads
	// after writing observe its own values, not the caller's, and are
	// excluded.
	Uses isa.RegMask
}

// instrOf returns the instruction at addr.
func (g *Graph) instrOf(addr uint32) *isa.Instr { return g.Prog.InstrAt(addr) }

// ExitSyscalls returns the addresses of statically recognizable program
// terminations: each `syscall` whose nearest preceding $v0 write in the
// same straight-line run is a constant 10 (the exit code of the li
// expansion). Such a syscall never falls through, so treating it as a
// block terminator removes bogus edges into whatever code follows it in
// the text (typically the next function body), tightening liveness.
// Syscalls with unknown $v0 are conservatively not included.
func ExitSyscalls(p *isa.Program) map[uint32]bool {
	// Any address control can jump to invalidates linear constant
	// tracking: a branch could arrive there with a different $v0.
	joins := map[uint32]bool{}
	for i := range p.Text {
		in := &p.Text[i]
		if in.Op.IsControl() && in.Op != isa.OpJr && in.Op != isa.OpJalr {
			joins[in.Target] = true
		}
	}
	for entry := range p.Tasks {
		joins[entry] = true
	}
	out := map[uint32]bool{}
	v0 := int32(-1) // last known constant in $v0; -1 = unknown
	for i := range p.Text {
		addr := isa.TextBase + uint32(i)*isa.InstrSize
		if joins[addr] {
			v0 = -1
		}
		in := &p.Text[i]
		switch {
		case in.Op == isa.OpSyscall:
			if v0 == 10 {
				out[addr] = true
			}
			v0 = -1 // sbrk and future syscalls may write $v0
		case in.Op.IsControl():
			v0 = -1 // execution resumes at a target or fall-through of a split
		case in.Dest() == isa.RegV0:
			if (in.Op == isa.OpOri || in.Op == isa.OpAddi) && in.Rs == isa.RegZero {
				v0 = in.Imm
			} else {
				v0 = -1
			}
		}
	}
	return out
}

// BlockOf returns the block containing the given address.
func (g *Graph) BlockOf(addr uint32) *Block {
	i := sort.Search(len(g.Blocks), func(i int) bool { return g.Blocks[i].End > addr })
	if i < len(g.Blocks) && g.Blocks[i].Start <= addr {
		return g.Blocks[i]
	}
	return nil
}

// Build constructs the basic-block graph for a program.
func Build(p *isa.Program) *Graph {
	g := &Graph{Prog: p, ByAddr: make(map[uint32]*Block)}
	textEnd := p.TextEnd()
	halts := ExitSyscalls(p)

	// Pass 1: find leaders. A recognized exit syscall terminates its block
	// like a control instruction: whatever follows it in the text starts a
	// new block and receives no fall-through edge.
	leaders := map[uint32]bool{p.Entry: true, isa.TextBase: true}
	for i := range p.Text {
		in := &p.Text[i]
		addr := isa.TextBase + uint32(i)*isa.InstrSize
		if in.Op.IsControl() || halts[addr] {
			if in.Op.IsControl() && in.Op != isa.OpJr && in.Op != isa.OpJalr && in.Target >= isa.TextBase && in.Target < textEnd {
				leaders[in.Target] = true
			}
			if addr+isa.InstrSize < textEnd {
				leaders[addr+isa.InstrSize] = true
			}
		}
	}
	// Task entries are also leaders (tasks must start on block boundaries).
	for entry := range p.Tasks {
		leaders[entry] = true
	}

	starts := make([]uint32, 0, len(leaders))
	for a := range leaders {
		starts = append(starts, a)
	}
	sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })

	// Pass 2: create blocks. Every instruction following a control
	// instruction is a leader, so a control instruction can only be the
	// last instruction before the next leader — blocks are exactly the
	// inter-leader ranges.
	for i, start := range starts {
		end := textEnd
		if i+1 < len(starts) {
			end = starts[i+1]
		}
		b := &Block{Index: len(g.Blocks), Start: start, End: end}
		g.Blocks = append(g.Blocks, b)
		g.ByAddr[start] = b
	}

	// Pass 3: edges.
	for _, b := range g.Blocks {
		last := g.instrOf(b.End - isa.InstrSize)
		addEdge := func(to uint32) {
			if t := g.ByAddr[to]; t != nil {
				b.Succs = append(b.Succs, t)
				t.Preds = append(t.Preds, b)
			}
		}
		if halts[b.End-isa.InstrSize] {
			b.Halts = true // program exit: no successors
			continue
		}
		switch {
		case last.Op.IsBranch():
			addEdge(last.Target)
			addEdge(b.End)
		case last.Op == isa.OpJ:
			addEdge(last.Target)
		case last.Op == isa.OpJal:
			b.CallTarget = last.Target
			addEdge(b.End) // call returns to the fall-through
		case last.Op == isa.OpJalr:
			b.IndirectCall = true
			addEdge(b.End)
		case last.Op == isa.OpJr:
			b.Returns = true // no static successor
		default:
			addEdge(b.End) // fall through
		}
	}
	g.Entry = g.ByAddr[p.Entry]
	return g
}
