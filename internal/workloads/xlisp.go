package workloads

import "strings"

// xlisp is the lisp-interpreter workload (paper §5.3: like gcc it spreads
// time across much code, and "squashes result in near-sequential
// execution of the important tasks"; the paper is "less confident" that
// exploitable parallelism exists at all). The kernel evaluates a stream
// of small expression trees: a task is one eval of a tree through a
// suppressed recursive evaluator, and every evaluation conses a result
// cell by bumping a shared heap pointer in memory — the allocation
// recurrence that serializes real lisp systems.
func init() {
	register(&Workload{
		Name:         "xlisp",
		Description:  "recursive expression evaluation with cons allocation (xlisp kernel)",
		DefaultScale: 120, // expressions
		TestScale:    20,
		Source:       xlispSource,
		Paper: PaperRow{
			ScalarM: 46.61, MultiM: 54.34, PctIncrease: 16.6,
			InOrder1: PaperPerf{ScalarIPC: 0.80, Speedup4: 0.91, Speedup8: 0.94, Pred4: 80.6, Pred8: 79.5},
			InOrder2: PaperPerf{ScalarIPC: 1.03, Speedup4: 0.86, Speedup8: 0.88, Pred4: 80.0, Pred8: 78.7},
			OOO1:     PaperPerf{ScalarIPC: 0.82, Speedup4: 0.95, Speedup8: 1.01, Pred4: 75.6, Pred8: 77.1},
			OOO2:     PaperPerf{ScalarIPC: 1.12, Speedup4: 0.85, Speedup8: 0.90, Pred4: 74.6, Pred8: 76.5},
		},
	})
}

// Cons cell: car, cdr — 2 words. Negative car/cdr values are immediate
// leaves (value = -(x+1)); non-negative are cell indexes.
func xlispTrees(nexprs int) (cells []int, roots []int) {
	r := newRNG(0x115b)
	var build func(depth int) int
	build = func(depth int) int {
		if depth <= 0 || r.intn(3) == 0 {
			return -(1 + r.intn(50)) // leaf
		}
		car := build(depth - 1)
		cdr := build(depth - 1)
		cells = append(cells, car, cdr)
		return len(cells)/2 - 1
	}
	for i := 0; i < nexprs; i++ {
		root := build(3 + r.intn(3))
		if root < 0 { // force at least one cell per expression
			cells = append(cells, root, -(1 + r.intn(50)))
			root = len(cells)/2 - 1
		}
		roots = append(roots, root)
	}
	return cells, roots
}

func xlispSource(scale int) string {
	cells, roots := xlispTrees(scale)
	var sb strings.Builder
	sb.WriteString("\t.data\ncells:\n")
	sb.WriteString(wordLines(cells))
	sb.WriteString("roots:\n")
	sb.WriteString(wordLines(roots))
	sb.WriteString("heapptr:\t.word results\nresults:\t.space ")
	sb.WriteString(itoa(8*scale + 64))
	sb.WriteString("\n")
	sb.WriteString(`
	.text
main:
	li   $s0, 0 !f           ; expression index
	li   $s1, 0 !f           ; checksum
`)
	sb.WriteString("\tli   $s5, " + itoa(len(roots)) + " !f\n")
	sb.WriteString(`	j    EXPR !s

EXPR:
	move $t9, $s0
	.msonly addi $s0, $s0, 1 !f
	.msonly slt  $at, $s0, $s5
	sll  $t0, $t9, 2
	lw   $a0, roots($t0)
	jal  eval                ; suppressed recursive evaluator
	; eval pushes and pops frames: $sp is back to its entry value here and
	; will not move again in this task, so release it for the next task
	.msonly release $sp
	; cons the result: the shared heap pointer serializes tasks
	lw   $t1, heapptr
	sw   $v0, 0($t1)
	sw   $zero, 4($t1)
	addi $t1, $t1, 8
	sw   $t1, heapptr
	add  $s1, $s1, $v0 !f
	.msonly bnez $at, EXPR !s
	.sconly addi $s0, $s0, 1
	.sconly bne  $s0, $s5, EXPR
DONE:
	move $a0, $s1
` + printInt + exitSeq + `

	; eval(node in $a0) -> $v0: leaves are negative immediates; interior
	; cells evaluate car and cdr and combine
eval:
	bltz $a0, EVLEAF
	addi $sp, $sp, -12
	sw   $ra, 0($sp)
	sw   $a0, 4($sp)
	sll  $t2, $a0, 3         ; cell base
	lw   $a0, cells($t2)     ; car
	jal  eval
	sw   $v0, 8($sp)
	lw   $a0, 4($sp)
	sll  $t2, $a0, 3
	lw   $a0, cells+4($t2)   ; cdr
	jal  eval
	lw   $t3, 8($sp)
	add  $v0, $v0, $t3
	lw   $ra, 0($sp)
	addi $sp, $sp, 12
	jr   $ra
EVLEAF:
	addi $v0, $a0, 1
	sub  $v0, $zero, $v0     ; value = -(x+1) undone
	jr   $ra
	.task main targets=EXPR create=$s0,$s1,$s5
	.task EXPR targets=EXPR,DONE create=$s0,$s1,$sp
	.task DONE
`)
	return sb.String()
}
