// Package job promotes the harness's implicit unit of work into a
// first-class request type. A Spec names everything that determines a
// result — the program (inline, as source, or as a suite workload), the
// machine Config, the program input, the run bounds, and the artifacts
// the caller wants back — and hashes to a stable content-addressed Key.
// Everything that caches or serves simulation work keys on it: the bench
// harness's build/oracle and shared-run snapshot memos, the msserve
// result cache, and the public SubmitJob facade all consume the same key
// instead of hand-rolled tuples.
package job

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"math"
	"sync"

	"multiscalar/internal/asm"
	"multiscalar/internal/core"
	"multiscalar/internal/isa"
	"multiscalar/internal/sample"
)

// SpecVersion tags the canonical encoding Key hashes. Bump it whenever a
// Spec field is added, removed, or reinterpreted, so keys from different
// layouts can never alias. Version 2 added sampled jobs (OpSampled and
// the Sample parameter section).
const SpecVersion = 2

// Op selects what a job does.
type Op uint8

const (
	// OpSimulate runs the timing simulation the Config describes.
	OpSimulate Op = iota
	// OpAssemble only builds the program (returning the .msb container)
	// without simulating it.
	OpAssemble
	// OpSampled runs a SMARTS-style sampled simulation (internal/sample):
	// functional-warm fast-forward plus detailed measurement windows,
	// returning an extrapolated cycle estimate with a confidence interval
	// instead of an exact Result.
	OpSampled
)

func (o Op) String() string {
	switch o {
	case OpSimulate:
		return "simulate"
	case OpAssemble:
		return "assemble"
	case OpSampled:
		return "sampled"
	}
	return fmt.Sprintf("Op(%d)", uint8(o))
}

// MachineSel overrides the machine-dispatch rule for a simulate job.
type MachineSel uint8

const (
	// MachineAuto applies the facade rule: the scalar baseline iff the
	// configuration has at most one unit and the binary carries no task
	// descriptors, otherwise the multiscalar processor.
	MachineAuto MachineSel = iota
	// MachineScalar forces the scalar baseline (the deprecated RunScalar
	// contract).
	MachineScalar
	// MachineMultiscalar forces the multiscalar machine (the deprecated
	// RunMultiscalar contract; the program must carry task descriptors).
	MachineMultiscalar
)

// Spec is one unit of simulation-service work. The zero value is not a
// valid job: exactly one program identity (Program, Source, or Workload)
// must be set.
//
// Spec is a value type: the fields fully determine the result, and Key
// hashes a canonical encoding of them. Runtime attachments that do not
// affect the result bytes — live trace sinks, checkpoint callbacks,
// streaming stdin — ride in a Runtime instead and never enter the key.
type Spec struct {
	Op Op

	// Program identity — exactly one of the three.
	Program  *isa.Program // pre-assembled binary (hashed by content)
	Source   string       // annotated assembly text, built with Mode
	Workload string       // a suite workload name, built with Mode at Scale

	Scale int      // workload problem scale (0 = the workload's default)
	Mode  asm.Mode // build mode for Source/Workload jobs

	Machine MachineSel

	// Config describes the simulated machine (OpSimulate only; its
	// runtime-only Trace/Sink fields never reach the key).
	Config core.Config

	// Stdin is the program's input stream. nil (no input) and empty
	// (present but zero-length input) are distinct, matching the memo
	// contract the bench harness has always kept.
	Stdin []byte

	// Sample configures sampled jobs (OpSampled); zero fields are derived
	// from the run (sample.Params). Ignored for other ops.
	Sample sample.Params

	// Run bounds. Zero means the Config / facade default.
	MaxCycles uint64
	MaxInstrs uint64

	// Verify checks the timing run against the functional oracle.
	Verify bool

	// Requested artifacts.
	WantTrace    bool // return the run's .mstrc event trace
	WantSnapshot bool // return the finished machine's snapshot
}

// Validate checks structural invariants common to every consumer.
func (s *Spec) Validate() error {
	if s.Op != OpSimulate && s.Op != OpAssemble && s.Op != OpSampled {
		return fmt.Errorf("job: unknown op %d", int(s.Op))
	}
	if s.Op == OpSampled {
		if s.Machine != MachineAuto {
			return errors.New("job: sampled jobs use automatic machine dispatch")
		}
		if s.WantTrace || s.WantSnapshot {
			return errors.New("job: sampled jobs produce no trace or snapshot artifacts")
		}
		if s.Verify {
			return errors.New("job: sampled jobs are inherently oracle-checked (the functional pass is the oracle)")
		}
	}
	if s.Machine != MachineAuto && s.Machine != MachineScalar && s.Machine != MachineMultiscalar {
		return fmt.Errorf("job: unknown machine selector %d", int(s.Machine))
	}
	n := 0
	if s.Program != nil {
		n++
	}
	if s.Source != "" {
		n++
	}
	if s.Workload != "" {
		n++
	}
	if n != 1 {
		return errors.New("job: exactly one of Program, Source, Workload must be set")
	}
	if s.Op == OpAssemble && s.Program != nil {
		return errors.New("job: assemble jobs take Source or Workload, not a built Program")
	}
	return nil
}

// MarshalCanonical returns the versioned canonical binary encoding of the
// spec: a fixed field order with tagged, length-prefixed sections, the
// program reduced to its content hash, the Config reduced to its
// canonical JSON. Byte-equal encodings mean "the same job"; Key hashes
// exactly these bytes.
func (s *Spec) MarshalCanonical() ([]byte, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	buf := make([]byte, 0, 256)
	buf = append(buf, 'M', 'S', 'J', 'B', SpecVersion)
	buf = append(buf, byte(s.Op), byte(s.Machine), byte(s.Mode))

	appendBytes := func(tag byte, b []byte) {
		buf = append(buf, tag)
		buf = binary.BigEndian.AppendUint64(buf, uint64(len(b)))
		buf = append(buf, b...)
	}
	switch {
	case s.Program != nil:
		h, err := ProgramHash(s.Program)
		if err != nil {
			return nil, err
		}
		appendBytes('P', []byte(h))
	case s.Source != "":
		appendBytes('S', []byte(s.Source))
	default:
		appendBytes('W', []byte(s.Workload))
	}
	buf = binary.BigEndian.AppendUint64(buf, uint64(int64(s.Scale)))

	if s.Op == OpSimulate || s.Op == OpSampled {
		cfg, err := s.Config.MarshalCanonical()
		if err != nil {
			return nil, err
		}
		appendBytes('C', cfg)
	}
	if s.Op == OpSampled {
		// Sampling parameters change the estimate, so they are part of the
		// job's identity (zero fields are derived deterministically from
		// the run, so the zero Params is a stable identity too).
		var sp [5 * 8]byte
		binary.BigEndian.PutUint64(sp[0:], s.Sample.WindowInstrs)
		binary.BigEndian.PutUint64(sp[8:], s.Sample.WarmupInstrs)
		binary.BigEndian.PutUint64(sp[16:], s.Sample.PeriodInstrs)
		binary.BigEndian.PutUint64(sp[24:], s.Sample.OffsetInstrs)
		binary.BigEndian.PutUint64(sp[32:], math.Float64bits(s.Sample.BiasFrac))
		appendBytes('G', sp[:])
	}

	if s.Stdin == nil {
		buf = append(buf, 0)
	} else {
		appendBytes(1, s.Stdin)
	}

	buf = binary.BigEndian.AppendUint64(buf, s.MaxCycles)
	buf = binary.BigEndian.AppendUint64(buf, s.MaxInstrs)

	var flags byte
	if s.Verify {
		flags |= 1
	}
	if s.WantTrace {
		flags |= 2
	}
	if s.WantSnapshot {
		flags |= 4
	}
	buf = append(buf, flags)
	return buf, nil
}

// Key returns the spec's stable content-addressed identity: the
// hex-encoded SHA-256 of the canonical encoding. Equal keys mean equal
// jobs (up to hash collision), across processes and over time for a
// given SpecVersion.
func (s *Spec) Key() (string, error) {
	enc, err := s.MarshalCanonical()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(enc)
	return hex.EncodeToString(sum[:]), nil
}

// progHashes memoizes content hashes by program pointer: a memoized
// workload build is shared across dozens of jobs and must hash once,
// while transformed clones (the forwarding ablation) hash to their own
// identity.
var progHashes sync.Map // *isa.Program -> string

// ProgramHash returns the SHA-256 of the program's wire encoding (text,
// data, task descriptors, symbols), memoized per pointer.
func ProgramHash(p *isa.Program) (string, error) {
	if v, ok := progHashes.Load(p); ok {
		return v.(string), nil
	}
	h := sha256.New()
	if err := isa.WriteProgram(h, p); err != nil {
		return "", err
	}
	s := string(h.Sum(nil))
	progHashes.Store(p, s)
	return s, nil
}
