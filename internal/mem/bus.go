package mem

import "multiscalar/internal/trace"

// Bus models the single 4-word split-transaction memory bus of
// Section 5.1: every memory request (icache and dcache misses alike) pays
// a 10-cycle access latency for the first 4 words and 1 cycle for each
// additional 4 words, serialized with any other traffic (the paper's
// "plus any bus contention"). Like Cache.Access, Access returns the
// completion cycle synchronously and latches contention in busyUntil —
// the timestamp-latching property the core's wakeup scheduler depends
// on (docs/perf.md).
type Bus struct {
	FirstLatency int // cycles for the first 4 words (paper: 10)
	PerChunk     int // cycles per additional 4 words (paper: 1)

	// Sink, when non-nil, receives a KBusRequest event per transfer,
	// stamped with the cycle the bus actually starts it.
	Sink trace.Sink

	busyUntil uint64

	// Stats
	Requests   uint64
	BusyCycles uint64
}

// NewBus returns a bus with the paper's parameters.
func NewBus() *Bus { return &Bus{FirstLatency: 10, PerChunk: 1} }

// Access requests a transfer of the given number of 32-bit words starting
// at cycle now, and returns the cycle at which the data is complete.
func (b *Bus) Access(now uint64, words int) (done uint64) {
	if words <= 0 {
		words = 4
	}
	chunks := (words + 3) / 4
	dur := uint64(b.FirstLatency + (chunks-1)*b.PerChunk)
	start := now
	if b.busyUntil > start {
		start = b.busyUntil
	}
	done = start + dur
	b.busyUntil = done
	b.Requests++
	b.BusyCycles += dur
	if b.Sink != nil {
		b.Sink.Emit(trace.Event{Cycle: start, Kind: trace.KBusRequest, Unit: -1, Task: -1, Arg2: dur})
	}
	return done
}

// BusyUntil reports when the bus frees (for tests and stats).
func (b *Bus) BusyUntil() uint64 { return b.busyUntil }

// Reset clears bus state between runs.
func (b *Bus) Reset() {
	b.busyUntil = 0
	b.Requests = 0
	b.BusyCycles = 0
}
