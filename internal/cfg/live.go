package cfg

import "multiscalar/internal/isa"

// Register liveness and function effect summaries.
//
// Calls are summarized: a jal contributes its callee's transitive
// defs/uses (computed by a fixpoint over the call graph); an indirect call
// (jalr) conservatively defines and uses every register. Return blocks
// (jr) use LiveAtReturn — the ABI registers that may be observed by the
// caller — making the analysis conservative but sound for create-mask
// trimming: a register *not* live at a task exit can safely be dropped
// from the create mask (Section 2.2's dead register analysis).

// LiveAtReturn is the set of registers assumed live when a function
// returns: results, stack/global/frame pointers, and all callee-saved
// registers (integer $s0-$s7 and conventionally preserved FP regs
// $f20-$f31).
var LiveAtReturn = func() isa.RegMask {
	m := isa.MaskOf(isa.RegV0, isa.RegV1, isa.RegSP, isa.RegGP, isa.RegFP, isa.RegRA)
	for r := isa.RegS0; r <= isa.RegS7; r++ {
		m = m.Set(r)
	}
	for i := 20; i < 32; i++ {
		m = m.Set(isa.F(i))
	}
	return m
}()

// AllRegs is every register except $zero.
var AllRegs = func() isa.RegMask {
	var m isa.RegMask
	for r := isa.Reg(1); r < isa.NumRegs; r++ {
		m = m.Set(r)
	}
	return m
}()

// Analyze runs all dataflow analyses: dominators, loops, call summaries,
// block def/use, and global liveness. Call it once after Build.
func (g *Graph) Analyze() {
	g.computeDominators()
	g.findLoops()
	g.computeFuncSummaries()
	g.computeDefUse()
	g.computeLiveness()
}

// instrDefUse returns the registers one instruction defines and uses,
// summarizing calls through g.Funcs.
func (g *Graph) instrDefUse(in *isa.Instr) (def, use isa.RegMask) {
	switch in.Op {
	case isa.OpJal:
		def = def.Set(in.Rd)
		if fs := g.Funcs[in.Target]; fs != nil {
			def = def.Union(fs.Defs)
			// The jal itself writes $ra before the callee can read it, so
			// the callee's $ra use never reaches back past the call site.
			use = use.Union(fs.Uses.Clear(isa.RegRA))
		}
	case isa.OpJalr:
		def = AllRegs
		use = AllRegs
	default:
		if d := in.Dest(); d != isa.RegZero {
			def = def.Set(d)
		}
		for _, s := range in.Sources() {
			use = use.Set(s)
		}
	}
	return def, use
}

// computeFuncSummaries discovers functions (program entry plus every
// direct call target) and fixpoints their transitive register effects
// over the call graph.
func (g *Graph) computeFuncSummaries() {
	g.Funcs = make(map[uint32]*FuncSummary)
	entries := map[uint32]bool{g.Prog.Entry: true}
	for _, b := range g.Blocks {
		if b.CallTarget != 0 {
			entries[b.CallTarget] = true
		}
	}
	for e := range entries {
		g.Funcs[e] = &FuncSummary{Entry: e}
	}

	// funcBlocks: blocks reachable from the entry following intra-
	// procedural edges only (call edges already go to the fall-through).
	funcBlocks := func(entry uint32) []*Block {
		start := g.ByAddr[entry]
		if start == nil {
			return nil
		}
		seen := map[*Block]bool{}
		stack := []*Block{start}
		var out []*Block
		for len(stack) > 0 {
			b := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if seen[b] {
				continue
			}
			seen[b] = true
			out = append(out, b)
			for _, s := range b.Succs {
				stack = append(stack, s)
			}
		}
		return out
	}

	bodies := make(map[uint32][]*Block, len(entries))
	for e := range entries {
		bodies[e] = funcBlocks(e)
	}

	// Phase 1: Defs — every register any instruction in the body (or a
	// transitive callee) may write. Fixpointed first so that phase 2 sees
	// final callee kill sets; bootstrapping both together lets a recursive
	// call site miss its own kills on the first pass and latch the phantom
	// use permanently (the stale register re-enters Uses through the call
	// site on every later iteration).
	for changed := true; changed; {
		changed = false
		for e, fs := range g.Funcs {
			var defs isa.RegMask
			for _, b := range bodies[e] {
				for a := b.Start; a < b.End; a += isa.InstrSize {
					d, _ := g.instrDefUse(g.instrOf(a))
					defs = defs.Union(d)
				}
			}
			if defs != fs.Defs {
				fs.Defs = defs
				changed = true
			}
		}
	}

	// Phase 2: Uses — upward-exposed reads only, by backward liveness over
	// the body with nothing live out of a return. A register the callee
	// writes before reading observes the callee's own value, not the
	// caller's, so it must not leak into the call-site use set.
	for changed := true; changed; {
		changed = false
		for e, fs := range g.Funcs {
			body := bodies[e]
			inBody := make(map[*Block]bool, len(body))
			for _, b := range body {
				inBody[b] = true
			}
			liveIn := make(map[*Block]isa.RegMask, len(body))
			for again := true; again; {
				again = false
				for i := len(body) - 1; i >= 0; i-- {
					b := body[i]
					var live isa.RegMask
					for _, s := range b.Succs {
						if inBody[s] {
							live = live.Union(liveIn[s])
						}
					}
					for a := b.End - isa.InstrSize; a >= b.Start; a -= isa.InstrSize {
						d, u := g.instrDefUse(g.instrOf(a))
						live = live.Minus(d).Union(u)
						if a == b.Start {
							break // avoid uint32 underflow
						}
					}
					if live != liveIn[b] {
						liveIn[b] = live
						again = true
					}
				}
			}
			if uses := liveIn[g.ByAddr[e]]; uses != fs.Uses {
				fs.Uses = uses
				changed = true
			}
		}
	}
}

// computeDefUse fills Block.Def (all registers written) and Block.Use
// (registers read before written within the block).
func (g *Graph) computeDefUse() {
	for _, b := range g.Blocks {
		var def, use isa.RegMask
		for a := b.Start; a < b.End; a += isa.InstrSize {
			d, u := g.instrDefUse(g.instrOf(a))
			use = use.Union(u.Minus(def))
			def = def.Union(d)
		}
		b.Def, b.Use = def, use
	}
}

// computeLiveness runs backward liveness to a fixpoint.
func (g *Graph) computeLiveness() {
	for changed := true; changed; {
		changed = false
		for i := len(g.Blocks) - 1; i >= 0; i-- {
			b := g.Blocks[i]
			var out isa.RegMask
			if b.Returns {
				out = LiveAtReturn
			}
			for _, s := range b.Succs {
				out = out.Union(s.LiveIn)
			}
			in := b.Use.Union(out.Minus(b.Def))
			if out != b.LiveOut || in != b.LiveIn {
				b.LiveOut, b.LiveIn = out, in
				changed = true
			}
		}
	}
}

// LiveAt returns the registers live immediately before the instruction at
// addr, by replaying the block backwards from LiveOut.
func (g *Graph) LiveAt(addr uint32) isa.RegMask {
	b := g.BlockOf(addr)
	if b == nil {
		return AllRegs
	}
	live := b.LiveOut
	for a := b.End - isa.InstrSize; a >= addr && a >= b.Start; a -= isa.InstrSize {
		d, u := g.instrDefUse(g.instrOf(a))
		live = live.Minus(d).Union(u)
		if a == b.Start {
			break // avoid uint32 underflow
		}
	}
	return live
}
