// Package multiscalar is a from-scratch reproduction of the system in
// "Multiscalar Processors" (G. S. Sohi, S. E. Breach, T. N. Vijaykumar,
// ISCA 1995): a cycle-level simulator for the multiscalar execution
// paradigm together with its software toolchain.
//
// The package is a facade over the internal packages:
//
//   - Assemble turns annotated assembly (task descriptors, forward/stop
//     bits, release instructions — Section 2.2 of the paper) into a
//     Program; one source builds both the scalar and multiscalar binary
//     (select with WithMode).
//   - Partition runs the automatic task partitioner (the compiler half of
//     the toolchain) over an un-annotated program.
//   - Interpret executes a Program functionally (the correctness oracle).
//   - Run simulates a Program cycle by cycle on the machine a Config
//     describes: the scalar baseline for one unit, otherwise a
//     multiscalar processor — N processing units on a circular queue,
//     sequencer with two-level task prediction and a return address
//     stack, register forwarding ring, Address Resolution Buffer, banked
//     data caches, shared memory bus. RunOption values attach an event
//     trace (WithTrace), program input (WithStdin), bounds (WithMaxCycles,
//     WithMaxInstrs), oracle verification (WithVerify) or checkpoint and
//     resume (WithCheckpoint, RestoreFrom).
//   - Workload/Workloads expose the paper's benchmark suite (Section 5.2
//     rewritten for this ISA).
//
// See DESIGN.md for the system inventory, EXPERIMENTS.md for the
// reproduction of Tables 2-4, and docs/tracing.md for the event tracing
// layer.
package multiscalar

import (
	"context"
	"io"
	"sync"

	"multiscalar/internal/annotate"
	"multiscalar/internal/asm"
	"multiscalar/internal/core"
	"multiscalar/internal/isa"
	"multiscalar/internal/job"
	"multiscalar/internal/mslint"
	"multiscalar/internal/sample"
	"multiscalar/internal/serve"
	"multiscalar/internal/snapshot"
	"multiscalar/internal/taskpart"
	"multiscalar/internal/trace"
	"multiscalar/internal/workloads"
)

// Program is an assembled binary image: text, data, task descriptors.
type Program = isa.Program

// TaskDescriptor describes one task (entry, create mask, targets).
type TaskDescriptor = isa.TaskDescriptor

// Config selects a machine configuration (units, issue width and order,
// caches, ARB, ring, predictor). Zero values are not useful — start from
// DefaultConfig or ScalarConfig.
type Config = core.Config

// Result summarizes a timing simulation.
type Result = core.Result

// Workload is one benchmark from the paper's suite.
type Workload = workloads.Workload

// Mode selects which binary an annotated source produces.
type Mode = asm.Mode

// Build modes.
const (
	ModeScalar      = asm.ModeScalar
	ModeMultiscalar = asm.ModeMultiscalar
)

// PartitionOptions controls the automatic task partitioner.
type PartitionOptions = taskpart.Options

// LintReport is the outcome of checking a program against the
// multiscalar annotation contract (Section 2.2): create-mask soundness,
// forward/release coverage, forward-bit placement, stop/exit structure.
type LintReport = mslint.Report

// LintDiag is one finding in a LintReport.
type LintDiag = mslint.Diag

// AssembleOption configures Assemble.
type AssembleOption func(*asm.Options)

// WithMode selects which binary the source produces (default ModeScalar;
// multiscalar builds keep task descriptors and tag bits and are checked
// against the annotation contract).
func WithMode(m Mode) AssembleOption {
	return func(o *asm.Options) { o.Mode = m }
}

// WithoutLint skips the annotation-contract post-pass that multiscalar
// builds otherwise run — for programs that deliberately violate the
// contract (tests, fuzzing) or callers that run Lint themselves.
func WithoutLint() AssembleOption {
	return func(o *asm.Options) { o.NoLint = true }
}

// AssembleOptions is the flat form of the assembly options.
type AssembleOptions = asm.Options

// AssembleResult carries the assembled program plus the source line table
// and, for multiscalar builds, the annotation-contract lint report.
type AssembleResult = asm.Result

// Assemble builds a program from annotated assembly source. The default
// is a scalar build; pass WithMode(ModeMultiscalar) for the multiscalar
// binary, which is checked against the annotation contract and rejected
// on hard violations (WithoutLint opts out). The result always carries
// the instruction-address → source-line table.
func Assemble(src string, opts ...AssembleOption) (*AssembleResult, error) {
	var o asm.Options
	for _, opt := range opts {
		opt(&o)
	}
	return asm.AssembleOpts(src, o)
}

// AssembleMode assembles for a mode and returns just the program.
//
// Deprecated: use Assemble(src, WithMode(mode)).
func AssembleMode(src string, mode Mode) (*Program, error) {
	return asm.Assemble(src, mode)
}

// AssembleFull is Assemble with a flat options struct.
//
// Deprecated: use Assemble with AssembleOption values.
func AssembleFull(src string, opts AssembleOptions) (*AssembleResult, error) {
	return asm.AssembleOpts(src, opts)
}

// Lint checks an assembled program against the annotation contract. The
// report separates hard errors (contract violations the runtime turns
// into wrong values or deadlocks) from warnings (legal but slow or
// suspicious constructs). A program without task descriptors lints
// clean. lines optionally maps instruction addresses to source lines
// (see AssembleResult.Lines); pass nil for loaded binaries.
func Lint(p *Program, lines map[uint32]int) *LintReport {
	return mslint.Lint(p, lines)
}

// Partition runs the automatic task partitioner over a program that has
// no hand annotations, filling in task descriptors and tag bits.
func Partition(p *Program, opt PartitionOptions) error {
	_, err := taskpart.Run(p, opt)
	return err
}

// AnnotatePlan is the annotation optimizer's per-task edit plan: minimal
// create masks, forward-bit placement, release changes (docs/annotate.md).
type AnnotatePlan = annotate.Plan

// Optimize tightens a program's task annotations at the binary level:
// create masks shrink to the flow-derived minimum (every dropped bit is
// one ring send fewer per task execution), forward bits move to last
// updates, dead sends are removed. The input program is not modified;
// the optimized clone and the edit plan are returned.
func Optimize(p *Program) (*Program, *AnnotatePlan) {
	return annotate.Optimize(p)
}

// OptimizeSource tightens the annotations of assembly source text,
// additionally inserting releases on flush-only paths. The rewritten
// source is re-assembled under the lint gate and held to the functional
// oracle (identical output and exit code) before it is returned;
// unchanged sources are returned as-is.
func OptimizeSource(src string) (string, *AnnotatePlan, error) {
	return annotate.RewriteSource(src)
}

// InterpResult is the outcome of a functional execution.
type InterpResult struct {
	Out          string
	ExitCode     int32
	Instructions uint64
}

// DefaultMaxInstrs bounds functional executions that set no explicit
// WithMaxInstrs — large enough for every workload in the suite, small
// enough that a non-terminating program errors out rather than spinning
// forever.
const DefaultMaxInstrs uint64 = job.DefaultMaxInstrs

// runOptions is the job the options describe: every RunOption folds into
// either the JobSpec (the canonical, hashable request shape shared with
// the bench harness and the msserve service) or the job Runtime (live
// attachments — sinks, streaming readers, checkpoint callbacks — that
// never participate in a job's identity).
type runOptions struct {
	spec job.Spec
	rt   job.Runtime
}

// RunOption configures Run or Interpret.
type RunOption func(*runOptions)

// WithTrace attaches an event sink to the timing run. Every simulator
// component emits its cycle-stamped events (task lifecycle, unit
// occupancy, ring, ARB, memory system) to the sink; see docs/tracing.md.
// The sink receives events during the run and must not be read until Run
// returns. Interpret ignores it.
func WithTrace(sink TraceSink) RunOption {
	return func(o *runOptions) { o.rt.Sink = sink }
}

// WithStdin supplies the program's input stream (syscall SysReadChar).
// Timing runs replay squashed tasks, so r should be a determinate
// re-readable source like a bytes.Reader — with WithVerify the reader is
// slurped once and both the oracle and the timing run see the same bytes.
func WithStdin(r io.Reader) RunOption {
	return func(o *runOptions) { o.rt.Stdin = r }
}

// WithMaxCycles overrides Config.MaxCycles, the timing-run deadlock bound.
func WithMaxCycles(n uint64) RunOption {
	return func(o *runOptions) { o.spec.MaxCycles = n }
}

// WithMaxInstrs bounds functional executions — Interpret itself and the
// oracle run WithVerify performs (default DefaultMaxInstrs).
func WithMaxInstrs(n uint64) RunOption {
	return func(o *runOptions) { o.spec.MaxInstrs = n }
}

// WithVerify makes Run check the timing simulation against the
// functional oracle: the program is first interpreted, then simulated,
// and Run fails unless both produce identical output and the timing run
// commits exactly the oracle's dynamic instruction count.
func WithVerify() RunOption {
	return func(o *runOptions) { o.spec.Verify = true }
}

// WithCheckpoint schedules a one-time snapshot of the timing run: at
// the first executed cycle at or after cycle, the machine serializes
// its complete state (docs/simulator.md, "Snapshot format") and passes
// the bytes to save. A nil return continues the run to completion; a
// non-nil error aborts Run with that error — the way to stop a run at
// the checkpoint. A later Run over the same Program and Config with
// RestoreFrom resumes exactly where the snapshot was taken. Interpret
// ignores this option.
func WithCheckpoint(cycle uint64, save func(snapshot []byte) error) RunOption {
	return func(o *runOptions) { o.rt.CheckpointAt, o.rt.CheckpointSave = cycle, save }
}

// RestoreFrom makes Run resume from a snapshot instead of starting at
// the program entry. The machine is built from the same Program and
// Config that produced the snapshot (geometry mismatches are rejected),
// its state is restored, and the run finishes from there; results,
// statistics and trace events come out identical to the uninterrupted
// run. Input supplied with WithStdin must be a fresh reader over the
// same bytes — the restored run skips what the saved run had consumed.
// Interpret ignores this option.
func RestoreFrom(snapshot []byte) RunOption {
	return func(o *runOptions) { o.rt.Restore = snapshot }
}

// gather folds the options into the shared job request shape.
func gather(p *Program, cfg Config, opts []RunOption) *runOptions {
	o := &runOptions{}
	for _, opt := range opts {
		opt(o)
	}
	o.spec.Op = job.OpSimulate
	o.spec.Program = p
	o.spec.Config = cfg
	return o
}

// Interpret runs a program on the functional simulator (the oracle all
// timing runs are validated against). It honors WithStdin and
// WithMaxInstrs (default DefaultMaxInstrs) and ignores timing-only
// options.
func Interpret(p *Program, opts ...RunOption) (*InterpResult, error) {
	o := gather(p, Config{}, opts)
	res, err := job.RunOracle(p, o.rt.Stdin, o.spec.MaxInstrs)
	if err != nil {
		return nil, err
	}
	return &InterpResult{
		Out:          res.Out,
		ExitCode:     res.ExitCode,
		Instructions: res.ICount,
	}, nil
}

// DefaultConfig returns the paper's multiscalar configuration
// (Section 5.1) for a unit count, issue width (1 or 2) and issue order.
func DefaultConfig(units, width int, outOfOrder bool) Config {
	return core.DefaultConfig(units, width, outOfOrder)
}

// ScalarConfig returns the scalar baseline configuration: one identical
// processing unit with 1-cycle data-cache hits.
func ScalarConfig(width int, outOfOrder bool) Config {
	return core.ScalarConfig(width, outOfOrder)
}

// Run simulates a program cycle by cycle on the machine cfg describes:
// the scalar baseline processor for an un-annotated binary on a one-unit
// configuration (ScalarConfig), otherwise a multiscalar processor — a
// binary with task descriptors runs on the multiscalar machine even with
// cfg.NumUnits of 1 (the single-unit ablation point), and a multiscalar
// configuration requires the descriptors. Options attach a trace sink,
// program input, run bounds, and oracle verification.
func Run(p *Program, cfg Config, opts ...RunOption) (*Result, error) {
	o := gather(p, cfg, opts)
	out, err := job.Execute(&o.spec, &o.rt)
	if err != nil {
		return nil, err
	}
	return out.Result, nil
}

// RunScalar simulates a scalar-mode binary on the baseline processor.
//
// Deprecated: use Run with a ScalarConfig.
func RunScalar(p *Program, cfg Config) (*Result, error) {
	out, err := job.Execute(&job.Spec{
		Op: job.OpSimulate, Machine: job.MachineScalar, Program: p, Config: cfg,
	}, nil)
	if err != nil {
		return nil, err
	}
	return out.Result, nil
}

// RunMultiscalar simulates a multiscalar binary (it must carry task
// descriptors) on a multiscalar processor.
//
// Deprecated: use Run.
func RunMultiscalar(p *Program, cfg Config) (*Result, error) {
	out, err := job.Execute(&job.Spec{
		Op: job.OpSimulate, Machine: job.MachineMultiscalar, Program: p, Config: cfg,
	}, nil)
	if err != nil {
		return nil, err
	}
	return out.Result, nil
}

// Verify runs a program on the oracle and the given machine configuration
// and checks architectural equivalence; it returns the timing result.
//
// Deprecated: use Run(p, cfg, WithVerify()).
func Verify(p *Program, cfg Config) (*Result, error) {
	return Run(p, cfg, WithVerify())
}

// Simulation as a service (docs/serve.md). A JobSpec is the first-class
// request shape behind Run and the msserve daemon: the program (inline,
// as source text, or as a suite workload name), the Config, the input
// bytes, run bounds, and the artifacts to return. It has a canonical
// versioned encoding and a stable content-addressed Key, which every
// result cache in the system — the bench harness's memos, msserve, and
// SubmitJob's process-wide engine — keys on.

// JobSpec is one unit of simulation-service work.
type JobSpec = job.Spec

// Job operations and machine selectors.
const (
	JobSimulate = job.OpSimulate
	JobAssemble = job.OpAssemble
	JobSampled  = job.OpSampled

	JobMachineAuto        = job.MachineAuto
	JobMachineScalar      = job.MachineScalar
	JobMachineMultiscalar = job.MachineMultiscalar
)

// Sampled simulation (docs/perf.md, "Sampled simulation"): a run is
// mostly fast functional execution that warms the long-lived machine
// structures, punctuated by short detailed measurement windows; the
// whole-run cycle count is extrapolated with a 95% confidence interval
// at a fraction of the detailed-simulation cost.

// SampleParams configures a sampled run's regime (window, warm-up,
// period, offset, bias allowance). The zero value derives everything
// from the run itself.
type SampleParams = sample.Params

// SampleEstimate is a sampled run's outcome: the extrapolated cycle
// count, its confidence interval, and the detailed cost actually paid.
type SampleEstimate = sample.Estimate

// RunSampled estimates a program's cycle count by sampled simulation
// instead of simulating every cycle. It honors WithStdin, WithMaxCycles
// and WithMaxInstrs; trace, checkpoint and verification options do not
// apply (the functional pass is the run's oracle by construction).
func RunSampled(p *Program, cfg Config, prm SampleParams, opts ...RunOption) (*SampleEstimate, error) {
	o := gather(p, cfg, opts)
	o.spec.Op = job.OpSampled
	o.spec.Sample = prm
	o.spec.Verify = false
	out, err := job.Execute(&o.spec, &o.rt)
	if err != nil {
		return nil, err
	}
	return out.Sampled, nil
}

// SnapshotMeta is the header of a machine snapshot: format version,
// snapshot kind, and the cycle (or, for functional and warm snapshots,
// instruction count) it was taken at.
type SnapshotMeta = snapshot.Meta

// PeekSnapshot reads a snapshot's header without decoding its body —
// what a tool should print before committing to a restore.
func PeekSnapshot(data []byte) (SnapshotMeta, error) { return snapshot.Peek(data) }

// SnapshotKindName names a snapshot kind ("multiscalar", "scalar",
// "interp", "warm").
func SnapshotKindName(kind uint8) string { return snapshot.KindName(kind) }

// JobResult is a job's outcome: the result payload plus whether this
// submission was answered from the content-addressed cache.
type JobResult = serve.Result

// JobEngine is the transport-agnostic job service interface msserve's
// HTTP layer and SubmitJob share; NewJobEngine builds one.
type JobEngine = serve.Engine

// JobEngineOptions configures NewJobEngine.
type JobEngineOptions = serve.Options

// NewJobEngine builds a job engine: a content-addressed result cache
// (LRU + single-flight + optional disk spill) over a fair-queued
// executor. Most callers want SubmitJob; a daemon wants cmd/msserve.
func NewJobEngine(o JobEngineOptions) JobEngine { return serve.NewLocal(o) }

// defaultJobEngine serves SubmitJob: one process-wide in-memory engine.
var defaultJobEngine = struct {
	once sync.Once
	e    JobEngine
}{}

// SubmitJob runs a job on the process-wide engine. Duplicate
// submissions — equal JobSpec keys — are answered from the cache with
// byte-identical payloads and Cached set.
func SubmitJob(ctx context.Context, spec JobSpec) (*JobResult, error) {
	defaultJobEngine.once.Do(func() {
		defaultJobEngine.e = serve.NewLocal(serve.Options{})
	})
	return defaultJobEngine.e.Submit(ctx, "local", &spec)
}

// Event tracing (docs/tracing.md). WithTrace accepts any TraceSink: a
// TraceCollector gathers events in memory; NewTraceWriter streams them to
// the .mstrc container cmd/mstrace renders.

// TraceSink receives simulator events as they are produced.
type TraceSink = trace.Sink

// TraceEvent is one cycle-stamped simulator event.
type TraceEvent = trace.Event

// TraceCollector is an in-memory TraceSink.
type TraceCollector = trace.Collector

// TraceData is a fully decoded .mstrc trace.
type TraceData = trace.Trace

// TraceMetaFor describes a run for the .mstrc header: unit count from
// the configuration and task-descriptor names from the program, plus a
// free-form label (workload name, config summary).
func TraceMetaFor(p *Program, cfg Config, label string) trace.Meta {
	m := trace.Meta{NumUnits: cfg.NumUnits, Label: label}
	if m.NumUnits <= 0 {
		m.NumUnits = 1
	}
	if len(p.Tasks) > 0 {
		m.Tasks = make(map[uint32]string, len(p.Tasks))
		for entry, td := range p.Tasks {
			m.Tasks[entry] = td.Name
		}
	}
	return m
}

// NewTraceWriter opens a streaming .mstrc writer for a run of p under
// cfg: pass it to WithTrace and Close it (checking the error) after Run
// returns.
func NewTraceWriter(w io.Writer, p *Program, cfg Config, label string) (*trace.Writer, error) {
	return trace.NewWriter(w, TraceMetaFor(p, cfg, label))
}

// ReadTrace decodes an .mstrc stream written by NewTraceWriter.
func ReadTrace(r io.Reader) (*TraceData, error) {
	return trace.ReadAll(r)
}

// SaveProgram writes a program as a binary container (.msb): text in the
// wire encoding, data, task descriptors, and symbols.
func SaveProgram(w io.Writer, p *Program) error { return isa.WriteProgram(w, p) }

// LoadProgram reads a binary container written by SaveProgram.
func LoadProgram(r io.Reader) (*Program, error) { return isa.ReadProgram(r) }

// GetWorkload returns a benchmark by name (nil if unknown).
func GetWorkload(name string) *Workload { return workloads.Get(name) }

// Workloads returns the benchmark suite in the paper's table order.
func Workloads() []*Workload { return workloads.All() }

// WorkloadNames lists the benchmark names in table order.
func WorkloadNames() []string { return workloads.Names() }
