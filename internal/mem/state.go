package mem

import (
	"sort"

	"multiscalar/internal/snapshot"
)

// Snapshot sections for the memory hierarchy. Only mutable run state
// is serialized: a Memory stores its private copy-on-write pages (the
// read-only image is rebuilt from the program by the machine
// constructor), a Cache stores tags/valid bits/MSHRs and stats (its
// geometry comes from the Config), the Bus its busy timestamp.

// maxPages bounds the page count a snapshot may claim: the full
// 32-bit space holds 1<<20 pages of 4 KB.
const maxPages = 1 << 20

// SaveState serializes the memory's private pages in ascending page
// order (deterministic bytes for identical contents).
func (m *Memory) SaveState(e *snapshot.Encoder) {
	e.Tag("MEMP")
	keys := make([]uint32, 0, len(m.pages))
	for key := range m.pages {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	e.Len(len(keys))
	for _, key := range keys {
		e.U32(key)
		e.Raw(m.pages[key][:])
	}
}

// LoadState replaces the memory's private pages with the snapshot's.
// The read-only image is untouched: restoring into a Memory built
// from the same image reproduces the snapshotted contents exactly.
func (m *Memory) LoadState(d *snapshot.Decoder) {
	d.Tag("MEMP")
	n := d.Len(maxPages)
	m.pages = make(map[uint32]*[pageSize]byte, n)
	m.lastKey, m.lastPage, m.lastRO = 0, nil, false
	for i := 0; i < n; i++ {
		key := d.U32()
		p := new([pageSize]byte)
		d.Raw(p[:])
		if d.Err() != nil {
			return
		}
		m.pages[key] = p
	}
}

// SaveState serializes the cache's tag array, valid bits, in-flight
// MSHRs and statistics.
func (c *Cache) SaveState(e *snapshot.Encoder) {
	e.Tag("CACH")
	e.Len(c.sets)
	for i := 0; i < c.sets; i++ {
		e.U32(c.tags[i])
		e.Bool(c.vld[i])
	}
	e.Len(len(c.mshrs))
	for _, m := range c.mshrs {
		e.U32(m.block)
		e.U64(m.readyAt)
	}
	e.U64(c.Hits)
	e.U64(c.Misses)
	e.U64(c.Merges)
}

// LoadState restores the cache's mutable state. The set count must
// match the constructed geometry.
func (c *Cache) LoadState(d *snapshot.Decoder) {
	d.Tag("CACH")
	if n := d.Len(1 << 24); d.Err() == nil && n != c.sets {
		d.Failf("cache %s: %d sets, machine has %d", c.Name, n, c.sets)
	}
	if d.Err() != nil {
		return
	}
	for i := 0; i < c.sets; i++ {
		c.tags[i] = d.U32()
		c.vld[i] = d.Bool()
	}
	n := d.Len(1 << 16)
	c.mshrs = c.mshrs[:0]
	for i := 0; i < n; i++ {
		c.mshrs = append(c.mshrs, mshr{block: d.U32(), readyAt: d.U64()})
	}
	c.Hits = d.U64()
	c.Misses = d.U64()
	c.Merges = d.U64()
}

// SaveState serializes the bus occupancy and statistics.
func (b *Bus) SaveState(e *snapshot.Encoder) {
	e.Tag("BUS ")
	e.U64(b.busyUntil)
	e.U64(b.Requests)
	e.U64(b.BusyCycles)
}

// LoadState restores the bus occupancy and statistics.
func (b *Bus) LoadState(d *snapshot.Decoder) {
	d.Tag("BUS ")
	b.busyUntil = d.U64()
	b.Requests = d.U64()
	b.BusyCycles = d.U64()
}

// SaveState serializes every bank plus the crossbar occupancy.
func (d *BankedDCache) SaveState(e *snapshot.Encoder) {
	e.Tag("DBNK")
	e.Len(len(d.Banks))
	for i, b := range d.Banks {
		e.U64(d.nextFree[i])
		b.SaveState(e)
	}
	e.U64(d.Conflicts)
	e.U64(d.Accesses)
}

// LoadState restores the banks; the bank count must match.
func (d *BankedDCache) LoadState(dec *snapshot.Decoder) {
	dec.Tag("DBNK")
	if n := dec.Len(1 << 10); dec.Err() == nil && n != len(d.Banks) {
		dec.Failf("dcache: %d banks, machine has %d", n, len(d.Banks))
	}
	if dec.Err() != nil {
		return
	}
	for i, b := range d.Banks {
		d.nextFree[i] = dec.U64()
		b.LoadState(dec)
	}
	d.Conflicts = dec.U64()
	d.Accesses = dec.U64()
}
