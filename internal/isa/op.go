package isa

// Op identifies an operation. The set is MIPS-like: 3-operand integer
// arithmetic with immediate forms, loads/stores over a big-endian byte
// addressed memory, compare-and-branch, jumps, single/double precision
// floating point with a single condition flag, plus the two operations the
// multiscalar paradigm adds to the base ISA: Release (Section 2.2) and
// Syscall (the paper's simulator traps system calls to the host).
type Op uint8

const (
	OpNop Op = iota

	// Integer arithmetic, register forms: rd <- rs OP rt.
	OpAdd
	OpSub
	OpMul
	OpDiv // rd <- rs / rt (signed); traps on divide by zero
	OpRem // rd <- rs % rt (signed)
	OpAnd
	OpOr
	OpXor
	OpNor
	OpSllv // rd <- rs << (rt & 31)
	OpSrlv
	OpSrav
	OpSlt  // rd <- (rs < rt) signed
	OpSltu // rd <- (rs < rt) unsigned

	// Integer arithmetic, immediate forms: rd <- rs OP imm.
	OpAddi
	OpAndi
	OpOri
	OpXori
	OpSlti
	OpSltiu
	OpSll // rd <- rs << imm
	OpSrl
	OpSra
	OpLui // rd <- imm << 16

	// Memory: loads rd <- mem[rs+imm], stores mem[rs+imm] <- rt.
	OpLb
	OpLbu
	OpLh
	OpLhu
	OpLw
	OpSb
	OpSh
	OpSw
	OpLwc1 // l.s: FP rd <- mem32[rs+imm]
	OpLdc1 // l.d: FP rd <- mem64[rs+imm]
	OpSwc1 // s.s: mem32[rs+imm] <- FP rt
	OpSdc1 // s.d: mem64[rs+imm] <- FP rt

	// Control transfer. Conditional branches compare rs (and rt) and
	// branch to Target. Jumps transfer to Target (OpJ, OpJal) or to the
	// address in rs (OpJr, OpJalr); OpJal/OpJalr write the return address
	// into rd (conventionally $ra).
	OpBeq
	OpBne
	OpBlez
	OpBgtz
	OpBltz
	OpBgez
	OpJ
	OpJal
	OpJr
	OpJalr
	OpBc1t // branch if FP condition flag set
	OpBc1f // branch if FP condition flag clear

	// Floating point, single precision: fd <- fs OP ft.
	OpAddS
	OpSubS
	OpMulS
	OpDivS
	// Floating point, double precision.
	OpAddD
	OpSubD
	OpMulD
	OpDivD
	OpNegD
	OpAbsD
	OpMovD  // fd <- fs
	OpSqrtD // fd <- sqrt(fs); latency of DP divide

	// FP compares set the FP condition flag: fcc <- fs OP ft.
	OpCEqD
	OpCLtD
	OpCLeD

	// Conversions and transfers between the files.
	OpMtc1  // FP rd <- int rs (bit pattern as int32 value)
	OpMfc1  // int rd <- FP rs (truncating the represented value to int32)
	OpCvtDW // FP rd <- double(int value in FP rs)
	OpCvtWD // FP rd <- int32(double in FP rs), stored as value
	OpCvtSD // FP rd <- single(double in FP rs)
	OpCvtDS // FP rd <- double(single in FP rs)

	// Multiscalar-specific operations (Section 2.2).
	OpRelease // release rs: forward the current value of rs to later tasks

	// Environment.
	OpSyscall // host syscall: code in $v0, args in $a0-$a3, result in $v0

	numOps // sentinel
)

// FUClass identifies which functional unit services an operation
// (Section 5.1: 1-2 simple integer, 1 complex integer, 1 floating point,
// 1 branch, 1 memory unit per processing unit).
type FUClass uint8

const (
	FUSimpleInt FUClass = iota
	FUComplexInt
	FUFloat
	FUBranch
	FUMemory
	NumFUClasses
)

var fuClassNames = [NumFUClasses]string{"simple-int", "complex-int", "float", "branch", "memory"}

func (c FUClass) String() string {
	if int(c) < len(fuClassNames) {
		return fuClassNames[c]
	}
	return "bad-fu-class"
}

type opInfo struct {
	name    string
	class   FUClass
	load    bool
	store   bool
	branch  bool // conditional branch
	jump    bool // unconditional control transfer
	imm     bool // uses Imm field
	setsFCC bool
	memSize uint8 // bytes accessed for loads/stores
}

var opInfos = [numOps]opInfo{
	OpNop: {name: "nop", class: FUSimpleInt},

	OpAdd:  {name: "add", class: FUSimpleInt},
	OpSub:  {name: "sub", class: FUSimpleInt},
	OpMul:  {name: "mul", class: FUComplexInt},
	OpDiv:  {name: "div", class: FUComplexInt},
	OpRem:  {name: "rem", class: FUComplexInt},
	OpAnd:  {name: "and", class: FUSimpleInt},
	OpOr:   {name: "or", class: FUSimpleInt},
	OpXor:  {name: "xor", class: FUSimpleInt},
	OpNor:  {name: "nor", class: FUSimpleInt},
	OpSllv: {name: "sllv", class: FUSimpleInt},
	OpSrlv: {name: "srlv", class: FUSimpleInt},
	OpSrav: {name: "srav", class: FUSimpleInt},
	OpSlt:  {name: "slt", class: FUSimpleInt},
	OpSltu: {name: "sltu", class: FUSimpleInt},

	OpAddi:  {name: "addi", class: FUSimpleInt, imm: true},
	OpAndi:  {name: "andi", class: FUSimpleInt, imm: true},
	OpOri:   {name: "ori", class: FUSimpleInt, imm: true},
	OpXori:  {name: "xori", class: FUSimpleInt, imm: true},
	OpSlti:  {name: "slti", class: FUSimpleInt, imm: true},
	OpSltiu: {name: "sltiu", class: FUSimpleInt, imm: true},
	OpSll:   {name: "sll", class: FUSimpleInt, imm: true},
	OpSrl:   {name: "srl", class: FUSimpleInt, imm: true},
	OpSra:   {name: "sra", class: FUSimpleInt, imm: true},
	OpLui:   {name: "lui", class: FUSimpleInt, imm: true},

	OpLb:   {name: "lb", class: FUMemory, load: true, imm: true, memSize: 1},
	OpLbu:  {name: "lbu", class: FUMemory, load: true, imm: true, memSize: 1},
	OpLh:   {name: "lh", class: FUMemory, load: true, imm: true, memSize: 2},
	OpLhu:  {name: "lhu", class: FUMemory, load: true, imm: true, memSize: 2},
	OpLw:   {name: "lw", class: FUMemory, load: true, imm: true, memSize: 4},
	OpSb:   {name: "sb", class: FUMemory, store: true, imm: true, memSize: 1},
	OpSh:   {name: "sh", class: FUMemory, store: true, imm: true, memSize: 2},
	OpSw:   {name: "sw", class: FUMemory, store: true, imm: true, memSize: 4},
	OpLwc1: {name: "l.s", class: FUMemory, load: true, imm: true, memSize: 4},
	OpLdc1: {name: "l.d", class: FUMemory, load: true, imm: true, memSize: 8},
	OpSwc1: {name: "s.s", class: FUMemory, store: true, imm: true, memSize: 4},
	OpSdc1: {name: "s.d", class: FUMemory, store: true, imm: true, memSize: 8},

	OpBeq:  {name: "beq", class: FUBranch, branch: true},
	OpBne:  {name: "bne", class: FUBranch, branch: true},
	OpBlez: {name: "blez", class: FUBranch, branch: true},
	OpBgtz: {name: "bgtz", class: FUBranch, branch: true},
	OpBltz: {name: "bltz", class: FUBranch, branch: true},
	OpBgez: {name: "bgez", class: FUBranch, branch: true},
	OpJ:    {name: "j", class: FUBranch, jump: true},
	OpJal:  {name: "jal", class: FUBranch, jump: true},
	OpJr:   {name: "jr", class: FUBranch, jump: true},
	OpJalr: {name: "jalr", class: FUBranch, jump: true},
	OpBc1t: {name: "bc1t", class: FUBranch, branch: true},
	OpBc1f: {name: "bc1f", class: FUBranch, branch: true},

	OpAddS: {name: "add.s", class: FUFloat},
	OpSubS: {name: "sub.s", class: FUFloat},
	OpMulS: {name: "mul.s", class: FUFloat},
	OpDivS: {name: "div.s", class: FUFloat},
	OpAddD: {name: "add.d", class: FUFloat},
	OpSubD: {name: "sub.d", class: FUFloat},
	OpMulD: {name: "mul.d", class: FUFloat},
	OpDivD: {name: "div.d", class: FUFloat},
	OpNegD: {name: "neg.d", class: FUFloat},
	OpAbsD: {name: "abs.d", class: FUFloat},
	OpMovD: {name: "mov.d", class: FUFloat},

	OpSqrtD: {name: "sqrt.d", class: FUFloat},

	OpCEqD: {name: "c.eq.d", class: FUFloat, setsFCC: true},
	OpCLtD: {name: "c.lt.d", class: FUFloat, setsFCC: true},
	OpCLeD: {name: "c.le.d", class: FUFloat, setsFCC: true},

	OpMtc1:  {name: "mtc1", class: FUFloat},
	OpMfc1:  {name: "mfc1", class: FUFloat},
	OpCvtDW: {name: "cvt.d.w", class: FUFloat},
	OpCvtWD: {name: "cvt.w.d", class: FUFloat},
	OpCvtSD: {name: "cvt.s.d", class: FUFloat},
	OpCvtDS: {name: "cvt.d.s", class: FUFloat},

	OpRelease: {name: "release", class: FUSimpleInt},
	OpSyscall: {name: "syscall", class: FUSimpleInt},
}

// Packed predicate bits derived from opInfos. The predicate methods below
// sit on the simulators' per-instruction hot path, where a single byte
// load beats two indexings of the wide opInfo struct.
const (
	flagLoad = 1 << iota
	flagStore
	flagBranch
	flagJump
	flagControl
	flagImm
	flagFCC
)

var opFlags = func() [numOps]uint8 {
	var f [numOps]uint8
	for op := Op(0); op < numOps; op++ {
		in := &opInfos[op]
		if in.load {
			f[op] |= flagLoad
		}
		if in.store {
			f[op] |= flagStore
		}
		if in.branch {
			f[op] |= flagBranch | flagControl
		}
		if in.jump {
			f[op] |= flagJump | flagControl
		}
		if in.imm {
			f[op] |= flagImm
		}
		if in.setsFCC {
			f[op] |= flagFCC
		}
	}
	return f
}()

// Valid reports whether op names a defined operation.
func (op Op) Valid() bool { return op < numOps && opInfos[op].name != "" }

// String returns the assembly mnemonic for the operation.
func (op Op) String() string {
	if op.Valid() {
		return opInfos[op].name
	}
	return "bad-op"
}

// Class returns the functional unit class that services op.
func (op Op) Class() FUClass { return opInfos[op].class }

// IsLoad reports whether op reads memory.
func (op Op) IsLoad() bool { return opFlags[op]&flagLoad != 0 }

// IsStore reports whether op writes memory.
func (op Op) IsStore() bool { return opFlags[op]&flagStore != 0 }

// IsMem reports whether op accesses memory.
func (op Op) IsMem() bool { return opFlags[op]&(flagLoad|flagStore) != 0 }

// IsBranch reports whether op is a conditional branch.
func (op Op) IsBranch() bool { return opFlags[op]&flagBranch != 0 }

// IsJump reports whether op is an unconditional control transfer.
func (op Op) IsJump() bool { return opFlags[op]&flagJump != 0 }

// IsControl reports whether op can redirect the program counter.
func (op Op) IsControl() bool { return opFlags[op]&flagControl != 0 }

// HasImm reports whether op uses the immediate field.
func (op Op) HasImm() bool { return opFlags[op]&flagImm != 0 }

// SetsFCC reports whether op writes the FP condition flag.
func (op Op) SetsFCC() bool { return opFlags[op]&flagFCC != 0 }

// MemSize returns the access width in bytes for memory operations, 0 for
// everything else.
func (op Op) MemSize() int { return int(opInfos[op].memSize) }

// opsByName maps mnemonics back to opcodes for the assembler.
var opsByName = func() map[string]Op {
	m := make(map[string]Op, numOps)
	for op := Op(0); op < numOps; op++ {
		if opInfos[op].name != "" {
			m[opInfos[op].name] = op
		}
	}
	return m
}()

// OpByName returns the operation with the given mnemonic.
func OpByName(name string) (Op, bool) {
	op, ok := opsByName[name]
	return op, ok
}
