package serve

import (
	"container/list"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// cache is the content-addressed result store: an in-memory LRU over job
// keys with single-flight admission (concurrent submissions of one key
// run exactly one execution; everyone else waits on the first) and an
// optional on-disk spill that survives eviction — and daemon restarts.
type cache struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*cacheEntry
	ll      *list.List // front = most recently used, values are *cacheEntry
	dir     string     // spill directory ("" disables)

	evictions uint64
	spilled   uint64
}

type cacheEntry struct {
	key   string
	elem  *list.Element
	ready chan struct{} // closed when res/err are final
	done  bool
	res   *Result // canonical stored result; Cached flag always false here
	err   error
	refs  int // submissions currently holding the entry; pins against eviction
}

func newCache(capacity int, dir string) *cache {
	return &cache{
		cap:     capacity,
		entries: map[string]*cacheEntry{},
		ll:      list.New(),
		dir:     dir,
	}
}

// acquire returns the entry for key with a reference held, and whether
// the caller was admitted as the key's executor (the entry is new). The
// caller must release the entry when done with it; an executor must also
// complete it exactly once.
func (c *cache) acquire(key string) (e *cacheEntry, executor bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e = c.entries[key]; e != nil {
		e.refs++
		c.ll.MoveToFront(e.elem)
		return e, false
	}
	e = &cacheEntry{key: key, ready: make(chan struct{}), refs: 1}
	e.elem = c.ll.PushFront(e)
	c.entries[key] = e
	return e, true
}

// complete finalizes an executor's entry. Successful results stay
// resident (and spill to disk when configured); failures are not cached
// — the entry is dropped so a later submission retries — but waiters
// blocked on this flight still observe the error.
func (c *cache) complete(e *cacheEntry, res *Result, err error) {
	c.mu.Lock()
	e.res, e.err, e.done = res, err, true
	if err != nil {
		c.removeLocked(e)
	}
	c.evictLocked()
	c.mu.Unlock()
	close(e.ready)
}

// maybeSpill persists a freshly executed result to the spill directory.
func (c *cache) maybeSpill(key string, res *Result) {
	if c.dir == "" {
		return
	}
	if c.store(key, res) == nil {
		c.mu.Lock()
		c.spilled++
		c.mu.Unlock()
	}
}

// release drops one reference.
func (c *cache) release(e *cacheEntry) {
	c.mu.Lock()
	e.refs--
	c.evictLocked()
	c.mu.Unlock()
}

// evictLocked trims the LRU to capacity. Only finished entries nobody is
// holding are eligible: an in-flight execution or an entry with waiters
// is never evicted, so the cache can transiently exceed its bound rather
// than corrupt a flight.
func (c *cache) evictLocked() {
	for el := c.ll.Back(); el != nil && c.ll.Len() > c.cap; {
		prev := el.Prev()
		e := el.Value.(*cacheEntry)
		if e.done && e.refs == 0 {
			c.removeLocked(e)
			c.evictions++
		}
		el = prev
	}
}

func (c *cache) removeLocked(e *cacheEntry) {
	if c.entries[e.key] == e {
		delete(c.entries, e.key)
	}
	if e.elem != nil {
		c.ll.Remove(e.elem)
		e.elem = nil
	}
}

func (c *cache) stats() (entries int, evictions, spilled uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries), c.evictions, c.spilled
}

// Disk spill: one JSON file per key, content-addressed under a two-byte
// shard directory. The payload is the canonical Result (the artifacts —
// snapshots, .mstrc traces — ride inside it base64-encoded), so a spilled
// entry answers later submissions byte-identically after eviction or
// restart.

func (c *cache) spillPath(key string) string {
	return filepath.Join(c.dir, key[:2], key+".json")
}

func (c *cache) store(key string, res *Result) error {
	data, err := json.Marshal(res)
	if err != nil {
		return err
	}
	path := c.spillPath(key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	// Write-then-rename so a crashed daemon never leaves a torn entry a
	// restarted one would serve.
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// load returns the spilled result for key, or nil when the spill is
// disabled, absent, or unreadable (a corrupt file is treated as a miss).
func (c *cache) load(key string) *Result {
	if c.dir == "" {
		return nil
	}
	data, err := os.ReadFile(c.spillPath(key))
	if err != nil {
		return nil
	}
	var res Result
	if err := json.Unmarshal(data, &res); err != nil || res.Key != key {
		return nil
	}
	return &res
}

func (c *cache) String() string {
	n, ev, sp := c.stats()
	return fmt.Sprintf("cache{entries=%d evictions=%d spilled=%d}", n, ev, sp)
}
