package sample

import (
	"math"
	"testing"
)

func almost(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestMeanStdErrGolden(t *testing.T) {
	cases := []struct {
		name               string
		xs                 []float64
		mean, vari, stderr float64
	}{
		{"empty", nil, 0, 0, 0},
		{"single", []float64{2.5}, 2.5, 0, 0},
		{"constant", []float64{3, 3, 3, 3}, 3, 0, 0},
		// variance = ((1.5)^2*2 + (0.5)^2*2)/3 = 5/3; stderr = sqrt(5/12)
		{"spread", []float64{1, 2, 3, 4}, 2.5, 5.0 / 3.0, math.Sqrt(5.0 / 12.0)},
		// classic: mean 2, unbiased variance 1
		{"unit", []float64{1, 2, 3}, 2, 1, math.Sqrt(1.0 / 3.0)},
	}
	for _, c := range cases {
		mean, vari, stderr := meanStdErr(c.xs)
		if !almost(mean, c.mean, 1e-12) || !almost(vari, c.vari, 1e-12) || !almost(stderr, c.stderr, 1e-12) {
			t.Errorf("%s: got mean=%g var=%g stderr=%g, want %g %g %g",
				c.name, mean, vari, stderr, c.mean, c.vari, c.stderr)
		}
	}
}

func TestTCritGolden(t *testing.T) {
	cases := []struct {
		df   int
		want float64
	}{
		{0, 0}, {1, 12.706}, {2, 4.303}, {5, 2.571}, {10, 2.228},
		{29, 2.045}, {35, 2.021}, {50, 2.000}, {100, 1.980}, {1000, 1.960},
	}
	for _, c := range cases {
		if got := tCrit(c.df); got != c.want {
			t.Errorf("tCrit(%d) = %g, want %g", c.df, got, c.want)
		}
	}
	// Monotone non-increasing in df: more observations never widen the CI.
	prev := tCrit(1)
	for df := 2; df <= 200; df++ {
		cur := tCrit(df)
		if cur > prev {
			t.Fatalf("tCrit not monotone at df=%d: %g > %g", df, cur, prev)
		}
		prev = cur
	}
}

func TestConfidenceIntervalGolden(t *testing.T) {
	// n=5 (df=4, t=2.776): mean 10, stderr 0.5 → half-width 1.388
	lo, hi := confidenceInterval(10, 0.5, 5)
	if !almost(lo, 10-1.388, 1e-9) || !almost(hi, 10+1.388, 1e-9) {
		t.Errorf("CI = [%g, %g], want [8.612, 11.388]", lo, hi)
	}
	// Zero stderr collapses to a point.
	lo, hi = confidenceInterval(7, 0, 9)
	if lo != 7 || hi != 7 {
		t.Errorf("zero-stderr CI = [%g, %g], want point 7", lo, hi)
	}
	// The lower bound clamps at zero: CPIs cannot be negative.
	lo, _ = confidenceInterval(0.1, 1.0, 4)
	if lo != 0 {
		t.Errorf("lower bound %g, want clamp to 0", lo)
	}
}

func TestWithDefaultsDerivation(t *testing.T) {
	p := Params{}.withDefaults(1_000_000, 2_000, 8) // avg task 500 instrs
	if p.WarmupInstrs != 2*8*500 {
		t.Errorf("warm-up %d, want %d (two pipeline-fills of tasks)", p.WarmupInstrs, 2*8*500)
	}
	if p.WindowInstrs != 2*p.WarmupInstrs {
		t.Errorf("window %d, want twice the warm-up %d", p.WindowInstrs, p.WarmupInstrs)
	}
	if p.PeriodInstrs == 0 || p.OffsetInstrs != p.PeriodInstrs/4 {
		t.Errorf("period %d / offset %d: offset should default to period/4", p.PeriodInstrs, p.OffsetInstrs)
	}
	if p.BiasFrac != 0.02 {
		t.Errorf("bias allowance %g, want default 0.02", p.BiasFrac)
	}
	// Explicit values pass through; negative BiasFrac disables.
	q := Params{WindowInstrs: 100, WarmupInstrs: 50, PeriodInstrs: 1000, OffsetInstrs: 3, BiasFrac: -1}.
		withDefaults(10_000, 10, 4)
	if q.WindowInstrs != 100 || q.WarmupInstrs != 50 || q.PeriodInstrs != 1000 || q.OffsetInstrs != 3 || q.BiasFrac != 0 {
		t.Errorf("explicit params rewritten: %+v", q)
	}
}

func TestSchedule(t *testing.T) {
	p := Params{WindowInstrs: 200, WarmupInstrs: 100, PeriodInstrs: 1000, OffsetInstrs: 250}
	pts := p.schedule(3300)
	want := []uint64{250, 1250, 2250} // 3250+300 > 3300 excludes the fourth
	if len(pts) != len(want) {
		t.Fatalf("schedule = %v, want %v", pts, want)
	}
	for i := range want {
		if pts[i] != want[i] {
			t.Fatalf("schedule = %v, want %v", pts, want)
		}
	}
	if got := p.schedule(200); got != nil {
		t.Errorf("run shorter than a span scheduled windows: %v", got)
	}
}
