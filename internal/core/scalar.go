package core

import (
	"fmt"

	"multiscalar/internal/interp"
	"multiscalar/internal/isa"
	"multiscalar/internal/mem"
	"multiscalar/internal/pu"
	"multiscalar/internal/trace"
)

// Scalar is the baseline processor: one processing unit (identical to a
// multiscalar unit), a 32 KB instruction cache, a 64 KB data cache with
// 1-cycle hits, and the shared memory bus — the configuration the paper's
// speedups are measured against.
type Scalar struct {
	cfg     Config
	prog    *isa.Program
	env     *interp.SysEnv
	backing *mem.Memory
	bus     *mem.Bus
	icache  *mem.Cache
	dcache  *mem.Cache
	unit    *pu.Unit
	ext     *scalarExt

	// Clock state lives on the struct (not as Run locals) so a
	// checkpoint taken mid-run captures it and Restore resumes the loop
	// where it stopped.
	now     uint64
	ticked  uint64
	started bool

	// Warm-state injection (InjectWarm): start execution at startPC
	// instead of the program entry, with startFCC seeded after Start.
	startPC  uint32
	startFCC bool

	// Commit limit (SetCommitLimit): pause the run once this many
	// instructions have committed.
	limit uint64

	// Checkpoint hook (ScheduleCheckpoint).
	chkAt uint64
	chkFn func() error
}

// NewScalar builds a scalar machine for a program.
func NewScalar(prog *isa.Program, env *interp.SysEnv, cfg Config) *Scalar {
	s := &Scalar{
		cfg:     cfg,
		prog:    prog,
		env:     env,
		backing: mem.NewMemoryFromImage(interp.ProgramImage(prog)),
		bus:     mem.NewBus(),
	}
	s.icache = mem.NewCache("icache", cfg.ICacheBytes, cfg.ICacheBlock, 0, cfg.NumMSHRs, s.bus)
	s.dcache = mem.NewCache("dcache", cfg.DBankBytes, cfg.DBlockBytes, cfg.DCacheHit, cfg.NumMSHRs, s.bus)
	if cfg.Sink != nil {
		s.bus.Sink = cfg.Sink
		s.icache.Sink, s.icache.SinkKind, s.icache.SinkID = cfg.Sink, trace.KICacheMiss, 0
		s.dcache.Sink, s.dcache.SinkKind, s.dcache.SinkID = cfg.Sink, trace.KDCacheMiss, 0
	}
	s.ext = &scalarExt{s: s}
	s.ext.regs[isa.RegSP] = interp.IntVal(isa.StackTop)
	s.ext.regs[isa.RegGP] = interp.IntVal(isa.DataBase)
	ucfg := pu.Config{
		IssueWidth:    cfg.IssueWidth,
		OutOfOrder:    cfg.OutOfOrder,
		ROBSize:       cfg.ROBSize,
		FetchQSize:    cfg.FetchQSize,
		Latencies:     cfg.Latencies,
		BranchEntries: cfg.BranchEntries,
		Sink:          cfg.Sink,
	}
	s.unit = pu.New(0, ucfg, prog, s.ext)
	return s
}

// SetCommitLimit arranges for Run to pause — return the Result so far
// without finishing the program — once at least n instructions have
// committed. Machine state is untouched by the pause: calling Run
// again (with a higher or cleared limit) resumes exactly where the
// paused run stopped, and the eventual results are identical to an
// uninterrupted run. The sampled-simulation engine uses two pauses per
// detailed window to delimit the measured region. 0 clears the limit.
func (s *Scalar) SetCommitLimit(n uint64) { s.limit = n }

// Run executes the program to completion (or resumes a restored or
// commit-limit-paused run).
func (s *Scalar) Run() (*Result, error) {
	if !s.started {
		s.started = true
		entry := s.prog.Entry
		if s.startPC != 0 {
			entry = s.startPC
		}
		if s.cfg.Sink != nil {
			s.unit.SetTraceTask(0)
			s.cfg.Sink.Emit(trace.Event{Cycle: 0, Kind: trace.KTaskAssign, Unit: 0, Task: 0, Arg: entry})
		}
		s.unit.Start(entry, 0)
		if s.startFCC {
			s.unit.SeedFCC(true)
		}
	}
	// Same wakeup scheduler as the multiscalar loop (docs/perf.md), with
	// only the unit itself to consult: after a cycle in which the unit
	// changed no state, jump to its next latched timestamp (functional-unit
	// completion or instruction-cache fill) and bulk-account the stall.
	// The scalar Ext has no external registers or sequencer, so the unit's
	// own NextEvent is the complete wakeup set.
	skip := !s.cfg.NoSkip && s.cfg.Trace == nil
	for !s.env.Exited {
		if s.chkFn != nil && s.now >= s.chkAt {
			fn := s.chkFn
			s.chkFn = nil
			if err := fn(); err != nil {
				return nil, err
			}
		}
		if s.limit > 0 && s.unit.Retired >= s.limit {
			return s.result(), nil
		}
		if s.now >= s.cfg.MaxCycles {
			return nil, fmt.Errorf("core: scalar run exceeded %d cycles", s.cfg.MaxCycles)
		}
		s.ticked++
		if _, err := s.unit.Tick(s.now); err != nil {
			return nil, err
		}
		if skip && !s.unit.Progressed() && !s.env.Exited {
			if t := s.unit.NextEvent(s.now); t > s.now+1 {
				if t > s.cfg.MaxCycles {
					t = s.cfg.MaxCycles
				}
				s.unit.AddStallCycles(t - (s.now + 1))
				s.now = t
				continue
			}
		}
		s.now++
	}
	if s.cfg.Sink != nil {
		s.cfg.Sink.Emit(trace.Event{Cycle: s.now, Kind: trace.KTaskRetire, Unit: 0, Task: 0,
			Arg: s.unit.ExitPC(), Arg2: s.unit.Retired})
		s.cfg.Sink.Emit(trace.Event{Cycle: s.now, Kind: trace.KRunEnd, Unit: -1, Task: -1, Arg2: s.now})
	}
	return s.result(), nil
}

// result assembles the Result for the machine's current state (used at
// run end and at commit-limit pauses).
func (s *Scalar) result() *Result {
	res := &Result{
		Cycles:       s.now,
		CyclesTicked: s.ticked,
		Committed:    s.unit.Retired,
		Out:          s.env.Out.String(),
		ExitCode:     s.env.ExitCode,
		ICacheMisses: s.icache.Misses,
		DCacheMisses: s.dcache.Misses,
		BusRequests:  s.bus.Requests,
	}
	res.Activity = s.unit.ActCounts
	return res
}

// Memory exposes the backing store (for test assertions).
func (s *Scalar) Memory() *mem.Memory { return s.backing }

// Registers exposes final architectural registers (for test assertions).
func (s *Scalar) Registers() [isa.NumRegs]interp.Value { return s.ext.regs }

// scalarExt is the trivial environment: registers always ready, memory
// accessed directly with cache timing, syscalls always handled.
type scalarExt struct {
	s    *Scalar
	regs [isa.NumRegs]interp.Value
}

func (e *scalarExt) ReadReg(now uint64, r isa.Reg) (interp.Value, bool) {
	return e.regs[r], true
}

func (e *scalarExt) WriteReg(r isa.Reg, v interp.Value) {
	if r != isa.RegZero {
		e.regs[r] = v
	}
}

func (e *scalarExt) Forward(now uint64, r isa.Reg, v interp.Value) {
	// No successors on a scalar machine; forward/release bits are absent
	// from scalar binaries anyway.
}

func (e *scalarExt) Load(now uint64, op isa.Op, addr uint32) (interp.Value, uint64, bool) {
	raw := e.s.backing.ReadN(addr, op.MemSize())
	done := e.s.dcache.Access(now, addr, false)
	return interp.LoadValue(op, raw), done, true
}

func (e *scalarExt) Store(now uint64, op isa.Op, addr uint32, v interp.Value) (uint64, bool) {
	e.s.backing.WriteN(addr, op.MemSize(), interp.StoreValue(op, v))
	done := e.s.dcache.Access(now, addr, true)
	return done, true
}

func (e *scalarExt) FetchDone(now uint64, groupAddr uint32) uint64 {
	return e.s.icache.Access(now, groupAddr, false)
}

func (e *scalarExt) Syscall(now uint64) (uint32, bool, bool, error) {
	ret, writes, err := e.s.env.Call(e.s.backing,
		e.regs[isa.RegV0].I, e.regs[isa.RegA0].I,
		e.regs[isa.RegA1].I, e.regs[isa.RegA2].I, e.regs[isa.RegA3].I)
	return ret, writes, true, err
}
