package multiscalar_test

import (
	"bytes"
	"reflect"
	"testing"

	"multiscalar"
	"multiscalar/internal/pu"
	"multiscalar/internal/trace"
)

// exampleTrace runs the paper's linked-list example with a collector
// attached and oracle verification on, returning the result and stream.
func exampleTrace(t *testing.T, units int) (*multiscalar.Result, *multiscalar.TraceCollector, *multiscalar.Program, multiscalar.Config) {
	t.Helper()
	w := multiscalar.GetWorkload("example")
	if w == nil {
		t.Fatal("example workload missing")
	}
	prog, err := w.Build(multiscalar.ModeMultiscalar, 20)
	if err != nil {
		t.Fatal(err)
	}
	cfg := multiscalar.DefaultConfig(units, 1, false)
	col := &multiscalar.TraceCollector{}
	res, err := multiscalar.Run(prog, cfg, multiscalar.WithTrace(col), multiscalar.WithVerify())
	if err != nil {
		t.Fatal(err)
	}
	return res, col, prog, cfg
}

// TestTraceEventSequence checks the event stream of an oracle-verified
// run of examples/linkedlist against the run's Result: the task
// lifecycle ordering, and the exact agreement of every per-event count
// with the corresponding aggregate statistic.
func TestTraceEventSequence(t *testing.T) {
	res, col, _, _ := exampleTrace(t, 4)

	var (
		assigns, retires, squashes   uint64
		committed                    uint64
		activity                     [pu.NumActivities]uint64
		squashedCycles               uint64
		arbViol, arbOver             uint64
		icacheMiss, dcacheMiss, busN uint64
		lastAssignCycle              uint64
		lastAssignSeq                = int32(-1)
		lastRetireSeq                = int32(-1)
		assigned                     = map[int32]bool{}
		runEnds                      int
	)
	for _, e := range col.Events {
		if e.Task >= 0 && e.Kind != trace.KTaskAssign && !assigned[e.Task] {
			t.Fatalf("event %v before task %d was assigned", e, e.Task)
		}
		switch e.Kind {
		case trace.KTaskAssign:
			assigns++
			if e.Task != lastAssignSeq+1 {
				t.Fatalf("assign of task %d follows task %d: sequence numbers must be dense", e.Task, lastAssignSeq)
			}
			if e.Cycle < lastAssignCycle {
				t.Fatalf("assign of task %d at cycle %d precedes previous assign at %d", e.Task, e.Cycle, lastAssignCycle)
			}
			lastAssignSeq, lastAssignCycle = e.Task, e.Cycle
			assigned[e.Task] = true
		case trace.KTaskRetire:
			retires++
			committed += e.Arg2
			if e.Task <= lastRetireSeq {
				t.Fatalf("task %d retired after task %d: retirement must follow program order", e.Task, lastRetireSeq)
			}
			lastRetireSeq = e.Task
		case trace.KTaskSquash:
			squashes++
		case trace.KTaskActivity:
			class := e.Arg &^ trace.ActivitySquashed
			if class == 0 || class >= uint32(pu.NumActivities) {
				t.Fatalf("activity event with class %d: %v", class, e)
			}
			if e.Arg&trace.ActivitySquashed != 0 {
				squashedCycles += e.Arg2
			} else {
				activity[class] += e.Arg2
			}
		case trace.KARBViolation:
			arbViol++
		case trace.KARBOverflow:
			arbOver++
		case trace.KICacheMiss:
			icacheMiss++
		case trace.KDCacheMiss:
			dcacheMiss++
		case trace.KBusRequest:
			busN++
		case trace.KRunEnd:
			runEnds++
			if e.Arg2 != res.Cycles {
				t.Errorf("run-end cycle %d, result %d", e.Arg2, res.Cycles)
			}
		}
	}
	if runEnds != 1 || col.Events[len(col.Events)-1].Kind != trace.KRunEnd {
		t.Errorf("trace must end with exactly one run-end event (got %d)", runEnds)
	}
	if retires != res.TasksRetired || squashes != res.TasksSquashed {
		t.Errorf("lifecycle counts: %d retires, %d squashes; result has %d, %d",
			retires, squashes, res.TasksRetired, res.TasksSquashed)
	}
	if assigns != res.TasksRetired+res.TasksSquashed-uint64(countRestarted(col.Events)) {
		// Every assignment ends in exactly one retire or one final
		// squash; restarted activations re-use their assignment, and a
		// task squashed then re-run to retirement contributes one squash
		// AND one retire for a single assign.
		t.Errorf("assigns = %d, retires+squashes-restartedRetires = %d",
			assigns, res.TasksRetired+res.TasksSquashed-uint64(countRestarted(col.Events)))
	}
	if committed != res.Committed {
		t.Errorf("retired instructions sum to %d, result committed %d", committed, res.Committed)
	}
	// The tentpole's acceptance bar: the per-task decomposition must sum
	// exactly to the Result aggregates, class by class.
	for a := pu.ActCompute; a < pu.NumActivities; a++ {
		if activity[a] != res.Activity[a] {
			t.Errorf("activity[%v] sums to %d, result has %d", a, activity[a], res.Activity[a])
		}
	}
	if squashedCycles != res.SquashedCycles {
		t.Errorf("squashed cycles sum to %d, result has %d", squashedCycles, res.SquashedCycles)
	}
	if arbViol != res.ARBViolations || arbOver != res.ARBOverflows {
		t.Errorf("arb events %d/%d, result %d/%d", arbViol, arbOver, res.ARBViolations, res.ARBOverflows)
	}
	if icacheMiss != res.ICacheMisses || dcacheMiss != res.DCacheMisses || busN != res.BusRequests {
		t.Errorf("memory events %d/%d/%d, result %d/%d/%d",
			icacheMiss, dcacheMiss, busN, res.ICacheMisses, res.DCacheMisses, res.BusRequests)
	}
	if res.MemSquashes == 0 {
		t.Error("the example workload should exhibit memory-order squashes (Section 2.3)")
	}

	// The summarizer's view must agree with the raw fold above.
	s := trace.Summarize(&trace.Trace{Events: col.Events})
	var sumAct [trace.MaxActivityClasses]uint64
	var sumSquashed uint64
	for _, task := range s.Tasks {
		for c, n := range task.Activity {
			sumAct[c] += n
		}
		sumSquashed += task.SquashedCycles
	}
	for a := pu.ActCompute; a < pu.NumActivities; a++ {
		if sumAct[a] != res.Activity[a] {
			t.Errorf("summary activity[%v] = %d, result %d", a, sumAct[a], res.Activity[a])
		}
	}
	if sumSquashed != res.SquashedCycles {
		t.Errorf("summary squashed cycles = %d, result %d", sumSquashed, res.SquashedCycles)
	}
}

func countRestarted(events []multiscalar.TraceEvent) int {
	restarted := map[int32]bool{}
	for _, e := range events {
		if e.Kind == trace.KTaskRestart {
			restarted[e.Task] = true
		}
	}
	// A restarted task's earlier squash(es) did not end its assignment.
	n := 0
	seen := map[int32]int{}
	for _, e := range events {
		if e.Kind == trace.KTaskSquash && restarted[e.Task] {
			seen[e.Task]++
		}
	}
	for task, squashes := range seen {
		n += squashes
		// If the task's final outcome was a squash with no restart after
		// it, that one did end the assignment.
		if finalOutcomeIsSquash(events, task) {
			n--
		}
	}
	return n
}

func finalOutcomeIsSquash(events []multiscalar.TraceEvent, task int32) bool {
	last := trace.Kind(0)
	for _, e := range events {
		if e.Task == task {
			switch e.Kind {
			case trace.KTaskSquash, trace.KTaskRetire, trace.KTaskRestart:
				last = e.Kind
			}
		}
	}
	return last == trace.KTaskSquash
}

// TestTraceRoundTripExample writes the example workload's live event
// stream through the .mstrc writer and reads it back: metadata and every
// event must survive byte-exactly.
func TestTraceRoundTripExample(t *testing.T) {
	_, col, prog, cfg := exampleTrace(t, 4)
	var buf bytes.Buffer
	w, err := multiscalar.NewTraceWriter(&buf, prog, cfg, "example")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range col.Events {
		w.Emit(e)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	back, err := multiscalar.ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Meta.NumUnits != cfg.NumUnits || back.Meta.Label != "example" {
		t.Errorf("meta = %+v", back.Meta)
	}
	if len(back.Meta.Tasks) != len(prog.Tasks) {
		t.Errorf("task table has %d names, program has %d descriptors", len(back.Meta.Tasks), len(prog.Tasks))
	}
	if !reflect.DeepEqual(back.Events, col.Events) {
		t.Fatalf("events did not survive the round trip: %d in, %d out", len(col.Events), len(back.Events))
	}
}

// TestTraceOffIsFree guards the nil-sink contract: attaching a trace
// sink must not change a single statistic of the run, so the untraced
// fast path and the traced path are cycle-for-cycle the same machine.
func TestTraceOffIsFree(t *testing.T) {
	w := multiscalar.GetWorkload("example")
	prog, err := w.Build(multiscalar.ModeMultiscalar, 20)
	if err != nil {
		t.Fatal(err)
	}
	cfg := multiscalar.DefaultConfig(4, 1, false)
	plain, err := multiscalar.Run(prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	col := &multiscalar.TraceCollector{}
	traced, err := multiscalar.Run(prog, cfg, multiscalar.WithTrace(col))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, traced) {
		t.Errorf("tracing changed the run:\nplain  %+v\ntraced %+v", plain, traced)
	}
	if len(col.Events) == 0 {
		t.Error("traced run emitted no events")
	}

	// The scalar machine honors the same contract.
	scProg, err := w.Build(multiscalar.ModeScalar, 20)
	if err != nil {
		t.Fatal(err)
	}
	scCfg := multiscalar.ScalarConfig(1, false)
	scPlain, err := multiscalar.Run(scProg, scCfg)
	if err != nil {
		t.Fatal(err)
	}
	scCol := &multiscalar.TraceCollector{}
	scTraced, err := multiscalar.Run(scProg, scCfg, multiscalar.WithTrace(scCol))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(scPlain, scTraced) {
		t.Errorf("tracing changed the scalar run:\nplain  %+v\ntraced %+v", scPlain, scTraced)
	}
	if len(scCol.Events) == 0 {
		t.Error("traced scalar run emitted no events")
	}
}

// TestRunWithStdin covers the SysReadChar syscall end to end: the
// program echoes its input stream, and WithVerify replays the same bytes
// to the oracle and the timing run.
func TestRunWithStdin(t *testing.T) {
	src := `
main:
	li $s1, 0
echo:
	li $v0, 12         ; read_char
	syscall
	bltz $v0, done
	add $s1, $s1, $v0
	move $a0, $v0
	li $v0, 11         ; print_char
	syscall
	j echo
done:
	move $a0, $s1
	li $v0, 1
	syscall
	li $v0, 10
	li $a0, 0
	syscall
`
	res, err := multiscalar.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	out, err := multiscalar.Run(res.Prog, multiscalar.ScalarConfig(1, false),
		multiscalar.WithStdin(bytes.NewReader([]byte("abc"))), multiscalar.WithVerify())
	if err != nil {
		t.Fatal(err)
	}
	want := "abc" + "294" // echoed bytes then their sum
	if out.Out != want {
		t.Errorf("out = %q, want %q", out.Out, want)
	}

	// No stdin: read_char reports end-of-input immediately.
	empty, err := multiscalar.Run(res.Prog, multiscalar.ScalarConfig(1, false), multiscalar.WithVerify())
	if err != nil {
		t.Fatal(err)
	}
	if empty.Out != "0" {
		t.Errorf("out with no stdin = %q, want %q", empty.Out, "0")
	}

	// The interpreter reads the same stream.
	oracle, err := multiscalar.Interpret(res.Prog, multiscalar.WithStdin(bytes.NewReader([]byte("hi"))))
	if err != nil {
		t.Fatal(err)
	}
	if oracle.Out != "hi209" {
		t.Errorf("oracle out = %q", oracle.Out)
	}
}

// TestRunWithMaxCycles bounds a timing run below its cycle need.
func TestRunWithMaxCycles(t *testing.T) {
	prog := mustAssemble(t, apiDemo, multiscalar.ModeMultiscalar)
	if _, err := multiscalar.Run(prog, multiscalar.DefaultConfig(4, 1, false), multiscalar.WithMaxCycles(10)); err == nil {
		t.Error("a 10-cycle bound should abort the run")
	}
}
