package isa

import (
	"testing"
	"testing/quick"
)

func TestParseRegConventionalNames(t *testing.T) {
	cases := map[string]Reg{
		"$zero": RegZero, "$at": RegAT, "$v0": RegV0, "$v1": RegV1,
		"$a0": RegA0, "$a3": RegA3, "$t0": RegT0, "$t7": RegT7,
		"$t8": RegT8, "$t9": RegT9, "$s0": RegS0, "$s7": RegS7,
		"$gp": RegGP, "$sp": RegSP, "$fp": RegFP, "$ra": RegRA,
	}
	for name, want := range cases {
		got, err := ParseReg(name)
		if err != nil {
			t.Fatalf("ParseReg(%q): %v", name, err)
		}
		if got != want {
			t.Errorf("ParseReg(%q) = %v, want %v", name, got, want)
		}
	}
}

func TestParseRegNumeric(t *testing.T) {
	for n := 0; n < NumIntRegs; n++ {
		name := "$" + itoa(n)
		got, err := ParseReg(name)
		if err != nil {
			t.Fatalf("ParseReg(%q): %v", name, err)
		}
		if got != Reg(n) {
			t.Errorf("ParseReg(%q) = %v, want %d", name, got, n)
		}
	}
}

func TestParseRegFP(t *testing.T) {
	for n := 0; n < NumFPRegs; n++ {
		name := "$f" + itoa(n)
		got, err := ParseReg(name)
		if err != nil {
			t.Fatalf("ParseReg(%q): %v", name, err)
		}
		if got != F(n) {
			t.Errorf("ParseReg(%q) = %v, want $f%d", name, got, n)
		}
		if !got.IsFP() {
			t.Errorf("%v.IsFP() = false", got)
		}
	}
}

func TestParseRegErrors(t *testing.T) {
	for _, name := range []string{"", "$", "zero", "$32", "$f32", "$q3", "$-1", "$f", "$99"} {
		if r, err := ParseReg(name); err == nil {
			t.Errorf("ParseReg(%q) = %v, want error", name, r)
		}
	}
}

func TestRegStringRoundTrip(t *testing.T) {
	for r := Reg(0); r < NumRegs; r++ {
		back, err := ParseReg(r.String())
		if err != nil {
			t.Fatalf("ParseReg(%v.String()): %v", r, err)
		}
		if back != r {
			t.Errorf("round trip %v -> %q -> %v", r, r.String(), back)
		}
	}
}

func TestRegStringRoundTripProperty(t *testing.T) {
	f := func(n uint8) bool {
		r := Reg(n % NumRegs)
		back, err := ParseReg(r.String())
		return err == nil && back == r
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [4]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
