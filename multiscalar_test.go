package multiscalar_test

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"multiscalar"
)

const apiDemo = `
main:
	li $s0, 50
	li $s1, 0
	j  loop !s
loop:
	add  $s1, $s1, $s0 !f
	addi $s0, $s0, -1 !f
	bnez $s0, loop !s
done:
	move $a0, $s1
	li $v0, 1
	syscall
	li $v0, 10
	li $a0, 0
	syscall
	.task main targets=loop create=$s0,$s1
	.task loop targets=loop,done create=$s0,$s1
	.task done
`

// mustAssemble builds one mode of a source through the options API.
func mustAssemble(t *testing.T, src string, mode multiscalar.Mode) *multiscalar.Program {
	t.Helper()
	res, err := multiscalar.Assemble(src, multiscalar.WithMode(mode))
	if err != nil {
		t.Fatal(err)
	}
	return res.Prog
}

func TestFacadeAssembleAndInterpret(t *testing.T) {
	prog := mustAssemble(t, apiDemo, multiscalar.ModeMultiscalar)
	res, err := multiscalar.Interpret(prog, multiscalar.WithMaxInstrs(1<<20))
	if err != nil {
		t.Fatal(err)
	}
	if res.Out != "1275" {
		t.Errorf("out = %q", res.Out)
	}
	if res.ExitCode != 0 || res.Instructions == 0 {
		t.Errorf("res = %+v", res)
	}
}

func TestFacadeVerifyScalar(t *testing.T) {
	prog := mustAssemble(t, apiDemo, multiscalar.ModeScalar)
	for _, width := range []int{1, 2} {
		res, err := multiscalar.Run(prog, multiscalar.ScalarConfig(width, true), multiscalar.WithVerify())
		if err != nil {
			t.Fatal(err)
		}
		if res.Out != "1275" {
			t.Errorf("width=%d out = %q", width, res.Out)
		}
	}
}

func TestFacadeVerifyMultiscalar(t *testing.T) {
	prog := mustAssemble(t, apiDemo, multiscalar.ModeMultiscalar)
	for _, units := range []int{2, 4, 8, 16} {
		res, err := multiscalar.Run(prog, multiscalar.DefaultConfig(units, 1, false), multiscalar.WithVerify())
		if err != nil {
			t.Fatalf("units=%d: %v", units, err)
		}
		if res.TasksRetired < 50 {
			t.Errorf("units=%d tasks = %d", units, res.TasksRetired)
		}
	}
}

func TestFacadeRejectsUnannotated(t *testing.T) {
	prog := mustAssemble(t, apiDemo, multiscalar.ModeScalar)
	if _, err := multiscalar.Run(prog, multiscalar.DefaultConfig(4, 1, false)); err == nil {
		t.Error("multiscalar run of a scalar binary should fail")
	}
}

// TestFacadeDeprecatedWrappers keeps the pre-options entry points working.
func TestFacadeDeprecatedWrappers(t *testing.T) {
	prog, err := multiscalar.AssembleMode(apiDemo, multiscalar.ModeMultiscalar)
	if err != nil {
		t.Fatal(err)
	}
	full, err := multiscalar.AssembleFull(apiDemo, multiscalar.AssembleOptions{Mode: multiscalar.ModeMultiscalar})
	if err != nil || full.Prog == nil || len(full.Lines) == 0 {
		t.Fatalf("AssembleFull = %+v, %v", full, err)
	}
	if _, err := multiscalar.RunMultiscalar(prog, multiscalar.DefaultConfig(4, 1, false)); err != nil {
		t.Fatal(err)
	}
	scProg, err := multiscalar.AssembleMode(apiDemo, multiscalar.ModeScalar)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := multiscalar.RunScalar(scProg, multiscalar.ScalarConfig(1, false)); err != nil {
		t.Fatal(err)
	}
	if res, err := multiscalar.Verify(prog, multiscalar.DefaultConfig(4, 1, false)); err != nil || res.Out != "1275" {
		t.Fatalf("Verify = %+v, %v", res, err)
	}
}

// TestFacadeSubmitJob drives the job facade: a JobSpec submitted twice
// is answered from the content-addressed cache the second time, and the
// cached result agrees with a direct Run of the same program and config.
func TestFacadeSubmitJob(t *testing.T) {
	cfg := multiscalar.DefaultConfig(4, 1, false)
	spec := multiscalar.JobSpec{
		Op:     multiscalar.JobSimulate,
		Source: apiDemo,
		Mode:   multiscalar.ModeMultiscalar,
		Config: cfg,
		Verify: true,
	}
	ctx := context.Background()
	first, err := multiscalar.SubmitJob(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if first.Cached || first.Sim == nil || first.Sim.Out != "1275" {
		t.Fatalf("first submission: %+v", first)
	}
	again, err := multiscalar.SubmitJob(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !again.Cached || again.Key != first.Key || again.Sim.Cycles != first.Sim.Cycles {
		t.Fatalf("resubmission not cached: %+v vs %+v", again, first)
	}

	direct, err := multiscalar.Run(mustAssemble(t, apiDemo, multiscalar.ModeMultiscalar), cfg,
		multiscalar.WithVerify())
	if err != nil {
		t.Fatal(err)
	}
	if direct.Cycles != first.Sim.Cycles || direct.Committed != first.Sim.Committed {
		t.Fatalf("job result diverged from direct Run: %d/%d cycles, %d/%d committed",
			first.Sim.Cycles, direct.Cycles, first.Sim.Committed, direct.Committed)
	}
}

func TestFacadePartition(t *testing.T) {
	src := `
main:
	li $t0, 20
	li $s1, 0
loop:
	add $s1, $s1, $t0
	addi $t0, $t0, -1
	bnez $t0, loop
	move $a0, $s1
	li $v0, 1
	syscall
	li $v0, 10
	li $a0, 0
	syscall
`
	prog := mustAssemble(t, src, multiscalar.ModeMultiscalar)
	if err := multiscalar.Partition(prog, multiscalar.PartitionOptions{}); err != nil {
		t.Fatal(err)
	}
	if len(prog.Tasks) < 2 {
		t.Fatalf("tasks = %d", len(prog.Tasks))
	}
	res, err := multiscalar.Run(prog, multiscalar.DefaultConfig(4, 1, false), multiscalar.WithVerify())
	if err != nil {
		t.Fatal(err)
	}
	if res.Out != "210" {
		t.Errorf("out = %q", res.Out)
	}
}

func TestFacadeWorkloadRegistry(t *testing.T) {
	names := multiscalar.WorkloadNames()
	if len(names) != 14 { // 10 paper benchmarks + 4 extras
		t.Fatalf("names = %v", names)
	}
	if names[9] != "example" {
		t.Errorf("table order broken: %v", names)
	}
	w := multiscalar.GetWorkload("example")
	if w == nil || !strings.Contains(w.Description, "linked-list") {
		t.Fatalf("example workload = %+v", w)
	}
	if multiscalar.GetWorkload("nope") != nil {
		t.Error("unknown workload should be nil")
	}
	if len(multiscalar.Workloads()) != 10 {
		t.Error("Workloads() should return the paper suite only")
	}
}

func TestFacadeConfigDefaults(t *testing.T) {
	cfg := multiscalar.DefaultConfig(8, 2, true)
	if cfg.NumUnits != 8 || cfg.IssueWidth != 2 || !cfg.OutOfOrder {
		t.Errorf("cfg = %+v", cfg)
	}
	if cfg.ARBEntries != 256 || cfg.DCacheHit != 2 || cfg.NumBanks() != 16 {
		t.Errorf("paper defaults wrong: %+v", cfg)
	}
	s := multiscalar.ScalarConfig(1, false)
	if s.NumUnits != 1 || s.DCacheHit != 1 || s.NumBanks() != 1 {
		t.Errorf("scalar config wrong: %+v", s)
	}
}

func TestFacadeAssembleError(t *testing.T) {
	if _, err := multiscalar.Assemble("main:\n\tbogus $t0\n"); err == nil {
		t.Error("expected assemble error")
	}
}

func TestFacadeSaveLoadProgram(t *testing.T) {
	prog := mustAssemble(t, apiDemo, multiscalar.ModeMultiscalar)
	var buf bytes.Buffer
	if err := multiscalar.SaveProgram(&buf, prog); err != nil {
		t.Fatal(err)
	}
	back, err := multiscalar.LoadProgram(&buf)
	if err != nil {
		t.Fatal(err)
	}
	res, err := multiscalar.Run(back, multiscalar.DefaultConfig(4, 1, false), multiscalar.WithVerify())
	if err != nil {
		t.Fatal(err)
	}
	if res.Out != "1275" {
		t.Errorf("out = %q", res.Out)
	}
}
