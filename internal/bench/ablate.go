package bench

import (
	"fmt"
	"strings"

	"multiscalar/internal/arb"
	"multiscalar/internal/asm"
	"multiscalar/internal/core"
	"multiscalar/internal/isa"
	"multiscalar/internal/workloads"
)

// AblationRow is one configuration point of an ablation sweep.
type AblationRow struct {
	Label   string
	Cycles  uint64
	Speedup float64 // vs the sweep's baseline row
	Extra   string
}

// runMSConfig runs one multiscalar binary under cfg, verifying against
// the oracle reference o (the memoized functional run of the same
// program — or of a semantically equivalent transform of it). Points
// identical to an already-simulated one — every sweep's unablated row —
// fast-forward from its shared snapshot (runShared).
func runMSConfig(p *isa.Program, o Oracle, cfg core.Config, input []byte) (*core.Result, error) {
	return runShared(p, o, cfg, input, "ablation run")
}

// sweep builds `name` once (memoized), fans the configuration points out
// over the worker pool, and assembles rows in input order with speedups
// relative to row 0.
func sweep(name string, scale Scale, n int, cfgOf func(i int) core.Config,
	rowOf func(i int, res *core.Result) AblationRow) ([]AblationRow, error) {

	w := workloads.Get(name)
	if w == nil {
		return nil, fmt.Errorf("unknown workload %q", name)
	}
	p, o, err := buildOracle(w, asm.ModeMultiscalar, scale)
	if err != nil {
		return nil, err
	}
	input := inputFor(name)
	results := make([]*core.Result, n)
	err = runJobs(n, func(i int) error {
		res, err := runMSConfig(p, o, cfgOf(i), input)
		results[i] = res
		return err
	})
	if err != nil {
		return nil, err
	}
	base := results[0].Cycles
	rows := make([]AblationRow, n)
	for i, res := range results {
		rows[i] = rowOf(i, res)
		rows[i].Cycles = res.Cycles
		rows[i].Speedup = float64(base) / float64(res.Cycles)
	}
	return rows, nil
}

// UnitSweep measures cycles across unit counts (the window-size knob the
// whole paradigm turns on).
func UnitSweep(name string, scale Scale, counts []int) ([]AblationRow, error) {
	return sweep(name, scale, len(counts),
		func(i int) core.Config { return core.DefaultConfig(counts[i], 1, false) },
		func(i int, res *core.Result) AblationRow {
			return AblationRow{
				Label: fmt.Sprintf("%d units", counts[i]),
				Extra: fmt.Sprintf("pred=%.1f%% squash=%d", 100*res.PredAccuracy(), res.TasksSquashed),
			}
		})
}

// RingLatencySweep varies the per-hop forwarding latency (Section 5.1
// uses 1 cycle).
func RingLatencySweep(name string, scale Scale, latencies []int) ([]AblationRow, error) {
	return sweep(name, scale, len(latencies),
		func(i int) core.Config {
			cfg := core.DefaultConfig(8, 1, false)
			cfg.RingLatency = latencies[i]
			return cfg
		},
		func(i int, res *core.Result) AblationRow {
			return AblationRow{Label: fmt.Sprintf("ring hop %d cycles", latencies[i])}
		})
}

// ARBSweep varies ARB capacity under both overflow policies (Section 2.3
// discusses squash-on-full vs stall-but-head).
func ARBSweep(name string, scale Scale, entries []int) ([]AblationRow, error) {
	policies := []arb.OverflowPolicy{arb.PolicyStall, arb.PolicySquash}
	return sweep(name, scale, len(policies)*len(entries),
		func(i int) core.Config {
			cfg := core.DefaultConfig(8, 1, false)
			cfg.ARBEntries = entries[i%len(entries)]
			cfg.ARBPolicy = policies[i/len(entries)]
			return cfg
		},
		func(i int, res *core.Result) AblationRow {
			return AblationRow{
				Label: fmt.Sprintf("%d entries, %v", entries[i%len(entries)], policies[i/len(entries)]),
				Extra: fmt.Sprintf("overflows=%d arb-squashes=%d", res.ARBOverflows, res.ARBSquashes),
			}
		})
}

// stripForwarding clears every forward bit and neuters release
// instructions, leaving only the completion flush to communicate values —
// the non-expedient strategy Section 2.2 warns against.
func stripForwarding(p *isa.Program) {
	for i := range p.Text {
		p.Text[i].Fwd = false
		if p.Text[i].Op == isa.OpRelease {
			p.Text[i].Op = isa.OpNop
		}
	}
}

// ForwardingAblation compares early forwarding (forward bits + releases)
// against completion-flush-only on 8 units.
func ForwardingAblation(name string, scale Scale) ([]AblationRow, error) {
	w := workloads.Get(name)
	if w == nil {
		return nil, fmt.Errorf("unknown workload %q", name)
	}
	p, o, err := buildOracle(w, asm.ModeMultiscalar, scale)
	if err != nil {
		return nil, err
	}
	// Forward bits and releases only route values; they never change the
	// functional outcome or the dynamic instruction count (a release
	// becomes a nop, which still retires). The original oracle therefore
	// verifies the stripped clone too.
	stripped := cloneProgram(p)
	stripForwarding(stripped)

	input := inputFor(name)
	results := make([]*core.Result, 2)
	progs := []*isa.Program{p, stripped}
	err = runJobs(2, func(i int) error {
		res, err := runMSConfig(progs[i], o, core.DefaultConfig(8, 1, false), input)
		results[i] = res
		return err
	})
	if err != nil {
		return nil, err
	}
	withFwd, without := results[0], results[1]
	return []AblationRow{
		{Label: "forward bits + releases", Cycles: withFwd.Cycles, Speedup: 1},
		{Label: "completion flush only", Cycles: without.Cycles,
			Speedup: float64(withFwd.Cycles) / float64(without.Cycles)},
	}, nil
}

// PredictorAblation compares the PAs task predictor against static
// first-target prediction on 8 units.
func PredictorAblation(name string, scale Scale) ([]AblationRow, error) {
	return sweep(name, scale, 2,
		func(i int) core.Config {
			cfg := core.DefaultConfig(8, 1, false)
			cfg.StaticPredict = i == 1
			return cfg
		},
		func(i int, res *core.Result) AblationRow {
			label := "PAs two-level predictor"
			if i == 1 {
				label = "static first-target"
			}
			return AblationRow{
				Label: label,
				Extra: fmt.Sprintf("pred=%.1f%%", 100*res.PredAccuracy()),
			}
		})
}

// FormatAblation renders one sweep.
func FormatAblation(title string, rows []AblationRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-28s %10d cycles  %6.2fx  %s\n", r.Label, r.Cycles, r.Speedup, r.Extra)
	}
	return b.String()
}

// SharedFUAblation compares private per-unit FP/complex units (the paper's
// Figure 1 organization) against the shared-FU alternative
// microarchitecture sketched in Section 2.3, on 8 units.
func SharedFUAblation(name string, scale Scale) ([]AblationRow, error) {
	shared := []int{0, 2, 1} // 0 = private per-unit FUs
	return sweep(name, scale, len(shared),
		func(i int) core.Config {
			cfg := core.DefaultConfig(8, 1, false)
			cfg.SharedFPUnits = shared[i]
			return cfg
		},
		func(i int, res *core.Result) AblationRow {
			if shared[i] == 0 {
				return AblationRow{Label: "private FUs (Figure 1)"}
			}
			return AblationRow{Label: fmt.Sprintf("%d shared FP/complex units", shared[i])}
		})
}
