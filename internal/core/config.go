// Package core assembles the full machines: the multiscalar processor of
// Figure 1 (circular queue of processing units, sequencer with task
// prediction, register forwarding ring, ARB, banked data caches) and the
// scalar baseline processor built from one identical processing unit.
package core

import (
	"io"

	"multiscalar/internal/arb"
	"multiscalar/internal/isa"
	"multiscalar/internal/trace"
)

// Config describes one machine configuration. The defaults reproduce
// Section 5.1 of the paper.
type Config struct {
	// Units and issue.
	NumUnits   int  // parallel processing units (1 for the scalar machine)
	IssueWidth int  // 1 or 2
	OutOfOrder bool // out-of-order issue within a unit
	ROBSize    int  // per-unit instruction window
	FetchQSize int

	// Latencies.
	Latencies isa.Latencies

	// Instruction caches: per unit.
	ICacheBytes int // 32 KB
	ICacheBlock int // 64 B

	// Data banks: 2x banks as units; 8 KB direct-mapped, 64 B blocks.
	DBankBytes  int
	DBlockBytes int
	DCacheHit   int // 2 for multiscalar units, 1 for the scalar machine
	NumMSHRs    int

	// ARB.
	ARBEntries int // per bank (paper: 256)
	ARBPolicy  arb.OverflowPolicy

	// Ring.
	RingLatency int // cycles per hop (paper: 1)

	// Sequencer.
	DescCacheEntries int // task descriptor cache (paper: 1024)
	// StaticPredict disables the two-level predictor: the sequencer
	// always follows the first listed target (an ablation against the PAs
	// scheme of Section 5.1).
	StaticPredict bool

	// SharedFPUnits, when positive, shares the floating-point and complex
	// integer units between the processing units (the alternative
	// microarchitecture of Section 2.3): at most this many operations of
	// each of those classes may start per cycle machine-wide. Zero keeps
	// the paper's per-unit FUs.
	SharedFPUnits int

	// Branch prediction within units.
	BranchEntries int

	// Safety limits and debug checks.
	MaxCycles     uint64
	CheckForwards bool // verify forwarded values equal final task values

	// NoSkip disables the wakeup scheduler: the timing loop ticks every
	// unit every cycle, even through stall windows it could prove
	// unchanging and jump over. Results and event traces are identical
	// either way — that equivalence is what the skip logic is tested
	// against (docs/perf.md) — so the flag exists for debugging and for
	// those tests. A per-cycle text Trace also forces dense ticking,
	// since its output has one line per cycle.
	NoSkip bool

	// Trace, when non-nil, receives one compact line per cycle: the head
	// pointer, active count, and a glyph per unit (. idle, * compute,
	// p wait-pred, m wait-intra, r wait-retire), ordered physically.
	Trace io.Writer

	// Sink, when non-nil, receives the typed cycle-stamped event stream
	// (task lifecycle, unit occupancy, ring, ARB, memory system) defined
	// in internal/trace — see docs/tracing.md. Nil leaves every producer
	// on its untraced fast path; the usual way to set it is the facade's
	// WithTrace run option.
	Sink trace.Sink
}

// DefaultConfig returns the paper's multiscalar configuration for the
// given unit count, issue width and issue order.
func DefaultConfig(units, width int, outOfOrder bool) Config {
	return Config{
		NumUnits:         units,
		IssueWidth:       width,
		OutOfOrder:       outOfOrder,
		ROBSize:          16,
		FetchQSize:       8,
		Latencies:        isa.Table1(),
		ICacheBytes:      32 << 10,
		ICacheBlock:      64,
		DBankBytes:       8 << 10,
		DBlockBytes:      64,
		DCacheHit:        2,
		NumMSHRs:         4,
		ARBEntries:       256,
		ARBPolicy:        arb.PolicyStall,
		RingLatency:      1,
		DescCacheEntries: 1024,
		BranchEntries:    2048,
		MaxCycles:        2_000_000_000,
	}
}

// ScalarConfig returns the scalar baseline: one identical processing unit
// with 1-cycle data cache hits and a 64 KB data cache.
func ScalarConfig(width int, outOfOrder bool) Config {
	c := DefaultConfig(1, width, outOfOrder)
	c.DCacheHit = 1
	c.DBankBytes = 64 << 10 // one 64 KB cache
	return c
}

// NumBanks returns the data bank count: twice the unit count (Figure 1),
// and a single bank for the scalar machine.
func (c Config) NumBanks() int {
	if c.NumUnits <= 1 {
		return 1
	}
	return 2 * c.NumUnits
}
