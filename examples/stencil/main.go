// Stencil sweeps unit counts and issue configurations over the
// floating-point stencil workload (the tomcatv kernel): the workload the
// paper uses to show near-linear speedup on independent iterations — and
// where higher-issue configurations are "stymied by contention on the
// cache to memory bus". The sweep makes both effects visible.
package main

import (
	"fmt"
	"log"

	"multiscalar"
)

func main() {
	w := multiscalar.GetWorkload("tomcatv")
	const scale = 32

	scProg, err := w.Build(multiscalar.ModeScalar, scale)
	if err != nil {
		log.Fatal(err)
	}
	msProg, err := w.Build(multiscalar.ModeMultiscalar, scale)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("config           cycles   speedup   bus requests   bank conflicts")
	for _, width := range []int{1, 2} {
		base, err := multiscalar.Run(scProg, multiscalar.ScalarConfig(width, false), multiscalar.WithVerify())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("scalar %d-way   %8d     1.00x   %12d %16s\n", width, base.Cycles, base.BusRequests, "-")
		for _, units := range []int{2, 4, 8, 16} {
			res, err := multiscalar.Run(msProg, multiscalar.DefaultConfig(units, width, false), multiscalar.WithVerify())
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%2d units %d-way %8d   %6.2fx   %12d %16d\n",
				units, width, res.Cycles, res.Speedup(base), res.BusRequests, res.DBankConflicts)
		}
	}
}
