package workloads

import (
	"fmt"
	"strings"
)

// example is the paper's Figure 3 program, annotated exactly in the style
// of Figure 4: a task is one iteration of the outer loop (one complete
// linked-list search for one symbol, with the process/addlist calls
// suppressed into the task). Only the buffer cursor is live outside a
// task, so the create mask is tiny; it is updated and forwarded at the
// top of the task with a local copy kept for the body (Section 3.2.2).
//
// The input mirrors the paper's: 16 distinct symbols, each appearing
// `scale` times (the paper used 450), in near-round-robin order with
// deterministic perturbations so that concurrent searches for the same
// symbol (and hence memory-order squashes through process()'s counter
// update) occur but are rare — the paper's observation that "additions to
// the list become infrequent" also holds: all 16 symbols are inserted in
// the first iterations.
func init() {
	register(&Workload{
		Name:         "example",
		Description:  "Figure 3 linked-list symbol search (the paper's running example)",
		DefaultScale: 450,
		TestScale:    20,
		Source:       exampleSource,
		Paper: PaperRow{
			ScalarM: 1.05, MultiM: 1.09, PctIncrease: 4.2,
			InOrder1: PaperPerf{ScalarIPC: 0.79, Speedup4: 2.79, Speedup8: 3.96, Pred4: 99.9, Pred8: 99.9},
			InOrder2: PaperPerf{ScalarIPC: 1.07, Speedup4: 2.43, Speedup8: 3.47, Pred4: 99.9, Pred8: 99.9},
			OOO1:     PaperPerf{ScalarIPC: 0.86, Speedup4: 3.27, Speedup8: 4.86, Pred4: 99.9, Pred8: 99.9},
			OOO2:     PaperPerf{ScalarIPC: 1.28, Speedup4: 2.41, Speedup8: 3.57, Pred4: 99.9, Pred8: 99.9},
		},
	})
}

// exampleSymbols generates the input token stream: 16 symbols, each
// `occurrences` times, near round-robin with deterministic swaps.
func exampleSymbols(occurrences int) []int {
	const nsym = 16
	n := nsym * occurrences
	syms := make([]int, n)
	for i := range syms {
		syms[i] = 1000 + 7*(i%nsym)
	}
	// Perturb: swap i with i+3 every 13th position (keeps most repeats 16
	// apart — farther than the unit count — while creating occasional
	// nearby repeats that exercise memory-order squashes).
	r := newRNG(0x5eed)
	for i := 0; i+3 < n; i += 13 {
		j := i + 1 + r.intn(3)
		syms[i], syms[j] = syms[j], syms[i]
	}
	return syms
}

func wordLines(vals []int) string {
	var b strings.Builder
	for i := 0; i < len(vals); i += 16 {
		end := i + 16
		if end > len(vals) {
			end = len(vals)
		}
		b.WriteString("\t.word ")
		for j := i; j < end; j++ {
			if j > i {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%d", vals[j])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func exampleSource(scale int) string {
	syms := exampleSymbols(scale)
	var b strings.Builder
	b.WriteString("\t.data\n")
	b.WriteString("listhd:\t.word 0\n")
	b.WriteString("listtail:\t.word 0\n")
	b.WriteString("freeptr:\t.word pool\n")
	b.WriteString("buffer:\n")
	b.WriteString(wordLines(syms))
	b.WriteString("bufend:\n")
	b.WriteString("pool:\t.space 1024\n") // 16 nodes x 12 bytes, rounded up
	b.WriteString(`
	.text
main:
	la   $s0, buffer !f
	la   $s4, bufend !f
	j    OUTER !s

OUTER:
	; get the symbol for which to search; the multiscalar build bumps the
	; cursor early with a local copy (Figure 4 forwards the induction
	; variable first); the scalar build keeps the sequential shape
	.msonly move $t9, $s0
	.msonly addi $s0, $s0, 4 !f
	.msonly lw   $t0, 0($t9)  ; symbol = SYMVAL(buffer[indx])
	.sconly lw   $t0, 0($s0)
	lw   $t1, listhd          ; list = listhd
INNER:
	beqz $t1, INNERFALLOUT    ; if (!list) break
	lw   $t2, 0($t1)          ; LELE(list)
	beq  $t2, $t0, FOUNDSYM
	lw   $t1, 4($t1)          ; list = LNEXT(list)
	j    INNER
FOUNDSYM:
	move $a0, $t1
	jal  process              ; suppressed call: runs inside this task
	j    SKIPADD
INNERFALLOUT:
	move $a0, $t0
	jal  addlist              ; suppressed call
SKIPADD:
	.sconly addi $s0, $s0, 4  ; sequential habit: bump at the bottom
	bne  $s0, $s4, OUTER !s

OUTERFALLOUT:
	; checksum: sum of ele*count over the list
	lw   $t1, listhd
	li   $s1, 0
CHK:
	beqz $t1, CHKDONE
	lw   $t2, 0($t1)
	lw   $t3, 8($t1)
	mul  $t4, $t2, $t3
	add  $s1, $s1, $t4
	lw   $t1, 4($t1)
	j    CHK
CHKDONE:
	move $a0, $s1
` + printInt + exitSeq + `

process:
	lw   $t3, 8($a0)          ; count++
	addi $t3, $t3, 1
	sw   $t3, 8($a0)
	jr   $ra

addlist:
	lw   $t4, freeptr
	sw   $a0, 0($t4)          ; ele
	sw   $zero, 4($t4)        ; next
	sw   $zero, 8($t4)        ; count
	lw   $t5, listtail
	beqz $t5, FIRSTNODE
	sw   $t4, 4($t5)          ; tail->next = node
	j    SETTAIL
FIRSTNODE:
	sw   $t4, listhd
SETTAIL:
	sw   $t4, listtail
	addi $t5, $t4, 12
	sw   $t5, freeptr
	jr   $ra

	.task main targets=OUTER create=$s0,$s4
	.task OUTER targets=OUTER,OUTERFALLOUT create=$s0
	.task OUTERFALLOUT
`)
	return b.String()
}
