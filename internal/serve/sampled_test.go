package serve

import (
	"context"
	"testing"

	"multiscalar/internal/asm"
	"multiscalar/internal/core"
	"multiscalar/internal/job"
)

// TestSubmitSampled runs a sampled job through the real executor: the
// result carries the estimate, and a duplicate submission is served
// from the cache.
func TestSubmitSampled(t *testing.T) {
	eng := NewLocal(Options{CacheEntries: 4})
	spec := &job.Spec{
		Op:       job.OpSampled,
		Workload: "cmp",
		Mode:     asm.ModeMultiscalar,
		Config:   core.DefaultConfig(4, 1, false),
	}

	res, err := eng.Submit(context.Background(), "client", spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sampled == nil {
		t.Fatal("sampled job result carries no estimate")
	}
	if res.Sampled.EstCycles == 0 || res.Sampled.TotalInstrs == 0 {
		t.Errorf("degenerate estimate: %d cycles over %d instrs",
			res.Sampled.EstCycles, res.Sampled.TotalInstrs)
	}
	if res.Op != "sampled" {
		t.Errorf("result op %q, want %q", res.Op, "sampled")
	}

	again, err := eng.Submit(context.Background(), "client", spec)
	if err != nil {
		t.Fatal(err)
	}
	if !again.Cached {
		t.Error("duplicate sampled submission was not served from the cache")
	}
	if again.Sampled == nil || again.Sampled.EstCycles != res.Sampled.EstCycles {
		t.Error("cached estimate differs from the original")
	}
}
