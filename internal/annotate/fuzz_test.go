package annotate_test

import (
	"testing"

	"multiscalar/internal/annotate"
	"multiscalar/internal/asm"
	"multiscalar/internal/interp"
	"multiscalar/internal/mslint"
)

// FuzzAnnotate: the optimizer must never panic on any program the
// assembler accepts, and — the soundness property — for any lint-clean
// multiscalar program, the optimized binary must execute equivalently on
// the functional oracle (same output, same exit, same instruction count:
// a removed release decays to a nop, so even the count is preserved).
// Run with `go test -fuzz FuzzAnnotate ./internal/annotate`.
func FuzzAnnotate(f *testing.F) {
	// Mirror FuzzLint's seeds so mutation starts near the same
	// boundaries of the annotation contract.
	f.Add("main:\n\tli $t0, 1\n\tsyscall\n")
	f.Add("main:\n\tadd $t0, $t1, $t2 !f !s\n.task main targets=main create=$t0\n")
	f.Add("main:\n\tblt $t0, $t1, main\n\trelease $t0, $f3\n")
	f.Add(".msonly move $t9, $s0\n.sconly nop\nmain:\n\tj main !st\n")
	f.Add("main:\n\tli $s0, 3 !f\n\tj next !s\nnext:\n\tadd $a0, $s0, $zero\n\tli $v0, 1\n\tsyscall\n\tli $v0, 10\n\tli $a0, 0\n\tsyscall\n.task main targets=next create=$s0\n.task next\n")
	// Optimizer-specific boundaries: a droppable pass-through bit, a
	// flush-only path wanting a release, and a call whose return
	// liveness the refinement can consult.
	f.Add("main:\n\tli $s0, 1 !f\n\tj next !s\nnext:\n\tadd $a0, $s0, $s1\n\tli $v0, 10\n\tli $a0, 0\n\tsyscall\n.task main targets=next create=$s0,$s1\n.task next\n")
	f.Add("main:\n\tli $s0, 1 !f\n\tli $s6, 7 !f\n\tj t !s\nt:\n\tbnez $s0, skip\n\tli $s6, 42 !f\nskip:\n\tj out !s\nout:\n\tli $v0, 10\n\tli $a0, 0\n\tsyscall\n.task main targets=t create=$s0,$s6\n.task t targets=out create=$s6\n.task out\n")
	f.Add("main:\n\tjal fn\n\tj done !s\nfn:\n\tjr $ra !s\ndone:\n\tli $v0, 10\n\tli $a0, 0\n\tsyscall\n.task main targets=done\n.task done\n")

	f.Fuzz(func(t *testing.T, src string) {
		res, err := asm.AssembleOpts(src, asm.Options{Mode: asm.ModeMultiscalar, NoLint: true})
		if err != nil || res == nil {
			return
		}
		// Analyze/Optimize must not panic on anything assemblable,
		// lint-clean or not.
		plan := annotate.Analyze(res.Prog, annotate.Options{InsertReleases: true})
		_ = plan.String()
		opt, _ := annotate.Optimize(res.Prog)

		// The soundness property only holds for programs that honor the
		// annotation contract; gate on a clean report, and bound the
		// oracle so runaway inputs are skipped, not failed.
		rep := mslint.Lint(res.Prog, res.Lines)
		if len(rep.Diags) != 0 || len(res.Prog.Tasks) == 0 || len(res.Prog.Text) > 4096 {
			return
		}
		oracleEnv := interp.NewSysEnv()
		om := interp.NewMachine(res.Prog, oracleEnv)
		if err := om.Run(100_000); err != nil {
			return // does not terminate cleanly; nothing to compare
		}
		optEnv := interp.NewSysEnv()
		optM := interp.NewMachine(opt, optEnv)
		if err := optM.Run(200_000); err != nil {
			t.Fatalf("optimized program fails on the oracle: %v\nplan:\n%s\nsource:\n%s", err, plan, src)
		}
		if optEnv.Out.String() != oracleEnv.Out.String() ||
			optEnv.ExitCode != oracleEnv.ExitCode || optM.ICount != om.ICount {
			t.Fatalf("optimized program diverges: out %q vs %q, exit %d vs %d, icount %d vs %d\nplan:\n%s\nsource:\n%s",
				optEnv.Out.String(), oracleEnv.Out.String(),
				optEnv.ExitCode, oracleEnv.ExitCode, optM.ICount, om.ICount, plan, src)
		}

		// The optimized program must itself satisfy the contract's hard
		// errors — tightening must never break MS001/MS004 soundness.
		if optRep := mslint.Lint(opt, nil); optRep.HasErrors() {
			t.Fatalf("optimized program has lint errors:\n%s\nplan:\n%s\nsource:\n%s", optRep, plan, src)
		}

		// Source-level rewrite, when it applies, verifies internally
		// (interp equivalence) and must re-assemble; exercise it too.
		if _, _, err := annotate.RewriteSource(src); err != nil {
			t.Fatalf("RewriteSource failed on a lint-clean program: %v\nsource:\n%s", err, src)
		}
	})
}
