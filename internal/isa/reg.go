// Package isa defines the MIPS-like instruction set architecture used by the
// multiscalar toolchain and simulators, including the multiscalar-specific
// program annotations described in Section 2.2 of the paper: task
// descriptors with create masks, forward bits, stop bits, and release
// instructions.
//
// The register file shape, big-endian 32-bit memory model, and absence of
// delay slots mirror the binaries the paper's simulator accepted. The one
// deliberate deviation (documented in DESIGN.md) is 3-operand multiply and
// divide in place of HI/LO.
package isa

import "fmt"

// Reg names a register. Values 0-31 are the integer registers $0-$31
// (with $0 hardwired to zero); values 32-63 are the floating-point
// registers $f0-$f31.
type Reg uint8

// Register file dimensions.
const (
	NumIntRegs = 32
	NumFPRegs  = 32
	NumRegs    = NumIntRegs + NumFPRegs
)

// F returns the Reg for floating-point register $f<n>.
func F(n int) Reg { return Reg(NumIntRegs + n) }

// Conventional MIPS integer register roles, used by the assembler, the
// syscall interface, and the calling convention of the workload programs.
const (
	RegZero Reg = 0 // hardwired zero
	RegAT   Reg = 1 // assembler temporary
	RegV0   Reg = 2 // return value / syscall code
	RegV1   Reg = 3 // second return value
	RegA0   Reg = 4 // first argument
	RegA1   Reg = 5
	RegA2   Reg = 6
	RegA3   Reg = 7
	RegT0   Reg = 8
	RegT7   Reg = 15
	RegS0   Reg = 16
	RegS7   Reg = 23
	RegT8   Reg = 24
	RegT9   Reg = 25
	RegGP   Reg = 28 // global pointer
	RegSP   Reg = 29 // stack pointer
	RegFP   Reg = 30 // frame pointer
	RegRA   Reg = 31 // return address
)

// IsFP reports whether r is a floating-point register.
func (r Reg) IsFP() bool { return r >= NumIntRegs }

// Valid reports whether r names an architectural register.
func (r Reg) Valid() bool { return r < NumRegs }

var intRegNames = [NumIntRegs]string{
	"$zero", "$at", "$v0", "$v1", "$a0", "$a1", "$a2", "$a3",
	"$t0", "$t1", "$t2", "$t3", "$t4", "$t5", "$t6", "$t7",
	"$s0", "$s1", "$s2", "$s3", "$s4", "$s5", "$s6", "$s7",
	"$t8", "$t9", "$k0", "$k1", "$gp", "$sp", "$fp", "$ra",
}

// String returns the conventional assembly name of the register
// ($t0, $sp, $f12, ...).
func (r Reg) String() string {
	switch {
	case r < NumIntRegs:
		return intRegNames[r]
	case r < NumRegs:
		return fmt.Sprintf("$f%d", int(r)-NumIntRegs)
	default:
		return fmt.Sprintf("$bad%d", int(r))
	}
}

// ParseReg parses a register name: numeric ($0-$31), conventional ($t0,
// $sp, ...), or floating point ($f0-$f31).
func ParseReg(name string) (Reg, error) {
	if len(name) < 2 || name[0] != '$' {
		return 0, fmt.Errorf("isa: %q is not a register name", name)
	}
	body := name[1:]
	if body[0] == 'f' && len(body) > 1 && body[1] >= '0' && body[1] <= '9' {
		n, err := parseUint(body[1:], NumFPRegs)
		if err != nil {
			return 0, fmt.Errorf("isa: bad FP register %q", name)
		}
		return F(n), nil
	}
	if body[0] >= '0' && body[0] <= '9' {
		n, err := parseUint(body, NumIntRegs)
		if err != nil {
			return 0, fmt.Errorf("isa: bad register %q", name)
		}
		return Reg(n), nil
	}
	for i, s := range intRegNames {
		if s[1:] == body {
			return Reg(i), nil
		}
	}
	return 0, fmt.Errorf("isa: unknown register %q", name)
}

func parseUint(s string, limit int) (int, error) {
	n := 0
	for _, c := range s {
		if c < '0' || c > '9' {
			return 0, fmt.Errorf("not a number")
		}
		n = n*10 + int(c-'0')
		if n >= limit {
			return 0, fmt.Errorf("out of range")
		}
	}
	if s == "" {
		return 0, fmt.Errorf("empty")
	}
	return n, nil
}
