package core

import (
	"encoding/json"
	"fmt"

	"multiscalar/internal/arb"
	"multiscalar/internal/isa"
)

// CanonicalConfigVersion is the version tag MarshalCanonical emits and
// UnmarshalCanonicalConfig accepts. Bump it whenever a semantic Config
// field is added, removed, or reinterpreted: cache keys derived from the
// canonical encoding must never alias across meanings.
const CanonicalConfigVersion = 1

// canonicalConfigV1 is the wire form of a Config: every semantic field
// under a stable name, in a fixed order, none omitted. The runtime-only
// attachments (Trace, Sink) deliberately have no representation — two
// configurations that differ only in observers describe the same machine
// and must encode identically.
type canonicalConfigV1 struct {
	V          int  `json:"v"`
	NumUnits   int  `json:"num_units"`
	IssueWidth int  `json:"issue_width"`
	OutOfOrder bool `json:"out_of_order"`
	ROBSize    int  `json:"rob_size"`
	FetchQSize int  `json:"fetchq_size"`

	Latencies isa.Latencies `json:"latencies"`

	ICacheBytes int `json:"icache_bytes"`
	ICacheBlock int `json:"icache_block"`
	DBankBytes  int `json:"dbank_bytes"`
	DBlockBytes int `json:"dblock_bytes"`
	DCacheHit   int `json:"dcache_hit"`
	NumMSHRs    int `json:"num_mshrs"`

	ARBEntries int                `json:"arb_entries"`
	ARBPolicy  arb.OverflowPolicy `json:"arb_policy"`

	RingLatency int `json:"ring_latency"`

	DescCacheEntries int  `json:"desc_cache_entries"`
	StaticPredict    bool `json:"static_predict"`
	SharedFPUnits    int  `json:"shared_fp_units"`
	BranchEntries    int  `json:"branch_entries"`

	MaxCycles     uint64 `json:"max_cycles"`
	CheckForwards bool   `json:"check_forwards"`
	NoSkip        bool   `json:"no_skip"`
}

// MarshalCanonical encodes the configuration as its one canonical,
// versioned JSON form: fixed field order, every semantic field present,
// runtime-only attachments (Trace, Sink) excluded. Two Config values
// describe the same machine if and only if their canonical encodings are
// byte-equal, which is what makes the encoding usable as a cache-key
// component (internal/job, internal/bench, internal/serve).
func (c Config) MarshalCanonical() ([]byte, error) {
	return json.Marshal(canonicalConfigV1{
		V:                CanonicalConfigVersion,
		NumUnits:         c.NumUnits,
		IssueWidth:       c.IssueWidth,
		OutOfOrder:       c.OutOfOrder,
		ROBSize:          c.ROBSize,
		FetchQSize:       c.FetchQSize,
		Latencies:        c.Latencies,
		ICacheBytes:      c.ICacheBytes,
		ICacheBlock:      c.ICacheBlock,
		DBankBytes:       c.DBankBytes,
		DBlockBytes:      c.DBlockBytes,
		DCacheHit:        c.DCacheHit,
		NumMSHRs:         c.NumMSHRs,
		ARBEntries:       c.ARBEntries,
		ARBPolicy:        c.ARBPolicy,
		RingLatency:      c.RingLatency,
		DescCacheEntries: c.DescCacheEntries,
		StaticPredict:    c.StaticPredict,
		SharedFPUnits:    c.SharedFPUnits,
		BranchEntries:    c.BranchEntries,
		MaxCycles:        c.MaxCycles,
		CheckForwards:    c.CheckForwards,
		NoSkip:           c.NoSkip,
	})
}

// UnmarshalCanonicalConfig decodes a canonical encoding produced by
// MarshalCanonical (or assembled by an API client). Unknown versions are
// rejected rather than half-decoded.
func UnmarshalCanonicalConfig(data []byte) (Config, error) {
	var w canonicalConfigV1
	if err := json.Unmarshal(data, &w); err != nil {
		return Config{}, fmt.Errorf("core: decoding canonical config: %w", err)
	}
	if w.V != CanonicalConfigVersion {
		return Config{}, fmt.Errorf("core: canonical config version %d (want %d)", w.V, CanonicalConfigVersion)
	}
	return Config{
		NumUnits:         w.NumUnits,
		IssueWidth:       w.IssueWidth,
		OutOfOrder:       w.OutOfOrder,
		ROBSize:          w.ROBSize,
		FetchQSize:       w.FetchQSize,
		Latencies:        w.Latencies,
		ICacheBytes:      w.ICacheBytes,
		ICacheBlock:      w.ICacheBlock,
		DBankBytes:       w.DBankBytes,
		DBlockBytes:      w.DBlockBytes,
		DCacheHit:        w.DCacheHit,
		NumMSHRs:         w.NumMSHRs,
		ARBEntries:       w.ARBEntries,
		ARBPolicy:        w.ARBPolicy,
		RingLatency:      w.RingLatency,
		DescCacheEntries: w.DescCacheEntries,
		StaticPredict:    w.StaticPredict,
		SharedFPUnits:    w.SharedFPUnits,
		BranchEntries:    w.BranchEntries,
		MaxCycles:        w.MaxCycles,
		CheckForwards:    w.CheckForwards,
		NoSkip:           w.NoSkip,
	}, nil
}
