; Byte histogram over a generated buffer; chunk tasks update private
; per-task counts folded into shared counters at task end. Demonstrates
; memory-order speculation: the shared counter updates occasionally
; conflict and squash.
	.data
input:	.space 512
hist:	.space 64
	.text
main:
	; fill input[i] = (i*7) & 15
	li $t0, 0
fill:
	li   $t2, 7
	mul  $t1, $t0, $t2
	andi $t1, $t1, 15
	sb   $t1, input($t0)
	addi $t0, $t0, 1
	slt  $at, $t0, 512
	bnez $at, fill
	li $s0, 0 !f
	j  chunk !s
chunk:
	move $t9, $s0
	.msonly addi $s0, $s0, 64 !f
	li   $t0, 64
byte:
	lbu  $t1, input($t9)
	sll  $t1, $t1, 2
	lw   $t2, hist($t1)
	addi $t2, $t2, 1
	sw   $t2, hist($t1)
	addi $t9, $t9, 1
	addi $t0, $t0, -1
	bnez $t0, byte
	.sconly addi $s0, $s0, 64
	li   $at, 512
	bne  $s0, $at, chunk !s
done:
	; print hist[7*4]
	lw  $a0, hist+28
	li $v0, 1
	syscall
	li $v0, 10
	li $a0, 0
	syscall
	.task main targets=chunk create=$s0
	.task chunk targets=chunk,done create=$s0
	.task done
