package core

import (
	"fmt"

	"multiscalar/internal/pu"
)

// Result summarizes one simulation run.
type Result struct {
	Cycles    uint64
	Committed uint64 // dynamic instructions of retired (non-squashed) tasks

	// CyclesTicked counts the cycles the timing loop actually executed;
	// the remaining Cycles-CyclesTicked were stall cycles the wakeup
	// scheduler proved unchanging and accounted in bulk (Config.NoSkip
	// forces the two equal). Observability only — it is the one Result
	// field that legitimately differs between skipping and dense runs of
	// the same simulation.
	CyclesTicked uint64

	// Program-visible outcome (must match the functional interpreter).
	Out      string
	ExitCode int32

	// Task-level statistics (multiscalar runs).
	TasksRetired  uint64
	TasksSquashed uint64
	CtlSquashes   uint64 // control (task prediction) squash events
	MemSquashes   uint64 // memory-order violation squash events
	ARBSquashes   uint64 // ARB-overflow squash events (PolicySquash)

	// RingSends counts register values actually placed on the forwarding
	// ring (each create-mask register is sent at most once per task
	// execution, by an early forward/release or by the completion flush).
	// The annotation optimizer's figure of merit: a tighter create mask
	// sends fewer values.
	RingSends uint64

	// Task prediction.
	Predictions uint64
	PredCorrect uint64

	// Cycle distribution across unit-cycles (Section 3): how every
	// unit-cycle was spent.
	Activity       [pu.NumActivities]uint64
	SquashedCycles uint64 // unit-cycles of work that was later squashed

	// Memory system.
	ICacheMisses   uint64
	DCacheMisses   uint64
	DBankConflicts uint64
	BusRequests    uint64

	// ARB.
	ARBViolations    uint64
	ARBOverflows     uint64
	ARBStoreForwards uint64
	ARBAllocs        uint64 // entries allocated across all banks
	// ARBPeakOccupancy is the peak entries simultaneously resident in
	// any single bank — headroom against Config.ARBEntries. The
	// per-bank breakdown is Multiscalar.ARBStats().
	ARBPeakOccupancy int
}

// IPC is committed instructions per cycle.
func (r *Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Committed) / float64(r.Cycles)
}

// PredAccuracy is the fraction of validated task predictions that were
// correct.
func (r *Result) PredAccuracy() float64 {
	if r.Predictions == 0 {
		return 0
	}
	return float64(r.PredCorrect) / float64(r.Predictions)
}

// Speedup of this run relative to a baseline cycle count.
func (r *Result) Speedup(baseline *Result) float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(baseline.Cycles) / float64(r.Cycles)
}

func (r *Result) String() string {
	s := fmt.Sprintf("cycles=%d committed=%d IPC=%.3f", r.Cycles, r.Committed, r.IPC())
	if r.TasksRetired > 0 {
		s += fmt.Sprintf(" tasks=%d squashed=%d(ctl=%d,mem=%d) pred=%.1f%%",
			r.TasksRetired, r.TasksSquashed, r.CtlSquashes, r.MemSquashes, 100*r.PredAccuracy())
	}
	return s
}
