package bench

import (
	"bytes"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"multiscalar/internal/asm"
	"multiscalar/internal/core"
	"multiscalar/internal/interp"
	"multiscalar/internal/isa"
	"multiscalar/internal/job"
	"multiscalar/internal/workloads"
)

// The harness fans independent simulation jobs (one per workload ×
// configuration point) out over a bounded worker pool. Results land in
// index-addressed slices, so formatted tables are byte-identical to the
// sequential path regardless of completion order.

var workers atomic.Int64

func init() { workers.Store(int64(runtime.GOMAXPROCS(0))) }

// SetWorkers bounds the number of concurrent simulation jobs. 1 forces
// the fully sequential path (the msbench -seq flag); values above
// GOMAXPROCS buy nothing but are harmless.
func SetWorkers(n int) {
	if n < 1 {
		n = 1
	}
	workers.Store(int64(n))
}

// Workers returns the current job-pool bound.
func Workers() int { return int(workers.Load()) }

// RunJobs runs fn(0..n-1), fanning out across the worker pool. Each fn
// writes its result into its own slot of a caller-owned slice; RunJobs
// returns the lowest-index error so failures are deterministic. It is
// exported for the serve engine, whose batch submissions fan out over
// this same pool.
func RunJobs(n int, fn func(i int) error) error { return runJobs(n, fn) }

// runJobs is RunJobs; the harness's own sections call it directly.
func runJobs(n int, fn func(i int) error) error {
	w := Workers()
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	sem := make(chan struct{}, w)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		sem <- struct{}{}
		wg.Add(1)
		go func(i int) {
			defer func() { <-sem; wg.Done() }()
			errs[i] = fn(i)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Oracle is the functional-simulator reference for one binary: the
// dynamic instruction counts Table 2 reports and the output every timing
// run must reproduce.
type Oracle struct {
	ICount                  uint64
	Loads, Stores, Branches uint64
	Out                     string
}

// inputs maps workload name → program input bytes (SysReadChar stream).
// Nothing in today's suite consumes input, but the memo keys below honor
// the hash(program, config, stdin) contract so a future stdin-consuming
// workload cannot alias the cache entries of another input.
var inputs sync.Map // string -> []byte

// SetInput registers the bytes a workload reads as its input stream.
// Every oracle and timing run of that workload gets a fresh reader over
// the same bytes, and the input's hash becomes part of the build- and
// run-memo keys.
func SetInput(name string, data []byte) { inputs.Store(name, data) }

func inputFor(name string) []byte {
	if v, ok := inputs.Load(name); ok {
		return v.([]byte)
	}
	return nil
}

// buildSpec is the job.Spec a memoized build/oracle execution is keyed
// by: the assemble-shaped spec of one workload at one (mode, resolved
// scale), plus the registered input. The Spec's canonical encoding
// preserves the old buildKey contract — nil input is distinct from
// empty-but-present input.
func buildSpec(w *workloads.Workload, mode asm.Mode, scale Scale, input []byte) *job.Spec {
	return &job.Spec{Op: job.OpAssemble, Workload: w.Name, Mode: mode, Scale: scale.of(w), Stdin: input}
}

type buildEntry struct {
	once   sync.Once
	prog   *isa.Program
	oracle Oracle
	err    error
}

var (
	memoMu sync.Mutex
	memo   = map[string]*buildEntry{}

	// buildsPerformed counts actual assemble+oracle executions (not memo
	// hits) — observability for tests and the JSON report.
	buildsPerformed atomic.Uint64
)

// buildOracle assembles workload w in the given mode and runs the
// functional oracle over it, memoized per job.Spec key — hash(workload,
// mode, resolved scale, stdin) — for the life of the process. Concurrent
// first requests single-flight: exactly one goroutine builds, the rest
// wait and share the result. The returned Program is shared and must not
// be mutated — clone (cloneProgram) before transforming it.
func buildOracle(w *workloads.Workload, mode asm.Mode, scale Scale) (*isa.Program, Oracle, error) {
	input := inputFor(w.Name)
	spec := buildSpec(w, mode, scale, input)
	key, err := spec.Key()
	if err != nil {
		return nil, Oracle{}, err
	}
	memoMu.Lock()
	e := memo[key]
	if e == nil {
		e = &buildEntry{}
		memo[key] = e
	}
	memoMu.Unlock()
	e.once.Do(func() {
		buildsPerformed.Add(1)
		e.prog, e.oracle, e.err = buildAndRun(w, mode, spec.Scale, input)
	})
	return e.prog, e.oracle, e.err
}

func buildAndRun(w *workloads.Workload, mode asm.Mode, scale int, input []byte) (*isa.Program, Oracle, error) {
	p, err := w.Build(mode, scale)
	if err != nil {
		return nil, Oracle{}, err
	}
	env := interp.NewSysEnv()
	if input != nil {
		env.In = bytes.NewReader(input)
	}
	m := interp.NewMachine(p, env)
	if err := m.Run(1 << 40); err != nil {
		return nil, Oracle{}, err
	}
	return p, Oracle{
		ICount:   m.ICount,
		Loads:    m.LoadCount,
		Stores:   m.StoreCount,
		Branches: m.BranchCount,
		Out:      env.Out.String(),
	}, nil
}

// ResetMemo drops the build/oracle and shared-run caches (tests and
// long-lived hosts).
func ResetMemo() {
	memoMu.Lock()
	memo = map[string]*buildEntry{}
	memoMu.Unlock()
	simMu.Lock()
	simMemo = map[string]*simEntry{}
	simMu.Unlock()
}

// Shared-prefix fast-forward across duplicate simulation points.
//
// The harness's sections overlap heavily: every ablation sweep contains
// the unablated configuration (ring hop 1, 256 stall-policy ARB
// entries, the PAs predictor, private FUs are all the Section 5.1
// defaults), the breakdown re-runs the main tables' 8-unit points, and
// the speedup curves re-run their scalar baselines and 4/8-unit points.
// Two jobs over the same (program, configuration, input) share their
// entire execution — the degenerate, whole-run case of a shared
// unablated prefix — so the first job simulates the prefix once and
// snapshots the finished machine, and every later job fans out from the
// restored state: Restore + Run folds the prefix's cycles and counters
// into a Result of its own. Rows come out byte-identical to independent
// full runs (pinned by TestRunSharingMatchesIsolated, the same
// discipline as TestSkipMatchesDense).

// The shared-run memo is keyed by the content-addressed job.Spec key of
// the simulate job — hash(program, canonical config, stdin) — the same
// identity the serve engine's result cache and the facade's SubmitJob
// use. Config's runtime-only trace fields never participate (the
// canonical encoding excludes them; the harness runs untraced, and a
// traced run must not share state anyway).

type simEntry struct {
	once sync.Once
	snap []byte // finished-machine snapshot (internal/snapshot format)
	err  error
}

var (
	simMu   sync.Mutex
	simMemo = map[string]*simEntry{}

	// runsRestored counts simulation points answered by restoring a
	// shared snapshot instead of re-simulating (JSON report, tests).
	runsRestored atomic.Uint64
)

// RunsRestored reports how many simulation points were answered from a
// shared finished-run snapshot rather than simulated again.
func RunsRestored() uint64 { return runsRestored.Load() }

// newMachine mirrors the facade's dispatch: a binary without task
// descriptors on a one-unit configuration runs on the scalar baseline,
// everything else on the multiscalar machine.
type machine interface {
	Run() (*core.Result, error)
	Save() ([]byte, error)
	Restore([]byte) error
}

func newMachine(p *isa.Program, cfg core.Config, input []byte) (machine, error) {
	env := interp.NewSysEnv()
	if input != nil {
		env.In = bytes.NewReader(input)
	}
	if cfg.NumUnits <= 1 && len(p.Tasks) == 0 {
		return core.NewScalar(p, env, cfg), nil
	}
	return core.NewMultiscalar(p, env, cfg)
}

// runShared simulates one (program, configuration, input) point and
// verifies it against oracle o, sharing the work of duplicate points as
// described above. what labels errors.
func runShared(p *isa.Program, o Oracle, cfg core.Config, input []byte, what string) (*core.Result, error) {
	applyRunFlags(&cfg)
	spec := job.Spec{Op: job.OpSimulate, Program: p, Config: cfg, Stdin: input}
	key, err := spec.Key()
	if err != nil {
		return nil, fmt.Errorf("%s: %w", what, err)
	}
	simMu.Lock()
	e := simMemo[key]
	if e == nil {
		e = &simEntry{}
		simMemo[key] = e
	}
	simMu.Unlock()

	check := func(res *core.Result) error {
		if res.Out != o.Out || res.Committed != o.ICount {
			return fmt.Errorf("diverged from oracle (committed %d vs %d)", res.Committed, o.ICount)
		}
		return nil
	}
	var res *core.Result
	e.once.Do(func() {
		m, err := newMachine(p, cfg, input)
		if err != nil {
			e.err = err
			return
		}
		r, err := m.Run()
		if err != nil {
			e.err = err
			return
		}
		if e.err = check(r); e.err != nil {
			return
		}
		recordRun(r)
		if e.snap, e.err = m.Save(); e.err == nil {
			res = r
		}
	})
	if e.err != nil {
		return nil, fmt.Errorf("%s: %w", what, e.err)
	}
	if res == nil { // duplicate point: fast-forward over the shared run
		m, err := newMachine(p, cfg, input)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", what, err)
		}
		if err := m.Restore(e.snap); err != nil {
			return nil, fmt.Errorf("%s: restoring shared run: %w", what, err)
		}
		if res, err = m.Run(); err != nil {
			return nil, fmt.Errorf("%s: %w", what, err)
		}
		if err := check(res); err != nil {
			return nil, fmt.Errorf("%s: %w", what, err)
		}
		runsRestored.Add(1)
	}
	return res, nil
}

// BuildsPerformed returns how many assemble+oracle executions have
// actually run in this process (memo misses).
func BuildsPerformed() uint64 { return buildsPerformed.Load() }

// cloneProgram returns a copy whose Text may be mutated freely (the
// ablations transform binaries in place). Data, task descriptors and
// symbols stay shared: nothing in the repository writes to them.
func cloneProgram(p *isa.Program) *isa.Program {
	q := *p
	q.Text = append([]isa.Instr(nil), p.Text...)
	return &q
}

// noSkip, when set, disables the simulator's wakeup scheduler for every
// harness run (core.Config.NoSkip): the msbench -noskip flag, used to
// demonstrate that tables are byte-identical with and without cycle
// skipping and to measure the skip's wall-clock effect.
var noSkip atomic.Bool

// SetNoSkip forces dense ticking (no cycle skipping) in all subsequent
// harness simulations.
func SetNoSkip(v bool) { noSkip.Store(v) }

// applyRunFlags applies process-wide harness toggles to one run's config.
func applyRunFlags(cfg *core.Config) {
	if noSkip.Load() {
		cfg.NoSkip = true
	}
}

// Aggregate simulated-work counters behind the JSON report's throughput
// numbers. Every verified timing run adds its cycles and committed
// instructions; ticked counts the cycles the timing loops actually
// executed (cycles-ticked < cycles means the wakeup scheduler jumped
// stall windows — the skip ratio the JSON report derives).
var simCycles, simTicked, simInstrs, simRuns atomic.Uint64

func recordRun(res *core.Result) {
	simCycles.Add(res.Cycles)
	simTicked.Add(res.CyclesTicked)
	simInstrs.Add(res.Committed)
	simRuns.Add(1)
}

// SimTotals reports the cumulative simulated work of this process:
// timing-simulator runs, simulated cycles, and committed instructions.
func SimTotals() (runs, cycles, instrs uint64) {
	return simRuns.Load(), simCycles.Load(), simInstrs.Load()
}

// SimTicked reports the cumulative cycles the timing loops actually
// executed (see SimTotals; the difference from cycles is what the wakeup
// scheduler skipped).
func SimTicked() uint64 { return simTicked.Load() }
