package core

import (
	"bytes"
	"math/rand"
	"testing"

	"multiscalar/internal/arb"
	"multiscalar/internal/asm"
	"multiscalar/internal/interp"
	"multiscalar/internal/taskpart"
	"multiscalar/internal/trace"
)

// TestSkipMatchesDense is the wakeup scheduler's equivalence property
// test: across random programs and machine configurations, a skipping run
// must produce a bit-identical Result (modulo CyclesTicked, the one field
// defined to differ) and a byte-identical .mstrc event stream compared to
// the same run with Config.NoSkip set. The configurations deliberately
// include the stall-heavy corners the scheduler special-cases: single
// units, squashing ARB overflow with tiny ARBs, shared FP units, and
// static task prediction.
func TestSkipMatchesDense(t *testing.T) {
	trials := 120
	if testing.Short() {
		trials = 8
	}
	sawSkip := false
	for trial := 0; trial < trials; trial++ {
		g := &progGen{r: rand.New(rand.NewSource(int64(7000 + trial)))}
		src := g.generate()

		prog, err := asm.Assemble(src, asm.ModeMultiscalar)
		if err != nil {
			t.Fatalf("trial %d: assemble: %v\n%s", trial, err, src)
		}
		if _, err := taskpart.Run(prog, taskpart.Options{SuppressAllCalls: g.r.Intn(2) == 0}); err != nil {
			t.Fatalf("trial %d: partition: %v\n%s", trial, err, src)
		}

		units := []int{1, 2, 4, 8}[g.r.Intn(4)]
		cfg := DefaultConfig(units, 1+g.r.Intn(2), g.r.Intn(2) == 0)
		cfg.MaxCycles = 50_000_000
		switch g.r.Intn(4) {
		case 0:
			cfg.ARBPolicy = arb.PolicySquash
			cfg.ARBEntries = 2
		case 1:
			cfg.SharedFPUnits = 1
		case 2:
			cfg.StaticPredict = true
		}

		run := func(noskip bool) (*Result, []byte) {
			c := cfg
			c.NoSkip = noskip
			var buf bytes.Buffer
			w, err := trace.NewWriter(&buf, trace.Meta{NumUnits: c.NumUnits})
			if err != nil {
				t.Fatal(err)
			}
			c.Sink = w
			m, err := NewMultiscalar(prog, interp.NewSysEnv(), c)
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			res, err := m.Run()
			if err != nil {
				t.Fatalf("trial %d (noskip=%v): %v\n%s", trial, noskip, err, src)
			}
			if err := w.Close(); err != nil {
				t.Fatalf("trial %d: trace close: %v", trial, err)
			}
			return res, buf.Bytes()
		}

		skipRes, skipTrace := run(false)
		denseRes, denseTrace := run(true)

		if denseRes.CyclesTicked != denseRes.Cycles {
			t.Fatalf("trial %d: dense run ticked %d of %d cycles",
				trial, denseRes.CyclesTicked, denseRes.Cycles)
		}
		if skipRes.CyclesTicked < skipRes.Cycles {
			sawSkip = true
		}

		// CyclesTicked is the one field defined to differ; normalize it
		// away, then everything else must match exactly.
		s, d := *skipRes, *denseRes
		s.CyclesTicked, d.CyclesTicked = 0, 0
		if s != d {
			t.Fatalf("trial %d (units=%d): skip result differs from dense:\nskip:  %+v\ndense: %+v\n%s",
				trial, units, &s, &d, src)
		}
		if !bytes.Equal(skipTrace, denseTrace) {
			t.Fatalf("trial %d (units=%d): event trace differs (skip %d bytes, dense %d bytes)\n%s",
				trial, units, len(skipTrace), len(denseTrace), src)
		}
	}
	if !sawSkip {
		t.Fatal("no run ever skipped a cycle: the wakeup scheduler never engaged")
	}
}

// TestScalarSkipMatchesDense is the scalar machine's version of the
// equivalence property.
func TestScalarSkipMatchesDense(t *testing.T) {
	trials := 60
	if testing.Short() {
		trials = 8
	}
	sawSkip := false
	for trial := 0; trial < trials; trial++ {
		g := &progGen{r: rand.New(rand.NewSource(int64(8000 + trial)))}
		src := g.generate()
		prog, err := asm.Assemble(src, asm.ModeScalar)
		if err != nil {
			t.Fatalf("trial %d: assemble: %v\n%s", trial, err, src)
		}

		cfg := ScalarConfig(1+g.r.Intn(2), g.r.Intn(2) == 0)
		run := func(noskip bool) *Result {
			c := cfg
			c.NoSkip = noskip
			res, err := NewScalar(prog, interp.NewSysEnv(), c).Run()
			if err != nil {
				t.Fatalf("trial %d (noskip=%v): %v\n%s", trial, noskip, err, src)
			}
			return res
		}
		skipRes := run(false)
		denseRes := run(true)
		if denseRes.CyclesTicked != denseRes.Cycles {
			t.Fatalf("trial %d: dense run ticked %d of %d cycles",
				trial, denseRes.CyclesTicked, denseRes.Cycles)
		}
		if skipRes.CyclesTicked < skipRes.Cycles {
			sawSkip = true
		}
		s, d := *skipRes, *denseRes
		s.CyclesTicked, d.CyclesTicked = 0, 0
		if s != d {
			t.Fatalf("trial %d: skip result differs from dense:\nskip:  %+v\ndense: %+v\n%s",
				trial, &s, &d, src)
		}
	}
	if !sawSkip {
		t.Fatal("no scalar run ever skipped a cycle")
	}
}
