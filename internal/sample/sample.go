// Package sample implements SMARTS-style sampled simulation
// (docs/perf.md, "Sampled simulation"): a run is driven as fast
// functional execution with warming of the long-lived
// microarchitectural structures (cache tags, branch-predictor tables,
// the sequencer's task predictor / return stack / descriptor cache),
// punctuated by short detailed measurement windows executed on the
// real timing machine from injected warm-state snapshots. Whole-run
// cycles and CPI are extrapolated from the window measurements with a
// systematic-sampling estimator and standard-error-based 95%
// confidence intervals.
//
// The short-lived structures a warm snapshot cannot carry — pipelines,
// MSHRs, the ARB, in-flight register forwards — start cold in every
// window; a detailed warm-up prefix (measurement excluded) absorbs
// that transient. Windows start from independent snapshots, so they
// fan out over a caller-supplied worker pool (bench.RunJobs via
// job.SetSampleRunner) and detailed measurement is parallel even for
// a single workload.
package sample

import (
	"bytes"
	"fmt"
	"sync"

	"multiscalar/internal/core"
	"multiscalar/internal/interp"
	"multiscalar/internal/isa"
	"multiscalar/internal/snapshot"
)

// Params configures the sampling regime. Zero fields are derived from
// a functional pre-pass (instruction total, task count, unit count):
// the warm-up absorbs a couple of pipeline-fills worth of tasks, the
// window is twice the warm-up, and the period targets ~8% of the run
// in detail across 4–64 windows. All instruction quantities are in
// dynamic (multiscalar-mode) instructions.
type Params struct {
	// WindowInstrs is the measured length of each detailed window.
	WindowInstrs uint64 `json:"window_instrs,omitempty"`
	// WarmupInstrs is the detailed warm-up prefix run before each
	// window's measurement starts (excluded from the estimate).
	WarmupInstrs uint64 `json:"warmup_instrs,omitempty"`
	// PeriodInstrs is the sampling period between window start points.
	PeriodInstrs uint64 `json:"period_instrs,omitempty"`
	// OffsetInstrs positions the first window start (0 = period/4).
	OffsetInstrs uint64 `json:"offset_instrs,omitempty"`
	// BiasFrac is the non-sampling-bias allowance: the statistical CI
	// half-width is widened by BiasFrac×mean to cover systematic error
	// the standard error cannot see (residual window cold-start
	// transient after warm-up; cf. SMARTS' non-sampling bias). 0 means
	// the default 2%; negative disables the allowance.
	BiasFrac float64 `json:"bias_frac,omitempty"`
}

// Estimate is the outcome of a sampled run.
type Estimate struct {
	// Params echoes the effective (post-derivation) sampling regime.
	Params Params `json:"params"`

	// TotalInstrs is the run's dynamic instruction count (functional).
	TotalInstrs uint64 `json:"total_instrs"`
	// Windows is the number of measured (non-empty) windows.
	Windows int `json:"windows"`
	// FullDetail marks the fallback for runs too short to sample: one
	// exact detailed run, zero-width confidence interval.
	FullDetail bool `json:"full_detail,omitempty"`

	// Per-window CPI estimator. The CI bounds include the
	// non-sampling-bias allowance (Params.BiasFrac) on top of the
	// t-distribution half-width.
	MeanCPI   float64 `json:"mean_cpi"`
	VarCPI    float64 `json:"var_cpi"`
	StdErrCPI float64 `json:"stderr_cpi"`
	CPILow    float64 `json:"cpi_lo"`
	CPIHigh   float64 `json:"cpi_hi"`

	// Extrapolated whole-run cycle count with its 95% CI.
	EstCycles uint64 `json:"est_cycles"`
	CyclesLow uint64 `json:"cycles_lo"`
	CyclesHi  uint64 `json:"cycles_hi"`

	// Detailed-simulation cost actually paid (warm-up included): the
	// speed claim is DetailedCycles versus a full run's cycle count.
	DetailedCycles uint64 `json:"detailed_cycles"`
	DetailedInstrs uint64 `json:"detailed_instrs"`

	// Per-window measurements (measured region only, warm-up excluded).
	WindowCycles []uint64 `json:"window_cycles,omitempty"`
	WindowInstrs []uint64 `json:"window_instr_counts,omitempty"`

	// Program-visible outcome, from the functional pass (the sampled
	// run's oracle: it is exact by construction).
	Out      string `json:"out"`
	ExitCode int32  `json:"exit_code"`
}

// Runner fans n independent jobs out over a worker pool; fn(i) runs
// job i. A nil Runner runs the jobs serially.
type Runner func(n int, fn func(i int) error) error

// instruction-kind side table, precomputed over the program text so
// the per-instruction warming hooks do no decoding.
type instrKind uint8

const (
	kindPlain instrKind = iota
	kindCond            // conditional branch: train the direction predictor
	kindJr              // return: task exits "by return"
	kindJalr            // indirect call: train the last-target table
)

type instrInfo struct {
	kind instrKind
	stop isa.StopCond
}

func buildSide(p *isa.Program) []instrInfo {
	side := make([]instrInfo, len(p.Text))
	for i := range p.Text {
		in := &p.Text[i]
		si := instrInfo{stop: in.Stop}
		switch {
		case in.Op.IsBranch():
			si.kind = kindCond
		case in.Op == isa.OpJr:
			si.kind = kindJr
		case in.Op == isa.OpJalr:
			si.kind = kindJalr
		}
		side[i] = si
	}
	return side
}

func stopped(stop isa.StopCond, taken bool) bool {
	switch stop {
	case isa.StopAlways:
		return true
	case isa.StopTaken:
		return taken
	case isa.StopNotTaken:
		return !taken
	}
	return false
}

// counter is the pre-pass Warmer: it only counts task boundaries.
type counter struct {
	side       []instrInfo
	boundaries uint64
}

func (c *counter) Mem(addr uint32, store bool) {}

func (c *counter) Retire(pc, next uint32) {
	idx := (pc - isa.TextBase) / isa.InstrSize
	taken := next != pc+isa.InstrSize
	if stopped(c.side[idx].stop, taken) {
		c.boundaries++
	}
}

// warmer is the main-pass Warmer: it maintains the warm structures,
// replays the sequencer's committed-path prediction training, and
// captures warm-state snapshots at the scheduled points.
type warmer struct {
	m      *interp.Machine
	ws     *core.WarmState
	side   []instrInfo
	prog   *isa.Program
	multi  bool
	static bool // Config.StaticPredict

	cur *isa.TaskDescriptor // task being executed (multi only)
	err error

	sched  []uint64 // window start points, ascending
	k      int
	stream *snapshot.Stream
	starts []uint64 // instruction count at each capture
}

func (w *warmer) Mem(addr uint32, store bool) { w.ws.DCache.Touch(addr) }

func (w *warmer) Retire(pc, next uint32) {
	idx := (pc - isa.TextBase) / isa.InstrSize
	si := w.side[idx]
	taken := next != pc+isa.InstrSize
	w.ws.ICache.Touch(pc)
	switch si.kind {
	case kindCond:
		pred := w.ws.Branch.PredictTaken(pc)
		w.ws.Branch.UpdateTaken(pc, taken, pred)
	case kindJalr:
		w.ws.Branch.UpdateIndirect(pc, next)
	}
	if !w.multi {
		// The scalar machine can resume anywhere: every instruction
		// boundary is a capture opportunity.
		w.maybeCapture(next)
		return
	}
	if stopped(si.stop, taken) {
		w.boundary(next, si.kind == kindJr)
	}
}

// boundary replays what the sequencer's committed path does at a task
// transition — train the task predictor on the actual outcome and
// apply the outcome's return-stack effects (sequencer.go:
// predictSuccessor + validateOne/applyOutcome net to exactly this
// along the non-squashed path) — then advances to the next task and
// considers a capture.
func (w *warmer) boundary(next uint32, byRet bool) {
	desc := w.cur
	if w.err != nil || desc == nil {
		return
	}
	if len(desc.Targets) > 0 {
		var actualIdx int
		if byRet {
			actualIdx = desc.TargetIndex(isa.TargetReturn)
		} else {
			actualIdx = desc.TargetIndex(next)
		}
		if actualIdx < 0 {
			w.err = fmt.Errorf("sample: task %s exited to 0x%x, not among its targets %v",
				desc.Name, next, desc.Targets)
			return
		}
		counts := len(desc.Targets) > 1
		hist := w.ws.TaskPred.History(desc.Entry)
		predIdx := 0
		if counts && !w.static {
			snap := w.ws.TaskPred.Snapshot()
			predIdx = w.ws.TaskPred.Predict(desc.Entry) % len(desc.Targets)
			if predIdx != actualIdx {
				w.ws.TaskPred.Restore(snap)
			}
		}
		if counts {
			w.ws.TaskPred.UpdateWith(hist, desc.Entry, actualIdx, predIdx)
		}
		tgt := desc.Targets[actualIdx]
		if tgt == isa.TargetReturn {
			w.ws.RAS.Pop()
		}
		if desc.PushRA != 0 && tgt == desc.CallTarget {
			w.ws.RAS.Push(desc.PushRA)
		}
	}
	w.ws.DescCache.Touch(next)
	if w.cur = w.prog.TaskAt(next); w.cur == nil {
		w.err = fmt.Errorf("sample: task exit to 0x%x has no descriptor", next)
		return
	}
	w.maybeCapture(next)
}

// maybeCapture snapshots the warm state if the next scheduled window
// start has been reached (at most one capture per call, so overlapping
// schedule points yield distinct capture sites).
func (w *warmer) maybeCapture(nextPC uint32) {
	if w.err != nil || w.k >= len(w.sched) {
		return
	}
	done := w.m.ICount + 1 // Retire runs before ICount advances
	if done < w.sched[w.k] {
		return
	}
	w.ws.PC = nextPC
	w.ws.FCC = w.m.FCC
	w.ws.ICount = done
	w.ws.Regs = w.m.Regs
	w.stream.Append(w.ws.Encode())
	w.starts = append(w.starts, done)
	w.k++
}

// withDefaults derives unset parameters from the functional pre-pass.
func (prm Params) withDefaults(total, boundaries uint64, units int) Params {
	avgTask := total
	if boundaries > 0 {
		avgTask = (total + boundaries - 1) / boundaries
	}
	if prm.WarmupInstrs == 0 {
		// Two pipeline-fills worth of tasks: enough for the window's
		// cold structures (units, ARB, ring) to reach steady-state
		// overlap. This must scale with task size — a fixed instruction
		// budget under-warms workloads with large tasks and biases every
		// window slow.
		u := 2 * uint64(units) * avgTask
		if u < 64 {
			u = 64
		}
		if u > 65536 {
			u = 65536
		}
		prm.WarmupInstrs = u
	}
	if prm.WindowInstrs == 0 {
		w := 2 * prm.WarmupInstrs
		if w < 256 {
			w = 256
		}
		prm.WindowInstrs = w
	}
	if prm.PeriodInstrs == 0 {
		span := prm.WarmupInstrs + prm.WindowInstrs
		n := total * 8 / 100 / span // ~8% of the run in detail
		if n < 4 {
			n = 4
		}
		if n > 64 {
			n = 64
		}
		prm.PeriodInstrs = total / n
	}
	if prm.OffsetInstrs == 0 {
		prm.OffsetInstrs = prm.PeriodInstrs / 4
	}
	if prm.BiasFrac == 0 {
		prm.BiasFrac = 0.02
	} else if prm.BiasFrac < 0 {
		prm.BiasFrac = 0
	}
	return prm
}

// schedule lists the window start points that leave room for a full
// warm-up + window before the run ends.
func (prm Params) schedule(total uint64) []uint64 {
	span := prm.WarmupInstrs + prm.WindowInstrs
	if prm.PeriodInstrs == 0 || total < span {
		return nil
	}
	var pts []uint64
	for s := prm.OffsetInstrs; s+span <= total; s += prm.PeriodInstrs {
		pts = append(pts, s)
	}
	return pts
}

// useMulti mirrors the job layer's machine auto-selection: scalar only
// for single-unit configs of task-less programs.
func useMulti(p *isa.Program, cfg core.Config) bool {
	return cfg.NumUnits > 1 || len(p.Tasks) > 0
}

func newEnv(stdin []byte) *interp.SysEnv {
	env := interp.NewSysEnv()
	if stdin != nil {
		env.In = bytes.NewReader(stdin)
	}
	return env
}

// Run performs a sampled simulation of program p under cfg: a
// functional pre-pass (instruction totals and the run's exact output),
// a functional-warm pass capturing one warm-state snapshot per window,
// and the detailed windows fanned out over pool. maxInstrs bounds the
// functional passes (a run that does not exit within it is an error).
func Run(p *isa.Program, cfg core.Config, prm Params, stdin []byte, maxInstrs uint64, pool Runner) (*Estimate, error) {
	multi := useMulti(p, cfg)
	if multi && p.TaskAt(p.Entry) == nil {
		return nil, fmt.Errorf("sample: no task descriptor at program entry 0x%x", p.Entry)
	}
	// Window machines must not trace: tracing is defined for full runs.
	cfg.Sink = nil
	cfg.Trace = nil

	// Pass 1 — functional count: instruction total, task boundaries,
	// and the run's exact program-visible outcome.
	side := buildSide(p)
	cnt := &counter{side: side}
	fm := interp.NewMachine(p, newEnv(stdin))
	fm.Warm = cnt
	if err := fm.Run(maxInstrs); err != nil {
		return nil, err
	}
	total := fm.ICount
	out, exitCode := fm.Env.Out.String(), fm.Env.ExitCode

	units := 1
	if multi {
		units = cfg.NumUnits
	}
	prm = prm.withDefaults(total, cnt.boundaries, units)
	sched := prm.schedule(total)
	if len(sched) < 2 || prm.PeriodInstrs < prm.WarmupInstrs+prm.WindowInstrs {
		return runFullDetail(p, cfg, prm, stdin, multi, total, out, exitCode)
	}

	// Pass 2 — functional-warm fast-forward with snapshot capture.
	wm := interp.NewMachine(p, newEnv(stdin))
	w := &warmer{
		m:      wm,
		ws:     core.NewWarmState(cfg, multi),
		side:   side,
		prog:   p,
		multi:  multi,
		static: cfg.StaticPredict,
		sched:  sched,
		stream: &snapshot.Stream{},
	}
	w.ws.Env = wm.Env
	w.ws.Mem = wm.Mem
	if multi {
		w.cur = p.TaskAt(p.Entry)
	}
	wm.Warm = w
	if err := wm.Run(maxInstrs); err != nil {
		return nil, err
	}
	if w.err != nil {
		return nil, w.err
	}
	if w.stream.Len() == 0 {
		return runFullDetail(p, cfg, prm, stdin, multi, total, out, exitCode)
	}

	// Pass 3 — detailed windows, in parallel: restore, warm up,
	// measure.
	type windowRes struct {
		cycles, instrs       uint64 // measured region
		detCycles, detInstrs uint64 // total detailed cost
		ok                   bool
	}
	results := make([]windowRes, w.stream.Len())
	var mu sync.Mutex
	var firstErr error
	runWindow := func(i int) error {
		env := newEnv(stdin)
		var m measurable
		var err error
		if multi {
			m, err = core.NewMultiscalar(p, env, cfg)
		} else {
			m = core.NewScalar(p, env, cfg)
		}
		if err != nil {
			return err
		}
		if err := m.InjectWarm(w.stream.At(i)); err != nil {
			return err
		}
		var warmCycles, warmInstrs uint64
		if prm.WarmupInstrs > 0 {
			m.SetCommitLimit(prm.WarmupInstrs)
			r1, err := m.Run()
			if err != nil {
				return err
			}
			warmCycles, warmInstrs = r1.Cycles, r1.Committed
		}
		m.SetCommitLimit(prm.WarmupInstrs + prm.WindowInstrs)
		r2, err := m.Run()
		if err != nil {
			return err
		}
		res := windowRes{
			cycles:    r2.Cycles - warmCycles,
			instrs:    r2.Committed - warmInstrs,
			detCycles: r2.Cycles,
			detInstrs: r2.Committed,
		}
		res.ok = res.instrs > 0
		results[i] = res
		return nil
	}
	wrapped := func(i int) error {
		if err := runWindow(i); err != nil {
			mu.Lock()
			if firstErr == nil {
				firstErr = err
			}
			mu.Unlock()
		}
		return nil
	}
	if pool == nil {
		for i := range results {
			wrapped(i)
		}
	} else if err := pool(len(results), wrapped); err != nil {
		return nil, err
	}
	if firstErr != nil {
		return nil, firstErr
	}

	est := &Estimate{
		Params:      prm,
		TotalInstrs: total,
		Out:         out,
		ExitCode:    exitCode,
	}
	var cpis []float64
	for _, r := range results {
		est.DetailedCycles += r.detCycles
		est.DetailedInstrs += r.detInstrs
		if !r.ok {
			continue
		}
		cpis = append(cpis, float64(r.cycles)/float64(r.instrs))
		est.WindowCycles = append(est.WindowCycles, r.cycles)
		est.WindowInstrs = append(est.WindowInstrs, r.instrs)
	}
	if len(cpis) < 2 {
		return runFullDetail(p, cfg, prm, stdin, multi, total, out, exitCode)
	}
	est.Windows = len(cpis)
	est.MeanCPI, est.VarCPI, est.StdErrCPI = meanStdErr(cpis)
	est.CPILow, est.CPIHigh = confidenceInterval(est.MeanCPI, est.StdErrCPI, len(cpis))
	// Widen by the non-sampling-bias allowance: identical-CPI window
	// populations would otherwise report a degenerate zero-width CI that
	// no systematic estimate can honestly claim.
	bias := prm.BiasFrac * est.MeanCPI
	est.CPIHigh += bias
	if est.CPILow -= bias; est.CPILow < 0 {
		est.CPILow = 0
	}
	ftotal := float64(total)
	est.EstCycles = uint64(est.MeanCPI*ftotal + 0.5)
	est.CyclesLow = uint64(est.CPILow*ftotal + 0.5)
	est.CyclesHi = uint64(est.CPIHigh*ftotal + 0.5)
	return est, nil
}

// measurable is the machine surface the window workers need.
type measurable interface {
	InjectWarm([]byte) error
	SetCommitLimit(uint64)
	Run() (*core.Result, error)
}

// runFullDetail is the fallback for runs too short to sample: one
// exact detailed run, reported as a zero-width interval.
func runFullDetail(p *isa.Program, cfg core.Config, prm Params, stdin []byte, multi bool, total uint64, out string, exitCode int32) (*Estimate, error) {
	env := newEnv(stdin)
	var m measurable
	var err error
	if multi {
		m, err = core.NewMultiscalar(p, env, cfg)
	} else {
		m = core.NewScalar(p, env, cfg)
	}
	if err != nil {
		return nil, err
	}
	r, err := m.Run()
	if err != nil {
		return nil, err
	}
	if r.Out != out || r.ExitCode != exitCode {
		return nil, fmt.Errorf("sample: detailed run output diverged from functional oracle")
	}
	cpi := 0.0
	if r.Committed > 0 {
		cpi = float64(r.Cycles) / float64(r.Committed)
	}
	return &Estimate{
		Params:         prm,
		TotalInstrs:    total,
		Windows:        1,
		FullDetail:     true,
		MeanCPI:        cpi,
		CPILow:         cpi,
		CPIHigh:        cpi,
		EstCycles:      r.Cycles,
		CyclesLow:      r.Cycles,
		CyclesHi:       r.Cycles,
		DetailedCycles: r.Cycles,
		DetailedInstrs: r.Committed,
		Out:            out,
		ExitCode:       exitCode,
	}, nil
}

// InCI reports whether a cycle count lies inside the estimate's 95%
// confidence interval.
func (e *Estimate) InCI(cycles uint64) bool {
	return cycles >= e.CyclesLow && cycles <= e.CyclesHi
}

// ErrPct is the signed relative error of the estimate against a known
// full-run cycle count, in percent.
func (e *Estimate) ErrPct(fullCycles uint64) float64 {
	if fullCycles == 0 {
		return 0
	}
	return 100 * (float64(e.EstCycles) - float64(fullCycles)) / float64(fullCycles)
}

// DetailReduction is the ratio of a full run's cycles to the detailed
// cycles this sampled run actually simulated — the headline speed
// claim (≥10× on the long table workloads).
func (e *Estimate) DetailReduction(fullCycles uint64) float64 {
	if e.DetailedCycles == 0 {
		return 0
	}
	return float64(fullCycles) / float64(e.DetailedCycles)
}
