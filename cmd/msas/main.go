// msas assembles a multiscalar assembly file and prints a listing: every
// instruction with its address and annotation bits, the task descriptors
// with create masks and targets, and the data segment size. With -mode
// scalar it shows the scalar build instead (annotations stripped). With
// -encode it appends each instruction's binary encoding.
package main

import (
	"flag"
	"fmt"
	"os"

	"multiscalar/internal/asm"
	"multiscalar/internal/isa"
)

func main() {
	var (
		modeFlag = flag.String("mode", "multiscalar", "build mode: scalar or multiscalar")
		encode   = flag.Bool("encode", false, "also print the binary encoding of each instruction")
		out      = flag.String("o", "", "write a binary container (.msb) instead of a listing")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: msas [-mode scalar|multiscalar] [-encode] file.s")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	mode := asm.ModeMultiscalar
	if *modeFlag == "scalar" {
		mode = asm.ModeScalar
	}
	p, err := asm.Assemble(string(src), mode)
	if err != nil {
		fatal(err)
	}
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		if err := isa.WriteProgram(f, p); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s: %d instructions, %d tasks\n", *out, len(p.Text), len(p.Tasks))
		return
	}
	fmt.Print(asm.Listing(p))
	if *encode {
		fmt.Printf("\n; binary encoding (%d bytes/instruction)\n", isa.EncodedSize)
		for i := range p.Text {
			addr := isa.TextBase + uint32(i)*isa.InstrSize
			fmt.Printf("  0x%04x  % x\n", addr, p.Text[i].Encode(nil))
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "msas:", err)
	os.Exit(1)
}
