// Quickstart: write a small annotated multiscalar program, run it on the
// oracle, the scalar baseline, and an 8-unit multiscalar processor, and
// compare. This is the minimal end-to-end tour of the public API.
package main

import (
	"fmt"
	"log"

	"multiscalar"
)

// The program sums the cubes of the first 200 integers. Each loop
// iteration is a task: the induction variable $s0 and the accumulator
// $s1 are the only values live between tasks (the create mask), both
// forwarded as soon as they are produced (!f), and the backward branch
// carries a stop bit (!s) so a task is exactly one iteration. The
// induction variable is updated first so successor tasks can start
// immediately (the paper's Section 3.2.2 advice); the multiplies of
// neighbouring iterations then overlap across units.
const src = `
main:
	li $s0, 200
	li $s1, 0
	j  loop !s
loop:
	move $t0, $s0
	addi $s0, $s0, -1 !f
	mul  $t1, $t0, $t0
	mul  $t1, $t1, $t0
	add  $s1, $s1, $t1 !f
	bnez $s0, loop !s
done:
	move $a0, $s1
	li $v0, 1          ; print_int
	syscall
	li $v0, 10         ; exit
	li $a0, 0
	syscall
	.task main targets=loop create=$s0,$s1
	.task loop targets=loop,done create=$s0,$s1
	.task done
`

func main() {
	// One source, two binaries: the scalar build strips all multiscalar
	// information.
	ms, err := multiscalar.Assemble(src, multiscalar.WithMode(multiscalar.ModeMultiscalar))
	if err != nil {
		log.Fatal(err)
	}
	sc, err := multiscalar.Assemble(src)
	if err != nil {
		log.Fatal(err)
	}
	msProg, scProg := ms.Prog, sc.Prog

	// Functional oracle.
	oracle, err := multiscalar.Interpret(msProg, multiscalar.WithMaxInstrs(1<<30))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("oracle:      output=%q, %d instructions\n", oracle.Out, oracle.Instructions)

	// Scalar baseline (1-way in-order, 1-cycle dcache); WithVerify checks
	// every timing run against the oracle.
	sres, err := multiscalar.Run(scProg, multiscalar.ScalarConfig(1, false), multiscalar.WithVerify())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scalar:      %d cycles, IPC %.2f\n", sres.Cycles, sres.IPC())

	// Multiscalar with 2, 4, 8 units.
	for _, units := range []int{2, 4, 8} {
		res, err := multiscalar.Run(msProg, multiscalar.DefaultConfig(units, 1, false), multiscalar.WithVerify())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%d units:     %d cycles, speedup %.2f, %d tasks, prediction %.1f%%\n",
			units, res.Cycles, res.Speedup(sres), res.TasksRetired, 100*res.PredAccuracy())
	}
}
