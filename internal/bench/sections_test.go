package bench

import (
	"strings"
	"testing"
)

func TestParseSectionsValid(t *testing.T) {
	sel, err := ParseSections("table2, sweep ,,annotate")
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) != 3 || !sel["table2"] || !sel["sweep"] || !sel["annotate"] {
		t.Fatalf("selection %v", sel)
	}
	if sel, err := ParseSections(""); err != nil || len(sel) != 0 {
		t.Fatalf("empty value: sel=%v err=%v", sel, err)
	}
}

// TestParseSectionsUnknownListsValidNames pins the fix: an unknown name
// errors and the error enumerates every valid section, rather than
// silently selecting nothing.
func TestParseSectionsUnknownListsValidNames(t *testing.T) {
	_, err := ParseSections("table2,bogus")
	if err == nil {
		t.Fatal("unknown section accepted")
	}
	for _, name := range SectionNames() {
		if !strings.Contains(err.Error(), name) {
			t.Fatalf("error %q does not list valid section %q", err, name)
		}
	}
	if !strings.Contains(err.Error(), `"bogus"`) {
		t.Fatalf("error %q does not name the offending section", err)
	}
}

func TestParseSectionsSuggestsClosest(t *testing.T) {
	_, err := ParseSections("tabel2")
	if err == nil || !strings.Contains(err.Error(), `did you mean "table2"?`) {
		t.Fatalf("typo suggestion missing: %v", err)
	}
	// A name nothing like any section gets no speculative suggestion.
	_, err = ParseSections("zzzzzzzz")
	if err == nil || strings.Contains(err.Error(), "did you mean") {
		t.Fatalf("implausible suggestion: %v", err)
	}
}
