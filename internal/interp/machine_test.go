package interp

import (
	"testing"

	"multiscalar/internal/asm"
	"multiscalar/internal/isa"
)

func runProgram(t *testing.T, src string, maxInstrs uint64) *Machine {
	t.Helper()
	p, err := asm.Assemble(src, asm.ModeScalar)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	env := NewSysEnv()
	m := NewMachine(p, env)
	if err := m.Run(maxInstrs); err != nil {
		t.Fatalf("run: %v", err)
	}
	return m
}

const exitSeq = `
	li $v0, 10
	li $a0, 0
	syscall
`

func TestArithmeticLoop(t *testing.T) {
	// sum 1..10 = 55
	m := runProgram(t, `
main:
	li $t0, 10
	li $t1, 0
loop:
	add $t1, $t1, $t0
	addi $t0, $t0, -1
	bnez $t0, loop
	move $a0, $t1
	li $v0, 1
	syscall
`+exitSeq, 10000)
	if got := m.Env.Out.String(); got != "55" {
		t.Errorf("out = %q, want 55", got)
	}
	if m.Env.ExitCode != 0 || !m.Env.Exited {
		t.Errorf("exit = %d/%v", m.Env.ExitCode, m.Env.Exited)
	}
}

func TestFunctionCall(t *testing.T) {
	// compute 6! recursively
	m := runProgram(t, `
main:
	li  $a0, 6
	jal fact
	move $a0, $v0
	li  $v0, 1
	syscall
`+exitSeq+`
fact:
	addi $sp, $sp, -8
	sw   $ra, 4($sp)
	sw   $a0, 0($sp)
	li   $v0, 1
	blez $a0, fact_done
	addi $a0, $a0, -1
	jal  fact
	lw   $a0, 0($sp)
	mul  $v0, $v0, $a0
fact_done:
	lw   $ra, 4($sp)
	addi $sp, $sp, 8
	jr   $ra
`, 100000)
	if got := m.Env.Out.String(); got != "720" {
		t.Errorf("out = %q, want 720", got)
	}
}

func TestMemoryOps(t *testing.T) {
	m := runProgram(t, `
	.data
arr:	.word 5, 3, 8, 1
n:	.word 4
	.text
main:
	la  $t0, arr
	lw  $t1, n
	li  $t2, 0     ; sum
sumloop:
	lw  $t3, 0($t0)
	add $t2, $t2, $t3
	addi $t0, $t0, 4
	addi $t1, $t1, -1
	bnez $t1, sumloop
	move $a0, $t2
	li $v0, 1
	syscall
`+exitSeq, 10000)
	if got := m.Env.Out.String(); got != "17" {
		t.Errorf("out = %q, want 17", got)
	}
}

func TestByteAndHalfOps(t *testing.T) {
	m := runProgram(t, `
	.data
buf:	.byte 0xff, 0x7f, 0
	.text
main:
	la  $t0, buf
	lb  $t1, 0($t0)    ; -1 sign extended
	lbu $t2, 0($t0)    ; 255
	lb  $t3, 1($t0)    ; 127
	add $a0, $t1, $t2  ; 254
	add $a0, $a0, $t3  ; 381
	sb  $a0, 2($t0)    ; low byte 125
	lbu $t4, 2($t0)
	add $a0, $a0, $t4  ; 506
	li $v0, 1
	syscall
`+exitSeq, 1000)
	if got := m.Env.Out.String(); got != "506" {
		t.Errorf("out = %q, want 506", got)
	}
}

func TestPrintString(t *testing.T) {
	m := runProgram(t, `
	.data
msg:	.asciiz "hello\n"
	.text
main:
	la $a0, msg
	li $v0, 4
	syscall
`+exitSeq, 1000)
	if got := m.Env.Out.String(); got != "hello\n" {
		t.Errorf("out = %q", got)
	}
}

func TestSbrk(t *testing.T) {
	m := runProgram(t, `
main:
	li $a0, 16
	li $v0, 9
	syscall
	move $t0, $v0    ; first block
	li $a0, 16
	li $v0, 9
	syscall          ; second block
	sub $a0, $v0, $t0
	li $v0, 1
	syscall
`+exitSeq, 1000)
	if got := m.Env.Out.String(); got != "16" {
		t.Errorf("out = %q, want 16", got)
	}
}

func TestFloatingPoint(t *testing.T) {
	m := runProgram(t, `
	.data
a:	.double 1.5
b:	.double 2.25
	.text
main:
	l.d   $f0, a
	l.d   $f2, b
	add.d $f4, $f0, $f2   ; 3.75
	mul.d $f4, $f4, $f2   ; 8.4375
	c.lt.d $f0, $f2
	bc1f  bad
	mfc1  $a0, $f4        ; trunc -> 8
	li $v0, 1
	syscall
	b out
bad:
	li $a0, -1
	li $v0, 1
	syscall
out:
`+exitSeq, 1000)
	if got := m.Env.Out.String(); got != "8" {
		t.Errorf("out = %q, want 8", got)
	}
}

func TestMtc1Conversion(t *testing.T) {
	m := runProgram(t, `
main:
	li    $t0, 7
	mtc1  $f0, $t0
	mtc1  $f2, $t0
	mul.d $f4, $f0, $f2   ; 49.0
	mfc1  $a0, $f4
	li $v0, 1
	syscall
`+exitSeq, 1000)
	if got := m.Env.Out.String(); got != "49" {
		t.Errorf("out = %q, want 49", got)
	}
}

func TestDivRem(t *testing.T) {
	m := runProgram(t, `
main:
	li  $t0, -17
	li  $t1, 5
	div $t2, $t0, $t1   ; -3
	rem $t3, $t0, $t1   ; -2
	mul $a0, $t2, $t3   ; 6
	li $v0, 1
	syscall
`+exitSeq, 1000)
	if got := m.Env.Out.String(); got != "6" {
		t.Errorf("out = %q, want 6", got)
	}
}

func TestDivByZeroTraps(t *testing.T) {
	p, err := asm.Assemble("main:\n\tli $t0, 1\n\tli $t1, 0\n\tdiv $t2, $t0, $t1\n"+exitSeq, asm.ModeScalar)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMachine(p, NewSysEnv())
	if err := m.Run(100); err == nil {
		t.Error("expected divide-by-zero trap")
	}
}

func TestUnalignedTraps(t *testing.T) {
	p, err := asm.Assemble("main:\n\tli $t0, 0x10000001\n\tlw $t1, 0($t0)\n"+exitSeq, asm.ModeScalar)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMachine(p, NewSysEnv())
	if err := m.Run(100); err == nil {
		t.Error("expected unaligned trap")
	}
}

func TestRunawayLimit(t *testing.T) {
	p, err := asm.Assemble("main:\n\tj main\n", asm.ModeScalar)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMachine(p, NewSysEnv())
	if err := m.Run(100); err == nil {
		t.Error("expected instruction-limit error")
	}
}

func TestZeroRegisterImmutable(t *testing.T) {
	m := runProgram(t, `
main:
	li   $zero, 99
	addi $zero, $zero, 5
	move $a0, $zero
	li $v0, 1
	syscall
`+exitSeq, 1000)
	if got := m.Env.Out.String(); got != "0" {
		t.Errorf("out = %q, want 0", got)
	}
}

func TestICountMatchesExecution(t *testing.T) {
	m := runProgram(t, `
main:
	li $t0, 3        ; 1
loop:
	addi $t0, $t0, -1 ; 3x
	bnez $t0, loop    ; 3x
`+exitSeq, 1000) // 3 more
	if m.ICount != 1+3+3+3 {
		t.Errorf("ICount = %d, want 10", m.ICount)
	}
	if m.BranchCount != 3 {
		t.Errorf("BranchCount = %d, want 3", m.BranchCount)
	}
}

func TestMultiscalarBinaryRunsIdentically(t *testing.T) {
	// The interpreter ignores annotations and executes release as a no-op,
	// so a multiscalar binary with extra release instructions produces the
	// same output with a higher instruction count.
	src := `
main:
	li $s0, 5 !f
	li $s1, 0 !f
	j  loop !s
loop:
	add $s1, $s1, $s0 !f
	.msonly release $s1
	addi $s0, $s0, -1 !f
	bnez $s0, loop !s
end:
	move $a0, $s1
	li $v0, 1
	syscall
` + exitSeq + `
	.task main targets=loop create=$s0,$s1
	.task loop targets=loop,end create=$s0,$s1
	.task end entry=end
`
	pm, err := asm.Assemble(src, asm.ModeMultiscalar)
	if err != nil {
		t.Fatal(err)
	}
	ps, err := asm.Assemble(src, asm.ModeScalar)
	if err != nil {
		t.Fatal(err)
	}
	envM, envS := NewSysEnv(), NewSysEnv()
	mm, ms := NewMachine(pm, envM), NewMachine(ps, envS)
	if err := mm.Run(1000); err != nil {
		t.Fatal(err)
	}
	if err := ms.Run(1000); err != nil {
		t.Fatal(err)
	}
	if envM.Out.String() != envS.Out.String() {
		t.Errorf("outputs differ: %q vs %q", envM.Out.String(), envS.Out.String())
	}
	if mm.ICount <= ms.ICount {
		t.Errorf("multiscalar ICount %d should exceed scalar %d", mm.ICount, ms.ICount)
	}
}

func TestJalrIndirectCall(t *testing.T) {
	m := runProgram(t, `
main:
	la   $t0, fn
	jalr $t0
	move $a0, $v0
	li $v0, 1
	syscall
`+exitSeq+`
fn:
	li $v0, 42
	jr $ra
`, 1000)
	if got := m.Env.Out.String(); got != "42" {
		t.Errorf("out = %q, want 42", got)
	}
}

func TestShiftOps(t *testing.T) {
	m := runProgram(t, `
main:
	li   $t0, -8
	sra  $t1, $t0, 1    ; -4
	srl  $t2, $t0, 28   ; 15
	sll  $t3, $t2, 2    ; 60
	li   $t4, 2
	srav $t5, $t0, $t4  ; -2
	add  $a0, $t1, $t2
	add  $a0, $a0, $t3
	add  $a0, $a0, $t5  ; -4+15+60-2 = 69
	li $v0, 1
	syscall
`+exitSeq, 1000)
	if got := m.Env.Out.String(); got != "69" {
		t.Errorf("out = %q, want 69", got)
	}
}

func TestFinalRegisterState(t *testing.T) {
	m := runProgram(t, `
main:
	li $s0, 123
	li $s1, 456
`+exitSeq, 100)
	if m.Regs[isa.RegS0].I != 123 || m.Regs[isa.RegS0+1].I != 456 {
		t.Errorf("regs = %v %v", m.Regs[isa.RegS0], m.Regs[isa.RegS0+1])
	}
}

func TestSyscallErrors(t *testing.T) {
	// Unknown syscall code traps.
	p, err := asm.Assemble("main:\n\tli $v0, 99\n\tsyscall\n"+exitSeq, asm.ModeScalar)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMachine(p, NewSysEnv())
	if err := m.Run(100); err == nil {
		t.Error("unknown syscall should trap")
	}
}

func TestPCOutsideText(t *testing.T) {
	p, err := asm.Assemble("main:\n\tli $t0, 0x9000\n\tjr $t0\n", asm.ModeScalar)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMachine(p, NewSysEnv())
	if err := m.Run(100); err == nil {
		t.Error("jump outside text should trap")
	}
}

func TestUnalignedStoreTraps(t *testing.T) {
	p, err := asm.Assemble("main:\n\tli $t0, 0x10000002\n\tsw $t1, 0($t0)\n"+exitSeq, asm.ModeScalar)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMachine(p, NewSysEnv())
	if err := m.Run(100); err == nil {
		t.Error("unaligned store should trap")
	}
}

func TestPrintStringUnterminated(t *testing.T) {
	env := NewSysEnv()
	mem := newZerolessMemory()
	if _, _, err := env.Call(mem, SysPrintString, 0, 0, 0, 0); err == nil {
		t.Error("unterminated string should error")
	}
}

// zerolessMemory returns nonzero for every byte, so print_string never
// terminates.
type zerolessMemory struct{}

func newZerolessMemory() *zerolessMemory        { return &zerolessMemory{} }
func (z *zerolessMemory) Byte(addr uint32) byte { return 'x' }

func TestHeapEnd(t *testing.T) {
	env := NewSysEnv()
	start := env.HeapEnd()
	env.Call(nil, SysSbrk, 100, 0, 0, 0)
	if env.HeapEnd() != start+100 {
		t.Errorf("heap end = %#x", env.HeapEnd())
	}
}

func TestValueString(t *testing.T) {
	if IntVal(5).String() != "5" || FPVal(1.5).String() != "1.5" {
		t.Errorf("value strings: %q %q", IntVal(5).String(), FPVal(1.5).String())
	}
}
