package interp

import (
	"io"

	"multiscalar/internal/snapshot"
)

// Checkpoint support for the functional machine. A snapshot carries
// only mutable run state: registers, PC, instruction counts, the
// memory's private copy-on-write pages and the syscall environment.
// Restore requires a Machine constructed from the same Program — the
// program text, decoded µops and the read-only memory image are
// rebuilt from it, not stored.

// SaveState serializes the syscall environment: accumulated output,
// exit state, heap break, and the count of stdin bytes consumed.
func (e *SysEnv) SaveState(enc *snapshot.Encoder) {
	enc.Tag("SENV")
	enc.Blob(e.Out.Bytes())
	enc.I32(e.ExitCode)
	enc.Bool(e.Exited)
	enc.U32(e.heapEnd)
	enc.U64(e.inConsumed)
}

// LoadState restores the environment. If an input reader is attached,
// the bytes the snapshotted run had already consumed are skipped, so
// the restored run continues reading the same stream at the same
// position (the caller supplies a fresh reader over the same input).
func (e *SysEnv) LoadState(d *snapshot.Decoder) {
	d.Tag("SENV")
	out := d.Blob(1 << 30)
	e.ExitCode = d.I32()
	e.Exited = d.Bool()
	e.heapEnd = d.U32()
	e.inConsumed = d.U64()
	if d.Err() != nil {
		return
	}
	e.Out.Reset()
	e.Out.Write(out)
	if e.In != nil && e.inConsumed > 0 {
		// A short copy just means the input ends before the consumed
		// count; subsequent reads return end-of-input, like any other
		// exhausted stream.
		io.CopyN(io.Discard, e.In, int64(e.inConsumed)) //nolint:errcheck
	}
}

// SaveState serializes the machine's architectural state as one
// snapshot section (shared with the timing machines, whose committed
// state is the same shape).
func (m *Machine) SaveState(e *snapshot.Encoder) {
	e.Tag("INTP")
	for _, v := range m.Regs {
		e.U32(v.I)
		e.F64(v.F)
	}
	e.Bool(m.FCC)
	e.U32(m.PC)
	e.U64(m.ICount)
	e.U64(m.LoadCount)
	e.U64(m.StoreCount)
	e.U64(m.BranchCount)
	m.Mem.SaveState(e)
	m.Env.SaveState(e)
}

// LoadState restores the machine's architectural state.
func (m *Machine) LoadState(d *snapshot.Decoder) {
	d.Tag("INTP")
	for i := range m.Regs {
		m.Regs[i] = Value{I: d.U32(), F: d.F64()}
	}
	m.FCC = d.Bool()
	m.PC = d.U32()
	m.ICount = d.U64()
	m.LoadCount = d.U64()
	m.StoreCount = d.U64()
	m.BranchCount = d.U64()
	m.Mem.LoadState(d)
	m.Env.LoadState(d)
}

// Save serializes the machine into a snapshot.
func (m *Machine) Save() ([]byte, error) {
	e := snapshot.NewEncoder(snapshot.KindInterp, m.ICount)
	m.SaveState(e)
	return e.Bytes(), nil
}

// Restore loads a snapshot produced by Save into a machine built from
// the same Program. On error the machine state is unspecified and the
// machine must not be run.
func (m *Machine) Restore(data []byte) error {
	d, err := snapshot.NewDecoder(data, snapshot.KindInterp)
	if err != nil {
		return err
	}
	m.LoadState(d)
	return d.Finish()
}
