package mem

import (
	"testing"
	"testing/quick"
)

func TestMemoryBasic(t *testing.T) {
	m := NewMemory()
	m.WriteWord(0x1000, 0xdeadbeef)
	if got := m.ReadWord(0x1000); got != 0xdeadbeef {
		t.Fatalf("word = %x", got)
	}
	// Big-endian byte order.
	if m.Byte(0x1000) != 0xde || m.Byte(0x1003) != 0xef {
		t.Errorf("bytes = %x %x", m.Byte(0x1000), m.Byte(0x1003))
	}
	if m.Byte(0x9999) != 0 {
		t.Error("unwritten byte not zero")
	}
}

func TestMemoryCrossPageWrite(t *testing.T) {
	m := NewMemory()
	buf := make([]byte, 100)
	for i := range buf {
		buf[i] = byte(i)
	}
	addr := uint32(pageSize - 50)
	m.WriteBytes(addr, buf)
	got := m.Bytes(addr, 100)
	for i := range buf {
		if got[i] != buf[i] {
			t.Fatalf("byte %d = %d, want %d", i, got[i], buf[i])
		}
	}
}

func TestMemoryReadWriteNProperty(t *testing.T) {
	m := NewMemory()
	f := func(addr uint32, v uint64, szSel uint8) bool {
		size := []int{1, 2, 4, 8}[szSel%4]
		m.WriteN(addr, size, v)
		want := v
		if size < 8 {
			want = v & (1<<(8*size) - 1)
		}
		return m.ReadN(addr, size) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMemoryEqual(t *testing.T) {
	a, b := NewMemory(), NewMemory()
	if !a.Equal(b) {
		t.Error("empty memories unequal")
	}
	a.WriteWord(0x100, 42)
	if a.Equal(b) {
		t.Error("different memories equal")
	}
	b.WriteWord(0x100, 42)
	if !a.Equal(b) {
		t.Error("same contents unequal")
	}
	// Zero-valued page equals missing page.
	a.WriteWord(0x9000, 0)
	if !a.Equal(b) {
		t.Error("zero page should equal missing page")
	}
}

func TestReadCString(t *testing.T) {
	m := NewMemory()
	m.WriteBytes(0x2000, []byte("hello\x00world"))
	if got := m.ReadCString(0x2000, 100); got != "hello" {
		t.Errorf("cstring = %q", got)
	}
}

func TestBusLatency(t *testing.T) {
	b := NewBus()
	// 4 words: 10 cycles.
	if done := b.Access(0, 4); done != 10 {
		t.Errorf("4w done = %d", done)
	}
	// 16 words (64B block): 10+3, queued behind the first.
	if done := b.Access(0, 16); done != 23 {
		t.Errorf("16w done = %d", done)
	}
	// After the bus frees, no queueing.
	if done := b.Access(100, 16); done != 113 {
		t.Errorf("16w at 100 done = %d", done)
	}
	if b.Requests != 3 {
		t.Errorf("requests = %d", b.Requests)
	}
}

func TestBusContention(t *testing.T) {
	b := NewBus()
	d1 := b.Access(0, 4)  // 0..10
	d2 := b.Access(5, 4)  // queued: 10..20
	d3 := b.Access(25, 4) // idle bus: 25..35
	if d1 != 10 || d2 != 20 || d3 != 35 {
		t.Errorf("done = %d %d %d", d1, d2, d3)
	}
}

func TestCacheHitMiss(t *testing.T) {
	bus := NewBus()
	c := NewCache("test", 1024, 64, 1, 4, bus)
	// Cold miss: hit latency + bus(16 words)=13 + hit latency to return.
	done := c.Access(0, 0x1000, false)
	if c.Misses != 1 {
		t.Fatalf("misses = %d", c.Misses)
	}
	if done != 1+13+1 {
		t.Errorf("miss done = %d, want 15", done)
	}
	// Now a hit, 1 cycle.
	done = c.Access(20, 0x1004, false)
	if c.Hits != 1 || done != 21 {
		t.Errorf("hit done = %d, hits = %d", done, c.Hits)
	}
	// Different block mapping to same set evicts.
	done = c.Access(30, 0x1000+1024, false)
	if c.Misses != 2 {
		t.Errorf("conflict miss not counted")
	}
	_ = done
	if c.Lookup(0x1000) {
		t.Error("evicted block still resident")
	}
}

func TestCacheMSHRMerge(t *testing.T) {
	bus := NewBus()
	c := NewCache("test", 1024, 64, 1, 4, bus)
	d1 := c.Access(0, 0x2000, false)
	d2 := c.Access(1, 0x2004, false) // same block, in flight -> merge
	if c.Merges != 1 {
		t.Errorf("merges = %d", c.Merges)
	}
	if d2 > d1+1 {
		t.Errorf("merged access done = %d vs %d", d2, d1)
	}
	if bus.Requests != 1 {
		t.Errorf("bus requests = %d, want 1 (merged)", bus.Requests)
	}
}

func TestCacheMSHRExhaustion(t *testing.T) {
	bus := NewBus()
	c := NewCache("test", 4096, 64, 1, 2, bus)
	c.Access(0, 0x0000, false)
	c.Access(0, 0x1000, false)
	// Third distinct miss with 2 MSHRs must wait for one to free.
	d3 := c.Access(0, 0x2000, false)
	if d3 < 20 {
		t.Errorf("third miss done = %d, expected to queue", d3)
	}
}

func TestBankedDCacheInterleaving(t *testing.T) {
	bus := NewBus()
	d := NewBankedDCache(4, 8192, 64, 2, 4, bus)
	if d.BankOf(0) == d.BankOf(64) {
		t.Error("adjacent blocks map to same bank")
	}
	if d.BankOf(0) != d.BankOf(4*64) {
		t.Error("stride-4-blocks should wrap to same bank")
	}
}

func TestBankConflict(t *testing.T) {
	bus := NewBus()
	d := NewBankedDCache(2, 8192, 64, 2, 4, bus)
	// Warm bank-0 addresses 0 and 128, and bank-1 address 64.
	d.Access(0, 0, false)
	d.Access(100, 128, false)
	d.Access(150, 64, false)
	base := uint64(200)
	d1 := d.Access(base, 0, false)   // hit: 2 cycles
	d2 := d.Access(base, 128, false) // same bank, same cycle: +1 queue
	if d1 != base+2 {
		t.Errorf("d1 = %d", d1)
	}
	if d2 != base+3 {
		t.Errorf("d2 = %d, want %d (bank conflict)", d2, base+3)
	}
	if d.Conflicts != 1 {
		t.Errorf("conflicts = %d", d.Conflicts)
	}
	// Different banks in the same cycle proceed in parallel.
	d3 := d.Access(base+10, 0, false)
	d4 := d.Access(base+10, 64, false)
	if d3 != d4 {
		t.Errorf("parallel banks: %d vs %d", d3, d4)
	}
}

func TestCacheReset(t *testing.T) {
	bus := NewBus()
	c := NewCache("test", 1024, 64, 1, 4, bus)
	c.Access(0, 0x1000, false)
	c.Reset()
	if c.Lookup(0x1000) {
		t.Error("reset did not invalidate")
	}
	if c.Hits+c.Misses != 0 {
		t.Error("reset did not clear stats")
	}
}

func TestMissRate(t *testing.T) {
	bus := NewBus()
	c := NewCache("test", 1024, 64, 1, 4, bus)
	c.Access(0, 0, false)
	c.Access(50, 0, false)
	c.Access(100, 0, false)
	c.Access(150, 0, false)
	if got := c.MissRate(); got != 0.25 {
		t.Errorf("miss rate = %v", got)
	}
}
