// Package mem provides the memory hierarchy: the backing store shared by
// all simulators plus the timing models from Section 5.1 of the paper —
// the split-transaction memory bus, direct-mapped caches, and the
// interleaved data banks behind a crossbar.
package mem

const pageBits = 12
const pageSize = 1 << pageBits

// Memory is a sparse, paged, big-endian, byte-addressable store over the
// full 32-bit address space. The zero value is ready to use.
type Memory struct {
	pages map[uint32]*[pageSize]byte
}

// NewMemory returns an empty memory.
func NewMemory() *Memory {
	return &Memory{pages: make(map[uint32]*[pageSize]byte)}
}

func (m *Memory) page(addr uint32, create bool) *[pageSize]byte {
	if m.pages == nil {
		if !create {
			return nil
		}
		m.pages = make(map[uint32]*[pageSize]byte)
	}
	key := addr >> pageBits
	p := m.pages[key]
	if p == nil && create {
		p = new([pageSize]byte)
		m.pages[key] = p
	}
	return p
}

// Byte returns the byte at addr (0 if never written).
func (m *Memory) Byte(addr uint32) byte {
	p := m.page(addr, false)
	if p == nil {
		return 0
	}
	return p[addr&(pageSize-1)]
}

// SetByte stores one byte.
func (m *Memory) SetByte(addr uint32, v byte) {
	m.page(addr, true)[addr&(pageSize-1)] = v
}

// ReadN reads size bytes starting at addr as a big-endian unsigned value.
// size must be 1, 2, 4 or 8.
func (m *Memory) ReadN(addr uint32, size int) uint64 {
	var v uint64
	for i := 0; i < size; i++ {
		v = v<<8 | uint64(m.Byte(addr+uint32(i)))
	}
	return v
}

// WriteN stores the low size bytes of v big-endian at addr.
func (m *Memory) WriteN(addr uint32, size int, v uint64) {
	for i := size - 1; i >= 0; i-- {
		m.SetByte(addr+uint32(i), byte(v))
		v >>= 8
	}
}

// ReadWord reads a 32-bit big-endian word.
func (m *Memory) ReadWord(addr uint32) uint32 { return uint32(m.ReadN(addr, 4)) }

// WriteWord stores a 32-bit big-endian word.
func (m *Memory) WriteWord(addr uint32, v uint32) { m.WriteN(addr, 4, uint64(v)) }

// WriteBytes copies buf into memory starting at addr.
func (m *Memory) WriteBytes(addr uint32, buf []byte) {
	for len(buf) > 0 {
		p := m.page(addr, true)
		off := int(addr & (pageSize - 1))
		n := copy(p[off:], buf)
		buf = buf[n:]
		addr += uint32(n)
	}
}

// Bytes copies n bytes starting at addr into a new slice.
func (m *Memory) Bytes(addr uint32, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = m.Byte(addr + uint32(i))
	}
	return out
}

// ReadCString reads a NUL-terminated string starting at addr, up to max
// bytes.
func (m *Memory) ReadCString(addr uint32, max int) string {
	var out []byte
	for i := 0; i < max; i++ {
		b := m.Byte(addr + uint32(i))
		if b == 0 {
			break
		}
		out = append(out, b)
	}
	return string(out)
}

// Equal reports whether two memories hold identical contents.
func (m *Memory) Equal(o *Memory) bool {
	return m.subsetOf(o) && o.subsetOf(m)
}

func (m *Memory) subsetOf(o *Memory) bool {
	for key, p := range m.pages {
		var q *[pageSize]byte
		if o.pages != nil {
			q = o.pages[key]
		}
		if q == nil {
			for _, b := range p {
				if b != 0 {
					return false
				}
			}
			continue
		}
		if *p != *q {
			return false
		}
	}
	return true
}
