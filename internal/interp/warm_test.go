package interp

import (
	"testing"

	"multiscalar/internal/asm"
	"multiscalar/internal/workloads"
)

// countingWarmer records what the machine's warming hooks deliver.
type countingWarmer struct {
	loads, stores, retires uint64
	lastPC, lastNext       uint32
}

func (c *countingWarmer) Mem(addr uint32, store bool) {
	if store {
		c.stores++
	} else {
		c.loads++
	}
}

func (c *countingWarmer) Retire(pc, next uint32) {
	c.retires++
	c.lastPC, c.lastNext = pc, next
}

// TestWarmerHooks: the Warm observer sees exactly one Retire per
// executed instruction and one Mem per load/store, and attaching it
// changes nothing about the run.
func TestWarmerHooks(t *testing.T) {
	w := workloads.Get("example")
	p, err := w.Build(asm.ModeMultiscalar, w.TestScale)
	if err != nil {
		t.Fatal(err)
	}

	plain := NewMachine(p, NewSysEnv())
	if err := plain.Run(1 << 30); err != nil {
		t.Fatal(err)
	}

	cw := &countingWarmer{}
	m := NewMachine(p, NewSysEnv())
	m.Warm = cw
	if err := m.Run(1 << 30); err != nil {
		t.Fatal(err)
	}

	if m.ICount != plain.ICount || m.Env.Out.String() != plain.Env.Out.String() {
		t.Errorf("warmer perturbed the run: %d instrs vs %d", m.ICount, plain.ICount)
	}
	if cw.retires != m.ICount {
		t.Errorf("%d Retire callbacks for %d instructions", cw.retires, m.ICount)
	}
	if cw.loads != m.LoadCount || cw.stores != m.StoreCount {
		t.Errorf("warmer saw %d loads / %d stores, machine counted %d / %d",
			cw.loads, cw.stores, m.LoadCount, m.StoreCount)
	}
}
