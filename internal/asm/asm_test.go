package asm

import (
	"encoding/binary"
	"math"
	"strings"
	"testing"

	"multiscalar/internal/isa"
)

// mustAssemble assembles with the lint post-pass disabled: these tests
// exercise assembler mechanics on minimal fragments that do not try to
// honor the full annotation contract. TestLintPostPass covers the
// default path.
func mustAssemble(t *testing.T, src string, mode Mode) *isa.Program {
	t.Helper()
	res, err := AssembleOpts(src, Options{Mode: mode, NoLint: true})
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	return res.Prog
}

func TestBasicProgram(t *testing.T) {
	src := `
	.text
main:
	li   $t0, 5
	addi $t1, $t0, 3
	add  $t2, $t0, $t1
	syscall
`
	p := mustAssemble(t, src, ModeScalar)
	if p.Entry != isa.TextBase {
		t.Errorf("entry = 0x%x", p.Entry)
	}
	if len(p.Text) != 4 {
		t.Fatalf("text len = %d", len(p.Text))
	}
	if p.Text[0].Op != isa.OpOri || p.Text[0].Imm != 5 {
		t.Errorf("li expanded to %v", p.Text[0])
	}
	if p.Text[2].Op != isa.OpAdd || p.Text[2].Rd != isa.RegT0+2 {
		t.Errorf("add = %v", p.Text[2])
	}
}

func TestLabelsAndBranches(t *testing.T) {
	src := `
main:
	li  $t0, 10
loop:
	addi $t0, $t0, -1
	bnez $t0, loop
	j done
done:
	syscall
`
	p := mustAssemble(t, src, ModeScalar)
	loopAddr, ok := p.Symbol("loop")
	if !ok || loopAddr != isa.TextBase+4 {
		t.Fatalf("loop = 0x%x, ok=%v", loopAddr, ok)
	}
	br := p.Text[2]
	if br.Op != isa.OpBne || br.Target != loopAddr || br.Rt != isa.RegZero {
		t.Errorf("bnez = %v", br)
	}
	if p.Text[3].Op != isa.OpJ || p.Text[3].Target != isa.TextBase+16 {
		t.Errorf("j = %v", p.Text[3])
	}
}

func TestImmediateThirdOperand(t *testing.T) {
	src := `
main:
	add $t0, $t1, 4
	sub $t0, $t1, 4
	and $t0, $t1, 0xff
	or  $t0, $t1, 1
	slt $t0, $t1, 100
	sllv $t0, $t1, 3
	syscall
`
	p := mustAssemble(t, src, ModeScalar)
	want := []struct {
		op  isa.Op
		imm int32
	}{
		{isa.OpAddi, 4}, {isa.OpAddi, -4}, {isa.OpAndi, 0xff},
		{isa.OpOri, 1}, {isa.OpSlti, 100}, {isa.OpSll, 3},
	}
	for i, w := range want {
		if p.Text[i].Op != w.op || p.Text[i].Imm != w.imm {
			t.Errorf("instr %d = %v, want %v imm=%d", i, &p.Text[i], w.op, w.imm)
		}
	}
}

func TestMemoryOperands(t *testing.T) {
	src := `
	.data
buf:	.word 1, 2, 3
	.text
main:
	lw $t0, 0($a0)
	lw $t1, 8($a0)
	lw $t2, buf
	lw $t3, buf+4($zero)
	sw $t0, -12($sp)
	lb $t4, ($a1)
	syscall
`
	p := mustAssemble(t, src, ModeScalar)
	if p.Text[0].Rs != isa.RegA0 || p.Text[0].Imm != 0 {
		t.Errorf("lw0 = %v", p.Text[0])
	}
	if p.Text[2].Rs != isa.RegZero || uint32(p.Text[2].Imm) != isa.DataBase {
		t.Errorf("lw buf = %v", p.Text[2])
	}
	if uint32(p.Text[3].Imm) != isa.DataBase+4 {
		t.Errorf("lw buf+4 = %v", p.Text[3])
	}
	if p.Text[4].Imm != -12 || p.Text[4].Rt != isa.RegT0 {
		t.Errorf("sw = %v", p.Text[4])
	}
	if p.Text[5].Rs != isa.RegA1 || p.Text[5].Imm != 0 {
		t.Errorf("lb = %v", p.Text[5])
	}
}

func TestDataDirectives(t *testing.T) {
	src := `
	.data
w:	.word 0x11223344, -1
b:	.byte 1, 2, 'A', '\n'
h:	.half 0x1234
f:	.float 1.5
d:	.double 2.25, -0.5
s:	.asciiz "hi\n"
sp:	.space 3
	.align 2
e:	.word w
	.text
main:	syscall
`
	p := mustAssemble(t, src, ModeScalar)
	data := p.Data
	if binary.BigEndian.Uint32(data[0:]) != 0x11223344 {
		t.Errorf("word0 = %x", data[0:4])
	}
	if binary.BigEndian.Uint32(data[4:]) != 0xffffffff {
		t.Errorf("word1 = %x", data[4:8])
	}
	if data[8] != 1 || data[9] != 2 || data[10] != 'A' || data[11] != '\n' {
		t.Errorf("bytes = %v", data[8:12])
	}
	if binary.BigEndian.Uint16(data[12:]) != 0x1234 {
		t.Errorf("half = %x", data[12:14])
	}
	fAddr, _ := p.Symbol("f")
	off := fAddr - isa.DataBase
	if math.Float32frombits(binary.BigEndian.Uint32(data[off:])) != 1.5 {
		t.Errorf("float = %x", data[off:off+4])
	}
	dAddr, _ := p.Symbol("d")
	off = dAddr - isa.DataBase
	if math.Float64frombits(binary.BigEndian.Uint64(data[off:])) != 2.25 {
		t.Errorf("double = %x", data[off:off+8])
	}
	if math.Float64frombits(binary.BigEndian.Uint64(data[off+8:])) != -0.5 {
		t.Errorf("double2 = %x", data[off+8:off+16])
	}
	sAddr, _ := p.Symbol("s")
	off = sAddr - isa.DataBase
	if string(data[off:off+3]) != "hi\n" || data[off+3] != 0 {
		t.Errorf("asciiz = %q", data[off:off+4])
	}
	eAddr, _ := p.Symbol("e")
	if (eAddr-isa.DataBase)%4 != 0 {
		t.Errorf("e not aligned: 0x%x", eAddr)
	}
	wAddr, _ := p.Symbol("w")
	got := binary.BigEndian.Uint32(data[eAddr-isa.DataBase:])
	if got != wAddr {
		t.Errorf("patched word = 0x%x, want 0x%x", got, wAddr)
	}
}

func TestAnnotationsMultiscalar(t *testing.T) {
	src := `
main:
	addi $s0, $s0, 16 !f
	bne  $s0, $s1, main !snt
	syscall !s
	.task main targets=main create=$s0
`
	p := mustAssemble(t, src, ModeMultiscalar)
	if !p.Text[0].Fwd {
		t.Error("forward bit missing")
	}
	if p.Text[1].Stop != isa.StopNotTaken {
		t.Error("stop-not-taken missing")
	}
	if p.Text[2].Stop != isa.StopAlways {
		t.Error("stop-always missing")
	}
	td := p.TaskAt(isa.TextBase)
	if td == nil {
		t.Fatal("task descriptor missing")
	}
	if !td.Create.Has(isa.RegS0) || td.Create.Count() != 1 {
		t.Errorf("create = %v", td.Create)
	}
	if len(td.Targets) != 1 || td.Targets[0] != isa.TextBase {
		t.Errorf("targets = %v", td.Targets)
	}
}

func TestAnnotationsStrippedInScalarMode(t *testing.T) {
	src := `
main:
	addi $s0, $s0, 16 !f
	bne  $s0, $s1, main !snt
	syscall !s
	.task main targets=main create=$s0
`
	p := mustAssemble(t, src, ModeScalar)
	if p.Text[0].Fwd || p.Text[1].Stop != isa.StopNone || p.Text[2].Stop != isa.StopNone {
		t.Error("annotations not stripped in scalar mode")
	}
	if len(p.Tasks) != 0 {
		t.Error("tasks not stripped in scalar mode")
	}
}

func TestConditionalBuild(t *testing.T) {
	src := `
main:
	li $t0, 1
	.msonly release $t0
	.msonly addi $t1, $t0, 1
	.sconly addi $t2, $t0, 2
	syscall
	.msonly .task main targets=main
`
	ms := mustAssemble(t, src, ModeMultiscalar)
	sc := mustAssemble(t, src, ModeScalar)
	if len(ms.Text) != 4 {
		t.Errorf("ms text = %d instrs", len(ms.Text))
	}
	if len(sc.Text) != 3 {
		t.Errorf("sc text = %d instrs", len(sc.Text))
	}
	if ms.Text[1].Op != isa.OpRelease {
		t.Errorf("ms[1] = %v", ms.Text[1])
	}
	if sc.Text[1].Op != isa.OpAddi || sc.Text[1].Rd != isa.RegT0+2 {
		t.Errorf("sc[1] = %v", sc.Text[1])
	}
	if len(ms.Tasks) != 1 || len(sc.Tasks) != 0 {
		t.Error("task stripping wrong")
	}
}

func TestReleaseExpansion(t *testing.T) {
	src := `
main:
	.msonly release $t0, $s1, $f2
	syscall
	.task main targets=main
`
	p := mustAssemble(t, src, ModeMultiscalar)
	if len(p.Text) != 4 {
		t.Fatalf("text = %d", len(p.Text))
	}
	wantRegs := []isa.Reg{isa.RegT0, isa.RegS0 + 1, isa.F(2)}
	for i, r := range wantRegs {
		if p.Text[i].Op != isa.OpRelease || p.Text[i].Rs != r {
			t.Errorf("release %d = %v, want %v", i, &p.Text[i], r)
		}
	}
}

func TestBranchPseudoExpansion(t *testing.T) {
	src := `
main:
	blt $t0, $t1, main
	bge $t0, $t1, main
	bgt $t0, $t1, main
	ble $t0, $t1, main
	syscall
`
	p := mustAssemble(t, src, ModeScalar)
	if len(p.Text) != 9 {
		t.Fatalf("text = %d", len(p.Text))
	}
	// blt: slt $at,$t0,$t1; bne $at,$zero
	if p.Text[0].Op != isa.OpSlt || p.Text[0].Rs != isa.RegT0 || p.Text[0].Rt != isa.RegT0+1 {
		t.Errorf("blt[0] = %v", &p.Text[0])
	}
	if p.Text[1].Op != isa.OpBne || p.Text[1].Rs != isa.RegAT {
		t.Errorf("blt[1] = %v", &p.Text[1])
	}
	// bge: slt; beq
	if p.Text[3].Op != isa.OpBeq {
		t.Errorf("bge[1] = %v", &p.Text[3])
	}
	// bgt: slt $at,$t1,$t0; bne
	if p.Text[4].Rs != isa.RegT0+1 || p.Text[4].Rt != isa.RegT0 {
		t.Errorf("bgt[0] = %v", &p.Text[4])
	}
	if p.Text[5].Op != isa.OpBne {
		t.Errorf("bgt[1] = %v", &p.Text[5])
	}
}

func TestAnnotationOnPseudoLandsOnLastInstr(t *testing.T) {
	src := `
main:
	blt $t0, $t1, main !st
	syscall
	.task main targets=main
`
	p := mustAssemble(t, src, ModeMultiscalar)
	if p.Text[0].Stop != isa.StopNone {
		t.Error("stop on slt")
	}
	if p.Text[1].Stop != isa.StopTaken {
		t.Error("stop not on branch")
	}
}

func TestTaskDirectiveFull(t *testing.T) {
	src := `
main:
	jal fn !s
cont:
	syscall !s
fn:
	jr $ra !s
	.task main targets=fn pushra=cont create=$ra
	.task fn targets=ret
	.task cont entry=cont targets=cont
`
	p := mustAssemble(t, src, ModeMultiscalar)
	mainTask := p.TaskAt(isa.TextBase)
	if mainTask == nil {
		t.Fatal("no main task")
	}
	contAddr, _ := p.Symbol("cont")
	if mainTask.PushRA != contAddr {
		t.Errorf("PushRA = 0x%x, want 0x%x", mainTask.PushRA, contAddr)
	}
	fnAddr, _ := p.Symbol("fn")
	fnTask := p.TaskAt(fnAddr)
	if fnTask == nil || len(fnTask.Targets) != 1 || fnTask.Targets[0] != isa.TargetReturn {
		t.Fatalf("fn task = %v", fnTask)
	}
	if p.TaskAt(contAddr) == nil {
		t.Error("cont task missing")
	}
}

func TestJalSetsRA(t *testing.T) {
	src := "main:\n\tjal main\n\tsyscall\n"
	p := mustAssemble(t, src, ModeScalar)
	if p.Text[0].Rd != isa.RegRA {
		t.Errorf("jal Rd = %v", p.Text[0].Rd)
	}
	if d := p.Text[0].Dest(); d != isa.RegRA {
		t.Errorf("jal Dest = %v", d)
	}
}

func TestErrors(t *testing.T) {
	cases := map[string]string{
		"unknown mnemonic":   "main:\n\tfoo $t0\n",
		"dup label":          "main:\nmain:\n\tsyscall\n",
		"undefined symbol":   "main:\n\tj nowhere\n",
		"bad reg":            "main:\n\tadd $t0, $q9, $t1\n",
		"release in scalar":  "main:\n\trelease $t0\n\tsyscall\n",
		"instr in data":      ".data\n\tadd $t0, $t0, $t0\n",
		"stop on non-branch": "main:\n\tadd $t0, $t0, $t0 !st\n\tsyscall\n.task main targets=main\n",
		"fwd no dest":        "main:\n\tsw $t0, 0($sp) !f\n\tsyscall\n.task main targets=main\n",
		"trailing comma":     "main:\n\tadd $t0, $t1,\n",
		"dup task":           "main:\n\tsyscall\n.task main targets=main\n.task m2 entry=main targets=main\n",
	}
	for name, src := range cases {
		mode := ModeMultiscalar
		if name == "release in scalar" {
			mode = ModeScalar
		}
		if _, err := Assemble(src, mode); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestComments(t *testing.T) {
	src := `
; full line comment
main:   # another
	li $t0, 1    ; trailing
	li $t1, 2    // c-style
	syscall
`
	p := mustAssemble(t, src, ModeScalar)
	if len(p.Text) != 3 {
		t.Fatalf("text = %d", len(p.Text))
	}
}

func TestGlobalEntry(t *testing.T) {
	src := `
	.global start
other:
	syscall
start:
	syscall
`
	p := mustAssemble(t, src, ModeScalar)
	if p.Entry != isa.TextBase+4 {
		t.Errorf("entry = 0x%x", p.Entry)
	}
}

func TestFPProgram(t *testing.T) {
	src := `
	.data
vals:	.double 1.0, 2.0
	.text
main:
	la    $a0, vals
	l.d   $f0, 0($a0)
	l.d   $f2, 8($a0)
	add.d $f4, $f0, $f2
	c.lt.d $f0, $f2
	bc1t  done
	mul.d $f4, $f4, $f0
done:
	s.d   $f4, 16($a0)
	syscall
`
	p := mustAssemble(t, src, ModeScalar)
	if p.Text[1].Op != isa.OpLdc1 || p.Text[1].Rd != isa.F(0) {
		t.Errorf("l.d = %v", &p.Text[1])
	}
	if p.Text[3].Op != isa.OpAddD || p.Text[3].Rd != isa.F(4) {
		t.Errorf("add.d = %v", &p.Text[3])
	}
	if p.Text[4].Op != isa.OpCLtD || p.Text[4].Rs != isa.F(0) || p.Text[4].Rt != isa.F(2) {
		t.Errorf("c.lt.d = %v", &p.Text[4])
	}
}

func TestMulImmediateExpansion(t *testing.T) {
	src := `
main:
	mul $t0, $t1, 7
	div $t2, $t0, 3
	rem $t3, $t0, 5
	mul $t4, $t1, $t2
	syscall
`
	p := mustAssemble(t, src, ModeScalar)
	if len(p.Text) != 8 {
		t.Fatalf("text = %d instrs, want 8 (3 expansions of 2 + 2)", len(p.Text))
	}
	if p.Text[0].Op != isa.OpOri || p.Text[0].Rd != isa.RegAT || p.Text[0].Imm != 7 {
		t.Errorf("expansion[0] = %v", &p.Text[0])
	}
	if p.Text[1].Op != isa.OpMul || p.Text[1].Rt != isa.RegAT {
		t.Errorf("expansion[1] = %v", &p.Text[1])
	}
	if p.Text[6].Op != isa.OpMul || p.Text[6].Rt != isa.RegT0+2 {
		t.Errorf("plain mul = %v", &p.Text[6])
	}
}

func TestListing(t *testing.T) {
	src := `
main:
	li $s0, 3
	j  loop !s
loop:
	addi $s0, $s0, -1 !f
	bnez $s0, loop !s
end:
	syscall
	.task main targets=loop create=$s0
	.task loop targets=loop,end create=$s0
	.task end
`
	p := mustAssemble(t, src, ModeMultiscalar)
	out := Listing(p)
	for _, want := range []string{"main:", "loop:", "task loop", "create={$s0}",
		"targets=[loop,end]", "!f", "!s", "bne $s0, $zero, loop"} {
		if !strings.Contains(out, want) {
			t.Errorf("listing missing %q:\n%s", want, out)
		}
	}
}

// TestLintPostPass covers the default assembly path: multiscalar builds
// run the annotation-contract linter and hard violations reject the
// build, NoLint opts out, and scalar builds are never checked.
func TestLintPostPass(t *testing.T) {
	// The forward bit sits on a non-last update of $s0 (MS004, an error).
	src := `
main:
	li $s0, 1 !f
	li $s0, 2
	j next !s
next:
	addi $s0, $s0, 0
	li $v0, 10
	li $a0, 0
	syscall
.task main targets=next create=$s0
.task next
`
	if _, err := Assemble(src, ModeMultiscalar); err == nil {
		t.Fatal("Assemble accepted a program with a hard lint error")
	} else if !strings.Contains(err.Error(), "MS004") {
		t.Fatalf("rejection does not name the violated rule: %v", err)
	}

	// The full result still carries the report on rejection, so tools can
	// render every finding.
	res, err := AssembleOpts(src, Options{Mode: ModeMultiscalar})
	if err == nil {
		t.Fatal("AssembleOpts accepted a program with a hard lint error")
	}
	if res == nil || res.Lint == nil || !res.Lint.HasErrors() {
		t.Fatalf("rejection lost the lint report: res=%v", res)
	}

	// NoLint opts out of the gate.
	res, err = AssembleOpts(src, Options{Mode: ModeMultiscalar, NoLint: true})
	if err != nil {
		t.Fatalf("NoLint build rejected: %v", err)
	}
	if res.Lint != nil {
		t.Fatal("NoLint build still ran the linter")
	}

	// Scalar builds strip the annotations; there is no contract to check.
	if _, err := Assemble(src, ModeScalar); err != nil {
		t.Fatalf("scalar build rejected: %v", err)
	}

	// A contract-clean program passes the gate and carries a clean report.
	clean := `
main:
	li $s0, 1 !f
	j next !s
next:
	addi $s0, $s0, 0
	li $v0, 10
	li $a0, 0
	syscall
.task main targets=next create=$s0
.task next
`
	res, err = AssembleOpts(clean, Options{Mode: ModeMultiscalar})
	if err != nil {
		t.Fatalf("clean program rejected: %v", err)
	}
	if res.Lint == nil || len(res.Lint.Diags) != 0 {
		t.Fatalf("clean program carries findings:\n%s", res.Lint)
	}
	// The line table covers every emitted instruction.
	for i := range res.Prog.Text {
		addr := isa.TextBase + uint32(i)*isa.InstrSize
		if res.Lines[addr] == 0 {
			t.Errorf("no source line for instruction at 0x%x", addr)
		}
	}
}
