package serve

import (
	"context"
	"sync"
)

// fairQueue admits job executions under two bounds: a global worker-slot
// count (so the engine never oversubscribes the simulator pool) and a
// per-client in-flight bound, with round-robin selection across clients.
// A client that floods thousands of requests gets queued behind its own
// bound while other clients' jobs keep being admitted — no one starves.
// Only cache misses pass through the queue: hits and coalesced
// duplicates are answered without consuming a slot.
type fairQueue struct {
	mu        sync.Mutex
	slots     int // free global worker slots
	perClient int // max in-flight executions per client

	clients map[string]*clientQ
	ring    []*clientQ // round-robin order over clients with state
	next    int        // ring index to consider first at the next dispatch
	depth   int        // total queued tickets
	running int        // admitted, not yet released
}

type clientQ struct {
	id       string
	pending  []*ticket
	inflight int
}

type ticket struct {
	admitted chan struct{}
	gone     bool // cancelled; skip on dispatch
}

func newFairQueue(slots, perClient int) *fairQueue {
	if slots < 1 {
		slots = 1
	}
	if perClient < 1 {
		perClient = 1
	}
	return &fairQueue{
		slots:     slots,
		perClient: perClient,
		clients:   map[string]*clientQ{},
	}
}

// acquire blocks until the client is granted an execution slot or ctx is
// done. Every successful acquire must be paired with a release.
func (q *fairQueue) acquire(ctx context.Context, client string) error {
	q.mu.Lock()
	cq := q.clients[client]
	if cq == nil {
		cq = &clientQ{id: client}
		q.clients[client] = cq
		q.ring = append(q.ring, cq)
	}
	t := &ticket{admitted: make(chan struct{})}
	cq.pending = append(cq.pending, t)
	q.depth++
	q.dispatchLocked()
	q.mu.Unlock()

	select {
	case <-t.admitted:
		return nil
	case <-ctx.Done():
		q.mu.Lock()
		select {
		case <-t.admitted:
			// Admitted while cancelling: give the slot back.
			q.releaseLocked(cq)
			q.mu.Unlock()
			return ctx.Err()
		default:
		}
		t.gone = true
		q.mu.Unlock()
		return ctx.Err()
	}
}

// release returns the slot an acquire granted.
func (q *fairQueue) release(client string) {
	q.mu.Lock()
	if cq := q.clients[client]; cq != nil {
		q.releaseLocked(cq)
	}
	q.mu.Unlock()
}

func (q *fairQueue) releaseLocked(cq *clientQ) {
	cq.inflight--
	q.running--
	q.slots++
	q.dispatchLocked()
	q.pruneLocked()
}

// dispatchLocked hands out free slots round-robin: starting after the
// last admitted client, the first client with pending work under its
// in-flight bound wins each slot.
func (q *fairQueue) dispatchLocked() {
	for q.slots > 0 && len(q.ring) > 0 {
		admitted := false
		for i := 0; i < len(q.ring); i++ {
			pos := (q.next + i) % len(q.ring)
			cq := q.ring[pos]
			q.dropGoneLocked(cq)
			if len(cq.pending) == 0 || cq.inflight >= q.perClient {
				continue
			}
			t := cq.pending[0]
			cq.pending = cq.pending[1:]
			q.depth--
			cq.inflight++
			q.running++
			q.slots--
			q.next = (pos + 1) % len(q.ring)
			close(t.admitted)
			admitted = true
			break
		}
		if !admitted {
			return
		}
	}
}

// dropGoneLocked discards cancelled tickets at the head of the queue.
func (q *fairQueue) dropGoneLocked(cq *clientQ) {
	for len(cq.pending) > 0 && cq.pending[0].gone {
		cq.pending = cq.pending[1:]
		q.depth--
	}
}

// pruneLocked forgets clients with no pending or in-flight work, so the
// ring stays proportional to *active* clients, not everyone ever seen.
func (q *fairQueue) pruneLocked() {
	keep := q.ring[:0]
	for _, cq := range q.ring {
		q.dropGoneLocked(cq)
		if len(cq.pending) == 0 && cq.inflight == 0 {
			delete(q.clients, cq.id)
			continue
		}
		keep = append(keep, cq)
	}
	if len(keep) != len(q.ring) {
		q.ring = keep
		if len(keep) == 0 {
			q.next = 0
		} else {
			q.next %= len(keep)
		}
	}
}

// queueDepth reports pending (not yet admitted) executions.
func (q *fairQueue) queueDepth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.depth
}

// inFlight reports admitted, unreleased executions.
func (q *fairQueue) inFlight() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.running
}
