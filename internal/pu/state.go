package pu

import (
	"multiscalar/internal/interp"
	"multiscalar/internal/snapshot"
)

// Snapshot support. Instruction pointers in the fetch queue and the
// window are serialized as addresses and re-resolved against the
// program at load, so a snapshot carries no program text. The trace
// bookkeeping (taskSeq, firstIssued, activity dedup) is included:
// restoring a run that has a sink attached must emit the exact event
// stream the uninterrupted run would.

func saveValue(e *snapshot.Encoder, v interp.Value) {
	e.U32(v.I)
	e.F64(v.F)
}

func loadValue(d *snapshot.Decoder) interp.Value {
	return interp.Value{I: d.U32(), F: d.F64()}
}

// SaveState serializes the unit's full pipeline state.
func (u *Unit) SaveState(e *snapshot.Encoder) {
	e.Tag("UNIT")
	e.Bool(u.active)
	e.U32(u.pc)
	e.Bool(u.fetchStopped)
	e.Len(len(u.fetchQ))
	for _, f := range u.fetchQ {
		e.U32(f.addr)
		e.U32(f.predictedNext)
	}
	e.U64(u.fetchReady)
	e.U32(u.fetchGroup)

	e.Len(len(u.rob))
	for i := range u.rob {
		r := &u.rob[i]
		e.U32(r.addr)
		e.U8(uint8(r.state))
		e.U64(r.doneAt)
		saveValue(e, r.val)
		e.Bool(r.fcc)
		e.Bool(r.setFCC)
		e.U32(r.predictedNext)
		e.U32(r.actualNext)
		e.Bool(r.taken)
		e.Bool(r.stopHit)
		e.Bool(r.memDone)
		e.Bool(r.fwded)
	}
	e.U64(u.nextDone)
	e.Bool(u.committedFCC)

	e.Bool(u.done)
	e.U32(u.exitPC)
	e.Bool(u.exitByRet)

	e.U64(u.Retired)
	for _, c := range u.ActCounts {
		e.U64(c)
	}
	e.Bool(u.waitingExt)
	e.Int(u.issuedNow)
	e.Int(u.retiredNow)
	e.U64(u.startCycle)
	e.U8(uint8(u.lastAct))
	e.Bool(u.progressed)

	e.I32(u.taskSeq)
	e.Bool(u.firstIssued)
	e.U8(uint8(u.emitAct))
	e.Bool(u.emitActSet)

	u.bp.SaveState(e)
}

// LoadState restores the unit into one constructed with the same
// configuration and program.
func (u *Unit) LoadState(d *snapshot.Decoder) {
	d.Tag("UNIT")
	u.active = d.Bool()
	u.pc = d.U32()
	u.fetchStopped = d.Bool()
	nq := d.Len(u.cfg.FetchQSize)
	u.fetchQ = u.fetchQBuf[:0]
	for i := 0; i < nq; i++ {
		f := fetchedInstr{addr: d.U32(), predictedNext: d.U32()}
		if d.Err() != nil {
			return
		}
		if f.instr = u.prog.InstrAt(f.addr); f.instr == nil {
			d.Failf("pu%d: fetched address 0x%x outside text", u.ID, f.addr)
			return
		}
		u.fetchQ = append(u.fetchQ, f)
	}
	u.fetchReady = d.U64()
	u.fetchGroup = d.U32()

	nr := d.Len(u.cfg.ROBSize)
	u.rob = u.robBuf[:0]
	for i := 0; i < nr; i++ {
		var r robEntry
		r.addr = d.U32()
		r.state = robState(d.U8())
		r.doneAt = d.U64()
		r.val = loadValue(d)
		r.fcc = d.Bool()
		r.setFCC = d.Bool()
		r.predictedNext = d.U32()
		r.actualNext = d.U32()
		r.taken = d.Bool()
		r.stopHit = d.Bool()
		r.memDone = d.Bool()
		r.fwded = d.Bool()
		if d.Err() != nil {
			return
		}
		if r.instr = u.prog.InstrAt(r.addr); r.instr == nil {
			d.Failf("pu%d: window address 0x%x outside text", u.ID, r.addr)
			return
		}
		u.rob = append(u.rob, r)
	}
	// Not serialized: conservatively assume the restored window may hold
	// a completed entry awaiting an early forward (a stale-true flag only
	// costs one scan, so restored runs stay bit-identical).
	u.fwdPending = len(u.rob) > 0
	u.nextDone = d.U64()
	u.committedFCC = d.Bool()

	u.done = d.Bool()
	u.exitPC = d.U32()
	u.exitByRet = d.Bool()

	u.Retired = d.U64()
	for i := range u.ActCounts {
		u.ActCounts[i] = d.U64()
	}
	u.waitingExt = d.Bool()
	u.issuedNow = d.Int()
	u.retiredNow = d.Int()
	u.startCycle = d.U64()
	u.lastAct = Activity(d.U8())
	u.progressed = d.Bool()
	if u.lastAct >= NumActivities {
		d.Failf("pu%d: activity %d out of range", u.ID, u.lastAct)
		u.lastAct = ActIdle
	}

	u.taskSeq = d.I32()
	u.firstIssued = d.Bool()
	u.emitAct = Activity(d.U8())
	u.emitActSet = d.Bool()
	if u.emitAct >= NumActivities {
		d.Failf("pu%d: emit activity %d out of range", u.ID, u.emitAct)
		u.emitAct = ActIdle
	}

	u.bp.LoadState(d)
}
