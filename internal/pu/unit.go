// Package pu implements one processing unit: a 5-stage (IF/ID/EX/MEM/WB)
// pipeline configurable as 1-way or 2-way issue, in-order or out-of-order
// (Section 5.1 of the paper), with out-of-order completion, pipelined
// functional units at Table 1 latencies, non-blocking memory operations,
// and per-unit branch prediction.
//
// The same Unit type is the scalar baseline processor and each of the
// parallel units of a multiscalar processor — the paper's speedups compare
// "identical processing units". Everything outside the unit (register
// file semantics, memory hierarchy, ARB, syscalls) is reached through the
// Ext interface, which is where the scalar and multiscalar machines
// differ.
package pu

import (
	"fmt"

	"multiscalar/internal/interp"
	"multiscalar/internal/isa"
	"multiscalar/internal/predict"
	"multiscalar/internal/trace"
)

// Ext is the unit's view of the rest of the machine.
type Ext interface {
	// ReadReg reads an architectural register. ready=false means the
	// register is reserved (an accum-mask reservation whose value has not
	// arrived on the ring yet) — the consuming instruction must wait.
	ReadReg(now uint64, r isa.Reg) (v interp.Value, ready bool)
	// WriteReg updates the unit's register file at local retire.
	WriteReg(r isa.Reg, v interp.Value)
	// Forward routes a produced value to successor units (forward bit or
	// release, Section 2.2). Values are sent once per register per task.
	Forward(now uint64, r isa.Reg, v interp.Value)
	// Load performs a (possibly speculative) load at execute time.
	// ok=false means the operation must retry next cycle (ARB overflow).
	Load(now uint64, op isa.Op, addr uint32) (v interp.Value, done uint64, ok bool)
	// Store performs a speculative store at execute time.
	Store(now uint64, op isa.Op, addr uint32, v interp.Value) (done uint64, ok bool)
	// FetchDone returns the cycle at which the 4-word fetch group at
	// groupAddr is available from the instruction cache.
	FetchDone(now uint64, groupAddr uint32) uint64
	// Syscall executes a system call at local retire. handled=false means
	// the unit must stall the syscall (it is not the head yet). v0/writesV0
	// carry the result register update.
	Syscall(now uint64) (v0 uint32, writesV0 bool, handled bool, err error)
}

// NoEvent is NextEvent's sentinel: the unit cannot make progress on its
// own — only an external action (a task assignment, a predecessor's
// retirement, a ring delivery) can change its state.
const NoEvent = ^uint64(0)

// SharedFUs is an optional extension of Ext: when the environment
// implements it, the unit asks permission before starting an operation on
// a shared functional-unit class. This models the alternative
// microarchitecture of Section 2.3 in which expensive units (floating
// point, complex integer) are shared between the processing units rather
// than replicated.
type SharedFUs interface {
	ClaimSharedFU(now uint64, class isa.FUClass) bool
}

// Config selects the unit microarchitecture.
type Config struct {
	IssueWidth    int // 1 or 2
	OutOfOrder    bool
	ROBSize       int
	FetchQSize    int
	Latencies     isa.Latencies
	BranchEntries int // bimodal predictor entries (power of two)

	// Sink, when non-nil, receives the unit's pipeline events: activity
	// reclassifications (KUnitActivity, with window occupancy), the first
	// issue of each activation (KTaskFirstIssue), and local task
	// completion (KTaskComplete). The owner labels activations with
	// SetTraceTask.
	Sink trace.Sink
}

// DefaultConfig returns the paper's processing unit: selectable issue
// width and ordering, 16-entry window, Table 1 latencies.
func DefaultConfig(width int, outOfOrder bool) Config {
	return Config{
		IssueWidth:    width,
		OutOfOrder:    outOfOrder,
		ROBSize:       16,
		FetchQSize:    8,
		Latencies:     isa.Table1(),
		BranchEntries: 2048,
	}
}

type robState uint8

const (
	stDispatched robState = iota
	stIssued
	stDone
)

type robEntry struct {
	addr  uint32
	instr *isa.Instr
	state robState

	doneAt uint64 // cycle the result is available (valid in stIssued/stDone)
	val    interp.Value
	fcc    bool
	setFCC bool

	predictedNext uint32 // fetch-time prediction of the following PC
	actualNext    uint32 // resolved at execute
	taken         bool

	stopHit bool // stop condition satisfied (task exit) — final at execute
	memDone bool // memory operation has accessed the ARB/cache
	fwded   bool // value already sent on the ring (operate-and-forward)
}

type fetchedInstr struct {
	addr          uint32
	instr         *isa.Instr
	predictedNext uint32
}

// Activity classifies what a unit did in one cycle, for the Section 3
// cycle-distribution accounting.
type Activity uint8

const (
	ActIdle       Activity = iota // no task assigned
	ActCompute                    // issued and/or retired work
	ActWaitPred                   // blocked on a value from a predecessor task
	ActWaitIntra                  // blocked on intra-task dependence / FU / cache
	ActWaitRetire                 // task complete, waiting to reach the head
	NumActivities
)

var activityNames = [NumActivities]string{"idle", "compute", "wait-pred", "wait-intra", "wait-retire"}

func (a Activity) String() string { return activityNames[a] }

// Unit is one processing unit.
type Unit struct {
	ID     int
	cfg    Config
	ext    Ext
	shared SharedFUs // non-nil when the machine shares FP/complex units
	bp     *predict.BranchPredictor

	prog *isa.Program

	active bool

	// Fetch state. fetchQ is a sliding window into fetchQBuf (queue.go):
	// pops advance the window, qpush compacts only at the buffer's end.
	pc           uint32
	fetchStopped bool
	fetchQ       []fetchedInstr
	fetchQBuf    []fetchedInstr
	fetchReady   uint64 // icache availability for the current group
	fetchGroup   uint32 // group address being fetched (^0 = none)

	// Window. rob slides over robBuf the same way as the fetch queue.
	rob    []robEntry
	robBuf []robEntry
	// fwdPending is true whenever the window may hold a completed entry
	// that still wants an early forward (release or forward bit), so
	// forwardEarly can skip its window scan on the common cycle where
	// nothing is forwardable. Stale-true after a flush or squash only
	// costs one wasted scan; it is never stale-false (complete is the
	// only place entries become done, and it raises the flag).
	fwdPending bool
	// nextDone is a lower bound on the earliest doneAt of any issued
	// entry (^0 when none), so complete can skip its ROB scan on cycles
	// where nothing can finish. Entry removal (retire, flush, squash) may
	// leave it stale-low, which only costs a wasted scan.
	nextDone uint64

	committedFCC bool

	// Task completion.
	done      bool
	exitPC    uint32
	exitByRet bool

	// Per-activation stats (folded into global stats by the owner at
	// retire or squash).
	Retired    uint64 // locally retired instructions this activation
	ActCounts  [NumActivities]uint64
	waitingExt bool // an issue was blocked on Ext.ReadReg this cycle
	issuedNow  int
	retiredNow int
	startCycle uint64
	lastAct    Activity

	// progressed records whether the last Tick changed any state — unit
	// pipeline state or, through the Ext, the machine's (a forward, a
	// cache or ARB access). A cycle in which no unit progressed and the
	// sequencer did nothing is a pure stall cycle: every subsequent cycle
	// is provably identical until the next latched timestamp fires, which
	// is what lets the wakeup scheduler skip ahead (docs/perf.md).
	progressed bool

	// Tracing. taskSeq labels events with the owner-assigned task
	// sequence number; emitAct deduplicates KUnitActivity events so one
	// is emitted only when the classification changes.
	sink        trace.Sink
	taskSeq     int32
	firstIssued bool
	emitAct     Activity
	emitActSet  bool
}

// LastActivity reports how the most recent Tick was classified (for
// tracing).
func (u *Unit) LastActivity() Activity { return u.lastAct }

// New builds a unit over a program image.
func New(id int, cfg Config, prog *isa.Program, ext Ext) *Unit {
	if cfg.IssueWidth < 1 {
		cfg.IssueWidth = 1
	}
	if cfg.ROBSize == 0 {
		cfg.ROBSize = 16
	}
	if cfg.FetchQSize == 0 {
		cfg.FetchQSize = 8
	}
	if cfg.BranchEntries == 0 {
		cfg.BranchEntries = 2048
	}
	u := &Unit{
		ID:   id,
		cfg:  cfg,
		ext:  ext,
		bp:   predict.NewBranchPredictor(cfg.BranchEntries),
		prog: prog,
		// Backing buffers oversized so head pops amortize to O(1)
		// (queue.go); the windows start at the front.
		fetchQBuf: make([]fetchedInstr, queueSlack*cfg.FetchQSize),
		robBuf:    make([]robEntry, queueSlack*cfg.ROBSize),

		sink:    cfg.Sink,
		taskSeq: -1,
	}
	u.fetchQ = u.fetchQBuf[:0]
	u.rob = u.robBuf[:0]
	if s, ok := ext.(SharedFUs); ok {
		u.shared = s
	}
	return u
}

// BranchPredictor exposes the unit's branch predictor (persistent
// hardware: it survives task reassignment).
func (u *Unit) BranchPredictor() *predict.BranchPredictor { return u.bp }

// Active reports whether a task is assigned.
func (u *Unit) Active() bool { return u.active }

// Done reports whether the assigned task has completed (all instructions
// locally retired and the stop condition reached).
func (u *Unit) Done() bool { return u.done }

// ExitPC returns the address execution continues at after this task.
func (u *Unit) ExitPC() uint32 { return u.exitPC }

// ExitByReturn reports whether the task exited through a jr (return).
func (u *Unit) ExitByReturn() bool { return u.exitByRet }

// Start assigns a task (or, for the scalar machine, the program) starting
// at entry.
func (u *Unit) Start(entry uint32, now uint64) {
	u.active = true
	u.pc = entry
	u.fetchStopped = false
	u.fetchQ = u.fetchQBuf[:0]
	u.fetchGroup = ^uint32(0)
	u.fetchReady = 0
	u.rob = u.robBuf[:0]
	u.nextDone = ^uint64(0)
	u.done = false
	u.exitPC = 0
	u.exitByRet = false
	u.Retired = 0
	u.ActCounts = [NumActivities]uint64{}
	u.startCycle = now
	u.committedFCC = false
	u.firstIssued = false
	u.bp.ClearRAS()
}

// SeedFCC sets the committed floating-point condition flag. Start
// clears it, which is correct for multiscalar task assignment (FCC is
// not carried across task boundaries by the machine design), but the
// scalar machine resuming mid-program from warm state needs the
// functional machine's FCC seeded after Start.
func (u *Unit) SeedFCC(v bool) { u.committedFCC = v }

// SetTraceTask labels this unit's subsequent trace events with the
// owner-assigned task sequence number (-1 when idle).
func (u *Unit) SetTraceTask(seq int32) { u.taskSeq = seq }

// emitActivity emits a KUnitActivity event when the cycle classification
// changes (the classification holds until the next event, so the stream
// is a run-length encoding of each unit's occupancy timeline).
func (u *Unit) emitActivity(now uint64, act Activity) {
	if u.emitActSet && act == u.emitAct {
		return
	}
	u.emitAct, u.emitActSet = act, true
	u.sink.Emit(trace.Event{Cycle: now, Kind: trace.KUnitActivity, Unit: int8(u.ID),
		Task: u.taskSeq, Arg: uint32(act), Arg2: uint64(len(u.rob))})
}

// Squash deactivates the unit, discarding all in-flight state.
func (u *Unit) Squash() {
	u.active = false
	u.fetchQ = u.fetchQBuf[:0]
	u.rob = u.robBuf[:0]
	u.nextDone = ^uint64(0)
	u.done = false
}

// Tick advances the unit by one cycle. It returns the number of
// instructions locally retired this cycle and any fatal error.
func (u *Unit) Tick(now uint64) (int, error) {
	u.progressed = false
	if !u.active {
		u.ActCounts[ActIdle]++
		u.lastAct = ActIdle
		if u.sink != nil {
			u.emitActivity(now, ActIdle)
		}
		return 0, nil
	}
	u.waitingExt = false
	u.issuedNow = 0
	u.retiredNow = 0

	u.complete(now)
	u.forwardEarly(now)
	if err := u.retire(now); err != nil {
		return u.retiredNow, err
	}
	if err := u.issue(now); err != nil {
		return u.retiredNow, err
	}
	u.dispatch(now)
	u.fetch(now)
	if u.issuedNow > 0 || u.retiredNow > 0 {
		u.progressed = true
	}

	u.lastAct = u.classify()
	u.ActCounts[u.lastAct]++
	if u.sink != nil {
		if !u.firstIssued && u.issuedNow > 0 {
			u.firstIssued = true
			u.sink.Emit(trace.Event{Cycle: now, Kind: trace.KTaskFirstIssue,
				Unit: int8(u.ID), Task: u.taskSeq})
		}
		u.emitActivity(now, u.lastAct)
	}
	return u.retiredNow, nil
}

func (u *Unit) classify() Activity {
	switch {
	case u.issuedNow > 0 || u.retiredNow > 0:
		return ActCompute
	case u.done:
		return ActWaitRetire
	case u.waitingExt:
		return ActWaitPred
	default:
		return ActWaitIntra
	}
}

// Progressed reports whether the last Tick changed any state. The wakeup
// scheduler only considers skipping after a cycle in which no unit
// progressed (and the sequencer did nothing).
func (u *Unit) Progressed() bool { return u.progressed }

// WaitingExt reports whether the last Tick blocked an issue on an
// external register read (Ext.ReadReg not ready). The owning machine
// translates this into a wakeup time from its register-file delivery
// timing, which the unit cannot see.
func (u *Unit) WaitingExt() bool { return u.waitingExt }

// NextEvent returns the earliest future cycle at which this unit's state
// can change on its own: the earliest in-flight completion (nextDone) or
// the instruction-cache fill the fetch stage is waiting on. NoEvent
// means the unit is fully blocked on external action — an assignment, a
// predecessor's retirement or syscall turn at the head, or a ring
// delivery (see WaitingExt). Waking early is always safe — the dense
// tick re-derives everything — so the scheduler relies only on the
// result never being later than the unit's true next state change;
// nextDone may be stale-low after entry removal, which just costs an
// early wake.
func (u *Unit) NextEvent(now uint64) uint64 {
	if !u.active || u.done {
		return NoEvent
	}
	t := NoEvent
	if u.nextDone > now {
		t = u.nextDone
	}
	if !u.fetchStopped && u.fetchReady > now && u.fetchReady < t {
		t = u.fetchReady
	}
	return t
}

// AddStallCycles bulk-accounts k cycles identical to the unit's last
// ticked cycle. The wakeup scheduler calls this instead of ticking the
// unit through a window it has proven unchanging, so the per-activity
// counters match the dense loop bit for bit (a stalled cycle's
// classification cannot change until some latched timestamp fires).
func (u *Unit) AddStallCycles(k uint64) { u.ActCounts[u.lastAct] += k }

// complete transitions issued entries whose latency has elapsed to done,
// handling branch resolution and local mis-speculation recovery.
func (u *Unit) complete(now uint64) {
	if now < u.nextDone {
		return
	}
	next := ^uint64(0)
	for i := 0; i < len(u.rob); i++ {
		e := &u.rob[i]
		if e.state != stIssued || e.doneAt > now {
			if e.state == stIssued && e.doneAt < next {
				next = e.doneAt
			}
			continue
		}
		e.state = stDone
		u.progressed = true
		if in := e.instr; in.Op == isa.OpRelease || (in.Fwd && in.Dest() != isa.RegZero) {
			u.fwdPending = true
		}
		// Control resolution: flush younger work on a wrong path.
		if e.instr.Op.IsControl() || e.stopResolvable() {
			if e.actualNext != e.predictedNext {
				u.flushAfter(i, e.actualNext, e.stopHit)
			} else if e.stopHit && !u.fetchStopped {
				// Predicted path continued past a satisfied stop
				// condition (e.g. StopAlways known only at execute for a
				// jr): cut fetch.
				u.flushAfter(i, e.actualNext, true)
			}
		}
	}
	u.nextDone = next
}

// stopResolvable reports whether this entry can end the task.
func (e *robEntry) stopResolvable() bool { return e.instr.Stop != isa.StopNone }

// forwardEarly implements the paper's operate-and-forward semantics: a
// completed instruction with the forward bit (or a release) sends its
// value on the ring as soon as it is locally non-speculative — every
// older instruction that could redirect control or end the task has
// resolved the same way the fetch predicted. Otherwise the forward
// happens at local retire.
func (u *Unit) forwardEarly(now uint64) {
	if !u.fwdPending {
		return
	}
	safe := true
	for i := 0; i < len(u.rob); i++ {
		e := &u.rob[i]
		if !safe {
			return // blocked entries may still be pending: keep the flag
		}
		if e.state == stDone && !e.fwded {
			in := e.instr
			switch {
			case in.Op == isa.OpRelease:
				u.ext.Forward(now, in.Rs, e.val)
				e.fwded = true
				u.progressed = true
			case in.Fwd && in.Dest() != isa.RegZero:
				u.ext.Forward(now, in.Dest(), e.val)
				e.fwded = true
				u.progressed = true
			}
		}
		// Anything that can redirect or end the task blocks younger
		// forwards until it resolves on the predicted path.
		if in := e.instr; in.Op.IsControl() || in.Stop != isa.StopNone {
			if e.state != stDone || e.stopHit || e.actualNext != e.predictedNext {
				safe = false
			}
		}
		if e.instr.Op == isa.OpSyscall && e.state != stDone {
			safe = false
		}
	}
	// The scan covered the whole window with every older redirect
	// resolved, so everything forwardable has been sent.
	u.fwdPending = false
}

// flushAfter discards all entries younger than index i and redirects
// fetch. If stopped, the task is complete at entry i and no further fetch
// happens.
func (u *Unit) flushAfter(i int, nextPC uint32, stopped bool) {
	u.rob = u.rob[:i+1]
	u.fetchQ = u.fetchQBuf[:0]
	u.fetchGroup = ^uint32(0)
	u.fetchStopped = stopped
	if !stopped {
		u.pc = nextPC
	}
}

// retire commits done entries from the ROB head, in order, up to the
// issue width.
func (u *Unit) retire(now uint64) error {
	n := 0
	for n < u.cfg.IssueWidth && len(u.rob) > 0 {
		e := &u.rob[0]
		if e.state != stDone {
			break
		}
		in := e.instr

		if in.Op == isa.OpSyscall {
			v0, writes, handled, err := u.ext.Syscall(now)
			if err != nil {
				return fmt.Errorf("pu%d @0x%x: %w", u.ID, e.addr, err)
			}
			if !handled {
				break // not the head yet: syscalls are non-speculative
			}
			if writes {
				u.ext.WriteReg(isa.RegV0, interp.IntVal(v0))
			}
		} else {
			if d := in.Dest(); d != isa.RegZero {
				u.ext.WriteReg(d, e.val)
				if in.Fwd && !e.fwded {
					u.ext.Forward(now, d, e.val)
				}
			}
			if e.setFCC {
				u.committedFCC = e.fcc
			}
			if in.Op == isa.OpRelease && !e.fwded {
				u.ext.Forward(now, in.Rs, e.val)
			}
		}

		u.Retired++
		u.retiredNow++
		n++
		stop := e.stopHit
		exitPC := e.actualNext
		byRet := in.Op == isa.OpJr
		u.rob = u.rob[1:] // head pop: the window slides, nothing moves
		if stop {
			u.done = true
			u.exitPC = exitPC
			u.exitByRet = byRet
			u.rob = u.robBuf[:0]
			u.fetchQ = u.fetchQBuf[:0]
			u.fetchStopped = true
			if u.sink != nil {
				u.sink.Emit(trace.Event{Cycle: now, Kind: trace.KTaskComplete,
					Unit: int8(u.ID), Task: u.taskSeq, Arg: exitPC})
			}
			break
		}
	}
	return nil
}
