// Tests for the annotation optimizer: unit cases on hand-built programs
// (mask tightening, release insertion, skip behavior), a certification
// pass holding every bundled workload's rewrite to the functional oracle
// and the lint gate, and the headline property — the tightened extras
// place measurably fewer values on the forwarding ring.
package annotate_test

import (
	"strings"
	"testing"

	"multiscalar/internal/annotate"
	"multiscalar/internal/asm"
	"multiscalar/internal/core"
	"multiscalar/internal/interp"
	"multiscalar/internal/isa"
	"multiscalar/internal/mslint"
	"multiscalar/internal/workloads"
)

// runInterp executes a program on the functional oracle.
func runInterp(t *testing.T, p *isa.Program) (string, int32, uint64) {
	t.Helper()
	env := interp.NewSysEnv()
	m := interp.NewMachine(p, env)
	if err := m.Run(100_000_000); err != nil {
		t.Fatalf("interp: %v", err)
	}
	return env.Out.String(), env.ExitCode, m.ICount
}

// runCore executes a program on the timing simulator and returns the
// result after checking it against the oracle reference.
func runCore(t *testing.T, p *isa.Program, wantOut string) *core.Result {
	t.Helper()
	env := interp.NewSysEnv()
	m, err := core.NewMultiscalar(p, env, core.DefaultConfig(4, 1, false))
	if err != nil {
		t.Fatalf("core: %v", err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatalf("core run: %v", err)
	}
	if res.Out != wantOut {
		t.Fatalf("timing output diverged from oracle: %q vs %q", res.Out, wantOut)
	}
	return res
}

// TestPassThroughDrop: a create-mask register the task never writes
// (MS017) is dropped, and the .task directive line is rewritten.
func TestPassThroughDrop(t *testing.T) {
	src := `
main:
	li $s0, 1 !f
	j next !s
next:
	add $a0, $s0, $s1
	li $v0, 10
	li $a0, 0
	syscall
.task main targets=next create=$s0,$s1
.task next
`
	newSrc, plan, err := annotate.RewriteSource(src)
	if err != nil {
		t.Fatalf("rewrite: %v", err)
	}
	var mainPlan *annotate.TaskPlan
	for _, tp := range plan.Tasks {
		if tp.TD.Name == "main" {
			mainPlan = tp
		}
	}
	if mainPlan == nil || !mainPlan.Drops.Has(isa.RegS0+1) {
		t.Fatalf("expected $s1 dropped from main, plan:\n%s", plan)
	}
	if !strings.Contains(newSrc, "create=$s0\n") || strings.Contains(newSrc, "create=$s0,$s1") {
		t.Fatalf("create mask not rewritten:\n%s", newSrc)
	}
	res, err := asm.AssembleOpts(newSrc, asm.Options{Mode: asm.ModeMultiscalar})
	if err != nil {
		t.Fatalf("rewritten source: %v", err)
	}
	if rep := mslint.Lint(res.Prog, res.Lines); len(rep.Diags) != 0 {
		t.Fatalf("rewritten source not lint-clean:\n%s", rep)
	}
}

// TestReleaseInsertion: a path that skips a create-mask register's only
// write (MS003 on the input) gains a release at the head of the exit
// block, and the warning disappears.
func TestReleaseInsertion(t *testing.T) {
	src := `
main:
	li $s0, 1 !f
	li $s6, 7 !f
	j t !s
t:
	bnez $s0, skip
	li $s6, 42 !f
skip:
	j out !s
out:
	add $a0, $s6, $zero
	li $v0, 1
	syscall
	li $v0, 10
	li $a0, 0
	syscall
.task main targets=t create=$s0,$s6
.task t targets=out create=$s6
.task out
`
	in, err := asm.AssembleOpts(src, asm.Options{Mode: asm.ModeMultiscalar, NoLint: true})
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	hadFlushOnly := false
	for _, d := range mslint.Lint(in.Prog, in.Lines).Diags {
		if d.Code == mslint.CodeFlushOnly {
			hadFlushOnly = true
		}
	}
	if !hadFlushOnly {
		t.Fatalf("test premise broken: input has no MS003")
	}

	newSrc, _, err := annotate.RewriteSource(src)
	if err != nil {
		t.Fatalf("rewrite: %v", err)
	}
	if !strings.Contains(newSrc, ".msonly release $s6") {
		t.Fatalf("no release inserted:\n%s", newSrc)
	}
	res, err := asm.AssembleOpts(newSrc, asm.Options{Mode: asm.ModeMultiscalar})
	if err != nil {
		t.Fatalf("rewritten source: %v", err)
	}
	if rep := mslint.Lint(res.Prog, res.Lines); len(rep.Diags) != 0 {
		t.Fatalf("rewritten source not lint-clean:\n%s", rep)
	}
	wantOut, _, _ := runInterp(t, in.Prog)
	gotOut, _, _ := runInterp(t, res.Prog)
	if wantOut != gotOut {
		t.Fatalf("output changed: %q vs %q", wantOut, gotOut)
	}
}

// TestSkipUnanalyzable: a task whose region the walk cannot analyze (an
// indirect jump) is left untouched.
func TestSkipUnanalyzable(t *testing.T) {
	src := `
main:
	la $t0, tgt
	jalr $ra, $t0 !s
tgt:
	li $v0, 10
	li $a0, 0
	syscall
.task main create=$t0
.task tgt
`
	res, err := asm.AssembleOpts(src, asm.Options{Mode: asm.ModeMultiscalar, NoLint: true})
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	plan := annotate.Analyze(res.Prog, annotate.Options{})
	for _, tp := range plan.Tasks {
		if tp.TD.Name == "main" {
			if tp.Skipped == "" {
				t.Fatalf("main should be skipped, plan:\n%s", plan)
			}
			if tp.Changed() {
				t.Fatalf("skipped task has edits")
			}
			return
		}
	}
	t.Fatal("no plan entry for main")
}

// TestWorkloadRewrites certifies the whole suite (extras included): the
// rewritten source of every workload re-assembles under the lint gate
// with zero findings of any severity, matches the hand-annotated build
// on the functional oracle, and leaves the scalar build byte-identical.
func TestWorkloadRewrites(t *testing.T) {
	for _, w := range workloads.AllWithExtras() {
		t.Run(w.Name, func(t *testing.T) {
			src := w.Source(w.TestScale)
			orig, err := asm.AssembleOpts(src, asm.Options{Mode: asm.ModeMultiscalar})
			if err != nil {
				t.Fatalf("assemble: %v", err)
			}
			newSrc, _, err := annotate.RewriteSource(src)
			if err != nil {
				t.Fatalf("rewrite: %v", err)
			}
			res, err := asm.AssembleOpts(newSrc, asm.Options{Mode: asm.ModeMultiscalar})
			if err != nil {
				t.Fatalf("rewritten source: %v", err)
			}
			if rep := mslint.Lint(res.Prog, res.Lines); len(rep.Diags) != 0 {
				t.Fatalf("rewritten source not lint-clean:\n%s", rep)
			}
			wantOut, wantExit, _ := runInterp(t, orig.Prog)
			gotOut, gotExit, _ := runInterp(t, res.Prog)
			if wantOut != gotOut || wantExit != gotExit {
				t.Fatalf("oracle divergence: out %d vs %d bytes, exit %d vs %d",
					len(wantOut), len(gotOut), wantExit, gotExit)
			}
			s1, err := asm.Assemble(src, asm.ModeScalar)
			if err != nil {
				t.Fatalf("scalar: %v", err)
			}
			s2, err := asm.Assemble(newSrc, asm.ModeScalar)
			if err != nil {
				t.Fatalf("scalar of rewrite: %v", err)
			}
			if len(s1.Text) != len(s2.Text) {
				t.Fatalf("scalar build changed: %d vs %d instructions", len(s1.Text), len(s2.Text))
			}
			for i := range s1.Text {
				if s1.Text[i] != s2.Text[i] {
					t.Fatalf("scalar build changed at instruction %d", i)
				}
			}
		})
	}
}

// TestRingSendReduction is the headline property: on the extras whose
// function tasks are annotated to the conservative ABI contract, the
// optimizer's refined return-liveness drops create-mask bits and the
// timing simulator places measurably fewer values on the forwarding
// ring, with identical architectural results.
func TestRingSendReduction(t *testing.T) {
	for _, name := range []string{"hashmix", "bsearch"} {
		t.Run(name, func(t *testing.T) {
			w := workloads.Get(name)
			if w == nil {
				t.Fatalf("workload %s not registered", name)
			}
			p, err := asm.Assemble(w.Source(w.TestScale), asm.ModeMultiscalar)
			if err != nil {
				t.Fatalf("assemble: %v", err)
			}
			opt, plan := annotate.Optimize(p)
			if plan.DroppedSends() == 0 {
				t.Fatalf("no create-mask bits dropped, plan:\n%s", plan)
			}
			wantOut, _, wantInstrs := runInterp(t, p)
			hand := runCore(t, p, wantOut)
			auto := runCore(t, opt, wantOut)
			if hand.Committed != wantInstrs || auto.Committed != wantInstrs {
				t.Fatalf("committed %d/%d, oracle %d", hand.Committed, auto.Committed, wantInstrs)
			}
			if auto.RingSends >= hand.RingSends {
				t.Fatalf("ring sends not reduced: hand %d, optimized %d", hand.RingSends, auto.RingSends)
			}
			// The input program must not have been touched.
			if p.TaskAt(p.Entry) == nil {
				t.Fatal("input program mutated")
			}
		})
	}
}

// TestOptimizeIdempotent: optimizing an already-optimized program plans
// no further create-mask changes.
func TestOptimizeIdempotent(t *testing.T) {
	w := workloads.Get("bsearch")
	p, err := asm.Assemble(w.Source(w.TestScale), asm.ModeMultiscalar)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	opt, _ := annotate.Optimize(p)
	_, plan2 := annotate.Optimize(opt)
	if plan2.DroppedSends() != 0 {
		t.Fatalf("second pass still drops bits:\n%s", plan2)
	}
}
