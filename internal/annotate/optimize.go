package annotate

import (
	"multiscalar/internal/isa"
)

// Apply performs the plan's binary-level edits on prog in place: create
// masks shrink to the planned minimum, planned forward bits are set,
// dead or orphaned forward bits are cleared, and dropped releases decay
// to nops (an instruction cannot be deleted from a laid-out binary, and
// a release's only architectural effect is its ring send — which the
// shrunk mask already removed). Planned release insertions need new
// instructions and are skipped; only RewriteSource encodes them.
//
// prog must be the program the plan was computed over (or a clone with
// identical text and descriptors).
func (p *Plan) Apply(prog *isa.Program) {
	for _, t := range p.Tasks {
		if t.Skipped != "" || !t.Changed() {
			continue
		}
		if td := prog.TaskAt(t.TD.Entry); td != nil {
			td.Create = t.NewCreate
		}
		for _, a := range t.AddFwd {
			if in := prog.InstrAt(a); in != nil {
				in.Fwd = true
			}
		}
		for _, a := range t.DropFwd {
			if in := prog.InstrAt(a); in != nil {
				in.Fwd = false
			}
		}
		for a := range t.DropRel {
			in := prog.InstrAt(a)
			if in == nil || in.Op != isa.OpRelease {
				continue
			}
			// Preserve the annotation bits: a stop bit on a release still
			// ends the task there.
			stop := in.Stop
			*in = isa.Instr{Op: isa.OpNop, Stop: stop}
		}
	}
}

// Clone returns a copy of prog whose text and task descriptors may be
// mutated freely. Data and symbols stay shared: nothing here writes to
// them.
func Clone(prog *isa.Program) *isa.Program {
	q := *prog
	q.Text = append([]isa.Instr(nil), prog.Text...)
	q.Tasks = make(map[uint32]*isa.TaskDescriptor, len(prog.Tasks))
	for a, td := range prog.Tasks {
		c := *td
		q.Tasks[a] = &c
	}
	return &q
}

// Optimize analyzes prog and returns an optimized clone beside the plan.
// The input program is not modified. The clone is functionally
// equivalent by construction — annotations never change architectural
// results, only timing — and the tests hold it to the interpreter
// oracle anyway.
func Optimize(prog *isa.Program) (*isa.Program, *Plan) {
	plan := Analyze(prog, Options{})
	out := Clone(prog)
	plan.Apply(out)
	return out, plan
}
