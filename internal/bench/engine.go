package bench

import (
	"runtime"
	"sync"
	"sync/atomic"

	"multiscalar/internal/asm"
	"multiscalar/internal/core"
	"multiscalar/internal/interp"
	"multiscalar/internal/isa"
	"multiscalar/internal/workloads"
)

// The harness fans independent simulation jobs (one per workload ×
// configuration point) out over a bounded worker pool. Results land in
// index-addressed slices, so formatted tables are byte-identical to the
// sequential path regardless of completion order.

var workers atomic.Int64

func init() { workers.Store(int64(runtime.GOMAXPROCS(0))) }

// SetWorkers bounds the number of concurrent simulation jobs. 1 forces
// the fully sequential path (the msbench -seq flag); values above
// GOMAXPROCS buy nothing but are harmless.
func SetWorkers(n int) {
	if n < 1 {
		n = 1
	}
	workers.Store(int64(n))
}

// Workers returns the current job-pool bound.
func Workers() int { return int(workers.Load()) }

// runJobs runs fn(0..n-1), fanning out across the worker pool. Each fn
// writes its result into its own slot of a caller-owned slice; runJobs
// returns the lowest-index error so failures are deterministic too.
func runJobs(n int, fn func(i int) error) error {
	w := Workers()
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	sem := make(chan struct{}, w)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		sem <- struct{}{}
		wg.Add(1)
		go func(i int) {
			defer func() { <-sem; wg.Done() }()
			errs[i] = fn(i)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Oracle is the functional-simulator reference for one binary: the
// dynamic instruction counts Table 2 reports and the output every timing
// run must reproduce.
type Oracle struct {
	ICount                  uint64
	Loads, Stores, Branches uint64
	Out                     string
}

type buildKey struct {
	name  string
	mode  asm.Mode
	scale int
}

type buildEntry struct {
	once   sync.Once
	prog   *isa.Program
	oracle Oracle
	err    error
}

var (
	memoMu sync.Mutex
	memo   = map[buildKey]*buildEntry{}

	// buildsPerformed counts actual assemble+oracle executions (not memo
	// hits) — observability for tests and the JSON report.
	buildsPerformed atomic.Uint64
)

// buildOracle assembles workload w in the given mode and runs the
// functional oracle over it, memoized per (workload, mode, resolved
// scale) for the life of the process. Concurrent first requests
// single-flight: exactly one goroutine builds, the rest wait and share
// the result. The returned Program is shared and must not be mutated —
// clone (cloneProgram) before transforming it.
func buildOracle(w *workloads.Workload, mode asm.Mode, scale Scale) (*isa.Program, Oracle, error) {
	key := buildKey{name: w.Name, mode: mode, scale: scale.of(w)}
	memoMu.Lock()
	e := memo[key]
	if e == nil {
		e = &buildEntry{}
		memo[key] = e
	}
	memoMu.Unlock()
	e.once.Do(func() {
		buildsPerformed.Add(1)
		e.prog, e.oracle, e.err = buildAndRun(w, mode, key.scale)
	})
	return e.prog, e.oracle, e.err
}

func buildAndRun(w *workloads.Workload, mode asm.Mode, scale int) (*isa.Program, Oracle, error) {
	p, err := w.Build(mode, scale)
	if err != nil {
		return nil, Oracle{}, err
	}
	env := interp.NewSysEnv()
	m := interp.NewMachine(p, env)
	if err := m.Run(1 << 40); err != nil {
		return nil, Oracle{}, err
	}
	return p, Oracle{
		ICount:   m.ICount,
		Loads:    m.LoadCount,
		Stores:   m.StoreCount,
		Branches: m.BranchCount,
		Out:      env.Out.String(),
	}, nil
}

// ResetMemo drops the build/oracle cache (tests and long-lived hosts).
func ResetMemo() {
	memoMu.Lock()
	memo = map[buildKey]*buildEntry{}
	memoMu.Unlock()
}

// BuildsPerformed returns how many assemble+oracle executions have
// actually run in this process (memo misses).
func BuildsPerformed() uint64 { return buildsPerformed.Load() }

// cloneProgram returns a copy whose Text may be mutated freely (the
// ablations transform binaries in place). Data, task descriptors and
// symbols stay shared: nothing in the repository writes to them.
func cloneProgram(p *isa.Program) *isa.Program {
	q := *p
	q.Text = append([]isa.Instr(nil), p.Text...)
	return &q
}

// noSkip, when set, disables the simulator's wakeup scheduler for every
// harness run (core.Config.NoSkip): the msbench -noskip flag, used to
// demonstrate that tables are byte-identical with and without cycle
// skipping and to measure the skip's wall-clock effect.
var noSkip atomic.Bool

// SetNoSkip forces dense ticking (no cycle skipping) in all subsequent
// harness simulations.
func SetNoSkip(v bool) { noSkip.Store(v) }

// applyRunFlags applies process-wide harness toggles to one run's config.
func applyRunFlags(cfg *core.Config) {
	if noSkip.Load() {
		cfg.NoSkip = true
	}
}

// Aggregate simulated-work counters behind the JSON report's throughput
// numbers. Every verified timing run adds its cycles and committed
// instructions; ticked counts the cycles the timing loops actually
// executed (cycles-ticked < cycles means the wakeup scheduler jumped
// stall windows — the skip ratio the JSON report derives).
var simCycles, simTicked, simInstrs, simRuns atomic.Uint64

func recordRun(res *core.Result) {
	simCycles.Add(res.Cycles)
	simTicked.Add(res.CyclesTicked)
	simInstrs.Add(res.Committed)
	simRuns.Add(1)
}

// SimTotals reports the cumulative simulated work of this process:
// timing-simulator runs, simulated cycles, and committed instructions.
func SimTotals() (runs, cycles, instrs uint64) {
	return simRuns.Load(), simCycles.Load(), simInstrs.Load()
}

// SimTicked reports the cumulative cycles the timing loops actually
// executed (see SimTotals; the difference from cycles is what the wakeup
// scheduler skipped).
func SimTicked() uint64 { return simTicked.Load() }
