// Package annotate is the flow-sensitive annotation optimizer: it
// tightens the Section 2.2 task annotations that the linter
// (internal/mslint) only checks. Over the shared region reconstruction
// and dataflow passes of internal/cfg it computes, per task,
//
//   - the minimal sound create mask: the registers the task may actually
//     write that are live into some declared successor. Every other bit
//     makes successors reserve — and the ring carry — a value the task
//     can only pass through (the linter's MS017) or that nobody reads
//     (MS002). Each create-mask register rides the forwarding ring
//     exactly once per task execution, so every dropped bit is a ring
//     send that no longer happens.
//   - forward-bit placement at last updates: an instruction whose
//     destination is in the create mask and that no path can write
//     after is the earliest sound send point (any earlier forward would
//     be stale, the linter's MS004); tagging it converts a
//     completion-flush send into an early one.
//   - releases on flush-only paths: a path that never writes a
//     create-mask register still owes successors the send (MS003);
//     inserting a release where the value is provably final replaces
//     the completion flush, the slow backstop, with an explicit send.
//
// Analysis produces a Plan describing the edits; Apply performs the
// binary-level subset in place (mask tightening, forward bits, dead-send
// removal), and RewriteSource performs all of them as source-level edits
// verified against the functional interpreter.
//
// Soundness is inherited from the linter's contract: the optimizer only
// shrinks create masks toward defs ∩ live-out — the exact set MS001
// requires as a lower bound — and only places sends where the
// stale-forward analysis proves the value final. Tasks whose regions the
// walk could not analyze (structural problems, unknown exits) are left
// untouched.
package annotate

import (
	"fmt"

	"multiscalar/internal/cfg"
	"multiscalar/internal/isa"
)

// Options controls one analysis.
type Options struct {
	// InsertReleases plans release insertions on flush-only paths.
	// Insertion needs new instructions, which only the source-level
	// rewrite can encode; Apply ignores planned insertions, so binary
	// pipelines leave it false.
	InsertReleases bool
}

// TaskPlan is the planned edit set for one task.
type TaskPlan struct {
	TD        *isa.TaskDescriptor
	OldCreate isa.RegMask
	NewCreate isa.RegMask
	Drops     isa.RegMask // OldCreate − NewCreate

	// AddFwd lists instruction addresses to tag with a forward bit
	// (each is a last update of a kept create-mask register).
	AddFwd []uint32
	// DropFwd lists addresses whose forward bit is removed: the
	// register left the create mask, or the send is provably dead
	// (already sent on every path).
	DropFwd []uint32
	// DropRel maps release-instruction addresses to the register whose
	// release is removed, for the same two reasons.
	DropRel map[uint32]isa.Reg
	// AddRel maps block start addresses to the registers released
	// there (only planned under Options.InsertReleases).
	AddRel map[uint32]isa.RegMask

	// Skipped, when non-empty, is the reason the task was left alone.
	Skipped string
}

// Changed reports whether the plan edits anything.
func (t *TaskPlan) Changed() bool {
	return t.Skipped == "" && (t.NewCreate != t.OldCreate ||
		len(t.AddFwd) > 0 || len(t.DropFwd) > 0 ||
		len(t.DropRel) > 0 || len(t.AddRel) > 0)
}

// Plan is the whole-program edit plan.
type Plan struct {
	Prog  *isa.Program
	Tasks []*TaskPlan
	// RetLive is the return-exit liveness the mask computation used;
	// Refined reports whether the flow-derived ReturnLiveOut narrowed
	// the conservative ABI set.
	RetLive isa.RegMask
	Refined bool
}

// Changed reports whether any task has edits.
func (p *Plan) Changed() bool {
	for _, t := range p.Tasks {
		if t.Changed() {
			return true
		}
	}
	return false
}

// DroppedSends counts the ring sends the plan eliminates per task
// execution: one per dropped create-mask bit (the figure of merit; see
// core.Result.RingSends).
func (p *Plan) DroppedSends() int {
	n := 0
	for _, t := range p.Tasks {
		n += t.Drops.Count()
	}
	return n
}

// String renders the plan as a per-task table.
func (p *Plan) String() string {
	out := ""
	for _, t := range p.Tasks {
		if t.Skipped != "" {
			out += fmt.Sprintf("task %-10s skipped: %s\n", t.TD.Name, t.Skipped)
			continue
		}
		if !t.Changed() {
			out += fmt.Sprintf("task %-10s unchanged create=%s\n", t.TD.Name, t.OldCreate)
			continue
		}
		out += fmt.Sprintf("task %-10s create %s -> %s", t.TD.Name, t.OldCreate, t.NewCreate)
		if !t.Drops.Empty() {
			out += fmt.Sprintf(" (drop %s)", t.Drops)
		}
		if len(t.AddFwd) > 0 || len(t.DropFwd) > 0 {
			out += fmt.Sprintf(" fwd +%d/-%d", len(t.AddFwd), len(t.DropFwd))
		}
		if len(t.AddRel) > 0 || len(t.DropRel) > 0 {
			out += fmt.Sprintf(" rel +%d/-%d", len(t.AddRel), len(t.DropRel))
		}
		out += "\n"
	}
	return out
}

// ownership records how many tasks reach a block at depth 0 and whether
// any task reaches it through a call edge. A block is editable for a
// task only when that task owns it exclusively at depth 0: edits in
// shared blocks or pulled-in callee bodies would change every task that
// executes them.
type ownership struct {
	depth0 map[*cfg.Block]int
	callee map[*cfg.Block]bool
}

func (o *ownership) editable(r *cfg.TaskRegion, b *cfg.Block) bool {
	return r.Depth0[b] && !o.callee[b] && o.depth0[b] == 1
}

// Analyze computes the edit plan for every task of the program. The
// program is not modified.
func Analyze(p *isa.Program, opts Options) *Plan {
	g := cfg.Build(p)
	g.Analyze()

	plan := &Plan{Prog: p, RetLive: cfg.LiveAtReturn}
	if m, ok := g.ReturnLiveOut(); ok {
		plan.RetLive = cfg.LiveAtReturn.Intersect(m)
		plan.Refined = true
	}

	own := &ownership{depth0: map[*cfg.Block]int{}, callee: map[*cfg.Block]bool{}}
	regions := make([]*cfg.TaskRegion, 0, len(p.Tasks))
	for _, td := range p.TaskList() {
		r := g.TaskRegion(td)
		regions = append(regions, r)
		for _, b := range r.Blocks {
			if r.Depth0[b] {
				own.depth0[b]++
			}
			if r.Callee[b] {
				own.callee[b] = true
			}
		}
	}
	for _, r := range regions {
		plan.Tasks = append(plan.Tasks, planTask(r, own, plan.RetLive, opts))
	}
	return plan
}

// planTask plans the edits of one task region.
func planTask(r *cfg.TaskRegion, own *ownership, retLive isa.RegMask, opts Options) *TaskPlan {
	td := r.TD
	t := &TaskPlan{
		TD:        td,
		OldCreate: td.Create,
		NewCreate: td.Create,
		DropRel:   map[uint32]isa.Reg{},
		AddRel:    map[uint32]isa.RegMask{},
	}
	if len(r.Problems) > 0 {
		t.Skipped = "region has structural problems (see mslint)"
		return t
	}
	if r.UnknownExit {
		t.Skipped = "stop-tagged indirect jump makes the exit set unknowable"
		return t
	}
	if td.Create.Empty() {
		return t
	}
	g := r.Graph()

	// frozen: registers sent somewhere the task does not exclusively
	// own. Their send structure cannot be edited, so they keep their
	// create-mask bit and gain no new sends.
	var frozen isa.RegMask
	for _, b := range r.Blocks {
		if own.editable(r, b) {
			continue
		}
		for a := b.Start; a < b.End; a += isa.InstrSize {
			in := g.Prog.InstrAt(a)
			if in.Fwd {
				frozen = frozen.Set(in.Dest())
			}
			if in.Op == isa.OpRelease {
				frozen = frozen.Set(in.Rs)
			}
		}
	}

	// Minimal sound mask: what the task may write and a successor may
	// read. MS001 makes defs ∩ liveOut a lower bound; anything above it
	// is pass-through (MS017) or dead (MS002) weight. Frozen registers
	// keep their bit: removing it would orphan a send we cannot edit.
	liveOut := r.LiveOut(retLive)
	t.NewCreate = td.Create.Intersect(r.Defs()).Intersect(liveOut).Union(td.Create.Intersect(frozen))
	t.Drops = t.OldCreate.Minus(t.NewCreate)

	// Sends of dropped registers satisfy no reservation any more; strip
	// them (all live in editable blocks — frozen regs were kept above).
	for _, b := range r.Blocks {
		if !own.editable(r, b) {
			continue
		}
		for a := b.Start; a < b.End; a += isa.InstrSize {
			in := g.Prog.InstrAt(a)
			if in.Fwd && t.Drops.Has(in.Dest()) {
				t.DropFwd = append(t.DropFwd, a)
			}
			if in.Op == isa.OpRelease && t.Drops.Has(in.Rs) {
				t.DropRel[a] = in.Rs
			}
		}
	}

	// Forward bits at last updates: the earliest sound send point of
	// each kept register. mwIn/later answer "may this register still be
	// written"; coverIn answers "was it already sent on every path".
	mwIn := r.MayWriteIn()
	gen := r.SendGen(t.NewCreate)
	coverIn, _ := r.CoverIn(t.NewCreate, gen)
	addAt := map[uint32]bool{}
	for _, b := range r.Blocks {
		if !own.editable(r, b) {
			continue
		}
		later := r.LaterWrites(b, mwIn)
		sent := coverIn[b]
		n := b.NumInstrs()
		for i := 0; i < n; i++ {
			a := b.Start + uint32(i)*isa.InstrSize
			in := g.Prog.InstrAt(a)
			if in.Op == isa.OpRelease {
				if t.NewCreate.Has(in.Rs) {
					sent = sent.Set(in.Rs)
				}
				continue
			}
			d := in.Dest()
			if d == isa.RegZero || !t.NewCreate.Has(d) {
				continue
			}
			if in.Fwd {
				sent = sent.Set(d)
				continue
			}
			if !later[i].Has(d) && !sent.Has(d) && !frozen.Has(d) {
				t.AddFwd = append(t.AddFwd, a)
				addAt[a] = true
				sent = sent.Set(d)
			}
		}
	}

	// Prune pass: the new forward bits can make a hand send downstream
	// provably dead (sent on every path before it — the ring carries
	// each register once, so the send never transmits; MS018). Removing
	// a dead send never uncovers a path, so one pass suffices.
	gen = planSendGen(r, t, addAt)
	coverIn, _ = r.CoverIn(t.NewCreate, gen)
	for _, b := range r.Blocks {
		if !own.editable(r, b) {
			continue
		}
		sent := coverIn[b]
		n := b.NumInstrs()
		for i := 0; i < n; i++ {
			a := b.Start + uint32(i)*isa.InstrSize
			in := g.Prog.InstrAt(a)
			switch {
			case in.Op == isa.OpRelease && t.NewCreate.Has(in.Rs):
				if _, dropped := t.DropRel[a]; dropped {
					continue
				}
				if sent.Has(in.Rs) {
					t.DropRel[a] = in.Rs
				} else {
					sent = sent.Set(in.Rs)
				}
			case (in.Fwd || addAt[a]) && t.NewCreate.Has(in.Dest()):
				if sent.Has(in.Dest()) && !addAt[a] && in.Fwd {
					t.DropFwd = append(t.DropFwd, a)
				} else {
					sent = sent.Set(in.Dest())
				}
			}
		}
	}

	if opts.InsertReleases {
		planReleases(r, t, own, addAt)
	}
	return t
}

// planSendGen recomputes per-block send sets under the plan's edits so
// far: existing sends minus drops, plus the planned forward bits.
func planSendGen(r *cfg.TaskRegion, t *TaskPlan, addAt map[uint32]bool) map[*cfg.Block]isa.RegMask {
	g := r.Graph()
	dropFwd := map[uint32]bool{}
	for _, a := range t.DropFwd {
		dropFwd[a] = true
	}
	gen := map[*cfg.Block]isa.RegMask{}
	for _, b := range r.Blocks {
		var m isa.RegMask
		for a := b.Start; a < b.End; a += isa.InstrSize {
			in := g.Prog.InstrAt(a)
			if (in.Fwd && !dropFwd[a]) || addAt[a] {
				m = m.Set(in.Dest())
			}
			if in.Op == isa.OpRelease {
				if _, dropped := t.DropRel[a]; !dropped {
					m = m.Set(in.Rs)
				}
			}
		}
		gen[b] = m.Intersect(t.NewCreate).Union(t.AddRel[b.Start].Intersect(t.NewCreate))
	}
	return gen
}

// planReleases inserts releases at the head of exit blocks whose exits a
// create-mask register reaches without having been sent (the flush-only
// paths of MS003). The head of an exit block is sound exactly when no
// path at or after it can still write the register (mwIn); registers the
// block itself finally writes were already covered by a forward bit.
// Recomputing cover after each insertion keeps later exits from planning
// sends the earlier ones already guarantee.
func planReleases(r *cfg.TaskRegion, t *TaskPlan, own *ownership, addAt map[uint32]bool) {
	g := r.Graph()
	mwIn := r.MayWriteIn()
	seen := map[*cfg.Block]bool{}
	for _, e := range r.Exits {
		b := g.BlockOf(e.Addr)
		if b == nil || seen[b] {
			continue
		}
		seen[b] = true
		if !own.editable(r, b) {
			continue
		}
		gen := planSendGen(r, t, addAt)
		_, coverOut := r.CoverIn(t.NewCreate, gen)
		need := t.NewCreate.Minus(coverOut[b]).Minus(mwIn[b])
		if need.Empty() {
			continue
		}
		t.AddRel[b.Start] = t.AddRel[b.Start].Union(need)
	}
}
