// Package predict implements the control-flow prediction hardware of
// Section 5.1: the sequencer's PAs two-level task predictor with a return
// address stack, and the per-unit bimodal branch predictor used inside
// processing units.
package predict

import "multiscalar/internal/trace"

// TaskPredictor is the sequencer's control flow predictor: a PAs
// configuration with 4 targets per prediction and 6 outcome histories.
// The first level is a 64-entry table of 12-bit histories (2 bits per
// outcome); the second level is a 4096-entry pattern table of 3-bit
// entries (a hysteresis bit plus a 2-bit target number).
//
// Histories update speculatively at prediction time; the sequencer
// snapshots and restores predictor state around squashes.
type TaskPredictor struct {
	histories [64]uint16  // 12-bit per-address histories
	pattern   [4096]uint8 // 1 hysteresis bit <<2 | 2-bit target number

	// Sink, when non-nil, receives KPredIndex events for every table
	// prediction and KPredTrain events for every training update. The
	// predictor has no clock of its own, so the owning sequencer points
	// Now at its cycle counter when it attaches a sink.
	Sink trace.Sink
	Now  *uint64

	// Stats
	Predictions uint64
	Correct     uint64
}

const (
	historyBits = 12
	historyMask = (1 << historyBits) - 1
)

func (p *TaskPredictor) l1Index(taskAddr uint32) int {
	return int(taskAddr>>2) & 63
}

// Predict returns the predicted target number (0-3) for the task at
// taskAddr and speculatively shifts the outcome into the history.
func (p *TaskPredictor) Predict(taskAddr uint32) int {
	i := p.l1Index(taskAddr)
	hist := p.histories[i] & historyMask
	e := p.pattern[hist]
	tgt := int(e & 3)
	p.histories[i] = (hist<<2 | uint16(tgt)) & historyMask
	p.Predictions++
	if p.Sink != nil {
		p.Sink.Emit(trace.Event{Cycle: *p.Now, Kind: trace.KPredIndex, Unit: -1, Task: -1, Arg: taskAddr, Arg2: uint64(tgt)})
	}
	return tgt
}

// UpdateWith trains the predictor with the actual outcome of a validated
// prediction. hist must be the history captured (via History) just before
// the corresponding Predict call, so the same pattern entry is trained.
// On a misprediction the history register is repaired by re-shifting the
// actual outcome over the speculative one; the sequencer restores any
// deeper speculative shifts from its snapshot before calling this.
func (p *TaskPredictor) UpdateWith(hist uint16, taskAddr uint32, actual int, predicted int) {
	e := p.pattern[hist&historyMask]
	tgt := int(e & 3)
	conf := e >> 2
	if tgt == actual {
		conf = 1
	} else if conf == 1 {
		conf = 0
	} else {
		tgt = actual
	}
	p.pattern[hist&historyMask] = conf<<2 | uint8(tgt&3)
	if p.Sink != nil {
		p.Sink.Emit(trace.Event{Cycle: *p.Now, Kind: trace.KPredTrain, Unit: -1, Task: -1, Arg: taskAddr, Arg2: uint64(actual)})
	}
	if predicted == actual {
		p.Correct++
	} else {
		p.FixHistory(taskAddr, hist, actual)
	}
}

// History returns the current history for a task (captured by the
// sequencer before Predict so Update can index the same pattern entry).
func (p *TaskPredictor) History(taskAddr uint32) uint16 {
	return p.histories[p.l1Index(taskAddr)] & historyMask
}

// FixHistory overwrites the history register for taskAddr — used when a
// misprediction is discovered, to re-shift the actual outcome.
func (p *TaskPredictor) FixHistory(taskAddr uint32, hist uint16, actual int) {
	p.histories[p.l1Index(taskAddr)] = (hist<<2 | uint16(actual&3)) & historyMask
}

// Snapshot copies the history state (pattern tables are value-predicting
// and never rolled back, matching real designs).
func (p *TaskPredictor) Snapshot() [64]uint16 { return p.histories }

// Restore reinstates a snapshot taken before mis-speculated predictions.
func (p *TaskPredictor) Restore(s [64]uint16) { p.histories = s }

// Accuracy returns the fraction of validated predictions that were
// correct.
func (p *TaskPredictor) Accuracy() float64 {
	if p.Predictions == 0 {
		return 0
	}
	return float64(p.Correct) / float64(p.Predictions)
}

// Reset clears all predictor state and statistics (the trace wiring
// survives: it belongs to the machine, not the tables).
func (p *TaskPredictor) Reset() {
	*p = TaskPredictor{Sink: p.Sink, Now: p.Now}
}

// RAS is the sequencer's 64-entry return address stack. It is a circular
// stack: pushes beyond the capacity overwrite the oldest entries.
type RAS struct {
	entries [64]uint32
	top     int // index of next push slot
	depth   int
}

// Push records a return address.
func (r *RAS) Push(addr uint32) {
	r.entries[r.top] = addr
	r.top = (r.top + 1) % len(r.entries)
	if r.depth < len(r.entries) {
		r.depth++
	}
}

// Pop predicts a return address (0 if empty).
func (r *RAS) Pop() uint32 {
	if r.depth == 0 {
		return 0
	}
	r.top = (r.top - 1 + len(r.entries)) % len(r.entries)
	r.depth--
	return r.entries[r.top]
}

// Depth returns the number of live entries.
func (r *RAS) Depth() int { return r.depth }

// Snapshot captures the full stack state.
func (r *RAS) Snapshot() RAS { return *r }

// Restore reinstates a snapshot.
func (r *RAS) Restore(s RAS) { *r = s }
