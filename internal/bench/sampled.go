package bench

import (
	"fmt"
	"strings"
	"sync"

	"multiscalar/internal/asm"
	"multiscalar/internal/core"
	"multiscalar/internal/job"
	"multiscalar/internal/sample"
	"multiscalar/internal/workloads"
)

// Sampled-simulation accuracy section (docs/perf.md, "Sampled
// simulation"): run the suite's two longest workloads both exactly and
// sampled at a long-run scale, and report the estimate's error, whether
// the exact cycle count lands inside the 95% confidence interval, and
// how many detailed cycles sampling avoided. Like -annotate, the
// section is not part of -all so the -all output stays byte-identical
// with the sampling engine present but unused.

// Window-level parallelism inside sampled jobs rides on the same worker
// pool as section-level parallelism.
func init() { job.SetSampleRunner(RunJobs) }

// sampledWorkloads names the two longest table workloads by multiscalar
// dynamic instruction count at default scale (example ~378k, wc ~160k)
// — the runs where the paper-table harness spends its cycles and where
// the ≥10× detailed-cycle reduction claim is made.
var sampledWorkloads = []string{"example", "wc"}

// sampledScaleFactor stretches each workload's resolved scale for this
// section. Sampling pays off on long runs (SMARTS targets billions of
// instructions); at the suite's table scales the engine's own fallback
// would correctly refuse to sample most workloads, so the accuracy
// comparison is made in the regime the estimator is built for.
const sampledScaleFactor = 16

// SampledRow compares one workload's exact run against its sampled
// estimate at the same scale and configuration.
type SampledRow struct {
	Name        string
	Scale       int // resolved scale the comparison ran at
	TotalInstrs uint64

	FullCycles uint64
	EstCycles  uint64
	CyclesLow  uint64
	CyclesHi   uint64

	Windows    int
	FullDetail bool
	MeanCPI    float64
	VarCPI     float64
	StdErrCPI  float64

	ErrPct    float64 // signed estimate error vs the exact run
	InCI      bool    // exact cycles inside the 95% CI
	Reduction float64 // full cycles / detailed cycles simulated

	Params sample.Params
}

// RunSampled runs the sampled-vs-exact comparison on 8 2-way
// out-of-order units (the paper's headline configuration). Rows run
// serially; each sampled run's detailed windows already fan out over
// the worker pool.
func RunSampled(scale Scale) ([]SampledRow, error) {
	rows := make([]SampledRow, 0, len(sampledWorkloads))
	for _, name := range sampledWorkloads {
		w := workloads.Get(name)
		if w == nil {
			return nil, fmt.Errorf("sampled: unknown workload %q", name)
		}
		eff := Scale(scale.of(w) * sampledScaleFactor)
		p, o, err := buildOracle(w, asm.ModeMultiscalar, eff)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		cfg := core.DefaultConfig(8, 2, true)
		input := inputFor(name)
		full, err := runShared(p, o, cfg, input,
			fmt.Sprintf("%s sampled-baseline scale=%d", name, int(eff)))
		if err != nil {
			return nil, err
		}
		var runCfg core.Config = cfg
		applyRunFlags(&runCfg)
		est, err := sample.Run(p, runCfg, sample.Params{}, input, job.DefaultMaxInstrs, RunJobs)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		recordSampled(est)
		rows = append(rows, SampledRow{
			Name:        name,
			Scale:       int(eff),
			TotalInstrs: est.TotalInstrs,
			FullCycles:  full.Cycles,
			EstCycles:   est.EstCycles,
			CyclesLow:   est.CyclesLow,
			CyclesHi:    est.CyclesHi,
			Windows:     est.Windows,
			FullDetail:  est.FullDetail,
			MeanCPI:     est.MeanCPI,
			VarCPI:      est.VarCPI,
			StdErrCPI:   est.StdErrCPI,
			ErrPct:      est.ErrPct(full.Cycles),
			InCI:        est.InCI(full.Cycles),
			Reduction:   est.DetailReduction(full.Cycles),
			Params:      est.Params,
		})
	}
	return rows, nil
}

// FormatSampled renders the sampled-vs-exact comparison.
func FormatSampled(rows []SampledRow) string {
	var b strings.Builder
	b.WriteString("Sampled simulation: exact vs estimated cycles (8 units, 2-way out-of-order)\n")
	fmt.Fprintf(&b, "  %-10s %9s %10s %10s  %-23s %3s %7s %5s %9s\n",
		"workload", "instrs", "exact", "estimate", "95% CI", "win", "err", "inCI", "detail")
	for _, r := range rows {
		note := ""
		if r.FullDetail {
			note = "  (full detail: run too short to sample)"
		}
		fmt.Fprintf(&b, "  %-10s %9d %10d %10d  [%10d,%10d] %3d %+6.2f%% %5v %8.1fx%s\n",
			r.Name, r.TotalInstrs, r.FullCycles, r.EstCycles, r.CyclesLow, r.CyclesHi,
			r.Windows, r.ErrPct, r.InCI, r.Reduction, note)
	}
	return b.String()
}

// GateSampled returns one line per row failing the accuracy/speed gate:
// the exact cycle count outside the 95% CI, or a detailed-cycle
// reduction below minReduction. Empty means every row passed — the CI
// sample-accuracy job's pass condition.
func GateSampled(rows []SampledRow, minReduction float64) []string {
	var fails []string
	for _, r := range rows {
		if !r.InCI {
			fails = append(fails, fmt.Sprintf(
				"%s: exact %d cycles outside the 95%% CI [%d, %d] (estimate %d, err %+.2f%%)",
				r.Name, r.FullCycles, r.CyclesLow, r.CyclesHi, r.EstCycles, r.ErrPct))
		}
		if r.Reduction < minReduction {
			fails = append(fails, fmt.Sprintf(
				"%s: detailed-cycle reduction %.1fx below the %.1fx gate",
				r.Name, r.Reduction, minReduction))
		}
	}
	return fails
}

// Sampled-run observability for the JSON report: how many sampled
// estimates were produced, their total window count, and the mean
// estimator variance (a drift canary: variance creeping up means the
// windows disagree more than they used to).
var (
	sampledMu      sync.Mutex
	sampledRuns    uint64
	sampledWindows uint64
	sampledVarSum  float64
)

func recordSampled(e *sample.Estimate) {
	sampledMu.Lock()
	sampledRuns++
	sampledWindows += uint64(e.Windows)
	sampledVarSum += e.VarCPI
	sampledMu.Unlock()
}

// SampledTotals reports the cumulative sampled-simulation work of this
// process: estimates produced, detailed windows measured, and the mean
// per-estimate CPI variance.
func SampledTotals() (runs, windows uint64, meanVar float64) {
	sampledMu.Lock()
	defer sampledMu.Unlock()
	if sampledRuns > 0 {
		meanVar = sampledVarSum / float64(sampledRuns)
	}
	return sampledRuns, sampledWindows, meanVar
}
