package annotate

import (
	"fmt"
	"regexp"
	"strings"

	"multiscalar/internal/asm"
	"multiscalar/internal/interp"
	"multiscalar/internal/isa"
)

// RewriteSource optimizes annotated assembly at the source level: it
// assembles src (multiscalar mode, lint-gated), analyzes the program
// with release insertion enabled, and applies the plan as textual edits
// — create-mask surgery on .task directives, forward-bit tokens appended
// to or removed from statement lines, release operands removed, and
// .msonly release lines inserted at block heads. The rewritten source is
// re-assembled under the same lint gate and the two programs are held to
// the functional interpreter oracle (identical output bytes and exit
// code) before anything is returned.
//
// Scalar builds are unaffected by construction: every edit touches
// multiscalar-only syntax (!f tokens, .task directives, .msonly lines).
//
// When the plan changes nothing, src is returned unchanged.
func RewriteSource(src string) (string, *Plan, error) {
	res, err := asm.AssembleOpts(src, asm.Options{Mode: asm.ModeMultiscalar})
	if err != nil {
		return "", nil, fmt.Errorf("annotate: input does not assemble: %w", err)
	}
	plan := Analyze(res.Prog, Options{InsertReleases: true})
	if !plan.Changed() {
		return src, plan, nil
	}

	lines := strings.Split(src, "\n")
	// A statement expanding to several instructions carries its
	// annotation on the last one; a planned forward bit can only be
	// encoded on a line whose last emitted instruction is the planned
	// address.
	lastOfLine := map[int]uint32{}
	for a, ln := range res.Lines {
		if a > lastOfLine[ln] {
			lastOfLine[ln] = a
		}
	}

	edits := map[int]*lineEdit{}
	at := func(ln int) *lineEdit {
		e := edits[ln]
		if e == nil {
			e = &lineEdit{}
			edits[ln] = e
		}
		return e
	}
	for _, t := range plan.Tasks {
		if t.Skipped != "" || !t.Changed() {
			continue
		}
		if t.NewCreate != t.OldCreate {
			ln := findTaskLine(lines, t.TD.Name)
			if ln == 0 {
				return "", nil, fmt.Errorf("annotate: no .task line for %s", t.TD.Name)
			}
			m := t.NewCreate
			at(ln).newCreate = &m
		}
		for _, a := range t.AddFwd {
			if ln := res.Lines[a]; ln != 0 && lastOfLine[ln] == a {
				at(ln).appendFwd = true
			}
			// else: the annotation would land on a different instruction
			// of the expansion; leave the send to the completion flush.
		}
		for _, a := range t.DropFwd {
			if ln := res.Lines[a]; ln != 0 {
				at(ln).removeFwd = true
			}
		}
		for a, reg := range t.DropRel {
			if ln := res.Lines[a]; ln != 0 {
				at(ln).removeRegs = append(at(ln).removeRegs, reg)
			}
		}
		for ba, regs := range t.AddRel {
			if ln := res.Lines[ba]; ln != 0 {
				at(ln).insertRel = at(ln).insertRel.Union(regs)
			}
		}
	}

	// Apply bottom-up so insertions and deletions leave the line
	// numbers of pending edits intact.
	out := append([]string(nil), lines...)
	for ln := len(lines); ln >= 1; ln-- {
		e := edits[ln]
		if e == nil {
			continue
		}
		repl, err := e.apply(out[ln-1])
		if err != nil {
			return "", nil, fmt.Errorf("annotate: line %d: %w", ln, err)
		}
		out = append(out[:ln-1], append(repl, out[ln:]...)...)
	}
	newSrc := strings.Join(out, "\n")

	res2, err := asm.AssembleOpts(newSrc, asm.Options{Mode: asm.ModeMultiscalar})
	if err != nil {
		return "", nil, fmt.Errorf("annotate: rewritten source rejected: %w", err)
	}
	if err := verifyEquivalent(res.Prog, res2.Prog); err != nil {
		return "", nil, fmt.Errorf("annotate: rewrite is not oracle-equivalent: %w", err)
	}
	return newSrc, plan, nil
}

// lineEdit is the set of textual changes one source line accumulates.
type lineEdit struct {
	newCreate  *isa.RegMask // .task line: replace the create= list
	appendFwd  bool         // append a !f token to the statement
	removeFwd  bool         // remove the !f token
	removeRegs []isa.Reg    // remove operands from a release statement
	insertRel  isa.RegMask  // insert ".msonly release" line(s) before
}

// apply rewrites one source line into its replacement lines.
func (e *lineEdit) apply(line string) ([]string, error) {
	var out []string
	body := line
	if !e.insertRel.Empty() {
		// The release must execute at the block head: after any label
		// (jumps enter there) and before the first instruction.
		label, rest := splitInlineLabel(line)
		if label != "" {
			out = append(out, label)
			body = rest
		}
		out = append(out, "\t.msonly release "+regList(e.insertRel))
	}
	code, comment := splitComment(body)
	switch {
	case e.newCreate != nil:
		var err error
		code, err = rewriteCreate(code, *e.newCreate)
		if err != nil {
			return nil, err
		}
	case e.appendFwd:
		code = strings.TrimRight(code, " \t") + " !f"
	case e.removeFwd:
		nc := fwdTokenRE.ReplaceAllString(code, "")
		if nc == code {
			return nil, fmt.Errorf("no !f token to remove in %q", line)
		}
		code = nc
	case len(e.removeRegs) > 0:
		var err error
		code, err = rewriteRelease(code, e.removeRegs)
		if err != nil {
			return nil, err
		}
		if code == "" && comment == "" {
			return out, nil // line vanishes entirely
		}
	}
	if comment != "" && code != "" {
		code += " " + comment
	} else if comment != "" {
		code = comment
	}
	return append(out, code), nil
}

var (
	fwdTokenRE  = regexp.MustCompile(`[ \t]*!f\b`)
	createRE    = regexp.MustCompile(`[ \t]*create=[^ \t]+`)
	labelRE     = regexp.MustCompile(`^([ \t]*[A-Za-z_.$][A-Za-z0-9_.$]*:)[ \t]*(\S.*)$`)
	releaseRE   = regexp.MustCompile(`^([ \t]*(?:[A-Za-z_.$][A-Za-z0-9_.$]*:[ \t]*)?(?:\.msonly[ \t]+)?release[ \t]+)(.*)$`)
	taskLineRE  = regexp.MustCompile(`^[ \t]*\.task[ \t]+(\S+)`)
	annotTailRE = regexp.MustCompile(`((?:[ \t]+!(?:f|s|st|snt))+)[ \t]*$`)
)

// splitComment splits a raw source line at its comment, mirroring the
// assembler's lexer (";", "#", "//" outside string literals).
func splitComment(line string) (code, comment string) {
	inStr := false
	for i := 0; i < len(line); i++ {
		c := line[i]
		if inStr {
			if c == '\\' {
				i++
			} else if c == '"' {
				inStr = false
			}
			continue
		}
		switch {
		case c == '"':
			inStr = true
		case c == ';' || c == '#':
			return strings.TrimRight(line[:i], " \t"), line[i:]
		case c == '/' && i+1 < len(line) && line[i+1] == '/':
			return strings.TrimRight(line[:i], " \t"), line[i:]
		}
	}
	return line, ""
}

// splitInlineLabel splits "FOO: instr" into its label line and the rest;
// a line that is not label-prefixed (or is a label alone) returns "".
func splitInlineLabel(line string) (label, rest string) {
	code, comment := splitComment(line)
	m := labelRE.FindStringSubmatch(code)
	if m == nil {
		return "", line
	}
	rest = "\t" + m[2]
	if comment != "" {
		rest += " " + comment
	}
	return m[1], rest
}

// findTaskLine locates the .task directive line (1-based) naming task.
func findTaskLine(lines []string, task string) int {
	for i, l := range lines {
		code, _ := splitComment(l)
		if m := taskLineRE.FindStringSubmatch(code); m != nil && m[1] == task {
			return i + 1
		}
	}
	return 0
}

// rewriteCreate replaces (or removes, for an empty mask) the create=
// list of a .task directive line.
func rewriteCreate(code string, mask isa.RegMask) (string, error) {
	loc := createRE.FindStringIndex(code)
	if loc == nil {
		return "", fmt.Errorf("no create= list in %q", code)
	}
	repl := ""
	if !mask.Empty() {
		// Splice rather than ReplaceAllString: register names ($s0, …)
		// would be taken for capture-group references.
		repl = " create=" + regList(mask)
	}
	return code[:loc[0]] + repl + code[loc[1]:], nil
}

// rewriteRelease removes operands from a release statement. Removing
// every operand removes the statement; an inline label (or a stop
// annotation, which must keep marking the task boundary) survives as a
// label line (or a nop).
func rewriteRelease(code string, drop []isa.Reg) (string, error) {
	m := releaseRE.FindStringSubmatch(code)
	if m == nil {
		return "", fmt.Errorf("not a release statement: %q", code)
	}
	pre, ops := m[1], m[2]
	annots := ""
	if am := annotTailRE.FindStringSubmatch(ops); am != nil {
		annots = strings.TrimRight(am[1], " \t")
		ops = strings.TrimSuffix(ops, am[0])
	}
	gone := map[string]bool{}
	for _, r := range drop {
		gone[r.String()] = true
	}
	var keep []string
	for _, op := range strings.Split(ops, ",") {
		op = strings.TrimSpace(op)
		if op != "" && !gone[op] {
			keep = append(keep, op)
		}
	}
	if len(keep) > 0 {
		return pre + strings.Join(keep, ", ") + annots, nil
	}
	label := ""
	if lm := labelRE.FindStringSubmatch(code); lm != nil {
		label = lm[1]
	}
	switch {
	case annots != "":
		if label != "" {
			return label + " nop" + annots, nil
		}
		return "\tnop" + annots, nil
	case label != "":
		return label, nil
	default:
		return "", nil
	}
}

// regList renders a mask as the assembler's comma-separated operand
// list, ascending by register number.
func regList(m isa.RegMask) string {
	var parts []string
	m.ForEach(func(r isa.Reg) { parts = append(parts, r.String()) })
	return strings.Join(parts, ",")
}

// verifyEquivalent runs both programs through the functional
// interpreter and requires identical output bytes and exit code — the
// same oracle the timing simulators are verified against.
func verifyEquivalent(a, b *isa.Program) error {
	const maxInstrs = 200_000_000
	run := func(p *isa.Program) (string, int32, error) {
		env := interp.NewSysEnv()
		m := interp.NewMachine(p, env)
		if err := m.Run(maxInstrs); err != nil {
			return "", 0, err
		}
		return env.Out.String(), env.ExitCode, nil
	}
	outA, exitA, err := run(a)
	if err != nil {
		return fmt.Errorf("original: %w", err)
	}
	outB, exitB, err := run(b)
	if err != nil {
		return fmt.Errorf("rewritten: %w", err)
	}
	if outA != outB {
		return fmt.Errorf("output differs: %d vs %d bytes", len(outA), len(outB))
	}
	if exitA != exitB {
		return fmt.Errorf("exit code differs: %d vs %d", exitA, exitB)
	}
	return nil
}
