package interp

import (
	"fmt"

	"multiscalar/internal/isa"
	"multiscalar/internal/mem"
)

// Warmer observes the retired instruction stream during functional
// execution so simulation structures (caches, predictors, the task
// sequencer's history) can be kept warm without running the timing
// machine. Both callbacks are on the hot path: implementations must be
// cheap and must not touch machine state. A nil Warm field costs one
// predictable branch per instruction.
type Warmer interface {
	// Mem is called for every load and store with the effective address.
	Mem(addr uint32, store bool)
	// Retire is called after every instruction with its PC and the PC
	// of the next instruction (control flow already resolved).
	Retire(pc, next uint32)
}

// Machine is the functional simulator state.
type Machine struct {
	Prog *isa.Program
	Mem  *mem.Memory
	Regs [isa.NumRegs]Value
	FCC  bool
	PC   uint32
	Env  *SysEnv

	// Warm, when non-nil, observes retired instructions (see Warmer).
	Warm Warmer

	// ICount is the dynamic instruction count — the quantity Table 2
	// reports.
	ICount uint64
	// Class counts broken out for reporting.
	LoadCount, StoreCount, BranchCount uint64

	// uops is the predecoded form of Prog.Text (see uop.go). It is
	// derived state: never serialized, rebuilt on demand.
	uops []uop
}

// NewMachine loads a program image: data segment copied into memory,
// $sp at the stack top, PC at the entry point.
func NewMachine(p *isa.Program, env *SysEnv) *Machine {
	m := &Machine{
		Prog: p,
		Mem:  mem.NewMemoryFromImage(ProgramImage(p)),
		PC:   p.Entry,
		Env:  env,
	}
	m.Regs[isa.RegSP] = IntVal(isa.StackTop)
	m.Regs[isa.RegGP] = IntVal(isa.DataBase)
	return m
}

// Step executes one instruction. It returns an error on traps (bad PC,
// unaligned access, division by zero, unknown syscall).
//
// Dispatch runs over the predecoded µop stream (uop.go): one dense
// switch on the handler index, with the destination register already
// resolved, instead of re-classifying the architectural instruction
// each time.
func (m *Machine) Step() error {
	if m.uops == nil {
		m.uops = decodedUops(m.Prog)
	}
	if m.PC < isa.TextBase || m.PC&3 != 0 {
		return fmt.Errorf("interp: PC 0x%x outside text", m.PC)
	}
	idx := (m.PC - isa.TextBase) / isa.InstrSize
	if int(idx) >= len(m.uops) {
		return fmt.Errorf("interp: PC 0x%x outside text", m.PC)
	}
	u := &m.uops[idx]
	nextPC := m.PC + isa.InstrSize

	switch u.kind {
	case uNop:
	case uSyscall:
		ret, writes, err := m.Env.Call(m.Mem,
			m.Regs[isa.RegV0].I, m.Regs[isa.RegA0].I,
			m.Regs[isa.RegA1].I, m.Regs[isa.RegA2].I, m.Regs[isa.RegA3].I)
		if err != nil {
			return err
		}
		if writes {
			m.Regs[isa.RegV0] = IntVal(ret)
		}

	case uLw:
		addr := m.Regs[u.rs].I + uint32(u.imm)
		if addr&3 != 0 {
			return fmt.Errorf("interp: unaligned %s of 0x%x at PC 0x%x", u.op, addr, m.PC)
		}
		v := Value{I: uint32(m.Mem.ReadN(addr, 4))}
		if u.rd != isa.RegZero {
			m.Regs[u.rd] = v
		}
		if m.Warm != nil {
			m.Warm.Mem(addr, false)
		}
		m.LoadCount++
	case uLoad:
		addr := m.Regs[u.rs].I + uint32(u.imm)
		if addr%uint32(u.size) != 0 {
			return fmt.Errorf("interp: unaligned %s of 0x%x at PC 0x%x", u.op, addr, m.PC)
		}
		raw := m.Mem.ReadN(addr, int(u.size))
		if u.rd != isa.RegZero {
			m.Regs[u.rd] = LoadValue(u.op, raw)
		}
		if m.Warm != nil {
			m.Warm.Mem(addr, false)
		}
		m.LoadCount++
	case uSw:
		addr := m.Regs[u.rs].I + uint32(u.imm)
		if addr&3 != 0 {
			return fmt.Errorf("interp: unaligned %s of 0x%x at PC 0x%x", u.op, addr, m.PC)
		}
		m.Mem.WriteN(addr, 4, uint64(m.Regs[u.rt].I))
		if m.Warm != nil {
			m.Warm.Mem(addr, true)
		}
		m.StoreCount++
	case uStore:
		addr := m.Regs[u.rs].I + uint32(u.imm)
		if addr%uint32(u.size) != 0 {
			return fmt.Errorf("interp: unaligned %s of 0x%x at PC 0x%x", u.op, addr, m.PC)
		}
		m.Mem.WriteN(addr, int(u.size), StoreValue(u.op, m.Regs[u.rt]))
		if m.Warm != nil {
			m.Warm.Mem(addr, true)
		}
		m.StoreCount++

	case uJ:
		nextPC = u.target
		m.BranchCount++
	case uJal:
		if u.rd != isa.RegZero {
			m.Regs[u.rd] = IntVal(m.PC + isa.InstrSize)
		}
		nextPC = u.target
		m.BranchCount++
	case uJr:
		nextPC = m.Regs[u.rs].I
		m.BranchCount++
	case uJalr:
		target := m.Regs[u.rs].I
		if u.rd != isa.RegZero {
			m.Regs[u.rd] = IntVal(m.PC + isa.InstrSize)
		}
		nextPC = target
		m.BranchCount++

	case uBeq:
		if m.Regs[u.rs].I == m.Regs[u.rt].I {
			nextPC = u.target
		}
		m.BranchCount++
	case uBne:
		if m.Regs[u.rs].I != m.Regs[u.rt].I {
			nextPC = u.target
		}
		m.BranchCount++
	case uBlez:
		if int32(m.Regs[u.rs].I) <= 0 {
			nextPC = u.target
		}
		m.BranchCount++
	case uBgtz:
		if int32(m.Regs[u.rs].I) > 0 {
			nextPC = u.target
		}
		m.BranchCount++
	case uBltz:
		if int32(m.Regs[u.rs].I) < 0 {
			nextPC = u.target
		}
		m.BranchCount++
	case uBgez:
		if int32(m.Regs[u.rs].I) >= 0 {
			nextPC = u.target
		}
		m.BranchCount++

	case uAdd:
		m.Regs[u.rd] = Value{I: m.Regs[u.rs].I + m.Regs[u.rt].I}
	case uAddi:
		m.Regs[u.rd] = Value{I: m.Regs[u.rs].I + uint32(u.imm)}
	case uSub:
		m.Regs[u.rd] = Value{I: m.Regs[u.rs].I - m.Regs[u.rt].I}
	case uMul:
		m.Regs[u.rd] = Value{I: uint32(int32(m.Regs[u.rs].I) * int32(m.Regs[u.rt].I))}
	case uAnd:
		m.Regs[u.rd] = Value{I: m.Regs[u.rs].I & m.Regs[u.rt].I}
	case uAndi:
		m.Regs[u.rd] = Value{I: m.Regs[u.rs].I & uint32(u.imm)}
	case uOr:
		m.Regs[u.rd] = Value{I: m.Regs[u.rs].I | m.Regs[u.rt].I}
	case uOri:
		m.Regs[u.rd] = Value{I: m.Regs[u.rs].I | uint32(u.imm)}
	case uXor:
		m.Regs[u.rd] = Value{I: m.Regs[u.rs].I ^ m.Regs[u.rt].I}
	case uXori:
		m.Regs[u.rd] = Value{I: m.Regs[u.rs].I ^ uint32(u.imm)}
	case uNor:
		m.Regs[u.rd] = Value{I: ^(m.Regs[u.rs].I | m.Regs[u.rt].I)}
	case uSll:
		m.Regs[u.rd] = Value{I: m.Regs[u.rs].I << (uint32(u.imm) & 31)}
	case uSrl:
		m.Regs[u.rd] = Value{I: m.Regs[u.rs].I >> (uint32(u.imm) & 31)}
	case uSra:
		m.Regs[u.rd] = Value{I: uint32(int32(m.Regs[u.rs].I) >> (uint32(u.imm) & 31))}
	case uSllv:
		m.Regs[u.rd] = Value{I: m.Regs[u.rs].I << (m.Regs[u.rt].I & 31)}
	case uSrlv:
		m.Regs[u.rd] = Value{I: m.Regs[u.rs].I >> (m.Regs[u.rt].I & 31)}
	case uSrav:
		m.Regs[u.rd] = Value{I: uint32(int32(m.Regs[u.rs].I) >> (m.Regs[u.rt].I & 31))}
	case uSlt:
		var v uint32
		if int32(m.Regs[u.rs].I) < int32(m.Regs[u.rt].I) {
			v = 1
		}
		m.Regs[u.rd] = Value{I: v}
	case uSltu:
		var v uint32
		if m.Regs[u.rs].I < m.Regs[u.rt].I {
			v = 1
		}
		m.Regs[u.rd] = Value{I: v}
	case uSlti:
		var v uint32
		if int32(m.Regs[u.rs].I) < u.imm {
			v = 1
		}
		m.Regs[u.rd] = Value{I: v}
	case uSltiu:
		var v uint32
		if m.Regs[u.rs].I < uint32(u.imm) {
			v = 1
		}
		m.Regs[u.rd] = Value{I: v}
	case uLui:
		m.Regs[u.rd] = Value{I: uint32(u.imm) << 16}

	case uAddD:
		m.Regs[u.rd] = Value{F: m.Regs[u.rs].F + m.Regs[u.rt].F}
	case uSubD:
		m.Regs[u.rd] = Value{F: m.Regs[u.rs].F - m.Regs[u.rt].F}
	case uMulD:
		m.Regs[u.rd] = Value{F: m.Regs[u.rs].F * m.Regs[u.rt].F}
	case uDivD:
		m.Regs[u.rd] = Value{F: m.Regs[u.rs].F / m.Regs[u.rt].F}
	case uMovD:
		m.Regs[u.rd] = Value{F: m.Regs[u.rs].F}
	case uCEqD:
		m.FCC = m.Regs[u.rs].F == m.Regs[u.rt].F
	case uCLtD:
		m.FCC = m.Regs[u.rs].F < m.Regs[u.rt].F
	case uCLeD:
		m.FCC = m.Regs[u.rs].F <= m.Regs[u.rt].F
	case uBc1t:
		if m.FCC {
			nextPC = u.target
		}
		m.BranchCount++
	case uBc1f:
		if !m.FCC {
			nextPC = u.target
		}
		m.BranchCount++

	default: // uExec
		res, err := Exec(u.op, m.Regs[u.rs], m.Regs[u.rt], u.imm, m.FCC)
		if err != nil {
			return fmt.Errorf("%w at PC 0x%x", err, m.PC)
		}
		if u.op.IsBranch() {
			if res.Taken {
				nextPC = u.target
			}
			m.BranchCount++
		} else if u.rd != isa.RegZero {
			m.Regs[u.rd] = res.Val
		}
		if res.SetFCC {
			m.FCC = res.FCC
		}
	}

	if m.Warm != nil {
		m.Warm.Retire(m.PC, nextPC)
	}
	m.ICount++
	m.PC = nextPC
	return nil
}

// Run executes until the program exits or maxInstrs instructions have
// retired (0 means no limit is a mistake — pass an explicit bound).
func (m *Machine) Run(maxInstrs uint64) error {
	for !m.Env.Exited {
		if m.ICount >= maxInstrs {
			return fmt.Errorf("interp: exceeded %d instructions without exiting", maxInstrs)
		}
		if err := m.Step(); err != nil {
			return err
		}
	}
	return nil
}
