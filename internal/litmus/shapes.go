package litmus

import (
	"fmt"
	"math/rand"
	"strings"
)

// The shape catalogue. Every shape arranges its racing accesses over
// two shared words X and Y (Params.Pad apart) plus per-task result
// slots, and ends in a terminal "obs" task that prints the
// observations — so the program's output is the final state the
// machine committed, directly comparable against the oracle's.
type shape struct {
	name          string
	doc           string
	defaultFiller int
	defaultTasks  int
	emit          func(g *emitter, p Params)
}

var shapes = []shape{
	{"mp", "message passing: data store then flag store vs. flag load then data load", 4, 0, emitMP},
	{"sb", "store buffering: each task stores its own word then loads the other's", 4, 0, emitSB},
	{"lb", "load buffering: each task loads the other's word then stores its own", 4, 0, emitLB},
	{"corr", "coherence read-read: two same-address loads must not see new-then-old", 8, 0, emitCoRR},
	{"corw", "coherence write-write: two stores vs. two loads, no intermediate reorder", 8, 0, emitCoWW},
	{"xviol", "cross-task violation: delayed predecessor store vs. eager speculative load", 12, 0, emitXViol},
	{"chain", "deep read-modify-write chain on one shared counter across n tasks", 2, 4, emitChain},
	{"loop", "looping task incrementing a shared counter, predictor-driven exit", 0, 6, emitLoop},
	{"relstore", "release-before-store: register released early while stores are pending", 8, 0, emitRelStore},
	{"fwdrace", "forward-bit race: early register forward lets the successor's load overtake a late store", 10, 0, emitFwdRace},
	{"rand", "seeded random task chain over an aliased address pool (stressor shape)", 0, 4, emitRand},
}

func shapeByName(name string) *shape {
	for i := range shapes {
		if shapes[i].name == name {
			return &shapes[i]
		}
	}
	return nil
}

// outcome renders printed values the way the obs task prints them:
// each integer followed by one space.
func outcome(vals ...int) string {
	var b strings.Builder
	for _, v := range vals {
		fmt.Fprintf(&b, "%d ", v)
	}
	return b.String()
}

// emitter accumulates one generated program: task bodies in emission
// order (fallthrough between consecutive tasks is meaningful), task
// descriptors, result slots, and the observation list the terminal
// task prints.
type emitter struct {
	p         Params
	body      strings.Builder
	decls     []string
	slots     int
	obs       []obsItem
	forbidden map[string]string
	rng       *rand.Rand
}

type obsItem struct {
	sym string // memory observation: symbol...
	off int    // ...plus byte offset
	reg string // or a register observation
}

func newEmitter(p Params) *emitter {
	return &emitter{
		p:         p,
		forbidden: map[string]string{},
		rng:       rand.New(rand.NewSource(p.Seed)),
	}
}

// task opens a new task body and records its descriptor. Bodies are
// emitted in call order, so a task that falls through (loop exit)
// must be followed immediately by its fallthrough successor.
func (g *emitter) task(name, targets, create string) {
	d := "\t.task " + name
	if targets != "" {
		d += " targets=" + targets
	}
	if create != "" {
		d += " create=" + create
	}
	g.decls = append(g.decls, d)
	fmt.Fprintf(&g.body, "%s:\n", name)
}

func (g *emitter) label(name string) { fmt.Fprintf(&g.body, "%s:\n", name) }

func (g *emitter) ins(format string, a ...any) {
	fmt.Fprintf(&g.body, "\t"+format+"\n", a...)
}

// filler emits an n-deep dependent add chain on $t8 — pure delay, no
// shared state.
func (g *emitter) filler(n int) {
	if n <= 0 {
		return
	}
	g.ins("li $t8, 0")
	for i := 0; i < n; i++ {
		g.ins("addi $t8, $t8, 1")
	}
}

// slot allocates a result slot (its own ARB chunk: slots are 8 bytes
// apart) and returns its index.
func (g *emitter) slot() int {
	s := g.slots
	g.slots++
	return s
}

func (g *emitter) storeSlot(reg string, slot int) {
	g.ins("sw %s, %s", reg, slotRef(slot))
}

func slotRef(slot int) string {
	if slot == 0 {
		return "res"
	}
	return fmt.Sprintf("res+%d", 8*slot)
}

func (g *emitter) observeSlot(i int) { g.obs = append(g.obs, obsItem{sym: "res", off: 8 * i}) }
func (g *emitter) observeSym(sym string, off int) {
	g.obs = append(g.obs, obsItem{sym: sym, off: off})
}
func (g *emitter) observeReg(r string) { g.obs = append(g.obs, obsItem{reg: r}) }

// obsTask emits the terminal observer: it prints every recorded
// observation ("%d " each) and exits 0.
func (g *emitter) obsTask() {
	g.task("obs", "", "")
	for _, o := range g.obs {
		switch {
		case o.reg != "":
			g.ins("move $a0, %s", o.reg)
		case o.off != 0:
			g.ins("lw $a0, %s+%d", o.sym, o.off)
		default:
			g.ins("lw $a0, %s", o.sym)
		}
		g.ins("li $v0, 1")
		g.ins("syscall")
		g.ins("li $a0, 32")
		g.ins("li $v0, 11")
		g.ins("syscall")
	}
	g.ins("li $v0, 10")
	g.ins("li $a0, 0")
	g.ins("syscall")
}

func (g *emitter) forbid(out, why string) { g.forbidden[out] = why }

// finish assembles the full source: data layout (X, the pad gap, Y, a
// block-sized gap, then the 8-byte result slots and the stressor's
// address pool), the task bodies, and the descriptors.
func (g *emitter) finish() string {
	var b strings.Builder
	fmt.Fprintf(&b, "; litmus %s (generated)\n", g.p.Name())
	b.WriteString("\t.data\n")
	b.WriteString("X:\t.space 4\n")
	if g.p.Pad > 4 {
		fmt.Fprintf(&b, "\t.space %d\n", g.p.Pad-4)
	}
	b.WriteString("Y:\t.space 4\n")
	// Keep the result slots a cache block away from X/Y and 8-aligned
	// so each slot is its own ARB chunk.
	after := g.p.Pad + 4
	resOff := (after + 64 + 7) &^ 7
	fmt.Fprintf(&b, "\t.space %d\n", resOff-after)
	slots := g.slots
	if slots == 0 {
		slots = 1
	}
	fmt.Fprintf(&b, "res:\t.space %d\n", 8*slots)
	b.WriteString("pool:\t.space 256\n")
	b.WriteString("\t.text\n")
	b.WriteString(g.body.String())
	b.WriteString(strings.Join(g.decls, "\n"))
	b.WriteString("\n")
	return b.String()
}

// --- Classic shapes -------------------------------------------------

func emitMP(g *emitter, p Params) {
	r0, r1 := g.slot(), g.slot()
	g.task("main", "t0", "")
	g.ins("j t0 !s")
	g.task("t0", "t1", "")
	g.filler(p.Filler)
	g.ins("li $t0, 1")
	g.ins("sw $t0, X") // data
	g.ins("sw $t0, Y") // flag
	g.ins("j t1 !s")
	g.task("t1", "obs", "")
	g.ins("lw $t1, Y")
	g.ins("lw $t2, X")
	g.storeSlot("$t1", r0)
	g.storeSlot("$t2", r1)
	g.ins("j obs !s")
	g.observeSlot(r0)
	g.observeSlot(r1)
	g.obsTask()
	g.forbid(outcome(1, 0), "message passing: flag observed before data (missed cross-task violation)")
}

func emitSB(g *emitter, p Params) {
	r0, r1 := g.slot(), g.slot()
	g.task("main", "t0", "")
	g.ins("j t0 !s")
	g.task("t0", "t1", "")
	g.ins("li $t0, 1")
	g.ins("sw $t0, X")
	g.filler(p.Filler)
	g.ins("lw $t1, Y")
	g.storeSlot("$t1", r0)
	g.ins("j t1 !s")
	g.task("t1", "obs", "")
	g.ins("li $t0, 1")
	g.ins("sw $t0, Y")
	g.ins("lw $t1, X")
	g.storeSlot("$t1", r1)
	g.ins("j obs !s")
	g.observeSlot(r0)
	g.observeSlot(r1)
	g.obsTask()
	g.forbid(outcome(0, 0), "store buffering: both loads missed the other task's store")
	g.forbid(outcome(1, 1), "store buffering: program-order-earlier load observed a later task's store")
}

func emitLB(g *emitter, p Params) {
	r0, r1 := g.slot(), g.slot()
	g.task("main", "t0", "")
	g.ins("j t0 !s")
	g.task("t0", "t1", "")
	g.ins("lw $t0, Y")
	g.storeSlot("$t0", r0)
	g.filler(p.Filler)
	g.ins("li $t1, 1")
	g.ins("sw $t1, X")
	g.ins("j t1 !s")
	g.task("t1", "obs", "")
	g.ins("lw $t0, X")
	g.storeSlot("$t0", r1)
	g.filler(p.Filler)
	g.ins("li $t1, 1")
	g.ins("sw $t1, Y")
	g.ins("j obs !s")
	g.observeSlot(r0)
	g.observeSlot(r1)
	g.obsTask()
	g.forbid(outcome(1, 1), "load buffering: causality cycle (each load saw the other's later store)")
	g.forbid(outcome(0, 0), "load buffering: successor load committed a stale value")
}

func emitCoRR(g *emitter, p Params) {
	r0, r1 := g.slot(), g.slot()
	g.task("main", "t0", "")
	g.ins("j t0 !s")
	g.task("t0", "t1", "")
	g.filler(p.Filler)
	g.ins("li $t0, 1")
	g.ins("sw $t0, X")
	g.ins("j t1 !s")
	g.task("t1", "obs", "")
	g.ins("lw $t0, X")
	g.storeSlot("$t0", r0)
	g.filler(p.Filler)
	g.ins("lw $t1, X")
	g.storeSlot("$t1", r1)
	g.ins("j obs !s")
	g.observeSlot(r0)
	g.observeSlot(r1)
	g.obsTask()
	g.forbid(outcome(1, 0), "coherence: same-address loads saw new-then-old")
	g.forbid(outcome(0, 1), "coherence: first load committed stale value after violation should have squashed it")
	g.forbid(outcome(0, 0), "coherence: predecessor store never became visible")
}

func emitCoWW(g *emitter, p Params) {
	r0, r1 := g.slot(), g.slot()
	g.task("main", "t0", "")
	g.ins("j t0 !s")
	g.task("t0", "t1", "")
	g.ins("li $t0, 1")
	g.ins("sw $t0, X")
	g.filler(p.Filler)
	g.ins("li $t0, 2")
	g.ins("sw $t0, X")
	g.ins("j t1 !s")
	g.task("t1", "obs", "")
	g.ins("lw $t0, X")
	g.storeSlot("$t0", r0)
	g.ins("lw $t1, X")
	g.storeSlot("$t1", r1)
	g.ins("j obs !s")
	g.observeSlot(r0)
	g.observeSlot(r1)
	g.obsTask()
	g.forbid(outcome(1, 1), "coherence: intermediate store value committed")
	g.forbid(outcome(2, 1), "coherence: same-address loads saw final-then-intermediate")
	g.forbid(outcome(1, 2), "coherence: first load committed the overwritten value")
}

// --- Multiscalar-specific shapes ------------------------------------

func emitXViol(g *emitter, p Params) {
	r0 := g.slot()
	g.task("main", "t0", "")
	g.ins("j t0 !s")
	g.task("t0", "t1", "")
	g.filler(p.Filler) // the delay guarantees t1's load issues first
	g.ins("li $t0, 1")
	g.ins("sw $t0, X")
	g.ins("j t1 !s")
	g.task("t1", "obs", "")
	g.ins("lw $t0, X")
	g.storeSlot("$t0", r0)
	g.ins("j obs !s")
	g.observeSlot(r0)
	g.obsTask()
	g.forbid(outcome(0), "speculative load committed a stale value (violation missed)")
}

func emitChain(g *emitter, p Params) {
	n := p.Tasks
	g.task("main", "t0", "")
	g.ins("j t0 !s")
	for i := 0; i < n; i++ {
		next := fmt.Sprintf("t%d", i+1)
		if i == n-1 {
			next = "obs"
		}
		g.task(fmt.Sprintf("t%d", i), next, "")
		g.filler(p.Filler)
		g.ins("lw $t0, X")
		g.ins("addi $t0, $t0, 1")
		g.ins("sw $t0, X")
		g.ins("j %s !s", next)
	}
	g.observeSym("X", 0)
	g.obsTask()
	for k := 0; k < n; k++ {
		g.forbid(outcome(k), fmt.Sprintf("lost update: %d of %d increments committed", k, n))
	}
}

func emitLoop(g *emitter, p Params) {
	k := p.Tasks // trip count
	g.task("main", "loop", "$s0")
	g.ins("li $s0, 0 !f")
	g.ins("j loop !s")
	g.task("loop", "loop,obs", "$s0")
	g.ins("addi $s0, $s0, 1 !f")
	g.ins("lw $t0, X")
	g.ins("addi $t0, $t0, 1")
	g.ins("sw $t0, X")
	g.ins("li $at, %d", k)
	g.ins("bne $s0, $at, loop !s")
	g.observeSym("X", 0)
	g.observeReg("$s0")
	g.obsTask() // fallthrough target of the loop exit
	g.forbid(outcome(k-1, k), fmt.Sprintf("lost update: %d of %d loop increments committed", k-1, k))
}

func emitRelStore(g *emitter, p Params) {
	r0 := g.slot()
	g.task("main", "t0", "$s1")
	g.ins("li $s1, 42 !f")
	g.ins("j t0 !s")
	g.task("t0", "t1", "$s1")
	g.ins("lw $t0, Y") // 0: the non-writing path is always taken
	g.ins("bnez $t0, t0w")
	g.ins("release $s1") // resolve $s1 early, stores still pending
	g.filler(p.Filler)
	g.ins("li $t1, 1")
	g.ins("sw $t1, X")
	g.ins("j t1 !s")
	g.label("t0w")
	g.ins("li $s1, 7 !f")
	g.ins("sw $s1, X")
	g.ins("j t1 !s")
	g.task("t1", "obs", "")
	g.ins("lw $t0, X")
	g.storeSlot("$t0", r0)
	g.ins("j obs !s")
	g.observeSlot(r0)
	g.observeReg("$s1")
	g.obsTask()
	g.forbid(outcome(0, 42), "release-before-store: store issued after the release was lost")
	g.forbid(outcome(1, 7), "release-before-store: wrong-path register value forwarded")
}

func emitFwdRace(g *emitter, p Params) {
	r0 := g.slot()
	g.task("main", "t0", "")
	g.ins("j t0 !s")
	g.task("t0", "t1", "$s0")
	g.ins("li $s0, 5 !f") // early forward unblocks t1 immediately
	g.filler(p.Filler)
	g.ins("li $t0, 1")
	g.ins("sw $t0, X") // the store the forward raced ahead of
	g.ins("j t1 !s")
	g.task("t1", "obs", "")
	g.ins("lw $t0, X")
	g.ins("add $t1, $t0, $s0")
	g.storeSlot("$t1", r0)
	g.ins("j obs !s")
	g.observeSlot(r0)
	g.obsTask()
	g.forbid(outcome(5), "forward-bit race: the load overtook the predecessor's store")
}

// --- Randomized stressor shape --------------------------------------

// poolAddrs is the aliased address pool random programs draw from:
// X and Y plus pool offsets spanning 32 ARB chunks. The first entries
// are heavily weighted so distinct tasks keep colliding.
func (g *emitter) randAddr() string {
	// 50%: one of the two hot words; 25%: a hot pool word; 25%: a
	// scattered pool chunk (capacity pressure on small banks).
	switch g.rng.Intn(4) {
	case 0:
		return "X"
	case 1:
		return "Y"
	case 2:
		return fmt.Sprintf("pool+%d", 4*g.rng.Intn(4))
	default:
		return fmt.Sprintf("pool+%d", 8*g.rng.Intn(32))
	}
}

func emitRand(g *emitter, p Params) {
	n := 2 + g.rng.Intn(p.Tasks)
	g.task("main", "t0", "")
	g.ins("j t0 !s")
	for i := 0; i < n; i++ {
		next := fmt.Sprintf("t%d", i+1)
		if i == n-1 {
			next = "obs"
		}
		g.task(fmt.Sprintf("t%d", i), next, "")
		sum := g.slot()
		g.ins("li $t7, 0") // the task's load checksum
		ops := 3 + g.rng.Intn(8)
		for o := 0; o < ops; o++ {
			switch g.rng.Intn(4) {
			case 0: // store a literal
				g.ins("li $t0, %d", 1+g.rng.Intn(90))
				g.ins("sw $t0, %s", g.randAddr())
			case 1: // load into the checksum
				g.ins("lw $t0, %s", g.randAddr())
				g.ins("add $t7, $t7, $t0")
			case 2: // read-modify-write
				a := g.randAddr()
				g.ins("lw $t0, %s", a)
				g.ins("addi $t0, $t0, 1")
				g.ins("sw $t0, %s", a)
			default: // filler delay
				g.filler(1 + g.rng.Intn(6))
			}
		}
		g.storeSlot("$t7", sum)
		g.observeSlot(sum)
		g.ins("j %s !s", next)
	}
	g.observeSym("X", 0)
	g.observeSym("Y", 0)
	g.observeSym("pool", 0)
	g.observeSym("pool", 8)
	g.obsTask()
}
