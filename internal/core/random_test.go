package core

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"multiscalar/internal/asm"
	"multiscalar/internal/interp"
	"multiscalar/internal/taskpart"
)

// progGen builds random but well-structured programs: straight-line
// blocks, counted loops (possibly nested), if/else diamonds, and leaf
// function calls, over a register pool and a bounds-masked word buffer.
// Every program terminates and prints a checksum. The automatic task
// partitioner then annotates it, and the differential test requires
// identical behaviour from the interpreter, the scalar machine, and
// every multiscalar configuration.
type progGen struct {
	r     *rand.Rand
	b     strings.Builder
	label int
	funcs []string // leaf function labels
}

// Register pools: values the generator computes with, and reserved loop
// counters (never touched by generated bodies).
var genRegs = []string{"$s0", "$s1", "$s2", "$s3", "$t0", "$t1", "$t2", "$t3"}
var loopCounters = []string{"$s6", "$s7", "$t8"}

func (g *progGen) newLabel(prefix string) string {
	g.label++
	return fmt.Sprintf("%s%d", prefix, g.label)
}

func (g *progGen) reg() string { return genRegs[g.r.Intn(len(genRegs))] }

func (g *progGen) emit(format string, args ...interface{}) {
	fmt.Fprintf(&g.b, "\t"+format+"\n", args...)
}

// op emits one random computation instruction.
func (g *progGen) op() {
	d, a, b := g.reg(), g.reg(), g.reg()
	switch g.r.Intn(12) {
	case 0:
		g.emit("add %s, %s, %s", d, a, b)
	case 1:
		g.emit("sub %s, %s, %s", d, a, b)
	case 2:
		g.emit("xor %s, %s, %s", d, a, b)
	case 3:
		g.emit("and %s, %s, %s", d, a, b)
	case 4:
		g.emit("or %s, %s, %s", d, a, b)
	case 5:
		g.emit("addi %s, %s, %d", d, a, g.r.Intn(2001)-1000)
	case 6:
		g.emit("sll %s, %s, %d", d, a, g.r.Intn(8))
	case 7:
		g.emit("sra %s, %s, %d", d, a, g.r.Intn(8))
	case 8:
		g.emit("mul %s, %s, %s", d, a, b)
	case 9:
		// Memory access with a bounds-masked, word-aligned index.
		g.emit("andi $at, %s, 0xfc", a)
		if g.r.Intn(2) == 0 {
			g.emit("lw %s, buf($at)", d)
		} else {
			g.emit("sw %s, buf($at)", b)
		}
	case 10:
		// Shared global scalar: loads/stores of a fixed address create
		// memory-order recurrences across iteration tasks (the squash
		// traffic §3.1.1 discusses).
		g.emit("lw %s, buf+%d", d, 128+4*g.r.Intn(4))
	case 11:
		g.emit("sw %s, buf+%d", b, 128+4*g.r.Intn(4))
	}
}

func (g *progGen) block(n int) {
	for i := 0; i < n; i++ {
		g.op()
	}
}

// loop emits a counted loop at nesting depth `depth`.
func (g *progGen) loop(depth int) {
	ctr := loopCounters[depth]
	top := g.newLabel("L")
	g.emit("li %s, %d", ctr, 2+g.r.Intn(10))
	fmt.Fprintf(&g.b, "%s:\n", top)
	g.block(2 + g.r.Intn(5))
	if depth == 0 && g.r.Intn(3) == 0 {
		g.loop(depth + 1)
	}
	if len(g.funcs) > 0 && g.r.Intn(3) == 0 {
		g.call()
	}
	g.emit("addi %s, %s, -1", ctr, ctr)
	g.emit("bnez %s, %s", ctr, top)
}

// diamond emits an if/else over a data-dependent condition.
func (g *progGen) diamond() {
	els, end := g.newLabel("E"), g.newLabel("J")
	g.emit("slt $at, %s, %s", g.reg(), g.reg())
	g.emit("beqz $at, %s", els)
	g.block(1 + g.r.Intn(3))
	g.emit("j %s", end)
	fmt.Fprintf(&g.b, "%s:\n", els)
	g.block(1 + g.r.Intn(3))
	fmt.Fprintf(&g.b, "%s:\n", end)
}

func (g *progGen) call() {
	f := g.funcs[g.r.Intn(len(g.funcs))]
	g.emit("move $a0, %s", g.reg())
	g.emit("jal %s", f)
	g.emit("add %s, %s, $v0", g.reg(), g.reg())
}

// generate returns complete assembly source.
func (g *progGen) generate() string {
	nfuncs := g.r.Intn(3)
	for i := 0; i < nfuncs; i++ {
		g.funcs = append(g.funcs, fmt.Sprintf("fn%d", i))
	}

	g.b.WriteString("\t.data\nbuf:\t.space 256\n\t.text\nmain:\n")
	for i, r := range genRegs {
		g.emit("li %s, %d", r, (i+1)*37+g.r.Intn(100))
	}
	segments := 2 + g.r.Intn(4)
	for i := 0; i < segments; i++ {
		switch g.r.Intn(4) {
		case 0:
			g.block(3 + g.r.Intn(6))
		case 1, 2:
			g.loop(0)
		case 3:
			g.diamond()
		}
	}
	// Checksum: fold the register pool and a few buffer words.
	g.emit("li $v1, 0")
	for _, r := range genRegs {
		g.emit("xor $v1, $v1, %s", r)
	}
	for i := 0; i < 4; i++ {
		g.emit("lw $at, buf+%d", i*64)
		g.emit("add $v1, $v1, $at")
	}
	g.emit("move $a0, $v1")
	g.emit("li $v0, 1")
	g.emit("syscall")
	g.emit("li $v0, 10")
	g.emit("li $a0, 0")
	g.emit("syscall")

	for _, f := range g.funcs {
		fmt.Fprintf(&g.b, "%s:\n", f)
		switch g.r.Intn(3) {
		case 0:
			g.emit("add $v0, $a0, $a0")
		case 1:
			g.emit("sll $v0, $a0, 2")
			g.emit("sub $v0, $v0, $a0")
		case 2:
			g.emit("andi $v0, $a0, 0xff")
			g.emit("addi $v0, $v0, 13")
		}
		g.emit("jr $ra")
	}
	return g.b.String()
}

// TestRandomProgramsEquivalence is the repository's master differential
// test: 500 random programs, auto-partitioned, must behave identically on
// the interpreter, the scalar machine, and multiscalar machines across
// unit counts, widths and issue orders — output, exit code, and committed
// instruction count all equal, with the stale-forward checker enabled.
func TestRandomProgramsEquivalence(t *testing.T) {
	trials := 500
	if testing.Short() {
		trials = 10
	}
	for trial := 0; trial < trials; trial++ {
		g := &progGen{r: rand.New(rand.NewSource(int64(1000 + trial)))}
		src := g.generate()

		prog, err := asm.Assemble(src, asm.ModeMultiscalar)
		if err != nil {
			t.Fatalf("trial %d: assemble: %v\n%s", trial, err, src)
		}
		suppress := g.r.Intn(2) == 0
		if _, err := taskpart.Run(prog, taskpart.Options{SuppressAllCalls: suppress}); err != nil {
			t.Fatalf("trial %d: partition: %v\n%s", trial, err, src)
		}

		env := interp.NewSysEnv()
		om := interp.NewMachine(prog, env)
		if err := om.Run(10_000_000); err != nil {
			t.Fatalf("trial %d: oracle: %v\n%s", trial, err, src)
		}
		wantOut := env.Out.String()

		// Scalar machine on the same annotated binary is not meaningful
		// (stop bits end tasks); build the plain program for it.
		plain, err := asm.Assemble(src, asm.ModeScalar)
		if err != nil {
			t.Fatal(err)
		}
		senv := interp.NewSysEnv()
		sres, err := NewScalar(plain, senv, ScalarConfig(1+g.r.Intn(2), g.r.Intn(2) == 0)).Run()
		if err != nil {
			t.Fatalf("trial %d: scalar: %v\n%s", trial, err, src)
		}
		if sres.Out != wantOut {
			t.Fatalf("trial %d: scalar out %q, want %q\n%s", trial, sres.Out, wantOut, src)
		}

		for _, units := range []int{2, 4, 8} {
			width := 1 + g.r.Intn(2)
			ooo := g.r.Intn(2) == 0
			cfg := DefaultConfig(units, width, ooo)
			cfg.CheckForwards = true
			cfg.MaxCycles = 50_000_000
			menv := interp.NewSysEnv()
			m, err := NewMultiscalar(prog, menv, cfg)
			if err != nil {
				t.Fatalf("trial %d units=%d: %v", trial, units, err)
			}
			res, err := m.Run()
			if err != nil {
				t.Fatalf("trial %d units=%d width=%d ooo=%v: %v\n%s",
					trial, units, width, ooo, err, src)
			}
			if res.Out != wantOut {
				t.Fatalf("trial %d units=%d: out %q, want %q\n%s",
					trial, units, res.Out, wantOut, src)
			}
			if res.Committed != om.ICount {
				t.Fatalf("trial %d units=%d: committed %d, oracle %d\n%s",
					trial, units, res.Committed, om.ICount, src)
			}
		}
	}
}
