// Customtask demonstrates the automatic task partitioner: the program
// below carries no annotations at all — no task descriptors, no forward
// or stop bits. Partition() builds the CFG, finds the loops, forms tasks,
// computes create masks trimmed by dead-register analysis, and places the
// tag bits; the program then runs on a multiscalar processor.
package main

import (
	"fmt"
	"log"

	"multiscalar"
)

// An un-annotated program: dot product of two vectors, then a scaling
// function applied per element through a function call.
const src = `
	.data
va:	.space 800
vb:	.space 800
	.text
main:
	; initialize both vectors
	li  $t0, 0
init:
	sll $t1, $t0, 2
	addi $t2, $t0, 3
	sw  $t2, va($t1)
	addi $t3, $t0, 7
	sw  $t3, vb($t1)
	addi $t0, $t0, 1
	slt $at, $t0, 200
	bnez $at, init

	; dot product
	li  $t0, 0
	li  $s1, 0
dot:
	sll $t1, $t0, 2
	lw  $t2, va($t1)
	lw  $t3, vb($t1)
	mul $t4, $t2, $t3
	add $s1, $s1, $t4
	addi $t0, $t0, 1
	slt $at, $t0, 200
	bnez $at, dot

	move $a0, $s1
	jal  scale
	move $a0, $v0
	li $v0, 1
	syscall
	li $v0, 10
	li $a0, 0
	syscall

scale:
	sra $v0, $a0, 4
	jr  $ra
`

func main() {
	res, err := multiscalar.Assemble(src, multiscalar.WithMode(multiscalar.ModeMultiscalar))
	if err != nil {
		log.Fatal(err)
	}
	prog := res.Prog
	if len(prog.Tasks) != 0 {
		log.Fatal("expected an un-annotated program")
	}

	// The partitioner plays the role of the paper's modified GCC.
	if err := multiscalar.Partition(prog, multiscalar.PartitionOptions{}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("partitioner produced %d tasks:\n", len(prog.Tasks))
	for _, td := range prog.TaskList() {
		fmt.Printf("  %-12s entry=0x%04x create=%v targets=%d\n",
			td.Name, td.Entry, td.Create, len(td.Targets))
	}

	// The scalar baseline runs the plain build (no tag bits).
	sc, err := multiscalar.Assemble(src)
	if err != nil {
		log.Fatal(err)
	}
	sres, err := multiscalar.Run(sc.Prog, multiscalar.ScalarConfig(1, false), multiscalar.WithVerify())
	if err != nil {
		log.Fatal(err)
	}
	mres, err := multiscalar.Run(prog, multiscalar.DefaultConfig(8, 1, false), multiscalar.WithVerify())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nscalar: %d cycles; 8 units: %d cycles (speedup %.2f)\n",
		sres.Cycles, mres.Cycles, mres.Speedup(sres))
	fmt.Printf("output: %s\n", mres.Out)
}
