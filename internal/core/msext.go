package core

import (
	"fmt"

	"multiscalar/internal/arb"
	"multiscalar/internal/interp"
	"multiscalar/internal/isa"
)

// msExt is one unit's window onto the multiscalar machine: the unit's
// register file copy with ring semantics, the ARB-mediated memory system,
// the unit's instruction cache, and head-serialized syscalls.
type msExt struct {
	m  *Multiscalar
	id int
}

func (e *msExt) ReadReg(now uint64, r isa.Reg) (interp.Value, bool) {
	return e.m.rfs[e.id].read(now, r)
}

func (e *msExt) WriteReg(r isa.Reg, v interp.Value) {
	e.m.rfs[e.id].write(r, v)
}

func (e *msExt) Forward(now uint64, r isa.Reg, v interp.Value) {
	e.m.forward(e.id, now, r, v)
}

func (e *msExt) Load(now uint64, op isa.Op, addr uint32) (interp.Value, uint64, bool) {
	m := e.m
	res := m.arb.Load(e.id, m.head, m.active, addr, op.MemSize(), m.backing)
	if res.Overflow {
		if m.arb.Policy == arb.PolicySquash {
			m.arbOverflowSquash(now, addr)
		}
		return interp.Value{}, 0, false // retry next cycle
	}
	done := m.dbanks.Access(now, addr, false)
	return interp.LoadValue(op, res.Value), done, true
}

func (e *msExt) Store(now uint64, op isa.Op, addr uint32, v interp.Value) (uint64, bool) {
	m := e.m
	raw := interp.StoreValue(op, v)
	res := m.arb.Store(e.id, m.head, m.active, addr, op.MemSize(), raw)
	if res.Overflow {
		if e.id == m.head {
			// Head stores are non-speculative: on ARB overflow they may
			// write memory directly. No violation is possible — an entry
			// would exist if any successor had touched the location.
			m.backing.WriteN(addr, op.MemSize(), raw)
			done := m.dbanks.Access(now, addr, true)
			return done, true
		}
		if m.arb.Policy == arb.PolicySquash {
			m.arbOverflowSquash(now, addr)
		}
		return 0, false
	}
	if res.Violator >= 0 {
		// Record the distance-earliest violator seen this cycle.
		if m.viol < 0 || m.dist(res.Violator) < m.dist(m.viol) {
			m.viol = res.Violator
			m.violAddr = addr
		}
	}
	done := m.dbanks.Access(now, addr, true)
	return done, true
}

func (e *msExt) FetchDone(now uint64, groupAddr uint32) uint64 {
	return e.m.icaches[e.id].Access(now, groupAddr, false)
}

// ClaimSharedFU arbitrates the machine-wide FP/complex-integer units when
// Config.SharedFPUnits selects the shared-FU microarchitecture.
func (e *msExt) ClaimSharedFU(now uint64, class isa.FUClass) bool {
	m := e.m
	if m.cfg.SharedFPUnits <= 0 {
		return true
	}
	idx := 0
	if class == isa.FUComplexInt {
		idx = 1
	}
	if m.sharedFUAt != now {
		m.sharedFUAt = now
		m.sharedFUUsed = [2]int{}
	}
	if m.sharedFUUsed[idx] >= m.cfg.SharedFPUnits {
		return false
	}
	m.sharedFUUsed[idx]++
	return true
}

func (e *msExt) Syscall(now uint64) (uint32, bool, bool, error) {
	m := e.m
	if e.id != m.head {
		return 0, false, false, nil // syscalls execute only at the head
	}
	rf := m.rfs[e.id]
	for _, r := range []isa.Reg{isa.RegV0, isa.RegA0, isa.RegA1, isa.RegA2, isa.RegA3} {
		if rf.pending.Has(r) {
			return 0, false, false, fmt.Errorf("core: syscall with pending register %v", r)
		}
	}
	view := &arb.View{ARB: m.arb, Unit: e.id, Head: m.head, Active: m.active, Backing: m.backing}
	ret, writes, err := m.env.Call(view,
		rf.vals[isa.RegV0].I, rf.vals[isa.RegA0].I,
		rf.vals[isa.RegA1].I, rf.vals[isa.RegA2].I, rf.vals[isa.RegA3].I)
	return ret, writes, true, err
}
