package serve

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestFairQueueRoundRobin pins the starvation guarantee: with one worker
// slot, a client that queued a burst of jobs does not lock out a second
// client — admissions alternate between them.
func TestFairQueueRoundRobin(t *testing.T) {
	q := newFairQueue(1, 4)

	var mu sync.Mutex
	var order []string
	var wg sync.WaitGroup
	run := func(client string, step time.Duration) {
		defer wg.Done()
		if err := q.acquire(context.Background(), client); err != nil {
			t.Error(err)
			return
		}
		mu.Lock()
		order = append(order, client)
		mu.Unlock()
		time.Sleep(step)
		q.release(client)
	}

	// Client A floods four jobs and gets the only slot...
	wg.Add(4)
	for i := 0; i < 4; i++ {
		go run("A", 20*time.Millisecond)
	}
	time.Sleep(10 * time.Millisecond) // A's first job is running, three queued
	// ...then B shows up with two jobs.
	wg.Add(2)
	for i := 0; i < 2; i++ {
		go run("B", 20*time.Millisecond)
	}
	wg.Wait()

	// B must be interleaved, not appended: its first job is admitted
	// before A's backlog drains.
	firstB := -1
	lastA := -1
	for i, c := range order {
		if c == "B" && firstB < 0 {
			firstB = i
		}
		if c == "A" {
			lastA = i
		}
	}
	if firstB < 0 {
		t.Fatalf("B never admitted: order=%v", order)
	}
	if firstB > lastA {
		t.Fatalf("client B starved behind A's backlog: order=%v", order)
	}
	if q.inFlight() != 0 || q.queueDepth() != 0 {
		t.Fatalf("queue not drained: inflight=%d depth=%d", q.inFlight(), q.queueDepth())
	}
}

// TestFairQueuePerClientBound pins the in-flight bound: with plenty of
// global slots, one client may still only run perClient jobs at once.
func TestFairQueuePerClientBound(t *testing.T) {
	q := newFairQueue(8, 2)
	var mu sync.Mutex
	running, peak := 0, 0
	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := q.acquire(context.Background(), "greedy"); err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			running++
			if running > peak {
				peak = running
			}
			mu.Unlock()
			time.Sleep(15 * time.Millisecond)
			mu.Lock()
			running--
			mu.Unlock()
			q.release("greedy")
		}()
	}
	wg.Wait()
	if peak > 2 {
		t.Fatalf("per-client bound violated: peak in-flight %d > 2", peak)
	}
}

// TestFairQueueCancel pins that a cancelled waiter neither blocks the
// queue nor leaks a slot.
func TestFairQueueCancel(t *testing.T) {
	q := newFairQueue(1, 1)
	if err := q.acquire(context.Background(), "holder"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- q.acquire(ctx, "waiter") }()
	time.Sleep(5 * time.Millisecond)
	cancel()
	if err := <-done; err == nil {
		t.Fatal("cancelled acquire returned nil")
	}
	q.release("holder")
	// The slot must be free again for a third client.
	ctx2, cancel2 := context.WithTimeout(context.Background(), time.Second)
	defer cancel2()
	if err := q.acquire(ctx2, "next"); err != nil {
		t.Fatalf("slot leaked after cancel: %v", err)
	}
	q.release("next")
	if q.inFlight() != 0 || q.queueDepth() != 0 {
		t.Fatalf("queue not drained: inflight=%d depth=%d", q.inFlight(), q.queueDepth())
	}
}

// TestFairQueueManyClients floods the queue from many clients under the
// race detector and checks conservation of slots.
func TestFairQueueManyClients(t *testing.T) {
	q := newFairQueue(4, 2)
	var wg sync.WaitGroup
	for c := 0; c < 8; c++ {
		for j := 0; j < 5; j++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				id := fmt.Sprintf("c%d", c)
				if err := q.acquire(context.Background(), id); err != nil {
					t.Error(err)
					return
				}
				q.release(id)
			}(c)
		}
	}
	wg.Wait()
	if q.inFlight() != 0 || q.queueDepth() != 0 {
		t.Fatalf("queue not drained: inflight=%d depth=%d", q.inFlight(), q.queueDepth())
	}
}
