package workloads

import "strings"

// espresso reduces to massive_count, its hottest function (paper §5.3:
// two main loops, each loop body a task; "in the first loop, each
// iteration executes a variable number of instructions (cycles are lost
// due to load balance); in the second loop (which contains a nested
// loop), an iteration of the outer loop includes all the iterations of
// the inner loop"). Loop 1 population-counts one cube per task with a
// data-dependent bit-clearing loop; loop 2 intersect-counts a cube
// against a sliding window of cubes as one nested-loop task.
func init() {
	register(&Workload{
		Name:         "espresso",
		Description:  "massive_count bit-counting loops over cube tasks",
		DefaultScale: 150, // cubes
		TestScale:    24,
		Source:       espressoSource,
		Paper: PaperRow{
			ScalarM: 526.50, MultiM: 615.95, PctIncrease: 17.0,
			InOrder1: PaperPerf{ScalarIPC: 0.85, Speedup4: 1.34, Speedup8: 1.59, Pred4: 85.9, Pred8: 85.9},
			InOrder2: PaperPerf{ScalarIPC: 1.11, Speedup4: 1.22, Speedup8: 1.41, Pred4: 85.3, Pred8: 85.2},
			OOO1:     PaperPerf{ScalarIPC: 0.88, Speedup4: 1.47, Speedup8: 1.73, Pred4: 85.9, Pred8: 85.8},
			OOO2:     PaperPerf{ScalarIPC: 1.31, Speedup4: 1.12, Speedup8: 1.25, Pred4: 85.3, Pred8: 85.4},
		},
	})
}

const cubeWords = 4

func espressoSource(scale int) string {
	ncubes := scale
	r := newRNG(0xe59e550)
	var words []int
	for c := 0; c < ncubes; c++ {
		// Variable density: some cubes nearly empty, some dense — the
		// source of the load imbalance the paper calls out.
		density := r.intn(3)
		for w := 0; w < cubeWords; w++ {
			v := r.next()
			switch density {
			case 0:
				v &= v >> 7 & v >> 13 // sparse
			case 1:
				v &= 0xffff
			}
			words = append(words, int(v&0x7fffffff))
		}
	}
	var sb strings.Builder
	sb.WriteString("\t.data\ncubes:\n")
	sb.WriteString(wordLines(words))
	sb.WriteString(`
	.text
main:
	li   $s0, 0 !f           ; cube index
	li   $s1, 0 !f           ; total bit count
`)
	sb.WriteString("\tli   $s5, " + itoa(ncubes) + " !f\n")
	sb.WriteString(`	j    COUNT !s

	; ---- loop 1: popcount one cube per task (variable work) ----
COUNT:
	move $t9, $s0
	.msonly addi $s0, $s0, 1 !f
	.msonly slt  $at, $s0, $s5
	sll  $t0, $t9, 4         ; cube base (4 words x 4 bytes)
	li   $t1, 4              ; words
	li   $t2, 0              ; local count
CWORD:
	lw   $t3, cubes($t0)
CBIT:
	beqz $t3, CWNEXT
	addi $t4, $t3, -1
	and  $t3, $t3, $t4       ; clear lowest set bit
	addi $t2, $t2, 1
	j    CBIT
CWNEXT:
	addi $t0, $t0, 4
	addi $t1, $t1, -1
	bnez $t1, CWORD
	add  $s1, $s1, $t2 !f
	.msonly bnez $at, COUNT !s
	.sconly addi $s0, $s0, 1
	.sconly bne  $s0, $s5, COUNT
L2SETUP:
	li   $s0, 0 !f
	j    PAIRS !s

	; ---- loop 2: nested loop as one task: cube i vs next 4 cubes ----
PAIRS:
	move $t9, $s0
	.msonly addi $s0, $s0, 1 !f
	.msonly addi $t8, $s5, -4
	.msonly slt  $at, $s0, $t8
	sll  $t0, $t9, 4         ; cube i base
	li   $t5, 4              ; window
	move $t6, $t0
PWIN:
	addi $t6, $t6, 16        ; next cube base
	li   $t1, 4
	move $t2, $t0
	move $t3, $t6
PWORD:
	lw   $t4, cubes($t2)
	lw   $t7, cubes($t3)
	and  $t4, $t4, $t7
	beqz $t4, PWNEXT
	addi $s1, $s1, 1         ; non-empty intersection word
PWNEXT:
	addi $t2, $t2, 4
	addi $t3, $t3, 4
	addi $t1, $t1, -1
	bnez $t1, PWORD
	addi $t5, $t5, -1
	bnez $t5, PWIN
	.msonly release $s1
	.msonly bnez $at, PAIRS !s
	.sconly addi $s0, $s0, 1
	.sconly addi $t8, $s5, -4
	.sconly bne  $s0, $t8, PAIRS
DONE:
	move $a0, $s1
` + printInt + exitSeq + `
	.task main targets=COUNT create=$s0,$s1,$s5
	.task COUNT targets=COUNT,L2SETUP create=$s0,$s1
	.task L2SETUP targets=PAIRS create=$s0
	.task PAIRS targets=PAIRS,DONE create=$s0,$s1
	.task DONE
`)
	return sb.String()
}
