package core

import (
	"multiscalar/internal/interp"
	"multiscalar/internal/isa"
)

// regFile is one unit's copy of the logical register file (Section 2.2):
// local values, reservations from the accum mask, and the once-per-task
// sent set for ring forwarding. Timing of in-flight ring values is
// carried per register as a ready cycle, which models hop-by-hop delivery
// on the unidirectional ring without an event queue.
type regFile struct {
	vals    [isa.NumRegs]interp.Value
	readyAt [isa.NumRegs]uint64
	pending isa.RegMask // reservation: value not yet produced by a predecessor
	sent    isa.RegMask // registers this task has already forwarded
	accum   isa.RegMask // reservations installed at assignment (for stats/debug)
}

// read returns the register value if it is available at cycle now.
func (rf *regFile) read(now uint64, r isa.Reg) (interp.Value, bool) {
	if r == isa.RegZero {
		return interp.Value{}, true
	}
	if rf.pending.Has(r) {
		return interp.Value{}, false
	}
	if rf.readyAt[r] > now {
		return interp.Value{}, false
	}
	return rf.vals[r], true
}

// write performs a local register write: it satisfies local readers
// immediately and cancels any outstanding reservation (the task produced
// its own value before the predecessor's arrived; sequential semantics
// within the task make the local value the right one for local reads).
func (rf *regFile) write(r isa.Reg, v interp.Value) {
	if r == isa.RegZero {
		return
	}
	rf.vals[r] = v
	rf.readyAt[r] = 0
	rf.pending = rf.pending.Clear(r)
}

// deliver installs a value arriving on the ring. Only outstanding
// reservations accept deliveries: if the task already produced the
// register locally, the older inbound value is ignored.
func (rf *regFile) deliver(r isa.Reg, v interp.Value, readyAt uint64) {
	if !rf.pending.Has(r) {
		return
	}
	rf.vals[r] = v
	rf.readyAt[r] = readyAt
	rf.pending = rf.pending.Clear(r)
}

// nextReady returns the earliest future cycle at which an in-flight ring
// delivery becomes visible to reads (pu.NoEvent if none): the wakeup the
// sequencer supplies for a unit blocked on Ext.ReadReg. Registers still
// pending (no delivery yet) contribute nothing — their arrival requires
// a predecessor to forward, which is itself a progress event that keeps
// the machine ticking densely.
func (rf *regFile) nextReady(now uint64) uint64 {
	t := ^uint64(0)
	for r := range rf.readyAt {
		if w := rf.readyAt[r]; w > now && w < t {
			t = w
		}
	}
	return t
}

// sentValue records one forwarded register for rebuild after squashes.
type sentValue struct {
	val  interp.Value
	when uint64 // cycle the value left the unit
}
