// Package mslint statically verifies the multiscalar annotation contract
// (Section 2.2 of the paper) over an assembled isa.Program: create-mask
// soundness, forward/release coverage, forward-bit placement, and
// stop/exit structure. The modified GCC 2.5.8 of the paper guaranteed
// these properties by construction; hand-annotated assembly (and a buggy
// partitioner) can violate any of them, and each violation surfaces
// dynamically as a ring deadlock, a wrong value, or a silent
// completion-flush deep inside a timing run. mslint moves those failures
// to assembly time.
//
// The linter reconstructs each task's region from its entry following the
// same rules the processing units follow at runtime — a task extends until
// a satisfied stop bit, calls without stop bits pull the callee body into
// the task — and then runs per-task dataflow analyses over that region.
// Diagnostics carry a stable code (see Codes), a severity, the offending
// instruction address, and (when the caller provides the assembler's line
// table) the source line.
package mslint

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"multiscalar/internal/isa"
)

// Severity of a diagnostic. Errors break the annotation contract in ways
// the runtime treats (or should treat) as hard failures; warnings flag
// constructs that are legal but slow, suspicious, or unanalyzable.
type Severity int

const (
	SevWarning Severity = iota
	SevError
)

func (s Severity) String() string {
	if s == SevError {
		return "error"
	}
	return "warning"
}

// MarshalText makes severities readable in the JSON output.
func (s Severity) MarshalText() ([]byte, error) { return []byte(s.String()), nil }

// Diagnostic codes. Each code checks one clause of the annotation
// contract; docs/lint.md shows a minimal offending program per code.
const (
	// CodeCreateMissing (error): the task writes a register that is live
	// into a declared successor but is absent from the create mask, so the
	// successor consumes the stale pass-through value.
	CodeCreateMissing = "MS001"
	// CodeCreateDead (warn): a create-mask register is dead at every
	// declared successor; it serializes successors for nothing.
	CodeCreateDead = "MS002"
	// CodeFlushOnly (warn): a create-mask register is neither forwarded
	// nor released on some path from entry to an exit, so successors wait
	// for the completion flush (the slow backstop).
	CodeFlushOnly = "MS003"
	// CodeStaleForward (error): a forward bit sits on an update after
	// which the register may be written again within the task, so the ring
	// transmits a stale value.
	CodeStaleForward = "MS004"
	// CodeForeignForward (warn): a forward bit or release names a register
	// outside the create mask (or a forward bit sits on an instruction
	// with no destination); successors have no reservation to satisfy.
	CodeForeignForward = "MS005"
	// CodeUndeclaredExit (error): a stop-tagged exit leads to an address
	// that is not in the task descriptor's target list.
	CodeUndeclaredExit = "MS006"
	// CodeUnreachableTarget (warn): a declared target is reached by no
	// statically discoverable exit.
	CodeUnreachableTarget = "MS007"
	// CodeMissingStop (error): control crosses from the task region into
	// another task's entry (or returns from the task body) without a stop
	// bit, so the unit keeps executing the next task's instructions.
	CodeMissingStop = "MS008"
	// CodeTaskOverlap (warn): an instruction is reachable from two task
	// headers without being its own task (shared callee bodies excepted).
	CodeTaskOverlap = "MS009"
	// CodeTooManyTargets (error): the descriptor names more successor
	// targets than the hardware's task descriptor can hold.
	CodeTooManyTargets = "MS010"
	// CodeCallPushRA (warn): the task exits through a call but its pushra/
	// call metadata is missing or disagrees with the code, so the return
	// address stack mispredicts every return.
	CodeCallPushRA = "MS011"
	// CodeBadTaskRef (error): a declared target (or the task entry itself)
	// does not resolve to a task descriptor inside the text segment.
	CodeBadTaskRef = "MS012"
	// CodeStopInCallee (warn): a stop bit inside a called function body
	// would end the task mid-call on behalf of every caller.
	CodeStopInCallee = "MS013"
	// CodeIndirect (warn): an indirect call or jump inside the task region
	// defeats static exit and effect analysis.
	CodeIndirect = "MS014"
	// CodeEntryNotTask (error): the program carries task descriptors but
	// none at the program entry, so the sequencer cannot dispatch the
	// first task.
	CodeEntryNotTask = "MS015"
	// CodeFCCBoundary (warn): a bc1t/bc1f can execute before any FP
	// compare within its task, so the FP condition flag crosses a task
	// boundary (the flag is task-local; see docs/assembly.md).
	CodeFCCBoundary = "MS016"
	// CodeOverBroadCreate (warn, advisory): a create-mask register is
	// never written by the task; successors reserve and wait for a value
	// the task can only pass through, and the ring carries a send that
	// changed nothing. Dropping the bit lets successors read the incoming
	// value immediately.
	CodeOverBroadCreate = "MS017"
	// CodeDeadForward (warn, advisory): a forward bit or release names a
	// create-mask register that has already been forwarded or released on
	// every path to this point. Each create-mask register rides the ring
	// exactly once per task execution, so this send never happens.
	CodeDeadForward = "MS018"
	// CodeLateForward (warn, advisory): a release executes after
	// instructions unrelated to its register although the value was
	// already final, delaying the ring send and lengthening successors'
	// stalls.
	CodeLateForward = "MS019"
)

// Diag is one finding.
type Diag struct {
	Code     string   `json:"code"`
	Severity Severity `json:"severity"`
	Task     string   `json:"task,omitempty"`
	Reg      string   `json:"reg,omitempty"`
	Addr     uint32   `json:"addr,omitempty"`
	Line     int      `json:"line,omitempty"`
	Msg      string   `json:"msg"`
}

func (d *Diag) String() string {
	var b strings.Builder
	if d.Line > 0 {
		fmt.Fprintf(&b, "line %d: ", d.Line)
	} else if d.Addr != 0 {
		fmt.Fprintf(&b, "0x%x: ", d.Addr)
	}
	fmt.Fprintf(&b, "%s [%s]", d.Code, d.Severity)
	if d.Task != "" {
		fmt.Fprintf(&b, " task %s", d.Task)
	}
	fmt.Fprintf(&b, ": %s", d.Msg)
	return b.String()
}

// Report is the outcome of linting one program.
type Report struct {
	Diags []Diag `json:"diags"`
}

// Errors returns only the error-severity findings.
func (r *Report) Errors() []Diag {
	var out []Diag
	for _, d := range r.Diags {
		if d.Severity == SevError {
			out = append(out, d)
		}
	}
	return out
}

// Warnings returns only the warning-severity findings.
func (r *Report) Warnings() []Diag {
	var out []Diag
	for _, d := range r.Diags {
		if d.Severity == SevWarning {
			out = append(out, d)
		}
	}
	return out
}

// HasErrors reports whether any finding is an error.
func (r *Report) HasErrors() bool { return len(r.Errors()) > 0 }

// String renders the report one finding per line.
func (r *Report) String() string {
	var b strings.Builder
	for i := range r.Diags {
		b.WriteString(r.Diags[i].String())
		b.WriteByte('\n')
	}
	return b.String()
}

// JSON renders the report in the machine-readable format.
func (r *Report) JSON() ([]byte, error) { return json.MarshalIndent(r, "", "  ") }

// Err folds the report's errors into a single error value (nil when the
// report holds no errors). Callers that reject programs on lint errors
// (asm.Assemble, taskpart.Run) use this form.
func (r *Report) Err() error {
	errs := r.Errors()
	if len(errs) == 0 {
		return nil
	}
	msgs := make([]string, 0, len(errs))
	for i := range errs {
		msgs = append(msgs, errs[i].String())
	}
	return fmt.Errorf("mslint: %d error(s):\n  %s", len(errs), strings.Join(msgs, "\n  "))
}

// Lint verifies the annotation contract of a program. lines, when
// non-nil, maps instruction addresses to source lines (the assembler's
// line table) so diagnostics can name the offending source line; pass nil
// for programs without source (loaded containers, partitioner output).
// A program without task descriptors lints clean: there is no contract to
// check.
//
// Diagnostic order is deterministic and documented: ascending by source
// line, then instruction address, then code, then register (emission
// order breaks any remaining tie stably). Text, JSON, and SARIF output
// all inherit this order, so diffs across runs are stable.
func Lint(p *isa.Program, lines map[uint32]int) *Report {
	l := &linter{prog: p, lines: lines, rep: &Report{}}
	l.run()
	sort.SliceStable(l.rep.Diags, func(i, j int) bool {
		a, b := &l.rep.Diags[i], &l.rep.Diags[j]
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Addr != b.Addr {
			return a.Addr < b.Addr
		}
		if a.Code != b.Code {
			return a.Code < b.Code
		}
		return a.Reg < b.Reg
	})
	return l.rep
}

func (l *linter) diag(sev Severity, code, task string, reg isa.Reg, addr uint32, format string, args ...interface{}) {
	d := Diag{Code: code, Severity: sev, Task: task, Addr: addr, Msg: fmt.Sprintf(format, args...)}
	if reg != isa.RegZero {
		d.Reg = reg.String()
	}
	if l.lines != nil {
		d.Line = l.lines[addr]
	}
	l.rep.Diags = append(l.rep.Diags, d)
}
