package workloads

import "strings"

// wc counts lines, words and characters (paper §5.3: a loop containing an
// inner loop and a switch). A task is one 64-byte chunk: each task counts
// locally — fully parallel — then folds its local counts into the running
// totals at the end of the task, and forwards a one-bit "ended inside a
// word" state used by its successor's word-boundary fixup. The fixup is
// consumed late, so the state chain overlaps with the scan work.
func init() {
	register(&Workload{
		Name:         "wc",
		Description:  "line/word/char counting over 64-byte chunk tasks (GNU wc kernel)",
		DefaultScale: 256, // chunks
		TestScale:    24,
		Source:       wcSource,
		Paper: PaperRow{
			ScalarM: 1.22, MultiM: 1.43, PctIncrease: 17.3,
			InOrder1: PaperPerf{ScalarIPC: 0.89, Speedup4: 2.37, Speedup8: 4.33, Pred4: 99.9, Pred8: 99.9},
			InOrder2: PaperPerf{ScalarIPC: 1.09, Speedup4: 2.36, Speedup8: 4.27, Pred4: 99.9, Pred8: 99.9},
			OOO1:     PaperPerf{ScalarIPC: 0.89, Speedup4: 2.37, Speedup8: 4.34, Pred4: 99.9, Pred8: 99.9},
			OOO2:     PaperPerf{ScalarIPC: 1.13, Speedup4: 2.34, Speedup8: 4.26, Pred4: 99.9, Pred8: 99.9},
		},
	})
}

// wcText generates deterministic prose: words of 2-9 letters, lines of
// 4-11 words, padded so the total is a multiple of 64 bytes.
func wcText(chunks int) []int {
	n := chunks * 64
	r := newRNG(0x77c)
	out := make([]int, 0, n)
	wordsInLine := 0
	lineLen := 4 + r.intn(8)
	for len(out) < n-1 {
		wl := 2 + r.intn(8)
		for i := 0; i < wl && len(out) < n-1; i++ {
			out = append(out, int('a')+r.intn(26))
		}
		wordsInLine++
		if wordsInLine >= lineLen {
			out = append(out, '\n')
			wordsInLine = 0
			lineLen = 4 + r.intn(8)
		} else if len(out) < n-1 {
			out = append(out, ' ')
		}
	}
	for len(out) < n {
		out = append(out, '\n')
	}
	return out
}

func wcSource(scale int) string {
	text := wcText(scale)
	var b strings.Builder
	b.WriteString("\t.data\ntext:\n")
	b.WriteString(byteLines(text))
	b.WriteString(`
	.text
main:
	li   $s0, 0 !f           ; cursor
	li   $s1, 0 !f           ; lines
	li   $s2, 0 !f           ; words
	li   $s3, 0 !f           ; chars
	li   $s7, 1 !f           ; previous chunk ended in whitespace
`)
	b.WriteString("\tli   $s5, " + itoa(len(text)) + " !f\n")
	b.WriteString(`	j    CHUNK !s

CHUNK:
	move $t9, $s0
	.msonly addi $s0, $s0, 64 !f
	.msonly slt  $at, $s0, $s5   ; early loop-exit test (paper §3.1.2)
	li   $t0, 64             ; bytes left
	li   $t1, 0              ; local lines
	li   $t2, 0              ; local word starts (assuming space before)
	li   $t3, 1              ; in-space state, seeded "space"
	li   $t8, 0              ; first byte was non-space
	lbu  $t4, text($t9)
	li   $t5, ' '
	bne  $t4, $t5, FIRSTNS1
	j    BYTE
FIRSTNS1:
	li   $t5, '\n'
	beq  $t4, $t5, BYTE
	li   $t8, 1
BYTE:
	lbu  $t4, text($t9)
	li   $t5, '\n'
	bne  $t4, $t5, NOTNL
	addi $t1, $t1, 1         ; lines++
	li   $t3, 1
	j    NEXTB
NOTNL:
	li   $t5, ' '
	bne  $t4, $t5, INWORD
	li   $t3, 1
	j    NEXTB
INWORD:
	beqz $t3, NEXTB          ; already inside a word
	addi $t2, $t2, 1         ; word start
	li   $t3, 0
NEXTB:
	addi $t9, $t9, 1
	addi $t0, $t0, -1
	bnez $t0, BYTE

	; fold local counts into the running totals; boundary fixup: if this
	; chunk started inside a word and the previous chunk ended inside a
	; word, the first "word start" was not a new word
	beqz $t8, NOFIX
	bnez $s7, NOFIX
	addi $t2, $t2, -1
NOFIX:
	add  $s1, $s1, $t1 !f
	add  $s2, $s2, $t2 !f
	addi $s3, $s3, 64 !f
	move $s7, $t3 !f          ; "ended in whitespace" state for the successor
	.msonly bnez $at, CHUNK !s
	.sconly addi $s0, $s0, 64
	.sconly bne  $s0, $s5, CHUNK

DONE:
	move $a0, $s1
` + printInt + `
	li   $a0, ' '
	li   $v0, 11
	syscall
	move $a0, $s2
` + printInt + `
	li   $a0, ' '
	li   $v0, 11
	syscall
	move $a0, $s3
` + printInt + exitSeq + `
	.task main targets=CHUNK create=$s0,$s1,$s2,$s3,$s5,$s7
	.task CHUNK targets=CHUNK,DONE create=$s0,$s1,$s2,$s3,$s7
	.task DONE
`)
	return b.String()
}
