package cfg

import (
	"multiscalar/internal/isa"
)

// Flow passes over a TaskRegion. These answer the two questions the
// annotation contract of Section 2.2 turns on:
//
//   - may-write-later: can a register still be written at or after a
//     point within the task? Its complement identifies last updates —
//     the only places a forward bit is sound (the linter's stale-forward
//     check) and exactly the places the optimizer auto-places them.
//   - path-cover: on every path from the task entry to a point, has a
//     register already been forwarded or released? The complement at an
//     exit identifies flush-only paths (the linter's coverage check) and
//     the frontier where the optimizer inserts releases.
//
// Both are fixpoints over the region's internal edge set (exit edges
// contribute nothing: the task has ended).

// MayWriteIn computes, for each region block b, the registers that may
// be written at or after the start of b within the task:
// mwIn[b] = defs(b) ∪ (∪ succ mwIn) over internal edges.
func (r *TaskRegion) MayWriteIn() map[*Block]isa.RegMask {
	mwIn := map[*Block]isa.RegMask{}
	for changed := true; changed; {
		changed = false
		for i := len(r.Blocks) - 1; i >= 0; i-- {
			b := r.Blocks[i]
			var tail isa.RegMask
			for _, s := range r.Edges[b] {
				tail = tail.Union(mwIn[s])
			}
			in := r.BlockDefs(b).Union(tail)
			if in != mwIn[b] {
				mwIn[b] = in
				changed = true
			}
		}
	}
	return mwIn
}

// LaterWrites returns, per instruction of b, the registers that may be
// written strictly after that instruction within the task (the stale-
// forward predicate: a forward bit or release of a register in its
// later-set would transmit a stale value). mwIn must come from
// MayWriteIn on the same region.
func (r *TaskRegion) LaterWrites(b *Block, mwIn map[*Block]isa.RegMask) []isa.RegMask {
	n := b.NumInstrs()
	later := make([]isa.RegMask, n)
	var tail isa.RegMask
	for _, s := range r.Edges[b] {
		tail = tail.Union(mwIn[s])
	}
	for i := n - 1; i >= 0; i-- {
		later[i] = tail
		tail = tail.Union(TaskDefs(r.g.Prog.InstrAt(b.Start + uint32(i)*isa.InstrSize)))
	}
	return later
}

// SendGen returns, per region block, the create-mask registers the block
// explicitly sends on the ring: forward bits on destinations and release
// operands, intersected with create.
func (r *TaskRegion) SendGen(create isa.RegMask) map[*Block]isa.RegMask {
	gen := map[*Block]isa.RegMask{}
	for _, b := range r.Blocks {
		var m isa.RegMask
		for a := b.Start; a < b.End; a += isa.InstrSize {
			in := r.g.Prog.InstrAt(a)
			if in.Fwd {
				m = m.Set(in.Dest())
			}
			if in.Op == isa.OpRelease {
				m = m.Set(in.Rs)
			}
		}
		gen[b] = m.Intersect(create)
	}
	return gen
}

// CoverIn computes the must-cover sets: coverIn[b] holds the create-mask
// registers that have been forwarded or released on EVERY path from the
// task entry to the start of b; coverOut[b] additionally includes b's
// own sends. A descending fixpoint from the optimistic top (create), so
// loops converge to the meet over all paths.
func (r *TaskRegion) CoverIn(create isa.RegMask, gen map[*Block]isa.RegMask) (coverIn, coverOut map[*Block]isa.RegMask) {
	preds := r.Preds()
	entry := r.g.ByAddr[r.TD.Entry]
	coverIn = map[*Block]isa.RegMask{}
	coverOut = map[*Block]isa.RegMask{}
	for _, b := range r.Blocks {
		coverOut[b] = create // optimistic top for the descending fixpoint
	}
	for changed := true; changed; {
		changed = false
		for _, b := range r.Blocks {
			var in isa.RegMask
			if b != entry && len(preds[b]) > 0 {
				in = create
				for _, p := range preds[b] {
					in = in.Intersect(coverOut[p])
				}
			}
			coverIn[b] = in
			o := in.Union(gen[b])
			if o != coverOut[b] {
				coverOut[b] = o
				changed = true
			}
		}
	}
	return coverIn, coverOut
}

// LiveOut returns the registers live into any declared successor of the
// region's task: the union of the successor tasks' entry live-in sets,
// with retLive standing in for return successors (callers choose the
// precision: LiveAtReturn is the conservative ABI set, ReturnLiveOut the
// flow-derived one).
func (r *TaskRegion) LiveOut(retLive isa.RegMask) isa.RegMask {
	var m isa.RegMask
	for _, t := range r.TD.Targets {
		if t == isa.TargetReturn {
			m = m.Union(retLive)
			continue
		}
		if b := r.g.ByAddr[t]; b != nil {
			m = m.Union(b.LiveIn)
		}
	}
	return m
}

// ReturnLiveOut derives the registers live after a task exit by return
// from the program's actual call sites: every dynamic return target is
// the continuation of some stop-tagged jal (the task calls that push the
// return address), so the union of those call blocks' live-out sets
// bounds what any return continuation reads. ok is false when the set is
// unanalyzable — an indirect call anywhere (return addresses may not
// come from visible jals) or no stop-tagged call at all — and callers
// must fall back to the conservative ABI set (LiveAtReturn).
func (g *Graph) ReturnLiveOut() (m isa.RegMask, ok bool) {
	found := false
	for _, b := range g.Blocks {
		if b.IndirectCall {
			return 0, false
		}
		if b.CallTarget == 0 {
			continue
		}
		last := g.Prog.InstrAt(b.End - isa.InstrSize)
		if last.Stop != isa.StopNone {
			m = m.Union(b.LiveOut)
			found = true
		}
	}
	return m, found
}
