// mslint statically verifies the multiscalar annotation contract of a
// program: create-mask soundness, forward/release coverage, forward-bit
// placement, and stop/exit structure (see docs/lint.md for the full rule
// set). It accepts annotated assembly (.s) or a binary container (.msb)
// and prints one finding per line, a JSON report with -json, or a SARIF
// 2.1.0 log with -sarif (the format code-scanning services ingest). The
// exit status is 0 when the program is clean or carries only warnings,
// 1 on hard errors, 2 on usage or input errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"multiscalar/internal/asm"
	"multiscalar/internal/isa"
	"multiscalar/internal/mslint"
)

func main() {
	var (
		jsonOut  = flag.Bool("json", false, "print the report as JSON")
		sarifOut = flag.Bool("sarif", false, "print the report as SARIF 2.1.0 (for code-scanning upload)")
		quiet    = flag.Bool("q", false, "suppress warnings; print errors only")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: mslint [-json|-sarif] [-q] file.s|file.msb")
		os.Exit(2)
	}
	path := flag.Arg(0)

	var (
		prog  *isa.Program
		lines map[uint32]int
	)
	if strings.HasSuffix(path, ".msb") {
		f, err := os.Open(path)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		p, err := isa.ReadProgram(f)
		if err != nil {
			fatal(fmt.Errorf("%s: %v", path, err))
		}
		prog = p
	} else {
		src, err := os.ReadFile(path)
		if err != nil {
			fatal(err)
		}
		// Assemble without the built-in lint gate: this tool IS the gate,
		// and it wants to report every finding rather than stop at the
		// first rejection.
		res, err := asm.AssembleOpts(string(src), asm.Options{Mode: asm.ModeMultiscalar, NoLint: true})
		if err != nil {
			fatal(err)
		}
		prog, lines = res.Prog, res.Lines
	}

	rep := mslint.Lint(prog, lines)
	switch {
	case *sarifOut:
		out, err := rep.SARIF(path)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s\n", out)
	case *jsonOut:
		out, err := rep.JSON()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s\n", out)
	default:
		for _, d := range rep.Diags {
			if *quiet && d.Severity != mslint.SevError {
				continue
			}
			fmt.Printf("%s: %s\n", path, d.String())
		}
		errs, warns := len(rep.Errors()), len(rep.Warnings())
		if errs+warns > 0 {
			fmt.Printf("%s: %d error(s), %d warning(s)\n", path, errs, warns)
		}
	}
	if rep.HasErrors() {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mslint:", err)
	os.Exit(2)
}
