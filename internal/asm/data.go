package asm

import (
	"encoding/binary"
	"fmt"
	"math"

	"multiscalar/internal/isa"
)

// directive handles one directive line during pass 1.
func (a *assembler) directive(line int, toks []token) error {
	d := toks[0].text
	rest := toks[1:]
	switch d {
	case ".text":
		a.inData = false
		return nil
	case ".data":
		a.inData = true
		return nil
	case ".global", ".globl":
		if len(rest) != 1 || rest[0].kind != tokIdent {
			return a.errf(line, "%s wants one symbol", d)
		}
		a.entry = rest[0].text
		return nil
	case ".task":
		return a.taskDirective(line, rest)
	case ".align":
		if len(rest) != 1 || rest[0].kind != tokNum {
			return a.errf(line, ".align wants one constant")
		}
		if !a.inData {
			return a.errf(line, ".align only valid in .data")
		}
		a.alignData(1 << uint(rest[0].num))
		return nil
	case ".space":
		if len(rest) != 1 || rest[0].kind != tokNum || rest[0].num < 0 {
			return a.errf(line, ".space wants one non-negative constant")
		}
		if !a.inData {
			return a.errf(line, ".space only valid in .data")
		}
		a.data = append(a.data, make([]byte, rest[0].num)...)
		return nil
	case ".byte", ".half", ".word", ".float", ".double", ".ascii", ".asciiz":
		if !a.inData {
			return a.errf(line, "%s only valid in .data", d)
		}
		return a.dataValues(line, d, rest)
	default:
		return a.errf(line, "unknown directive %q", d)
	}
}

func (a *assembler) alignData(n int) {
	for len(a.data)%n != 0 {
		a.data = append(a.data, 0)
	}
}

func (a *assembler) dataValues(line int, d string, toks []token) error {
	ops, err := splitOperands(toks)
	if err != nil {
		return a.errf(line, "%v", err)
	}
	if len(ops) == 0 {
		return a.errf(line, "%s wants at least one value", d)
	}
	switch d {
	case ".ascii", ".asciiz":
		for _, op := range ops {
			if len(op) != 1 || op[0].kind != tokString {
				return a.errf(line, "%s wants string literals", d)
			}
			a.data = append(a.data, op[0].text...)
			if d == ".asciiz" {
				a.data = append(a.data, 0)
			}
		}
		return nil
	case ".byte", ".half":
		size := 1
		if d == ".half" {
			size = 2
			a.alignData(2)
		}
		for _, op := range ops {
			v, err := constExpr(op)
			if err != nil {
				return a.errf(line, "%s: %v (symbols are only allowed in .word)", d, err)
			}
			if size == 1 {
				a.data = append(a.data, byte(v))
			} else {
				a.data = binary.BigEndian.AppendUint16(a.data, uint16(v))
			}
		}
		return nil
	case ".word":
		a.alignData(4)
		for _, op := range ops {
			a.patches = append(a.patches, pendingPatch{
				line: line, offset: len(a.data), size: 4, toks: op,
			})
			a.data = append(a.data, 0, 0, 0, 0)
		}
		return nil
	case ".float", ".double":
		size := 4
		if d == ".double" {
			size = 8
		}
		a.alignData(size)
		for _, op := range ops {
			f, err := floatConst(op)
			if err != nil {
				return a.errf(line, "%s: %v", d, err)
			}
			if size == 4 {
				a.data = binary.BigEndian.AppendUint32(a.data, math.Float32bits(float32(f)))
			} else {
				a.data = binary.BigEndian.AppendUint64(a.data, math.Float64bits(f))
			}
		}
		return nil
	}
	return a.errf(line, "unknown data directive %q", d)
}

// constExpr evaluates an expression that may not reference symbols.
func constExpr(toks []token) (int64, error) {
	neg := false
	i := 0
	if len(toks) > 0 && toks[0].kind == tokPunct && (toks[0].text == "-" || toks[0].text == "+") {
		neg = toks[0].text == "-"
		i = 1
	}
	if i >= len(toks) || toks[i].kind != tokNum || toks[i].isFloat {
		return 0, fmt.Errorf("expected integer constant")
	}
	v := toks[i].num
	if i+1 != len(toks) {
		return 0, fmt.Errorf("expected single constant")
	}
	if neg {
		v = -v
	}
	return v, nil
}

func floatConst(toks []token) (float64, error) {
	neg := false
	i := 0
	if len(toks) > 0 && toks[0].kind == tokPunct && (toks[0].text == "-" || toks[0].text == "+") {
		neg = toks[0].text == "-"
		i = 1
	}
	if i >= len(toks) || toks[i].kind != tokNum || i+1 != len(toks) {
		return 0, fmt.Errorf("expected float constant")
	}
	f := toks[i].fnum
	if !toks[i].isFloat {
		f = float64(toks[i].num)
	}
	if neg {
		f = -f
	}
	return f, nil
}

// taskDirective records a .task line for pass-2 resolution. Syntax:
//
//	.task NAME [entry=LABEL] targets=L1,L2[,ret] [create=$r,...] [pushra=LABEL]
func (a *assembler) taskDirective(line int, toks []token) error {
	if a.mode == ModeScalar {
		return nil // tasks stripped from scalar builds
	}
	if len(toks) == 0 || toks[0].kind != tokIdent {
		return a.errf(line, ".task wants a name")
	}
	pt := pendingTask{line: line, name: toks[0].text, args: map[string][]token{}}
	rest := toks[1:]
	for len(rest) > 0 {
		if rest[0].kind != tokIdent || len(rest) < 2 || rest[1].kind != tokPunct || rest[1].text != "=" {
			return a.errf(line, ".task: expected key=value, got %q", rest[0].text)
		}
		key := rest[0].text
		rest = rest[2:]
		// Value runs until the next IDENT '=' pair.
		end := len(rest)
		for i := 0; i+1 < len(rest); i++ {
			if rest[i].kind == tokIdent && rest[i+1].kind == tokPunct && rest[i+1].text == "=" {
				// Only a key boundary if preceded by a comma-free gap;
				// values are comma-separated lists, so a bare IDENT '='
				// can only start a new key.
				end = i
				break
			}
		}
		if end == 0 {
			return a.errf(line, ".task: empty value for %q", key)
		}
		if _, dup := pt.args[key]; dup {
			return a.errf(line, ".task: duplicate key %q", key)
		}
		pt.args[key] = rest[:end]
		rest = rest[end:]
	}
	a.tasks = append(a.tasks, pt)
	return nil
}

// resolveTask builds the isa.TaskDescriptor for a recorded .task line.
func (a *assembler) resolveTask(pt pendingTask) error {
	entry := pt.name
	if v, ok := pt.args["entry"]; ok {
		if len(v) != 1 || v[0].kind != tokIdent {
			return a.errf(pt.line, ".task %s: entry wants a label", pt.name)
		}
		entry = v[0].text
	}
	entryAddr, ok := a.symbols[entry]
	if !ok {
		return a.errf(pt.line, ".task %s: entry label %q undefined", pt.name, entry)
	}
	td := &isa.TaskDescriptor{Name: pt.name, Entry: entryAddr}

	if tgtToks, ok := pt.args["targets"]; ok {
		tgtOps, err := splitOperands(tgtToks)
		if err != nil {
			return a.errf(pt.line, ".task %s: %v", pt.name, err)
		}
		for _, op := range tgtOps {
			if len(op) != 1 || op[0].kind != tokIdent {
				return a.errf(pt.line, ".task %s: bad target", pt.name)
			}
			if op[0].text == "ret" {
				td.Targets = append(td.Targets, isa.TargetReturn)
				continue
			}
			addr, ok := a.symbols[op[0].text]
			if !ok {
				return a.errf(pt.line, ".task %s: target %q undefined", pt.name, op[0].text)
			}
			td.Targets = append(td.Targets, addr)
		}
	}

	if v, ok := pt.args["create"]; ok {
		regOps, err := splitOperands(v)
		if err != nil {
			return a.errf(pt.line, ".task %s: %v", pt.name, err)
		}
		for _, op := range regOps {
			if len(op) != 1 || op[0].kind != tokReg {
				return a.errf(pt.line, ".task %s: create wants registers", pt.name)
			}
			r, err := isa.ParseReg(op[0].text)
			if err != nil {
				return a.errf(pt.line, ".task %s: %v", pt.name, err)
			}
			td.Create = td.Create.Set(r)
		}
	}

	if v, ok := pt.args["pushra"]; ok {
		if len(v) != 1 || v[0].kind != tokIdent {
			return a.errf(pt.line, ".task %s: pushra wants a label", pt.name)
		}
		addr, ok := a.symbols[v[0].text]
		if !ok {
			return a.errf(pt.line, ".task %s: pushra label %q undefined", pt.name, v[0].text)
		}
		td.PushRA = addr
		// The callee whose prediction triggers the push: explicit call=
		// key, defaulting to the task's first target.
		if cv, ok := pt.args["call"]; ok {
			if len(cv) != 1 || cv[0].kind != tokIdent {
				return a.errf(pt.line, ".task %s: call wants a label", pt.name)
			}
			caddr, ok := a.symbols[cv[0].text]
			if !ok {
				return a.errf(pt.line, ".task %s: call label %q undefined", pt.name, cv[0].text)
			}
			td.CallTarget = caddr
		} else if len(td.Targets) > 0 {
			td.CallTarget = td.Targets[0]
		} else {
			return a.errf(pt.line, ".task %s: pushra without targets or call=", pt.name)
		}
	}

	if prev, dup := a.prog.Tasks[entryAddr]; dup {
		return a.errf(pt.line, ".task %s: entry 0x%x already used by task %s", pt.name, entryAddr, prev.Name)
	}
	a.prog.Tasks[entryAddr] = td
	return nil
}
