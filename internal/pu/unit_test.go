package pu

import (
	"testing"

	"multiscalar/internal/asm"
	"multiscalar/internal/interp"
	"multiscalar/internal/isa"
	"multiscalar/internal/mem"
)

// mockExt is a scalar-like environment: registers always ready, memory
// with fixed latency, syscalls always handled.
type mockExt struct {
	Regs     [isa.NumRegs]interp.Value
	Mem      *mem.Memory
	Env      *interp.SysEnv
	Forwards map[isa.Reg]interp.Value

	LoadLatency  uint64
	StoreLatency uint64

	syscallDelay int // syscalls unhandled for this many attempts
}

func newMockExt() *mockExt {
	m := &mockExt{
		Mem:          mem.NewMemory(),
		Env:          interp.NewSysEnv(),
		Forwards:     map[isa.Reg]interp.Value{},
		LoadLatency:  2,
		StoreLatency: 1,
	}
	m.Regs[isa.RegSP] = interp.IntVal(isa.StackTop)
	m.Regs[isa.RegGP] = interp.IntVal(isa.DataBase)
	return m
}

func (m *mockExt) ReadReg(now uint64, r isa.Reg) (interp.Value, bool) { return m.Regs[r], true }
func (m *mockExt) WriteReg(r isa.Reg, v interp.Value) {
	if r != isa.RegZero {
		m.Regs[r] = v
	}
}
func (m *mockExt) Forward(now uint64, r isa.Reg, v interp.Value) { m.Forwards[r] = v }
func (m *mockExt) Load(now uint64, op isa.Op, addr uint32) (interp.Value, uint64, bool) {
	raw := m.Mem.ReadN(addr, op.MemSize())
	return interp.LoadValue(op, raw), now + m.LoadLatency, true
}
func (m *mockExt) Store(now uint64, op isa.Op, addr uint32, v interp.Value) (uint64, bool) {
	m.Mem.WriteN(addr, op.MemSize(), interp.StoreValue(op, v))
	return now + m.StoreLatency, true
}
func (m *mockExt) FetchDone(now uint64, groupAddr uint32) uint64 { return now }
func (m *mockExt) Syscall(now uint64) (uint32, bool, bool, error) {
	if m.syscallDelay > 0 {
		m.syscallDelay--
		return 0, false, false, nil
	}
	ret, writes, err := m.Env.Call(m.Mem,
		m.Regs[isa.RegV0].I, m.Regs[isa.RegA0].I,
		m.Regs[isa.RegA1].I, m.Regs[isa.RegA2].I, m.Regs[isa.RegA3].I)
	return ret, writes, true, err
}

func assembleMS(t *testing.T, src string) *isa.Program {
	t.Helper()
	p, err := asm.Assemble(src, asm.ModeMultiscalar)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return p
}

// runWholeProgram executes an entire program on a single unit with the
// mock environment (the scalar-machine usage pattern) and returns the
// ext, the cycle count, and the unit.
func runWholeProgram(t *testing.T, src string, cfg Config) (*mockExt, uint64, *Unit) {
	t.Helper()
	p := assembleMS(t, src)
	ext := newMockExt()
	ext.Mem.WriteBytes(isa.DataBase, p.Data)
	u := New(0, cfg, p, ext)
	u.Start(p.Entry, 0)
	var now uint64
	for !ext.Env.Exited {
		if now > 2_000_000 {
			t.Fatal("timeout")
		}
		if _, err := u.Tick(now); err != nil {
			t.Fatalf("tick: %v", err)
		}
		now++
	}
	return ext, now, u
}

const exitSeq = "\n\tli $v0, 10\n\tli $a0, 0\n\tsyscall\n"

func configs() map[string]Config {
	return map[string]Config{
		"1way-inorder": DefaultConfig(1, false),
		"2way-inorder": DefaultConfig(2, false),
		"1way-ooo":     DefaultConfig(1, true),
		"2way-ooo":     DefaultConfig(2, true),
	}
}

func TestWholeProgramMatchesInterp(t *testing.T) {
	srcs := map[string]string{
		"loop": `
main:
	li $t0, 10
	li $t1, 0
loop:
	add $t1, $t1, $t0
	addi $t0, $t0, -1
	bnez $t0, loop
	move $a0, $t1
	li $v0, 1
	syscall` + exitSeq,
		"memory": `
	.data
arr:	.word 5, 3, 8, 1, 9, 2, 7, 4
	.text
main:
	la  $t0, arr
	li  $t1, 8
	li  $t2, 0
sum:
	lw  $t3, 0($t0)
	add $t2, $t2, $t3
	addi $t0, $t0, 4
	addi $t1, $t1, -1
	bnez $t1, sum
	sw  $t2, arr
	move $a0, $t2
	li $v0, 1
	syscall` + exitSeq,
		"call": `
main:
	li  $a0, 6
	jal fact
	move $a0, $v0
	li  $v0, 1
	syscall` + exitSeq + `
fact:
	addi $sp, $sp, -8
	sw   $ra, 4($sp)
	sw   $a0, 0($sp)
	li   $v0, 1
	blez $a0, fdone
	addi $a0, $a0, -1
	jal  fact
	lw   $a0, 0($sp)
	mul  $v0, $v0, $a0
fdone:
	lw   $ra, 4($sp)
	addi $sp, $sp, 8
	jr   $ra
`,
		"float": `
	.data
v:	.double 1.5, 2.5, 3.5, 4.5
	.text
main:
	la $t0, v
	li $t1, 4
	mtc1 $f4, $zero
floop:
	l.d   $f0, 0($t0)
	add.d $f4, $f4, $f0
	addi  $t0, $t0, 8
	addi  $t1, $t1, -1
	bnez  $t1, floop
	mfc1  $a0, $f4
	li $v0, 1
	syscall` + exitSeq,
	}
	for name, src := range srcs {
		for cname, cfg := range configs() {
			t.Run(name+"/"+cname, func(t *testing.T) {
				// Oracle.
				p := assembleMS(t, src)
				env := interp.NewSysEnv()
				om := interp.NewMachine(p, env)
				if err := om.Run(1_000_000); err != nil {
					t.Fatalf("oracle: %v", err)
				}
				ext, _, u := runWholeProgram(t, src, cfg)
				if got, want := ext.Env.Out.String(), env.Out.String(); got != want {
					t.Fatalf("output = %q, want %q", got, want)
				}
				if u.Retired != om.ICount {
					t.Errorf("retired = %d, interp = %d", u.Retired, om.ICount)
				}
				// Final architectural register state matches (excluding $at
				// which pseudo-expansions may use differently... they do not:
				// same binary).
				for r := isa.Reg(1); r < isa.NumRegs; r++ {
					if ext.Regs[r] != om.Regs[r] {
						t.Errorf("reg %v = %v, want %v", r, ext.Regs[r], om.Regs[r])
					}
				}
				if !ext.Mem.Equal(om.Mem) {
					t.Error("memory diverged")
				}
			})
		}
	}
}

func TestTaskStopAlways(t *testing.T) {
	src := `
main:
	li $s0, 7
	addi $s0, $s0, 1 !f !s
	li $s1, 99
` + exitSeq
	p := assembleMS(t, src)
	ext := newMockExt()
	u := New(0, DefaultConfig(1, false), p, ext)
	u.Start(p.Entry, 0)
	var now uint64
	for !u.Done() {
		if now > 1000 {
			t.Fatal("task never completed")
		}
		if _, err := u.Tick(now); err != nil {
			t.Fatal(err)
		}
		now++
	}
	if ext.Regs[isa.RegS0].I != 8 {
		t.Errorf("s0 = %v", ext.Regs[isa.RegS0])
	}
	if ext.Regs[isa.RegS0+1].I == 99 {
		t.Error("executed past stop")
	}
	if u.ExitPC() != p.Entry+2*isa.InstrSize {
		t.Errorf("exitPC = 0x%x", u.ExitPC())
	}
	if v, ok := ext.Forwards[isa.RegS0]; !ok || v.I != 8 {
		t.Errorf("forward of $s0 = %v, %v", v, ok)
	}
	if u.Retired != 2 {
		t.Errorf("retired = %d", u.Retired)
	}
}

func TestTaskStopConditional(t *testing.T) {
	// Task is one loop iteration: backward branch is stop-always (both
	// directions leave the task).
	src := `
main:
	li $s0, 3
loop:
	addi $s0, $s0, -1 !f
	bnez $s0, loop !s
` + exitSeq
	p := assembleMS(t, src)
	loopAddr, _ := p.Symbol("loop")

	ext := newMockExt()
	u := New(0, DefaultConfig(1, false), p, ext)
	ext.Regs[isa.RegS0] = interp.IntVal(3)
	u.Start(loopAddr, 0)
	var now uint64
	for !u.Done() && now < 1000 {
		if _, err := u.Tick(now); err != nil {
			t.Fatal(err)
		}
		now++
	}
	if !u.Done() {
		t.Fatal("task never completed")
	}
	if u.Retired != 2 {
		t.Errorf("retired = %d, want 2 (one iteration)", u.Retired)
	}
	if u.ExitPC() != loopAddr {
		t.Errorf("exitPC = 0x%x, want loop 0x%x (taken)", u.ExitPC(), loopAddr)
	}
	if ext.Regs[isa.RegS0].I != 2 {
		t.Errorf("s0 = %v", ext.Regs[isa.RegS0])
	}
}

func TestStopNotTakenExit(t *testing.T) {
	src := `
main:
	li $s0, 1
loop:
	addi $s0, $s0, -1 !f
	bnez $s0, loop !snt
done:
	li $s1, 5
` + exitSeq
	p := assembleMS(t, src)
	loopAddr, _ := p.Symbol("loop")
	doneAddr, _ := p.Symbol("done")

	ext := newMockExt()
	u := New(0, DefaultConfig(2, true), p, ext)
	ext.Regs[isa.RegS0] = interp.IntVal(1)
	u.Start(loopAddr, 0)
	var now uint64
	for !u.Done() && now < 1000 {
		if _, err := u.Tick(now); err != nil {
			t.Fatal(err)
		}
		now++
	}
	if !u.Done() {
		t.Fatal("never done")
	}
	// s0 becomes 0 -> bnez not taken -> stop fires, exit at done.
	if u.ExitPC() != doneAddr {
		t.Errorf("exitPC = 0x%x, want 0x%x", u.ExitPC(), doneAddr)
	}
	if u.Retired != 2 {
		t.Errorf("retired = %d", u.Retired)
	}
}

func TestReleaseForwardsCurrentValue(t *testing.T) {
	src := `
main:
	li $s0, 42
	release $s0
	li $v0, 0 !s
` + exitSeq
	p := assembleMS(t, src)
	ext := newMockExt()
	u := New(0, DefaultConfig(1, false), p, ext)
	u.Start(p.Entry, 0)
	for now := uint64(0); !u.Done() && now < 1000; now++ {
		if _, err := u.Tick(now); err != nil {
			t.Fatal(err)
		}
	}
	if v, ok := ext.Forwards[isa.RegS0]; !ok || v.I != 42 {
		t.Errorf("release forwarded %v, %v", v, ok)
	}
}

func TestJrExitUsesRegister(t *testing.T) {
	src := `
main:
	jr $ra !s
` + exitSeq
	p := assembleMS(t, src)
	ext := newMockExt()
	ext.Regs[isa.RegRA] = interp.IntVal(0x1040)
	u := New(0, DefaultConfig(1, false), p, ext)
	u.Start(p.Entry, 0)
	for now := uint64(0); !u.Done() && now < 100; now++ {
		if _, err := u.Tick(now); err != nil {
			t.Fatal(err)
		}
	}
	if !u.Done() || u.ExitPC() != 0x1040 || !u.ExitByReturn() {
		t.Errorf("done=%v exit=0x%x byret=%v", u.Done(), u.ExitPC(), u.ExitByReturn())
	}
}

func TestSyscallStallsUntilHandled(t *testing.T) {
	src := `
main:
	li $a0, 5
	li $v0, 1
	syscall
` + exitSeq
	p := assembleMS(t, src)
	ext := newMockExt()
	ext.syscallDelay = 20
	u := New(0, DefaultConfig(2, true), p, ext)
	u.Start(p.Entry, 0)
	var now uint64
	for !ext.Env.Exited && now < 1000 {
		if _, err := u.Tick(now); err != nil {
			t.Fatal(err)
		}
		now++
	}
	if !ext.Env.Exited {
		t.Fatal("never exited")
	}
	if now < 20 {
		t.Errorf("finished in %d cycles despite syscall stall", now)
	}
	if ext.Env.Out.String() != "5" {
		t.Errorf("out = %q", ext.Env.Out.String())
	}
}

func TestTwoWayFasterOnIndependentWork(t *testing.T) {
	// Long stretch of independent adds.
	src := "main:\n"
	for i := 0; i < 16; i++ {
		src += "\tadd $t0, $zero, 1\n\tadd $t1, $zero, 2\n\tadd $t2, $zero, 3\n\tadd $t3, $zero, 4\n"
	}
	src += exitSeq
	_, c1, _ := runWholeProgram(t, src, DefaultConfig(1, false))
	_, c2, _ := runWholeProgram(t, src, DefaultConfig(2, false))
	if c2 >= c1 {
		t.Errorf("2-way (%d cycles) not faster than 1-way (%d)", c2, c1)
	}
}

func TestOOOToleratesLoadLatency(t *testing.T) {
	// Two independent long-latency loads, each followed by a dependent
	// use: an out-of-order unit overlaps the loads; an in-order unit
	// serializes at the first dependent add and pays both latencies.
	src := `
	.data
x:	.word 7
y:	.word 9
	.text
main:
	lw  $t8, x
	add $s0, $t8, 1
	lw  $t9, y
	add $s1, $t9, 1
` + exitSeq
	p := assembleMS(t, src)

	run := func(cfg Config) uint64 {
		ext := newMockExt()
		ext.Mem.WriteBytes(isa.DataBase, p.Data)
		ext.LoadLatency = 30
		u := New(0, cfg, p, ext)
		u.Start(p.Entry, 0)
		var now uint64
		for !ext.Env.Exited && now < 10000 {
			if _, err := u.Tick(now); err != nil {
				t.Fatal(err)
			}
			now++
		}
		if ext.Regs[isa.RegS0].I != 8 {
			t.Fatalf("s0 = %v", ext.Regs[isa.RegS0])
		}
		return now
	}
	cInO := run(DefaultConfig(1, false))
	cOOO := run(DefaultConfig(1, true))
	if cOOO >= cInO {
		t.Errorf("OOO (%d) not faster than in-order (%d) under load miss", cOOO, cInO)
	}
}

func TestDependentChainRespectsLatency(t *testing.T) {
	// mul (4 cycles) chain of 5: at least 20 cycles regardless of width.
	src := `
main:
	li  $t0, 3
	mul $t0, $t0, $t0
	mul $t0, $t0, $t0
	mul $t0, $t0, $t0
	mul $t0, $t0, $t0
	mul $t0, $t0, $t0
` + exitSeq
	_, cycles, _ := runWholeProgram(t, src, DefaultConfig(2, true))
	if cycles < 20 {
		t.Errorf("chain of 5 muls finished in %d cycles", cycles)
	}
}

func TestBranchMispredictionRecovers(t *testing.T) {
	// Data-dependent alternating branch: predictor will mispredict, and
	// results must still be correct.
	src := `
main:
	li $t0, 20
	li $t1, 0
	li $t2, 0
loop:
	andi $t3, $t0, 1
	beqz $t3, even
	addi $t1, $t1, 1
	j next
even:
	addi $t2, $t2, 1
next:
	addi $t0, $t0, -1
	bnez $t0, loop
	mul $a0, $t1, $t2
	li $v0, 1
	syscall
` + exitSeq
	for name, cfg := range configs() {
		t.Run(name, func(t *testing.T) {
			ext, _, _ := runWholeProgram(t, src, cfg)
			if got := ext.Env.Out.String(); got != "100" {
				t.Errorf("out = %q, want 100", got)
			}
		})
	}
}

func TestSquashClearsState(t *testing.T) {
	src := `
main:
	li $s0, 1
	li $s1, 2
	li $s2, 3 !s
` + exitSeq
	p := assembleMS(t, src)
	ext := newMockExt()
	u := New(0, DefaultConfig(1, false), p, ext)
	u.Start(p.Entry, 0)
	u.Tick(0)
	u.Tick(1)
	u.Squash()
	if u.Active() || u.Done() {
		t.Error("squash did not deactivate")
	}
	// Restart and run to completion.
	u.Start(p.Entry, 10)
	for now := uint64(10); !u.Done() && now < 1000; now++ {
		if _, err := u.Tick(now); err != nil {
			t.Fatal(err)
		}
	}
	if !u.Done() || u.Retired != 3 {
		t.Errorf("done=%v retired=%d", u.Done(), u.Retired)
	}
}

func TestActivityClassification(t *testing.T) {
	src := `
main:
	li $s0, 1 !s
` + exitSeq
	p := assembleMS(t, src)
	ext := newMockExt()
	u := New(0, DefaultConfig(1, false), p, ext)
	// Inactive: idle.
	u.Tick(0)
	if u.ActCounts[ActIdle] != 1 {
		t.Error("idle not counted")
	}
	u.Start(p.Entry, 1)
	var now uint64 = 1
	for !u.Done() && now < 100 {
		u.Tick(now)
		now++
	}
	// After done, ticks count as wait-retire.
	u.Tick(now)
	u.Tick(now + 1)
	if u.ActCounts[ActWaitRetire] < 2 {
		t.Errorf("wait-retire = %d", u.ActCounts[ActWaitRetire])
	}
	if u.ActCounts[ActCompute] == 0 {
		t.Error("no compute cycles recorded")
	}
}
