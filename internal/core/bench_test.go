package core_test

import (
	"testing"

	"multiscalar/internal/asm"
	"multiscalar/internal/core"
	"multiscalar/internal/interp"
	"multiscalar/internal/isa"
	"multiscalar/internal/workloads"
)

// These benchmarks measure the cycle-level simulators themselves — the
// hot path under every table msbench produces. The mcycles metric is
// simulated machine cycles per wall-clock second, in millions.

func buildFor(b *testing.B, name string, mode asm.Mode) *isa.Program {
	b.Helper()
	w := workloads.Get(name)
	if w == nil {
		b.Fatalf("workload %s missing", name)
	}
	p, err := w.Build(mode, w.TestScale)
	if err != nil {
		b.Fatal(err)
	}
	return p
}

func BenchmarkScalarCore(b *testing.B) {
	for _, name := range []string{"wc", "compress"} {
		b.Run(name, func(b *testing.B) {
			p := buildFor(b, name, asm.ModeScalar)
			var cycles uint64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := core.NewScalar(p, interp.NewSysEnv(), core.ScalarConfig(1, false)).Run()
				if err != nil {
					b.Fatal(err)
				}
				cycles += res.Cycles
			}
			b.ReportMetric(float64(cycles)/b.Elapsed().Seconds()/1e6, "mcycles/s")
		})
	}
}

// BenchmarkStallHeavy measures the wakeup scheduler's target case: a
// single multiscalar unit (every non-head activity serializes) with
// inflated memory and FP latencies, so most cycles are provable stalls.
// The skip/dense sub-benchmarks run the identical simulation with the
// scheduler on and off; their mcycles/s ratio is the scheduler's win.
func BenchmarkStallHeavy(b *testing.B) {
	p := buildFor(b, "compress", asm.ModeMultiscalar)
	for _, mode := range []struct {
		name   string
		noSkip bool
	}{{"skip", false}, {"dense", true}} {
		b.Run(mode.name, func(b *testing.B) {
			cfg := core.DefaultConfig(1, 1, false)
			cfg.DCacheHit = 24 // loads are timed by the cache, not isa.Latencies
			cfg.Latencies.IntMul = 24
			cfg.Latencies.SPMul = 40
			cfg.NoSkip = mode.noSkip
			var cycles, ticked uint64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m, err := core.NewMultiscalar(p, interp.NewSysEnv(), cfg)
				if err != nil {
					b.Fatal(err)
				}
				res, err := m.Run()
				if err != nil {
					b.Fatal(err)
				}
				cycles += res.Cycles
				ticked += res.CyclesTicked
			}
			b.ReportMetric(float64(cycles)/b.Elapsed().Seconds()/1e6, "mcycles/s")
			b.ReportMetric(100*float64(cycles-ticked)/float64(cycles), "%skipped")
		})
	}
}

func BenchmarkMultiscalarCore8Units(b *testing.B) {
	for _, name := range []string{"wc", "compress", "tomcatv"} {
		b.Run(name, func(b *testing.B) {
			p := buildFor(b, name, asm.ModeMultiscalar)
			var cycles uint64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m, err := core.NewMultiscalar(p, interp.NewSysEnv(), core.DefaultConfig(8, 1, false))
				if err != nil {
					b.Fatal(err)
				}
				res, err := m.Run()
				if err != nil {
					b.Fatal(err)
				}
				cycles += res.Cycles
			}
			b.ReportMetric(float64(cycles)/b.Elapsed().Seconds()/1e6, "mcycles/s")
		})
	}
}
