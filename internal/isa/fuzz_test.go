package isa

import (
	"bytes"
	"testing"
)

// FuzzReadProgram: the container decoder must reject arbitrary bytes with
// an error, never a panic or an out-of-range allocation.
func FuzzReadProgram(f *testing.F) {
	var buf bytes.Buffer
	p := &Program{
		Entry: TextBase,
		Text: []Instr{
			{Op: OpAddi, Rd: RegT0, Rs: RegZero, Imm: 1},
			{Op: OpSyscall, Stop: StopAlways},
		},
		Data: []byte{1, 2, 3},
		Tasks: map[uint32]*TaskDescriptor{
			TextBase: {Name: "main", Entry: TextBase, Create: MaskOf(RegT0),
				Targets: []uint32{TextBase}},
		},
		Symbols: map[string]uint32{"main": TextBase},
	}
	if err := WriteProgram(&buf, p); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("MSCB"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		q, err := ReadProgram(bytes.NewReader(data))
		if err == nil {
			// Anything accepted must be a valid program.
			if verr := q.Validate(); verr != nil {
				t.Fatalf("decoded program fails validation: %v", verr)
			}
		}
	})
}

// FuzzDecodeInstr: instruction decoding never panics.
func FuzzDecodeInstr(f *testing.F) {
	in := Instr{Op: OpAddi, Rd: RegT0, Rs: RegT0, Imm: -1, Fwd: true, Stop: StopTaken}
	f.Add(in.Encode(nil))
	f.Add(make([]byte, EncodedSize))
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _, _ = DecodeInstr(data)
	})
}
