package job

import (
	"testing"

	"multiscalar/internal/asm"
	"multiscalar/internal/core"
	"multiscalar/internal/sample"
)

func sampledSpec() *Spec {
	return &Spec{
		Op:       OpSampled,
		Workload: "example",
		Mode:     asm.ModeMultiscalar,
		Config:   core.DefaultConfig(4, 1, false),
	}
}

// TestSampledSpecKeySensitivity: sampling parameters are part of a
// sampled job's content-addressed identity — two regimes must never
// alias one cache entry — and a sampled job never aliases the simulate
// job of the same program and config.
func TestSampledSpecKeySensitivity(t *testing.T) {
	base := sampledSpec()
	baseKey, err := base.Key()
	if err != nil {
		t.Fatal(err)
	}

	variants := map[string]sample.Params{
		"window": {WindowInstrs: 4096},
		"warmup": {WarmupInstrs: 512},
		"period": {PeriodInstrs: 1 << 16},
		"offset": {OffsetInstrs: 7},
		"bias":   {BiasFrac: 0.05},
	}
	seen := map[string]string{"base": baseKey}
	for name, prm := range variants {
		s := sampledSpec()
		s.Sample = prm
		k, err := s.Key()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for prev, pk := range seen {
			if pk == k {
				t.Errorf("params %q and %q hash to the same key", name, prev)
			}
		}
		seen[name] = k
	}

	sim := sampledSpec()
	sim.Op = OpSimulate
	simKey, err := sim.Key()
	if err != nil {
		t.Fatal(err)
	}
	if simKey == baseKey {
		t.Error("sampled and simulate jobs of the same program share a key")
	}
}

// TestSampledSpecValidation: sampled jobs reject the options that have
// no meaning for an estimated run.
func TestSampledSpecValidation(t *testing.T) {
	for name, mutate := range map[string]func(*Spec){
		"machine-override": func(s *Spec) { s.Machine = MachineScalar },
		"want-trace":       func(s *Spec) { s.WantTrace = true },
		"want-snapshot":    func(s *Spec) { s.WantSnapshot = true },
		"verify":           func(s *Spec) { s.Verify = true },
	} {
		s := sampledSpec()
		mutate(s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: Validate accepted an invalid sampled spec", name)
		}
	}
	if err := sampledSpec().Validate(); err != nil {
		t.Errorf("valid sampled spec rejected: %v", err)
	}
}

// TestExecuteSampled: the sampled execution path produces an estimate
// whose functional oracle matches a plain simulate job of the same
// program.
func TestExecuteSampled(t *testing.T) {
	out, err := Execute(sampledSpec(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.Sampled == nil {
		t.Fatal("sampled job returned no estimate")
	}
	sim := sampledSpec()
	sim.Op = OpSimulate
	simOut, err := Execute(sim, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.Sampled.Out != simOut.Result.Out || out.Sampled.TotalInstrs != simOut.Result.Committed {
		t.Errorf("sampled oracle (%q, %d instrs) disagrees with simulate job (%q, %d)",
			out.Sampled.Out, out.Sampled.TotalInstrs, simOut.Result.Out, simOut.Result.Committed)
	}
	if out.Sampled.EstCycles == 0 {
		t.Error("estimate has zero cycles")
	}
}
