package bench

import (
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"multiscalar/internal/asm"
	"multiscalar/internal/core"
	"multiscalar/internal/isa"
	"multiscalar/internal/workloads"
)

// withWorkers runs the body under a specific pool bound, restoring the
// process-wide setting afterwards.
func withWorkers(t *testing.T, n int, fn func()) {
	t.Helper()
	old := Workers()
	SetWorkers(n)
	defer SetWorkers(old)
	fn()
}

func TestMemoReturnsIdenticalProgram(t *testing.T) {
	ResetMemo()
	w := workloads.Get("wc")
	if w == nil {
		t.Fatal("workload wc missing")
	}
	before := BuildsPerformed()
	p1, o1, err := buildOracle(w, asm.ModeMultiscalar, -1)
	if err != nil {
		t.Fatal(err)
	}
	p2, o2, err := buildOracle(w, asm.ModeMultiscalar, -1)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Error("memo hit returned a different *isa.Program")
	}
	if o1 != o2 {
		t.Errorf("memo hit returned a different oracle: %+v vs %+v", o1, o2)
	}
	if got := BuildsPerformed() - before; got != 1 {
		t.Errorf("builds performed = %d, want 1", got)
	}
	// A different key builds again.
	if _, _, err := buildOracle(w, asm.ModeScalar, -1); err != nil {
		t.Fatal(err)
	}
	if got := BuildsPerformed() - before; got != 2 {
		t.Errorf("builds performed = %d, want 2", got)
	}
}

// TestMemoSingleFlight races many first requests for the same key: exactly
// one build must run, and every caller must share its result. Run under
// -race in CI.
func TestMemoSingleFlight(t *testing.T) {
	ResetMemo()
	w := workloads.Get("cmp")
	if w == nil {
		t.Fatal("workload cmp missing")
	}
	before := BuildsPerformed()
	const goroutines = 16
	progs := make([]*isa.Program, goroutines)
	errs := make([]error, goroutines)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			progs[i], _, errs[i] = buildOracle(w, asm.ModeMultiscalar, -1)
		}(i)
	}
	wg.Wait()
	for i := 0; i < goroutines; i++ {
		if errs[i] != nil {
			t.Fatalf("goroutine %d: %v", i, errs[i])
		}
		if progs[i] != progs[0] {
			t.Errorf("goroutine %d got a different *isa.Program", i)
		}
	}
	if got := BuildsPerformed() - before; got != 1 {
		t.Errorf("builds performed = %d, want 1 (single flight)", got)
	}
}

func TestRunJobsReturnsLowestIndexError(t *testing.T) {
	errAt := func(bad ...int) func(i int) error {
		return func(i int) error {
			for _, b := range bad {
				if i == b {
					return fmt.Errorf("job %d failed", i)
				}
			}
			return nil
		}
	}
	for _, workers := range []int{1, 8} {
		withWorkers(t, workers, func() {
			err := runJobs(10, errAt(7, 3, 9))
			if err == nil || err.Error() != "job 3 failed" {
				t.Errorf("workers=%d: err = %v, want job 3's", workers, err)
			}
			if err := runJobs(10, errAt()); err != nil {
				t.Errorf("workers=%d: unexpected error %v", workers, err)
			}
		})
	}
}

func TestRunJobsRunsEveryJob(t *testing.T) {
	withWorkers(t, 4, func() {
		hit := make([]bool, 50)
		if err := runJobs(len(hit), func(i int) error { hit[i] = true; return nil }); err != nil {
			t.Fatal(err)
		}
		for i, h := range hit {
			if !h {
				t.Errorf("job %d never ran", i)
			}
		}
	})
}

// TestParallelMatchesSequential is the determinism contract: every table
// and sweep must format byte-identically whether jobs run on 1 worker or
// many, regardless of completion order.
func TestParallelMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every table twice")
	}
	sections := map[string]func() (string, error){
		"table2": func() (string, error) {
			rows, err := Table2(-1)
			return FormatTable2(rows), err
		},
		"perftable": func() (string, error) {
			rows, err := PerfTable(1, false, -1)
			return FormatPerfTable("t", rows), err
		},
		"breakdown": func() (string, error) {
			rows, err := Breakdown(4, -1)
			return FormatBreakdown(rows), err
		},
		"curves": func() (string, error) {
			curves, err := SpeedupCurves(1, false, -1, []int{2, 4, 8})
			return FormatCurves("c", curves), err
		},
		"mixes": func() (string, error) {
			rows, err := Mixes(-1)
			return FormatMixes(rows), err
		},
		"unitsweep": func() (string, error) {
			rows, err := UnitSweep("cmp", -1, []int{1, 2, 4, 8})
			return FormatAblation("u", rows), err
		},
		"ringsweep": func() (string, error) {
			rows, err := RingLatencySweep("compress", -1, []int{0, 1, 4})
			return FormatAblation("r", rows), err
		},
		"arbsweep": func() (string, error) {
			rows, err := ARBSweep("tomcatv", -1, []int{2, 256})
			return FormatAblation("a", rows), err
		},
		"forwarding": func() (string, error) {
			rows, err := ForwardingAblation("wc", -1)
			return FormatAblation("f", rows), err
		},
		"predictor": func() (string, error) {
			rows, err := PredictorAblation("gcc", -1)
			return FormatAblation("p", rows), err
		},
		"sharedfu": func() (string, error) {
			rows, err := SharedFUAblation("tomcatv", -1)
			return FormatAblation("s", rows), err
		},
	}
	for name, section := range sections {
		t.Run(name, func(t *testing.T) {
			var seq, par string
			var err error
			withWorkers(t, 1, func() { seq, err = section() })
			if err != nil {
				t.Fatal(err)
			}
			withWorkers(t, 8, func() { par, err = section() })
			if err != nil {
				t.Fatal(err)
			}
			if seq != par {
				t.Errorf("parallel output differs from sequential:\n--- seq ---\n%s--- par ---\n%s", seq, par)
			}
		})
	}
}

// TestConcurrentWorkloadsEndToEnd drives two different workloads through
// the full path — assemble, functional oracle, timing simulation, oracle
// verification — at the same time. Backed by -race in CI, it is the
// shared-state audit for workloads.Workload.Build and interp.NewSysEnv.
func TestConcurrentWorkloadsEndToEnd(t *testing.T) {
	ResetMemo()
	names := []string{"wc", "tomcatv", "cmp", "compress"}
	var wg sync.WaitGroup
	errs := make([]error, len(names))
	for i, name := range names {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			w := workloads.Get(name)
			if w == nil {
				errs[i] = errors.New(name + " missing")
				return
			}
			for units := 1; units <= 4; units *= 4 {
				if _, err := runOne(w, -1, units, 1, false); err != nil {
					errs[i] = err
					return
				}
			}
		}(i, name)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("%s: %v", names[i], err)
		}
	}
}

func TestCloneProgramIsolatesText(t *testing.T) {
	ResetMemo()
	w := workloads.Get("wc")
	p, _, err := buildOracle(w, asm.ModeMultiscalar, -1)
	if err != nil {
		t.Fatal(err)
	}
	q := cloneProgram(p)
	if len(q.Text) == 0 || &q.Text[0] == &p.Text[0] {
		t.Fatal("clone shares Text backing array")
	}
	orig := p.Text[0]
	q.Text[0].Fwd = !q.Text[0].Fwd
	if p.Text[0] != orig {
		t.Error("mutating the clone changed the memoized program")
	}
}

// TestRunSharingMatchesIsolated pins the fast-forward discipline the
// shared-run cache promises: a duplicate simulation point, answered by
// restoring the first run's finished-machine snapshot and re-running,
// must produce a Result identical to a fresh, isolated full simulation.
func TestRunSharingMatchesIsolated(t *testing.T) {
	ResetMemo()
	w := workloads.Get("wc")
	if w == nil {
		t.Fatal("workload wc missing")
	}
	p, o, err := buildOracle(w, asm.ModeMultiscalar, -1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig(4, 1, false)
	input := inputFor(w.Name)

	first, err := runShared(p, o, cfg, input, "first point")
	if err != nil {
		t.Fatal(err)
	}
	before := RunsRestored()
	dup, err := runShared(p, o, cfg, input, "duplicate point")
	if err != nil {
		t.Fatal(err)
	}
	if got := RunsRestored() - before; got != 1 {
		t.Fatalf("RunsRestored delta = %d, want 1 (duplicate must fast-forward)", got)
	}

	// Isolated reference: a fresh machine simulating the point in full,
	// outside the cache. applyRunFlags mirrors what runShared applied.
	refCfg := cfg
	applyRunFlags(&refCfg)
	m, err := newMachine(p, refCfg, input)
	if err != nil {
		t.Fatal(err)
	}
	isolated, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dup, isolated) {
		t.Errorf("restored duplicate diverges from isolated run:\nrestored: %+v\nisolated: %+v", dup, isolated)
	}
	if !reflect.DeepEqual(first, dup) {
		t.Errorf("restored duplicate diverges from the run that built the snapshot:\nfirst: %+v\ndup:   %+v", first, dup)
	}
}
