// Package workloads contains the benchmark programs of Section 5.2,
// rewritten as annotated assembly kernels for this ISA (the substitution
// for the paper's SPEC92/GNU binaries is documented in DESIGN.md §2: each
// kernel preserves the control and dependence structure the paper says
// drives its result). Every workload is a single source that builds both
// the scalar and the multiscalar binary (Table 2's instruction-count
// difference comes from .msonly lines: releases, local induction copies,
// early forwards).
package workloads

import (
	"fmt"
	"sort"

	"multiscalar/internal/asm"
	"multiscalar/internal/isa"
)

// PaperPerf is one cell group of Table 3 or Table 4: scalar IPC, 4- and
// 8-unit speedups and task prediction accuracies for one issue
// width/order combination.
type PaperPerf struct {
	ScalarIPC float64
	Speedup4  float64
	Speedup8  float64
	Pred4     float64 // percent
	Pred8     float64
}

// PaperRow holds the paper's published numbers for one benchmark, used by
// EXPERIMENTS.md and the bench harness to print paper-vs-measured tables.
type PaperRow struct {
	// Table 2 (dynamic instruction counts, in millions).
	ScalarM, MultiM, PctIncrease float64
	// Table 3: in-order units; Table 4: out-of-order units.
	InOrder1, InOrder2, OOO1, OOO2 PaperPerf
}

// Workload is one benchmark.
type Workload struct {
	Name        string
	Description string
	// Source returns the annotated assembly for a given problem scale
	// (scale 1 = the size used by the bench harness; tests use smaller).
	Source func(scale int) string
	// DefaultScale is the scale the bench harness runs.
	DefaultScale int
	// TestScale is a fast scale for unit tests.
	TestScale int
	Paper     PaperRow
	// Extra marks workloads beyond the paper's suite: they are excluded
	// from the paper-table harness but covered by the test matrix.
	Extra bool
}

// Build assembles the workload at a scale in the given mode.
func (w *Workload) Build(mode asm.Mode, scale int) (*isa.Program, error) {
	if scale <= 0 {
		scale = w.DefaultScale
	}
	p, err := asm.Assemble(w.Source(scale), mode)
	if err != nil {
		return nil, fmt.Errorf("workload %s (%v): %w", w.Name, mode, err)
	}
	return p, nil
}

var registry = map[string]*Workload{}

func register(w *Workload) {
	if _, dup := registry[w.Name]; dup {
		panic("duplicate workload " + w.Name)
	}
	registry[w.Name] = w
}

// Get returns a workload by name (nil if unknown).
func Get(name string) *Workload { return registry[name] }

// Names lists all workloads in the paper's table order.
func Names() []string {
	order := []string{"compress", "eqntott", "espresso", "gcc", "sc", "xlisp",
		"tomcatv", "cmp", "wc", "example"}
	var out []string
	for _, n := range order {
		if registry[n] != nil {
			out = append(out, n)
		}
	}
	// Any extras (not in the paper's list) go at the end alphabetically.
	var extra []string
	for n := range registry {
		found := false
		for _, o := range order {
			if n == o {
				found = true
			}
		}
		if !found {
			extra = append(extra, n)
		}
	}
	sort.Strings(extra)
	return append(out, extra...)
}

// All returns the paper's benchmark suite in table order (extras
// excluded — they have no paper reference numbers).
func All() []*Workload {
	var out []*Workload
	for _, n := range Names() {
		if w := registry[n]; !w.Extra {
			out = append(out, w)
		}
	}
	return out
}

// AllWithExtras returns every registered workload, extras last.
func AllWithExtras() []*Workload {
	var out []*Workload
	for _, n := range Names() {
		out = append(out, registry[n])
	}
	return out
}

// exitSeq terminates a program with exit code 0.
const exitSeq = `
	li $v0, 10
	li $a0, 0
	syscall
`

// printInt prints the integer in $a0.
const printInt = `
	li $v0, 1
	syscall
`

// rng is a tiny deterministic generator for input data (xorshift32), so
// inputs are reproducible without touching math/rand at simulation time.
type rng uint32

func newRNG(seed uint32) *rng { r := rng(seed | 1); return &r }

func (r *rng) next() uint32 {
	x := uint32(*r)
	x ^= x << 13
	x ^= x >> 17
	x ^= x << 5
	*r = rng(x)
	return x
}

func (r *rng) intn(n int) int { return int(r.next() % uint32(n)) }
