package workloads

import "strings"

// compress is the LZW coder kernel (paper §5.3: "all time is spent in a
// single (big) loop with a complex flow of control within. This loop is
// bound by a recurrence (getting the index into the hash table) that
// results in a long critical path through the entire program. The problem
// is further aggravated by the huge size of the hash table, which results
// in a high rate of cache misses."). A task is one input byte: the
// prefix-code register chains every iteration to the next, and the hash
// probe walks tables far larger than the data banks.
func init() {
	register(&Workload{
		Name:         "compress",
		Description:  "LZW hash-table loop with a prefix-code recurrence",
		DefaultScale: 3000, // input bytes
		TestScale:    300,
		Source:       compressSource,
		Paper: PaperRow{
			ScalarM: 71.04, MultiM: 81.21, PctIncrease: 14.3,
			InOrder1: PaperPerf{ScalarIPC: 0.69, Speedup4: 1.17, Speedup8: 1.50, Pred4: 86.8, Pred8: 86.1},
			InOrder2: PaperPerf{ScalarIPC: 0.87, Speedup4: 1.04, Speedup8: 1.34, Pred4: 86.8, Pred8: 86.4},
			OOO1:     PaperPerf{ScalarIPC: 0.72, Speedup4: 1.23, Speedup8: 1.56, Pred4: 86.7, Pred8: 86.0},
			OOO2:     PaperPerf{ScalarIPC: 0.94, Speedup4: 1.07, Speedup8: 1.33, Pred4: 86.7, Pred8: 86.3},
		},
	})
}

// compressText: skewed byte distribution with repeats, so the dictionary
// actually extends matches (as English-like text does).
func compressText(n int) []int {
	r := newRNG(0xc03b)
	out := make([]int, n)
	for i := range out {
		if i >= 4 && r.intn(3) != 0 {
			out[i] = out[i-4] // frequent repeated 4-grams
		} else {
			out[i] = int('a') + r.intn(8)
		}
	}
	return out
}

func compressSource(scale int) string {
	text := compressText(scale)
	// "The huge size of the hash table results in a high rate of cache
	// misses" — 128 KB tables exceed the scalar 64 KB dcache and the
	// banked multiscalar storage alike.
	const hashBits = 15
	var sb strings.Builder
	sb.WriteString("\t.data\ninput:\n")
	sb.WriteString(byteLines(text))
	sb.WriteString("\t.align 2\n")
	sb.WriteString("htab:\t.space " + itoa(4<<hashBits) + "\n")
	sb.WriteString("tabpad:\t.space 192\n")                        // keep the two tables off the same cache sets
	sb.WriteString("codetab:\t.space " + itoa(4<<hashBits) + "\n") // 16 KB
	sb.WriteString(`
	.text
main:
	li   $s0, 0 !f           ; input cursor
	li   $s1, 0 !f           ; ent (prefix code) — the recurrence
	li   $s2, 256 !f         ; next free code
	li   $s3, 0 !f           ; output checksum
`)
	sb.WriteString("\tli   $s5, " + itoa(len(text)) + " !f\n")
	sb.WriteString(`	j    BYTE !s

BYTE:
	move $t9, $s0
	.msonly addi $s0, $s0, 1 !f
	.msonly slt  $at, $s0, $s5
	lbu  $t0, input($t9)     ; c
	sll  $t1, $t0, 12
	add  $t1, $t1, $s1       ; fcode = (c<<12) + ent
	; hash: (fcode ^ fcode>>7) & mask
	srl  $t2, $t1, 7
	xor  $t2, $t2, $t1
	andi $t2, $t2, 0x7fff
	sll  $t2, $t2, 2         ; table offset
	lw   $t3, htab($t2)      ; probe
	beq  $t3, $t1, HIT
	; miss: emit ent, insert fcode, restart prefix at c
	add  $s3, $s3, $s1 !f
	sw   $t1, htab($t2)
	sw   $s2, codetab($t2)
	addi $s2, $s2, 1 !f
	move $s1, $t0 !f
	j    NEXT
HIT:
	lw   $s1, codetab($t2) !f ; ent = codetab[h] — the recurrence load
NEXT:
	.msonly release $s2, $s3  ; unwritten on the hit path
	.msonly bnez $at, BYTE !s
	.sconly addi $s0, $s0, 1
	.sconly bne  $s0, $s5, BYTE
DONE:
	add  $a0, $s3, $s1
` + printInt + exitSeq + `
	.task main targets=BYTE create=$s0,$s1,$s2,$s3,$s5
	.task BYTE targets=BYTE,DONE create=$s0,$s1,$s2,$s3
	.task DONE
`)
	return sb.String()
}
