package workloads

import "strings"

// cmp mirrors GNU cmp's structure (paper §5.3: "straightforward, with
// almost all its time in a loop [that] contains an inner loop"): the
// outer loop walks two buffers in 64-byte chunks, the inner loop compares
// bytes. A task is one chunk. The buffers are identical until a single
// difference near the end, so task prediction is near-perfect and the
// work is embarrassingly parallel — the paper reports the largest speedup
// here (6.24 at 8 units).
func init() {
	register(&Workload{
		Name:         "cmp",
		Description:  "byte-compare two buffers in 64-byte chunk tasks (GNU cmp kernel)",
		DefaultScale: 256, // chunks
		TestScale:    24,
		Source:       cmpSource,
		Paper: PaperRow{
			ScalarM: 0.98, MultiM: 1.09, PctIncrease: 10.9,
			InOrder1: PaperPerf{ScalarIPC: 0.95, Speedup4: 3.23, Speedup8: 6.24, Pred4: 99.4, Pred8: 99.4},
			InOrder2: PaperPerf{ScalarIPC: 1.32, Speedup4: 3.02, Speedup8: 5.82, Pred4: 99.4, Pred8: 99.4},
			OOO1:     PaperPerf{ScalarIPC: 0.95, Speedup4: 3.24, Speedup8: 6.28, Pred4: 99.2, Pred8: 99.1},
			OOO2:     PaperPerf{ScalarIPC: 1.68, Speedup4: 2.76, Speedup8: 5.30, Pred4: 99.2, Pred8: 99.2},
		},
	})
}

func cmpSource(scale int) string {
	nchunks := scale
	n := nchunks * 64
	r := newRNG(0xc41)
	data := make([]int, n)
	for i := range data {
		data[i] = int(r.next() % 256)
	}
	// One difference at ~93% of the way through (cmp exits early there).
	diffAt := n * 15 / 16
	var b strings.Builder
	b.WriteString("\t.data\nbufa:\n")
	b.WriteString(byteLines(data))
	b.WriteString("bufpad:\t.space 192\n") // odd block offset: keep the buffers off the same cache sets
	data[diffAt] = (data[diffAt] + 1) % 256
	b.WriteString("bufb:\n")
	b.WriteString(byteLines(data))
	b.WriteString(`
	.text
main:
	li   $s0, 0 !f
`)
	b.WriteString("\tli   $s5, " + itoa(n) + " !f\n")
	b.WriteString(`	li   $s6, -1 !f          ; mismatch position (-1 = none)
	j    CHUNK !s

CHUNK:
	move $t9, $s0
	.msonly addi $s0, $s0, 64 !f
	li   $t0, 64
BYTE:
	lbu  $t1, bufa($t9)
	lbu  $t2, bufb($t9)
	bne  $t1, $t2, MISMATCH
	addi $t9, $t9, 1
	addi $t0, $t0, -1
	bnez $t0, BYTE
	; $s6 is only written on the mismatch path: release it here, exactly
	; like Figure 4 releases $4 on the path that skips its writer
	.msonly release $s6
	.sconly addi $s0, $s0, 64
	bne  $s0, $s5, CHUNK !s
EQUAL:
	li   $a0, -1
` + printInt + exitSeq + `
MISMATCH:
	move $s6, $t9
	move $a0, $s6
` + printInt + exitSeq + `
	.task main targets=CHUNK create=$s0,$s5,$s6
	.task CHUNK targets=CHUNK,EQUAL create=$s0,$s6
	.task EQUAL
`)
	return b.String()
}

func byteLines(vals []int) string {
	var b strings.Builder
	for i := 0; i < len(vals); i += 16 {
		end := i + 16
		if end > len(vals) {
			end = len(vals)
		}
		b.WriteString("\t.byte ")
		for j := i; j < end; j++ {
			if j > i {
				b.WriteString(", ")
			}
			b.WriteString(itoa(vals[j]))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var buf [12]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
