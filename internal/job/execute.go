package job

import (
	"bytes"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"multiscalar/internal/asm"
	"multiscalar/internal/core"
	"multiscalar/internal/interp"
	"multiscalar/internal/isa"
	"multiscalar/internal/sample"
	"multiscalar/internal/trace"
	"multiscalar/internal/workloads"
)

// DefaultMaxInstrs bounds functional executions that set no explicit
// MaxInstrs — large enough for every workload in the suite, small enough
// that a non-terminating program errors out rather than spinning forever.
const DefaultMaxInstrs uint64 = 1 << 40

// Runtime carries the per-call attachments that never participate in a
// spec's identity: live observers and resumption state. A nil Runtime is
// a plain run.
type Runtime struct {
	// Sink receives the typed event stream during the run (the facade's
	// WithTrace). Ignored when the spec itself requests a trace artifact
	// — an artifact run owns its writer.
	Sink trace.Sink

	// Stdin, when non-nil, overrides Spec.Stdin with a streaming reader
	// (the facade's WithStdin escape hatch for os.Stdin-style sources;
	// service requests always carry bytes in the spec so they can hash).
	Stdin io.Reader

	// Checkpoint: at the first executed cycle at or after CheckpointAt,
	// serialize the machine and pass the bytes to CheckpointSave.
	CheckpointAt   uint64
	CheckpointSave func(snapshot []byte) error

	// Restore resumes the run from a snapshot instead of the entry point.
	Restore []byte
}

// Oracle is the functional-simulator reference for one program: the
// output and instruction counts every timing run of it must reproduce.
type Oracle struct {
	ICount                  uint64
	Loads, Stores, Branches uint64
	Out                     string
	ExitCode                int32
}

// Output is what a job produces.
type Output struct {
	Result   *core.Result     // simulate jobs
	Sampled  *sample.Estimate // sampled jobs
	Oracle   *Oracle          // set when the job ran the functional oracle
	Program  []byte           // assemble jobs: the .msb container bytes
	Trace    []byte           // .mstrc bytes when Spec.WantTrace
	Snapshot []byte           // finished-machine snapshot when Spec.WantSnapshot
}

// sampleRunner fans a sampled job's detailed windows out over a worker
// pool. The bench package registers its job pool here (SetSampleRunner)
// so window-level parallelism and section-level parallelism share one
// bound; nil runs windows serially.
var sampleRunner atomic.Pointer[sample.Runner]

// SetSampleRunner registers the worker pool sampled jobs fan their
// detailed windows over.
func SetSampleRunner(r sample.Runner) { sampleRunner.Store(&r) }

// buildMemo single-flights program construction per assemble-shaped key:
// a workload built at one (mode, scale) — or a source text built at one
// mode — is assembled once per process no matter how many simulate jobs
// reference it. The cached Program is shared and must not be mutated.
var buildMemo sync.Map // string -> *buildOnce

type buildOnce struct {
	once sync.Once
	prog *isa.Program
	err  error
}

// ResetBuildMemo drops the process-wide program-build cache (tests).
func ResetBuildMemo() { buildMemo = sync.Map{} }

// Resolve returns the spec's program, building it if the spec names a
// source text or workload (memoized, single-flight). The returned
// program is shared: clone before mutating.
func (s *Spec) Resolve() (*isa.Program, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if s.Program != nil {
		return s.Program, nil
	}
	bs := Spec{Op: OpAssemble, Source: s.Source, Workload: s.Workload, Scale: s.Scale, Mode: s.Mode}
	key, err := bs.Key()
	if err != nil {
		return nil, err
	}
	v, _ := buildMemo.LoadOrStore(key, &buildOnce{})
	e := v.(*buildOnce)
	e.once.Do(func() { e.prog, e.err = build(s) })
	return e.prog, e.err
}

func build(s *Spec) (*isa.Program, error) {
	if s.Workload != "" {
		w := workloads.Get(s.Workload)
		if w == nil {
			return nil, fmt.Errorf("job: unknown workload %q", s.Workload)
		}
		return w.Build(s.Mode, s.Scale)
	}
	return asm.Assemble(s.Source, s.Mode)
}

// machine is the common surface of the two timing machines.
type machine interface {
	Run() (*core.Result, error)
	Save() ([]byte, error)
	Restore([]byte) error
	ScheduleCheckpoint(cycle uint64, fn func() error)
}

// Execute runs one job to completion: the one execution path behind the
// facade's Run, the bench harness, and the msserve engine. rt may be nil.
func Execute(s *Spec, rt *Runtime) (*Output, error) {
	if rt == nil {
		rt = &Runtime{}
	}
	p, err := s.Resolve()
	if err != nil {
		return nil, err
	}
	if s.Op == OpAssemble {
		var buf bytes.Buffer
		if err := isa.WriteProgram(&buf, p); err != nil {
			return nil, err
		}
		return &Output{Program: buf.Bytes()}, nil
	}
	if s.Op == OpSampled {
		return executeSampled(s, rt, p)
	}

	cfg := s.Config
	if rt.Sink != nil && !s.WantTrace {
		cfg.Sink = rt.Sink
	}
	if s.MaxCycles > 0 {
		cfg.MaxCycles = s.MaxCycles
	}

	stdin := rt.Stdin
	var stdinBytes []byte
	if stdin == nil && s.Stdin != nil {
		stdinBytes = s.Stdin
		stdin = bytes.NewReader(s.Stdin)
	}

	out := &Output{}
	if s.Verify {
		// The oracle and the timing run must read the same input, so a
		// one-shot reader is slurped and each run gets its own view.
		if rt.Stdin != nil {
			if stdinBytes, err = io.ReadAll(rt.Stdin); err != nil {
				return nil, fmt.Errorf("multiscalar: reading stdin for verification: %w", err)
			}
			stdin = bytes.NewReader(stdinBytes)
		}
		var oin io.Reader
		if stdinBytes != nil {
			oin = bytes.NewReader(stdinBytes)
		}
		if out.Oracle, err = RunOracle(p, oin, s.MaxInstrs); err != nil {
			return nil, err
		}
	}

	var tw *trace.Writer
	var tbuf bytes.Buffer
	if s.WantTrace {
		meta := trace.Meta{NumUnits: cfg.NumUnits, Label: s.label()}
		if meta.NumUnits <= 0 {
			meta.NumUnits = 1
		}
		if len(p.Tasks) > 0 {
			meta.Tasks = make(map[uint32]string, len(p.Tasks))
			for entry, td := range p.Tasks {
				meta.Tasks[entry] = td.Name
			}
		}
		if tw, err = trace.NewWriter(&tbuf, meta); err != nil {
			return nil, err
		}
		cfg.Sink = tw
	}

	env := interp.NewSysEnv()
	env.In = stdin
	m, err := newMachine(s, p, env, cfg)
	if err != nil {
		return nil, err
	}
	if rt.CheckpointSave != nil {
		m.ScheduleCheckpoint(rt.CheckpointAt, func() error {
			snap, err := m.Save()
			if err != nil {
				return err
			}
			return rt.CheckpointSave(snap)
		})
	}
	if rt.Restore != nil {
		if err := m.Restore(rt.Restore); err != nil {
			return nil, err
		}
	}
	res, err := m.Run()
	if err != nil {
		return nil, err
	}
	if tw != nil {
		if err := tw.Close(); err != nil {
			return nil, err
		}
		out.Trace = tbuf.Bytes()
	}
	if o := out.Oracle; o != nil {
		if res.Out != o.Out {
			return nil, fmt.Errorf("multiscalar: output diverged from oracle: %q vs %q", res.Out, o.Out)
		}
		if res.Committed != o.ICount {
			return nil, fmt.Errorf("multiscalar: committed %d instructions, oracle executed %d",
				res.Committed, o.ICount)
		}
	}
	if s.WantSnapshot {
		if out.Snapshot, err = m.Save(); err != nil {
			return nil, err
		}
	}
	out.Result = res
	return out, nil
}

// executeSampled runs a sampled job: sample.Run over the resolved
// program, with the detailed windows fanned out over the registered
// runner. Streaming stdin is slurped first — the functional passes and
// every window need independent views of the same bytes.
func executeSampled(s *Spec, rt *Runtime, p *isa.Program) (*Output, error) {
	cfg := s.Config
	if s.MaxCycles > 0 {
		cfg.MaxCycles = s.MaxCycles
	}
	stdin := s.Stdin
	if rt.Stdin != nil {
		b, err := io.ReadAll(rt.Stdin)
		if err != nil {
			return nil, fmt.Errorf("multiscalar: reading stdin for sampling: %w", err)
		}
		stdin = b
	}
	maxInstrs := s.MaxInstrs
	if maxInstrs == 0 {
		maxInstrs = DefaultMaxInstrs
	}
	var pool sample.Runner
	if r := sampleRunner.Load(); r != nil {
		pool = *r
	}
	est, err := sample.Run(p, cfg, s.Sample, stdin, maxInstrs, pool)
	if err != nil {
		return nil, err
	}
	return &Output{Sampled: est}, nil
}

func (s *Spec) label() string {
	if s.Workload != "" {
		return s.Workload
	}
	return "job"
}

func newMachine(s *Spec, p *isa.Program, env *interp.SysEnv, cfg core.Config) (machine, error) {
	switch s.Machine {
	case MachineScalar:
		return core.NewScalar(p, env, cfg), nil
	case MachineMultiscalar:
		return core.NewMultiscalar(p, env, cfg)
	default:
		if cfg.NumUnits <= 1 && len(p.Tasks) == 0 {
			return core.NewScalar(p, env, cfg), nil
		}
		return core.NewMultiscalar(p, env, cfg)
	}
}

// RunOracle executes a program on the functional simulator and returns
// the reference outcome. maxInstrs of 0 means DefaultMaxInstrs.
func RunOracle(p *isa.Program, stdin io.Reader, maxInstrs uint64) (*Oracle, error) {
	if maxInstrs == 0 {
		maxInstrs = DefaultMaxInstrs
	}
	env := interp.NewSysEnv()
	env.In = stdin
	m := interp.NewMachine(p, env)
	if err := m.Run(maxInstrs); err != nil {
		return nil, err
	}
	return &Oracle{
		ICount:   m.ICount,
		Loads:    m.LoadCount,
		Stores:   m.StoreCount,
		Branches: m.BranchCount,
		Out:      env.Out.String(),
		ExitCode: env.ExitCode,
	}, nil
}
