package mslint

import (
	"sort"

	"multiscalar/internal/cfg"
	"multiscalar/internal/isa"
)

func (l *linter) run() {
	p := l.prog
	if len(p.Text) == 0 || len(p.Tasks) == 0 {
		return
	}
	l.g = cfg.Build(p)
	l.g.Analyze()

	// Return-exit liveness for the soundness direction (MS001). The
	// conservative ABI set always works; when every call site is visible
	// and stop-tagged, the flow-derived set refines it (never past the ABI
	// contract: a continuation reading a caller-saved register was already
	// outside it).
	l.retMin = cfg.LiveAtReturn
	if m, ok := l.g.ReturnLiveOut(); ok {
		l.retMin = cfg.LiveAtReturn.Intersect(m)
	}

	if p.TaskAt(p.Entry) == nil {
		l.diag(SevError, CodeEntryNotTask, "", isa.RegZero, p.Entry,
			"program entry 0x%x has no task descriptor; the sequencer cannot dispatch the first task", p.Entry)
	}

	var regions []*cfg.TaskRegion
	for _, td := range p.TaskList() {
		l.checkDescriptor(td)
		r := l.walkTask(td)
		regions = append(regions, r)
		l.checkExits(r)
		l.checkCreate(r)
		l.checkCoverage(r)
		l.checkForwardBits(r)
		l.checkFCC(r)
	}
	l.checkOverlap(regions)
}

// checkDescriptor verifies the static shape of one descriptor: target
// count within the hardware limit, every target resolvable to a task.
func (l *linter) checkDescriptor(td *isa.TaskDescriptor) {
	if len(td.Targets) > isa.MaxTaskTargets {
		l.diag(SevError, CodeTooManyTargets, td.Name, isa.RegZero, td.Entry,
			"%d successor targets exceed the descriptor limit of %d", len(td.Targets), isa.MaxTaskTargets)
	}
	for _, t := range td.Targets {
		if t == isa.TargetReturn {
			continue
		}
		if l.prog.Tasks[t] == nil {
			l.diag(SevError, CodeBadTaskRef, td.Name, isa.RegZero, td.Entry,
				"declared target 0x%x has no task descriptor", t)
		}
	}
}

// checkExits verifies that every statically discovered exit leads to a
// declared target, that every declared target is reached by some exit,
// and that call exits carry consistent pushra/call metadata.
func (l *linter) checkExits(r *cfg.TaskRegion) {
	td := r.TD
	covered := map[uint32]bool{}
	sawCall := false
	for _, e := range r.Exits {
		if td.HasTarget(e.Target) {
			covered[e.Target] = true
		} else {
			tname := "<return>"
			if e.Target != isa.TargetReturn {
				tname = l.taskNameAt(e.Target)
			}
			l.diag(SevError, CodeUndeclaredExit, td.Name, isa.RegZero, e.Addr,
				"task exits to %s (0x%x), which is not a declared target", tname, e.Target)
		}
		if e.Kind == cfg.ExitCall {
			sawCall = true
			switch {
			case td.PushRA == 0:
				l.diag(SevWarning, CodeCallPushRA, td.Name, isa.RegZero, e.Addr,
					"call exit without pushra=: the return address stack cannot predict the continuation 0x%x", e.Cont)
			case td.PushRA != e.Cont:
				l.diag(SevWarning, CodeCallPushRA, td.Name, isa.RegZero, e.Addr,
					"pushra 0x%x disagrees with the call continuation 0x%x", td.PushRA, e.Cont)
			case td.CallTarget != e.Target:
				l.diag(SevWarning, CodeCallPushRA, td.Name, isa.RegZero, e.Addr,
					"call= 0x%x disagrees with the callee 0x%x", td.CallTarget, e.Target)
			}
		}
	}
	if td.PushRA != 0 && !sawCall && !r.UnknownExit {
		l.diag(SevWarning, CodeCallPushRA, td.Name, isa.RegZero, td.Entry,
			"pushra= set but no call exit is reachable")
	}
	if !r.UnknownExit {
		for _, t := range td.Targets {
			if covered[t] {
				continue
			}
			tname := "<return>"
			if t != isa.TargetReturn {
				tname = l.taskNameAt(t)
			}
			l.diag(SevWarning, CodeUnreachableTarget, td.Name, isa.RegZero, td.Entry,
				"declared target %s (0x%x) is reached by no exit", tname, t)
		}
	}
}

func (l *linter) taskNameAt(addr uint32) string {
	if t := l.prog.Tasks[addr]; t != nil {
		return t.Name
	}
	return "<no task>"
}

// checkCreate verifies create-mask soundness in both directions: every
// register the task writes that is live into a successor must be in the
// mask (error — the successor would consume a stale pass-through value),
// and no register dead at every successor should be (warning — it
// serializes successors for nothing). The soundness direction uses the
// refined return-liveness (retMin); the hygiene directions (MS002, MS017)
// keep the conservative ABI set so hand annotations written against the
// ABI contract stay clean.
func (l *linter) checkCreate(r *cfg.TaskRegion) {
	td := r.TD
	liveMin := r.LiveOut(l.retMin)
	liveMax := r.LiveOut(cfg.LiveAtReturn)
	defs := r.Defs()
	missing := defs.Intersect(liveMin).Minus(td.Create)
	missing.ForEach(func(reg isa.Reg) {
		l.diag(SevError, CodeCreateMissing, td.Name, reg, l.firstDefOf(r, reg),
			"task writes %s, which is live into a successor, but %s is not in the create mask", reg, reg)
	})
	dead := td.Create.Minus(liveMax)
	dead.ForEach(func(reg isa.Reg) {
		l.diag(SevWarning, CodeCreateDead, td.Name, reg, td.Entry,
			"create-mask register %s is dead at every declared successor", reg)
	})
	unwritten := td.Create.Intersect(liveMax).Minus(defs)
	unwritten.ForEach(func(reg isa.Reg) {
		l.diag(SevWarning, CodeOverBroadCreate, td.Name, reg, td.Entry,
			"create-mask register %s is never written by the task: successors wait to receive a value the task only passes through", reg)
	})
}

// firstDefOf returns the address of the lowest-addressed write of reg in
// the region (for diagnostic anchoring), or the task entry.
func (l *linter) firstDefOf(r *cfg.TaskRegion, reg isa.Reg) uint32 {
	blocks := append([]*cfg.Block(nil), r.Blocks...)
	sort.Slice(blocks, func(i, j int) bool { return blocks[i].Start < blocks[j].Start })
	for _, b := range blocks {
		for a := b.Start; a < b.End; a += isa.InstrSize {
			if cfg.TaskDefs(l.prog.InstrAt(a)).Has(reg) {
				return a
			}
		}
	}
	return r.TD.Entry
}

// checkCoverage runs the must-cover analysis: on every path from the
// task entry to each exit, each create-mask register should be forwarded
// or released; registers relying on the completion flush are flagged.
func (l *linter) checkCoverage(r *cfg.TaskRegion) {
	create := r.TD.Create
	if create.Empty() || len(r.Exits) == 0 {
		return
	}
	gen := r.SendGen(create)
	_, coverOut := r.CoverIn(create, gen)
	var reported isa.RegMask
	for _, e := range r.Exits {
		b := l.g.BlockOf(e.Addr)
		if b == nil {
			continue
		}
		miss := create.Minus(coverOut[b]).Minus(reported)
		miss.ForEach(func(reg isa.Reg) {
			reported = reported.Set(reg)
			l.diag(SevWarning, CodeFlushOnly, r.TD.Name, reg, e.Addr,
				"create-mask register %s is neither forwarded nor released on a path to this exit; successors wait for the completion flush", reg)
		})
	}
}

// checkForwardBits verifies send placement: a forward bit (or a release)
// must not precede a possible later write of the same register within the
// task (the ring would transmit a stale value); forwards/releases outside
// the create mask satisfy no successor's reservation; a send of a
// register already sent on every path never transmits (each create-mask
// register rides the ring exactly once per task); and a release reached
// only after unrelated work delays a value that was already final.
func (l *linter) checkForwardBits(r *cfg.TaskRegion) {
	create := r.TD.Create
	mwIn := r.MayWriteIn()
	gen := r.SendGen(create)
	coverIn, _ := r.CoverIn(create, gen)
	for _, b := range r.Blocks {
		later := r.LaterWrites(b, mwIn)
		sent := coverIn[b] // must-sent before instruction i
		n := b.NumInstrs()
		for i := 0; i < n; i++ {
			a := b.Start + uint32(i)*isa.InstrSize
			in := l.prog.InstrAt(a)
			if in.Fwd {
				d := in.Dest()
				switch {
				case d == isa.RegZero:
					l.diag(SevWarning, CodeForeignForward, r.TD.Name, isa.RegZero, a,
						"forward bit on an instruction with no destination register")
				case !create.Has(d):
					l.diag(SevWarning, CodeForeignForward, r.TD.Name, d, a,
						"forward bit on %s, which is not in the create mask", d)
				case later[i].Has(d):
					l.diag(SevError, CodeStaleForward, r.TD.Name, d, a,
						"forward bit on a non-last update of %s: a later write within the task would make the forwarded value stale", d)
				case sent.Has(d):
					l.diag(SevWarning, CodeDeadForward, r.TD.Name, d, a,
						"forward bit on %s after %s has already been forwarded or released on every path here; the send never happens", d, d)
				}
				if create.Has(d) {
					sent = sent.Set(d)
				}
			}
			if in.Op == isa.OpRelease {
				switch {
				case !create.Has(in.Rs):
					l.diag(SevWarning, CodeForeignForward, r.TD.Name, in.Rs, a,
						"release of %s, which is not in the create mask", in.Rs)
				case later[i].Has(in.Rs):
					l.diag(SevError, CodeStaleForward, r.TD.Name, in.Rs, a,
						"release of %s before a possible later write within the task: the released value would be stale", in.Rs)
				case sent.Has(in.Rs):
					l.diag(SevWarning, CodeDeadForward, r.TD.Name, in.Rs, a,
						"release of %s after %s has already been forwarded or released on every path here; the send never happens", in.Rs, in.Rs)
				case l.lateRelease(b, i, in.Rs):
					l.diag(SevWarning, CodeLateForward, r.TD.Name, in.Rs, a,
						"release of %s executes after unrelated instructions although the value was already final; successors stall longer than necessary", in.Rs)
				}
				if create.Has(in.Rs) {
					sent = sent.Set(in.Rs)
				}
			}
		}
	}
}

// lateRelease reports whether the release at index i of b sits in the
// same block as the final write of reg with a non-release instruction
// strictly between them: the value was final earlier in this block, so
// the release could have run there. A release with no in-block write
// before it marks a path that never updates the register; its earliest
// sound point depends on the path, so it is not flagged. Release-only
// gaps (including the expansion of a multi-register release) are on
// time.
func (l *linter) lateRelease(b *cfg.Block, i int, reg isa.Reg) bool {
	gap := false
	for j := i - 1; j >= 0; j-- {
		in := l.prog.InstrAt(b.Start + uint32(j)*isa.InstrSize)
		if cfg.TaskDefs(in).Has(reg) {
			return gap
		}
		if in.Op != isa.OpRelease {
			gap = true
		}
	}
	return false
}

// checkFCC flags floating-point condition-flag liveness across the task
// entry: a bc1t/bc1f reachable from the entry before any FP compare
// consumes a flag set in a previous task, and the flag is task-local.
func (l *linter) checkFCC(r *cfg.TaskRegion) {
	setsFCC := func(op isa.Op) bool {
		return op == isa.OpCEqD || op == isa.OpCLtD || op == isa.OpCLeD
	}
	entry := l.g.ByAddr[r.TD.Entry]
	if entry == nil {
		return
	}
	seen := map[*cfg.Block]bool{entry: true}
	stack := []*cfg.Block{entry}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		blocked := false
		for a := b.Start; a < b.End; a += isa.InstrSize {
			in := l.prog.InstrAt(a)
			if in.ReadsFCC() {
				l.diag(SevWarning, CodeFCCBoundary, r.TD.Name, isa.RegZero, a,
					"%s executes before any FP compare in this task; the FP condition flag does not cross task boundaries", in.Op)
				return
			}
			if setsFCC(in.Op) {
				blocked = true
				break
			}
		}
		if blocked {
			continue
		}
		for _, s := range r.Edges[b] {
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
}

// checkOverlap flags instructions reachable from two task headers
// without being their own task. Shared suppressed-callee bodies are the
// legitimate exception (they execute within each calling task); blocks
// reached only through call edges are therefore excluded.
func (l *linter) checkOverlap(regions []*cfg.TaskRegion) {
	owners := map[*cfg.Block][]string{}
	for _, r := range regions {
		for _, b := range r.Blocks {
			if !r.Depth0[b] {
				continue
			}
			if l.prog.Tasks[b.Start] != nil {
				continue // its own task (or a flagged entry crossing)
			}
			owners[b] = append(owners[b], r.TD.Name)
		}
	}
	var shared []*cfg.Block
	for b, names := range owners {
		if len(names) > 1 {
			shared = append(shared, b)
		}
	}
	sort.Slice(shared, func(i, j int) bool { return shared[i].Start < shared[j].Start })
	for _, b := range shared {
		names := owners[b]
		sort.Strings(names)
		l.diag(SevWarning, CodeTaskOverlap, "", isa.RegZero, b.Start,
			"instructions at 0x%x are reachable from task headers %v without being their own task", b.Start, names)
	}
}
