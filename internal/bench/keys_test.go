package bench

import (
	"crypto/sha256"
	"fmt"
	"testing"

	"multiscalar/internal/asm"
	"multiscalar/internal/core"
	"multiscalar/internal/isa"
	"multiscalar/internal/job"
	"multiscalar/internal/workloads"
)

// The memo keys moved from three hand-rolled tuples onto job.Spec's
// content-addressed Key. The migration contract is that the *partitions*
// agree: two memo lookups that shared a cache entry under the old keys
// still share one, and two that did not still do not. These tests pin
// that by re-implementing the legacy keys and comparing equivalence over
// representative key spaces.

// legacyCfgString is the pre-migration run-memo config component:
// fmt's %#v over the Config with the trace fields nilled.
func legacyCfgString(cfg core.Config) string {
	cfg.Sink = nil
	cfg.Trace = nil
	return fmt.Sprintf("%#v", cfg)
}

// legacyHashOf is the pre-migration stdin component ("" for no input,
// distinct from the hash of empty-but-present input).
func legacyHashOf(b []byte) string {
	if b == nil {
		return ""
	}
	s := sha256.Sum256(b)
	return string(s[:])
}

type legacyBuildKey struct {
	name  string
	mode  asm.Mode
	scale int
	stdin string
}

type legacySimKey struct {
	prog  string
	cfg   string
	stdin string
}

func benchSampleConfigs() []core.Config {
	cfgs := []core.Config{
		core.DefaultConfig(8, 1, false),
		core.DefaultConfig(8, 1, false), // deliberate duplicate
		core.DefaultConfig(8, 2, true),
		core.DefaultConfig(4, 1, false),
		core.ScalarConfig(1, false),
		core.ScalarConfig(1, false), // deliberate duplicate
		core.ScalarConfig(2, true),
	}
	c := core.DefaultConfig(8, 1, false)
	c.RingLatency = 4
	cfgs = append(cfgs, c)
	c = core.DefaultConfig(8, 1, false)
	c.NoSkip = true
	cfgs = append(cfgs, c)
	c = core.DefaultConfig(8, 1, false)
	c.StaticPredict = true
	cfgs = append(cfgs, c)
	c = core.DefaultConfig(8, 1, false)
	c.Latencies.SPMul = 40
	cfgs = append(cfgs, c)
	return cfgs
}

func TestConfigKeyPartitionMatchesLegacy(t *testing.T) {
	cfgs := benchSampleConfigs()
	canon := make([]string, len(cfgs))
	legacy := make([]string, len(cfgs))
	for i, c := range cfgs {
		b, err := c.MarshalCanonical()
		if err != nil {
			t.Fatal(err)
		}
		canon[i] = string(b)
		legacy[i] = legacyCfgString(c)
	}
	for i := range cfgs {
		for j := range cfgs {
			if (legacy[i] == legacy[j]) != (canon[i] == canon[j]) {
				t.Errorf("configs %d,%d: legacy equal=%v canonical equal=%v",
					i, j, legacy[i] == legacy[j], canon[i] == canon[j])
			}
		}
	}
}

func TestBuildKeyPartitionMatchesLegacy(t *testing.T) {
	type point struct {
		w     *workloads.Workload
		mode  asm.Mode
		scale Scale
		stdin []byte
	}
	var pts []point
	for _, name := range []string{"example", "wc"} {
		w := workloads.Get(name)
		if w == nil {
			t.Fatalf("workload %s missing", name)
		}
		for _, mode := range []asm.Mode{asm.ModeScalar, asm.ModeMultiscalar} {
			for _, scale := range []Scale{0, -1, 0} { // duplicate on purpose
				for _, stdin := range [][]byte{nil, {}, []byte("x")} {
					pts = append(pts, point{w, mode, scale, stdin})
				}
			}
		}
	}
	legacy := make([]legacyBuildKey, len(pts))
	keys := make([]string, len(pts))
	for i, p := range pts {
		legacy[i] = legacyBuildKey{name: p.w.Name, mode: p.mode, scale: p.scale.of(p.w), stdin: legacyHashOf(p.stdin)}
		k, err := buildSpec(p.w, p.mode, p.scale, p.stdin).Key()
		if err != nil {
			t.Fatal(err)
		}
		keys[i] = k
	}
	for i := range pts {
		for j := range pts {
			if (legacy[i] == legacy[j]) != (keys[i] == keys[j]) {
				t.Errorf("build points %d,%d: legacy equal=%v spec-key equal=%v",
					i, j, legacy[i] == legacy[j], keys[i] == keys[j])
			}
		}
	}
}

func TestSimKeyPartitionMatchesLegacy(t *testing.T) {
	w := workloads.Get("example")
	p1, _, err := buildOracle(w, asm.ModeMultiscalar, -1)
	if err != nil {
		t.Fatal(err)
	}
	p2 := cloneProgram(p1) // same bytes, distinct identity under the old pointer-hash memo too
	w2 := workloads.Get("wc")
	p3, _, err := buildOracle(w2, asm.ModeMultiscalar, -1)
	if err != nil {
		t.Fatal(err)
	}

	type point struct {
		p     *isa.Program
		cfg   core.Config
		stdin []byte
	}
	var pts []point
	for _, p := range []*isa.Program{p1, p2, p3} {
		for _, cfg := range []core.Config{core.DefaultConfig(8, 1, false), core.DefaultConfig(4, 1, false), core.DefaultConfig(8, 1, false)} {
			for _, stdin := range [][]byte{nil, {}} {
				pts = append(pts, point{p, cfg, stdin})
			}
		}
	}
	legacy := make([]legacySimKey, len(pts))
	keys := make([]string, len(pts))
	for i, pt := range pts {
		ph, err := job.ProgramHash(pt.p)
		if err != nil {
			t.Fatal(err)
		}
		legacy[i] = legacySimKey{prog: ph, cfg: legacyCfgString(pt.cfg), stdin: legacyHashOf(pt.stdin)}
		spec := job.Spec{Op: job.OpSimulate, Program: pt.p, Config: pt.cfg, Stdin: pt.stdin}
		if keys[i], err = spec.Key(); err != nil {
			t.Fatal(err)
		}
	}
	for i := range pts {
		for j := range pts {
			if (legacy[i] == legacy[j]) != (keys[i] == keys[j]) {
				t.Errorf("sim points %d,%d: legacy equal=%v spec-key equal=%v",
					i, j, legacy[i] == legacy[j], keys[i] == keys[j])
			}
		}
	}
}
