package predict

import "testing"

func TestTaskPredictorLearnsConstantTarget(t *testing.T) {
	p := &TaskPredictor{}
	addr := uint32(0x1000)
	// Train: always target 2.
	for i := 0; i < 20; i++ {
		hist := p.History(addr)
		got := p.Predict(addr)
		p.UpdateWith(hist, addr, 2, got)
	}
	hist := p.History(addr)
	got := p.Predict(addr)
	p.UpdateWith(hist, addr, 2, got)
	if got != 2 {
		t.Errorf("predicted %d after training, want 2", got)
	}
	if p.Accuracy() < 0.5 {
		t.Errorf("accuracy = %v", p.Accuracy())
	}
}

func TestTaskPredictorLearnsAlternatingPattern(t *testing.T) {
	p := &TaskPredictor{}
	addr := uint32(0x2000)
	// Pattern: 0,1,0,1,... a two-level predictor should learn it.
	correct := 0
	for i := 0; i < 200; i++ {
		actual := i % 2
		hist := p.History(addr)
		got := p.Predict(addr)
		if got == actual && i >= 100 {
			correct++
		}
		p.UpdateWith(hist, addr, actual, got)
	}
	if correct < 95 {
		t.Errorf("late-phase correct = %d/100 on alternating pattern", correct)
	}
}

func TestTaskPredictorLoopExitPattern(t *testing.T) {
	p := &TaskPredictor{}
	addr := uint32(0x3000)
	// 5 iterations of target 0 then one target 1, repeated: mimics a
	// short loop. The history (6 outcomes) covers the period.
	correct := 0
	total := 0
	for rep := 0; rep < 60; rep++ {
		for i := 0; i < 6; i++ {
			actual := 0
			if i == 5 {
				actual = 1
			}
			hist := p.History(addr)
			got := p.Predict(addr)
			if rep >= 30 {
				total++
				if got == actual {
					correct++
				}
			}
			p.UpdateWith(hist, addr, actual, got)
		}
	}
	if float64(correct)/float64(total) < 0.9 {
		t.Errorf("loop-exit accuracy = %d/%d", correct, total)
	}
}

func TestTaskPredictorSnapshotRestore(t *testing.T) {
	p := &TaskPredictor{}
	addr := uint32(0x1000)
	snap := p.Snapshot()
	h0 := p.History(addr)
	p.Predict(addr)
	if p.History(addr) == h0 {
		t.Skip("history did not shift (predicted 0 into zero history)")
	}
	p.Restore(snap)
	if p.History(addr) != h0 {
		t.Error("restore did not reinstate history")
	}
}

func TestFixHistory(t *testing.T) {
	p := &TaskPredictor{}
	addr := uint32(0x1000)
	hist := p.History(addr)
	p.Predict(addr) // speculatively shifts predicted target
	p.FixHistory(addr, hist, 3)
	want := (hist<<2 | 3) & historyMask
	if p.History(addr) != want {
		t.Errorf("history = %03x, want %03x", p.History(addr), want)
	}
}

func TestRASBasic(t *testing.T) {
	r := &RAS{}
	if r.Pop() != 0 {
		t.Error("empty pop should be 0")
	}
	r.Push(0x100)
	r.Push(0x200)
	if r.Depth() != 2 {
		t.Errorf("depth = %d", r.Depth())
	}
	if r.Pop() != 0x200 || r.Pop() != 0x100 {
		t.Error("LIFO order wrong")
	}
	if r.Pop() != 0 {
		t.Error("underflow should return 0")
	}
}

func TestRASOverflowWraps(t *testing.T) {
	r := &RAS{}
	for i := 0; i < 70; i++ {
		r.Push(uint32(i))
	}
	if r.Depth() != 64 {
		t.Errorf("depth = %d", r.Depth())
	}
	if got := r.Pop(); got != 69 {
		t.Errorf("top = %d", got)
	}
}

func TestRASSnapshotRestore(t *testing.T) {
	r := &RAS{}
	r.Push(1)
	r.Push(2)
	s := r.Snapshot()
	r.Pop()
	r.Pop()
	r.Restore(s)
	if r.Pop() != 2 || r.Pop() != 1 {
		t.Error("restore failed")
	}
}

func TestBranchPredictorLearns(t *testing.T) {
	b := NewBranchPredictor(1024)
	pc := uint32(0x1000)
	for i := 0; i < 10; i++ {
		got := b.PredictTaken(pc)
		b.UpdateTaken(pc, true, got)
	}
	if !b.PredictTaken(pc) {
		t.Error("should predict taken after training")
	}
	// Hysteresis: one not-taken shouldn't flip it.
	b.UpdateTaken(pc, false, true)
	if !b.PredictTaken(pc) {
		t.Error("single contrary outcome flipped prediction")
	}
}

func TestBranchPredictorAliasing(t *testing.T) {
	b := NewBranchPredictor(4)
	// pcs 0 and 16 alias in a 4-entry table.
	got0 := b.PredictTaken(0)
	b.UpdateTaken(0, true, got0)
	b.UpdateTaken(0, true, b.PredictTaken(0))
	if !b.PredictTaken(16) {
		t.Error("aliased entry should predict taken")
	}
}

func TestUnitRAS(t *testing.T) {
	b := NewBranchPredictor(16)
	b.PushReturn(0x100)
	b.PushReturn(0x200)
	if b.PredictReturn() != 0x200 || b.PredictReturn() != 0x100 {
		t.Error("unit RAS order wrong")
	}
	if b.PredictReturn() != 0 {
		t.Error("empty unit RAS should predict 0")
	}
	b.PushReturn(0x300)
	b.ClearRAS()
	if b.PredictReturn() != 0 {
		t.Error("ClearRAS failed")
	}
}

func TestIndirectTargetTable(t *testing.T) {
	b := NewBranchPredictor(16)
	if b.PredictIndirect(0x40) != 0 {
		t.Error("cold indirect should be 0")
	}
	b.UpdateIndirect(0x40, 0x5000)
	if b.PredictIndirect(0x40) != 0x5000 {
		t.Error("indirect table failed")
	}
}

func TestPredictorReset(t *testing.T) {
	p := &TaskPredictor{}
	p.Predict(0x1000)
	p.Reset()
	if p.Predictions != 0 || p.History(0x1000) != 0 {
		t.Error("reset failed")
	}
	b := NewBranchPredictor(16)
	b.PredictTaken(0)
	b.UpdateTaken(0, true, true)
	b.Reset()
	if b.Lookups != 0 || b.PredictTaken(0) {
		t.Error("branch reset failed")
	}
}
