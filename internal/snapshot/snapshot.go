// Package snapshot implements the versioned binary container for
// machine checkpoints (docs/simulator.md, "Snapshot format"). A
// snapshot is a flat byte stream: a fixed header (magic, format
// version, machine kind) followed by the machine's component sections
// in a fixed order. Component packages serialize themselves through
// the Encoder/Decoder primitives here; the package knows nothing about
// the components, so it sits at the bottom of the dependency graph.
//
// Snapshots capture only mutable run state. Derived and configured
// state — program text, decoded µops, cache geometry, the memory
// image behind the copy-on-write pages — is rebuilt by constructing
// the machine from the same Program and Config before Restore is
// called, and Restore fails loudly when the snapshot disagrees with
// the constructed shape (wrong kind, wrong unit count, wrong cache
// geometry).
//
// The Decoder is sticky: the first malformed read latches an error,
// every later read returns zero values, and the caller checks Err()
// once at the end. Length fields are validated against both the
// remaining input and a caller-supplied cap before any allocation, so
// a corrupt or adversarial snapshot (see FuzzSnapshot) cannot force a
// huge allocation or a panic.
package snapshot

import (
	"encoding/binary"
	"fmt"
	"math"
)

// magic identifies a snapshot stream; Version is bumped on any layout
// change (there is no cross-version migration — a snapshot is a
// within-version artifact, not an archive format).
const magic = "MSSNAP"

// Version is the current snapshot format version. Version 3 added the
// capture-point cycle (instruction count for the functional machine) to
// the header, so tools can describe an opaque snapshot without decoding
// its body.
const Version = 3

// Machine kinds, stored in the header so a snapshot cannot be fed to
// the wrong Restore.
const (
	KindInterp      uint8 = 1
	KindScalar      uint8 = 2
	KindMultiscalar uint8 = 3
	// KindWarm is not a machine: it is the architectural-plus-warm state
	// the sampled-simulation engine captures during functional-warm
	// fast-forward and injects into a fresh timing machine at the start
	// of a detailed measurement window (internal/sample, docs/perf.md).
	KindWarm uint8 = 4
)

// headerSize is len(magic) + version (u16) + kind (u8) + cycle (u64).
const headerSize = len(magic) + 3 + 8

// KindName names a machine kind for error messages.
func KindName(kind uint8) string {
	switch kind {
	case KindInterp:
		return "interp"
	case KindScalar:
		return "scalar"
	case KindMultiscalar:
		return "multiscalar"
	case KindWarm:
		return "warm"
	}
	return fmt.Sprintf("kind(%d)", kind)
}

// Meta is the header of a snapshot: everything that can be known about
// it without decoding the body.
type Meta struct {
	Version uint16
	Kind    uint8
	// Cycle is the capture point: the machine cycle for the timing
	// machines, the dynamic instruction count for the functional
	// machine and warm-state captures.
	Cycle uint64
}

// Peek reads a snapshot's header without decoding the body, so a
// caller holding an opaque file can dispatch to the right machine
// constructor or describe the snapshot to a user.
func Peek(data []byte) (Meta, error) {
	d, err := newDecoder(data)
	if err != nil {
		return Meta{}, err
	}
	return Meta{Version: Version, Kind: d.kind, Cycle: d.cycle}, nil
}

// Encoder builds a snapshot stream. All integers are big-endian.
type Encoder struct {
	buf []byte
}

// NewEncoder starts a snapshot for one machine kind, writing the
// header. cycle is the capture point (see Meta.Cycle).
func NewEncoder(kind uint8, cycle uint64) *Encoder {
	e := &Encoder{buf: make([]byte, 0, 1<<12)}
	e.buf = append(e.buf, magic...)
	e.U16(Version)
	e.U8(kind)
	e.U64(cycle)
	return e
}

// Bytes returns the encoded snapshot.
func (e *Encoder) Bytes() []byte { return e.buf }

// U8 appends one byte.
func (e *Encoder) U8(v uint8) { e.buf = append(e.buf, v) }

// U16 appends a big-endian uint16.
func (e *Encoder) U16(v uint16) { e.buf = binary.BigEndian.AppendUint16(e.buf, v) }

// U32 appends a big-endian uint32.
func (e *Encoder) U32(v uint32) { e.buf = binary.BigEndian.AppendUint32(e.buf, v) }

// U64 appends a big-endian uint64.
func (e *Encoder) U64(v uint64) { e.buf = binary.BigEndian.AppendUint64(e.buf, v) }

// I32 appends an int32 (two's complement).
func (e *Encoder) I32(v int32) { e.U32(uint32(v)) }

// Int appends an int as an int64.
func (e *Encoder) Int(v int) { e.U64(uint64(int64(v))) }

// Bool appends a bool as one byte.
func (e *Encoder) Bool(v bool) {
	if v {
		e.U8(1)
	} else {
		e.U8(0)
	}
}

// F64 appends a float64 by bit pattern.
func (e *Encoder) F64(v float64) { e.U64(math.Float64bits(v)) }

// Len appends an element count.
func (e *Encoder) Len(n int) { e.U32(uint32(n)) }

// Raw appends bytes with no length prefix (fixed-size regions whose
// length both sides know).
func (e *Encoder) Raw(b []byte) { e.buf = append(e.buf, b...) }

// Blob appends a length-prefixed byte string.
func (e *Encoder) Blob(b []byte) {
	e.Len(len(b))
	e.Raw(b)
}

// Tag appends a 4-byte section marker. Tags cost 4 bytes per section
// and turn a component-order mismatch between Save and Load into an
// immediate named error instead of silently misparsed state.
func (e *Encoder) Tag(tag string) {
	var t [4]byte
	copy(t[:], tag)
	e.Raw(t[:])
}

// Decoder reads a snapshot stream with a sticky error: after the
// first failure every read returns zero values, so Load code needs no
// per-read error handling.
type Decoder struct {
	buf   []byte
	off   int
	kind  uint8
	cycle uint64
	err   error
}

func newDecoder(data []byte) (*Decoder, error) {
	if len(data) < headerSize {
		return nil, fmt.Errorf("snapshot: truncated header (%d bytes)", len(data))
	}
	if string(data[:len(magic)]) != magic {
		return nil, fmt.Errorf("snapshot: bad magic")
	}
	d := &Decoder{buf: data, off: len(magic)}
	if v := d.U16(); v != Version {
		return nil, fmt.Errorf("snapshot: version %d, want %d", v, Version)
	}
	d.kind = d.U8()
	d.cycle = d.U64()
	return d, nil
}

// NewDecoder validates the header against the expected machine kind
// and positions the decoder at the body.
func NewDecoder(data []byte, kind uint8) (*Decoder, error) {
	d, err := newDecoder(data)
	if err != nil {
		return nil, err
	}
	if d.kind != kind {
		return nil, fmt.Errorf("snapshot: %s snapshot, want %s",
			KindName(d.kind), KindName(kind))
	}
	return d, nil
}

// Failf latches a decoding error (the first one wins). Load code uses
// it for semantic mismatches — a snapshot field that disagrees with
// the constructed machine's shape.
func (d *Decoder) Failf(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("snapshot: "+format, args...)
	}
}

// Err returns the latched error, if any.
func (d *Decoder) Err() error { return d.err }

// Finish checks that decoding consumed the entire stream cleanly.
func (d *Decoder) Finish() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.buf) {
		return fmt.Errorf("snapshot: %d trailing bytes", len(d.buf)-d.off)
	}
	return nil
}

func (d *Decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || n > len(d.buf)-d.off {
		d.Failf("truncated: need %d bytes at offset %d of %d", n, d.off, len(d.buf))
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

// U8 reads one byte.
func (d *Decoder) U8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// U16 reads a big-endian uint16.
func (d *Decoder) U16() uint16 {
	b := d.take(2)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint16(b)
}

// U32 reads a big-endian uint32.
func (d *Decoder) U32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

// U64 reads a big-endian uint64.
func (d *Decoder) U64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

// I32 reads an int32.
func (d *Decoder) I32() int32 { return int32(d.U32()) }

// Int reads an int stored as int64.
func (d *Decoder) Int() int { return int(int64(d.U64())) }

// Bool reads a bool byte (anything nonzero is true; the encoder only
// writes 0 or 1, but fuzzed inputs may not).
func (d *Decoder) Bool() bool { return d.U8() != 0 }

// F64 reads a float64 by bit pattern.
func (d *Decoder) F64() float64 { return math.Float64frombits(d.U64()) }

// Len reads an element count and validates it against max and the
// bytes actually remaining (at least one byte per element), so a
// corrupt count fails before any allocation sized by it.
func (d *Decoder) Len(max int) int {
	n := int(d.U32())
	if d.err != nil {
		return 0
	}
	if n > max || n > len(d.buf)-d.off {
		d.Failf("length %d exceeds limit %d", n, max)
		return 0
	}
	return n
}

// Raw reads exactly len(dst) bytes into dst.
func (d *Decoder) Raw(dst []byte) {
	b := d.take(len(dst))
	if b != nil {
		copy(dst, b)
	}
}

// Blob reads a length-prefixed byte string of at most max bytes.
func (d *Decoder) Blob(max int) []byte {
	n := d.Len(max)
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([]byte, n)
	d.Raw(out)
	return out
}

// Tag consumes a 4-byte section marker and fails if it is not the
// expected one.
func (d *Decoder) Tag(tag string) {
	var want [4]byte
	copy(want[:], tag)
	var got [4]byte
	d.Raw(got[:])
	if d.err == nil && got != want {
		d.Failf("section %q, want %q", got[:], want[:])
	}
}
