package core

import (
	"strings"
	"testing"

	"multiscalar/internal/asm"
	"multiscalar/internal/interp"
)

// TestCheckForwardsCatchesBadAnnotation plants a forward bit on an early
// write (the final value differs) and expects the debug checker to
// reject the run — the invariant that makes hand annotation safe.
func TestCheckForwardsCatchesBadAnnotation(t *testing.T) {
	src := `
main:
	li $s0, 5
	li $s1, 0
	j  loop !s
loop:
	addi $s1, $s1, 1 !f
	addi $s1, $s1, 1
	addi $s0, $s0, -1 !f
	bnez $s0, loop !s
end:
	move $a0, $s1
	li $v0, 1
	syscall
` + exitSeq + `
	.task main targets=loop create=$s0,$s1
	.task loop targets=loop,end create=$s0,$s1
	.task end entry=end
`
	// mslint catches this program statically (MS004); assemble without the
	// lint gate so the runtime checker gets its turn.
	res, err := asm.AssembleOpts(src, asm.Options{Mode: asm.ModeMultiscalar, NoLint: true})
	if err != nil {
		t.Fatal(err)
	}
	p := res.Prog
	cfg := DefaultConfig(4, 1, false)
	cfg.CheckForwards = true
	m, err := NewMultiscalar(p, interp.NewSysEnv(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, err = m.Run()
	if err == nil || !strings.Contains(err.Error(), "stale") {
		t.Fatalf("expected stale-forward error, got %v", err)
	}
}

// TestStaticPredictionStillCorrect: turning the predictor off must never
// change architectural behaviour, only timing.
func TestStaticPredictionStillCorrect(t *testing.T) {
	p, err := asm.Assemble(sumLoop, asm.ModeMultiscalar)
	if err != nil {
		t.Fatal(err)
	}
	om, oenv := oracle(t, p)
	cfg := DefaultConfig(4, 1, false)
	cfg.StaticPredict = true
	m, err := NewMultiscalar(p, interp.NewSysEnv(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Out != oenv.Out.String() || res.Committed != om.ICount {
		t.Fatal("static prediction changed behaviour")
	}
}

// TestDeepRecursionThroughRAS runs function-as-task recursion deeper than
// a few frames, exercising the sequencer's return address stack and its
// snapshots across squashes.
func TestDeepRecursionThroughRAS(t *testing.T) {
	src := `
main:
	li  $a0, 12
	jal fib !s
after:
	move $a0, $v0
	li $v0, 1
	syscall
` + exitSeq + `
fib:
	addi $sp, $sp, -12
	sw   $ra, 0($sp)
	sw   $a0, 4($sp)
	li   $v0, 1
	slt  $at, $a0, 2
	bnez $at, fibdone
	addi $a0, $a0, -1
	jal  fib !s
fibmid:
	sw   $v0, 8($sp)
	lw   $a0, 4($sp)
	addi $a0, $a0, -2
	jal  fib !s
fibend:
	lw   $t0, 8($sp)
	add  $v0, $v0, $t0
fibdone:
	lw   $ra, 0($sp)
	addi $sp, $sp, 12
	jr   $ra !s
	.task main targets=fib pushra=after create=$a0,$ra
	.task after
	.task fib targets=fib,ret pushra=fibmid call=fib create=$a0,$v0,$ra,$sp,$at
	.task fibmid targets=fib pushra=fibend create=$a0,$v0,$ra,$sp
	.task fibend targets=ret create=$v0,$t0,$ra,$sp,$a0,$at
`
	// The annotation above is intricate; validate against the oracle
	// across unit counts.
	p, err := asm.Assemble(src, asm.ModeMultiscalar)
	if err != nil {
		t.Fatal(err)
	}
	om, oenv := oracle(t, p)
	if oenv.Out.String() != "233" {
		t.Fatalf("oracle fib(12) = %q", oenv.Out.String())
	}
	for _, units := range []int{2, 4, 8} {
		cfg := DefaultConfig(units, 1, false)
		cfg.MaxCycles = 50_000_000
		m, err := NewMultiscalar(p, interp.NewSysEnv(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := m.Run()
		if err != nil {
			t.Fatalf("units=%d: %v", units, err)
		}
		if res.Out != "233" || res.Committed != om.ICount {
			t.Fatalf("units=%d: out=%q committed=%d want %d",
				units, res.Out, res.Committed, om.ICount)
		}
	}
}

// TestSixteenUnits pushes the circular queue harder than the paper's
// configurations.
func TestSixteenUnits(t *testing.T) {
	res := runMS(t, parLoop, 16, 2, true)
	if res.TasksRetired < 400 {
		t.Errorf("tasks = %d", res.TasksRetired)
	}
}

// TestRingBandwidthPacing: a task forwarding many registers at once on a
// 1-way unit must spread the sends over multiple cycles; the program
// still completes correctly.
func TestRingBandwidthPacing(t *testing.T) {
	src := `
main:
	li $s0, 10
	j  loop !s
loop:
	addi $s0, $s0, -1 !f
	addi $s1, $s0, 1 !f
	addi $s2, $s0, 2 !f
	addi $s3, $s0, 3 !f
	addi $s4, $s0, 4 !f
	addi $s5, $s0, 5 !f
	bnez $s0, loop !s
end:
	add $a0, $s1, $s2
	add $a0, $a0, $s3
	add $a0, $a0, $s4
	add $a0, $a0, $s5
	li $v0, 1
	syscall
` + exitSeq + `
	.task main targets=loop create=$s0
	.task loop targets=loop,end create=$s0,$s1,$s2,$s3,$s4,$s5
	.task end entry=end
`
	res := runMS(t, src, 8, 1, false)
	if res.TasksRetired < 10 {
		t.Errorf("tasks = %d", res.TasksRetired)
	}
}

// TestDescriptorCacheColdMissDelaysFirstAssignment: a tiny descriptor
// cache forces misses; behaviour must be unchanged, cycles higher.
func TestDescriptorCachePressure(t *testing.T) {
	p, err := asm.Assemble(sumLoop, asm.ModeMultiscalar)
	if err != nil {
		t.Fatal(err)
	}
	om, oenv := oracle(t, p)

	run := func(entries int) *Result {
		cfg := DefaultConfig(4, 1, false)
		cfg.DescCacheEntries = entries
		m, err := NewMultiscalar(p, interp.NewSysEnv(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		if res.Out != oenv.Out.String() || res.Committed != om.ICount {
			t.Fatal("descriptor cache size changed behaviour")
		}
		return res
	}
	big := run(1024)
	small := run(1)
	if small.Cycles < big.Cycles {
		t.Errorf("1-entry descriptor cache (%d cycles) faster than 1024 (%d)",
			small.Cycles, big.Cycles)
	}
}

// TestResultString covers the summary formatting.
func TestResultString(t *testing.T) {
	res := runMS(t, sumLoop, 4, 1, false)
	s := res.String()
	if !strings.Contains(s, "IPC") || !strings.Contains(s, "tasks=") {
		t.Errorf("String() = %q", s)
	}
}

// TestActivitySumInvariant (property over several programs): unit-cycles
// are fully classified for any run.
func TestActivitySumInvariant(t *testing.T) {
	for _, src := range []string{sumLoop, parLoop, memDep, callProg} {
		for _, units := range []int{2, 8} {
			res := runMS(t, src, units, 1, false)
			var total uint64
			for _, c := range res.Activity {
				total += c
			}
			total += res.SquashedCycles
			if total != uint64(units)*res.Cycles {
				t.Errorf("units=%d: classified %d of %d unit-cycles",
					units, total, uint64(units)*res.Cycles)
			}
		}
	}
}

// TestTaskDescriptorValidationAtRuntime: a descriptor whose target list
// omits the real exit produces a loud error rather than silence.
func TestExitNotInTargetsErrors(t *testing.T) {
	src := `
main:
	li $s0, 2
	j  loop !s
loop:
	addi $s0, $s0, -1 !f
	bnez $s0, loop !s
end:
	li $v0, 10
	li $a0, 0
	syscall
	.task main targets=loop create=$s0
	.task loop targets=loop create=$s0
	.task end entry=end
`
	// mslint catches the missing target statically (MS006); assemble
	// without the lint gate so the runtime validation gets its turn.
	res, err := asm.AssembleOpts(src, asm.Options{Mode: asm.ModeMultiscalar, NoLint: true})
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMultiscalar(res.Prog, interp.NewSysEnv(), DefaultConfig(4, 1, false))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err == nil || !strings.Contains(err.Error(), "not among its targets") {
		t.Fatalf("expected target-validation error, got %v", err)
	}
}

// TestTraceOutput exercises the cycle tracer.
func TestTraceOutput(t *testing.T) {
	p, err := asm.Assemble(sumLoop, asm.ModeMultiscalar)
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	cfg := DefaultConfig(4, 1, false)
	cfg.Trace = &buf
	m, err := NewMultiscalar(p, interp.NewSysEnv(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if uint64(len(lines)) < res.Cycles-1 {
		t.Fatalf("trace lines = %d, cycles = %d", len(lines), res.Cycles)
	}
	if !strings.Contains(lines[0], "head=0") || !strings.Contains(lines[0], "[") {
		t.Errorf("trace format: %q", lines[0])
	}
}

// TestSyscallInsideLoopTasks prints from within each loop task: syscalls
// must serialize at the head and see the speculative memory view, and the
// interleaved output must still be sequential.
func TestSyscallInsideLoopTasks(t *testing.T) {
	src := `
main:
	li $s0, 5
	j  loop !s
loop:
	move $a0, $s0
	li   $v0, 1
	syscall
	li   $a0, ' '
	li   $v0, 11
	syscall
	addi $s0, $s0, -1 !f
	bnez $s0, loop !s
end:
	move $a0, $s0
	li $v0, 1
	syscall
` + exitSeq + `
	.task main targets=loop create=$s0
	.task loop targets=loop,end create=$s0,$a0,$v0
	.task end entry=end
`
	res := runMS(t, src, 8, 2, true)
	if res.Out != "5 4 3 2 1 0" {
		t.Errorf("out = %q", res.Out)
	}
}

// TestWideMatrixOnMemDep runs the memory-recurrence program across the
// full configuration matrix: violations, restarts and validation must
// compose with every issue mode.
func TestWideMatrixOnMemDep(t *testing.T) {
	for _, units := range []int{2, 3, 5, 8, 16} {
		for _, width := range []int{1, 2} {
			for _, ooo := range []bool{false, true} {
				res := runMS(t, memDep, units, width, ooo)
				if res.TasksRetired < 50 {
					t.Errorf("units=%d width=%d ooo=%v: tasks=%d", units, width, ooo, res.TasksRetired)
				}
			}
		}
	}
}

// TestDeterminism: identical configuration + binary must reproduce the
// exact cycle count, output, and squash history (the simulator never
// consults wall-clock time or global randomness).
func TestDeterminism(t *testing.T) {
	p, err := asm.Assemble(memDep, asm.ModeMultiscalar)
	if err != nil {
		t.Fatal(err)
	}
	run := func() *Result {
		m, err := NewMultiscalar(p, interp.NewSysEnv(), DefaultConfig(8, 2, true))
		if err != nil {
			t.Fatal(err)
		}
		res, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Cycles != b.Cycles || a.Out != b.Out ||
		a.MemSquashes != b.MemSquashes || a.CtlSquashes != b.CtlSquashes ||
		a.Committed != b.Committed {
		t.Fatalf("non-deterministic: %+v vs %+v", a, b)
	}
}
