// mstrace records and renders event traces of multiscalar simulations
// (docs/tracing.md). It either re-runs a workload or assembly file with
// tracing enabled, or reads a previously recorded .mstrc file, and
// renders a per-task timeline (default), a per-task/per-unit cycle
// decomposition (-metrics), raw events (-events), or Chrome trace_event
// JSON loadable in Perfetto (-perfetto).
//
// Usage:
//
//	mstrace -w example -units 8                record and show the timeline
//	mstrace -w example -o example.mstrc        record to a file
//	mstrace -i example.mstrc -metrics          render a recorded trace
//	mstrace -i example.mstrc -perfetto t.json  export for ui.perfetto.dev
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"multiscalar"
	"multiscalar/internal/pu"
	"multiscalar/internal/trace"
)

func main() {
	var (
		input    = flag.String("i", "", "read a recorded .mstrc trace instead of simulating")
		workload = flag.String("w", "", "benchmark name to trace (see mssim -list)")
		file     = flag.String("f", "", "assembly source file to trace")
		scale    = flag.Int("scale", 0, "problem scale (0 = workload default)")
		units    = flag.Int("units", 8, "processing units (1 = scalar baseline)")
		width    = flag.Int("width", 1, "issue width per unit")
		ooo      = flag.Bool("ooo", false, "out-of-order issue within units")
		output   = flag.String("o", "", "write the recorded trace to this .mstrc file")
		metrics  = flag.Bool("metrics", false, "print the per-task / per-unit cycle decomposition")
		events   = flag.Bool("events", false, "dump the raw event stream")
		perfetto = flag.String("perfetto", "", "write Chrome trace_event JSON to this file")
	)
	flag.Parse()

	tr, err := obtain(*input, *workload, *file, *scale, *units, *width, *ooo, *output)
	if err != nil {
		fatal(err)
	}

	switch {
	case *events:
		for _, e := range tr.Events {
			fmt.Println(e)
		}
	case *metrics:
		renderMetrics(tr)
	case *perfetto != "":
		// handled below
	default:
		renderTimeline(tr)
	}
	if *perfetto != "" {
		if err := writePerfetto(*perfetto, tr); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "mstrace: wrote %s (open in ui.perfetto.dev)\n", *perfetto)
	}
}

// obtain loads a trace from a file or records one by simulating.
func obtain(input, workload, file string, scale, units, width int, ooo bool, output string) (*trace.Trace, error) {
	if input != "" {
		f, err := os.Open(input)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return multiscalar.ReadTrace(f)
	}

	prog, label, err := build(workload, file, scale, units)
	if err != nil {
		return nil, err
	}
	var cfg multiscalar.Config
	if units <= 1 {
		cfg = multiscalar.ScalarConfig(width, ooo)
	} else {
		cfg = multiscalar.DefaultConfig(units, width, ooo)
	}
	col := &multiscalar.TraceCollector{}
	if _, err := multiscalar.Run(prog, cfg, multiscalar.WithTrace(col), multiscalar.WithVerify()); err != nil {
		return nil, err
	}
	tr := &trace.Trace{Meta: multiscalar.TraceMetaFor(prog, cfg, label), Events: col.Events}
	if output != "" {
		if err := save(output, tr); err != nil {
			return nil, err
		}
		fmt.Fprintf(os.Stderr, "mstrace: wrote %s (%d events)\n", output, len(tr.Events))
	}
	return tr, nil
}

func build(workload, file string, scale, units int) (*multiscalar.Program, string, error) {
	mode := multiscalar.ModeMultiscalar
	if units <= 1 {
		mode = multiscalar.ModeScalar
	}
	if workload != "" {
		w := multiscalar.GetWorkload(workload)
		if w == nil {
			return nil, "", fmt.Errorf("unknown workload %q (try mssim -list)", workload)
		}
		p, err := w.Build(mode, scale)
		return p, workload, err
	}
	if file == "" {
		return nil, "", fmt.Errorf("one of -i, -w or -f is required")
	}
	src, err := os.ReadFile(file)
	if err != nil {
		return nil, "", err
	}
	res, err := multiscalar.Assemble(string(src), multiscalar.WithMode(mode))
	if err != nil {
		return nil, "", err
	}
	return res.Prog, file, nil
}

func save(path string, tr *trace.Trace) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w, err := trace.NewWriter(f, tr.Meta)
	if err != nil {
		f.Close()
		return err
	}
	for _, e := range tr.Events {
		w.Emit(e)
	}
	if err := w.Close(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// renderTimeline prints one row per task: lifecycle milestones, outcome,
// and a proportional lane diagram of its activations.
func renderTimeline(tr *trace.Trace) {
	s := trace.Summarize(tr)
	fmt.Printf("%s: %d units, %d cycles, %d tasks\n\n",
		labelOf(tr), tr.Meta.NumUnits, s.Cycles, len(s.Tasks))
	const lanes = 60
	fmt.Printf("%5s %-14s %4s %9s %9s %9s  %-18s %s\n",
		"task", "name", "unit", "assigned", "1st-issue", "end", "outcome", "activity")
	for i := range s.Tasks {
		t := &s.Tasks[i]
		issue := "-"
		if t.HasIssue {
			issue = fmt.Sprint(t.FirstIssue)
		}
		fmt.Printf("%5d %-14s %4d %9d %9s %9d  %-18s %s\n",
			t.Seq, nameOf(tr, t), t.Unit, t.Assigned, issue, t.EndCycle,
			outcome(t), lane(t, s.Cycles, lanes))
	}
}

// outcome renders how a task ended.
func outcome(t *trace.TaskSummary) string {
	if t.Retired {
		if t.Restarts > 0 {
			return fmt.Sprintf("retire %d (re-run %d)", t.Instrs, t.Restarts)
		}
		return fmt.Sprintf("retire %d", t.Instrs)
	}
	if t.HasConflict {
		return fmt.Sprintf("squash %s d=%d addr=0x%x bank=%d",
			trace.CauseName(t.SquashCause), t.SquashDist, t.SquashAddr, t.SquashBank)
	}
	return fmt.Sprintf("squash %s d=%d", trace.CauseName(t.SquashCause), t.SquashDist)
}

// lane draws the task's activations on a fixed-width strip: '=' for
// cycles that committed, '~' for squashed activations.
func lane(t *trace.TaskSummary, cycles uint64, width int) string {
	if cycles == 0 {
		return ""
	}
	b := []byte(strings.Repeat(".", width))
	for _, sp := range t.Spans {
		lo := int(sp.Start * uint64(width) / cycles)
		hi := int(sp.End * uint64(width) / cycles)
		if hi >= width {
			hi = width - 1
		}
		c := byte('=')
		if sp.Squashed {
			c = '~'
		}
		for i := lo; i <= hi && i >= 0; i++ {
			b[i] = c
		}
	}
	return string(b)
}

// renderMetrics prints the per-task and per-unit decomposition of the
// run's unit-cycles — the trace-level view of Result.Activity.
func renderMetrics(tr *trace.Trace) {
	s := trace.Summarize(tr)
	fmt.Printf("%s: %d units, %d cycles\n\n", labelOf(tr), tr.Meta.NumUnits, s.Cycles)

	classes := []pu.Activity{pu.ActCompute, pu.ActWaitPred, pu.ActWaitIntra, pu.ActWaitRetire}
	heads := []string{"compute", "wait-pred", "wait-intra", "wait-retire"}

	fmt.Printf("per task:\n%5s %-14s %4s", "task", "name", "unit")
	for _, h := range heads {
		fmt.Printf(" %11s", h)
	}
	fmt.Printf(" %11s  %s\n", "squashed", "outcome")
	var totals [pu.NumActivities]uint64
	var totalSquashed uint64
	perUnit := map[int8]*unitRow{}
	for i := range s.Tasks {
		t := &s.Tasks[i]
		fmt.Printf("%5d %-14s %4d", t.Seq, nameOf(tr, t), t.Unit)
		for _, c := range classes {
			fmt.Printf(" %11d", t.Activity[c])
			totals[c] += t.Activity[c]
		}
		totalSquashed += t.SquashedCycles
		fmt.Printf(" %11d  %s\n", t.SquashedCycles, outcome(t))
		u := perUnit[t.Unit]
		if u == nil {
			u = &unitRow{}
			perUnit[t.Unit] = u
		}
		u.tasks++
		for _, c := range classes {
			u.act[c] += t.Activity[c]
		}
		u.squashed += t.SquashedCycles
	}
	fmt.Printf("%5s %-14s %4s", "", "total", "")
	for _, c := range classes {
		fmt.Printf(" %11d", totals[c])
	}
	fmt.Printf(" %11d\n", totalSquashed)

	fmt.Printf("\nper unit:\n%4s %6s", "unit", "tasks")
	for _, h := range heads {
		fmt.Printf(" %11s", h)
	}
	fmt.Printf(" %11s %11s\n", "squashed", "idle+other")
	unitIDs := make([]int8, 0, len(perUnit))
	for id := range perUnit {
		unitIDs = append(unitIDs, id)
	}
	sort.Slice(unitIDs, func(i, j int) bool { return unitIDs[i] < unitIDs[j] })
	for _, id := range unitIDs {
		u := perUnit[id]
		var used uint64
		fmt.Printf("%4d %6d", id, u.tasks)
		for _, c := range classes {
			fmt.Printf(" %11d", u.act[c])
			used += u.act[c]
		}
		used += u.squashed
		idle := uint64(0)
		if s.Cycles > used {
			idle = s.Cycles - used
		}
		fmt.Printf(" %11d %11d\n", u.squashed, idle)
	}
}

type unitRow struct {
	tasks    int
	act      [pu.NumActivities]uint64
	squashed uint64
}

// chromeEvent is one Chrome trace_event record (the subset Perfetto
// reads: complete spans, instants, and thread-name metadata).
type chromeEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TS    uint64         `json:"ts"`
	Dur   uint64         `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// writePerfetto exports one track per processing unit: task activations
// as complete spans (1 cycle = 1 µs) plus instants for squashes and
// memory-order violations.
func writePerfetto(path string, tr *trace.Trace) error {
	s := trace.Summarize(tr)
	var evs []chromeEvent
	evs = append(evs, chromeEvent{
		Name: "process_name", Phase: "M", PID: 1,
		Args: map[string]any{"name": "multiscalar " + labelOf(tr)},
	})
	for u := 0; u < tr.Meta.NumUnits; u++ {
		evs = append(evs, chromeEvent{
			Name: "thread_name", Phase: "M", PID: 1, TID: u,
			Args: map[string]any{"name": fmt.Sprintf("PU %d", u)},
		})
	}
	for i := range s.Tasks {
		t := &s.Tasks[i]
		name := nameOf(tr, t)
		if name == "" {
			name = fmt.Sprintf("0x%x", t.Entry)
		}
		for _, sp := range t.Spans {
			dur := sp.End - sp.Start
			if dur == 0 {
				dur = 1
			}
			outcome := "retired"
			if sp.Squashed {
				outcome = "squashed (" + trace.CauseName(sp.Cause) + ")"
			}
			evs = append(evs, chromeEvent{
				Name: fmt.Sprintf("%s #%d", name, t.Seq), Phase: "X",
				TS: sp.Start, Dur: dur, PID: 1, TID: int(sp.Unit),
				Args: map[string]any{
					"task":    t.Seq,
					"entry":   fmt.Sprintf("0x%x", t.Entry),
					"outcome": outcome,
				},
			})
			if sp.Squashed {
				evs = append(evs, chromeEvent{
					Name: "squash " + trace.CauseName(sp.Cause), Phase: "i",
					TS: sp.End, PID: 1, TID: int(sp.Unit), Scope: "t",
				})
			}
		}
	}
	for _, e := range tr.Events {
		if e.Kind == trace.KARBViolation {
			evs = append(evs, chromeEvent{
				Name: fmt.Sprintf("violation @0x%x", e.Arg), Phase: "i",
				TS: e.Cycle, PID: 1, TID: int(e.Unit), Scope: "t",
			})
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	if err := enc.Encode(map[string]any{"traceEvents": evs}); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func labelOf(tr *trace.Trace) string {
	if tr.Meta.Label != "" {
		return tr.Meta.Label
	}
	return "trace"
}

func nameOf(tr *trace.Trace, t *trace.TaskSummary) string {
	if n := t.Name(&tr.Meta); n != "" {
		return n
	}
	return fmt.Sprintf("0x%x", t.Entry)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mstrace:", err)
	os.Exit(1)
}
