// Package litmus generates memory-ordering litmus tests for the
// multiscalar machine and checks the speculative cores against the
// functional oracle at scale.
//
// A multiscalar processor maintains sequential semantics: however the
// units interleave speculative loads and stores, the committed outcome
// of a program must equal the functional interpreter's. Each litmus
// shape arranges the classic ordering hazards — message passing, store
// buffering, load buffering, same-address coherence — and the hazards
// specific to this microarchitecture (cross-task store→speculative-load
// violations, release-before-store, forward-bit races) as short
// annotated task chains whose observations are printed by a terminal
// task. The single legal outcome is the oracle's output; the named
// forbidden outcomes are the weak behaviors a missed violation would
// produce, kept as a diagnosis catalogue (see docs/litmus.md).
package litmus

import (
	"fmt"
	"sort"

	"multiscalar/internal/asm"
	"multiscalar/internal/isa"
	"multiscalar/internal/job"
)

// Params select one generated program.
type Params struct {
	// Shape is the shape-family name (see Shapes).
	Shape string
	// Pad is the byte distance between the two shared locations X and
	// Y (minimum 4). 4 places them in the same ARB chunk, 8 in
	// adjacent chunks (different banks under the pow2 bank mapping),
	// 128 sixteen chunks apart — the same bank again for every bank
	// count the corpus runs (2·units with units ≤ 8 ⇒ 1..16 banks).
	Pad int
	// Filler is the depth of the dependent filler chain shapes insert
	// to skew timing between the racing accesses.
	Filler int
	// Tasks scales the shapes with a variable task chain or trip
	// count (chain, loop); other shapes ignore it.
	Tasks int
	// Seed drives the randomized shape ("rand"); curated shapes are
	// deterministic and ignore it.
	Seed int64
}

// Name is the program's stable identity: shape plus the parameters
// that matter for it.
func (p Params) Name() string {
	s := fmt.Sprintf("%s/pad%d/fill%d", p.Shape, p.Pad, p.Filler)
	if p.Tasks > 0 {
		s += fmt.Sprintf("/n%d", p.Tasks)
	}
	if p.Shape == "rand" {
		s += fmt.Sprintf("/seed%d", p.Seed)
	}
	return s
}

// Program is one generated litmus test with its reference outcomes.
type Program struct {
	Params Params
	Name   string
	Source string       // annotated assembly text
	Prog   *isa.Program // multiscalar build (lint-clean)
	// Oracle is the functional reference — the one legal outcome a
	// run must reproduce (output and committed instruction count).
	Oracle *job.Oracle
	// Forbidden names the weak outcomes worth a specific diagnosis:
	// output → what went wrong. Any other divergence is still a
	// failure, just an unnamed one.
	Forbidden map[string]string
}

// Classify renders a diagnosis for an observed output.
func (p *Program) Classify(got string) string {
	if got == p.Oracle.Out {
		return "legal"
	}
	if d, ok := p.Forbidden[got]; ok {
		return d
	}
	return "diverged (uncatalogued outcome)"
}

// genMaxInstrs bounds the oracle run of a generated program; every
// curated and randomized shape terminates well under it.
const genMaxInstrs = 1 << 22

// Generate builds the program for params: emit the source, assemble it
// in multiscalar mode (the lint gate stays on — a generated program
// that violates the annotation contract is a generator bug), and run
// the functional oracle to fix the legal outcome.
func Generate(p Params) (*Program, error) {
	if p.Pad < 4 {
		p.Pad = 4
	}
	sh := shapeByName(p.Shape)
	if sh == nil {
		return nil, fmt.Errorf("litmus: unknown shape %q", p.Shape)
	}
	if p.Filler <= 0 {
		p.Filler = sh.defaultFiller
	}
	if p.Tasks <= 0 {
		p.Tasks = sh.defaultTasks
	}
	g := newEmitter(p)
	sh.emit(g, p)
	src := g.finish()

	prog, err := asm.Assemble(src, asm.ModeMultiscalar)
	if err != nil {
		return nil, fmt.Errorf("litmus: %s: %w\n%s", p.Name(), err, src)
	}
	oracle, err := job.RunOracle(prog, nil, genMaxInstrs)
	if err != nil {
		return nil, fmt.Errorf("litmus: %s: oracle: %w", p.Name(), err)
	}
	if oracle.ExitCode != 0 {
		return nil, fmt.Errorf("litmus: %s: oracle exit code %d", p.Name(), oracle.ExitCode)
	}
	return &Program{
		Params:    p,
		Name:      p.Name(),
		Source:    src,
		Prog:      prog,
		Oracle:    oracle,
		Forbidden: g.forbidden,
	}, nil
}

// Shapes lists the shape families in catalogue order.
func Shapes() []string {
	names := make([]string, 0, len(shapes))
	for _, s := range shapes {
		names = append(names, s.name)
	}
	return names
}

// ShapeDoc returns the one-line description of a shape family.
func ShapeDoc(name string) string {
	if s := shapeByName(name); s != nil {
		return s.doc
	}
	return ""
}

// Corpus generates the curated corpus: every curated shape family at
// every padding class. Deterministic — CI runs exactly this set.
func Corpus() ([]*Program, error) {
	var progs []*Program
	for _, sh := range shapes {
		if sh.name == "rand" {
			continue
		}
		for _, pad := range []int{4, 8, 128} {
			p, err := Generate(Params{Shape: sh.name, Pad: pad})
			if err != nil {
				return nil, err
			}
			progs = append(progs, p)
		}
	}
	return progs, nil
}

// Find returns the corpus program with the given name (nil if absent).
func Find(progs []*Program, name string) *Program {
	for _, p := range progs {
		if p.Name == name {
			return p
		}
	}
	return nil
}

// Random generates one randomized program from the seed: a straight
//-line chain of tasks issuing loads, stores and read-modify-writes
// over a small address pool biased toward aliasing, the layout the ARB
// stressor feeds on. Deterministic per seed.
func Random(seed int64) (*Program, error) {
	return Generate(Params{Shape: "rand", Seed: seed})
}

// SortedForbidden renders a deterministic listing of a forbidden
// catalogue (tests, -dump).
func SortedForbidden(m map[string]string) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
