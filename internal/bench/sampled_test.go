package bench

import (
	"strings"
	"testing"
)

func TestGateSampled(t *testing.T) {
	rows := []SampledRow{
		{Name: "good", InCI: true, Reduction: 14.2},
		{Name: "biased", InCI: false, Reduction: 20.0, ErrPct: 7.5},
		{Name: "slow", InCI: true, Reduction: 3.1},
	}
	fails := GateSampled(rows, 10)
	if len(fails) != 2 {
		t.Fatalf("got %d failures, want 2: %v", len(fails), fails)
	}
	joined := strings.Join(fails, "\n")
	for _, name := range []string{"biased", "slow"} {
		if !strings.Contains(joined, name) {
			t.Errorf("failure list does not mention %q: %v", name, fails)
		}
	}
	if strings.Contains(joined, "good") {
		t.Errorf("passing row flagged: %v", fails)
	}
	if got := GateSampled(rows[:1], 10); len(got) != 0 {
		t.Errorf("clean rows produced failures: %v", got)
	}
}
