package mslint

import (
	"multiscalar/internal/cfg"
	"multiscalar/internal/isa"
)

// A task's region is reconstructed exactly the way a processing unit
// executes it: start at the entry, follow control flow, end at any
// satisfied stop bit. A call without a stop bit pulls the callee body
// into the task (the paper's suppressed functions); a call with a stop
// bit ends the task at the callee's entry.

// exitKind distinguishes how a stop-tagged instruction leaves the task.
type exitKind int

const (
	exitJump   exitKind = iota // branch/jump/fallthrough to a static address
	exitCall                   // jal: the callee entry starts the next task
	exitReturn                 // jr: successor resolved by the return stack
)

// exit is one statically discovered task exit.
type exit struct {
	addr   uint32 // address of the stop-tagged instruction
	target uint32 // successor task entry (TargetReturn for exitReturn)
	cont   uint32 // for exitCall: the return continuation (addr+4)
	kind   exitKind
}

// region is one task's reconstructed extent plus its intra-task edges.
type region struct {
	td     *isa.TaskDescriptor
	blocks []*cfg.Block
	depth0 map[*cfg.Block]bool // reached from the entry without a call edge
	callee map[*cfg.Block]bool // reached (possibly only) through call edges
	edges  map[*cfg.Block][]*cfg.Block
	exits  []exit
	// unknownExit: a stop-tagged jalr makes the exit set unknowable.
	unknownExit bool
	// halts: addresses of statically recognized exit syscalls.
	halts []uint32
}

type linter struct {
	prog  *isa.Program
	g     *cfg.Graph
	lines map[uint32]int
	rep   *Report
}

// haltAt returns the address of the first exit syscall in the block, or
// 0. An exit syscall is a `syscall` whose nearest preceding $v0 write in
// the same block is a constant 10 (the li expansion) — the only way a
// workload terminates. Unknown $v0 values are conservatively not halts.
func (l *linter) haltAt(b *cfg.Block) uint32 {
	v0 := int32(-1) // last known constant in $v0; -1 = unknown
	for a := b.Start; a < b.End; a += isa.InstrSize {
		in := l.prog.InstrAt(a)
		switch {
		case in.Op == isa.OpSyscall:
			if v0 == 10 {
				return a
			}
		case in.Dest() == isa.RegV0:
			if (in.Op == isa.OpOri || in.Op == isa.OpAddi) && in.Rs == isa.RegZero {
				v0 = in.Imm
			} else {
				v0 = -1
			}
		}
	}
	return 0
}

// walkTask reconstructs the region of one task.
func (l *linter) walkTask(td *isa.TaskDescriptor) *region {
	r := &region{
		td:     td,
		depth0: map[*cfg.Block]bool{},
		callee: map[*cfg.Block]bool{},
		edges:  map[*cfg.Block][]*cfg.Block{},
	}
	start := l.g.ByAddr[td.Entry]
	if start == nil {
		l.diag(SevError, CodeBadTaskRef, td.Name, isa.RegZero, td.Entry,
			"task entry 0x%x is not the start of a basic block", td.Entry)
		return r
	}

	type state struct {
		b       *cfg.Block
		viaCall bool
	}
	seen := map[state]bool{}
	var stack []state
	push := func(b *cfg.Block, viaCall bool) {
		if b == nil {
			return
		}
		s := state{b, viaCall}
		if seen[s] {
			return
		}
		seen[s] = true
		stack = append(stack, s)
	}
	addEdge := func(from, to *cfg.Block) {
		for _, e := range r.edges[from] {
			if e == to {
				return
			}
		}
		r.edges[from] = append(r.edges[from], to)
	}
	// internal traverses a non-exit edge, checking that it does not bleed
	// into another task's entry.
	internal := func(from *cfg.Block, to uint32, viaCall bool, instrAddr uint32) {
		t := l.g.ByAddr[to]
		if t == nil {
			l.diag(SevError, CodeMissingStop, td.Name, isa.RegZero, instrAddr,
				"control falls past the end of text without a stop bit")
			return
		}
		if l.prog.Tasks[to] != nil && (viaCall || to != td.Entry) {
			l.diag(SevError, CodeMissingStop, td.Name, isa.RegZero, instrAddr,
				"control enters task %s at 0x%x without a stop bit", l.prog.Tasks[to].Name, to)
			return
		}
		addEdge(from, t)
		push(t, viaCall)
	}

	var calleeReturns []*cfg.Block // jr blocks inside pulled-in callees
	var callConts []*cfg.Block    // fall-through blocks of suppressed calls

	push(start, false)
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		b := s.b
		firstVisit := !r.depth0[b] && !r.callee[b]
		if s.viaCall {
			r.callee[b] = true
		} else {
			r.depth0[b] = true
		}
		if firstVisit {
			r.blocks = append(r.blocks, b)
		}

		if h := l.haltAt(b); h != 0 {
			r.halts = append(r.halts, h)
			continue // program exit: no successors
		}

		lastAddr := b.End - isa.InstrSize
		last := l.prog.InstrAt(lastAddr)

		// A stop bit inside a called function body ends the task mid-call
		// for every caller; flag it and do not treat it as this task's
		// exit (the depth-0 visit, if any, owns the exit).
		if s.viaCall && last.Stop != isa.StopNone {
			l.diag(SevWarning, CodeStopInCallee, td.Name, isa.RegZero, lastAddr,
				"stop bit inside called function body (%s)", last.Op)
		}
		calleeStop := s.viaCall && last.Stop != isa.StopNone

		addExit := func(target uint32, kind exitKind) {
			if s.viaCall {
				return
			}
			e := exit{addr: lastAddr, target: target, kind: kind}
			if kind == exitCall {
				e.cont = b.End
			}
			r.exits = append(r.exits, e)
		}

		switch {
		case last.Op.IsBranch():
			takenExit := last.Stop == isa.StopAlways || last.Stop == isa.StopTaken
			fallExit := last.Stop == isa.StopAlways || last.Stop == isa.StopNotTaken
			if takenExit && !calleeStop {
				addExit(last.Target, exitJump)
			} else if !takenExit {
				internal(b, last.Target, s.viaCall, lastAddr)
			}
			if fallExit && !calleeStop {
				addExit(b.End, exitJump)
			} else if !fallExit {
				internal(b, b.End, s.viaCall, lastAddr)
			}
		case last.Op == isa.OpJ:
			switch last.Stop {
			case isa.StopNone, isa.StopNotTaken: // an unconditional jump is always taken
				internal(b, last.Target, s.viaCall, lastAddr)
			default:
				if !calleeStop {
					addExit(last.Target, exitJump)
				}
			}
		case last.Op == isa.OpJal:
			if last.Stop != isa.StopNone {
				// The call ends the task: the callee entry is the successor
				// task; the continuation belongs to a later task.
				if !calleeStop {
					addExit(last.Target, exitCall)
				}
			} else {
				// Suppressed call: pull the callee body in, resume at the
				// fall-through.
				if ct := l.prog.Tasks[last.Target]; ct != nil {
					l.diag(SevWarning, CodeTaskOverlap, td.Name, isa.RegZero, lastAddr,
						"call without a stop bit to %s, which is also task %s: its body executes both inside this task and as its own task", ct.Name, ct.Name)
				}
				if callee := l.g.ByAddr[last.Target]; callee != nil {
					addEdge(b, callee)
					push(callee, true)
				}
				if ft := l.g.ByAddr[b.End]; ft != nil {
					callConts = append(callConts, ft)
				}
				internal(b, b.End, s.viaCall, lastAddr)
			}
		case last.Op == isa.OpJalr:
			l.diag(SevWarning, CodeIndirect, td.Name, isa.RegZero, lastAddr,
				"indirect call defeats static exit and effect analysis")
			if last.Stop != isa.StopNone {
				r.unknownExit = true
			} else {
				internal(b, b.End, s.viaCall, lastAddr)
			}
		case last.Op == isa.OpJr:
			switch {
			case s.viaCall:
				// Return within a pulled-in callee: execution resumes at the
				// call continuation; the approximate return edges are added
				// after the walk.
				calleeReturns = append(calleeReturns, b)
			case last.Stop == isa.StopAlways:
				addExit(isa.TargetReturn, exitReturn)
			default:
				l.diag(SevError, CodeMissingStop, td.Name, isa.RegZero, lastAddr,
					"return reachable from the task entry without a stop bit")
			}
		default:
			if last.Stop != isa.StopNone {
				if !calleeStop {
					addExit(b.End, exitJump)
				}
			} else {
				internal(b, b.End, s.viaCall, lastAddr)
			}
		}
	}

	// Approximate return edges: any callee return may resume at any
	// suppressed-call continuation of this task. Over-approximate (and
	// thus sound for the may/must analyses that consume the edge set).
	for _, ret := range calleeReturns {
		for _, cont := range callConts {
			addEdge(ret, cont)
		}
	}
	return r
}

// instrDefs returns the registers one instruction may define within the
// task. Callee bodies of suppressed calls are walked directly, so a jal
// contributes only $ra; jalr contributes only its link register (its full
// effect is unanalyzable and already flagged as CodeIndirect).
func instrDefs(in *isa.Instr) isa.RegMask {
	var m isa.RegMask
	switch in.Op {
	case isa.OpJal, isa.OpJalr:
		return m.Set(in.Rd)
	default:
		return m.Set(in.Dest())
	}
}

// blockDefs unions instrDefs over the block.
func (l *linter) blockDefs(b *cfg.Block) isa.RegMask {
	var m isa.RegMask
	for a := b.Start; a < b.End; a += isa.InstrSize {
		m = m.Union(instrDefs(l.prog.InstrAt(a)))
	}
	return m
}

// preds inverts the region's edge map.
func (r *region) preds() map[*cfg.Block][]*cfg.Block {
	out := map[*cfg.Block][]*cfg.Block{}
	for from, tos := range r.edges {
		for _, to := range tos {
			out[to] = append(out[to], from)
		}
	}
	return out
}
