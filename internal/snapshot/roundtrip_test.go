package snapshot_test

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"

	"multiscalar/internal/arb"
	"multiscalar/internal/asm"
	"multiscalar/internal/core"
	"multiscalar/internal/interp"
	"multiscalar/internal/isa"
	"multiscalar/internal/litmus"
	"multiscalar/internal/snapshot"
	"multiscalar/internal/trace"
	"multiscalar/internal/workloads"
)

// errInterrupted is the sentinel a checkpoint callback returns to stop
// the run at the checkpoint — the "process killed mid-simulation" half
// of a round trip.
var errInterrupted = errors.New("interrupted at checkpoint")

func build(t *testing.T, name string, mode asm.Mode) *isa.Program {
	t.Helper()
	w := workloads.Get(name)
	if w == nil {
		t.Fatalf("unknown workload %s", name)
	}
	p, err := w.Build(mode, w.TestScale)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func runMulti(t *testing.T, p *isa.Program, cfg core.Config) *core.Result {
	t.Helper()
	m, err := core.NewMultiscalar(p, interp.NewSysEnv(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// interruptAndResume runs p under cfg, saves and aborts at cycle `at`,
// then restores the snapshot into a fresh machine and finishes.
func interruptAndResume(t *testing.T, p *isa.Program, cfg core.Config, at uint64) *core.Result {
	t.Helper()
	m1, err := core.NewMultiscalar(p, interp.NewSysEnv(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	var snap []byte
	m1.ScheduleCheckpoint(at, func() error {
		if snap, err = m1.Save(); err != nil {
			return err
		}
		return errInterrupted
	})
	if _, err := m1.Run(); !errors.Is(err, errInterrupted) {
		t.Fatalf("interrupted run: err = %v, want %v", err, errInterrupted)
	}

	m2, err := core.NewMultiscalar(p, interp.NewSysEnv(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m2.Restore(snap); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	res, err := m2.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestMultiscalarRoundTrip saves at random mid-run cycles across unit
// counts and checks the resumed run's Result — every cycle count, every
// statistic — equals the uninterrupted run's.
func TestMultiscalarRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, name := range []string{"wc", "compress", "tomcatv"} {
		p := build(t, name, asm.ModeMultiscalar)
		for _, units := range []int{2, 4, 8} {
			cfg := core.DefaultConfig(units, 2, true)
			full := runMulti(t, p, cfg)
			if full.Cycles < 4 {
				t.Fatalf("%s/%d: run too short (%d cycles) to checkpoint", name, units, full.Cycles)
			}
			for trial := 0; trial < 3; trial++ {
				at := 1 + uint64(rng.Int63n(int64(full.Cycles-1)))
				got := interruptAndResume(t, p, cfg, at)
				if !reflect.DeepEqual(got, full) {
					t.Errorf("%s units=%d checkpoint@%d: resumed result differs\ngot  %+v\nwant %+v",
						name, units, at, got, full)
				}
			}
		}
	}
}

// TestScalarRoundTrip does the same for the baseline machine.
func TestScalarRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	p := build(t, "wc", asm.ModeScalar)
	cfg := core.ScalarConfig(2, true)
	sFull := core.NewScalar(p, interp.NewSysEnv(), cfg)
	full, err := sFull.Run()
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 4; trial++ {
		at := 1 + uint64(rng.Int63n(int64(full.Cycles-1)))
		s1 := core.NewScalar(p, interp.NewSysEnv(), cfg)
		var snap []byte
		s1.ScheduleCheckpoint(at, func() error {
			var err error
			if snap, err = s1.Save(); err != nil {
				return err
			}
			return errInterrupted
		})
		if _, err := s1.Run(); !errors.Is(err, errInterrupted) {
			t.Fatalf("interrupted run: err = %v", err)
		}
		s2 := core.NewScalar(p, interp.NewSysEnv(), cfg)
		if err := s2.Restore(snap); err != nil {
			t.Fatalf("Restore: %v", err)
		}
		got, err := s2.Run()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, full) {
			t.Errorf("scalar checkpoint@%d: resumed result differs\ngot  %+v\nwant %+v", at, got, full)
		}
	}
}

// TestTraceRoundTrip checks the .mstrc stream: an interrupted run whose
// restored half keeps writing to the same trace writer must produce a
// byte-identical stream to the uninterrupted run.
func TestTraceRoundTrip(t *testing.T) {
	p := build(t, "wc", asm.ModeMultiscalar)
	cfg := core.DefaultConfig(4, 1, false)
	meta := trace.Meta{NumUnits: cfg.NumUnits, Label: "roundtrip"}

	record := func(run func(sink trace.Sink) error) []byte {
		var buf bytes.Buffer
		w, err := trace.NewWriter(&buf, meta)
		if err != nil {
			t.Fatal(err)
		}
		if err := run(w); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	full := record(func(sink trace.Sink) error {
		c := cfg
		c.Sink = sink
		m, err := core.NewMultiscalar(p, interp.NewSysEnv(), c)
		if err != nil {
			return err
		}
		_, err = m.Run()
		return err
	})

	rng := rand.New(rand.NewSource(47))
	baseline := runMulti(t, p, cfg)
	for trial := 0; trial < 3; trial++ {
		at := 1 + uint64(rng.Int63n(int64(baseline.Cycles-1)))
		spliced := record(func(sink trace.Sink) error {
			c := cfg
			c.Sink = sink
			m1, err := core.NewMultiscalar(p, interp.NewSysEnv(), c)
			if err != nil {
				return err
			}
			var snap []byte
			m1.ScheduleCheckpoint(at, func() error {
				var err error
				if snap, err = m1.Save(); err != nil {
					return err
				}
				return errInterrupted
			})
			if _, err := m1.Run(); !errors.Is(err, errInterrupted) {
				t.Fatalf("interrupted run: err = %v", err)
			}
			m2, err := core.NewMultiscalar(p, interp.NewSysEnv(), c)
			if err != nil {
				return err
			}
			if err := m2.Restore(snap); err != nil {
				return err
			}
			_, err = m2.Run()
			return err
		})
		if !bytes.Equal(full, spliced) {
			t.Errorf("checkpoint@%d: spliced trace differs from uninterrupted trace (%d vs %d bytes)",
				at, len(spliced), len(full))
		}
	}
}

// TestInterpRoundTrip checkpoints the functional machine mid-run.
func TestInterpRoundTrip(t *testing.T) {
	p := build(t, "compress", asm.ModeScalar)
	full := interp.NewMachine(p, interp.NewSysEnv())
	if err := full.Run(1 << 30); err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 4; trial++ {
		stop := 1 + uint64(rng.Int63n(int64(full.ICount-1)))
		m1 := interp.NewMachine(p, interp.NewSysEnv())
		for m1.ICount < stop {
			if err := m1.Step(); err != nil {
				t.Fatal(err)
			}
		}
		snap, err := m1.Save()
		if err != nil {
			t.Fatal(err)
		}
		m2 := interp.NewMachine(p, interp.NewSysEnv())
		if err := m2.Restore(snap); err != nil {
			t.Fatalf("Restore: %v", err)
		}
		if err := m2.Run(1 << 30); err != nil {
			t.Fatal(err)
		}
		if m2.ICount != full.ICount || m2.Env.Out.String() != full.Env.Out.String() ||
			m2.Env.ExitCode != full.Env.ExitCode || m2.LoadCount != full.LoadCount ||
			m2.StoreCount != full.StoreCount || m2.BranchCount != full.BranchCount {
			t.Errorf("restored run diverged at stop=%d: icount %d vs %d", stop, m2.ICount, full.ICount)
		}
		if !m2.Mem.Equal(full.Mem) {
			t.Errorf("restored memory differs at stop=%d", stop)
		}
	}
}

// TestInterpStdinRoundTrip checks that a snapshot taken between reads
// of the input stream repositions a fresh reader correctly.
func TestInterpStdinRoundTrip(t *testing.T) {
	src := `
main:
	li   $t0, 6
loop:
	li   $v0, 12
	syscall
	addi $a0, $v0, 0
	li   $v0, 11
	syscall
	addi $t0, $t0, -1
	bnez $t0, loop
	li   $v0, 10
	li   $a0, 0
	syscall
`
	res, err := asm.AssembleOpts(src, asm.Options{Mode: asm.ModeScalar})
	if err != nil {
		t.Fatal(err)
	}
	p := res.Prog
	const input = "abcdef"

	run := func(m *interp.Machine) string {
		t.Helper()
		if err := m.Run(1 << 20); err != nil {
			t.Fatal(err)
		}
		return m.Env.Out.String()
	}
	envFull := interp.NewSysEnv()
	envFull.In = strings.NewReader(input)
	want := run(interp.NewMachine(p, envFull))
	if want != input {
		t.Fatalf("full run echoed %q, want %q", want, input)
	}

	// Stop after three reads, snapshot, restore with a fresh reader.
	env1 := interp.NewSysEnv()
	env1.In = strings.NewReader(input)
	m1 := interp.NewMachine(p, env1)
	for len(env1.Out.String()) < 3 {
		if err := m1.Step(); err != nil {
			t.Fatal(err)
		}
	}
	snap, err := m1.Save()
	if err != nil {
		t.Fatal(err)
	}
	env2 := interp.NewSysEnv()
	env2.In = strings.NewReader(input) // fresh reader over the same bytes
	m2 := interp.NewMachine(p, env2)
	if err := m2.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if got := run(m2); got != want {
		t.Errorf("restored run echoed %q, want %q", got, want)
	}
}

// TestRestoreErrors feeds truncated and corrupted snapshots to Restore:
// every case must return an error (or restore cleanly for benign stat
// flips) without panicking.
func TestRestoreErrors(t *testing.T) {
	p := build(t, "wc", asm.ModeMultiscalar)
	cfg := core.DefaultConfig(4, 1, false)
	m, err := core.NewMultiscalar(p, interp.NewSysEnv(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	var snap []byte
	m.ScheduleCheckpoint(100, func() error {
		var err error
		if snap, err = m.Save(); err != nil {
			return err
		}
		return errInterrupted
	})
	if _, err := m.Run(); !errors.Is(err, errInterrupted) {
		t.Fatal(err)
	}

	fresh := func() *core.Multiscalar {
		m, err := core.NewMultiscalar(p, interp.NewSysEnv(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}

	// Truncations at every length up to the header and a sample beyond.
	for n := 0; n < len(snap); n += 1 + n/3 {
		if err := fresh().Restore(snap[:n]); err == nil {
			t.Errorf("Restore(snap[:%d]) = nil error", n)
		}
	}
	// Wrong kind: an interp snapshot into a multiscalar machine.
	im := interp.NewMachine(build(t, "wc", asm.ModeScalar), interp.NewSysEnv())
	isnap, err := im.Save()
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh().Restore(isnap); err == nil {
		t.Error("Restore(interp snapshot) = nil error")
	}
	// Bad magic.
	bad := append([]byte{}, snap...)
	bad[0] ^= 0xff
	if err := fresh().Restore(bad); err == nil {
		t.Error("Restore(bad magic) = nil error")
	}
	// Random single-byte corruptions must never panic (they may decode
	// to an error or to a valid-but-different state).
	rng := rand.New(rand.NewSource(59))
	for trial := 0; trial < 64; trial++ {
		bad := append([]byte{}, snap...)
		bad[rng.Intn(len(bad))] ^= byte(1 + rng.Intn(255))
		fresh().Restore(bad) //nolint:errcheck
	}
	// A snapshot for a different geometry must be rejected.
	other, err := core.NewMultiscalar(p, interp.NewSysEnv(), core.DefaultConfig(8, 1, false))
	if err != nil {
		t.Fatal(err)
	}
	var osnap []byte
	other.ScheduleCheckpoint(100, func() error {
		var err error
		if osnap, err = other.Save(); err != nil {
			return err
		}
		return errInterrupted
	})
	if _, err := other.Run(); !errors.Is(err, errInterrupted) {
		t.Fatal(err)
	}
	if err := fresh().Restore(osnap); err == nil {
		t.Error("Restore(8-unit snapshot into 4-unit machine) = nil error")
	}
}

// TestPeek checks kind dispatch and header metadata on opaque
// snapshots.
func TestPeek(t *testing.T) {
	im := interp.NewMachine(build(t, "wc", asm.ModeScalar), interp.NewSysEnv())
	for i := 0; i < 100; i++ {
		if err := im.Step(); err != nil {
			t.Fatal(err)
		}
	}
	snap, err := im.Save()
	if err != nil {
		t.Fatal(err)
	}
	meta, err := snapshot.Peek(snap)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Kind != snapshot.KindInterp {
		t.Errorf("Peek kind = %d, want %d", meta.Kind, snapshot.KindInterp)
	}
	if meta.Version != snapshot.Version {
		t.Errorf("Peek version = %d, want %d", meta.Version, snapshot.Version)
	}
	if meta.Cycle != im.ICount {
		t.Errorf("Peek cycle = %d, want %d", meta.Cycle, im.ICount)
	}
	if _, err := snapshot.Peek([]byte("short")); err == nil {
		t.Error("Peek(short) = nil error")
	}
}

// TestAdversarialCycleRoundTrip aims checkpoints at the nastiest
// cycles a snapshot can capture instead of random ones: cycles where a
// squash was just emitted (mid-squash window: units restarting,
// sentMask and touch lists partially rebuilt) and cycles where an ARB
// bank was refused an allocation (banks at capacity) — exactly the
// machine states litmus repro artifacts record. The litmus shapes
// drive the machine there deliberately: a capacity-1 ARB under both
// overflow policies. Resumed Results must stay DeepEqual, per-bank
// counters included.
func TestAdversarialCycleRoundTrip(t *testing.T) {
	var progs []*litmus.Program
	for _, params := range []litmus.Params{
		{Shape: "sb", Pad: 128},  // X and Y in the same bank: capacity overflows
		{Shape: "xviol"},         // guaranteed cross-task violation squash
		{Shape: "rand", Seed: 3}, // both, interleaved
	} {
		p, err := litmus.Generate(params)
		if err != nil {
			t.Fatal(err)
		}
		progs = append(progs, p)
	}
	for _, pol := range []arb.OverflowPolicy{arb.PolicyStall, arb.PolicySquash} {
		var sawSquash, sawOverflow bool
		for _, p := range progs {
			cfg := core.DefaultConfig(4, 2, true)
			cfg.ARBEntries = 1
			cfg.ARBPolicy = pol

			// One traced run finds the adversarial cycles; one
			// untraced run pins the reference Result.
			col := &trace.Collector{}
			traced := cfg
			traced.Sink = col
			runMulti(t, p.Prog, traced)
			full := runMulti(t, p.Prog, cfg)

			var cands []uint64
			for _, e := range col.Events {
				switch e.Kind {
				case trace.KTaskSquash:
					// The squash cycle and the restart cycle after it.
					cands = append(cands, e.Cycle, e.Cycle+1)
					sawSquash = true
				case trace.KARBOverflow:
					cands = append(cands, e.Cycle)
					sawOverflow = true
				}
			}
			for _, at := range sampleCycles(cands, full.Cycles, 8) {
				got := interruptAndResume(t, p.Prog, cfg, at)
				if !reflect.DeepEqual(got, full) {
					t.Errorf("%s policy=%d checkpoint@%d: resumed result differs\ngot  %+v\nwant %+v",
						p.Name, pol, at, got, full)
				}
			}
		}
		// Stalling serializes the racing accesses instead of squashing,
		// so mid-squash states are only reachable under PolicySquash;
		// banks-at-capacity states must show up under both policies.
		if !sawOverflow {
			t.Errorf("policy=%d: no ARB overflow cycles — shapes no longer fill capacity-1 banks", pol)
		}
		if pol == arb.PolicySquash && !sawSquash {
			t.Errorf("policy=%d: no squash cycles — shapes no longer provoke squashes", pol)
		}
	}
}

// sampleCycles dedups candidate cycles, keeps those inside (0, limit),
// and spreads at most n picks across the sorted remainder.
func sampleCycles(cands []uint64, limit uint64, n int) []uint64 {
	seen := map[uint64]bool{}
	var cs []uint64
	for _, c := range cands {
		if c > 0 && c < limit && !seen[c] {
			seen[c] = true
			cs = append(cs, c)
		}
	}
	sort.Slice(cs, func(i, j int) bool { return cs[i] < cs[j] })
	if len(cs) <= n {
		return cs
	}
	out := make([]uint64, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, cs[i*len(cs)/n])
	}
	return out
}
