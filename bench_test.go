// Benchmark harness: one testing.B benchmark per table and figure-class
// result in the paper's evaluation section, plus the ablation sweeps.
// Each benchmark regenerates its table (at the fast test scale, so `go
// test -bench .` stays tractable) and reports the headline numbers as
// custom metrics. Full-scale tables are produced by `go run ./cmd/msbench
// -all`.
package multiscalar_test

import (
	"testing"

	"multiscalar/internal/bench"
)

const benchScale = bench.Scale(-1) // workloads' fast test scale

// BenchmarkTable2 regenerates Table 2: dynamic instruction counts of the
// scalar vs multiscalar binaries.
func BenchmarkTable2(b *testing.B) {
	var rows []bench.Table2Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = bench.Table2(benchScale)
		if err != nil {
			b.Fatal(err)
		}
	}
	var avg float64
	for _, r := range rows {
		avg += r.PctIncrease
	}
	b.ReportMetric(avg/float64(len(rows)), "mean-instr-increase-%")
}

func perfBench(b *testing.B, width int, ooo bool) {
	var rows []bench.PerfRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = bench.PerfTable(width, ooo, benchScale)
		if err != nil {
			b.Fatal(err)
		}
	}
	var sp4, sp8, pred float64
	for _, r := range rows {
		sp4 += r.Speedup4
		sp8 += r.Speedup8
		pred += r.Pred8
	}
	n := float64(len(rows))
	b.ReportMetric(sp4/n, "mean-speedup-4u")
	b.ReportMetric(sp8/n, "mean-speedup-8u")
	b.ReportMetric(pred/n, "mean-pred-%")
}

// BenchmarkTable3 regenerates Table 3 (in-order issue units).
func BenchmarkTable3InOrder1Way(b *testing.B) { perfBench(b, 1, false) }
func BenchmarkTable3InOrder2Way(b *testing.B) { perfBench(b, 2, false) }

// BenchmarkTable4 regenerates Table 4 (out-of-order issue units).
func BenchmarkTable4OutOfOrder1Way(b *testing.B) { perfBench(b, 1, true) }
func BenchmarkTable4OutOfOrder2Way(b *testing.B) { perfBench(b, 2, true) }

// BenchmarkBreakdown regenerates the Section 3 cycle-distribution
// accounting at 8 units.
func BenchmarkBreakdown(b *testing.B) {
	var rows []bench.BreakdownRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = bench.Breakdown(8, benchScale)
		if err != nil {
			b.Fatal(err)
		}
	}
	var busy float64
	for _, r := range rows {
		busy += r.Compute
	}
	b.ReportMetric(100*busy/float64(len(rows)), "mean-compute-%")
}

// BenchmarkAblationUnits sweeps the unit count on the paper's example.
func BenchmarkAblationUnits(b *testing.B) {
	var rows []bench.AblationRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = bench.UnitSweep("example", benchScale, []int{1, 2, 4, 8, 16})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[len(rows)-1].Speedup, "speedup-16u-vs-1u")
}

// BenchmarkAblationRing sweeps the forwarding-ring hop latency.
func BenchmarkAblationRing(b *testing.B) {
	var rows []bench.AblationRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = bench.RingLatencySweep("compress", benchScale, []int{0, 1, 2, 4})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[len(rows)-1].Speedup, "speedup-ring4-vs-ring0")
}

// BenchmarkAblationARB sweeps ARB capacity under both overflow policies.
func BenchmarkAblationARB(b *testing.B) {
	var rows []bench.AblationRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = bench.ARBSweep("tomcatv", benchScale, []int{2, 8, 256})
		if err != nil {
			b.Fatal(err)
		}
	}
	_ = rows
}

// BenchmarkAblationForwarding compares forward bits + releases against
// completion-flush-only register communication.
func BenchmarkAblationForwarding(b *testing.B) {
	var rows []bench.AblationRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = bench.ForwardingAblation("wc", benchScale)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[1].Speedup, "flush-only-relative-speed")
}

// BenchmarkAblationPredictor compares the PAs task predictor against
// static first-target prediction.
func BenchmarkAblationPredictor(b *testing.B) {
	var rows []bench.AblationRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = bench.PredictorAblation("gcc", benchScale)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[1].Speedup, "static-relative-speed")
}
