package cfg

// Dominator computation (iterative Cooper/Harvey/Kennedy style) and
// natural-loop discovery. The task partitioner treats loop bodies as the
// primary task-formation unit, following the paper's examples (an
// iteration of the outer loop in Figure 3 is one task).

// computeDominators fills in IDom for all blocks reachable from the entry.
func (g *Graph) computeDominators() {
	if g.Entry == nil {
		return
	}
	// Reverse postorder over reachable blocks.
	order := g.reversePostorder()
	rpoIndex := make(map[*Block]int, len(order))
	for i, b := range order {
		rpoIndex[b] = i
	}
	g.Entry.IDom = g.Entry
	for changed := true; changed; {
		changed = false
		for _, b := range order {
			if b == g.Entry {
				continue
			}
			var newIDom *Block
			for _, p := range b.Preds {
				if p.IDom == nil {
					continue // unprocessed or unreachable
				}
				if newIDom == nil {
					newIDom = p
					continue
				}
				newIDom = intersect(p, newIDom, rpoIndex)
			}
			if newIDom != nil && b.IDom != newIDom {
				b.IDom = newIDom
				changed = true
			}
		}
	}
	g.Entry.IDom = nil // conventional: entry has no dominator parent
}

func intersect(a, b *Block, rpo map[*Block]int) *Block {
	for a != b {
		for rpo[a] > rpo[b] {
			if a.IDom == nil || a.IDom == a {
				return b
			}
			a = a.IDom
		}
		for rpo[b] > rpo[a] {
			if b.IDom == nil || b.IDom == b {
				return a
			}
			b = b.IDom
		}
	}
	return a
}

// reversePostorder returns reachable blocks in reverse postorder.
func (g *Graph) reversePostorder() []*Block {
	seen := make(map[*Block]bool, len(g.Blocks))
	var post []*Block
	var walk func(*Block)
	walk = func(b *Block) {
		if seen[b] {
			return
		}
		seen[b] = true
		for _, s := range b.Succs {
			walk(s)
		}
		post = append(post, b)
	}
	walk(g.Entry)
	for i, j := 0, len(post)-1; i < j; i, j = i+1, j-1 {
		post[i], post[j] = post[j], post[i]
	}
	return post
}

// Dominates reports whether a dominates b (reflexive).
func (g *Graph) Dominates(a, b *Block) bool {
	for x := b; x != nil; x = x.IDom {
		if x == a {
			return true
		}
		if x.IDom == x {
			return false
		}
	}
	return false
}

// findLoops discovers natural loops from back edges (an edge t->h where h
// dominates t) and assigns each block its innermost loop.
func (g *Graph) findLoops() {
	byHeader := make(map[*Block]*Loop)
	for _, b := range g.Blocks {
		for _, s := range b.Succs {
			if !g.Dominates(s, b) {
				continue
			}
			// back edge b -> s
			loop := byHeader[s]
			if loop == nil {
				loop = &Loop{Header: s, Blocks: map[*Block]bool{s: true}}
				byHeader[s] = loop
				g.Loops = append(g.Loops, loop)
			}
			// Collect the natural loop body: blocks that can reach b
			// without passing through s.
			stack := []*Block{b}
			for len(stack) > 0 {
				x := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if loop.Blocks[x] {
					continue
				}
				loop.Blocks[x] = true
				for _, p := range x.Preds {
					stack = append(stack, p)
				}
			}
		}
	}
	// Nesting: loop A is inside loop B if A's header is in B and A != B.
	for _, a := range g.Loops {
		for _, b := range g.Loops {
			if a == b || !b.Blocks[a.Header] {
				continue
			}
			// choose the smallest enclosing loop as parent
			if a.Parent == nil || len(b.Blocks) < len(a.Parent.Blocks) {
				if len(b.Blocks) > len(a.Blocks) || (len(b.Blocks) == len(a.Blocks) && b != a) {
					a.Parent = b
				}
			}
		}
	}
	for _, l := range g.Loops {
		d := 1
		for p := l.Parent; p != nil; p = p.Parent {
			d++
		}
		l.Depth = d
	}
	// Innermost loop per block.
	for _, l := range g.Loops {
		for b := range l.Blocks {
			if b.Loop == nil || l.Depth > b.Loop.Depth {
				b.Loop = l
			}
		}
	}
}
