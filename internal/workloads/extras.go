package workloads

import "strings"

// Extra workloads beyond the paper's suite: conventional kernels that
// exercise the same machinery and give library users more substrates to
// experiment with. They are excluded from the paper-table harness
// (Workload.Extra) but run in the full test matrix.

func init() {
	register(&Workload{
		Name:         "matmul",
		Description:  "integer matrix multiply, one result row per task (extra)",
		Extra:        true,
		DefaultScale: 24, // matrix dimension
		TestScale:    10,
		Source:       matmulSource,
		Paper:        extraPaperRow,
	})
	register(&Workload{
		Name:         "sieve",
		Description:  "sieve of Eratosthenes, one prime's clearing pass per task (extra)",
		Extra:        true,
		DefaultScale: 2000, // sieve size
		TestScale:    300,
		Source:       sieveSource,
		Paper:        extraPaperRow,
	})
}

// extraPaperRow marks reference numbers as not-applicable (non-zero so
// the presence checks pass, but flagged by Extra).
var extraPaperRow = PaperRow{
	ScalarM: -1, MultiM: -1, PctIncrease: -1,
	InOrder1: PaperPerf{ScalarIPC: -1, Speedup4: -1, Speedup8: -1},
	InOrder2: PaperPerf{ScalarIPC: -1, Speedup4: -1, Speedup8: -1},
	OOO1:     PaperPerf{ScalarIPC: -1, Speedup4: -1, Speedup8: -1},
	OOO2:     PaperPerf{ScalarIPC: -1, Speedup4: -1, Speedup8: -1},
}

func matmulSource(scale int) string {
	n := scale
	var sb strings.Builder
	sb.WriteString("\t.data\n")
	sb.WriteString("ma:\t.space " + itoa(4*n*n) + "\n")
	sb.WriteString("mpad1:\t.space 192\n")
	sb.WriteString("mb:\t.space " + itoa(4*n*n) + "\n")
	sb.WriteString("mpad2:\t.space 192\n")
	sb.WriteString("mc:\t.space " + itoa(4*n*n) + "\n")
	sb.WriteString(`
	.text
main:
	; init: a[i][j] = i+j, b[i][j] = i-j (single init task per row)
	li   $s0, 0 !f
`)
	sb.WriteString("\tli   $s5, " + itoa(n) + " !f\n")
	sb.WriteString("\tli   $s6, " + itoa(4*n) + " !f\n")
	sb.WriteString(`	j    MIROW !s
MIROW:
	move $t9, $s0
	.msonly addi $s0, $s0, 1 !f
	.msonly slt  $at, $s0, $s5
	mul  $t0, $t9, $s6       ; row base
	li   $t1, 0
MICOL:
	add  $t2, $t9, $t1
	sll  $t3, $t1, 2
	add  $t3, $t3, $t0
	sw   $t2, ma($t3)
	sub  $t2, $t9, $t1
	sw   $t2, mb($t3)
	addi $t1, $t1, 1
	bne  $t1, $s5, MICOL
	.msonly bnez $at, MIROW !s
	.sconly addi $s0, $s0, 1
	.sconly bne  $s0, $s5, MIROW

MSETUP:
	li   $s0, 0 !f
	j    MROW !s

	; c[i] = a[i] * b : one result row per task
MROW:
	move $t9, $s0
	.msonly addi $s0, $s0, 1 !f
	.msonly slt  $at, $s0, $s5
	mul  $t0, $t9, $s6       ; a row base / c row base
	li   $t1, 0              ; j
MCOL:
	li   $t2, 0              ; k
	li   $t3, 0              ; acc
MDOT:
	sll  $t4, $t2, 2
	add  $t4, $t4, $t0
	lw   $t5, ma($t4)        ; a[i][k]
	mul  $t6, $t2, $s6
	sll  $t7, $t1, 2
	add  $t6, $t6, $t7
	lw   $t7, mb($t6)        ; b[k][j]
	mul  $t5, $t5, $t7
	add  $t3, $t3, $t5
	addi $t2, $t2, 1
	bne  $t2, $s5, MDOT
	sll  $t4, $t1, 2
	add  $t4, $t4, $t0
	sw   $t3, mc($t4)
	addi $t1, $t1, 1
	bne  $t1, $s5, MCOL
	.msonly bnez $at, MROW !s
	.sconly addi $s0, $s0, 1
	.sconly bne  $s0, $s5, MROW

MDONE:
	; checksum the diagonal
	li   $t0, 0
	li   $s1, 0
MCHK:
	mul  $t1, $t0, $s6
	sll  $t2, $t0, 2
	add  $t1, $t1, $t2
	lw   $t2, mc($t1)
	add  $s1, $s1, $t2
	addi $t0, $t0, 1
	bne  $t0, $s5, MCHK
	move $a0, $s1
` + printInt + exitSeq + `
	.task main targets=MIROW create=$s0,$s5,$s6
	.task MIROW targets=MIROW,MSETUP create=$s0
	.task MSETUP targets=MROW create=$s0
	.task MROW targets=MROW,MDONE create=$s0
	.task MDONE
`)
	return sb.String()
}

func sieveSource(scale int) string {
	n := scale
	var sb strings.Builder
	sb.WriteString("\t.data\n")
	sb.WriteString("flags:\t.space " + itoa(n) + "\n")
	sb.WriteString(`
	.text
main:
	li   $s0, 2 !f           ; candidate
`)
	sb.WriteString("\tli   $s5, " + itoa(n) + " !f\n")
	sb.WriteString(`	j    CAND !s

	; one candidate per task: if still prime, clear its multiples — the
	; clearing loops have wildly different lengths (load imbalance), and
	; a task may read a flag a predecessor is still clearing (squashes)
CAND:
	move $t9, $s0
	.msonly addi $s0, $s0, 1 !f
	.msonly mul  $t8, $s0, $s0
	.msonly slt  $t8, $t8, $s5
	lbu  $t0, flags($t9)
	bnez $t0, CNEXT          ; composite already
	add  $t1, $t9, $t9       ; first multiple: 2p
	li   $t2, 1
CLEAR:
	slt  $at, $t1, $s5
	beqz $at, CNEXT
	sb   $t2, flags($t1)
	add  $t1, $t1, $t9
	j    CLEAR
CNEXT:
	.sconly addi $s0, $s0, 1
	.sconly mul  $t8, $s0, $s0
	.sconly slt  $t8, $t8, $s5
	bnez $t8, CAND !s

COUNT:
	; count primes up to n
	li   $t0, 2
	li   $s1, 0
CLOOP:
	lbu  $t1, flags($t0)
	bnez $t1, CSKIP
	addi $s1, $s1, 1
CSKIP:
	addi $t0, $t0, 1
	bne  $t0, $s5, CLOOP
	move $a0, $s1
` + printInt + exitSeq + `
	.task main targets=CAND create=$s0,$s5
	.task CAND targets=CAND,COUNT create=$s0
	.task COUNT
`)
	return sb.String()
}
