package arb

import (
	"sort"

	"multiscalar/internal/snapshot"
)

// SaveState serializes the ARB: every live entry (banks in index
// order, entries within a bank in ascending chunk order so identical
// contents give identical bytes), then each unit's touch list as a
// chunk sequence. Touch-list order matters — ClearUnit and Commit
// visit entries in list order, and release order decides which chunk
// stays resident when a bank refills — so the lists are serialized
// explicitly instead of being rebuilt from the touched bits.
func (a *ARB) SaveState(e *snapshot.Encoder) {
	e.Tag("ARB ")
	e.Len(a.NumBanks)
	for i := range a.banks {
		ents := append([]*entry(nil), a.banks[i].ents...)
		sort.Slice(ents, func(i, j int) bool { return ents[i].chunk < ents[j].chunk })
		e.Len(len(ents))
		for _, ent := range ents {
			e.U32(ent.chunk)
			e.U32(ent.touched)
			for b := 0; b < chunkBytes; b++ {
				e.U32(ent.loads[b])
			}
			for b := 0; b < chunkBytes; b++ {
				e.U32(ent.stores[b])
			}
			for u := 0; u < a.NumUnits; u++ {
				e.Raw(ent.data[u][:])
			}
		}
	}
	e.Len(a.NumUnits)
	for _, list := range a.touchLists {
		e.Len(len(list))
		for _, ent := range list {
			e.U32(ent.chunk)
		}
	}
	e.U64(a.Violations)
	e.U64(a.Overflows)
	e.U64(a.StoreForwards)
	e.U64(a.LoadsTracked)
	e.U64(a.StoresTracked)
	for i := range a.bankStats {
		e.U64(a.bankStats[i].Allocs)
		e.U64(a.bankStats[i].Overflows)
		e.U64(a.bankStats[i].Violations)
		e.U64(uint64(a.bankStats[i].MaxOccupancy))
	}
}

// LoadState restores the ARB contents into an ARB constructed with
// the same geometry; touch-list entries are re-resolved to the
// restored bank entries by chunk.
func (a *ARB) LoadState(d *snapshot.Decoder) {
	d.Tag("ARB ")
	if n := d.Len(1 << 10); d.Err() == nil && n != a.NumBanks {
		d.Failf("arb: %d banks, machine has %d", n, a.NumBanks)
	}
	if d.Err() != nil {
		return
	}
	for i := range a.banks {
		n := d.Len(1 << 20)
		a.banks[i].reset()
		for j := 0; j < n; j++ {
			ent := &entry{}
			ent.chunk = d.U32()
			ent.touched = d.U32()
			for b := 0; b < chunkBytes; b++ {
				ent.loads[b] = d.U32()
			}
			for b := 0; b < chunkBytes; b++ {
				ent.stores[b] = d.U32()
			}
			for u := 0; u < a.NumUnits; u++ {
				d.Raw(ent.data[u][:])
			}
			if d.Err() != nil {
				return
			}
			if a.bankOf(ent.chunk) != i {
				d.Failf("arb: chunk 0x%x in bank %d", ent.chunk, i)
				return
			}
			a.banks[i].insert(ent)
		}
	}
	if n := d.Len(MaxUnits); d.Err() == nil && n != a.NumUnits {
		d.Failf("arb: %d touch lists, machine has %d units", n, a.NumUnits)
	}
	if d.Err() != nil {
		return
	}
	for u := range a.touchLists {
		n := d.Len(1 << 20)
		a.touchLists[u] = a.touchLists[u][:0]
		for j := 0; j < n; j++ {
			c := d.U32()
			if d.Err() != nil {
				return
			}
			ent := a.banks[a.bankOf(c)].find(c)
			if ent == nil {
				d.Failf("arb: touch list for unit %d references absent chunk 0x%x", u, c)
				return
			}
			a.touchLists[u] = append(a.touchLists[u], ent)
		}
	}
	a.Violations = d.U64()
	a.Overflows = d.U64()
	a.StoreForwards = d.U64()
	a.LoadsTracked = d.U64()
	a.StoresTracked = d.U64()
	for i := range a.bankStats {
		a.bankStats[i].Allocs = d.U64()
		a.bankStats[i].Overflows = d.U64()
		a.bankStats[i].Violations = d.U64()
		occ := d.U64()
		if d.Err() == nil && occ > uint64(a.EntriesPerBank) {
			d.Failf("arb: bank %d max occupancy %d exceeds capacity %d", i, occ, a.EntriesPerBank)
			return
		}
		a.bankStats[i].MaxOccupancy = int(occ)
	}
}
